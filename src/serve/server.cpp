#include "src/serve/server.h"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace proteus::serve {

QueryServer::QueryServer(QueryEngine* engine, ServerOptions opts)
    : engine_(engine), opts_(opts), gate_(opts.admission) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("serve socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::IOError(std::string("serve bind: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    const Status s = Status::IOError(std::string("serve listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Unblock accept() by tearing down the listener, then stop admitting.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  gate_.Close();

  std::vector<std::unique_ptr<Session>> sessions;
  {
    MutexLock lk(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    // Cooperatively cancel whatever is still running: each query stops at
    // its next morsel boundary, so shutdown waits one morsel, not one query.
    {
      MutexLock lk(s->mu);
      for (auto& [id, flag] : s->cancels) flag->store(true, std::memory_order_release);
    }
    ::shutdown(s->fd, SHUT_RDWR);
    if (s->reader.joinable()) s->reader.join();
    ::close(s->fd);
  }
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal — either way, stop accepting
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* s = session.get();
    {
      MutexLock lk(sessions_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      sessions_.push_back(std::move(session));
    }
    s->reader = std::thread([this, s] { SessionLoop(s); });
  }
}

void QueryServer::SendFrame(Session* s, const Frame& f) {
  MutexLock lk(s->write_mu);
  // Best effort: a peer that vanished mid-query just loses its response.
  (void)WriteFrame(s->fd, f);
}

void QueryServer::SessionLoop(Session* s) {
  while (true) {
    auto frame = ReadFrame(s->fd);
    if (!frame.ok()) {
      // Clean EOF, shutdown, or a malformed frame: either way this
      // connection is done. Malformed framing is unrecoverable — the byte
      // stream has lost sync — so answer once and close.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        SendFrame(s, Frame{FrameType::kError, 0, EncodeErrorBody(frame.status())});
      }
      break;
    }
    switch (frame->type) {
      case FrameType::kQuery: {
        auto text = DecodeQueryBody(frame->body);
        if (!text.ok()) {
          // The frame itself was well-formed, so the stream is still in
          // sync: report the bad body and keep serving.
          SendFrame(s, Frame{FrameType::kError, frame->query_id,
                             EncodeErrorBody(text.status())});
          break;
        }
        auto cancel = std::make_shared<std::atomic<bool>>(false);
        {
          MutexLock lk(s->mu);
          // Register the cancel token *before* the worker exists, so a
          // kCancel racing the query's startup still lands.
          if (!s->cancels.emplace(frame->query_id, cancel).second) {
            SendFrame(s, Frame{FrameType::kError, frame->query_id,
                               EncodeErrorBody(Status::InvalidArgument(
                                   "duplicate query_id on this connection"))});
            break;
          }
          s->workers.emplace_back([this, s, id = frame->query_id,
                                   q = std::move(*text)]() mutable {
            RunQuery(s, id, std::move(q));
          });
        }
        break;
      }
      case FrameType::kCancel: {
        MutexLock lk(s->mu);
        auto it = s->cancels.find(frame->query_id);
        // Unknown id = already finished (or never existed): cancellation is
        // idempotent, nothing to do.
        if (it != s->cancels.end()) it->second->store(true, std::memory_order_release);
        break;
      }
      default:
        SendFrame(s, Frame{FrameType::kError, frame->query_id,
                           EncodeErrorBody(Status::InvalidArgument(
                               "unexpected response-type frame from client"))});
        break;
    }
  }
  // The reader owns its workers: join them before the session winds down so
  // Stop() only ever joins readers.
  std::vector<std::thread> workers;
  {
    MutexLock lk(s->mu);
    workers.swap(s->workers);
  }
  for (auto& w : workers) w.join();
}

void QueryServer::RunQuery(Session* s, uint64_t query_id, std::string text) {
  std::shared_ptr<std::atomic<bool>> cancel;
  {
    MutexLock lk(s->mu);
    cancel = s->cancels.at(query_id);
  }

  const AdmissionGate::Outcome outcome = gate_.Enter();
  if (outcome != AdmissionGate::Outcome::kAdmitted) {
    {
      MutexLock lk(s->mu);
      s->cancels.erase(query_id);
    }
    const char* reason = outcome == AdmissionGate::Outcome::kClosed
                             ? "server shutting down"
                             : "admission queue full";
    SendFrame(s, Frame{FrameType::kRejected, query_id, EncodeRejectedBody(reason)});
    return;
  }

  QueryTelemetry tel;
  CallOptions call;
  call.telemetry = &tel;
  call.cancel = cancel.get();
  auto result = engine_->Execute(text, call);
  gate_.Exit();

  {
    MutexLock lk(s->mu);
    s->cancels.erase(query_id);
  }

  Frame f;
  f.query_id = query_id;
  if (result.ok()) {
    f.type = FrameType::kResult;
    f.body = EncodeResultBody(*result, tel);
  } else if (result.status().code() == StatusCode::kCancelled) {
    f.type = FrameType::kCancelled;
    f.body = EncodeCancelledBody(tel);
  } else {
    f.type = FrameType::kError;
    f.body = EncodeErrorBody(result.status());
  }
  SendFrame(s, f);
}

}  // namespace proteus::serve
