#include "src/serve/admission.h"

namespace proteus::serve {

AdmissionGate::AdmissionGate(Options opts) : opts_(opts) {}

AdmissionGate::Outcome AdmissionGate::Enter() {
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) return Outcome::kClosed;
  if (inflight_ < opts_.max_inflight) {
    ++inflight_;
    ++admitted_;
    return Outcome::kAdmitted;
  }
  if (waiting_ >= opts_.queue_depth) {
    // Overload is signalled, not absorbed: the caller gets an immediate
    // rejection it can surface as a kRejected frame.
    ++rejected_;
    return Outcome::kRejected;
  }
  ++waiting_;
  cv_.wait(lk, [&] { return closed_ || inflight_ < opts_.max_inflight; });
  --waiting_;
  if (closed_) return Outcome::kClosed;
  ++inflight_;
  ++admitted_;
  return Outcome::kAdmitted;
}

void AdmissionGate::Exit() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

void AdmissionGate::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

int AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_;
}

int AdmissionGate::waiting() const {
  std::lock_guard<std::mutex> lk(mu_);
  return waiting_;
}

uint64_t AdmissionGate::admitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admitted_;
}

uint64_t AdmissionGate::rejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

}  // namespace proteus::serve
