#include "src/serve/admission.h"

namespace proteus::serve {

AdmissionGate::AdmissionGate(Options opts) : opts_(opts) {}

AdmissionGate::Outcome AdmissionGate::Enter() {
  MutexLock lk(mu_);
  if (closed_) return Outcome::kClosed;
  if (inflight_ < opts_.max_inflight) {
    ++inflight_;
    ++admitted_;
    return Outcome::kAdmitted;
  }
  if (waiting_ >= opts_.queue_depth) {
    // Overload is signalled, not absorbed: the caller gets an immediate
    // rejection it can surface as a kRejected frame.
    ++rejected_;
    return Outcome::kRejected;
  }
  ++waiting_;
  while (!closed_ && inflight_ >= opts_.max_inflight) cv_.Wait(mu_);
  --waiting_;
  if (closed_) return Outcome::kClosed;
  ++inflight_;
  ++admitted_;
  return Outcome::kAdmitted;
}

void AdmissionGate::Exit() {
  {
    MutexLock lk(mu_);
    --inflight_;
  }
  cv_.NotifyOne();
}

void AdmissionGate::Close() {
  {
    MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

int AdmissionGate::inflight() const {
  MutexLock lk(mu_);
  return inflight_;
}

int AdmissionGate::waiting() const {
  MutexLock lk(mu_);
  return waiting_;
}

uint64_t AdmissionGate::admitted() const {
  MutexLock lk(mu_);
  return admitted_;
}

uint64_t AdmissionGate::rejected() const {
  MutexLock lk(mu_);
  return rejected_;
}

}  // namespace proteus::serve
