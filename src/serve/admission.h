// Admission control for the query server: a bounded gate in front of the
// engine.
//
// The engine itself is reentrant — N concurrent ExecutePlan calls interleave
// at morsel granularity on the shared scheduler — but an unbounded N turns
// overload into collapse (every query slower, memory for every plan's builds
// live at once). The gate keeps at most `max_inflight` queries executing and
// at most `queue_depth` callers parked waiting for a slot; anything beyond
// that is rejected *immediately*, so an overloaded server degrades into
// explicit kRejected frames instead of unbounded queueing or hangs.
#pragma once

#include <cstdint>

#include "src/common/mutex.h"

namespace proteus::serve {

class AdmissionGate {
 public:
  struct Options {
    int max_inflight = 4;  ///< queries executing concurrently
    int queue_depth = 16;  ///< callers parked waiting for a slot
  };

  enum class Outcome {
    kAdmitted,  ///< slot acquired; caller must Exit() when done
    kRejected,  ///< gate and queue both full — overload, try later
    kClosed,    ///< server shutting down
  };

  explicit AdmissionGate(Options opts);

  /// Acquires an execution slot, parking in the bounded queue if the gate is
  /// full. Returns immediately with kRejected when the queue is full too.
  Outcome Enter() EXCLUDES(mu_);

  /// Releases a slot acquired by a successful Enter().
  void Exit() EXCLUDES(mu_);

  /// Wakes every parked caller with kClosed and rejects all future Enter()s.
  void Close() EXCLUDES(mu_);

  int inflight() const EXCLUDES(mu_);
  int waiting() const EXCLUDES(mu_);
  uint64_t admitted() const EXCLUDES(mu_);
  uint64_t rejected() const EXCLUDES(mu_);

 private:
  const Options opts_;
  mutable Mutex mu_;
  CondVar cv_;
  int inflight_ GUARDED_BY(mu_) = 0;
  int waiting_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_ GUARDED_BY(mu_) = 0;
};

}  // namespace proteus::serve
