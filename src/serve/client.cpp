#include "src/serve/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace proteus::serve {

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), next_id_(other.next_id_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("serve connect: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = Status::IOError(std::string("serve connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  return ServeClient(fd);
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<uint64_t> ServeClient::Submit(std::string_view query) {
  if (fd_ < 0) return Status::IOError("serve client: not connected");
  const uint64_t id = next_id_++;
  Frame f;
  f.type = FrameType::kQuery;
  f.query_id = id;
  f.body = EncodeQueryBody(query);
  PROTEUS_RETURN_NOT_OK(WriteFrame(fd_, f));
  return id;
}

Status ServeClient::Cancel(uint64_t query_id) {
  if (fd_ < 0) return Status::IOError("serve client: not connected");
  Frame f;
  f.type = FrameType::kCancel;
  f.query_id = query_id;
  return WriteFrame(fd_, f);
}

Result<ServeClient::Response> ServeClient::Await() {
  if (fd_ < 0) return Status::IOError("serve client: not connected");
  PROTEUS_ASSIGN_OR_RETURN(Frame f, ReadFrame(fd_));
  Response resp;
  resp.type = f.type;
  resp.query_id = f.query_id;
  switch (f.type) {
    case FrameType::kResult: {
      PROTEUS_ASSIGN_OR_RETURN(ResultBody body, DecodeResultBody(f.body));
      resp.result = std::move(body.result);
      resp.telemetry = std::move(body.telemetry);
      return resp;
    }
    case FrameType::kCancelled: {
      PROTEUS_ASSIGN_OR_RETURN(resp.telemetry, DecodeCancelledBody(f.body));
      return resp;
    }
    case FrameType::kError: {
      PROTEUS_RETURN_NOT_OK(DecodeErrorBody(f.body, &resp.error));
      return resp;
    }
    case FrameType::kRejected: {
      PROTEUS_ASSIGN_OR_RETURN(resp.reject_reason, DecodeRejectedBody(f.body));
      return resp;
    }
    default:
      return Status::InvalidArgument("serve client: request-type frame from server");
  }
}

Result<ServeClient::Response> ServeClient::Execute(std::string_view query) {
  PROTEUS_ASSIGN_OR_RETURN(const uint64_t id, Submit(query));
  PROTEUS_ASSIGN_OR_RETURN(Response resp, Await());
  if (resp.query_id != id) {
    return Status::Internal("serve client: response for query " +
                            std::to_string(resp.query_id) + ", expected " +
                            std::to_string(id) +
                            " (use Submit/Await for pipelined queries)");
  }
  return resp;
}

}  // namespace proteus::serve
