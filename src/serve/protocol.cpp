#include "src/serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "src/common/wire.h"

namespace proteus::serve {

namespace {

// Telemetry block: every QueryTelemetry field in declaration order. The
// block is versioned by the frame header, so adding a field is a version
// bump, not a silent skew between encoder and decoder.
void PutTelemetry(WireWriter* w, const QueryTelemetry& t) {
  w->PutF64(t.optimize_ms);
  w->PutF64(t.compile_ms);
  w->PutF64(t.jit_compile_ms);
  w->PutBool(t.jit_cache_hit);
  w->PutF64(t.execute_ms);
  w->PutF64(t.cache_build_ms);
  w->PutBool(t.used_jit);
  w->PutBool(t.jit_parallel);
  w->PutBool(t.used_cache);
  w->PutI64(t.threads_used);
  w->PutU64(t.morsels);
  w->PutI64(t.shards_used);
  w->PutU64(t.bytes_exchanged);
  w->PutI64(t.compile_tier);
  w->PutU64(t.morsels_interpreted);
  w->PutU64(t.morsels_jit);
  w->PutF64(t.swap_ms);
  w->PutF64(t.first_morsel_ms);
  w->PutU64(t.tasks_dealt);
  w->PutU64(t.steals);
  w->PutBool(t.cancelled);
  w->PutStr(t.fallback_reason);
  w->PutStr(t.plan);
}

Result<QueryTelemetry> GetTelemetry(WireReader* r) {
  QueryTelemetry t;
  PROTEUS_ASSIGN_OR_RETURN(t.optimize_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.compile_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.jit_compile_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.jit_cache_hit, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(t.execute_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.cache_build_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.used_jit, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(t.jit_parallel, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(t.used_cache, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(int64_t threads, r->I64());
  t.threads_used = static_cast<int>(threads);
  PROTEUS_ASSIGN_OR_RETURN(t.morsels, r->U64());
  PROTEUS_ASSIGN_OR_RETURN(int64_t shards, r->I64());
  t.shards_used = static_cast<int>(shards);
  PROTEUS_ASSIGN_OR_RETURN(t.bytes_exchanged, r->U64());
  PROTEUS_ASSIGN_OR_RETURN(int64_t tier, r->I64());
  t.compile_tier = static_cast<int>(tier);
  PROTEUS_ASSIGN_OR_RETURN(t.morsels_interpreted, r->U64());
  PROTEUS_ASSIGN_OR_RETURN(t.morsels_jit, r->U64());
  PROTEUS_ASSIGN_OR_RETURN(t.swap_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.first_morsel_ms, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(t.tasks_dealt, r->U64());
  PROTEUS_ASSIGN_OR_RETURN(t.steals, r->U64());
  PROTEUS_ASSIGN_OR_RETURN(t.cancelled, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(t.fallback_reason, r->Str());
  PROTEUS_ASSIGN_OR_RETURN(t.plan, r->Str());
  return t;
}

/// The shared strictness rule: a body decoder must consume every byte.
Status RequireAtEnd(const WireReader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::InvalidArgument(std::string(what) + ": trailing bytes after body");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(const Frame& f) {
  WireWriter w;
  w.PutU8('P');
  w.PutU8('R');
  w.PutU8(kProtocolVersion);
  w.PutU8(static_cast<uint8_t>(f.type));
  w.PutU64(f.query_id);
  std::string payload = w.Take();
  payload += f.body;

  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string out;
  out.resize(4);
  std::memcpy(out.data(), &len, 4);
  out += payload;
  return out;
}

Result<Frame> DecodeFramePayload(std::string_view payload) {
  WireReader r(payload);
  PROTEUS_ASSIGN_OR_RETURN(uint8_t m0, r.U8());
  PROTEUS_ASSIGN_OR_RETURN(uint8_t m1, r.U8());
  if (m0 != 'P' || m1 != 'R') {
    return Status::InvalidArgument("serve frame: bad magic");
  }
  PROTEUS_ASSIGN_OR_RETURN(uint8_t version, r.U8());
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("serve frame: unsupported protocol version " +
                                   std::to_string(version));
  }
  PROTEUS_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kCancelled:
    case FrameType::kRejected:
      break;
    default:
      return Status::InvalidArgument("serve frame: unknown type " + std::to_string(type));
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  PROTEUS_ASSIGN_OR_RETURN(f.query_id, r.U64());
  f.body.assign(payload.substr(payload.size() - r.remaining()));
  return f;
}

std::string EncodeQueryBody(std::string_view query_text) {
  WireWriter w;
  w.PutStr(query_text);
  return w.Take();
}

Result<std::string> DecodeQueryBody(std::string_view body) {
  WireReader r(body);
  PROTEUS_ASSIGN_OR_RETURN(std::string text, r.Str());
  PROTEUS_RETURN_NOT_OK(RequireAtEnd(r, "kQuery"));
  return text;
}

std::string EncodeResultBody(const QueryResult& result, const QueryTelemetry& tel) {
  WireWriter w;
  PutTelemetry(&w, tel);
  w.PutU64(result.columns.size());
  for (const auto& c : result.columns) w.PutStr(c);
  w.PutU64(result.rows.size());
  for (const auto& row : result.rows) {
    for (const auto& cell : row) w.PutValue(cell);
  }
  return w.Take();
}

Result<ResultBody> DecodeResultBody(std::string_view body) {
  WireReader r(body);
  ResultBody out;
  PROTEUS_ASSIGN_OR_RETURN(out.telemetry, GetTelemetry(&r));
  PROTEUS_ASSIGN_OR_RETURN(uint64_t ncols, r.U64());
  if (ncols > r.remaining()) {
    return Status::InvalidArgument("kResult: column count exceeds payload");
  }
  out.result.columns.reserve(ncols);
  for (uint64_t i = 0; i < ncols; ++i) {
    PROTEUS_ASSIGN_OR_RETURN(std::string col, r.Str());
    out.result.columns.push_back(std::move(col));
  }
  PROTEUS_ASSIGN_OR_RETURN(uint64_t nrows, r.U64());
  if (nrows > r.remaining() + 1) {
    return Status::InvalidArgument("kResult: row count exceeds payload");
  }
  out.result.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    std::vector<Value> row;
    row.reserve(ncols);
    for (uint64_t j = 0; j < ncols; ++j) {
      PROTEUS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
      row.push_back(std::move(v));
    }
    out.result.rows.push_back(std::move(row));
  }
  PROTEUS_RETURN_NOT_OK(RequireAtEnd(r, "kResult"));
  return out;
}

std::string EncodeErrorBody(const Status& s) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(s.code()));
  w.PutStr(s.message());
  return w.Take();
}

Status DecodeErrorBody(std::string_view body, Status* out) {
  WireReader r(body);
  PROTEUS_ASSIGN_OR_RETURN(uint8_t code, r.U8());
  PROTEUS_ASSIGN_OR_RETURN(std::string msg, r.Str());
  PROTEUS_RETURN_NOT_OK(RequireAtEnd(r, "kError"));
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return Status::InvalidArgument("kError: status code out of range");
  }
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

std::string EncodeCancelledBody(const QueryTelemetry& tel) {
  WireWriter w;
  PutTelemetry(&w, tel);
  return w.Take();
}

Result<QueryTelemetry> DecodeCancelledBody(std::string_view body) {
  WireReader r(body);
  PROTEUS_ASSIGN_OR_RETURN(QueryTelemetry tel, GetTelemetry(&r));
  PROTEUS_RETURN_NOT_OK(RequireAtEnd(r, "kCancelled"));
  return tel;
}

std::string EncodeRejectedBody(std::string_view reason) {
  WireWriter w;
  w.PutStr(reason);
  return w.Take();
}

Result<std::string> DecodeRejectedBody(std::string_view body) {
  WireReader r(body);
  PROTEUS_ASSIGN_OR_RETURN(std::string reason, r.Str());
  PROTEUS_RETURN_NOT_OK(RequireAtEnd(r, "kRejected"));
  return reason;
}

namespace {

Status WriteFull(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("serve write: ") + std::strerror(errno));
    }
    if (w == 0) return Status::IOError("serve write: peer closed");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Returns false on clean EOF before the first byte; errors mid-buffer.
Result<bool> ReadFull(int fd, char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("serve read: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (off == 0) return false;
      return Status::IOError("serve read: truncated frame (peer closed mid-frame)");
    }
    off += static_cast<size_t>(r);
  }
  return true;
}

}  // namespace

Status WriteFrame(int fd, const Frame& f) {
  const std::string bytes = EncodeFrame(f);
  return WriteFull(fd, bytes.data(), bytes.size());
}

Result<Frame> ReadFrame(int fd) {
  char lenbuf[4];
  PROTEUS_ASSIGN_OR_RETURN(bool got, ReadFull(fd, lenbuf, 4));
  if (!got) return Status::NotFound("serve read: connection closed");
  uint32_t len = 0;
  std::memcpy(&len, lenbuf, 4);
  if (len < 12 /* header */ || len > kMaxFrameBytes) {
    return Status::InvalidArgument("serve read: frame length " + std::to_string(len) +
                                   " out of bounds");
  }
  std::string payload(len, '\0');
  PROTEUS_ASSIGN_OR_RETURN(got, ReadFull(fd, payload.data(), payload.size()));
  if (!got) return Status::IOError("serve read: truncated frame (peer closed mid-frame)");
  return DecodeFramePayload(payload);
}

}  // namespace proteus::serve
