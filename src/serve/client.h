// Client for the Proteus query server (src/serve/server.h).
//
// A thin blocking wrapper over the frame protocol: Submit() assigns a
// query_id and sends kQuery; Await() reads the next response frame (any
// query of this connection — responses are keyed by query_id and may arrive
// out of submission order); Cancel() sends kCancel. Execute() is the
// one-shot convenience: submit, await that id, return.
//
// One ServeClient = one connection = one thread's toy. It is not internally
// synchronized; concurrent clients each open their own connection (which is
// also what exercises the server's concurrency).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/query_engine.h"
#include "src/engine/result.h"
#include "src/serve/protocol.h"

namespace proteus::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to a server on 127.0.0.1:port.
  static Result<ServeClient> Connect(uint16_t port);

  /// One decoded response frame.
  struct Response {
    FrameType type = FrameType::kError;
    uint64_t query_id = 0;
    QueryResult result;        ///< kResult
    QueryTelemetry telemetry;  ///< kResult and kCancelled
    Status error;              ///< kError: the engine/server status
    std::string reject_reason; ///< kRejected
  };

  /// Sends a query; returns its id for matching the response / cancelling.
  Result<uint64_t> Submit(std::string_view query);

  /// Requests cooperative cancellation of an in-flight query. The response
  /// still arrives (kCancelled — or kResult if the query won the race).
  Status Cancel(uint64_t query_id);

  /// Blocks for the next response frame on this connection.
  Result<Response> Await();

  /// Submit + Await: runs one query to completion. With no other queries
  /// outstanding on this connection, the next response is necessarily ours.
  Result<Response> Execute(std::string_view query);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace proteus::serve
