// The Proteus query server: N remote callers, one shared engine.
//
// A thin serving shell over QueryEngine (docs/SERVING.md). The engine's
// reentrancy does the heavy lifting — every admitted query is a plain
// Execute() call with per-query CallOptions, so concurrent clients share the
// compiled-query cache, scan caches, tiered compiler, and the one
// process-wide TaskScheduler (queries interleave at morsel granularity
// instead of queueing whole-query). The server adds the parts a shared
// engine needs to face a network:
//
//   - a length-prefixed frame protocol over TCP loopback (src/serve/
//     protocol.h): query text in, rows + telemetry out, errors as status
//     frames — never a silently dropped query;
//   - admission control (src/serve/admission.h): bounded in-flight and
//     queue, overload answered with an explicit kRejected frame;
//   - cooperative cancellation: a kCancel frame flips the query's cancel
//     flag, execution stops at its next morsel boundary and answers with a
//     kCancelled frame carrying telemetry (cancelled = true).
//
// Threading: one accept thread; one reader thread per connection; one
// worker thread per in-flight query (the worker parks in the admission
// queue, not the reader — so cancels and new queries keep flowing while a
// query waits for a slot). Responses to one connection serialize on its
// write mutex; responses to different queries may arrive in any order, keyed
// by query_id.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/core/query_engine.h"
#include "src/serve/admission.h"
#include "src/serve/protocol.h"

namespace proteus::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() after Start()).
  uint16_t port = 0;
  AdmissionGate::Options admission;
};

class QueryServer {
 public:
  /// The engine must outlive the server. The server never mutates engine
  /// configuration — it only calls Execute() with per-query CallOptions.
  QueryServer(QueryEngine* engine, ServerOptions opts = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Graceful shutdown: stops accepting, cancels every in-flight query
  /// (cooperatively — each stops at its next morsel boundary), wakes the
  /// admission queue with kClosed, and joins every thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  const AdmissionGate& admission() const { return gate_; }

 private:
  struct Session {
    int fd = -1;
    std::thread reader;
    Mutex write_mu;  ///< one response frame at a time per connection
    Mutex mu;        ///< guards cancels + workers
    std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>> cancels
        GUARDED_BY(mu);
    std::vector<std::thread> workers GUARDED_BY(mu);
  };

  void AcceptLoop();
  void SessionLoop(Session* s);
  void RunQuery(Session* s, uint64_t query_id, std::string text);
  static void SendFrame(Session* s, const Frame& f);

  QueryEngine* engine_;
  ServerOptions opts_;
  AdmissionGate gate_;
  /// Atomic because Stop() tears it down while the accept thread reads it.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  Mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_ GUARDED_BY(sessions_mu_);
};

}  // namespace proteus::serve
