// Wire protocol of the query server (src/serve/server.h).
//
// Frames cross the socket as [u32 length][payload]; the payload is encoded
// with the same WireWriter/WireReader primitives the shard boundary uses
// (src/common/wire.h) — fixed-width integers, bit-pattern doubles,
// length-prefixed strings — plus a 4-byte header:
//
//   'P' 'R'  u8 version  u8 type  u64 query_id  <type-specific body>
//
// Requests (client -> server):
//   kQuery      body = Str query text (either engine syntax)
//   kCancel     no body; query_id names the in-flight query to cancel
//
// Responses (server -> client), one per kQuery, any order across queries:
//   kResult     body = telemetry block, then the result's columns and rows
//   kError      body = u8 StatusCode + Str message (the engine's Status)
//   kCancelled  body = telemetry block (cancelled = true); the query stopped
//               at a morsel boundary after its kCancel landed
//   kRejected   body = Str reason; the admission gate was full — an explicit
//               overload signal, never a hang
//
// Decoders are strict: trailing bytes after a well-formed body are rejected
// with InvalidArgument (the same !AtEnd() rule the shard PartialResult codec
// enforces), so a corrupted or malicious peer cannot smuggle garbage past
// the framing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/query_engine.h"
#include "src/engine/result.h"

namespace proteus::serve {

/// Protocol version this build speaks. A mismatched peer gets kError.
constexpr uint8_t kProtocolVersion = 1;

/// Upper bound on a single frame's payload (guards the u32 length prefix:
/// a malformed peer cannot make the reader allocate unbounded memory).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class FrameType : uint8_t {
  kQuery = 1,
  kCancel = 2,
  kResult = 16,
  kError = 17,
  kCancelled = 18,
  kRejected = 19,
};

/// One decoded frame. `body` is the type-specific payload after the header.
struct Frame {
  FrameType type = FrameType::kError;
  uint64_t query_id = 0;
  std::string body;
};

/// Encodes a complete frame: u32 length prefix + header + body.
std::string EncodeFrame(const Frame& f);

/// Decodes the payload of one frame (the bytes after the length prefix).
/// Rejects bad magic, unknown version/type, and truncation.
Result<Frame> DecodeFramePayload(std::string_view payload);

// Body codecs. Each Decode* consumes the whole body and rejects trailing
// bytes.

std::string EncodeQueryBody(std::string_view query_text);
Result<std::string> DecodeQueryBody(std::string_view body);

std::string EncodeResultBody(const QueryResult& result, const QueryTelemetry& tel);
struct ResultBody {
  QueryResult result;
  QueryTelemetry telemetry;
};
Result<ResultBody> DecodeResultBody(std::string_view body);

std::string EncodeErrorBody(const Status& s);
/// Decodes the (non-OK) Status the server sent into *out; the return value
/// reports decode success. (Result<Status> would be ill-formed — the value
/// and error constructors collide.)
Status DecodeErrorBody(std::string_view body, Status* out);

std::string EncodeCancelledBody(const QueryTelemetry& tel);
Result<QueryTelemetry> DecodeCancelledBody(std::string_view body);

std::string EncodeRejectedBody(std::string_view reason);
Result<std::string> DecodeRejectedBody(std::string_view body);

// Socket helpers (POSIX fd): length-prefixed frame I/O with EINTR retry.
// ReadFrame returns NotFound on clean EOF at a frame boundary (the peer
// closed), IOError mid-frame.

Status WriteFrame(int fd, const Frame& f);
Result<Frame> ReadFrame(int fd);

}  // namespace proteus::serve
