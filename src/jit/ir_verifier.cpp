#include "src/jit/ir_verifier.h"

#include <string>
#include <unordered_set>
#include <vector>

#include <llvm/IR/Constants.h>
#include <llvm/IR/Function.h>
#include <llvm/IR/Instructions.h>
#include <llvm/IR/Module.h>

#include "src/jit/runtime.h"

namespace proteus {
namespace jit {

namespace {

/// The runtime C-ABI whitelist, keyed by name. Built from RuntimeSymbols()
/// — the same registry CompileAndLink defines into the JIT dylib — so the
/// verifier can never drift from what actually links.
const std::unordered_set<std::string>& WhitelistedExterns() {
  static const std::unordered_set<std::string>* set = [] {
    auto* s = new std::unordered_set<std::string>();
    for (const auto& [name, addr] : RuntimeSymbols()) s->insert(name);
    return s;
  }();
  return *set;
}

/// True for "proteus_drain<k>" with a non-empty all-digit suffix.
bool IsDrainName(llvm::StringRef name) {
  if (!name.consume_front("proteus_drain")) return false;
  if (name.empty()) return false;
  for (char c : name) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Index of the parameter-table argument for a recognized entry point, or
/// -1 when `name` is not an entry point.
int ParamsArgIndex(llvm::StringRef name) {
  if (name == "proteus_query" || name == "proteus_build") return 1;
  if (name == "proteus_pipeline") return 2;
  if (IsDrainName(name)) return 3;
  return -1;
}

/// The exact FunctionType the host calls `name` through, or null for
/// non-entry-point names. Types are uniqued per LLVMContext, so pointer
/// equality against Function::getFunctionType() is an exact signature check.
llvm::FunctionType* ExpectedEntryType(llvm::StringRef name, llvm::LLVMContext& ctx) {
  auto* i8p = llvm::Type::getInt8PtrTy(ctx);
  auto* i64 = llvm::Type::getInt64Ty(ctx);
  auto* voidty = llvm::Type::getVoidTy(ctx);
  if (name == "proteus_query" || name == "proteus_build") {
    return llvm::FunctionType::get(voidty, {i8p, i8p}, false);
  }
  if (name == "proteus_pipeline") {
    return llvm::FunctionType::get(voidty, {i8p, i8p, i8p, i64, i64}, false);
  }
  if (IsDrainName(name)) {
    return llvm::FunctionType::get(voidty, {i8p, i8p, i8p, i8p}, false);
  }
  return nullptr;
}

/// Collects every statically-known parameter-table index reachable from the
/// entry point's params argument: codegen emits `bitcast params to i64*`
/// followed by constant single-index GEPs (ParamI64), so the walk is
/// arg -> bitcasts -> GEPs/loads.
void CheckParamIndices(const llvm::Function& fn, int params_arg,
                       uint64_t param_table_slots, std::vector<std::string>* violations) {
  if (static_cast<unsigned>(params_arg) >= fn.arg_size()) return;
  const llvm::Value* arg = fn.getArg(static_cast<unsigned>(params_arg));

  auto note = [&](uint64_t slot) {
    if (slot < param_table_slots) return;
    violations->push_back(fn.getName().str() + ": param-table index " +
                          std::to_string(slot) + " out of bounds (table has " +
                          std::to_string(param_table_slots) + " slot(s))");
  };
  auto check_pointer_uses = [&](const llvm::Value* ptr) {
    for (const llvm::User* u : ptr->users()) {
      if (const auto* gep = llvm::dyn_cast<llvm::GetElementPtrInst>(u)) {
        if (gep->getPointerOperand() != ptr) continue;
        if (gep->getNumIndices() != 1) continue;
        if (const auto* ci = llvm::dyn_cast<llvm::ConstantInt>(gep->getOperand(1))) {
          note(ci->getZExtValue());
        }
      } else if (llvm::isa<llvm::LoadInst>(u)) {
        // A load straight off the table pointer is slot 0.
        note(0);
      }
    }
  };
  for (const llvm::User* u : arg->users()) {
    if (const auto* bc = llvm::dyn_cast<llvm::BitCastInst>(u)) {
      check_pointer_uses(bc);
    }
  }
  check_pointer_uses(arg);  // opaque-pointer form: GEPs directly on the arg
}

}  // namespace

Status VerifyGeneratedModule(const llvm::Module& module, uint64_t param_table_slots) {
  std::vector<std::string> violations;

  // Rule 1: no mutable globals. Codegen only ever creates private constant
  // data (string literals); anything writable is smuggled cross-query state.
  for (const llvm::GlobalVariable& g : module.globals()) {
    if (!g.isConstant()) {
      violations.push_back("mutable global variable: " +
                           (g.hasName() ? g.getName().str() : std::string("<unnamed>")));
    }
  }

  for (const llvm::Function& fn : module.functions()) {
    const llvm::StringRef name = fn.getName();
    if (fn.isDeclaration()) {
      // Rule 2: external references must be runtime C-ABI symbols (or LLVM
      // intrinsics, which the JIT lowers internally).
      if (name.startswith("llvm.")) continue;
      if (WhitelistedExterns().count(name.str()) == 0) {
        violations.push_back("call to non-whitelisted external symbol: " + name.str());
      }
      continue;
    }
    llvm::FunctionType* expected =
        ExpectedEntryType(name, const_cast<llvm::Module&>(module).getContext());
    if (expected == nullptr) {
      // Rule 4b: the module's public surface is exactly its entry points.
      if (!fn.hasLocalLinkage()) {
        violations.push_back("unexpected externally-visible definition: " + name.str());
      }
      continue;
    }
    // Rule 4a: exact entry-point signature.
    if (fn.getFunctionType() != expected) {
      violations.push_back("entry point " + name.str() +
                           " deviates from its contract signature");
      continue;  // the params argument may not even exist
    }
    // Rule 3: constant parameter-table indices in bounds.
    CheckParamIndices(fn, ParamsArgIndex(name), param_table_slots, &violations);
  }

  if (violations.empty()) return Status::OK();
  std::string joined;
  for (const std::string& v : violations) {
    if (!joined.empty()) joined += "; ";
    joined += v;
  }
  return Status::Internal("jit: generated module violates the codegen contract: " +
                          joined);
}

}  // namespace jit
}  // namespace proteus
