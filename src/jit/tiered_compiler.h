// Tiered asynchronous compilation: interpreter-first cold starts with a
// morsel-boundary hot-swap to generated code.
//
// The paper's premise is to adapt the engine to the query, not to make the
// query wait for the engine — yet a cold query on the JIT path pays its full
// IR-generation + LLVM-compilation cost before the first tuple moves. The
// tiered controller deletes that stall: a cold query starts executing
// morsels 0..k on the Volcano interpreter *immediately* while the module
// compiles on a dedicated background thread, and at a morsel boundary the
// controller hot-swaps to the compiled proteus_pipeline for morsels k+1..n.
// Because both engines produce bit-identical per-morsel partials over the
// one deterministic morsel decomposition, and partials merge in global
// morsel order through FinalizePlanPartials, the result is cell-identical
// (float bits + row order) no matter where the swap lands — including
// "never" (the compile outlives the query, or fails: the interpreter simply
// finishes, and the only trace is the recorded compile time).
//
// Tiers: the background compile produces the default tier-1 module (the O2
// pipeline every foreground path uses). Once the compiled-query cache's hit
// count proves a signature hot, the controller enqueues a tier-2 recompile —
// CodeGenOpt::Aggressive codegen on an ORC ConcurrentIRCompiler plus an O3
// IRTransformLayer pass — and Promote()s it behind the same cache key with
// single-flight semantics; in-flight executions finish safely on the module
// they hold.
//
// Concurrency: one worker thread per TieredCompiler (one per engine), a
// mutex/cv job queue, and per-key coalescing — N shard controllers that ask
// for one plan share a single CompileTicket, and the compile itself goes
// through CompiledQueryCache::GetOrCompile, so it also single-flights
// against any foreground compile and publishes the module for every later
// run. Jobs borrow engine-owned subsystems (catalog, plug-ins, caches)
// through a by-value ExecContext and keep the plan alive via its shared_ptr,
// so the compiler must be destroyed before those subsystems — QueryEngine
// declares it last for exactly that reason.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/algebra/algebra.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/engine/interp.h"
#include "src/engine/partial_sink.h"
#include "src/jit/query_cache.h"

namespace proteus {
namespace jit {

/// Knobs (and deterministic test hooks) of tiered execution.
struct TieredOptions {
  static constexpr uint64_t kNeverSwap = ~0ull;

  /// Lifetime cache-hit count at which a tier-1 signature earns the
  /// background aggressive (tier-2) recompile. 0 disables promotion.
  uint64_t tier2_hit_threshold = 3;

  /// Test hook: artificial delay (ms) inside the background compile job —
  /// forces a deterministically slow compile so tests can pin the swap
  /// mid-query (or past the query's end).
  int compile_delay_ms = 0;

  /// Test hook: interpret exactly this many morsels, then *block* on the
  /// background compile and swap — pinning the swap boundary regardless of
  /// compile speed. 0 blocks before any interpreter work (pure-JIT tiered
  /// run); a value >= the morsel count means the interpreter finishes the
  /// whole query and the compile result is never consumed. kNeverSwap (the
  /// default) restores natural non-blocking polling at morsel boundaries.
  uint64_t force_swap_after_morsels = kNeverSwap;
};

/// How one tiered run went (surfaced as QueryTelemetry / ShardExecStats).
struct TieredRunStats {
  int compile_tier = 0;            ///< tier of the module that ran morsels (0 = interpreter only)
  uint64_t morsels_interpreted = 0;///< morsels executed before the swap
  uint64_t morsels_jit = 0;        ///< morsels executed by generated code
  double swap_ms = 0;              ///< ms from run start to the hot-swap (0 = never swapped)
  double first_morsel_ms = 0;      ///< ms from run start to the first completed chunk
  double compile_ms = 0;           ///< background compile ms this run observed (0 if unconsumed)
  bool cache_hit = false;          ///< a cached module served the run from morsel 0
  bool ir_verified = false;        ///< the module that served morsels passed the IR verifier
};

/// One background compile's rendezvous. The query thread polls Ready() at
/// morsel boundaries and never blocks (the force-swap test hook and Drain
/// are the only waiters).
class CompileTicket {
 public:
  bool Ready() const EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return done_;
  }
  void Wait() const EXCLUDES(mu_) {
    MutexLock lk(mu_);
    while (!done_) cv_.Wait(mu_);
  }
  /// Valid once Ready(): the compile outcome and its wall time. A failed
  /// compile leaves module() null and status() the error.
  Status status() const EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return status_;
  }
  std::shared_ptr<const CompiledModule> module() const EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return module_;
  }
  double compile_ms() const EXCLUDES(mu_) {
    MutexLock lk(mu_);
    return compile_ms_;
  }

 private:
  friend class TieredCompiler;
  void Fulfill(Status status, std::shared_ptr<const CompiledModule> module, double ms)
      EXCLUDES(mu_) {
    {
      MutexLock lk(mu_);
      status_ = std::move(status);
      module_ = std::move(module);
      compile_ms_ = ms;
      done_ = true;
    }
    cv_.NotifyAll();
  }

  mutable Mutex mu_;
  mutable CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  Status status_ GUARDED_BY(mu_) = Status::OK();
  std::shared_ptr<const CompiledModule> module_ GUARDED_BY(mu_);
  double compile_ms_ GUARDED_BY(mu_) = 0;
};

/// The engine-wide background compile thread. See the file comment.
class TieredCompiler {
 public:
  TieredCompiler();
  /// Runs every queued job to completion, then joins the worker.
  ~TieredCompiler();

  TieredCompiler(const TieredCompiler&) = delete;
  TieredCompiler& operator=(const TieredCompiler&) = delete;

  /// Enqueues a tier-1 morsel-mode compile of `plan`. Requests for a key
  /// already in flight return the existing ticket (N shards, one compile);
  /// with ctx.jit_cache set the compile runs through GetOrCompile, so it
  /// single-flights against foreground compiles too and publishes the module
  /// for every later run. `delay_ms` is the TieredOptions::compile_delay_ms
  /// test hook.
  std::shared_ptr<CompileTicket> EnqueueCompile(const ExecContext& ctx, OpPtr plan,
                                                int delay_ms) EXCLUDES(mu_);

  /// Enqueues a tier-2 (aggressive) recompile of `plan`, swapping the result
  /// behind its cache key via Promote(). Single-flight per key; a no-op
  /// without a cache (there would be nothing to promote into).
  void EnqueuePromotion(const ExecContext& ctx, OpPtr plan) EXCLUDES(mu_);

  /// Blocks until every queued job has run (tests and benches only — the
  /// query path never waits here).
  void Drain() EXCLUDES(mu_);

  uint64_t jobs_run() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;       ///< worker wake
  CondVar idle_cv_;  ///< Drain wake
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  /// Key → shared ticket of the in-flight tier-1 compile (coalescing).
  std::unordered_map<std::string, std::shared_ptr<CompileTicket>> inflight_ GUARDED_BY(mu_);
  /// Keys with a tier-2 recompile queued or running (single-flight).
  std::unordered_set<std::string> tier2_inflight_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  bool busy_ GUARDED_BY(mu_) = false;
  uint64_t jobs_run_ GUARDED_BY(mu_) = 0;
  std::thread worker_;  ///< last member: joined before the queue state dies
};

/// The tiered execution controller. Runs morsels [morsel_begin, morsel_end)
/// of `plan`'s global decomposition (the whole plan when `whole_plan`):
/// warm — a cached module (TryGet, non-blocking) runs everything as
/// generated code; cold — interpreter chunks (one scheduler fan-out of up to
/// num_threads morsels each) execute immediately while the module compiles
/// in the background, and the first morsel boundary that finds the ticket
/// ready hot-swaps the remaining range to JitExecutor::
/// ExecutePartialsPrecompiled. Partials append in morsel order either way,
/// so the caller folds one FinalizePlanPartials frame and results are
/// cell-identical to pure-interpreter and pure-JIT runs. Also enqueues the
/// tier-2 promotion once the cache's hit count crosses
/// TieredOptions::tier2_hit_threshold.
///
/// Requires ctx.tiered (the compiler) and ctx.scheduler; reads knobs from
/// ctx.tiered_opts (defaults when null). Returns Unimplemented for plans the
/// controller declines (not shardable: outer joins in the probe chain, or
/// shapes outside the morsel driver) — callers keep their normal path.
Result<PlanPartials> RunTiered(const ExecContext& ctx, const OpPtr& plan,
                               uint64_t morsel_begin, uint64_t morsel_end, bool whole_plan,
                               TieredRunStats* stats);

}  // namespace jit
}  // namespace proteus
