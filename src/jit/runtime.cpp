#include "src/jit/runtime.h"

#include <charconv>
#include <cstring>

#include "src/common/hash.h"
#include "src/engine/partial_sink.h"

namespace proteus {
namespace jit {

std::vector<std::pair<std::string, void*>> RuntimeSymbols() {
  return {
      {"proteus_csv_int", reinterpret_cast<void*>(&proteus_csv_int)},
      {"proteus_csv_double", reinterpret_cast<void*>(&proteus_csv_double)},
      {"proteus_csv_str", reinterpret_cast<void*>(&proteus_csv_str)},
      {"proteus_json_has", reinterpret_cast<void*>(&proteus_json_has)},
      {"proteus_json_int_opt", reinterpret_cast<void*>(&proteus_json_int_opt)},
      {"proteus_json_int", reinterpret_cast<void*>(&proteus_json_int)},
      {"proteus_json_double", reinterpret_cast<void*>(&proteus_json_double)},
      {"proteus_json_bool", reinterpret_cast<void*>(&proteus_json_bool)},
      {"proteus_json_str", reinterpret_cast<void*>(&proteus_json_str)},
      {"proteus_unnest_init", reinterpret_cast<void*>(&proteus_unnest_init)},
      {"proteus_unnest_has_next", reinterpret_cast<void*>(&proteus_unnest_has_next)},
      {"proteus_unnest_advance", reinterpret_cast<void*>(&proteus_unnest_advance)},
      {"proteus_unnest_elem_int", reinterpret_cast<void*>(&proteus_unnest_elem_int)},
      {"proteus_unnest_elem_double", reinterpret_cast<void*>(&proteus_unnest_elem_double)},
      {"proteus_unnest_elem_str", reinterpret_cast<void*>(&proteus_unnest_elem_str)},
      {"proteus_join_insert", reinterpret_cast<void*>(&proteus_join_insert)},
      {"proteus_join_insert_null", reinterpret_cast<void*>(&proteus_join_insert_null)},
      {"proteus_join_build", reinterpret_cast<void*>(&proteus_join_build)},
      {"proteus_join_probe_first", reinterpret_cast<void*>(&proteus_join_probe_first)},
      {"proteus_join_probe_next", reinterpret_cast<void*>(&proteus_join_probe_next)},
      {"proteus_join_probe_row", reinterpret_cast<void*>(&proteus_join_probe_row)},
      {"proteus_join_rows", reinterpret_cast<void*>(&proteus_join_rows)},
      {"proteus_join_payload_at", reinterpret_cast<void*>(&proteus_join_payload_at)},
      {"proteus_group_upsert", reinterpret_cast<void*>(&proteus_group_upsert)},
      {"proteus_group_upsert_str", reinterpret_cast<void*>(&proteus_group_upsert_str)},
      {"proteus_group_count", reinterpret_cast<void*>(&proteus_group_count)},
      {"proteus_group_key", reinterpret_cast<void*>(&proteus_group_key)},
      {"proteus_group_key_str", reinterpret_cast<void*>(&proteus_group_key_str)},
      {"proteus_group_slots", reinterpret_cast<void*>(&proteus_group_slots)},
      {"proteus_result_emit_int", reinterpret_cast<void*>(&proteus_result_emit_int)},
      {"proteus_result_emit_double", reinterpret_cast<void*>(&proteus_result_emit_double)},
      {"proteus_result_emit_bool", reinterpret_cast<void*>(&proteus_result_emit_bool)},
      {"proteus_result_emit_str", reinterpret_cast<void*>(&proteus_result_emit_str)},
      {"proteus_result_emit_null", reinterpret_cast<void*>(&proteus_result_emit_null)},
      {"proteus_result_end_row", reinterpret_cast<void*>(&proteus_result_end_row)},
      {"proteus_result_end_row_set", reinterpret_cast<void*>(&proteus_result_end_row_set)},
      {"proteus_str_eq", reinterpret_cast<void*>(&proteus_str_eq)},
      {"proteus_str_lt", reinterpret_cast<void*>(&proteus_str_lt)},
      // Per-morsel partial sinks (partial_sink.h).
      {"proteus_sink_agg_flush_int", reinterpret_cast<void*>(&proteus_sink_agg_flush_int)},
      {"proteus_sink_agg_flush_double",
       reinterpret_cast<void*>(&proteus_sink_agg_flush_double)},
      {"proteus_sink_agg_flush_bool", reinterpret_cast<void*>(&proteus_sink_agg_flush_bool)},
      {"proteus_sink_group_begin_int",
       reinterpret_cast<void*>(&proteus_sink_group_begin_int)},
      {"proteus_sink_group_begin_double",
       reinterpret_cast<void*>(&proteus_sink_group_begin_double)},
      {"proteus_sink_group_begin_bool",
       reinterpret_cast<void*>(&proteus_sink_group_begin_bool)},
      {"proteus_sink_group_begin_str",
       reinterpret_cast<void*>(&proteus_sink_group_begin_str)},
      {"proteus_sink_group_agg_count",
       reinterpret_cast<void*>(&proteus_sink_group_agg_count)},
      {"proteus_sink_group_agg_int", reinterpret_cast<void*>(&proteus_sink_group_agg_int)},
      {"proteus_sink_group_agg_double",
       reinterpret_cast<void*>(&proteus_sink_group_agg_double)},
      {"proteus_sink_group_agg_bool", reinterpret_cast<void*>(&proteus_sink_group_agg_bool)},
      {"proteus_sink_group_agg_str", reinterpret_cast<void*>(&proteus_sink_group_agg_str)},
      {"proteus_sink_emit_int", reinterpret_cast<void*>(&proteus_sink_emit_int)},
      {"proteus_sink_emit_double", reinterpret_cast<void*>(&proteus_sink_emit_double)},
      {"proteus_sink_emit_bool", reinterpret_cast<void*>(&proteus_sink_emit_bool)},
      {"proteus_sink_emit_str", reinterpret_cast<void*>(&proteus_sink_emit_str)},
      {"proteus_sink_emit_end", reinterpret_cast<void*>(&proteus_sink_emit_end)},
      {"proteus_sink_emit_null", reinterpret_cast<void*>(&proteus_sink_emit_null)},
      {"proteus_sink_join_matched", reinterpret_cast<void*>(&proteus_sink_join_matched)},
      {"proteus_sink_group_begin_null",
       reinterpret_cast<void*>(&proteus_sink_group_begin_null)},
  };
}

}  // namespace jit
}  // namespace proteus

// ---------------------------------------------------------------------------
// Shared parsing helpers (file-local)
// ---------------------------------------------------------------------------

namespace {

using proteus::CsvPlugin;
using proteus::JsonPlugin;
using proteus::JsonToken;
using proteus::JsonTokenType;
using proteus::jit::GroupTableRt;
using proteus::jit::JoinTableRt;
using proteus::jit::MorselCtx;
using proteus::jit::QueryRuntime;
using proteus::jit::UnnestStateRt;

MorselCtx* CTX(void* p) { return static_cast<MorselCtx*>(p); }
QueryRuntime* RT(void* p) { return CTX(p)->rt; }

int64_t ParseIntSpan(const char* s, const char* e) {
  int64_t v = 0;
  std::from_chars(s, e, v);
  return v;
}

double ParseDoubleSpan(const char* s, const char* e) {
  double v = 0;
  std::from_chars(s, e, v);
  return v;
}

/// Finds the value span of `"name": value` among the top-level fields of a
/// JSON object element ([s, e)). Returns false if absent.
bool FindElemField(const char* s, const char* e, const char* name, int64_t name_len,
                   const char** vs, const char** ve) {
  const char* p = s;
  if (p >= e || *p != '{') return false;
  ++p;
  while (p < e) {
    while (p < e && (*p == ' ' || *p == ',' || *p == '\n' || *p == '\t')) ++p;
    if (p >= e || *p == '}') return false;
    if (*p != '"') return false;
    const char* ns = ++p;
    while (p < e && *p != '"') {
      if (*p == '\\') ++p;
      ++p;
    }
    const char* ne = p;
    ++p;  // closing quote
    while (p < e && (*p == ' ' || *p == ':')) ++p;
    const char* val_start = p;
    if (p < e && *p == '"') {
      ++p;
      while (p < e && *p != '"') {
        if (*p == '\\') ++p;
        ++p;
      }
      ++p;
    } else if (p < e && (*p == '{' || *p == '[')) {
      int depth = 0;
      while (p < e) {
        if (*p == '"') {
          ++p;
          while (p < e && *p != '"') {
            if (*p == '\\') ++p;
            ++p;
          }
          ++p;
          continue;
        }
        if (*p == '{' || *p == '[') ++depth;
        if (*p == '}' || *p == ']') {
          --depth;
          ++p;
          if (depth == 0) break;
          continue;
        }
        ++p;
      }
    } else {
      while (p < e && *p != ',' && *p != '}') ++p;
    }
    if (static_cast<int64_t>(ne - ns) == name_len && std::memcmp(ns, name, name_len) == 0) {
      *vs = val_start;
      *ve = p;
      return true;
    }
  }
  return false;
}

const JsonToken* JsonTok(const void* plugin, uint64_t oid, uint64_t path_hash) {
  return static_cast<const JsonPlugin*>(plugin)->FindTokenByHash(oid, path_hash);
}

uint32_t GroupFind(GroupTableRt& g, uint64_t hash, int64_t ikey, const char* skey,
                   int64_t slen) {
  if (g.buckets.empty()) {
    g.buckets.assign(1024, 0xFFFFFFFFu);
    g.mask = 1023;
  }
  // Grow at 70% load.
  auto count = static_cast<uint32_t>(g.string_keys ? g.skeys.size() : g.ikeys.size());
  if (count * 10 > (g.mask + 1) * 7) {
    uint32_t new_size = (g.mask + 1) * 2;
    g.buckets.assign(new_size, 0xFFFFFFFFu);
    g.mask = new_size - 1;
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t h = g.string_keys
                       ? proteus::HashString(g.skeys[i])
                       : proteus::HashMix64(static_cast<uint64_t>(g.ikeys[i]));
      uint32_t b = static_cast<uint32_t>(h) & g.mask;
      while (g.buckets[b] != 0xFFFFFFFFu) b = (b + 1) & g.mask;
      g.buckets[b] = i;
    }
  }
  uint32_t b = static_cast<uint32_t>(hash) & g.mask;
  while (true) {
    uint32_t idx = g.buckets[b];
    if (idx == 0xFFFFFFFFu) {
      // Insert new group.
      uint32_t gi;
      if (g.string_keys) {
        gi = static_cast<uint32_t>(g.skeys.size());
        g.skeys.emplace_back(skey, static_cast<size_t>(slen));
      } else {
        gi = static_cast<uint32_t>(g.ikeys.size());
        g.ikeys.push_back(ikey);
      }
      g.buckets[b] = gi;
      g.slots.insert(g.slots.end(), g.init_slots.begin(), g.init_slots.end());
      return gi;
    }
    bool match = g.string_keys
                     ? (static_cast<int64_t>(g.skeys[idx].size()) == slen &&
                        std::memcmp(g.skeys[idx].data(), skey, static_cast<size_t>(slen)) == 0)
                     : g.ikeys[idx] == ikey;
    if (match) return idx;
    b = (b + 1) & g.mask;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// extern "C" implementations
// ---------------------------------------------------------------------------

int64_t proteus_csv_int(const void* plugin, uint64_t oid, uint32_t col) {
  std::string_view t = static_cast<const CsvPlugin*>(plugin)->FieldText(oid, col);
  return ParseIntSpan(t.data(), t.data() + t.size());
}

double proteus_csv_double(const void* plugin, uint64_t oid, uint32_t col) {
  std::string_view t = static_cast<const CsvPlugin*>(plugin)->FieldText(oid, col);
  return ParseDoubleSpan(t.data(), t.data() + t.size());
}

const char* proteus_csv_str(const void* plugin, uint64_t oid, uint32_t col, int64_t* len) {
  std::string_view t = static_cast<const CsvPlugin*>(plugin)->FieldText(oid, col);
  *len = static_cast<int64_t>(t.size());
  return t.data();
}

int32_t proteus_json_has(const void* plugin, uint64_t oid, uint64_t path_hash) {
  return JsonTok(plugin, oid, path_hash) != nullptr ? 1 : 0;
}

int32_t proteus_json_int_opt(const void* plugin, uint64_t oid, uint64_t path_hash,
                             int64_t* out) {
  const JsonToken* t = JsonTok(plugin, oid, path_hash);
  if (t == nullptr) {
    *out = 0;
    return 0;
  }
  const char* b = static_cast<const JsonPlugin*>(plugin)->ObjectBase(oid);
  *out = ParseIntSpan(b + t->start, b + t->end);
  return 1;
}

int64_t proteus_json_int(const void* plugin, uint64_t oid, uint64_t path_hash) {
  const JsonToken* t = JsonTok(plugin, oid, path_hash);
  if (t == nullptr) return 0;
  const char* b = static_cast<const JsonPlugin*>(plugin)->ObjectBase(oid);
  return ParseIntSpan(b + t->start, b + t->end);
}

double proteus_json_double(const void* plugin, uint64_t oid, uint64_t path_hash) {
  const JsonToken* t = JsonTok(plugin, oid, path_hash);
  if (t == nullptr) return 0;
  const char* b = static_cast<const JsonPlugin*>(plugin)->ObjectBase(oid);
  return ParseDoubleSpan(b + t->start, b + t->end);
}

int64_t proteus_json_bool(const void* plugin, uint64_t oid, uint64_t path_hash) {
  const JsonToken* t = JsonTok(plugin, oid, path_hash);
  if (t == nullptr) return 0;
  const char* b = static_cast<const JsonPlugin*>(plugin)->ObjectBase(oid);
  return b[t->start] == 't' ? 1 : 0;
}

const char* proteus_json_str(const void* plugin, uint64_t oid, uint64_t path_hash,
                             int64_t* len) {
  const JsonToken* t = JsonTok(plugin, oid, path_hash);
  if (t == nullptr || t->type != JsonTokenType::kString) {
    *len = 0;
    return "";
  }
  const char* b = static_cast<const JsonPlugin*>(plugin)->ObjectBase(oid);
  *len = static_cast<int64_t>(t->end - t->start) - 2;  // strip quotes
  return b + t->start + 1;
}

void proteus_unnest_init(void* ctx, uint32_t slot, const void* plugin, uint64_t oid,
                         uint64_t path_hash) {
  UnnestStateRt& u = CTX(ctx)->unnests[slot];
  const auto* jp = static_cast<const JsonPlugin*>(plugin);
  u.plugin = jp;
  u.obj_base = jp->ObjectBase(oid);
  const JsonToken* t = jp->FindTokenByHash(oid, path_hash);
  const proteus::JsonArrayInfo* info =
      (t != nullptr && t->type == JsonTokenType::kArray) ? jp->FindArrayInfo(t) : nullptr;
  if (info == nullptr) {
    u.pos = u.end = 0;
    return;
  }
  u.elems = jp->elems().data();
  u.pos = info->elem_begin;
  u.end = info->elem_begin + info->elem_count;
}

int32_t proteus_unnest_has_next(void* ctx, uint32_t slot) {
  UnnestStateRt& u = CTX(ctx)->unnests[slot];
  if (u.pos >= u.end) return 0;
  u.elem_start = u.obj_base + u.elems[u.pos].start;
  u.elem_end = u.obj_base + u.elems[u.pos].end;
  return 1;
}

void proteus_unnest_advance(void* ctx, uint32_t slot) { CTX(ctx)->unnests[slot].pos++; }

int64_t proteus_unnest_elem_int(void* ctx, uint32_t slot, const char* name, int64_t name_len) {
  UnnestStateRt& u = CTX(ctx)->unnests[slot];
  if (name_len == 0) return ParseIntSpan(u.elem_start, u.elem_end);
  const char *vs, *ve;
  if (!FindElemField(u.elem_start, u.elem_end, name, name_len, &vs, &ve)) return 0;
  return ParseIntSpan(vs, ve);
}

double proteus_unnest_elem_double(void* ctx, uint32_t slot, const char* name,
                                  int64_t name_len) {
  UnnestStateRt& u = CTX(ctx)->unnests[slot];
  if (name_len == 0) return ParseDoubleSpan(u.elem_start, u.elem_end);
  const char *vs, *ve;
  if (!FindElemField(u.elem_start, u.elem_end, name, name_len, &vs, &ve)) return 0;
  return ParseDoubleSpan(vs, ve);
}

const char* proteus_unnest_elem_str(void* ctx, uint32_t slot, const char* name,
                                    int64_t name_len, int64_t* len) {
  UnnestStateRt& u = CTX(ctx)->unnests[slot];
  const char *vs = u.elem_start, *ve = u.elem_end;
  if (name_len > 0 && !FindElemField(u.elem_start, u.elem_end, name, name_len, &vs, &ve)) {
    *len = 0;
    return "";
  }
  if (vs < ve && *vs == '"') {
    *len = static_cast<int64_t>(ve - vs) - 2;
    return vs + 1;
  }
  *len = static_cast<int64_t>(ve - vs);
  return vs;
}

void proteus_join_insert(void* ctx, uint32_t table, int64_t key, const int64_t* payload) {
  JoinTableRt& t = *RT(ctx)->joins[table];
  uint32_t row = static_cast<uint32_t>(t.keys.size());
  t.keys.push_back(key);
  t.payload.insert(t.payload.end(), payload, payload + t.slots_per_row);
  t.table.Insert(proteus::HashMix64(static_cast<uint64_t>(key)), row);
}

void proteus_join_insert_null(void* ctx, uint32_t table, const int64_t* payload) {
  JoinTableRt& t = *RT(ctx)->joins[table];
  // Row slot without a radix entry: unreachable from probes (the sentinel
  // key is never compared), visible to the unmatched drain.
  t.keys.push_back(0);
  t.payload.insert(t.payload.end(), payload, payload + t.slots_per_row);
}

void proteus_join_build(void* ctx, uint32_t table) {
  // Parallel radix build when a scheduler is attached — byte-identical
  // layout to the serial build, so probes see the same chain order.
  RT(ctx)->joins[table]->table.Build(RT(ctx)->scheduler);
}

const int64_t* proteus_join_probe_first(void* ctx, uint32_t table, int64_t key) {
  const JoinTableRt& t = *RT(ctx)->joins[table];
  MorselCtx::ProbeState& ps = CTX(ctx)->probes[table];
  ps.matches.clear();
  ps.pos = 0;
  t.table.Probe(proteus::HashMix64(static_cast<uint64_t>(key)), [&](uint32_t row) {
    if (t.keys[row] == key) ps.matches.push_back(row);
  });
  return proteus_join_probe_next(ctx, table);
}

const int64_t* proteus_join_probe_next(void* ctx, uint32_t table) {
  const JoinTableRt& t = *RT(ctx)->joins[table];
  MorselCtx::ProbeState& ps = CTX(ctx)->probes[table];
  if (ps.pos >= ps.matches.size()) return nullptr;
  uint32_t row = ps.matches[ps.pos++];
  ps.cur_row = row;
  // slots_per_row == 0 would alias end-of-data with "no match"; the builder
  // always reserves at least one slot.
  return t.payload.data() + static_cast<size_t>(row) * t.slots_per_row;
}

int64_t proteus_join_probe_row(void* ctx, uint32_t table) {
  return static_cast<int64_t>(CTX(ctx)->probes[table].cur_row);
}

int64_t proteus_join_rows(void* ctx, uint32_t table) {
  return static_cast<int64_t>(RT(ctx)->joins[table]->keys.size());
}

const int64_t* proteus_join_payload_at(void* ctx, uint32_t table, int64_t row) {
  const JoinTableRt& t = *RT(ctx)->joins[table];
  return t.payload.data() + static_cast<size_t>(row) * t.slots_per_row;
}

int64_t* proteus_group_upsert(void* ctx, uint32_t table, int64_t key) {
  GroupTableRt& g = *RT(ctx)->groups[table];
  uint32_t idx = GroupFind(g, proteus::HashMix64(static_cast<uint64_t>(key)), key, nullptr, 0);
  return g.slots.data() + static_cast<size_t>(idx) * g.slots_per_group;
}

int64_t* proteus_group_upsert_str(void* ctx, uint32_t table, const char* key, int64_t len) {
  GroupTableRt& g = *RT(ctx)->groups[table];
  uint32_t idx = GroupFind(g, proteus::HashBytes(key, static_cast<size_t>(len)), 0, key, len);
  return g.slots.data() + static_cast<size_t>(idx) * g.slots_per_group;
}

uint64_t proteus_group_count(void* ctx, uint32_t table) {
  GroupTableRt& g = *RT(ctx)->groups[table];
  return g.string_keys ? g.skeys.size() : g.ikeys.size();
}

int64_t proteus_group_key(void* ctx, uint32_t table, uint64_t idx) {
  return RT(ctx)->groups[table]->ikeys[idx];
}

const char* proteus_group_key_str(void* ctx, uint32_t table, uint64_t idx, int64_t* len) {
  const std::string& s = RT(ctx)->groups[table]->skeys[idx];
  *len = static_cast<int64_t>(s.size());
  return s.data();
}

int64_t* proteus_group_slots(void* ctx, uint32_t table, uint64_t idx) {
  GroupTableRt& g = *RT(ctx)->groups[table];
  return g.slots.data() + idx * g.slots_per_group;
}

void proteus_result_emit_int(void* ctx, int64_t v) {
  RT(ctx)->cur_row.push_back(proteus::Value::Int(v));
}
void proteus_result_emit_double(void* ctx, double v) {
  RT(ctx)->cur_row.push_back(proteus::Value::Float(v));
}
void proteus_result_emit_bool(void* ctx, int32_t v) {
  RT(ctx)->cur_row.push_back(proteus::Value::Boolean(v != 0));
}
void proteus_result_emit_str(void* ctx, const char* p, int64_t len) {
  RT(ctx)->cur_row.push_back(proteus::Value::Str(std::string(p, static_cast<size_t>(len))));
}
void proteus_result_emit_null(void* ctx) {
  RT(ctx)->cur_row.push_back(proteus::Value::Null());
}
void proteus_result_end_row(void* ctx) {
  QueryRuntime* q = RT(ctx);
  q->result.rows.push_back(std::move(q->cur_row));
  q->cur_row.clear();
}
void proteus_result_end_row_set(void* ctx) {
  QueryRuntime* q = RT(ctx);
  // Box the row and dedup through the one set-monoid implementation (hash
  // index + Equals, first appearance wins); keep it only if new.
  if (q->result_set.InsertDistinct(proteus::Value::MakeList(q->cur_row))) {
    q->result.rows.push_back(std::move(q->cur_row));
  }
  q->cur_row.clear();
}

int32_t proteus_str_eq(const char* a, int64_t alen, const char* b, int64_t blen) {
  return alen == blen && std::memcmp(a, b, static_cast<size_t>(alen)) == 0 ? 1 : 0;
}

int32_t proteus_str_lt(const char* a, int64_t alen, const char* b, int64_t blen) {
  int c = std::memcmp(a, b, static_cast<size_t>(std::min(alen, blen)));
  return (c < 0 || (c == 0 && alen < blen)) ? 1 : 0;
}
