// The on-demand query engine (paper §5.1 "An Engine per Query").
//
// The JitExecutor traverses a physical plan once, post-order, and emits one
// LLVM IR function for the whole query — scans become loops, selections
// become branches, pipelined operators fuse into their parent's loop body,
// and blocking operators (radix-join build, nest) split the function into
// consecutive pipelines. Field values live in virtual buffers (allocas) that
// LLVM's mem2reg promotes to CPU registers. The IR is optimized and compiled
// to machine code by ORC LLJIT within milliseconds, then run.
//
// Plans using features outside the generated fast path (outer joins,
// non-equi joins, collection monoids inside Nest, deep paths inside array
// elements) return Unimplemented, and the QueryEngine facade transparently
// falls back to the interpreter. The property suite asserts JIT ≡
// interpreter on everything the JIT accepts.
#pragma once

#include <memory>
#include <string>

#include "src/algebra/algebra.h"
#include "src/engine/interp.h"
#include "src/engine/result.h"

namespace proteus {

class JitExecutor {
 public:
  explicit JitExecutor(ExecContext ctx) : ctx_(ctx) {}

  /// Compiles and runs `plan` (root must be Reduce).
  Result<QueryResult> Execute(const OpPtr& plan);

  /// Milliseconds spent generating + compiling IR for the last query.
  double last_compile_ms() const { return last_compile_ms_; }
  /// The LLVM IR of the last query (before optimization), for inspection.
  const std::string& last_ir() const { return last_ir_; }

 private:
  ExecContext ctx_;
  double last_compile_ms_ = 0;
  std::string last_ir_;
};

}  // namespace proteus
