// The on-demand query engine (paper §5.1 "An Engine per Query").
//
// The JitExecutor traverses a physical plan once, post-order, and emits
// LLVM IR — scans become loops, selections become branches, pipelined
// operators fuse into their parent's loop body, and blocking operators
// (radix-join build, nest) split the emission into consecutive pipelines.
// Field values live in virtual buffers (allocas) that LLVM's mem2reg
// promotes to CPU registers. The IR is optimized and compiled to machine
// code by ORC LLJIT within milliseconds, then run.
//
// Morsel-parallelizable plans compile to *range-parameterized* pipelines:
// proteus_build(ctx) runs shared join builds once, then the scheduler
// drives proteus_pipeline(ctx, sink, morsel_begin, morsel_end) — one call
// per morsel of the plug-in Split() decomposition, each feeding a private
// partial sink (partial_sink.h) — and the partials merge in global morsel
// order through the same fold the interpreter uses. Results are therefore
// cell-identical for every thread count and across engines; num_threads is
// purely a performance knob even with codegen on. Other shapes keep the
// legacy whole-relation proteus_query(ctx) function.
//
// Compiled code is position-independent (src/jit/query_cache.h): data
// pointers, relation sizes, and plug-in addresses live in a per-execution
// parameter table, not the instruction stream, so a module compiled once can
// be cached by plan signature and re-run — across executions, threads, and
// shards — after a cheap re-bind. When ExecContext::jit_cache is set, the
// executor looks modules up there before compiling (concurrent lookups of
// one signature single-flight), and last_cache_hit()/last_compile_ms()
// report how the plan was served.
//
// Outer joins compile too (morsel mode): probe pipelines set per-morsel
// matched-build bitmaps through their partial sink, and one generated
// proteus_drain<k> function per outer chain join runs once after all probe
// morsels report, emitting the unmatched build rows (probe side bound to
// SQL null) through the ops above the join into trailing partial slots —
// the interpreter's exact drain frame. Outer unnests emit a null-element
// branch, and set-monoid roots emit through the collection sink whose kSet
// Aggregator deduplicates per morsel before the morsel-order merge. Join
// keys read from JSON carry a generated presence check so null keys never
// match, mirroring the interpreter's null-key rule on both build and probe
// sides.
//
// Join tables come in two bucket layouts — shared (one clustered array) and
// radix-partitioned (per-partition sub-tables with partition-local
// directories) — selected per join by the optimizer's skew-aware strategy
// pass (see docs/JOINS.md). Both produce identical probe chain orders, so
// the choice is invisible to results; it is baked into the compiled module
// and therefore part of the query-cache key. Non-equi joins compile to a
// nested loop over the frozen build rows (the interpreter's exact match
// enumeration), and float group keys box through the same Value-keyed group
// table the interpreter uses.
//
// Plans using features still outside the generated fast path (non-integer
// equi-join keys, outer joins off the pipeline chain, collection or boolean
// monoids inside Nest, deep paths inside array elements) return
// Unimplemented — every violation in the plan is reported, semicolon-joined
// — and the QueryEngine facade transparently falls back to the
// (morsel-parallel) interpreter — recording the failed attempt's compile
// time honestly. tests/test_jit_equiv.cpp is the differential harness
// asserting JIT ≡ interpreter, cell for cell, on everything the JIT
// accepts.
#pragma once

#include <memory>
#include <string>

#include "src/algebra/algebra.h"
#include "src/engine/interp.h"
#include "src/engine/result.h"
#include "src/jit/query_cache.h"

namespace proteus {

namespace jit {

/// Cache key of `plan` under the engine state in `ctx` — exactly the key
/// JitExecutor uses for its compiled-query-cache lookups, exposed so the
/// tiered controller can probe (TryGet), read hit counts, and Promote behind
/// the same key.
QueryCacheKey MakeQueryCacheKey(const ExecContext& ctx, const OpPtr& plan, CodegenMode mode);

/// Compiles `plan` to a ready CompiledModule without consulting any cache.
/// `tier` selects the optimization pipeline: 1 = the default O2 compile
/// (what every foreground path uses), 2 = the aggressive background
/// recompile — CodeGenOpt::Aggressive codegen on an ORC ConcurrentIRCompiler
/// plus an O3 IRTransformLayer pass — that the tiered controller requests
/// once a signature proves hot. kMorsel mode collects the plan's pipeline
/// chain itself; returns Unimplemented for plans outside the generated fast
/// path.
Result<std::shared_ptr<const CompiledModule>> CompilePlan(const ExecContext& ctx,
                                                          const OpPtr& plan, CodegenMode mode,
                                                          int tier);

}  // namespace jit

class JitExecutor {
 public:
  explicit JitExecutor(ExecContext ctx) : ctx_(ctx) {}

  /// Compiles and runs `plan` (root must be Reduce) as one whole-relation
  /// generated function — the legacy single-threaded path, kept for plan
  /// shapes the morsel driver does not understand.
  Result<QueryResult> Execute(const OpPtr& plan);

  /// Morsel-parallel execution: compiles the plan's pipelines with a
  /// (morsel_begin, morsel_end) range parameter, runs shared join builds
  /// once, drives the pipeline function over the plug-in Split() morsel
  /// decomposition via ctx.scheduler (per-morsel partial sinks), and merges
  /// the partials in global morsel order through FinalizePlanPartials — the
  /// same decomposition and fold the interpreter uses, so results are
  /// cell-identical (float bits included) for every thread count, to the
  /// interpreter, and across engines. Used for all thread counts (1
  /// included): one morsel frame means the thread count can never change the
  /// fold shape. Returns Unimplemented for plans (or features) outside the
  /// generated fast path; callers fall back to the interpreter.
  Result<QueryResult> ExecuteParallel(const OpPtr& plan, InterpExecutor::ExecStats* stats);

  /// Shard-side execution: runs only morsels [morsel_begin, morsel_end) of
  /// the global decomposition and returns their per-morsel partial sinks —
  /// the JIT counterpart of InterpExecutor::ExecutePartials, producing
  /// bit-identical partials, so shards can mix engines freely.
  Result<PlanPartials> ExecutePartials(const OpPtr& plan, uint64_t morsel_begin,
                                       uint64_t morsel_end);

  /// Tiered hot-swap entry: like ExecutePartials, but runs a module the
  /// background compiler already produced — no cache lookup and no compile
  /// on this thread, which is what makes the swap a morsel-boundary O(bind)
  /// operation. The module must have been compiled in morsel mode for an
  /// identical plan signature.
  Result<PlanPartials> ExecutePartialsPrecompiled(
      const OpPtr& plan, std::shared_ptr<const jit::CompiledModule> module,
      uint64_t morsel_begin, uint64_t morsel_end);

  /// Milliseconds spent generating + compiling IR for the last query. 0 when
  /// the compiled-query cache (ExecContext::jit_cache) served the plan — a
  /// cache hit performs no IR generation or compilation at all, only
  /// parameter binding.
  double last_compile_ms() const { return last_compile_ms_; }
  /// Whether the last query was served by the compiled-query cache.
  bool last_cache_hit() const { return last_cache_hit_; }
  /// The LLVM IR of the last query (before optimization), for inspection.
  /// A reference into the retained module — no per-execution copy, so warm
  /// runs (and shard executors) don't pay O(IR size) per query.
  const std::string& last_ir() const;
  /// The module the last execution ran (null before any run). Surfaces the
  /// served tier to telemetry.
  std::shared_ptr<const jit::CompiledModule> last_module() const { return last_module_; }

 private:
  /// Resolves the plan to a ready CompiledModule: through the shared
  /// signature-keyed cache when ExecContext::jit_cache is set (concurrent
  /// misses single-flight — one thread compiles, the rest wait and share),
  /// else by compiling directly.
  Result<std::shared_ptr<const jit::CompiledModule>> GetOrCompileModule(
      const OpPtr& plan, const MorselPipeline* pipe);
  /// `premodule`, when set, skips module resolution entirely (the tiered
  /// swap path: the background thread compiled it already).
  Result<PlanPartials> RunMorselPipelines(const OpPtr& plan, uint64_t morsel_begin,
                                          uint64_t morsel_end, bool whole_plan,
                                          InterpExecutor::ExecStats* stats,
                                          std::shared_ptr<const jit::CompiledModule> premodule);

  ExecContext ctx_;
  double last_compile_ms_ = 0;
  bool last_cache_hit_ = false;
  /// The last module run, kept alive so last_ir() can reference its IR.
  std::shared_ptr<const jit::CompiledModule> last_module_;
};

}  // namespace proteus
