// Compiled-query cache: signature-keyed reuse of JIT-generated engines
// across executions, threads, and shards.
//
// The paper's per-query engine customization (§5.1) pays an IR-generation +
// LLVM-compilation cost per execution; this module amortizes it for repeated
// plans, the regime a production engine serving heavy repeated traffic lives
// in. A `CompiledModule` is position-independent: every per-execution
// constant the old codegen baked into the instruction stream (data pointers,
// relation sizes, cache-block column bases, plug-in addresses) is hoisted
// into a *parameter table* — an int64 array described by `ParamDesc` entries,
// re-bound from the live catalog/plug-ins/caches before every run and passed
// to the generated functions as an extra argument. Runtime table shapes
// (join payload widths, group-table layouts, unnest slot count) are recorded
// in a `RuntimeLayout` so each execution rebuilds a fresh jit::QueryRuntime
// without touching the codegen.
//
// Keying: canonical plan signature (Operator::Signature()) + codegen mode
// (whole-relation vs morsel-parameterized) + catalog/caching epochs. The
// epochs make invalidation trivial: any catalog registration / dataset
// invalidation / cache install or eviction bumps an epoch, old keys stop
// matching, and stale entries age out of the LRU.
//
// Concurrency: lookups single-flight — when N shard executors (or any N
// threads) ask for the same key at once, exactly one compiles while the
// rest block on the entry and then share the module. Modules are handed out
// as shared_ptr<const CompiledModule>, so LRU eviction never invalidates a
// module mid-execution.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/plugins/plugin.h"

namespace llvm {
namespace orc {
class LLJIT;
}  // namespace orc
}  // namespace llvm

namespace proteus {

struct CacheBlock;
struct ExecContext;

namespace obs {
class TraceRecorder;
}  // namespace obs

namespace jit {

struct QueryRuntime;

/// Which entry points a module was generated with. Whole-relation and
/// morsel-parameterized code for the same plan are distinct machine code, so
/// the mode is part of the cache key.
enum class CodegenMode : uint8_t { kWholeRelation, kMorsel };

/// One hoisted per-execution constant of the generated code: what it is and
/// where to re-resolve it at bind time. Everything the generated code loads
/// from the parameter table instead of carrying as an immediate.
enum class ParamKind : uint8_t {
  kPluginPtr,        ///< InputPlugin* for dataset (CSV/JSON helper calls)
  kNumRecords,       ///< plugin->NumRecords() (non-driver scan loop bound)
  kBinColIntBase,    ///< BinColReader::IntColumn(column)
  kBinColFloatBase,  ///< BinColReader::FloatColumn(column)
  kBinColBoolBase,   ///< BinColReader::BoolColumn(column)
  kBinColStrOffsets, ///< BinColReader::StringOffsets(column)
  kBinColStrData,    ///< BinColReader::StringData(column)
  kBinRowRowsBase,   ///< BinRowReader::rows_base()
  kBinRowHeapBase,   ///< BinRowReader::heap_base()
  kCacheNumRows,     ///< CacheBlock::num_rows (cache-scan loop bound)
  kCacheColIntBase,  ///< CacheColumn::ints.data() (ints / bools / $oid)
  kCacheColFloatBase,///< CacheColumn::floats.data()
};

struct ParamDesc {
  ParamKind kind;
  std::string dataset;    ///< catalog name (raw-format and hybrid params)
  uint32_t column = 0;    ///< binary reader column index
  uint64_t cache_id = 0;  ///< cache-block params
  std::string var;        ///< cache column lookup: binding variable
  FieldPath path;         ///< cache column lookup: field path

  /// Canonical text form — the ParamTable dedup key.
  std::string ToString() const;
};

/// Grows the parameter-table layout during codegen, deduplicating repeated
/// constants (e.g. a column base referenced by several pipeline functions).
class ParamTable {
 public:
  uint32_t Slot(ParamDesc desc);
  const std::vector<ParamDesc>& descs() const { return descs_; }
  std::vector<ParamDesc> Take() { return std::move(descs_); }

 private:
  std::vector<ParamDesc> descs_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// Resolves every descriptor against the live catalog / plug-in registry /
/// caching manager into the int64 parameter vector the generated functions
/// read. Validates formats and column bounds so a stale module (one that
/// escaped epoch invalidation) fails loudly instead of reading through a
/// dangling base pointer. Thread-safe: only touches the mutex-guarded
/// PluginRegistry and read-only catalog/cache lookups, so N shard threads
/// can bind the same module concurrently. `pinned` (optional) receives
/// shared ownership of every cache block whose column base pointers were
/// baked into the parameter vector — the caller must keep it alive for as
/// long as the generated code may run, so a concurrent eviction cannot free
/// storage mid-execution.
Result<std::vector<int64_t>> BindParams(
    const ExecContext& ctx, const std::vector<ParamDesc>& descs,
    std::vector<std::shared_ptr<const CacheBlock>>* pinned = nullptr);

/// Shapes of the runtime tables the generated code indexes by slot: enough
/// to rebuild a fresh QueryRuntime for every execution of a cached module.
struct RuntimeLayout {
  struct JoinSpec {
    uint32_t payload_slots = 0;  ///< slots_per_row of the packed payload
    bool partitioned = false;    ///< probe layout of the build RadixTable
  };
  std::vector<JoinSpec> joins;
  struct GroupSpec {
    bool string_keys = false;
    std::vector<int64_t> init;  ///< per-slot init bit patterns
  };
  std::vector<GroupSpec> groups;
  uint32_t num_unnests = 0;

  uint32_t AddJoin(uint32_t payload_slots, bool partitioned = false) {
    joins.push_back({payload_slots, partitioned});
    return static_cast<uint32_t>(joins.size() - 1);
  }
  uint32_t AddGroup(bool string_keys, std::vector<int64_t> init) {
    groups.push_back({string_keys, std::move(init)});
    return static_cast<uint32_t>(groups.size() - 1);
  }
  uint32_t AddUnnest() { return num_unnests++; }
};

/// Registers the layout's join/group/unnest tables on a fresh QueryRuntime
/// (scheduler/result state untouched).
void InitRuntimeFromLayout(const RuntimeLayout& layout, QueryRuntime* rt);

/// A compiled-and-linked query engine: the LLJIT instance owning the machine
/// code, the resolved entry points, codegen metadata, and everything needed
/// to re-bind it to fresh data (layout + parameter descriptors). Immutable
/// after compilation — all mutable execution state lives in the per-run
/// QueryRuntime / MorselCtx / parameter vector, which is what makes one
/// module shareable across executions, threads, and shards.
struct CompiledModule {
  CompiledModule();
  ~CompiledModule();
  CompiledModule(CompiledModule&&) noexcept;
  CompiledModule& operator=(CompiledModule&&) noexcept;

  using QueryFn = void (*)(void*, const int64_t*);
  using BuildFn = void (*)(void*, const int64_t*);
  using PipelineFn = void (*)(void*, void*, const int64_t*, uint64_t, uint64_t);
  /// Outer-join unmatched-drain pass: (ctx, sink, merged_matched_bitmap,
  /// params). Run once per outer chain join — deepest first — after every
  /// probe morsel reported its matched-build bitmap. The bitmap is per-run
  /// state (host-side OR of the per-morsel sink bitmaps), never part of the
  /// instruction stream, so cached modules stay position-independent.
  using DrainFn = void (*)(void*, void*, const uint8_t*, const int64_t*);

  std::unique_ptr<llvm::orc::LLJIT> jit;  ///< owns the machine code
  /// Optimization tier this module was compiled at: 1 = the default pipeline
  /// (O2, the cold/tier-1 compile), 2 = the aggressive background recompile
  /// (CodeGenOpt::Aggressive + O3 transform layer) the tiered controller
  /// requests once the cache proves a signature hot. Same entry points, same
  /// results — only the machine code differs.
  int tier = 1;
  std::vector<std::string> columns;
  bool row_records = false;
  std::string ir;                    ///< unoptimized IR, for inspection
  QueryFn query_fn = nullptr;        ///< whole-relation mode
  BuildFn build_fn = nullptr;        ///< morsel mode
  PipelineFn pipeline_fn = nullptr;  ///< morsel mode
  /// Morsel mode: one drain function per outer chain join, deepest-first,
  /// with the matching join-table ids (bitmap sizing + OR source).
  std::vector<DrainFn> drain_fns;
  std::vector<uint32_t> outer_join_tables;
  RuntimeLayout layout;
  std::vector<ParamDesc> params;
  /// True when the generated-code contract verifier (src/jit/ir_verifier.h)
  /// ran on this module's IR and passed. Surfaced through
  /// QueryTelemetry::ir_verified / TieredRunStats / ShardExecStats so a
  /// silently-skipped verifier is detectable, not assumed.
  bool ir_verified = false;
};

/// Cache key: plan signature + codegen mode + join strategies + engine-state
/// epochs. The join strategies are part of the key (not of the signature —
/// the logical plan is unchanged) because a module's RuntimeLayout bakes
/// each build table's probe layout: the same plan optimized to a different
/// strategy mix must compile its own module.
struct QueryCacheKey {
  std::string signature;
  CodegenMode mode = CodegenMode::kMorsel;
  std::string join_strategies;  ///< comma-joined per-join strategy, plan order
  uint64_t catalog_epoch = 0;
  uint64_t cache_epoch = 0;

  bool operator==(const QueryCacheKey& o) const {
    return mode == o.mode && catalog_epoch == o.catalog_epoch &&
           cache_epoch == o.cache_epoch && join_strategies == o.join_strategies &&
           signature == o.signature;
  }
};

struct QueryCacheKeyHash {
  size_t operator()(const QueryCacheKey& k) const;
};

/// Thread-safe LRU cache of ready-to-run compiled query modules.
class CompiledQueryCache {
 public:
  /// `capacity` is the entry cap (>= 1); LRU entries are evicted past it.
  explicit CompiledQueryCache(size_t capacity = kDefaultCapacity);

  static constexpr size_t kDefaultCapacity = 32;

  struct Stats {
    uint64_t hits = 0;        ///< lookups served by a ready module (incl. waits)
    uint64_t misses = 0;      ///< lookups that had to compile
    uint64_t compiles = 0;    ///< successful compilations
    uint64_t evictions = 0;   ///< entries dropped by the LRU
    uint64_t single_flight_waits = 0;  ///< lookups that blocked on another
                                       ///< thread's in-progress compile
    uint64_t promotions = 0;           ///< ready modules replaced via Promote()
    double compile_ms_total = 0;       ///< wall ms spent inside compile fns
  };

  using CompileFn = std::function<Result<std::shared_ptr<const CompiledModule>>()>;

  /// Returns the module for `key`, compiling it via `compile` on a miss.
  /// Concurrent misses of the same key single-flight: one caller runs
  /// `compile` (unlocked), the rest block and share its module. Failed
  /// compilations are not cached — the error is returned to the compiling
  /// caller and to every waiter of that flight. `*cache_hit` reports whether
  /// this call was served without compiling (waiters count as hits).
  /// `trace` (nullable) records any single-flight block as a
  /// "single_flight_wait" span.
  Result<std::shared_ptr<const CompiledModule>> GetOrCompile(
      const QueryCacheKey& key, const CompileFn& compile, bool* cache_hit,
      obs::TraceRecorder* trace = nullptr) EXCLUDES(mu_);

  /// Non-blocking probe: returns `key`'s module when a ready entry exists
  /// (counted as a hit, LRU-touched), nullptr when the key is absent *or*
  /// another thread is still compiling it. The tiered controller uses this
  /// at query start — and at every morsel boundary — because it must never
  /// wait on a compile: not-ready simply means "keep interpreting".
  std::shared_ptr<const CompiledModule> TryGet(const QueryCacheKey& key) EXCLUDES(mu_);

  /// Replaces the ready entry of `key` with `module` (or inserts one if the
  /// key is absent — e.g. the original entry aged out of the LRU while the
  /// recompile ran). Used by the tier-2 path to swap an aggressive module in
  /// behind the same cache key; executions already holding the old
  /// shared_ptr finish on it safely. A key mid-compile is left alone
  /// (returns false) so single-flight waiters never see their entry mutate.
  bool Promote(const QueryCacheKey& key, std::shared_ptr<const CompiledModule> module)
      EXCLUDES(mu_);

  /// Lifetime hits of `key`'s entry (0 when absent). Survives Promote (the
  /// count is what proves a signature hot); resets if the entry is evicted.
  uint64_t HitCount(const QueryCacheKey& key) const EXCLUDES(mu_);

  /// Drops one entry / every entry (in-flight compiles are left to finish
  /// and publish; Clear only removes ready entries).
  void Erase(const QueryCacheKey& key) EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }
  Stats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    enum class State { kCompiling, kReady };
    State state = State::kCompiling;
    std::shared_ptr<const CompiledModule> module;
    std::list<QueryCacheKey>::iterator lru_it;  ///< valid when kReady
    uint64_t hits = 0;  ///< lifetime hits; the tier-2 hotness signal
  };

  void EvictOverCapacityLocked() REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  /// front = most recently used (ready entries only)
  std::list<QueryCacheKey> lru_ GUARDED_BY(mu_);
  std::unordered_map<QueryCacheKey, Entry, QueryCacheKeyHash> map_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace jit
}  // namespace proteus
