#include "src/jit/tiered_compiler.h"

#include <algorithm>
#include <chrono>

#include "src/jit/jit_engine.h"
#include "src/obs/trace.h"

namespace proteus {
namespace jit {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Text form of a cache key — the coalescing map key. Mirrors the fields of
/// QueryCacheKey::operator== exactly.
std::string KeyString(const QueryCacheKey& key) {
  return key.signature + "|" + std::to_string(static_cast<int>(key.mode)) + "|" +
         std::to_string(key.catalog_epoch) + "|" + std::to_string(key.cache_epoch);
}

}  // namespace

// ---------------------------------------------------------------------------
// TieredCompiler
// ---------------------------------------------------------------------------

TieredCompiler::TieredCompiler() : worker_([this] { WorkerLoop(); }) {}

TieredCompiler::~TieredCompiler() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
}

void TieredCompiler::WorkerLoop() {
  // Manual Lock/Unlock: the loop deliberately drops the lock around each
  // job() — the thread-safety analysis checks both sides of the drop.
  mu_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) cv_.Wait(mu_);
    // Drain the queue even on shutdown: queued tickets have waiters (or
    // future cache consumers) that must see a fulfilled result.
    if (queue_.empty()) {
      mu_.Unlock();
      return;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    mu_.Unlock();
    job();
    mu_.Lock();
    busy_ = false;
    ++jobs_run_;
    if (queue_.empty()) idle_cv_.NotifyAll();
  }
}

std::shared_ptr<CompileTicket> TieredCompiler::EnqueueCompile(const ExecContext& ctx,
                                                              OpPtr plan, int delay_ms) {
  const QueryCacheKey key = MakeQueryCacheKey(ctx, plan, CodegenMode::kMorsel);
  const std::string ks = KeyString(key);
  MutexLock lk(mu_);
  auto f = inflight_.find(ks);
  if (f != inflight_.end()) return f->second;
  auto ticket = std::make_shared<CompileTicket>();
  inflight_.emplace(ks, ticket);
  // The job captures ctx by value (borrowed engine subsystems — the engine
  // destroys this compiler first) and the plan by shared_ptr (keeps every
  // Operator* in the collected pipeline alive for the background walk).
  queue_.push_back([this, ctx, plan = std::move(plan), key, ks, ticket, delay_ms] {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (ctx.trace != nullptr) ctx.trace->LabelThisThread("background-compiler");
    const auto t0 = std::chrono::steady_clock::now();
    Result<std::shared_ptr<const CompiledModule>> r = [&] {
      // The span must close before Fulfill below: waiters proceed the moment
      // the ticket is fulfilled, and the query can snapshot its trace before
      // this thread is scheduled again — a still-open span would be missing
      // from the export.
      OBS_SPAN(ctx.trace, "background_compile");
      if (ctx.jit_cache != nullptr) {
        bool hit = false;
        return ctx.jit_cache->GetOrCompile(
            key, [&] { return CompilePlan(ctx, plan, key.mode, /*tier=*/1); }, &hit,
            ctx.trace);
      }
      return CompilePlan(ctx, plan, key.mode, /*tier=*/1);
    }();
    const double ms = MsSince(t0);
    {
      MutexLock lk2(mu_);
      inflight_.erase(ks);
    }
    if (r.ok()) {
      ticket->Fulfill(Status::OK(), std::move(*r), ms);
    } else {
      ticket->Fulfill(r.status(), nullptr, ms);
    }
  });
  cv_.NotifyOne();
  return ticket;
}

void TieredCompiler::EnqueuePromotion(const ExecContext& ctx, OpPtr plan) {
  if (ctx.jit_cache == nullptr) return;
  const QueryCacheKey key = MakeQueryCacheKey(ctx, plan, CodegenMode::kMorsel);
  const std::string ks = KeyString(key);
  MutexLock lk(mu_);
  if (!tier2_inflight_.insert(ks).second) return;
  queue_.push_back([this, ctx, plan = std::move(plan), key, ks] {
    if (ctx.trace != nullptr) ctx.trace->LabelThisThread("background-compiler");
    auto r = [&] {
      // Same publish-before-visibility rule as the tier-1 job: the span
      // closes before Promote makes the tier-2 module observable.
      OBS_SPAN(ctx.trace, "background_promotion");
      return CompilePlan(ctx, plan, key.mode, /*tier=*/2);
    }();
    // A failed aggressive recompile is silent: the tier-1 module keeps
    // serving, exactly as before the promotion attempt.
    if (r.ok()) ctx.jit_cache->Promote(key, std::move(*r));
    MutexLock lk2(mu_);
    tier2_inflight_.erase(ks);
  });
  cv_.NotifyOne();
}

void TieredCompiler::Drain() {
  MutexLock lk(mu_);
  while (!queue_.empty() || busy_) idle_cv_.Wait(mu_);
}

uint64_t TieredCompiler::jobs_run() const {
  MutexLock lk(mu_);
  return jobs_run_;
}

// ---------------------------------------------------------------------------
// RunTiered: the hot-swap controller
// ---------------------------------------------------------------------------

Result<PlanPartials> RunTiered(const ExecContext& ctx, const OpPtr& plan,
                               uint64_t morsel_begin, uint64_t morsel_end, bool whole_plan,
                               TieredRunStats* stats) {
  static const TieredOptions kDefaults;
  const TieredOptions& opts = ctx.tiered_opts != nullptr ? *ctx.tiered_opts : kDefaults;
  if (ctx.tiered == nullptr || ctx.scheduler == nullptr) {
    return Status::Unimplemented("tiered: no background compiler");
  }
  if (!PlanIsShardable(plan)) {
    // Outer joins in the probe chain need the global unmatched drain; other
    // shapes are outside the morsel driver. Both keep their normal path.
    return Status::Unimplemented("tiered: plan is not chunk-decomposable");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const QueryCacheKey key = MakeQueryCacheKey(ctx, plan, CodegenMode::kMorsel);

  // Warm probe (non-blocking): a cached module means generated code serves
  // from morsel 0 and the interpreter never enters. (This path bypasses
  // GetOrCompileModule, so it emits its own probe span.)
  std::shared_ptr<const CompiledModule> module;
  {
    obs::TraceSpan probe(ctx.trace, "cache_probe");
    module = ctx.jit_cache != nullptr ? ctx.jit_cache->TryGet(key) : nullptr;
    probe.set_arg0("hit", module != nullptr ? 1 : 0);
  }

  std::shared_ptr<CompileTicket> ticket;
  std::unique_ptr<InterpPartialSession> session;
  uint64_t total_morsels = 0;
  if (module == nullptr) {
    // Cold: kick the background compile *before* the interpreter's own
    // preparation (plug-in opens, join builds) — they overlap.
    ticket = ctx.tiered->EnqueueCompile(ctx, plan, opts.compile_delay_ms);
    PROTEUS_ASSIGN_OR_RETURN(session, MakeInterpPartialSession(ctx, plan));
    total_morsels = session->num_morsels();
  } else {
    stats->cache_hit = true;
    InterpExecutor probe(ctx);
    PROTEUS_ASSIGN_OR_RETURN(total_morsels, probe.CountPlanMorsels(plan));
  }
  if (whole_plan) {
    morsel_begin = 0;
    morsel_end = total_morsels;
  } else if (morsel_begin > morsel_end || morsel_end > total_morsels) {
    return Status::InvalidArgument(
        "tiered morsel range [" + std::to_string(morsel_begin) + ", " +
        std::to_string(morsel_end) + ") out of bounds for " +
        std::to_string(total_morsels) + " morsels");
  }

  PlanPartials out;
  out.nest = plan->child(0)->kind() == OpKind::kNest;

  // Interpreter chunks until the compile lands. Chunk size = one scheduler
  // fan-out (num_threads morsels) — big enough to keep every worker busy,
  // small enough that the swap is never more than one fan-out away.
  const uint64_t workers = static_cast<uint64_t>(std::max(1, ctx.scheduler->num_threads()));
  const bool forced = opts.force_swap_after_morsels != TieredOptions::kNeverSwap;
  uint64_t next = morsel_begin;
  bool poll = ticket != nullptr;  // cleared once the ticket is consumed
  bool first_done = false;

  auto take_ticket = [&] {
    poll = false;
    stats->compile_ms = ticket->compile_ms();
    // A failed compile is silent: the interpreter finishes the query, and
    // the recorded compile_ms is the only trace (honest fallback
    // accounting — the background thread did spend that time).
    if (ticket->status().ok()) module = ticket->module();
  };

  while (module == nullptr && next < morsel_end) {
    if (poll && !forced && ticket->Ready()) {
      take_ticket();
      continue;
    }
    uint64_t chunk = std::min(workers, morsel_end - next);
    if (poll && forced) {
      const uint64_t budget =
          opts.force_swap_after_morsels > stats->morsels_interpreted
              ? opts.force_swap_after_morsels - stats->morsels_interpreted
              : 0;
      if (budget == 0) {
        // Interpreted exactly the forced count: block on the compile and
        // swap (the one place the controller waits — a test hook, never the
        // natural path).
        ticket->Wait();
        take_ticket();
        continue;
      }
      chunk = std::min(chunk, budget);
    }
    {
      OBS_SPAN(ctx.trace, "interp_chunk", "begin", static_cast<int64_t>(next), "morsels",
               static_cast<int64_t>(chunk));
      PROTEUS_RETURN_NOT_OK(session->RunChunk(next, next + chunk, &out));
    }
    next += chunk;
    stats->morsels_interpreted += chunk;
    if (!first_done) {
      first_done = true;
      stats->first_morsel_ms = MsSince(t0);
    }
  }

  // Hot-swap: the remaining range runs as generated code off the
  // already-compiled module. Its partials append after the interpreter's —
  // global morsel order — so the fold cannot tell where the swap landed.
  if (module != nullptr && next < morsel_end) {
    stats->swap_ms = MsSince(t0);
    // The hot-swap is a point in time, not a duration: generated code takes
    // over at this morsel boundary.
    if (ctx.trace != nullptr && stats->morsels_interpreted > 0) {
      ctx.trace->Instant("hot_swap", "morsel", static_cast<int64_t>(next));
    }
    OBS_SPAN(ctx.trace, "jit_tail", "begin", static_cast<int64_t>(next));
    JitExecutor jit(ctx);
    PROTEUS_ASSIGN_OR_RETURN(PlanPartials tail,
                             jit.ExecutePartialsPrecompiled(plan, module, next, morsel_end));
    stats->morsels_jit = morsel_end - next;
    out.nest = tail.nest;
    out.Append(std::move(tail));
    if (!first_done) {
      first_done = true;
      stats->first_morsel_ms = MsSince(t0);
    }
  }
  if (stats->morsels_jit > 0 && module != nullptr) {
    stats->compile_tier = module->tier;
    stats->ir_verified = module->ir_verified;
  }

  // Hot-signature promotion: a tier-1 module that keeps earning cache hits
  // gets the aggressive recompile queued behind the same key.
  if (module != nullptr && module->tier == 1 && ctx.jit_cache != nullptr &&
      opts.tier2_hit_threshold > 0 &&
      ctx.jit_cache->HitCount(key) >= opts.tier2_hit_threshold) {
    ctx.tiered->EnqueuePromotion(ctx, plan);
  }
  return out;
}

}  // namespace jit
}  // namespace proteus
