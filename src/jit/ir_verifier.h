// Generated-code contract verifier: a static check on every JIT module.
//
// LLVM's verifyModule proves the IR is *structurally* well-formed; it says
// nothing about whether the module honors the engine's code-generation
// contract. This pass does, rejecting modules that:
//
//   1. define a mutable global variable — generated code must be
//      position-independent and reentrant (N concurrent queries and N shards
//      share one compiled module); all per-query state flows through the
//      ctx/sink/params arguments, so any non-constant global is smuggled
//      mutable state and a codegen bug;
//   2. call an external symbol outside the proteus_* runtime C-ABI
//      (jit::RuntimeSymbols()) — the JIT dylib defines exactly that
//      whitelist, so any other external reference either fails to link or,
//      worse, binds to a process symbol codegen never meant to call
//      (llvm.* intrinsics are exempt: the JIT lowers them itself);
//   3. index the parameter table out of bounds — every ParamI64 load is a
//      constant GEP off the params argument, so in-bounds is statically
//      decidable against the module's ParamTable size;
//   4. deviate from the entry-point signatures the host calls through raw
//      function pointers:
//        proteus_query   (ctx, params)                 void(i8*, i8*)
//        proteus_build   (ctx, params)                 void(i8*, i8*)
//        proteus_pipeline(ctx, sink, params, beg, end) void(i8*,i8*,i8*,i64,i64)
//        proteus_drain<k>(ctx, sink, matched, params)  void(i8*,i8*,i8*,i8*)
//      — a mismatch is undefined behavior at the call boundary, invisible to
//      both compilers. Any other externally-visible definition is rejected
//      too: the module's public surface is exactly its entry points.
//
// Wired into CompileAndLink after verifyModule, before optimization, when
// ExecContext::verify_ir is set (EngineOptions::verify_ir — default on in
// debug builds). A violation is Status::Internal naming every offending
// symbol, semicolon-joined: it is a codegen bug, never valid output, so it
// fails the query instead of falling back to the interpreter.
#pragma once

#include <cstdint>

#include "src/common/status.h"

namespace llvm {
class Module;
}  // namespace llvm

namespace proteus {
namespace jit {

/// Checks `module` against the generated-code contract above.
/// `param_table_slots` is the module's ParamTable size — the exclusive upper
/// bound for constant parameter-table indices. Returns OK or an Internal
/// status listing every violation (semicolon-joined, symbol by symbol).
Status VerifyGeneratedModule(const llvm::Module& module, uint64_t param_table_slots);

}  // namespace jit
}  // namespace proteus
