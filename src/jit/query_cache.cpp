#include "src/jit/query_cache.h"

#include <llvm/ExecutionEngine/Orc/LLJIT.h>

#include <chrono>
#include <sstream>

#include "src/common/hash.h"
#include "src/engine/interp.h"
#include "src/jit/runtime.h"
#include "src/obs/trace.h"
#include "src/plugins/binary_plugins.h"

namespace proteus {
namespace jit {

namespace {

const char* ParamKindName(ParamKind k) {
  switch (k) {
    case ParamKind::kPluginPtr: return "plugin";
    case ParamKind::kNumRecords: return "num_records";
    case ParamKind::kBinColIntBase: return "bincol_int";
    case ParamKind::kBinColFloatBase: return "bincol_float";
    case ParamKind::kBinColBoolBase: return "bincol_bool";
    case ParamKind::kBinColStrOffsets: return "bincol_stroff";
    case ParamKind::kBinColStrData: return "bincol_strdata";
    case ParamKind::kBinRowRowsBase: return "binrow_rows";
    case ParamKind::kBinRowHeapBase: return "binrow_heap";
    case ParamKind::kCacheNumRows: return "cache_rows";
    case ParamKind::kCacheColIntBase: return "cache_int";
    case ParamKind::kCacheColFloatBase: return "cache_float";
  }
  return "?";
}

}  // namespace

std::string ParamDesc::ToString() const {
  std::ostringstream os;
  os << ParamKindName(kind) << "(" << dataset << "#" << cache_id << "." << var;
  if (!path.empty()) os << "." << DottedPath(path);
  os << "@" << column << ")";
  return os.str();
}

uint32_t ParamTable::Slot(ParamDesc desc) {
  std::string key = desc.ToString();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  uint32_t slot = static_cast<uint32_t>(descs_.size());
  descs_.push_back(std::move(desc));
  index_.emplace(std::move(key), slot);
  return slot;
}

Result<std::vector<int64_t>> BindParams(
    const ExecContext& ctx, const std::vector<ParamDesc>& descs,
    std::vector<std::shared_ptr<const CacheBlock>>* pinned) {
  std::vector<int64_t> out;
  out.reserve(descs.size());
  auto as_i64 = [](const void* p) { return static_cast<int64_t>(reinterpret_cast<uintptr_t>(p)); };
  for (const ParamDesc& d : descs) {
    switch (d.kind) {
      case ParamKind::kCacheNumRows:
      case ParamKind::kCacheColIntBase:
      case ParamKind::kCacheColFloatBase: {
        if (ctx.caches == nullptr) {
          return Status::Internal("jit bind: cache param without a CachingManager");
        }
        const auto blk = ctx.caches->FindById(d.cache_id);
        if (blk == nullptr) {
          return Status::NotFound("jit bind: cache block #" + std::to_string(d.cache_id) +
                                  " evicted");
        }
        if (pinned != nullptr) pinned->push_back(blk);
        if (d.kind == ParamKind::kCacheNumRows) {
          out.push_back(static_cast<int64_t>(blk->num_rows));
          break;
        }
        const CacheColumn* col = blk->Find(d.var, d.path);
        if (col == nullptr) {
          return Status::NotFound("jit bind: cache column " + d.var + "." +
                                  DottedPath(d.path) + " missing from block #" +
                                  std::to_string(d.cache_id));
        }
        if (d.kind == ParamKind::kCacheColFloatBase) {
          if (col->type != TypeKind::kFloat64) {
            return Status::Internal("jit bind: cache column type changed under a module");
          }
          out.push_back(as_i64(col->floats.data()));
        } else {
          if (col->type == TypeKind::kFloat64 || col->type == TypeKind::kString) {
            return Status::Internal("jit bind: cache column type changed under a module");
          }
          out.push_back(as_i64(col->ints.data()));
        }
        break;
      }
      default: {
        if (ctx.catalog == nullptr || ctx.plugins == nullptr) {
          return Status::Internal("jit bind: no catalog/plugin registry");
        }
        PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx.catalog->Get(d.dataset));
        PROTEUS_ASSIGN_OR_RETURN(InputPlugin * plugin,
                                 ctx.plugins->GetOrOpen(*info, ctx.stats));
        switch (d.kind) {
          case ParamKind::kPluginPtr:
            out.push_back(as_i64(plugin));
            break;
          case ParamKind::kNumRecords:
            out.push_back(static_cast<int64_t>(plugin->NumRecords()));
            break;
          case ParamKind::kBinColIntBase:
          case ParamKind::kBinColFloatBase:
          case ParamKind::kBinColBoolBase:
          case ParamKind::kBinColStrOffsets:
          case ParamKind::kBinColStrData: {
            if (info->format != DataFormat::kBinaryColumn) {
              return Status::Internal("jit bind: dataset " + d.dataset +
                                      " is no longer binary-columnar");
            }
            const BinColReader* r = static_cast<BinColPlugin*>(plugin)->reader();
            if (r == nullptr || d.column >= r->num_cols()) {
              return Status::Internal("jit bind: bincol column " + std::to_string(d.column) +
                                      " out of range for " + d.dataset);
            }
            const void* p = nullptr;
            switch (d.kind) {
              case ParamKind::kBinColIntBase: p = r->IntColumn(d.column); break;
              case ParamKind::kBinColFloatBase: p = r->FloatColumn(d.column); break;
              case ParamKind::kBinColBoolBase: p = r->BoolColumn(d.column); break;
              case ParamKind::kBinColStrOffsets: p = r->StringOffsets(d.column); break;
              default: p = r->StringData(d.column); break;
            }
            out.push_back(as_i64(p));
            break;
          }
          case ParamKind::kBinRowRowsBase:
          case ParamKind::kBinRowHeapBase: {
            if (info->format != DataFormat::kBinaryRow) {
              return Status::Internal("jit bind: dataset " + d.dataset +
                                      " is no longer binary-row");
            }
            const BinRowReader* r = static_cast<BinRowPlugin*>(plugin)->reader();
            if (r == nullptr) {
              return Status::Internal("jit bind: binrow reader missing for " + d.dataset);
            }
            out.push_back(as_i64(d.kind == ParamKind::kBinRowRowsBase ? r->rows_base()
                                                                      : r->heap_base()));
            break;
          }
          default:
            return Status::Internal("jit bind: unreachable param kind");
        }
      }
    }
  }
  return out;
}

void InitRuntimeFromLayout(const RuntimeLayout& layout, QueryRuntime* rt) {
  for (const auto& j : layout.joins) rt->AddJoin(j.payload_slots, j.partitioned);
  for (const auto& g : layout.groups) rt->AddGroup(g.string_keys, g.init);
  rt->num_unnests = layout.num_unnests;
}

CompiledModule::CompiledModule() = default;
CompiledModule::~CompiledModule() = default;
CompiledModule::CompiledModule(CompiledModule&&) noexcept = default;
CompiledModule& CompiledModule::operator=(CompiledModule&&) noexcept = default;

size_t QueryCacheKeyHash::operator()(const QueryCacheKey& k) const {
  uint64_t h = HashString(k.signature);
  h = HashCombine(h, static_cast<uint64_t>(k.mode));
  h = HashCombine(h, HashString(k.join_strategies));
  h = HashCombine(h, k.catalog_epoch);
  h = HashCombine(h, k.cache_epoch);
  return static_cast<size_t>(h);
}

CompiledQueryCache::CompiledQueryCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::shared_ptr<const CompiledModule>> CompiledQueryCache::GetOrCompile(
    const QueryCacheKey& key, const CompileFn& compile, bool* cache_hit,
    obs::TraceRecorder* trace) {
  if (cache_hit != nullptr) *cache_hit = false;
  // Manual Lock/Unlock (not MutexLock): the single-flight protocol
  // deliberately drops the lock around the long compile below, and the
  // thread-safety analysis checks that every return path balances.
  mu_.Lock();
  bool waited = false;
  const double wait_start_us = trace != nullptr ? trace->NowUs() : 0;
  for (;;) {
    auto it = map_.find(key);
    if (it == map_.end()) break;  // miss: this thread compiles
    if (it->second.state == Entry::State::kReady) {
      stats_.hits++;
      it->second.hits++;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      if (cache_hit != nullptr) *cache_hit = true;
      std::shared_ptr<const CompiledModule> module = it->second.module;
      mu_.Unlock();
      if (waited && trace != nullptr) {
        trace->Emit("single_flight_wait", wait_start_us, trace->NowUs() - wait_start_us);
      }
      return module;
    }
    // Another thread is compiling this key: single-flight — wait for it to
    // publish (or fail and erase), then re-check.
    if (!waited) {
      waited = true;
      stats_.single_flight_waits++;
    }
    cv_.Wait(mu_);
  }

  stats_.misses++;
  map_.emplace(key, Entry{});  // state = kCompiling
  mu_.Unlock();
  if (waited && trace != nullptr) {
    // The waited-on compile failed and this thread fell through to its own
    // compile; the wait still happened, so it still gets its span.
    trace->Emit("single_flight_wait", wait_start_us, trace->NowUs() - wait_start_us);
  }

  auto t0 = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const CompiledModule>> compiled = compile();
  double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  mu_.Lock();
  stats_.compile_ms_total += ms;
  auto it = map_.find(key);
  if (it == map_.end() || it->second.state != Entry::State::kCompiling) {
    // The in-flight entry is gone or was replaced (cannot happen today:
    // Erase/Clear/eviction all skip compiling entries) — hand the module to
    // the caller without publishing rather than corrupt the LRU.
    if (compiled.ok() && *compiled != nullptr) stats_.compiles++;
    mu_.Unlock();
    cv_.NotifyAll();
    return compiled;
  }
  if (!compiled.ok() || *compiled == nullptr) {
    // Failures are not cached: erase the in-flight entry so waiters (and
    // later lookups) retry — a plan outside the generated fast path keeps
    // today's fall-back behavior instead of pinning a dead LRU slot.
    map_.erase(it);
    mu_.Unlock();
    cv_.NotifyAll();
    return compiled.ok() ? Status::Internal("jit cache: compile returned null module")
                         : compiled.status();
  }
  stats_.compiles++;
  it->second.state = Entry::State::kReady;
  it->second.module = *compiled;
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  EvictOverCapacityLocked();
  mu_.Unlock();
  cv_.NotifyAll();
  return *compiled;
}

std::shared_ptr<const CompiledModule> CompiledQueryCache::TryGet(const QueryCacheKey& key) {
  MutexLock lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.state != Entry::State::kReady) return nullptr;
  stats_.hits++;
  it->second.hits++;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.module;
}

bool CompiledQueryCache::Promote(const QueryCacheKey& key,
                                 std::shared_ptr<const CompiledModule> module) {
  if (module == nullptr) return false;
  MutexLock lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    Entry e;
    e.state = Entry::State::kReady;
    e.module = std::move(module);
    lru_.push_front(key);
    e.lru_it = lru_.begin();
    map_.emplace(key, std::move(e));
    stats_.promotions++;
    EvictOverCapacityLocked();
    return true;
  }
  if (it->second.state != Entry::State::kReady) return false;
  it->second.module = std::move(module);
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  stats_.promotions++;
  return true;
}

uint64_t CompiledQueryCache::HitCount(const QueryCacheKey& key) const {
  MutexLock lk(mu_);
  auto it = map_.find(key);
  return it != map_.end() ? it->second.hits : 0;
}

void CompiledQueryCache::EvictOverCapacityLocked() {
  // Only ready entries live on the LRU list, so in-flight compiles are never
  // evicted from under their waiters.
  while (lru_.size() > capacity_) {
    const QueryCacheKey& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    stats_.evictions++;
  }
}

void CompiledQueryCache::Erase(const QueryCacheKey& key) {
  MutexLock lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.state != Entry::State::kReady) return;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void CompiledQueryCache::Clear() {
  MutexLock lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.state == Entry::State::kReady) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t CompiledQueryCache::size() const {
  MutexLock lk(mu_);
  return lru_.size();
}

CompiledQueryCache::Stats CompiledQueryCache::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

}  // namespace jit
}  // namespace proteus
