#include "src/jit/jit_engine.h"
#include <cstdlib>

#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>
#include <llvm/IR/Verifier.h>
#include <llvm/Passes/PassBuilder.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Support/raw_ostream.h>

#include <chrono>
#include <functional>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/plugins/binary_plugins.h"
#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"
#include "src/jit/runtime.h"

namespace proteus {

namespace {

using jit::QueryRuntime;

void InitLLVMOnce() {
  static bool done = [] {
    llvm::InitializeNativeTarget();
    llvm::InitializeNativeTargetAsmPrinter();
    return true;
  }();
  (void)done;
}

/// A value in a virtual buffer: primitive kinds only; strings carry ptr+len.
struct CgValue {
  TypeKind kind = TypeKind::kInt64;
  llvm::Value* v = nullptr;    // i64 / double / i1; strings: i8* data
  llvm::Value* len = nullptr;  // strings only: i64
};

struct ScanSource {
  DataFormat format;
  InputPlugin* plugin = nullptr;
  const CacheBlock* cache = nullptr;
};

class Codegen {
 public:
  Codegen(ExecContext ctx, QueryRuntime* rt)
      : ectx_(ctx),
        rt_(rt),
        llctx_(std::make_unique<llvm::LLVMContext>()),
        module_(std::make_unique<llvm::Module>("proteus_query", *llctx_)),
        b_(*llctx_) {}

  Status Compile(const OpPtr& plan);
  std::unique_ptr<llvm::Module> TakeModule() { return std::move(module_); }
  std::unique_ptr<llvm::LLVMContext> TakeContext() { return std::move(llctx_); }
  std::string DumpIR() const {
    std::string s;
    llvm::raw_string_ostream os(s);
    module_->print(os, nullptr);
    return s;
  }
  const std::vector<std::string>& result_columns() const { return result_columns_; }

 private:
  using Consume = std::function<Status()>;

  // ---- plan preparation ----------------------------------------------------
  Status Prepare(const OpPtr& op);
  Status CheckSupported(const OpPtr& op) const;
  Result<TypePtr> VarType(const std::string& var) const;
  Result<TypeKind> LeafKind(const std::string& var, const FieldPath& path) const;

  // ---- IR emission ---------------------------------------------------------
  Status EmitProduce(const OpPtr& op, const Consume& consume);
  Status EmitScan(const OpPtr& op, const Consume& consume);
  Status EmitCacheScan(const OpPtr& op, const Consume& consume);
  Status EmitUnnest(const OpPtr& op, const Consume& consume);
  Status EmitJoin(const OpPtr& op, const Consume& consume);
  Status EmitNest(const OpPtr& op, const Consume& consume);
  Status EmitFilter(const ExprPtr& pred, const Consume& consume);
  Status EmitRoot(const OpPtr& reduce);

  Result<CgValue> EmitExpr(const ExprPtr& e);
  Result<CgValue> EmitBinary(const ExprPtr& e);
  llvm::Value* ToDouble(const CgValue& v) {
    return v.kind == TypeKind::kFloat64 ? v.v : b_.CreateSIToFP(v.v, b_.getDoubleTy());
  }

  // ---- small helpers -------------------------------------------------------
  llvm::Function* Helper(const char* name, llvm::Type* ret,
                         std::vector<llvm::Type*> args);
  llvm::Value* ConstPtr(const void* p) {
    return b_.CreateIntToPtr(b_.getInt64(reinterpret_cast<uint64_t>(p)), b_.getInt8PtrTy());
  }
  llvm::Value* RtPtr() { return rt_arg_; }
  llvm::Value* GlobalString(const std::string& s) {
    auto it = string_globals_.find(s);
    if (it != string_globals_.end()) return it->second;
    llvm::Value* g = b_.CreateGlobalStringPtr(s);
    string_globals_[s] = g;
    return g;
  }
  llvm::Value* LoadAt(llvm::Type* ty, llvm::Value* addr_i64) {
    return b_.CreateLoad(ty, b_.CreateIntToPtr(addr_i64, ty->getPointerTo()));
  }
  static std::string Key(const std::string& var, const FieldPath& path) {
    return path.empty() ? var : var + "." + DottedPath(path);
  }

  /// Emits a canonical counted loop [0, n); `body(i)` runs per iteration.
  Status EmitCountedLoop(llvm::Value* n, const std::function<Status(llvm::Value*)>& body);

  ExecContext ectx_;
  QueryRuntime* rt_;
  std::unique_ptr<llvm::LLVMContext> llctx_;
  std::unique_ptr<llvm::Module> module_;
  llvm::IRBuilder<> b_;
  llvm::Function* fn_ = nullptr;
  llvm::Value* rt_arg_ = nullptr;

  std::unordered_map<std::string, CgValue> bindings_;       // virtual buffers
  std::unordered_map<std::string, llvm::Value*> oids_;      // var -> current oid (i64)
  std::unordered_map<std::string, ScanSource> sources_;     // var -> data source
  std::unordered_map<std::string, TypePtr> var_types_;      // var -> record type
  std::unordered_map<std::string, std::vector<FieldPath>> needed_;  // var -> used paths
  std::unordered_map<const Operator*, uint32_t> join_ids_;
  std::unordered_map<const Operator*, uint32_t> group_ids_;
  std::unordered_map<const Operator*, uint32_t> unnest_ids_;
  std::unordered_map<std::string, llvm::Value*> string_globals_;
  std::vector<std::string> result_columns_;
};

// ---------------------------------------------------------------------------
// Preparation: validate support, open plugins, register runtime tables
// ---------------------------------------------------------------------------

void CollectExprPaths(const ExprPtr& e,
                      std::unordered_map<std::string, std::vector<FieldPath>>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kProj) {
    FieldPath path;
    const Expr* cur = e.get();
    while (cur->kind() == ExprKind::kProj) {
      path.insert(path.begin(), cur->field());
      cur = cur->child(0).get();
    }
    if (cur->kind() == ExprKind::kVarRef) {
      (*out)[cur->var_name()].push_back(path);
      return;
    }
  }
  if (e->kind() == ExprKind::kVarRef) {
    (*out)[e->var_name()].push_back({});
    return;
  }
  for (const auto& c : e->children()) CollectExprPaths(c, out);
}

Status Codegen::CheckSupported(const OpPtr& op) const {
  switch (op->kind()) {
    case OpKind::kJoin:
      if (op->outer()) return Status::Unimplemented("jit: outer join");
      if (!op->left_key()) return Status::Unimplemented("jit: non-equi join");
      break;
    case OpKind::kUnnest:
      if (op->outer()) return Status::Unimplemented("jit: outer unnest");
      break;
    case OpKind::kNest:
      for (const auto& o : op->outputs()) {
        if (IsCollectionMonoid(o.monoid) || o.monoid == Monoid::kAnd ||
            o.monoid == Monoid::kOr) {
          return Status::Unimplemented("jit: nest with collection/boolean monoid");
        }
      }
      break;
    default:
      break;
  }
  for (const auto& c : op->children()) PROTEUS_RETURN_NOT_OK(CheckSupported(c));
  return Status::OK();
}

Result<TypePtr> Codegen::VarType(const std::string& var) const {
  auto it = var_types_.find(var);
  if (it == var_types_.end()) return Status::Unimplemented("jit: unknown variable " + var);
  return it->second;
}

Result<TypeKind> Codegen::LeafKind(const std::string& var, const FieldPath& path) const {
  PROTEUS_ASSIGN_OR_RETURN(TypePtr t, VarType(var));
  for (const auto& f : path) {
    if (t->kind() != TypeKind::kRecord) return Status::Unimplemented("jit: path into non-record");
    PROTEUS_ASSIGN_OR_RETURN(t, t->FieldType(f));
  }
  if (!t->is_primitive()) return Status::Unimplemented("jit: non-primitive leaf " + Key(var, path));
  return t->kind() == TypeKind::kDate ? TypeKind::kInt64 : t->kind();
}

Status Codegen::Prepare(const OpPtr& op) {
  // Gather expression paths used anywhere.
  CollectExprPaths(op->pred(), &needed_);
  CollectExprPaths(op->group_by(), &needed_);
  CollectExprPaths(op->left_key(), &needed_);
  CollectExprPaths(op->right_key(), &needed_);
  for (const auto& o : op->outputs()) CollectExprPaths(o.expr, &needed_);

  switch (op->kind()) {
    case OpKind::kScan: {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ectx_.catalog->Get(op->dataset()));
      PROTEUS_ASSIGN_OR_RETURN(InputPlugin * plugin,
                               ectx_.plugins->GetOrOpen(*info, ectx_.stats));
      sources_[op->binding()] = {info->format, plugin, nullptr};
      var_types_[op->binding()] = info->type->elem();
      break;
    }
    case OpKind::kCacheScan: {
      if (ectx_.caches == nullptr) return Status::Internal("jit: cache scan w/o manager");
      const CacheBlock* blk = ectx_.caches->FindById(op->cache_id());
      if (blk == nullptr) return Status::NotFound("jit: cache block evicted");
      ScanSource src{DataFormat::kCacheBlock, nullptr, blk};
      if (!op->dataset().empty()) {
        PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ectx_.catalog->Get(op->dataset()));
        PROTEUS_ASSIGN_OR_RETURN(src.plugin, ectx_.plugins->GetOrOpen(*info, ectx_.stats));
        var_types_[op->binding()] = info->type->elem();
      }
      sources_[op->binding()] = src;
      break;
    }
    case OpKind::kUnnest: {
      PROTEUS_RETURN_NOT_OK(Prepare(op->child(0)));
      const FieldPath& p = op->unnest_path();
      PROTEUS_ASSIGN_OR_RETURN(TypePtr src_t, VarType(p[0]));
      TypePtr t = src_t;
      for (size_t i = 1; i < p.size(); ++i) {
        PROTEUS_ASSIGN_OR_RETURN(t, t->FieldType(p[i]));
      }
      if (t->kind() != TypeKind::kCollection) {
        return Status::TypeError("jit: unnest path is not a collection");
      }
      var_types_[op->binding()] = t->elem();
      unnest_ids_[op.get()] = rt_->AddUnnest();
      return Status::OK();
    }
    case OpKind::kJoin: {
      PROTEUS_RETURN_NOT_OK(Prepare(op->child(0)));
      PROTEUS_RETURN_NOT_OK(Prepare(op->child(1)));
      // Join table registered in EmitJoin once payload width is known.
      return Status::OK();
    }
    default:
      for (const auto& c : op->children()) PROTEUS_RETURN_NOT_OK(Prepare(c));
      return Status::OK();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Helper function declarations
// ---------------------------------------------------------------------------

llvm::Function* Codegen::Helper(const char* name, llvm::Type* ret,
                                std::vector<llvm::Type*> args) {
  if (auto* f = module_->getFunction(name)) return f;
  auto* fty = llvm::FunctionType::get(ret, args, false);
  return llvm::Function::Create(fty, llvm::Function::ExternalLinkage, name, module_.get());
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<CgValue> Codegen::EmitExpr(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = e->literal();
      if (v.is_int()) return CgValue{TypeKind::kInt64, b_.getInt64(v.i())};
      if (v.is_float())
        return CgValue{TypeKind::kFloat64, llvm::ConstantFP::get(b_.getDoubleTy(), v.f())};
      if (v.is_bool()) return CgValue{TypeKind::kBool, b_.getInt1(v.b())};
      if (v.is_string()) {
        return CgValue{TypeKind::kString, GlobalString(v.s()),
                       b_.getInt64(static_cast<int64_t>(v.s().size()))};
      }
      return Status::Unimplemented("jit: literal " + v.ToString());
    }
    case ExprKind::kVarRef:
    case ExprKind::kProj: {
      FieldPath path;
      const Expr* cur = e.get();
      while (cur->kind() == ExprKind::kProj) {
        path.insert(path.begin(), cur->field());
        cur = cur->child(0).get();
      }
      if (cur->kind() != ExprKind::kVarRef) {
        return Status::Unimplemented("jit: projection over computed record");
      }
      auto it = bindings_.find(Key(cur->var_name(), path));
      if (it == bindings_.end()) {
        return Status::Unimplemented("jit: no virtual buffer for " +
                                     Key(cur->var_name(), path));
      }
      return it->second;
    }
    case ExprKind::kBinary:
      return EmitBinary(e);
    case ExprKind::kUnary: {
      PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(e->child(0)));
      if (e->un_op() == UnOp::kNot) return CgValue{TypeKind::kBool, b_.CreateNot(c.v)};
      if (c.kind == TypeKind::kFloat64) return CgValue{c.kind, b_.CreateFNeg(c.v)};
      return CgValue{c.kind, b_.CreateNeg(c.v)};
    }
    case ExprKind::kIf: {
      PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(e->child(0)));
      PROTEUS_ASSIGN_OR_RETURN(CgValue t, EmitExpr(e->child(1)));
      PROTEUS_ASSIGN_OR_RETURN(CgValue f, EmitExpr(e->child(2)));
      if (t.kind != f.kind) {
        if (t.kind == TypeKind::kInt64 && f.kind == TypeKind::kFloat64) {
          t = CgValue{TypeKind::kFloat64, ToDouble(t)};
        } else if (t.kind == TypeKind::kFloat64 && f.kind == TypeKind::kInt64) {
          f = CgValue{TypeKind::kFloat64, ToDouble(f)};
        } else {
          return Status::Unimplemented("jit: if branches of mixed kinds");
        }
      }
      CgValue out{t.kind, b_.CreateSelect(c.v, t.v, f.v)};
      if (t.kind == TypeKind::kString) out.len = b_.CreateSelect(c.v, t.len, f.len);
      return out;
    }
    case ExprKind::kCast: {
      PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(e->child(0)));
      if (e->cast_to()->kind() == TypeKind::kFloat64) {
        return CgValue{TypeKind::kFloat64, ToDouble(c)};
      }
      if (c.kind == TypeKind::kFloat64) {
        return CgValue{TypeKind::kInt64, b_.CreateFPToSI(c.v, b_.getInt64Ty())};
      }
      return c;
    }
    case ExprKind::kRecordCons:
      return Status::Unimplemented("jit: record construction outside result emit");
  }
  return Status::Internal("jit: unreachable expr kind");
}

Result<CgValue> Codegen::EmitBinary(const ExprPtr& e) {
  BinOp op = e->bin_op();
  PROTEUS_ASSIGN_OR_RETURN(CgValue l, EmitExpr(e->child(0)));
  PROTEUS_ASSIGN_OR_RETURN(CgValue r, EmitExpr(e->child(1)));

  if (op == BinOp::kAnd) return CgValue{TypeKind::kBool, b_.CreateAnd(l.v, r.v)};
  if (op == BinOp::kOr) return CgValue{TypeKind::kBool, b_.CreateOr(l.v, r.v)};

  // String comparisons via runtime helpers.
  if (l.kind == TypeKind::kString || r.kind == TypeKind::kString) {
    if (l.kind != r.kind) return Status::TypeError("jit: string vs non-string comparison");
    auto* i8p = b_.getInt8PtrTy();
    auto* eqf = Helper("proteus_str_eq", b_.getInt32Ty(),
                       {i8p, b_.getInt64Ty(), i8p, b_.getInt64Ty()});
    auto* ltf = Helper("proteus_str_lt", b_.getInt32Ty(),
                       {i8p, b_.getInt64Ty(), i8p, b_.getInt64Ty()});
    auto call = [&](llvm::Function* f, llvm::Value* a, llvm::Value* alen, llvm::Value* c,
                    llvm::Value* clen) {
      return b_.CreateICmpNE(b_.CreateCall(f, {a, alen, c, clen}), b_.getInt32(0));
    };
    switch (op) {
      case BinOp::kEq: return CgValue{TypeKind::kBool, call(eqf, l.v, l.len, r.v, r.len)};
      case BinOp::kNe:
        return CgValue{TypeKind::kBool,
                       b_.CreateNot(call(eqf, l.v, l.len, r.v, r.len))};
      case BinOp::kLt: return CgValue{TypeKind::kBool, call(ltf, l.v, l.len, r.v, r.len)};
      case BinOp::kGt: return CgValue{TypeKind::kBool, call(ltf, r.v, r.len, l.v, l.len)};
      case BinOp::kLe:
        return CgValue{TypeKind::kBool, b_.CreateNot(call(ltf, r.v, r.len, l.v, l.len))};
      case BinOp::kGe:
        return CgValue{TypeKind::kBool, b_.CreateNot(call(ltf, l.v, l.len, r.v, r.len))};
      default:
        return Status::TypeError("jit: arithmetic on strings");
    }
  }

  bool bools = l.kind == TypeKind::kBool && r.kind == TypeKind::kBool;
  bool floats = l.kind == TypeKind::kFloat64 || r.kind == TypeKind::kFloat64;
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul: {
      if (floats) {
        llvm::Value* a = ToDouble(l);
        llvm::Value* c = ToDouble(r);
        llvm::Value* v = op == BinOp::kAdd   ? b_.CreateFAdd(a, c)
                         : op == BinOp::kSub ? b_.CreateFSub(a, c)
                                             : b_.CreateFMul(a, c);
        return CgValue{TypeKind::kFloat64, v};
      }
      llvm::Value* v = op == BinOp::kAdd   ? b_.CreateAdd(l.v, r.v)
                       : op == BinOp::kSub ? b_.CreateSub(l.v, r.v)
                                           : b_.CreateMul(l.v, r.v);
      return CgValue{TypeKind::kInt64, v};
    }
    case BinOp::kDiv:
      return CgValue{TypeKind::kFloat64, b_.CreateFDiv(ToDouble(l), ToDouble(r))};
    case BinOp::kMod:
      return CgValue{TypeKind::kInt64, b_.CreateSRem(l.v, r.v)};
    default:
      break;
  }
  // Comparisons.
  llvm::Value* cmp;
  if (floats) {
    llvm::Value* a = ToDouble(l);
    llvm::Value* c = ToDouble(r);
    switch (op) {
      case BinOp::kLt: cmp = b_.CreateFCmpOLT(a, c); break;
      case BinOp::kLe: cmp = b_.CreateFCmpOLE(a, c); break;
      case BinOp::kGt: cmp = b_.CreateFCmpOGT(a, c); break;
      case BinOp::kGe: cmp = b_.CreateFCmpOGE(a, c); break;
      case BinOp::kEq: cmp = b_.CreateFCmpOEQ(a, c); break;
      default: cmp = b_.CreateFCmpONE(a, c); break;
    }
  } else if (bools) {
    cmp = op == BinOp::kEq ? b_.CreateICmpEQ(l.v, r.v) : b_.CreateICmpNE(l.v, r.v);
  } else {
    switch (op) {
      case BinOp::kLt: cmp = b_.CreateICmpSLT(l.v, r.v); break;
      case BinOp::kLe: cmp = b_.CreateICmpSLE(l.v, r.v); break;
      case BinOp::kGt: cmp = b_.CreateICmpSGT(l.v, r.v); break;
      case BinOp::kGe: cmp = b_.CreateICmpSGE(l.v, r.v); break;
      case BinOp::kEq: cmp = b_.CreateICmpEQ(l.v, r.v); break;
      default: cmp = b_.CreateICmpNE(l.v, r.v); break;
    }
  }
  return CgValue{TypeKind::kBool, cmp};
}

// ---------------------------------------------------------------------------
// Control-flow scaffolding
// ---------------------------------------------------------------------------

Status Codegen::EmitCountedLoop(llvm::Value* n,
                                const std::function<Status(llvm::Value*)>& body) {
  llvm::Value* idx_ptr = b_.CreateAlloca(b_.getInt64Ty(), nullptr, "idx");
  b_.CreateStore(b_.getInt64(0), idx_ptr);
  auto* cond_bb = llvm::BasicBlock::Create(*llctx_, "loop.cond", fn_);
  auto* body_bb = llvm::BasicBlock::Create(*llctx_, "loop.body", fn_);
  auto* exit_bb = llvm::BasicBlock::Create(*llctx_, "loop.exit", fn_);
  b_.CreateBr(cond_bb);
  b_.SetInsertPoint(cond_bb);
  llvm::Value* idx = b_.CreateLoad(b_.getInt64Ty(), idx_ptr);
  b_.CreateCondBr(b_.CreateICmpULT(idx, n), body_bb, exit_bb);
  b_.SetInsertPoint(body_bb);
  PROTEUS_RETURN_NOT_OK(body(idx));
  // Whatever block the body ended in continues to the increment.
  llvm::Value* next = b_.CreateAdd(b_.CreateLoad(b_.getInt64Ty(), idx_ptr), b_.getInt64(1));
  b_.CreateStore(next, idx_ptr);
  b_.CreateBr(cond_bb);
  b_.SetInsertPoint(exit_bb);
  return Status::OK();
}

Status Codegen::EmitFilter(const ExprPtr& pred, const Consume& consume) {
  if (!pred) return consume();
  PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(pred));
  auto* pass_bb = llvm::BasicBlock::Create(*llctx_, "sel.pass", fn_);
  auto* merge_bb = llvm::BasicBlock::Create(*llctx_, "sel.merge", fn_);
  b_.CreateCondBr(c.v, pass_bb, merge_bb);
  b_.SetInsertPoint(pass_bb);
  PROTEUS_RETURN_NOT_OK(consume());
  b_.CreateBr(merge_bb);
  b_.SetInsertPoint(merge_bb);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

Status Codegen::EmitScan(const OpPtr& op, const Consume& consume) {
  const std::string& var = op->binding();
  const ScanSource& src = sources_.at(var);
  std::vector<FieldPath> fields = op->scan_fields();
  if (fields.empty()) {
    for (const auto& f : var_types_.at(var)->fields()) {
      if (f.type->is_primitive()) fields.push_back({f.name});
    }
  }
  uint64_t n = src.plugin->NumRecords();

  return EmitCountedLoop(b_.getInt64(static_cast<int64_t>(n)), [&](llvm::Value* oid) -> Status {
    oids_[var] = oid;
    for (const auto& p : fields) {
      auto lk = LeafKind(var, p);
      if (!lk.ok()) continue;  // collections (unnest paths) are read lazily
      TypeKind kind = *lk;
      CgValue cv;
      cv.kind = kind;
      switch (src.format) {
        case DataFormat::kBinaryColumn: {
          auto* plugin = static_cast<BinColPlugin*>(src.plugin);
          const BinColReader* r = plugin->reader();
          int ci = r->ColumnIndex(p[0]);
          if (ci < 0) return Status::Internal("jit: missing bincol column " + p[0]);
          auto col = static_cast<uint32_t>(ci);
          if (kind == TypeKind::kInt64) {
            llvm::Value* base = b_.getInt64(reinterpret_cast<uint64_t>(r->IntColumn(col)));
            cv.v = LoadAt(b_.getInt64Ty(),
                          b_.CreateAdd(base, b_.CreateMul(oid, b_.getInt64(8))));
          } else if (kind == TypeKind::kFloat64) {
            llvm::Value* base = b_.getInt64(reinterpret_cast<uint64_t>(r->FloatColumn(col)));
            cv.v = LoadAt(b_.getDoubleTy(),
                          b_.CreateAdd(base, b_.CreateMul(oid, b_.getInt64(8))));
          } else if (kind == TypeKind::kBool) {
            llvm::Value* base = b_.getInt64(reinterpret_cast<uint64_t>(r->BoolColumn(col)));
            llvm::Value* byte = LoadAt(b_.getInt8Ty(), b_.CreateAdd(base, oid));
            cv.v = b_.CreateICmpNE(byte, b_.getInt8(0));
          } else {  // string: offsets + data
            llvm::Value* offs =
                b_.getInt64(reinterpret_cast<uint64_t>(r->StringOffsets(col)));
            llvm::Value* data = b_.getInt64(reinterpret_cast<uint64_t>(r->StringData(col)));
            llvm::Value* o1 = LoadAt(b_.getInt64Ty(),
                                     b_.CreateAdd(offs, b_.CreateMul(oid, b_.getInt64(8))));
            llvm::Value* o2 = LoadAt(
                b_.getInt64Ty(),
                b_.CreateAdd(offs, b_.CreateMul(b_.CreateAdd(oid, b_.getInt64(1)),
                                                b_.getInt64(8))));
            cv.v = b_.CreateIntToPtr(b_.CreateAdd(data, o1), b_.getInt8PtrTy());
            cv.len = b_.CreateSub(o2, o1);
          }
          break;
        }
        case DataFormat::kBinaryRow: {
          auto* plugin = static_cast<BinRowPlugin*>(src.plugin);
          const BinRowReader* r = plugin->reader();
          int ci = r->ColumnIndex(p[0]);
          if (ci < 0) return Status::Internal("jit: missing binrow column " + p[0]);
          llvm::Value* base = b_.getInt64(reinterpret_cast<uint64_t>(r->rows_base()));
          llvm::Value* addr = b_.CreateAdd(
              base, b_.CreateAdd(b_.CreateMul(oid, b_.getInt64(r->row_width())),
                                 b_.getInt64(8 * static_cast<uint64_t>(ci))));
          if (kind == TypeKind::kInt64) {
            cv.v = LoadAt(b_.getInt64Ty(), addr);
          } else if (kind == TypeKind::kFloat64) {
            cv.v = LoadAt(b_.getDoubleTy(), addr);
          } else if (kind == TypeKind::kBool) {
            cv.v = b_.CreateICmpNE(LoadAt(b_.getInt64Ty(), addr), b_.getInt64(0));
          } else {  // packed (u32 off, u32 len) into the heap
            llvm::Value* off = b_.CreateZExt(LoadAt(b_.getInt32Ty(), addr), b_.getInt64Ty());
            llvm::Value* len = b_.CreateZExt(
                LoadAt(b_.getInt32Ty(), b_.CreateAdd(addr, b_.getInt64(4))), b_.getInt64Ty());
            llvm::Value* heap = b_.getInt64(reinterpret_cast<uint64_t>(r->heap_base()));
            cv.v = b_.CreateIntToPtr(b_.CreateAdd(heap, off), b_.getInt8PtrTy());
            cv.len = len;
          }
          break;
        }
        case DataFormat::kCSV: {
          auto* plugin = static_cast<CsvPlugin*>(src.plugin);
          int ci = plugin->ColumnIndex(p[0]);
          if (ci < 0) return Status::Internal("jit: missing csv column " + p[0]);
          llvm::Value* pp = ConstPtr(plugin);
          llvm::Value* col = b_.getInt32(static_cast<uint32_t>(ci));
          auto* i8p = b_.getInt8PtrTy();
          if (kind == TypeKind::kInt64) {
            cv.v = b_.CreateCall(Helper("proteus_csv_int", b_.getInt64Ty(),
                                        {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                 {pp, oid, col});
          } else if (kind == TypeKind::kFloat64) {
            cv.v = b_.CreateCall(Helper("proteus_csv_double", b_.getDoubleTy(),
                                        {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                 {pp, oid, col});
          } else if (kind == TypeKind::kBool) {
            llvm::Value* i = b_.CreateCall(Helper("proteus_csv_int", b_.getInt64Ty(),
                                                  {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                           {pp, oid, col});
            cv.v = b_.CreateICmpNE(i, b_.getInt64(0));
          } else {
            llvm::Value* len_ptr = b_.CreateAlloca(b_.getInt64Ty());
            cv.v = b_.CreateCall(
                Helper("proteus_csv_str", i8p,
                       {i8p, b_.getInt64Ty(), b_.getInt32Ty(), b_.getInt64Ty()->getPointerTo()}),
                {pp, oid, col, len_ptr});
            cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
          }
          break;
        }
        case DataFormat::kJSON: {
          llvm::Value* pp = ConstPtr(src.plugin);
          llvm::Value* h = b_.getInt64(HashString(DottedPath(p)));
          auto* i8p = b_.getInt8PtrTy();
          if (kind == TypeKind::kInt64) {
            cv.v = b_.CreateCall(Helper("proteus_json_int", b_.getInt64Ty(),
                                        {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                 {pp, oid, h});
          } else if (kind == TypeKind::kFloat64) {
            cv.v = b_.CreateCall(Helper("proteus_json_double", b_.getDoubleTy(),
                                        {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                 {pp, oid, h});
          } else if (kind == TypeKind::kBool) {
            llvm::Value* i = b_.CreateCall(Helper("proteus_json_bool", b_.getInt64Ty(),
                                                  {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                           {pp, oid, h});
            cv.v = b_.CreateICmpNE(i, b_.getInt64(0));
          } else {
            llvm::Value* len_ptr = b_.CreateAlloca(b_.getInt64Ty());
            cv.v = b_.CreateCall(
                Helper("proteus_json_str", i8p,
                       {i8p, b_.getInt64Ty(), b_.getInt64Ty(), b_.getInt64Ty()->getPointerTo()}),
                {pp, oid, h, len_ptr});
            cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
          }
          break;
        }
        case DataFormat::kCacheBlock:
          return Status::Internal("jit: cache scans take the EmitCacheScan path");
      }
      bindings_[Key(var, p)] = cv;
    }
    return consume();
  });
}

Status Codegen::EmitCacheScan(const OpPtr& op, const Consume& consume) {
  const std::string& var = op->binding();
  const ScanSource& src = sources_.at(var);
  const CacheBlock* blk = src.cache;

  std::vector<FieldPath> fields = op->scan_fields();
  if (fields.empty()) {
    for (const auto& c : blk->cols) {
      if (c.path != FieldPath{"$oid"}) fields.push_back(c.path);
    }
  }
  const CacheColumn* oid_col = blk->Find(var, {"$oid"});

  return EmitCountedLoop(
      b_.getInt64(static_cast<int64_t>(blk->num_rows)), [&](llvm::Value* row) -> Status {
        if (oid_col != nullptr) {
          // Expose the raw OID: the Unnest operator and hybrid string reads
          // address the original file through it.
          llvm::Value* oid_base =
              b_.getInt64(reinterpret_cast<uint64_t>(oid_col->ints.data()));
          oids_[var] = LoadAt(b_.getInt64Ty(),
                              b_.CreateAdd(oid_base, b_.CreateMul(row, b_.getInt64(8))));
        }
        for (const auto& p : fields) {
          const CacheColumn* c = blk->Find(var, p);
          CgValue cv;
          if (c != nullptr && c->type != TypeKind::kString) {
            if (c->type == TypeKind::kFloat64) {
              llvm::Value* base = b_.getInt64(reinterpret_cast<uint64_t>(c->floats.data()));
              cv.kind = TypeKind::kFloat64;
              cv.v = LoadAt(b_.getDoubleTy(),
                            b_.CreateAdd(base, b_.CreateMul(row, b_.getInt64(8))));
            } else {
              llvm::Value* base = b_.getInt64(reinterpret_cast<uint64_t>(c->ints.data()));
              llvm::Value* raw = LoadAt(b_.getInt64Ty(),
                                        b_.CreateAdd(base, b_.CreateMul(row, b_.getInt64(8))));
              if (c->type == TypeKind::kBool) {
                cv.kind = TypeKind::kBool;
                cv.v = b_.CreateICmpNE(raw, b_.getInt64(0));
              } else {
                cv.kind = TypeKind::kInt64;
                cv.v = raw;
              }
            }
          } else if (src.plugin != nullptr && oid_col != nullptr) {
            // Hybrid raw access by OID (e.g. uncached string field).
            auto lk = LeafKind(var, p);
            if (!lk.ok()) continue;  // collection field: unnest reads it lazily
            TypeKind kind = *lk;
            llvm::Value* oid_base = b_.getInt64(reinterpret_cast<uint64_t>(oid_col->ints.data()));
            llvm::Value* oid = LoadAt(b_.getInt64Ty(),
                                      b_.CreateAdd(oid_base, b_.CreateMul(row, b_.getInt64(8))));
            llvm::Value* pp = ConstPtr(src.plugin);
            auto* i8p = b_.getInt8PtrTy();
            const DatasetInfo& info = src.plugin->info();
            if (info.format == DataFormat::kJSON) {
              llvm::Value* h = b_.getInt64(HashString(DottedPath(p)));
              if (kind == TypeKind::kString) {
                llvm::Value* len_ptr = b_.CreateAlloca(b_.getInt64Ty());
                cv.kind = TypeKind::kString;
                cv.v = b_.CreateCall(Helper("proteus_json_str", i8p,
                                            {i8p, b_.getInt64Ty(), b_.getInt64Ty(),
                                             b_.getInt64Ty()->getPointerTo()}),
                                     {pp, oid, h, len_ptr});
                cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
              } else if (kind == TypeKind::kFloat64) {
                cv.kind = kind;
                cv.v = b_.CreateCall(Helper("proteus_json_double", b_.getDoubleTy(),
                                            {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                     {pp, oid, b_.getInt64(HashString(DottedPath(p)))});
              } else {
                cv.kind = TypeKind::kInt64;
                cv.v = b_.CreateCall(Helper("proteus_json_int", b_.getInt64Ty(),
                                            {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                     {pp, oid, h});
              }
            } else if (info.format == DataFormat::kCSV) {
              auto* csv = static_cast<CsvPlugin*>(src.plugin);
              int ci = csv->ColumnIndex(p[0]);
              if (ci < 0) return Status::Internal("jit: missing csv column " + p[0]);
              llvm::Value* col = b_.getInt32(static_cast<uint32_t>(ci));
              if (kind == TypeKind::kString) {
                llvm::Value* len_ptr = b_.CreateAlloca(b_.getInt64Ty());
                cv.kind = TypeKind::kString;
                cv.v = b_.CreateCall(Helper("proteus_csv_str", i8p,
                                            {i8p, b_.getInt64Ty(), b_.getInt32Ty(),
                                             b_.getInt64Ty()->getPointerTo()}),
                                     {pp, oid, col, len_ptr});
                cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
              } else if (kind == TypeKind::kFloat64) {
                cv.kind = kind;
                cv.v = b_.CreateCall(Helper("proteus_csv_double", b_.getDoubleTy(),
                                            {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                     {pp, oid, col});
              } else {
                cv.kind = TypeKind::kInt64;
                cv.v = b_.CreateCall(Helper("proteus_csv_int", b_.getInt64Ty(),
                                            {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                     {pp, oid, col});
              }
            } else {
              return Status::Unimplemented("jit: hybrid cache read from binary source");
            }
          } else {
            return Status::Unimplemented("jit: cache miss for field " + Key(var, p));
          }
          bindings_[Key(var, p)] = cv;
        }
        return consume();
      });
}

// ---------------------------------------------------------------------------
// Unnest
// ---------------------------------------------------------------------------

Status Codegen::EmitUnnest(const OpPtr& op, const Consume& consume) {
  const FieldPath& p = op->unnest_path();
  const std::string& src_var = p[0];
  const std::string& elem_var = op->binding();
  uint32_t slot = unnest_ids_.at(op.get());

  return EmitProduce(op->child(0), [&]() -> Status {
    // The source may be a raw JSON scan or a cache scan over a JSON dataset
    // (the cached OID addresses the original file's structural index).
    auto src_it = sources_.find(src_var);
    if (src_it == sources_.end() || src_it->second.plugin == nullptr ||
        src_it->second.plugin->info().format != DataFormat::kJSON) {
      return Status::Unimplemented("jit: unnest source must be a JSON scan");
    }
    auto oid_it = oids_.find(src_var);
    if (oid_it == oids_.end()) return Status::Unimplemented("jit: unnest without OID");
    llvm::Value* pp = ConstPtr(src_it->second.plugin);
    llvm::Value* oid = oid_it->second;
    FieldPath rel(p.begin() + 1, p.end());
    llvm::Value* h = b_.getInt64(HashString(DottedPath(rel)));
    auto* i8p = b_.getInt8PtrTy();
    auto* voidty = b_.getVoidTy();
    llvm::Value* slot_v = b_.getInt32(slot);

    b_.CreateCall(Helper("proteus_unnest_init", voidty,
                         {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                  {RtPtr(), slot_v, pp, oid, h});

    auto* cond_bb = llvm::BasicBlock::Create(*llctx_, "unnest.cond", fn_);
    auto* body_bb = llvm::BasicBlock::Create(*llctx_, "unnest.body", fn_);
    auto* exit_bb = llvm::BasicBlock::Create(*llctx_, "unnest.exit", fn_);
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(cond_bb);
    llvm::Value* has =
        b_.CreateCall(Helper("proteus_unnest_has_next", b_.getInt32Ty(), {i8p, b_.getInt32Ty()}),
                      {RtPtr(), slot_v});
    b_.CreateCondBr(b_.CreateICmpNE(has, b_.getInt32(0)), body_bb, exit_bb);
    b_.SetInsertPoint(body_bb);

    // Bind the element fields used above.
    TypePtr elem_t = var_types_.at(elem_var);
    auto needed_it = needed_.find(elem_var);
    std::vector<FieldPath> paths =
        needed_it == needed_.end() ? std::vector<FieldPath>{} : needed_it->second;
    for (const auto& ep : paths) {
      if (ep.size() > 1) return Status::Unimplemented("jit: deep path inside array element");
      CgValue cv;
      TypeKind kind;
      llvm::Value* name;
      llvm::Value* name_len;
      if (ep.empty()) {
        if (!elem_t->is_primitive()) {
          return Status::Unimplemented("jit: whole-record element use");
        }
        kind = elem_t->kind() == TypeKind::kDate ? TypeKind::kInt64 : elem_t->kind();
        name = GlobalString("");
        name_len = b_.getInt64(0);
      } else {
        PROTEUS_ASSIGN_OR_RETURN(kind, LeafKind(elem_var, ep));
        name = GlobalString(ep[0]);
        name_len = b_.getInt64(static_cast<int64_t>(ep[0].size()));
      }
      cv.kind = kind;
      if (kind == TypeKind::kInt64) {
        cv.v = b_.CreateCall(Helper("proteus_unnest_elem_int", b_.getInt64Ty(),
                                    {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                             {RtPtr(), slot_v, name, name_len});
      } else if (kind == TypeKind::kFloat64) {
        cv.v = b_.CreateCall(Helper("proteus_unnest_elem_double", b_.getDoubleTy(),
                                    {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                             {RtPtr(), slot_v, name, name_len});
      } else if (kind == TypeKind::kBool) {
        llvm::Value* i = b_.CreateCall(Helper("proteus_unnest_elem_int", b_.getInt64Ty(),
                                              {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                                       {RtPtr(), slot_v, name, name_len});
        cv.v = b_.CreateICmpNE(i, b_.getInt64(0));
      } else {
        llvm::Value* len_ptr = b_.CreateAlloca(b_.getInt64Ty());
        cv.v = b_.CreateCall(Helper("proteus_unnest_elem_str", i8p,
                                    {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty(),
                                     b_.getInt64Ty()->getPointerTo()}),
                             {RtPtr(), slot_v, name, name_len, len_ptr});
        cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
      }
      bindings_[Key(elem_var, ep)] = cv;
    }

    PROTEUS_RETURN_NOT_OK(EmitFilter(op->pred(), consume));

    b_.CreateCall(Helper("proteus_unnest_advance", voidty, {i8p, b_.getInt32Ty()}),
                  {RtPtr(), slot_v});
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(exit_bb);
    return Status::OK();
  });
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

namespace {

/// Lists (var, path, kind) of every binding the build side provides that the
/// plan needs above the join: those become the packed payload.
struct PayloadField {
  std::string var;
  FieldPath path;
  TypeKind kind;
  uint32_t slot;  // first slot index; strings take two
};

}  // namespace

Status Codegen::EmitJoin(const OpPtr& op, const Consume& consume) {
  // Determine the build-side payload: all needed paths of build-side vars.
  std::vector<std::string> build_vars;
  CollectBoundVars(op->child(0), &build_vars);
  std::vector<PayloadField> payload;
  uint32_t slots = 0;
  for (const auto& var : build_vars) {
    auto it = needed_.find(var);
    if (it == needed_.end()) continue;
    // Dedup paths.
    std::vector<FieldPath> uniq = it->second;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto& path : uniq) {
      if (path.empty()) return Status::Unimplemented("jit: whole-record join payload");
      PROTEUS_ASSIGN_OR_RETURN(TypeKind kind, LeafKind(var, path));
      payload.push_back({var, path, kind, slots});
      slots += (kind == TypeKind::kString) ? 2 : 1;
    }
  }
  if (slots == 0) slots = 1;  // keep payload pointers distinguishable from null
  uint32_t table = rt_->AddJoin(slots);
  auto* i8p = b_.getInt8PtrTy();
  auto* i64p = b_.getInt64Ty()->getPointerTo();
  llvm::Value* table_v = b_.getInt32(table);

  // ---- build pipeline ----
  llvm::Value* pay_buf = b_.CreateAlloca(b_.getInt64Ty(), b_.getInt32(slots), "payload");
  PROTEUS_RETURN_NOT_OK(EmitProduce(op->child(0), [&]() -> Status {
    PROTEUS_ASSIGN_OR_RETURN(CgValue key, EmitExpr(op->left_key()));
    if (key.kind == TypeKind::kFloat64 || key.kind == TypeKind::kString) {
      return Status::Unimplemented("jit: non-integer join key");
    }
    for (const auto& f : payload) {
      const CgValue& cv = bindings_.at(Key(f.var, f.path));
      llvm::Value* slot_ptr = b_.CreateGEP(b_.getInt64Ty(), pay_buf, b_.getInt32(f.slot));
      if (f.kind == TypeKind::kFloat64) {
        b_.CreateStore(b_.CreateBitCast(cv.v, b_.getInt64Ty()), slot_ptr);
      } else if (f.kind == TypeKind::kString) {
        b_.CreateStore(b_.CreatePtrToInt(cv.v, b_.getInt64Ty()), slot_ptr);
        llvm::Value* slot2 = b_.CreateGEP(b_.getInt64Ty(), pay_buf, b_.getInt32(f.slot + 1));
        b_.CreateStore(cv.len, slot2);
      } else if (f.kind == TypeKind::kBool) {
        b_.CreateStore(b_.CreateZExt(cv.v, b_.getInt64Ty()), slot_ptr);
      } else {
        b_.CreateStore(cv.v, slot_ptr);
      }
    }
    b_.CreateCall(Helper("proteus_join_insert", b_.getVoidTy(),
                         {i8p, b_.getInt32Ty(), b_.getInt64Ty(), i64p}),
                  {RtPtr(), table_v, key.v, pay_buf});
    return Status::OK();
  }));

  b_.CreateCall(Helper("proteus_join_build", b_.getVoidTy(), {i8p, b_.getInt32Ty()}),
                {RtPtr(), table_v});

  // ---- probe pipeline ----
  return EmitProduce(op->child(1), [&]() -> Status {
    PROTEUS_ASSIGN_OR_RETURN(CgValue key, EmitExpr(op->right_key()));
    llvm::Value* first = b_.CreateCall(
        Helper("proteus_join_probe_first", i64p, {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
        {RtPtr(), table_v, key.v});

    llvm::Value* match_ptr = b_.CreateAlloca(i64p, nullptr, "match");
    b_.CreateStore(first, match_ptr);
    auto* cond_bb = llvm::BasicBlock::Create(*llctx_, "probe.cond", fn_);
    auto* body_bb = llvm::BasicBlock::Create(*llctx_, "probe.body", fn_);
    auto* exit_bb = llvm::BasicBlock::Create(*llctx_, "probe.exit", fn_);
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(cond_bb);
    llvm::Value* cur = b_.CreateLoad(i64p, match_ptr);
    b_.CreateCondBr(b_.CreateIsNotNull(cur), body_bb, exit_bb);
    b_.SetInsertPoint(body_bb);

    // Rebind build-side virtual buffers from the payload row.
    for (const auto& f : payload) {
      CgValue cv;
      cv.kind = f.kind;
      llvm::Value* slot_ptr = b_.CreateGEP(b_.getInt64Ty(), cur, b_.getInt32(f.slot));
      llvm::Value* raw = b_.CreateLoad(b_.getInt64Ty(), slot_ptr);
      if (f.kind == TypeKind::kFloat64) {
        cv.v = b_.CreateBitCast(raw, b_.getDoubleTy());
      } else if (f.kind == TypeKind::kString) {
        cv.v = b_.CreateIntToPtr(raw, i8p);
        llvm::Value* slot2 = b_.CreateGEP(b_.getInt64Ty(), cur, b_.getInt32(f.slot + 1));
        cv.len = b_.CreateLoad(b_.getInt64Ty(), slot2);
      } else if (f.kind == TypeKind::kBool) {
        cv.v = b_.CreateICmpNE(raw, b_.getInt64(0));
      } else {
        cv.v = raw;
      }
      bindings_[Key(f.var, f.path)] = cv;
    }

    // Residual predicate (the equi-conjunct re-evaluates to true).
    PROTEUS_RETURN_NOT_OK(EmitFilter(op->pred(), consume));

    llvm::Value* next =
        b_.CreateCall(Helper("proteus_join_probe_next", i64p, {i8p, b_.getInt32Ty()}),
                      {RtPtr(), table_v});
    b_.CreateStore(next, match_ptr);
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(exit_bb);
    return Status::OK();
  });
}

// ---------------------------------------------------------------------------
// Nest
// ---------------------------------------------------------------------------

Status Codegen::EmitNest(const OpPtr& op, const Consume& consume) {
  // Agg slot layout + init values.
  TypeEnv env;  // key/agg expr types were annotated by the optimizer
  std::vector<TypeKind> slot_kinds;
  std::vector<int64_t> init;
  for (const auto& o : op->outputs()) {
    TypeKind k = TypeKind::kInt64;
    if (o.monoid != Monoid::kCount) {
      if (!o.expr->type()) return Status::Internal("jit: un-typechecked nest output");
      k = o.expr->type()->kind() == TypeKind::kFloat64 ? TypeKind::kFloat64 : TypeKind::kInt64;
    }
    slot_kinds.push_back(k);
    int64_t zero = 0;
    if (o.monoid == Monoid::kMax) {
      if (k == TypeKind::kFloat64) {
        double d = -std::numeric_limits<double>::infinity();
        std::memcpy(&zero, &d, 8);
      } else {
        zero = std::numeric_limits<int64_t>::min();
      }
    } else if (o.monoid == Monoid::kMin) {
      if (k == TypeKind::kFloat64) {
        double d = std::numeric_limits<double>::infinity();
        std::memcpy(&zero, &d, 8);
      } else {
        zero = std::numeric_limits<int64_t>::max();
      }
    }
    init.push_back(zero);
  }

  if (!op->group_by()->type()) return Status::Internal("jit: un-typechecked group key");
  TypeKind key_kind = op->group_by()->type()->kind();
  bool string_keys = key_kind == TypeKind::kString;
  if (key_kind == TypeKind::kFloat64) {
    return Status::Unimplemented("jit: float group keys");
  }
  uint32_t table = rt_->AddGroup(string_keys, init);
  auto* i8p = b_.getInt8PtrTy();
  auto* i64p = b_.getInt64Ty()->getPointerTo();
  llvm::Value* table_v = b_.getInt32(table);

  // ---- aggregation pipeline ----
  PROTEUS_RETURN_NOT_OK(EmitProduce(op->child(0), [&]() -> Status {
    Consume update = [&]() -> Status {
      PROTEUS_ASSIGN_OR_RETURN(CgValue key, EmitExpr(op->group_by()));
      llvm::Value* slots;
      if (string_keys) {
        slots = b_.CreateCall(Helper("proteus_group_upsert_str", i64p,
                                     {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                              {RtPtr(), table_v, key.v, key.len});
      } else {
        llvm::Value* k64 = key.kind == TypeKind::kBool
                               ? b_.CreateZExt(key.v, b_.getInt64Ty())
                               : key.v;
        slots = b_.CreateCall(Helper("proteus_group_upsert", i64p,
                                     {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                              {RtPtr(), table_v, k64});
      }
      for (size_t i = 0; i < op->outputs().size(); ++i) {
        const AggOutput& o = op->outputs()[i];
        llvm::Value* slot_ptr = b_.CreateGEP(b_.getInt64Ty(), slots, b_.getInt32((uint32_t)i));
        llvm::Value* raw = b_.CreateLoad(b_.getInt64Ty(), slot_ptr);
        llvm::Value* updated;
        if (o.monoid == Monoid::kCount) {
          updated = b_.CreateAdd(raw, b_.getInt64(1));
        } else {
          PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(o.expr));
          if (slot_kinds[i] == TypeKind::kFloat64) {
            llvm::Value* acc = b_.CreateBitCast(raw, b_.getDoubleTy());
            llvm::Value* x = ToDouble(v);
            llvm::Value* res;
            if (o.monoid == Monoid::kSum) {
              res = b_.CreateFAdd(acc, x);
            } else if (o.monoid == Monoid::kMax) {
              res = b_.CreateSelect(b_.CreateFCmpOGT(x, acc), x, acc);
            } else {
              res = b_.CreateSelect(b_.CreateFCmpOLT(x, acc), x, acc);
            }
            updated = b_.CreateBitCast(res, b_.getInt64Ty());
          } else {
            llvm::Value* x = v.kind == TypeKind::kBool ? b_.CreateZExt(v.v, b_.getInt64Ty())
                                                       : v.v;
            if (o.monoid == Monoid::kSum) {
              updated = b_.CreateAdd(raw, x);
            } else if (o.monoid == Monoid::kMax) {
              updated = b_.CreateSelect(b_.CreateICmpSGT(x, raw), x, raw);
            } else {
              updated = b_.CreateSelect(b_.CreateICmpSLT(x, raw), x, raw);
            }
          }
        }
        b_.CreateStore(updated, slot_ptr);
      }
      return Status::OK();
    };
    return EmitFilter(op->pred(), update);
  }));

  // ---- group emission pipeline ----
  llvm::Value* count = b_.CreateCall(
      Helper("proteus_group_count", b_.getInt64Ty(), {i8p, b_.getInt32Ty()}),
      {RtPtr(), table_v});
  std::string gvar = op->binding().empty() ? "$group" : op->binding();
  return EmitCountedLoop(count, [&](llvm::Value* g) -> Status {
    CgValue keyv;
    if (string_keys) {
      llvm::Value* len_ptr = b_.CreateAlloca(b_.getInt64Ty());
      keyv.kind = TypeKind::kString;
      keyv.v = b_.CreateCall(Helper("proteus_group_key_str", i8p,
                                    {i8p, b_.getInt32Ty(), b_.getInt64Ty(),
                                     b_.getInt64Ty()->getPointerTo()}),
                             {RtPtr(), table_v, g, len_ptr});
      keyv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
    } else {
      keyv.kind = key_kind == TypeKind::kBool ? TypeKind::kBool : TypeKind::kInt64;
      llvm::Value* raw = b_.CreateCall(Helper("proteus_group_key", b_.getInt64Ty(),
                                              {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                                       {RtPtr(), table_v, g});
      keyv.v = key_kind == TypeKind::kBool ? b_.CreateICmpNE(raw, b_.getInt64(0)) : raw;
    }
    bindings_[Key(gvar, {op->group_name()})] = keyv;

    llvm::Value* slots = b_.CreateCall(
        Helper("proteus_group_slots", i64p, {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
        {RtPtr(), table_v, g});
    for (size_t i = 0; i < op->outputs().size(); ++i) {
      const AggOutput& o = op->outputs()[i];
      llvm::Value* raw = b_.CreateLoad(
          b_.getInt64Ty(), b_.CreateGEP(b_.getInt64Ty(), slots, b_.getInt32((uint32_t)i)));
      CgValue cv;
      if (slot_kinds[i] == TypeKind::kFloat64) {
        cv.kind = TypeKind::kFloat64;
        cv.v = b_.CreateBitCast(raw, b_.getDoubleTy());
      } else {
        cv.kind = TypeKind::kInt64;
        cv.v = raw;
      }
      bindings_[Key(gvar, {o.name})] = cv;
    }
    return consume();
  });
}

// ---------------------------------------------------------------------------
// Dispatch + root
// ---------------------------------------------------------------------------

Status Codegen::EmitProduce(const OpPtr& op, const Consume& consume) {
  switch (op->kind()) {
    case OpKind::kScan:
      return EmitScan(op, consume);
    case OpKind::kCacheScan:
      return EmitCacheScan(op, consume);
    case OpKind::kSelect:
      return EmitProduce(op->child(0), [&]() { return EmitFilter(op->pred(), consume); });
    case OpKind::kUnnest:
      return EmitUnnest(op, consume);
    case OpKind::kJoin:
      return EmitJoin(op, consume);
    case OpKind::kNest:
      return EmitNest(op, consume);
    case OpKind::kReduce:
      return Status::Internal("jit: nested Reduce");
  }
  return Status::Internal("jit: unknown operator");
}

Status Codegen::EmitRoot(const OpPtr& reduce) {
  const auto& outputs = reduce->outputs();
  auto* i8p = b_.getInt8PtrTy();

  bool is_bag = outputs.size() == 1 && IsCollectionMonoid(outputs[0].monoid);
  if (is_bag && outputs[0].monoid == Monoid::kSet) {
    // Set semantics require deduplication of boxed rows: interpreter path.
    return Status::Unimplemented("jit: set monoid output");
  }
  if (is_bag) {
    const ExprPtr& head = outputs[0].expr;
    std::vector<ExprPtr> cols;
    if (head->kind() == ExprKind::kRecordCons) {
      result_columns_ = head->record_names();
      cols = head->children();
    } else {
      result_columns_ = {outputs[0].name};
      cols = {head};
    }
    auto emit_row = [&]() -> Status {
      for (const auto& c : cols) {
        PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(c));
        if (v.kind == TypeKind::kInt64) {
          b_.CreateCall(Helper("proteus_result_emit_int", b_.getVoidTy(), {i8p, b_.getInt64Ty()}),
                        {RtPtr(), v.v});
        } else if (v.kind == TypeKind::kFloat64) {
          b_.CreateCall(
              Helper("proteus_result_emit_double", b_.getVoidTy(), {i8p, b_.getDoubleTy()}),
              {RtPtr(), v.v});
        } else if (v.kind == TypeKind::kBool) {
          b_.CreateCall(
              Helper("proteus_result_emit_bool", b_.getVoidTy(), {i8p, b_.getInt32Ty()}),
              {RtPtr(), b_.CreateZExt(v.v, b_.getInt32Ty())});
        } else {
          b_.CreateCall(Helper("proteus_result_emit_str", b_.getVoidTy(),
                               {i8p, i8p, b_.getInt64Ty()}),
                        {RtPtr(), v.v, v.len});
        }
      }
      b_.CreateCall(Helper("proteus_result_end_row", b_.getVoidTy(), {i8p}), {RtPtr()});
      return Status::OK();
    };
    return EmitProduce(reduce->child(0),
                       [&]() { return EmitFilter(reduce->pred(), emit_row); });
  }

  // Scalar aggregates: accumulators live in allocas (promoted to registers).
  struct Acc {
    llvm::Value* ptr;
    TypeKind kind;
    Monoid monoid;
  };
  std::vector<Acc> accs;
  for (const auto& o : outputs) {
    if (IsCollectionMonoid(o.monoid)) {
      return Status::Unimplemented("jit: mixed collection/aggregate outputs");
    }
    TypeKind k = TypeKind::kInt64;
    if (o.monoid != Monoid::kCount) {
      if (!o.expr->type()) return Status::Internal("jit: un-typechecked reduce output");
      TypeKind ek = o.expr->type()->kind();
      if (o.monoid == Monoid::kAnd || o.monoid == Monoid::kOr) {
        k = TypeKind::kBool;
      } else {
        k = ek == TypeKind::kFloat64 ? TypeKind::kFloat64 : TypeKind::kInt64;
      }
    }
    llvm::Type* ty = k == TypeKind::kFloat64 ? (llvm::Type*)b_.getDoubleTy()
                     : k == TypeKind::kBool  ? (llvm::Type*)b_.getInt1Ty()
                                             : (llvm::Type*)b_.getInt64Ty();
    llvm::Value* ptr = b_.CreateAlloca(ty, nullptr, "acc");
    llvm::Value* zero;
    if (k == TypeKind::kFloat64) {
      double d = 0;
      if (o.monoid == Monoid::kMax) d = -std::numeric_limits<double>::infinity();
      if (o.monoid == Monoid::kMin) d = std::numeric_limits<double>::infinity();
      zero = llvm::ConstantFP::get(b_.getDoubleTy(), d);
    } else if (k == TypeKind::kBool) {
      zero = b_.getInt1(o.monoid == Monoid::kAnd);
    } else {
      int64_t z = 0;
      if (o.monoid == Monoid::kMax) z = std::numeric_limits<int64_t>::min();
      if (o.monoid == Monoid::kMin) z = std::numeric_limits<int64_t>::max();
      zero = b_.getInt64(z);
    }
    b_.CreateStore(zero, ptr);
    accs.push_back({ptr, k, o.monoid});
    result_columns_.push_back(o.name);
  }

  auto update = [&]() -> Status {
    for (size_t i = 0; i < outputs.size(); ++i) {
      const AggOutput& o = outputs[i];
      const Acc& a = accs[i];
      llvm::Type* ty = a.kind == TypeKind::kFloat64 ? (llvm::Type*)b_.getDoubleTy()
                       : a.kind == TypeKind::kBool  ? (llvm::Type*)b_.getInt1Ty()
                                                    : (llvm::Type*)b_.getInt64Ty();
      llvm::Value* cur = b_.CreateLoad(ty, a.ptr);
      llvm::Value* updated;
      if (o.monoid == Monoid::kCount) {
        updated = b_.CreateAdd(cur, b_.getInt64(1));
      } else {
        PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(o.expr));
        if (a.kind == TypeKind::kFloat64) {
          llvm::Value* x = ToDouble(v);
          if (o.monoid == Monoid::kSum) {
            updated = b_.CreateFAdd(cur, x);
          } else if (o.monoid == Monoid::kMax) {
            updated = b_.CreateSelect(b_.CreateFCmpOGT(x, cur), x, cur);
          } else {
            updated = b_.CreateSelect(b_.CreateFCmpOLT(x, cur), x, cur);
          }
        } else if (a.kind == TypeKind::kBool) {
          updated = o.monoid == Monoid::kAnd ? b_.CreateAnd(cur, v.v) : b_.CreateOr(cur, v.v);
        } else {
          if (o.monoid == Monoid::kSum) {
            updated = b_.CreateAdd(cur, v.v);
          } else if (o.monoid == Monoid::kMax) {
            updated = b_.CreateSelect(b_.CreateICmpSGT(v.v, cur), v.v, cur);
          } else {
            updated = b_.CreateSelect(b_.CreateICmpSLT(v.v, cur), v.v, cur);
          }
        }
      }
      b_.CreateStore(updated, a.ptr);
    }
    return Status::OK();
  };

  PROTEUS_RETURN_NOT_OK(EmitProduce(reduce->child(0),
                                    [&]() { return EmitFilter(reduce->pred(), update); }));

  // Emit the single result row.
  for (const Acc& a : accs) {
    if (a.kind == TypeKind::kFloat64) {
      llvm::Value* v = b_.CreateLoad(b_.getDoubleTy(), a.ptr);
      b_.CreateCall(Helper("proteus_result_emit_double", b_.getVoidTy(), {i8p, b_.getDoubleTy()}),
                    {RtPtr(), v});
    } else if (a.kind == TypeKind::kBool) {
      llvm::Value* v = b_.CreateLoad(b_.getInt1Ty(), a.ptr);
      b_.CreateCall(Helper("proteus_result_emit_bool", b_.getVoidTy(), {i8p, b_.getInt32Ty()}),
                    {RtPtr(), b_.CreateZExt(v, b_.getInt32Ty())});
    } else {
      llvm::Value* v = b_.CreateLoad(b_.getInt64Ty(), a.ptr);
      b_.CreateCall(Helper("proteus_result_emit_int", b_.getVoidTy(), {i8p, b_.getInt64Ty()}),
                    {RtPtr(), v});
    }
  }
  b_.CreateCall(Helper("proteus_result_end_row", b_.getVoidTy(), {i8p}), {RtPtr()});
  return Status::OK();
}

Status Codegen::Compile(const OpPtr& plan) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("jit: plan root must be Reduce");
  }
  PROTEUS_RETURN_NOT_OK(CheckSupported(plan));
  PROTEUS_RETURN_NOT_OK(Prepare(plan));

  auto* fty = llvm::FunctionType::get(b_.getVoidTy(), {b_.getInt8PtrTy()}, false);
  fn_ = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, "proteus_query",
                               module_.get());
  rt_arg_ = fn_->getArg(0);
  auto* entry = llvm::BasicBlock::Create(*llctx_, "entry", fn_);
  b_.SetInsertPoint(entry);

  PROTEUS_RETURN_NOT_OK(EmitRoot(plan));
  b_.CreateRetVoid();

  std::string err;
  llvm::raw_string_ostream os(err);
  if (llvm::verifyModule(*module_, &os)) {
    return Status::Internal("jit: invalid IR generated: " + os.str() +
                            (std::getenv("PROTEUS_DUMP_BAD_IR") ? "\n" + DumpIR() : ""));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// JitExecutor
// ---------------------------------------------------------------------------

Result<QueryResult> JitExecutor::Execute(const OpPtr& plan) {
  InitLLVMOnce();
  auto t0 = std::chrono::steady_clock::now();

  QueryRuntime rt;
  Codegen cg(ctx_, &rt);
  PROTEUS_RETURN_NOT_OK(cg.Compile(plan));
  last_ir_ = cg.DumpIR();
  std::vector<std::string> columns = cg.result_columns();

  auto module = cg.TakeModule();
  auto llctx = cg.TakeContext();

  // Optimize: mem2reg + the standard O2 pipeline (promotes virtual buffers
  // to registers, fuses the pipeline into tight loops).
  {
    llvm::PassBuilder pb;
    llvm::LoopAnalysisManager lam;
    llvm::FunctionAnalysisManager fam;
    llvm::CGSCCAnalysisManager cam;
    llvm::ModuleAnalysisManager mam;
    pb.registerModuleAnalyses(mam);
    pb.registerCGSCCAnalyses(cam);
    pb.registerFunctionAnalyses(fam);
    pb.registerLoopAnalyses(lam);
    pb.crossRegisterProxies(lam, fam, cam, mam);
    auto mpm = pb.buildPerModuleDefaultPipeline(llvm::OptimizationLevel::O2);
    mpm.run(*module, mam);
  }

  auto jit_or = llvm::orc::LLJITBuilder().create();
  if (!jit_or) {
    return Status::Internal("jit: LLJIT creation failed: " +
                            llvm::toString(jit_or.takeError()));
  }
  auto jit = std::move(*jit_or);

  llvm::orc::SymbolMap symbols;
  for (const auto& [name, addr] : jit::RuntimeSymbols()) {
    symbols[jit->mangleAndIntern(name)] = llvm::JITEvaluatedSymbol(
        llvm::pointerToJITTargetAddress(addr),
        llvm::JITSymbolFlags::Exported | llvm::JITSymbolFlags::Callable);
  }
  if (auto err = jit->getMainJITDylib().define(llvm::orc::absoluteSymbols(symbols))) {
    return Status::Internal("jit: symbol registration failed: " +
                            llvm::toString(std::move(err)));
  }
  if (auto err = jit->addIRModule(
          llvm::orc::ThreadSafeModule(std::move(module), std::move(llctx)))) {
    return Status::Internal("jit: addIRModule failed: " + llvm::toString(std::move(err)));
  }
  auto sym = jit->lookup("proteus_query");
  if (!sym) {
    return Status::Internal("jit: lookup failed: " + llvm::toString(sym.takeError()));
  }
  last_compile_ms_ = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

  auto* entry = reinterpret_cast<void (*)(void*)>(sym->getAddress());
  entry(&rt);
  if (rt.failed) return Status::Internal("jit runtime: " + rt.error);

  rt.result.columns = std::move(columns);
  return std::move(rt.result);
}

}  // namespace proteus
