#include "src/jit/jit_engine.h"
#include <cstdlib>

#include <llvm/ExecutionEngine/Orc/CompileUtils.h>
#include <llvm/ExecutionEngine/Orc/IRTransformLayer.h>
#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/ExecutionEngine/Orc/LLJIT.h>
#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>
#include <llvm/IR/Verifier.h>
#include <llvm/Passes/PassBuilder.h>
#include <llvm/Support/TargetSelect.h>
#include <llvm/Support/raw_ostream.h>

#include <chrono>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/engine/partial_sink.h"
#include "src/plugins/binary_plugins.h"
#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"
#include "src/jit/ir_verifier.h"
#include "src/jit/query_cache.h"
#include "src/jit/runtime.h"
#include "src/obs/trace.h"

namespace proteus {

namespace {

using jit::MorselCtx;
using jit::QueryRuntime;

void InitLLVMOnce() {
  static bool done = [] {
    llvm::InitializeNativeTarget();
    llvm::InitializeNativeTargetAsmPrinter();
    return true;
  }();
  (void)done;
}

/// A value in a virtual buffer: primitive kinds only; strings carry ptr+len.
struct CgValue {
  TypeKind kind = TypeKind::kInt64;
  llvm::Value* v = nullptr;    // i64 / double / i1; strings: i8* data
  llvm::Value* len = nullptr;  // strings only: i64
  /// SQL-null flag (i1), or nullptr when the value is provably non-null.
  /// Set for outer-join/outer-unnest null bindings (constant true) and for
  /// join-key JSON field reads (a proteus_json_has check), and propagated
  /// through expressions with the interpreter's Eval() semantics: arithmetic
  /// and comparisons yield null if an operand is null, and/or fold null
  /// operands to false, predicates treat null as false, aggregates skip null
  /// inputs. Other field reads stay unflagged — absent JSON fields read 0/""
  /// there, the engine's long-standing generated-code semantics.
  llvm::Value* null = nullptr;
};

struct ScanSource {
  DataFormat format;
  InputPlugin* plugin = nullptr;
  std::shared_ptr<const CacheBlock> cache;  ///< shared: survives eviction
  std::string dataset;    ///< catalog name (raw formats; hybrid cache reads)
  uint64_t cache_id = 0;  ///< kCacheBlock sources
};

/// ParamDesc builders for the two descriptor families (raw-format data
/// constants vs cache-block constants).
jit::ParamDesc DataParam(jit::ParamKind kind, std::string dataset, uint32_t column = 0) {
  jit::ParamDesc d;
  d.kind = kind;
  d.dataset = std::move(dataset);
  d.column = column;
  return d;
}
jit::ParamDesc CacheParam(jit::ParamKind kind, uint64_t cache_id, std::string var = {},
                          FieldPath path = {}) {
  jit::ParamDesc d;
  d.kind = kind;
  d.cache_id = cache_id;
  d.var = std::move(var);
  d.path = std::move(path);
  return d;
}

/// Lists (var, path, kind) of every binding a join's build side provides
/// that the plan needs above the join: those become the packed payload.
struct PayloadField {
  std::string var;
  FieldPath path;
  TypeKind kind;
  uint32_t slot;      // first slot index; strings take two
  int null_bit = -1;  // bit in the payload's null mask, -1 = never null
};

class Codegen {
 public:
  /// Generated code is position-independent: per-execution constants land in
  /// `params` (bound per run) and runtime-table shapes in `layout` (a fresh
  /// QueryRuntime is built from it per run), so one compiled module can be
  /// cached and reused across executions, threads, and shards.
  Codegen(ExecContext ctx, jit::RuntimeLayout* layout, jit::ParamTable* params)
      : ectx_(ctx),
        layout_(layout),
        params_(params),
        llctx_(std::make_unique<llvm::LLVMContext>()),
        module_(std::make_unique<llvm::Module>("proteus_query", *llctx_)),
        b_(*llctx_) {}

  /// Legacy whole-relation compilation: one proteus_query(ctx) function that
  /// runs the entire plan in a single call. Kept for plan shapes the morsel
  /// driver does not understand.
  Status Compile(const OpPtr& plan);

  /// Morsel-parameterized compilation (parallel JIT pipelines): emits
  ///   proteus_build(ctx)                       — chain join build sides, run once
  ///   proteus_pipeline(ctx, sink, begin, end)  — the driver chain over one
  ///                                              morsel's OID range, feeding a
  ///                                              per-morsel JitMorselSink
  /// The pipeline function is pure over [begin, end): all cross-call state is
  /// per-task (MorselCtx) or per-morsel (the sink), so the scheduler can run
  /// it concurrently, once per morsel, and the partials merge through the
  /// same FinalizePlanPartials fold the interpreter uses.
  Status CompileMorsel(const OpPtr& plan, const MorselPipeline& pipe);

  std::unique_ptr<llvm::Module> TakeModule() { return std::move(module_); }
  std::unique_ptr<llvm::LLVMContext> TakeContext() { return std::move(llctx_); }
  std::string DumpIR() const {
    std::string s;
    llvm::raw_string_ostream os(s);
    module_->print(os, nullptr);
    return s;
  }
  const std::vector<std::string>& result_columns() const { return result_columns_; }
  bool row_records() const { return row_records_; }
  /// Join-table ids of the outer chain joins, deepest-first — aligned with
  /// the generated proteus_drain<k> functions.
  const std::vector<uint32_t>& outer_join_tables() const { return outer_join_tables_; }

 private:
  using Consume = std::function<Status()>;

  // ---- plan preparation ----------------------------------------------------
  Status Prepare(const OpPtr& op);
  Status CheckSupported(const OpPtr& op) const;
  Result<TypePtr> VarType(const std::string& var) const;
  Result<TypeKind> LeafKind(const std::string& var, const FieldPath& path) const;

  // ---- IR emission ---------------------------------------------------------
  Status EmitProduce(const OpPtr& op, const Consume& consume);
  Status EmitScan(const OpPtr& op, const Consume& consume);
  Status EmitCacheScan(const OpPtr& op, const Consume& consume);
  Status EmitUnnest(const OpPtr& op, const Consume& consume);
  Status EmitJoin(const OpPtr& op, const Consume& consume);
  Status EmitJoinBuild(const Operator& op);
  Status EmitJoinProbe(const Operator& op, const Consume& consume);
  /// Body of a generated unmatched-drain pass (drain_join_ set): loops the
  /// outer join's build rows, skips rows marked in the merged matched
  /// bitmap, and runs the surviving rows — probe side bound to SQL null —
  /// through the ops above the join into the drain's trailing sink slot.
  Status EmitJoinDrain(const Operator& op, const Consume& consume);
  /// Rebinds `op`'s build-side virtual buffers from a payload row pointer,
  /// restoring nullable fields' null flags from the trailing mask slot
  /// (shared by the probe loop and the unmatched drain).
  void RebindPayload(const Operator& op, llvm::Value* row_ptr);
  Status EmitNest(const OpPtr& op, const Consume& consume);
  Status EmitFilter(const ExprPtr& pred, const Consume& consume);
  Status EmitRoot(const OpPtr& reduce);
  Status EmitReduceRoot(const OpPtr& reduce, bool to_sink);
  Status EmitBagReduce(const OpPtr& reduce, bool to_sink);
  Status EmitScalarReduce(const OpPtr& reduce, bool to_sink);
  Status EmitMorselRoot(const OpPtr& reduce, const Operator* nest);
  Status EmitNestMorsel(const Operator& nest);

  Result<CgValue> EmitExpr(const ExprPtr& e);
  Result<CgValue> EmitBinary(const ExprPtr& e);
  llvm::Value* ToDouble(const CgValue& v) {
    if (v.kind == TypeKind::kFloat64) return v.v;
    if (v.kind == TypeKind::kBool) return b_.CreateUIToFP(v.v, b_.getDoubleTy());
    return b_.CreateSIToFP(v.v, b_.getDoubleTy());
  }
  /// Combines two optional null flags (nullptr = non-null).
  llvm::Value* OrNull(llvm::Value* a, llvm::Value* b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    return b_.CreateOr(a, b);
  }
  /// Boolean truth value with SQL-null folded to false — what EvalPredicate
  /// (and the null-as-false rule of and/or and if-conditions) computes.
  llvm::Value* Truthy(const CgValue& c) {
    return c.null == nullptr ? c.v : b_.CreateAnd(c.v, b_.CreateNot(c.null));
  }
  /// A statically-null value of `kind` (outer-join drain / outer-unnest
  /// bindings): zero payload, constant-true null flag. Downstream emission
  /// folds the constant, so null rows cost nothing at runtime.
  CgValue NullValue(TypeKind kind) {
    CgValue cv;
    cv.kind = kind;
    cv.null = b_.getInt1(true);
    if (kind == TypeKind::kFloat64) {
      cv.v = llvm::ConstantFP::get(b_.getDoubleTy(), 0.0);
    } else if (kind == TypeKind::kBool) {
      cv.v = b_.getInt1(false);
    } else if (kind == TypeKind::kString) {
      cv.v = GlobalString("");
      cv.len = b_.getInt64(0);
    } else {
      cv.v = b_.getInt64(0);
    }
    return cv;
  }

  // ---- small helpers -------------------------------------------------------
  llvm::Function* Helper(const char* name, llvm::Type* ret,
                         std::vector<llvm::Type*> args);
  /// The i64 parameter-table entry for `desc`: registered in the shared
  /// ParamTable (deduplicated) and loaded once per function, in the entry
  /// block — the replacement for every constant the old codegen baked into
  /// the instruction stream.
  llvm::Value* ParamI64(jit::ParamDesc desc);
  llvm::Value* ParamPtr(jit::ParamDesc desc) {
    return b_.CreateIntToPtr(ParamI64(std::move(desc)), b_.getInt8PtrTy());
  }
  /// Alloca hoisted into the function entry block: SROA only promotes
  /// entry-block allocas to registers, and hoisting keeps loop-body
  /// temporaries from re-allocating per iteration.
  llvm::Value* EntryAlloca(llvm::Type* ty, llvm::Value* array_size = nullptr,
                           const char* name = "");
  /// The current function's MorselCtx* argument (per-task runtime state).
  llvm::Value* CtxPtr() { return ctx_arg_; }
  /// The pipeline function's JitMorselSink* argument (morsel mode only).
  llvm::Value* SinkPtr() { return sink_arg_; }
  llvm::Value* GlobalString(const std::string& s) {
    auto it = string_globals_.find(s);
    if (it != string_globals_.end()) return it->second;
    llvm::Value* g = b_.CreateGlobalStringPtr(s);
    string_globals_[s] = g;
    return g;
  }
  llvm::Value* LoadAt(llvm::Type* ty, llvm::Value* addr_i64) {
    return b_.CreateLoad(ty, b_.CreateIntToPtr(addr_i64, ty->getPointerTo()));
  }
  static std::string Key(const std::string& var, const FieldPath& path) {
    return path.empty() ? var : var + "." + DottedPath(path);
  }

  /// Emits a canonical loop over [lo, hi); `body(i)` runs per iteration.
  Status EmitRangeLoop(llvm::Value* lo, llvm::Value* hi,
                       const std::function<Status(llvm::Value*)>& body);
  /// Counted loop [0, n).
  Status EmitCountedLoop(llvm::Value* n, const std::function<Status(llvm::Value*)>& body) {
    return EmitRangeLoop(b_.getInt64(0), n, body);
  }

  /// Opens a new void function `name(args...)` of i8*/i64 params and positions
  /// the builder at its entry block; per-function emission state resets.
  llvm::Function* OpenFunction(const char* name, uint32_t ptr_args, uint32_t int_args);

  ExecContext ectx_;
  jit::RuntimeLayout* layout_;
  jit::ParamTable* params_;
  std::unique_ptr<llvm::LLVMContext> llctx_;
  std::unique_ptr<llvm::Module> module_;
  llvm::IRBuilder<> b_;
  llvm::Function* fn_ = nullptr;
  llvm::Value* ctx_arg_ = nullptr;
  llvm::Value* params_arg_ = nullptr;  // i64* view of the parameter table
  /// entry -> body branch; EntryAlloca and ParamI64 insert before it.
  llvm::Instruction* entry_term_ = nullptr;
  std::unordered_map<uint32_t, llvm::Value*> param_values_;  // slot -> entry load
  llvm::Value* sink_arg_ = nullptr;   // morsel pipeline only
  llvm::Value* begin_arg_ = nullptr;  // morsel pipeline only
  llvm::Value* end_arg_ = nullptr;    // morsel pipeline only

  // Morsel mode: the driver leaf loops over [begin, end) instead of the
  // whole relation, and chain joins emit only their probe side (builds run
  // once in proteus_build).
  bool morsel_mode_ = false;
  const Operator* driver_leaf_ = nullptr;
  std::unordered_set<const Operator*> chain_joins_;
  // Set while emitting an unmatched-drain function: the outer join whose
  // build rows the function iterates (EmitJoinProbe dispatches to
  // EmitJoinDrain there), and the function's merged-bitmap argument.
  const Operator* drain_join_ = nullptr;
  llvm::Value* drain_matched_arg_ = nullptr;
  std::vector<uint32_t> outer_join_tables_;
  // Keys (var.path) read by any join key expression: JSON reads of these
  // carry a proteus_json_has null check so null-key build/probe semantics
  // match the interpreter's (null keys never match).
  std::unordered_set<std::string> key_paths_;

  std::unordered_map<std::string, CgValue> bindings_;       // virtual buffers
  std::unordered_map<std::string, llvm::Value*> oids_;      // var -> current oid (i64)
  std::unordered_map<std::string, ScanSource> sources_;     // var -> data source
  std::unordered_map<std::string, TypePtr> var_types_;      // var -> record type
  std::unordered_map<std::string, std::vector<FieldPath>> needed_;  // var -> used paths
  std::unordered_map<const Operator*, uint32_t> join_ids_;
  std::unordered_map<const Operator*, std::vector<PayloadField>> join_payloads_;
  /// Payload slot holding the row's null-bit mask, or -1 when no payload
  /// field of that join can be null.
  std::unordered_map<const Operator*, int> join_null_slots_;
  std::unordered_map<const Operator*, uint32_t> group_ids_;
  std::unordered_map<const Operator*, uint32_t> unnest_ids_;
  std::unordered_map<std::string, llvm::Value*> string_globals_;
  std::vector<std::string> result_columns_;
  bool row_records_ = false;
};

// ---------------------------------------------------------------------------
// Preparation: validate support, open plugins, register runtime tables
// ---------------------------------------------------------------------------

void CollectExprPaths(const ExprPtr& e,
                      std::unordered_map<std::string, std::vector<FieldPath>>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kProj) {
    FieldPath path;
    const Expr* cur = e.get();
    while (cur->kind() == ExprKind::kProj) {
      path.insert(path.begin(), cur->field());
      cur = cur->child(0).get();
    }
    if (cur->kind() == ExprKind::kVarRef) {
      (*out)[cur->var_name()].push_back(path);
      return;
    }
  }
  if (e->kind() == ExprKind::kVarRef) {
    (*out)[e->var_name()].push_back({});
    return;
  }
  for (const auto& c : e->children()) CollectExprPaths(c, out);
}

/// Collects the (var, path) keys every join key expression in the plan
/// reads. JSON scans of those fields emit a presence check alongside the
/// value read — the null-key join semantics the interpreter gets for free
/// from boxed Values.
void CollectJoinKeyPaths(const OpPtr& op, std::unordered_set<std::string>* out) {
  if (op->kind() == OpKind::kJoin) {
    std::unordered_map<std::string, std::vector<FieldPath>> paths;
    CollectExprPaths(op->left_key(), &paths);
    CollectExprPaths(op->right_key(), &paths);
    for (const auto& [var, ps] : paths) {
      for (const auto& p : ps) {
        out->insert(p.empty() ? var : var + "." + DottedPath(p));
      }
    }
  }
  for (const auto& c : op->children()) CollectJoinKeyPaths(c, out);
}

Status Codegen::CheckSupported(const OpPtr& op) const {
  // Walk the whole plan and collect *every* unsupported construct, not just
  // the first: fallback telemetry reports the semicolon-joined list, so a
  // plan with several blockers shows its complete burn-down list at once.
  std::vector<std::string> reasons;
  auto add = [&](std::string r) {
    if (std::find(reasons.begin(), reasons.end(), r) == reasons.end()) {
      reasons.push_back(std::move(r));
    }
  };
  std::function<void(const OpPtr&)> walk = [&](const OpPtr& o) {
    switch (o->kind()) {
      case OpKind::kJoin:
        // Non-equi joins generate a nested loop over the frozen build rows
        // (EmitJoinProbe); equi joins with non-integer keys stay on the
        // interpreter — the packed radix table holds int64 keys only.
        if (o->left_key() != nullptr && o->left_key()->type() != nullptr) {
          TypeKind k = o->left_key()->type()->kind();
          if (k == TypeKind::kFloat64 || k == TypeKind::kString) {
            add("jit: non-integer join key");
          }
        }
        // Outer joins generate per-morsel matched-build bitmaps plus a
        // one-shot drain function — infrastructure only the morsel pipeline
        // chain has. Outer joins inside build subtrees (or legacy
        // whole-relation mode) still fall back.
        if (o->outer() && (!morsel_mode_ || chain_joins_.count(o.get()) == 0)) {
          add("jit: outer join outside the morsel pipeline chain");
        }
        break;
      case OpKind::kUnnest:
        break;  // outer unnest generates a null-element emission branch
      case OpKind::kNest:
        for (const auto& out : o->outputs()) {
          if (IsCollectionMonoid(out.monoid) || out.monoid == Monoid::kAnd ||
              out.monoid == Monoid::kOr) {
            add("jit: nest with collection/boolean monoid");
            break;
          }
        }
        break;
      default:
        break;
    }
    for (const auto& c : o->children()) walk(c);
  };
  walk(op);
  if (reasons.empty()) return Status::OK();
  std::string joined;
  for (const auto& r : reasons) {
    if (!joined.empty()) joined += "; ";
    joined += r;
  }
  return Status::Unimplemented(joined);
}

Result<TypePtr> Codegen::VarType(const std::string& var) const {
  auto it = var_types_.find(var);
  if (it == var_types_.end()) return Status::Unimplemented("jit: unknown variable " + var);
  return it->second;
}

Result<TypeKind> Codegen::LeafKind(const std::string& var, const FieldPath& path) const {
  PROTEUS_ASSIGN_OR_RETURN(TypePtr t, VarType(var));
  for (const auto& f : path) {
    if (t->kind() != TypeKind::kRecord) return Status::Unimplemented("jit: path into non-record");
    PROTEUS_ASSIGN_OR_RETURN(t, t->FieldType(f));
  }
  if (!t->is_primitive()) return Status::Unimplemented("jit: non-primitive leaf " + Key(var, path));
  return t->kind() == TypeKind::kDate ? TypeKind::kInt64 : t->kind();
}

Status Codegen::Prepare(const OpPtr& op) {
  // Gather expression paths used anywhere.
  CollectExprPaths(op->pred(), &needed_);
  CollectExprPaths(op->group_by(), &needed_);
  CollectExprPaths(op->left_key(), &needed_);
  CollectExprPaths(op->right_key(), &needed_);
  for (const auto& o : op->outputs()) CollectExprPaths(o.expr, &needed_);

  switch (op->kind()) {
    case OpKind::kScan: {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ectx_.catalog->Get(op->dataset()));
      PROTEUS_ASSIGN_OR_RETURN(InputPlugin * plugin,
                               ectx_.plugins->GetOrOpen(*info, ectx_.stats));
      sources_[op->binding()] = {info->format, plugin, nullptr, op->dataset(), 0};
      var_types_[op->binding()] = info->type->elem();
      break;
    }
    case OpKind::kCacheScan: {
      if (ectx_.caches == nullptr) return Status::Internal("jit: cache scan w/o manager");
      auto blk = ectx_.caches->FindById(op->cache_id());
      if (blk == nullptr) return Status::NotFound("jit: cache block evicted");
      ScanSource src{DataFormat::kCacheBlock, nullptr, std::move(blk), op->dataset(),
                     op->cache_id()};
      if (!op->dataset().empty()) {
        PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ectx_.catalog->Get(op->dataset()));
        PROTEUS_ASSIGN_OR_RETURN(src.plugin, ectx_.plugins->GetOrOpen(*info, ectx_.stats));
        var_types_[op->binding()] = info->type->elem();
      }
      sources_[op->binding()] = src;
      break;
    }
    case OpKind::kUnnest: {
      PROTEUS_RETURN_NOT_OK(Prepare(op->child(0)));
      const FieldPath& p = op->unnest_path();
      PROTEUS_ASSIGN_OR_RETURN(TypePtr src_t, VarType(p[0]));
      TypePtr t = src_t;
      for (size_t i = 1; i < p.size(); ++i) {
        PROTEUS_ASSIGN_OR_RETURN(t, t->FieldType(p[i]));
      }
      if (t->kind() != TypeKind::kCollection) {
        return Status::TypeError("jit: unnest path is not a collection");
      }
      var_types_[op->binding()] = t->elem();
      unnest_ids_[op.get()] = layout_->AddUnnest();
      return Status::OK();
    }
    case OpKind::kJoin: {
      PROTEUS_RETURN_NOT_OK(Prepare(op->child(0)));
      PROTEUS_RETURN_NOT_OK(Prepare(op->child(1)));
      // Join table registered in EmitJoin once payload width is known.
      return Status::OK();
    }
    default:
      for (const auto& c : op->children()) PROTEUS_RETURN_NOT_OK(Prepare(c));
      return Status::OK();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Helper function declarations
// ---------------------------------------------------------------------------

llvm::Function* Codegen::Helper(const char* name, llvm::Type* ret,
                                std::vector<llvm::Type*> args) {
  if (auto* f = module_->getFunction(name)) return f;
  auto* fty = llvm::FunctionType::get(ret, args, false);
  return llvm::Function::Create(fty, llvm::Function::ExternalLinkage, name, module_.get());
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<CgValue> Codegen::EmitExpr(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kLiteral: {
      const Value& v = e->literal();
      if (v.is_int()) return CgValue{TypeKind::kInt64, b_.getInt64(v.i())};
      if (v.is_float())
        return CgValue{TypeKind::kFloat64, llvm::ConstantFP::get(b_.getDoubleTy(), v.f())};
      if (v.is_bool()) return CgValue{TypeKind::kBool, b_.getInt1(v.b())};
      if (v.is_string()) {
        return CgValue{TypeKind::kString, GlobalString(v.s()),
                       b_.getInt64(static_cast<int64_t>(v.s().size()))};
      }
      return Status::Unimplemented("jit: literal " + v.ToString());
    }
    case ExprKind::kVarRef:
    case ExprKind::kProj: {
      FieldPath path;
      const Expr* cur = e.get();
      while (cur->kind() == ExprKind::kProj) {
        path.insert(path.begin(), cur->field());
        cur = cur->child(0).get();
      }
      if (cur->kind() != ExprKind::kVarRef) {
        return Status::Unimplemented("jit: projection over computed record");
      }
      auto it = bindings_.find(Key(cur->var_name(), path));
      if (it == bindings_.end()) {
        return Status::Unimplemented("jit: no virtual buffer for " +
                                     Key(cur->var_name(), path));
      }
      return it->second;
    }
    case ExprKind::kBinary:
      return EmitBinary(e);
    case ExprKind::kUnary: {
      PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(e->child(0)));
      CgValue out;
      out.null = c.null;  // Eval: unary ops propagate null
      if (e->un_op() == UnOp::kNot) {
        out.kind = TypeKind::kBool;
        out.v = b_.CreateNot(c.v);
      } else if (c.kind == TypeKind::kFloat64) {
        out.kind = c.kind;
        out.v = b_.CreateFNeg(c.v);
      } else {
        out.kind = c.kind;
        out.v = b_.CreateNeg(c.v);
      }
      return out;
    }
    case ExprKind::kIf: {
      PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(e->child(0)));
      PROTEUS_ASSIGN_OR_RETURN(CgValue t, EmitExpr(e->child(1)));
      PROTEUS_ASSIGN_OR_RETURN(CgValue f, EmitExpr(e->child(2)));
      if (t.kind != f.kind) {
        // Widen int/float branch mismatches to double the way the
        // arithmetic path does. Other mixes (bool vs numeric, string vs
        // anything) are rejected by the type checker before either engine
        // runs, so bailing here keeps the JIT exactly as reachable as the
        // interpreter — widening them would diverge from Eval(), which
        // returns the raw branch cell.
        auto numeric = [](TypeKind k) {
          return k == TypeKind::kInt64 || k == TypeKind::kFloat64;
        };
        if (!numeric(t.kind) || !numeric(f.kind)) {
          return Status::Unimplemented("jit: if branches of mixed kinds");
        }
        t = CgValue{TypeKind::kFloat64, ToDouble(t), nullptr, t.null};
        f = CgValue{TypeKind::kFloat64, ToDouble(f), nullptr, f.null};
      }
      llvm::Value* cond = Truthy(c);  // Eval: a null condition picks else
      CgValue out{t.kind, b_.CreateSelect(cond, t.v, f.v)};
      if (t.kind == TypeKind::kString) out.len = b_.CreateSelect(cond, t.len, f.len);
      if (t.null != nullptr || f.null != nullptr) {
        llvm::Value* tn = t.null != nullptr ? t.null : b_.getInt1(false);
        llvm::Value* fn = f.null != nullptr ? f.null : b_.getInt1(false);
        out.null = b_.CreateSelect(cond, tn, fn);
      }
      return out;
    }
    case ExprKind::kCast: {
      PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(e->child(0)));
      if (e->cast_to()->kind() == TypeKind::kFloat64) {
        return CgValue{TypeKind::kFloat64, ToDouble(c), nullptr, c.null};
      }
      if (c.kind == TypeKind::kFloat64) {
        return CgValue{TypeKind::kInt64, b_.CreateFPToSI(c.v, b_.getInt64Ty()), nullptr,
                       c.null};
      }
      return c;
    }
    case ExprKind::kRecordCons:
      return Status::Unimplemented("jit: record construction outside result emit");
  }
  return Status::Internal("jit: unreachable expr kind");
}

Result<CgValue> Codegen::EmitBinary(const ExprPtr& e) {
  BinOp op = e->bin_op();
  PROTEUS_ASSIGN_OR_RETURN(CgValue l, EmitExpr(e->child(0)));
  PROTEUS_ASSIGN_OR_RETURN(CgValue r, EmitExpr(e->child(1)));
  // Eval(): arithmetic / comparison with a null operand is null; and/or fold
  // null operands to false and always yield a non-null bool.
  llvm::Value* nul = OrNull(l.null, r.null);

  if (op == BinOp::kAnd) return CgValue{TypeKind::kBool, b_.CreateAnd(Truthy(l), Truthy(r))};
  if (op == BinOp::kOr) return CgValue{TypeKind::kBool, b_.CreateOr(Truthy(l), Truthy(r))};

  // String comparisons via runtime helpers.
  if (l.kind == TypeKind::kString || r.kind == TypeKind::kString) {
    if (l.kind != r.kind) return Status::TypeError("jit: string vs non-string comparison");
    auto* i8p = b_.getInt8PtrTy();
    auto* eqf = Helper("proteus_str_eq", b_.getInt32Ty(),
                       {i8p, b_.getInt64Ty(), i8p, b_.getInt64Ty()});
    auto* ltf = Helper("proteus_str_lt", b_.getInt32Ty(),
                       {i8p, b_.getInt64Ty(), i8p, b_.getInt64Ty()});
    auto call = [&](llvm::Function* f, llvm::Value* a, llvm::Value* alen, llvm::Value* c,
                    llvm::Value* clen) {
      return b_.CreateICmpNE(b_.CreateCall(f, {a, alen, c, clen}), b_.getInt32(0));
    };
    switch (op) {
      case BinOp::kEq:
        return CgValue{TypeKind::kBool, call(eqf, l.v, l.len, r.v, r.len), nullptr, nul};
      case BinOp::kNe:
        return CgValue{TypeKind::kBool, b_.CreateNot(call(eqf, l.v, l.len, r.v, r.len)),
                       nullptr, nul};
      case BinOp::kLt:
        return CgValue{TypeKind::kBool, call(ltf, l.v, l.len, r.v, r.len), nullptr, nul};
      case BinOp::kGt:
        return CgValue{TypeKind::kBool, call(ltf, r.v, r.len, l.v, l.len), nullptr, nul};
      case BinOp::kLe:
        return CgValue{TypeKind::kBool, b_.CreateNot(call(ltf, r.v, r.len, l.v, l.len)),
                       nullptr, nul};
      case BinOp::kGe:
        return CgValue{TypeKind::kBool, b_.CreateNot(call(ltf, l.v, l.len, r.v, r.len)),
                       nullptr, nul};
      default:
        return Status::TypeError("jit: arithmetic on strings");
    }
  }

  bool bools = l.kind == TypeKind::kBool && r.kind == TypeKind::kBool;
  bool floats = l.kind == TypeKind::kFloat64 || r.kind == TypeKind::kFloat64;
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul: {
      if (floats) {
        llvm::Value* a = ToDouble(l);
        llvm::Value* c = ToDouble(r);
        llvm::Value* v = op == BinOp::kAdd   ? b_.CreateFAdd(a, c)
                         : op == BinOp::kSub ? b_.CreateFSub(a, c)
                                             : b_.CreateFMul(a, c);
        return CgValue{TypeKind::kFloat64, v, nullptr, nul};
      }
      llvm::Value* v = op == BinOp::kAdd   ? b_.CreateAdd(l.v, r.v)
                       : op == BinOp::kSub ? b_.CreateSub(l.v, r.v)
                                           : b_.CreateMul(l.v, r.v);
      return CgValue{TypeKind::kInt64, v, nullptr, nul};
    }
    case BinOp::kDiv:
      return CgValue{TypeKind::kFloat64, b_.CreateFDiv(ToDouble(l), ToDouble(r)), nullptr,
                     nul};
    case BinOp::kMod: {
      // A null denominator's placeholder payload is 0; srem by 0 traps, so
      // divide by 1 there — the result is discarded behind the null flag.
      llvm::Value* den = r.v;
      if (r.null != nullptr) den = b_.CreateSelect(r.null, b_.getInt64(1), r.v);
      return CgValue{TypeKind::kInt64, b_.CreateSRem(l.v, den), nullptr, nul};
    }
    default:
      break;
  }
  // Comparisons.
  llvm::Value* cmp;
  if (floats) {
    llvm::Value* a = ToDouble(l);
    llvm::Value* c = ToDouble(r);
    switch (op) {
      case BinOp::kLt: cmp = b_.CreateFCmpOLT(a, c); break;
      case BinOp::kLe: cmp = b_.CreateFCmpOLE(a, c); break;
      case BinOp::kGt: cmp = b_.CreateFCmpOGT(a, c); break;
      case BinOp::kGe: cmp = b_.CreateFCmpOGE(a, c); break;
      case BinOp::kEq: cmp = b_.CreateFCmpOEQ(a, c); break;
      default: cmp = b_.CreateFCmpONE(a, c); break;
    }
  } else if (bools) {
    cmp = op == BinOp::kEq ? b_.CreateICmpEQ(l.v, r.v) : b_.CreateICmpNE(l.v, r.v);
  } else {
    switch (op) {
      case BinOp::kLt: cmp = b_.CreateICmpSLT(l.v, r.v); break;
      case BinOp::kLe: cmp = b_.CreateICmpSLE(l.v, r.v); break;
      case BinOp::kGt: cmp = b_.CreateICmpSGT(l.v, r.v); break;
      case BinOp::kGe: cmp = b_.CreateICmpSGE(l.v, r.v); break;
      case BinOp::kEq: cmp = b_.CreateICmpEQ(l.v, r.v); break;
      default: cmp = b_.CreateICmpNE(l.v, r.v); break;
    }
  }
  return CgValue{TypeKind::kBool, cmp, nullptr, nul};
}

// ---------------------------------------------------------------------------
// Control-flow scaffolding
// ---------------------------------------------------------------------------

Status Codegen::EmitRangeLoop(llvm::Value* lo, llvm::Value* hi,
                              const std::function<Status(llvm::Value*)>& body) {
  llvm::Value* idx_ptr = EntryAlloca(b_.getInt64Ty(), nullptr, "idx");
  b_.CreateStore(lo, idx_ptr);
  auto* cond_bb = llvm::BasicBlock::Create(*llctx_, "loop.cond", fn_);
  auto* body_bb = llvm::BasicBlock::Create(*llctx_, "loop.body", fn_);
  auto* exit_bb = llvm::BasicBlock::Create(*llctx_, "loop.exit", fn_);
  b_.CreateBr(cond_bb);
  b_.SetInsertPoint(cond_bb);
  llvm::Value* idx = b_.CreateLoad(b_.getInt64Ty(), idx_ptr);
  b_.CreateCondBr(b_.CreateICmpULT(idx, hi), body_bb, exit_bb);
  b_.SetInsertPoint(body_bb);
  PROTEUS_RETURN_NOT_OK(body(idx));
  // Whatever block the body ended in continues to the increment.
  llvm::Value* next = b_.CreateAdd(b_.CreateLoad(b_.getInt64Ty(), idx_ptr), b_.getInt64(1));
  b_.CreateStore(next, idx_ptr);
  b_.CreateBr(cond_bb);
  b_.SetInsertPoint(exit_bb);
  return Status::OK();
}

Status Codegen::EmitFilter(const ExprPtr& pred, const Consume& consume) {
  if (!pred) return consume();
  PROTEUS_ASSIGN_OR_RETURN(CgValue c, EmitExpr(pred));
  auto* pass_bb = llvm::BasicBlock::Create(*llctx_, "sel.pass", fn_);
  auto* merge_bb = llvm::BasicBlock::Create(*llctx_, "sel.merge", fn_);
  b_.CreateCondBr(Truthy(c), pass_bb, merge_bb);
  b_.SetInsertPoint(pass_bb);
  PROTEUS_RETURN_NOT_OK(consume());
  b_.CreateBr(merge_bb);
  b_.SetInsertPoint(merge_bb);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

Status Codegen::EmitScan(const OpPtr& op, const Consume& consume) {
  const std::string& var = op->binding();
  const ScanSource& src = sources_.at(var);
  std::vector<FieldPath> fields = op->scan_fields();
  if (fields.empty()) {
    for (const auto& f : var_types_.at(var)->fields()) {
      if (f.type->is_primitive()) fields.push_back({f.name});
    }
  }
  // The driver leaf of a morsel pipeline scans only its (begin, end)
  // arguments' OID range; every other scan (build sides, legacy mode) runs
  // the whole relation, whose record count is a bound parameter — never an
  // immediate — so cached modules survive data growth between executions.
  llvm::Value* lo;
  llvm::Value* hi;
  if (morsel_mode_ && op.get() == driver_leaf_) {
    lo = begin_arg_;
    hi = end_arg_;
  } else {
    lo = b_.getInt64(0);
    hi = ParamI64(DataParam(jit::ParamKind::kNumRecords, src.dataset));
  }
  return EmitRangeLoop(lo, hi, [&](llvm::Value* oid) -> Status {
    oids_[var] = oid;
    for (const auto& p : fields) {
      auto lk = LeafKind(var, p);
      if (!lk.ok()) continue;  // collections (unnest paths) are read lazily
      TypeKind kind = *lk;
      CgValue cv;
      cv.kind = kind;
      switch (src.format) {
        case DataFormat::kBinaryColumn: {
          auto* plugin = static_cast<BinColPlugin*>(src.plugin);
          const BinColReader* r = plugin->reader();
          int ci = r->ColumnIndex(p[0]);
          if (ci < 0) return Status::Internal("jit: missing bincol column " + p[0]);
          auto col = static_cast<uint32_t>(ci);
          if (kind == TypeKind::kInt64) {
            llvm::Value* base =
                ParamI64(DataParam(jit::ParamKind::kBinColIntBase, src.dataset, col));
            cv.v = LoadAt(b_.getInt64Ty(),
                          b_.CreateAdd(base, b_.CreateMul(oid, b_.getInt64(8))));
          } else if (kind == TypeKind::kFloat64) {
            llvm::Value* base =
                ParamI64(DataParam(jit::ParamKind::kBinColFloatBase, src.dataset, col));
            cv.v = LoadAt(b_.getDoubleTy(),
                          b_.CreateAdd(base, b_.CreateMul(oid, b_.getInt64(8))));
          } else if (kind == TypeKind::kBool) {
            llvm::Value* base =
                ParamI64(DataParam(jit::ParamKind::kBinColBoolBase, src.dataset, col));
            llvm::Value* byte = LoadAt(b_.getInt8Ty(), b_.CreateAdd(base, oid));
            cv.v = b_.CreateICmpNE(byte, b_.getInt8(0));
          } else {  // string: offsets + data
            llvm::Value* offs =
                ParamI64(DataParam(jit::ParamKind::kBinColStrOffsets, src.dataset, col));
            llvm::Value* data =
                ParamI64(DataParam(jit::ParamKind::kBinColStrData, src.dataset, col));
            llvm::Value* o1 = LoadAt(b_.getInt64Ty(),
                                     b_.CreateAdd(offs, b_.CreateMul(oid, b_.getInt64(8))));
            llvm::Value* o2 = LoadAt(
                b_.getInt64Ty(),
                b_.CreateAdd(offs, b_.CreateMul(b_.CreateAdd(oid, b_.getInt64(1)),
                                                b_.getInt64(8))));
            cv.v = b_.CreateIntToPtr(b_.CreateAdd(data, o1), b_.getInt8PtrTy());
            cv.len = b_.CreateSub(o2, o1);
          }
          break;
        }
        case DataFormat::kBinaryRow: {
          auto* plugin = static_cast<BinRowPlugin*>(src.plugin);
          const BinRowReader* r = plugin->reader();
          int ci = r->ColumnIndex(p[0]);
          if (ci < 0) return Status::Internal("jit: missing binrow column " + p[0]);
          llvm::Value* base = ParamI64(DataParam(jit::ParamKind::kBinRowRowsBase, src.dataset));
          llvm::Value* addr = b_.CreateAdd(
              base, b_.CreateAdd(b_.CreateMul(oid, b_.getInt64(r->row_width())),
                                 b_.getInt64(8 * static_cast<uint64_t>(ci))));
          if (kind == TypeKind::kInt64) {
            cv.v = LoadAt(b_.getInt64Ty(), addr);
          } else if (kind == TypeKind::kFloat64) {
            cv.v = LoadAt(b_.getDoubleTy(), addr);
          } else if (kind == TypeKind::kBool) {
            cv.v = b_.CreateICmpNE(LoadAt(b_.getInt64Ty(), addr), b_.getInt64(0));
          } else {  // packed (u32 off, u32 len) into the heap
            llvm::Value* off = b_.CreateZExt(LoadAt(b_.getInt32Ty(), addr), b_.getInt64Ty());
            llvm::Value* len = b_.CreateZExt(
                LoadAt(b_.getInt32Ty(), b_.CreateAdd(addr, b_.getInt64(4))), b_.getInt64Ty());
            llvm::Value* heap =
                ParamI64(DataParam(jit::ParamKind::kBinRowHeapBase, src.dataset));
            cv.v = b_.CreateIntToPtr(b_.CreateAdd(heap, off), b_.getInt8PtrTy());
            cv.len = len;
          }
          break;
        }
        case DataFormat::kCSV: {
          auto* plugin = static_cast<CsvPlugin*>(src.plugin);
          int ci = plugin->ColumnIndex(p[0]);
          if (ci < 0) return Status::Internal("jit: missing csv column " + p[0]);
          llvm::Value* pp = ParamPtr(DataParam(jit::ParamKind::kPluginPtr, src.dataset));
          llvm::Value* col = b_.getInt32(static_cast<uint32_t>(ci));
          auto* i8p = b_.getInt8PtrTy();
          if (kind == TypeKind::kInt64) {
            cv.v = b_.CreateCall(Helper("proteus_csv_int", b_.getInt64Ty(),
                                        {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                 {pp, oid, col});
          } else if (kind == TypeKind::kFloat64) {
            cv.v = b_.CreateCall(Helper("proteus_csv_double", b_.getDoubleTy(),
                                        {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                 {pp, oid, col});
          } else if (kind == TypeKind::kBool) {
            llvm::Value* i = b_.CreateCall(Helper("proteus_csv_int", b_.getInt64Ty(),
                                                  {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                           {pp, oid, col});
            cv.v = b_.CreateICmpNE(i, b_.getInt64(0));
          } else {
            llvm::Value* len_ptr = EntryAlloca(b_.getInt64Ty());
            cv.v = b_.CreateCall(
                Helper("proteus_csv_str", i8p,
                       {i8p, b_.getInt64Ty(), b_.getInt32Ty(), b_.getInt64Ty()->getPointerTo()}),
                {pp, oid, col, len_ptr});
            cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
          }
          break;
        }
        case DataFormat::kJSON: {
          llvm::Value* pp = ParamPtr(DataParam(jit::ParamKind::kPluginPtr, src.dataset));
          llvm::Value* h = b_.getInt64(HashString(DottedPath(p)));
          auto* i8p = b_.getInt8PtrTy();
          const bool keyed = key_paths_.count(Key(var, p)) != 0;
          if (kind == TypeKind::kInt64 && keyed) {
            // Join-key int fields fuse presence + read into one structural
            // index lookup (absent = SQL null; null keys never match).
            llvm::Value* out_ptr = EntryAlloca(b_.getInt64Ty());
            llvm::Value* has = b_.CreateCall(
                Helper("proteus_json_int_opt", b_.getInt32Ty(),
                       {i8p, b_.getInt64Ty(), b_.getInt64Ty(),
                        b_.getInt64Ty()->getPointerTo()}),
                {pp, oid, h, out_ptr});
            cv.v = b_.CreateLoad(b_.getInt64Ty(), out_ptr);
            cv.null = b_.CreateICmpEQ(has, b_.getInt32(0));
          } else if (kind == TypeKind::kInt64) {
            cv.v = b_.CreateCall(Helper("proteus_json_int", b_.getInt64Ty(),
                                        {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                 {pp, oid, h});
          } else if (kind == TypeKind::kFloat64) {
            cv.v = b_.CreateCall(Helper("proteus_json_double", b_.getDoubleTy(),
                                        {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                 {pp, oid, h});
          } else if (kind == TypeKind::kBool) {
            llvm::Value* i = b_.CreateCall(Helper("proteus_json_bool", b_.getInt64Ty(),
                                                  {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                           {pp, oid, h});
            cv.v = b_.CreateICmpNE(i, b_.getInt64(0));
          } else {
            llvm::Value* len_ptr = EntryAlloca(b_.getInt64Ty());
            cv.v = b_.CreateCall(
                Helper("proteus_json_str", i8p,
                       {i8p, b_.getInt64Ty(), b_.getInt64Ty(), b_.getInt64Ty()->getPointerTo()}),
                {pp, oid, h, len_ptr});
            cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
          }
          if (keyed && cv.null == nullptr) {
            // Non-int join-key fields: absent JSON fields must behave as
            // SQL null (null keys never match), not as the reader's 0/""
            // default.
            cv.null = b_.CreateICmpEQ(
                b_.CreateCall(Helper("proteus_json_has", b_.getInt32Ty(),
                                     {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                              {pp, oid, h}),
                b_.getInt32(0));
          }
          break;
        }
        case DataFormat::kCacheBlock:
          return Status::Internal("jit: cache scans take the EmitCacheScan path");
      }
      bindings_[Key(var, p)] = cv;
    }
    return consume();
  });
}

Status Codegen::EmitCacheScan(const OpPtr& op, const Consume& consume) {
  const std::string& var = op->binding();
  const ScanSource& src = sources_.at(var);
  const CacheBlock* blk = src.cache.get();

  std::vector<FieldPath> fields = op->scan_fields();
  if (fields.empty()) {
    for (const auto& c : blk->cols) {
      if (c.path != FieldPath{"$oid"}) fields.push_back(c.path);
    }
  }
  const CacheColumn* oid_col = blk->Find(var, {"$oid"});

  llvm::Value* lo;
  llvm::Value* hi;
  if (morsel_mode_ && op.get() == driver_leaf_) {
    lo = begin_arg_;
    hi = end_arg_;
  } else {
    lo = b_.getInt64(0);
    hi = ParamI64(CacheParam(jit::ParamKind::kCacheNumRows, src.cache_id));
  }
  return EmitRangeLoop(lo, hi, [&](llvm::Value* row) -> Status {
        if (oid_col != nullptr) {
          // Expose the raw OID: the Unnest operator and hybrid string reads
          // address the original file through it.
          llvm::Value* oid_base = ParamI64(
              CacheParam(jit::ParamKind::kCacheColIntBase, src.cache_id, var, {"$oid"}));
          oids_[var] = LoadAt(b_.getInt64Ty(),
                              b_.CreateAdd(oid_base, b_.CreateMul(row, b_.getInt64(8))));
        }
        for (const auto& p : fields) {
          const CacheColumn* c = blk->Find(var, p);
          CgValue cv;
          if (c != nullptr && c->type != TypeKind::kString) {
            if (c->type == TypeKind::kFloat64) {
              llvm::Value* base = ParamI64(
                  CacheParam(jit::ParamKind::kCacheColFloatBase, src.cache_id, var, p));
              cv.kind = TypeKind::kFloat64;
              cv.v = LoadAt(b_.getDoubleTy(),
                            b_.CreateAdd(base, b_.CreateMul(row, b_.getInt64(8))));
            } else {
              llvm::Value* base = ParamI64(
                  CacheParam(jit::ParamKind::kCacheColIntBase, src.cache_id, var, p));
              llvm::Value* raw = LoadAt(b_.getInt64Ty(),
                                        b_.CreateAdd(base, b_.CreateMul(row, b_.getInt64(8))));
              if (c->type == TypeKind::kBool) {
                cv.kind = TypeKind::kBool;
                cv.v = b_.CreateICmpNE(raw, b_.getInt64(0));
              } else {
                cv.kind = TypeKind::kInt64;
                cv.v = raw;
              }
            }
          } else if (src.plugin != nullptr && oid_col != nullptr) {
            // Hybrid raw access by OID (e.g. uncached string field).
            auto lk = LeafKind(var, p);
            if (!lk.ok()) continue;  // collection field: unnest reads it lazily
            TypeKind kind = *lk;
            llvm::Value* oid_base = ParamI64(
                CacheParam(jit::ParamKind::kCacheColIntBase, src.cache_id, var, {"$oid"}));
            llvm::Value* oid = LoadAt(b_.getInt64Ty(),
                                      b_.CreateAdd(oid_base, b_.CreateMul(row, b_.getInt64(8))));
            llvm::Value* pp = ParamPtr(DataParam(jit::ParamKind::kPluginPtr, src.dataset));
            auto* i8p = b_.getInt8PtrTy();
            const DatasetInfo& info = src.plugin->info();
            if (info.format == DataFormat::kJSON) {
              llvm::Value* h = b_.getInt64(HashString(DottedPath(p)));
              if (kind == TypeKind::kString) {
                llvm::Value* len_ptr = EntryAlloca(b_.getInt64Ty());
                cv.kind = TypeKind::kString;
                cv.v = b_.CreateCall(Helper("proteus_json_str", i8p,
                                            {i8p, b_.getInt64Ty(), b_.getInt64Ty(),
                                             b_.getInt64Ty()->getPointerTo()}),
                                     {pp, oid, h, len_ptr});
                cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
              } else if (kind == TypeKind::kFloat64) {
                cv.kind = kind;
                cv.v = b_.CreateCall(Helper("proteus_json_double", b_.getDoubleTy(),
                                            {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                     {pp, oid, b_.getInt64(HashString(DottedPath(p)))});
              } else {
                cv.kind = TypeKind::kInt64;
                cv.v = b_.CreateCall(Helper("proteus_json_int", b_.getInt64Ty(),
                                            {i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                                     {pp, oid, h});
              }
            } else if (info.format == DataFormat::kCSV) {
              auto* csv = static_cast<CsvPlugin*>(src.plugin);
              int ci = csv->ColumnIndex(p[0]);
              if (ci < 0) return Status::Internal("jit: missing csv column " + p[0]);
              llvm::Value* col = b_.getInt32(static_cast<uint32_t>(ci));
              if (kind == TypeKind::kString) {
                llvm::Value* len_ptr = EntryAlloca(b_.getInt64Ty());
                cv.kind = TypeKind::kString;
                cv.v = b_.CreateCall(Helper("proteus_csv_str", i8p,
                                            {i8p, b_.getInt64Ty(), b_.getInt32Ty(),
                                             b_.getInt64Ty()->getPointerTo()}),
                                     {pp, oid, col, len_ptr});
                cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
              } else if (kind == TypeKind::kFloat64) {
                cv.kind = kind;
                cv.v = b_.CreateCall(Helper("proteus_csv_double", b_.getDoubleTy(),
                                            {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                     {pp, oid, col});
              } else {
                cv.kind = TypeKind::kInt64;
                cv.v = b_.CreateCall(Helper("proteus_csv_int", b_.getInt64Ty(),
                                            {i8p, b_.getInt64Ty(), b_.getInt32Ty()}),
                                     {pp, oid, col});
              }
            } else {
              return Status::Unimplemented("jit: hybrid cache read from binary source");
            }
          } else {
            return Status::Unimplemented("jit: cache miss for field " + Key(var, p));
          }
          bindings_[Key(var, p)] = cv;
        }
        return consume();
      });
}

// ---------------------------------------------------------------------------
// Unnest
// ---------------------------------------------------------------------------

Status Codegen::EmitUnnest(const OpPtr& op, const Consume& consume) {
  const FieldPath& p = op->unnest_path();
  const std::string& src_var = p[0];
  const std::string& elem_var = op->binding();
  uint32_t slot = unnest_ids_.at(op.get());

  return EmitProduce(op->child(0), [&]() -> Status {
    // The source may be a raw JSON scan or a cache scan over a JSON dataset
    // (the cached OID addresses the original file's structural index).
    auto src_it = sources_.find(src_var);
    if (src_it == sources_.end() || src_it->second.plugin == nullptr ||
        src_it->second.plugin->info().format != DataFormat::kJSON) {
      return Status::Unimplemented("jit: unnest source must be a JSON scan");
    }
    auto oid_it = oids_.find(src_var);
    if (oid_it == oids_.end()) return Status::Unimplemented("jit: unnest without OID");
    llvm::Value* pp = ParamPtr(DataParam(jit::ParamKind::kPluginPtr, src_it->second.dataset));
    llvm::Value* oid = oid_it->second;
    FieldPath rel(p.begin() + 1, p.end());
    llvm::Value* h = b_.getInt64(HashString(DottedPath(rel)));
    auto* i8p = b_.getInt8PtrTy();
    auto* voidty = b_.getVoidTy();
    llvm::Value* slot_v = b_.getInt32(slot);

    b_.CreateCall(Helper("proteus_unnest_init", voidty,
                         {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty(), b_.getInt64Ty()}),
                  {CtxPtr(), slot_v, pp, oid, h});

    // Element paths read above this op, with their primitive kinds (shared
    // by the loop body and the outer null-element branch).
    TypePtr elem_t = var_types_.at(elem_var);
    auto needed_it = needed_.find(elem_var);
    std::vector<FieldPath> paths =
        needed_it == needed_.end() ? std::vector<FieldPath>{} : needed_it->second;
    std::vector<TypeKind> path_kinds;
    for (const auto& ep : paths) {
      if (ep.size() > 1) return Status::Unimplemented("jit: deep path inside array element");
      if (ep.empty()) {
        if (!elem_t->is_primitive()) {
          return Status::Unimplemented("jit: whole-record element use");
        }
        path_kinds.push_back(elem_t->kind() == TypeKind::kDate ? TypeKind::kInt64
                                                               : elem_t->kind());
      } else {
        PROTEUS_ASSIGN_OR_RETURN(TypeKind k, LeafKind(elem_var, ep));
        path_kinds.push_back(k);
      }
    }

    auto* cond_bb = llvm::BasicBlock::Create(*llctx_, "unnest.cond", fn_);
    auto* body_bb = llvm::BasicBlock::Create(*llctx_, "unnest.body", fn_);
    auto* exit_bb = llvm::BasicBlock::Create(*llctx_, "unnest.exit", fn_);

    if (op->outer()) {
      // Empty (or absent) collection: emit the outer row once with a null
      // element, bypassing the unnest predicate — the interpreter's
      // pending-outer-emit rule.
      auto* none_bb = llvm::BasicBlock::Create(*llctx_, "unnest.none", fn_);
      auto* enter_bb = llvm::BasicBlock::Create(*llctx_, "unnest.enter", fn_);
      llvm::Value* has0 = b_.CreateCall(
          Helper("proteus_unnest_has_next", b_.getInt32Ty(), {i8p, b_.getInt32Ty()}),
          {CtxPtr(), slot_v});
      b_.CreateCondBr(b_.CreateICmpNE(has0, b_.getInt32(0)), enter_bb, none_bb);
      b_.SetInsertPoint(none_bb);
      for (size_t i = 0; i < paths.size(); ++i) {
        bindings_[Key(elem_var, paths[i])] = NullValue(path_kinds[i]);
      }
      PROTEUS_RETURN_NOT_OK(consume());
      b_.CreateBr(exit_bb);
      b_.SetInsertPoint(enter_bb);
    }

    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(cond_bb);
    llvm::Value* has =
        b_.CreateCall(Helper("proteus_unnest_has_next", b_.getInt32Ty(), {i8p, b_.getInt32Ty()}),
                      {CtxPtr(), slot_v});
    b_.CreateCondBr(b_.CreateICmpNE(has, b_.getInt32(0)), body_bb, exit_bb);
    b_.SetInsertPoint(body_bb);

    // Bind the element fields used above.
    for (size_t pi = 0; pi < paths.size(); ++pi) {
      const FieldPath& ep = paths[pi];
      CgValue cv;
      TypeKind kind = path_kinds[pi];
      llvm::Value* name;
      llvm::Value* name_len;
      if (ep.empty()) {
        name = GlobalString("");
        name_len = b_.getInt64(0);
      } else {
        name = GlobalString(ep[0]);
        name_len = b_.getInt64(static_cast<int64_t>(ep[0].size()));
      }
      cv.kind = kind;
      if (kind == TypeKind::kInt64) {
        cv.v = b_.CreateCall(Helper("proteus_unnest_elem_int", b_.getInt64Ty(),
                                    {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                             {CtxPtr(), slot_v, name, name_len});
      } else if (kind == TypeKind::kFloat64) {
        cv.v = b_.CreateCall(Helper("proteus_unnest_elem_double", b_.getDoubleTy(),
                                    {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                             {CtxPtr(), slot_v, name, name_len});
      } else if (kind == TypeKind::kBool) {
        llvm::Value* i = b_.CreateCall(Helper("proteus_unnest_elem_int", b_.getInt64Ty(),
                                              {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                                       {CtxPtr(), slot_v, name, name_len});
        cv.v = b_.CreateICmpNE(i, b_.getInt64(0));
      } else {
        llvm::Value* len_ptr = EntryAlloca(b_.getInt64Ty());
        cv.v = b_.CreateCall(Helper("proteus_unnest_elem_str", i8p,
                                    {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty(),
                                     b_.getInt64Ty()->getPointerTo()}),
                             {CtxPtr(), slot_v, name, name_len, len_ptr});
        cv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
      }
      bindings_[Key(elem_var, ep)] = cv;
    }

    PROTEUS_RETURN_NOT_OK(EmitFilter(op->pred(), consume));

    b_.CreateCall(Helper("proteus_unnest_advance", voidty, {i8p, b_.getInt32Ty()}),
                  {CtxPtr(), slot_v});
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(exit_bb);
    return Status::OK();
  });
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

Status Codegen::EmitJoin(const OpPtr& op, const Consume& consume) {
  PROTEUS_RETURN_NOT_OK(EmitJoinBuild(*op));
  return EmitJoinProbe(*op, consume);
}

Status Codegen::EmitJoinBuild(const Operator& op) {
  // Determine the build-side payload: all needed paths of build-side vars.
  std::vector<std::string> build_vars;
  CollectBoundVars(op.child(0), &build_vars);
  // Vars whose bindings can carry a SQL-null flag at build time: outer
  // unnest elements, and JSON join-key reads (has-checked). The predicate is
  // static per (var, path), so nested joins inside the build subtree predict
  // their rebinds' nullability consistently.
  std::unordered_set<std::string> outer_unnest_vars;
  {
    std::function<void(const OpPtr&)> walk = [&](const OpPtr& o) {
      if (o->kind() == OpKind::kUnnest && o->outer()) outer_unnest_vars.insert(o->binding());
      for (const auto& c : o->children()) walk(c);
    };
    walk(op.child(0));
  }
  auto field_nullable = [&](const std::string& var, const FieldPath& path) {
    if (outer_unnest_vars.count(var) != 0) return true;
    auto it = sources_.find(var);
    return it != sources_.end() && it->second.format == DataFormat::kJSON &&
           key_paths_.count(Key(var, path)) != 0;
  };
  std::vector<PayloadField> payload;
  uint32_t slots = 0;
  int null_bits = 0;
  for (const auto& var : build_vars) {
    auto it = needed_.find(var);
    if (it == needed_.end()) continue;
    // Dedup paths.
    std::vector<FieldPath> uniq = it->second;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const auto& path : uniq) {
      if (path.empty()) return Status::Unimplemented("jit: whole-record join payload");
      PROTEUS_ASSIGN_OR_RETURN(TypeKind kind, LeafKind(var, path));
      payload.push_back({var, path, kind, slots});
      if (field_nullable(var, path)) payload.back().null_bit = null_bits++;
      slots += (kind == TypeKind::kString) ? 2 : 1;
    }
  }
  if (null_bits > 64) return Status::Unimplemented("jit: > 64 nullable join payload fields");
  // Nullable fields round-trip their null flag through one extra mask slot,
  // so a drained (or probed) row rebinds SQL nulls exactly where the
  // interpreter's boxed row holds them.
  int null_slot = -1;
  if (null_bits > 0) null_slot = static_cast<int>(slots++);
  if (slots == 0) slots = 1;  // keep payload pointers distinguishable from null
  // The optimizer's strategy annotation picks the table's bucket layout
  // (shared vs radix-partitioned); the flag is baked into the module's
  // RuntimeLayout, which is why the strategy is part of the cache key.
  uint32_t table =
      layout_->AddJoin(slots, op.join_strategy() == JoinStrategy::kPartitioned);
  join_ids_[&op] = table;
  join_payloads_[&op] = payload;
  join_null_slots_[&op] = null_slot;
  auto* i8p = b_.getInt8PtrTy();
  auto* i64p = b_.getInt64Ty()->getPointerTo();
  llvm::Value* table_v = b_.getInt32(table);

  llvm::Value* pay_buf = EntryAlloca(b_.getInt64Ty(), b_.getInt32(slots), "payload");
  PROTEUS_RETURN_NOT_OK(EmitProduce(op.child(0), [&]() -> Status {
    CgValue key;
    if (op.left_key() != nullptr) {
      PROTEUS_ASSIGN_OR_RETURN(key, EmitExpr(op.left_key()));
      if (key.kind == TypeKind::kFloat64 || key.kind == TypeKind::kString) {
        return Status::Unimplemented("jit: non-integer join key");
      }
    }
    // Payload slots hold the raw 8-byte values; nullable fields fold their
    // null flag into the trailing mask slot so rebinds restore it.
    llvm::Value* mask = null_slot >= 0 ? b_.getInt64(0) : nullptr;
    for (const auto& f : payload) {
      const CgValue& cv = bindings_.at(Key(f.var, f.path));
      if (cv.null != nullptr && f.null_bit < 0) {
        return Status::Internal("jit: unpredicted nullable join payload field " +
                                Key(f.var, f.path));
      }
      if (f.null_bit >= 0 && cv.null != nullptr) {
        mask = b_.CreateOr(
            mask, b_.CreateShl(b_.CreateZExt(cv.null, b_.getInt64Ty()),
                               b_.getInt64(static_cast<uint64_t>(f.null_bit))));
      }
      llvm::Value* slot_ptr = b_.CreateGEP(b_.getInt64Ty(), pay_buf, b_.getInt32(f.slot));
      if (f.kind == TypeKind::kFloat64) {
        b_.CreateStore(b_.CreateBitCast(cv.v, b_.getInt64Ty()), slot_ptr);
      } else if (f.kind == TypeKind::kString) {
        b_.CreateStore(b_.CreatePtrToInt(cv.v, b_.getInt64Ty()), slot_ptr);
        llvm::Value* slot2 = b_.CreateGEP(b_.getInt64Ty(), pay_buf, b_.getInt32(f.slot + 1));
        b_.CreateStore(cv.len, slot2);
      } else if (f.kind == TypeKind::kBool) {
        b_.CreateStore(b_.CreateZExt(cv.v, b_.getInt64Ty()), slot_ptr);
      } else {
        b_.CreateStore(cv.v, slot_ptr);
      }
    }
    if (null_slot >= 0) {
      b_.CreateStore(mask, b_.CreateGEP(b_.getInt64Ty(), pay_buf, b_.getInt32(null_slot)));
    }
    if (op.left_key() == nullptr) {
      // Non-equi join: no key, no radix entries. Every build row lands in
      // the frozen payload vector (the insert_null path keeps payload
      // without a hash entry); the probe side enumerates all of them — the
      // interpreter's nested loop — applying op.pred() per pair.
      b_.CreateCall(Helper("proteus_join_insert_null", b_.getVoidTy(),
                           {i8p, b_.getInt32Ty(), i64p}),
                    {CtxPtr(), table_v, pay_buf});
      return Status::OK();
    }
    auto insert = [&]() {
      b_.CreateCall(Helper("proteus_join_insert", b_.getVoidTy(),
                           {i8p, b_.getInt32Ty(), b_.getInt64Ty(), i64p}),
                    {CtxPtr(), table_v, key.v, pay_buf});
    };
    if (key.null == nullptr) {
      insert();
      return Status::OK();
    }
    // Null build keys never enter the radix table (they can't match). An
    // outer join still keeps the row so the unmatched drain emits it — the
    // interpreter's exact rule at its build phase.
    auto* ins_bb = llvm::BasicBlock::Create(*llctx_, "build.ins", fn_);
    auto* nullk_bb = llvm::BasicBlock::Create(*llctx_, "build.nullkey", fn_);
    auto* merge_bb = llvm::BasicBlock::Create(*llctx_, "build.merge", fn_);
    b_.CreateCondBr(key.null, nullk_bb, ins_bb);
    b_.SetInsertPoint(ins_bb);
    insert();
    b_.CreateBr(merge_bb);
    b_.SetInsertPoint(nullk_bb);
    if (op.outer()) {
      b_.CreateCall(Helper("proteus_join_insert_null", b_.getVoidTy(),
                           {i8p, b_.getInt32Ty(), i64p}),
                    {CtxPtr(), table_v, pay_buf});
    }
    b_.CreateBr(merge_bb);
    b_.SetInsertPoint(merge_bb);
    return Status::OK();
  }));

  if (op.left_key() != nullptr) {
    b_.CreateCall(Helper("proteus_join_build", b_.getVoidTy(), {i8p, b_.getInt32Ty()}),
                  {CtxPtr(), table_v});
  }
  return Status::OK();
}

void Codegen::RebindPayload(const Operator& op, llvm::Value* row_ptr) {
  const std::vector<PayloadField>& payload = join_payloads_.at(&op);
  const int null_slot = join_null_slots_.at(&op);
  auto* i8p = b_.getInt8PtrTy();
  llvm::Value* mask = nullptr;
  if (null_slot >= 0) {
    mask = b_.CreateLoad(b_.getInt64Ty(),
                         b_.CreateGEP(b_.getInt64Ty(), row_ptr, b_.getInt32(null_slot)));
  }
  for (const auto& f : payload) {
    CgValue cv;
    cv.kind = f.kind;
    llvm::Value* slot_ptr = b_.CreateGEP(b_.getInt64Ty(), row_ptr, b_.getInt32(f.slot));
    llvm::Value* raw = b_.CreateLoad(b_.getInt64Ty(), slot_ptr);
    if (f.kind == TypeKind::kFloat64) {
      cv.v = b_.CreateBitCast(raw, b_.getDoubleTy());
    } else if (f.kind == TypeKind::kString) {
      cv.v = b_.CreateIntToPtr(raw, i8p);
      llvm::Value* slot2 = b_.CreateGEP(b_.getInt64Ty(), row_ptr, b_.getInt32(f.slot + 1));
      cv.len = b_.CreateLoad(b_.getInt64Ty(), slot2);
    } else if (f.kind == TypeKind::kBool) {
      cv.v = b_.CreateICmpNE(raw, b_.getInt64(0));
    } else {
      cv.v = raw;
    }
    if (f.null_bit >= 0) {
      cv.null = b_.CreateICmpNE(
          b_.CreateAnd(b_.CreateLShr(mask, b_.getInt64(static_cast<uint64_t>(f.null_bit))),
                       b_.getInt64(1)),
          b_.getInt64(0));
    }
    bindings_[Key(f.var, f.path)] = cv;
  }
}

Status Codegen::EmitJoinProbe(const Operator& op, const Consume& consume) {
  if (&op == drain_join_) return EmitJoinDrain(op, consume);
  uint32_t table = join_ids_.at(&op);
  auto* i8p = b_.getInt8PtrTy();
  auto* i64p = b_.getInt64Ty()->getPointerTo();
  llvm::Value* table_v = b_.getInt32(table);

  return EmitProduce(op.child(1), [&]() -> Status {
    if (op.left_key() == nullptr) {
      // Non-equi join: nested loop over the frozen build rows, in build
      // order — exactly the interpreter's FindJoinMatches without a key
      // (matches = 0..n-1), with the full join predicate as the filter.
      llvm::Value* n = b_.CreateCall(
          Helper("proteus_join_rows", b_.getInt64Ty(), {i8p, b_.getInt32Ty()}),
          {CtxPtr(), table_v});
      return EmitCountedLoop(n, [&](llvm::Value* row) -> Status {
        llvm::Value* row_ptr = b_.CreateCall(
            Helper("proteus_join_payload_at", i64p, {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
            {CtxPtr(), table_v, row});
        RebindPayload(op, row_ptr);
        return EmitFilter(op.pred(), [&]() -> Status {
          if (op.outer()) {
            b_.CreateCall(Helper("proteus_sink_join_matched", b_.getVoidTy(),
                                 {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                          {SinkPtr(), table_v, row});
          }
          return consume();
        });
      });
    }
    PROTEUS_ASSIGN_OR_RETURN(CgValue key, EmitExpr(op.right_key()));
    llvm::Value* match_ptr = EntryAlloca(i64p, nullptr, "match");
    auto probe_first = [&]() {
      return b_.CreateCall(
          Helper("proteus_join_probe_first", i64p, {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
          {CtxPtr(), table_v, key.v});
    };
    if (key.null == nullptr) {
      b_.CreateStore(probe_first(), match_ptr);
    } else {
      // Null probe keys match nothing (interpreter: FindJoinMatches returns
      // the empty set) — skip the probe call entirely.
      b_.CreateStore(llvm::ConstantPointerNull::get(i64p), match_ptr);
      auto* probe_bb = llvm::BasicBlock::Create(*llctx_, "probe.key", fn_);
      auto* start_bb = llvm::BasicBlock::Create(*llctx_, "probe.start", fn_);
      b_.CreateCondBr(key.null, start_bb, probe_bb);
      b_.SetInsertPoint(probe_bb);
      b_.CreateStore(probe_first(), match_ptr);
      b_.CreateBr(start_bb);
      b_.SetInsertPoint(start_bb);
    }
    auto* cond_bb = llvm::BasicBlock::Create(*llctx_, "probe.cond", fn_);
    auto* body_bb = llvm::BasicBlock::Create(*llctx_, "probe.body", fn_);
    auto* exit_bb = llvm::BasicBlock::Create(*llctx_, "probe.exit", fn_);
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(cond_bb);
    llvm::Value* cur = b_.CreateLoad(i64p, match_ptr);
    b_.CreateCondBr(b_.CreateIsNotNull(cur), body_bb, exit_bb);
    b_.SetInsertPoint(body_bb);

    RebindPayload(op, cur);

    // Residual predicate (the equi-conjunct re-evaluates to true); outer
    // joins then record the matched build row in this partial's bitmap —
    // after the predicate, before downstream ops, like the interpreter.
    PROTEUS_RETURN_NOT_OK(EmitFilter(op.pred(), [&]() -> Status {
      if (op.outer()) {
        llvm::Value* row = b_.CreateCall(
            Helper("proteus_join_probe_row", b_.getInt64Ty(), {i8p, b_.getInt32Ty()}),
            {CtxPtr(), table_v});
        b_.CreateCall(Helper("proteus_sink_join_matched", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                      {SinkPtr(), table_v, row});
      }
      return consume();
    }));

    llvm::Value* next =
        b_.CreateCall(Helper("proteus_join_probe_next", i64p, {i8p, b_.getInt32Ty()}),
                      {CtxPtr(), table_v});
    b_.CreateStore(next, match_ptr);
    b_.CreateBr(cond_bb);
    b_.SetInsertPoint(exit_bb);
    return Status::OK();
  });
}

Status Codegen::EmitJoinDrain(const Operator& op, const Consume& consume) {
  uint32_t table = join_ids_.at(&op);
  auto* i8p = b_.getInt8PtrTy();
  auto* i64p = b_.getInt64Ty()->getPointerTo();
  llvm::Value* table_v = b_.getInt32(table);

  llvm::Value* n = b_.CreateCall(
      Helper("proteus_join_rows", b_.getInt64Ty(), {i8p, b_.getInt32Ty()}),
      {CtxPtr(), table_v});
  return EmitCountedLoop(n, [&](llvm::Value* row) -> Status {
    llvm::Value* byte = b_.CreateLoad(
        b_.getInt8Ty(), b_.CreateGEP(b_.getInt8Ty(), drain_matched_arg_, row));
    auto* unmatched_bb = llvm::BasicBlock::Create(*llctx_, "drain.row", fn_);
    auto* merge_bb = llvm::BasicBlock::Create(*llctx_, "drain.merge", fn_);
    b_.CreateCondBr(b_.CreateICmpEQ(byte, b_.getInt8(0)), unmatched_bb, merge_bb);
    b_.SetInsertPoint(unmatched_bb);

    llvm::Value* row_ptr = b_.CreateCall(
        Helper("proteus_join_payload_at", i64p, {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
        {CtxPtr(), table_v, row});
    RebindPayload(op, row_ptr);

    // The probe side is absent: bind every field the plan reads from it to
    // SQL null (the interpreter nulls the probe-side vars of drained rows).
    std::vector<std::string> right_vars;
    CollectBoundVars(op.child(1), &right_vars);
    for (const auto& var : right_vars) {
      auto it = needed_.find(var);
      if (it == needed_.end()) continue;
      for (const auto& path : it->second) {
        auto lk = LeafKind(var, path);
        if (!lk.ok()) continue;  // collection paths: ops needing them bail elsewhere
        bindings_[Key(var, path)] = NullValue(*lk);
      }
    }

    // Drained rows bypass the join predicate (they matched nothing), but
    // every op above the join still applies — `consume` is that chain.
    PROTEUS_RETURN_NOT_OK(consume());
    b_.CreateBr(merge_bb);
    b_.SetInsertPoint(merge_bb);
    return Status::OK();
  });
}

// ---------------------------------------------------------------------------
// Nest
// ---------------------------------------------------------------------------

Status Codegen::EmitNest(const OpPtr& op, const Consume& consume) {
  // Agg slot layout + init values.
  TypeEnv env;  // key/agg expr types were annotated by the optimizer
  std::vector<TypeKind> slot_kinds;
  std::vector<int64_t> init;
  for (const auto& o : op->outputs()) {
    TypeKind k = TypeKind::kInt64;
    if (o.monoid != Monoid::kCount) {
      if (!o.expr->type()) return Status::Internal("jit: un-typechecked nest output");
      k = o.expr->type()->kind() == TypeKind::kFloat64 ? TypeKind::kFloat64 : TypeKind::kInt64;
    }
    slot_kinds.push_back(k);
    int64_t zero = 0;
    if (o.monoid == Monoid::kMax) {
      if (k == TypeKind::kFloat64) {
        double d = -std::numeric_limits<double>::infinity();
        std::memcpy(&zero, &d, 8);
      } else {
        zero = std::numeric_limits<int64_t>::min();
      }
    } else if (o.monoid == Monoid::kMin) {
      if (k == TypeKind::kFloat64) {
        double d = std::numeric_limits<double>::infinity();
        std::memcpy(&zero, &d, 8);
      } else {
        zero = std::numeric_limits<int64_t>::max();
      }
    }
    init.push_back(zero);
  }

  if (!op->group_by()->type()) return Status::Internal("jit: un-typechecked group key");
  TypeKind key_kind = op->group_by()->type()->kind();
  bool string_keys = key_kind == TypeKind::kString;
  // Float keys round-trip through the int64 key slot as their raw bit
  // pattern — grouping on bit equality, which the emission loop bitcasts
  // back to a double binding.
  bool float_keys = key_kind == TypeKind::kFloat64;
  uint32_t table = layout_->AddGroup(string_keys, init);
  auto* i8p = b_.getInt8PtrTy();
  auto* i64p = b_.getInt64Ty()->getPointerTo();
  llvm::Value* table_v = b_.getInt32(table);

  // ---- aggregation pipeline ----
  PROTEUS_RETURN_NOT_OK(EmitProduce(op->child(0), [&]() -> Status {
    Consume update = [&]() -> Status {
      PROTEUS_ASSIGN_OR_RETURN(CgValue key, EmitExpr(op->group_by()));
      if (key.null != nullptr) {
        // The packed int64/string group table cannot represent a null key;
        // only morsel-mode nests (boxed-Value group tables) can.
        return Status::Unimplemented("jit: nullable group key outside morsel pipelines");
      }
      llvm::Value* slots;
      if (string_keys) {
        slots = b_.CreateCall(Helper("proteus_group_upsert_str", i64p,
                                     {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                              {CtxPtr(), table_v, key.v, key.len});
      } else {
        llvm::Value* k64;
        if (key.kind == TypeKind::kBool) {
          k64 = b_.CreateZExt(key.v, b_.getInt64Ty());
        } else if (key.kind == TypeKind::kFloat64) {
          k64 = b_.CreateBitCast(key.v, b_.getInt64Ty());
        } else {
          k64 = key.v;
        }
        slots = b_.CreateCall(Helper("proteus_group_upsert", i64p,
                                     {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                              {CtxPtr(), table_v, k64});
      }
      for (size_t i = 0; i < op->outputs().size(); ++i) {
        const AggOutput& o = op->outputs()[i];
        llvm::Value* slot_ptr = b_.CreateGEP(b_.getInt64Ty(), slots, b_.getInt32((uint32_t)i));
        llvm::Value* raw = b_.CreateLoad(b_.getInt64Ty(), slot_ptr);
        llvm::Value* updated;
        if (o.monoid == Monoid::kCount) {
          updated = b_.CreateAdd(raw, b_.getInt64(1));
        } else {
          PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(o.expr));
          if (slot_kinds[i] == TypeKind::kFloat64) {
            llvm::Value* acc = b_.CreateBitCast(raw, b_.getDoubleTy());
            llvm::Value* x = ToDouble(v);
            llvm::Value* res;
            if (o.monoid == Monoid::kSum) {
              res = b_.CreateFAdd(acc, x);
            } else if (o.monoid == Monoid::kMax) {
              res = b_.CreateSelect(b_.CreateFCmpOGT(x, acc), x, acc);
            } else {
              res = b_.CreateSelect(b_.CreateFCmpOLT(x, acc), x, acc);
            }
            updated = b_.CreateBitCast(res, b_.getInt64Ty());
          } else {
            llvm::Value* x = v.kind == TypeKind::kBool ? b_.CreateZExt(v.v, b_.getInt64Ty())
                                                       : v.v;
            if (o.monoid == Monoid::kSum) {
              updated = b_.CreateAdd(raw, x);
            } else if (o.monoid == Monoid::kMax) {
              updated = b_.CreateSelect(b_.CreateICmpSGT(x, raw), x, raw);
            } else {
              updated = b_.CreateSelect(b_.CreateICmpSLT(x, raw), x, raw);
            }
          }
          if (v.null != nullptr) {
            // Null inputs do not contribute to aggregates (Eval semantics).
            updated = b_.CreateSelect(v.null, raw, updated);
          }
        }
        b_.CreateStore(updated, slot_ptr);
      }
      return Status::OK();
    };
    return EmitFilter(op->pred(), update);
  }));

  // ---- group emission pipeline ----
  llvm::Value* count = b_.CreateCall(
      Helper("proteus_group_count", b_.getInt64Ty(), {i8p, b_.getInt32Ty()}),
      {CtxPtr(), table_v});
  std::string gvar = op->binding().empty() ? "$group" : op->binding();
  return EmitCountedLoop(count, [&](llvm::Value* g) -> Status {
    CgValue keyv;
    if (string_keys) {
      llvm::Value* len_ptr = EntryAlloca(b_.getInt64Ty());
      keyv.kind = TypeKind::kString;
      keyv.v = b_.CreateCall(Helper("proteus_group_key_str", i8p,
                                    {i8p, b_.getInt32Ty(), b_.getInt64Ty(),
                                     b_.getInt64Ty()->getPointerTo()}),
                             {CtxPtr(), table_v, g, len_ptr});
      keyv.len = b_.CreateLoad(b_.getInt64Ty(), len_ptr);
    } else {
      llvm::Value* raw = b_.CreateCall(Helper("proteus_group_key", b_.getInt64Ty(),
                                              {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                                       {CtxPtr(), table_v, g});
      if (key_kind == TypeKind::kBool) {
        keyv.kind = TypeKind::kBool;
        keyv.v = b_.CreateICmpNE(raw, b_.getInt64(0));
      } else if (float_keys) {
        keyv.kind = TypeKind::kFloat64;
        keyv.v = b_.CreateBitCast(raw, b_.getDoubleTy());
      } else {
        keyv.kind = TypeKind::kInt64;
        keyv.v = raw;
      }
    }
    bindings_[Key(gvar, {op->group_name()})] = keyv;

    llvm::Value* slots = b_.CreateCall(
        Helper("proteus_group_slots", i64p, {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
        {CtxPtr(), table_v, g});
    for (size_t i = 0; i < op->outputs().size(); ++i) {
      const AggOutput& o = op->outputs()[i];
      llvm::Value* raw = b_.CreateLoad(
          b_.getInt64Ty(), b_.CreateGEP(b_.getInt64Ty(), slots, b_.getInt32((uint32_t)i)));
      CgValue cv;
      if (slot_kinds[i] == TypeKind::kFloat64) {
        cv.kind = TypeKind::kFloat64;
        cv.v = b_.CreateBitCast(raw, b_.getDoubleTy());
      } else {
        cv.kind = TypeKind::kInt64;
        cv.v = raw;
      }
      bindings_[Key(gvar, {o.name})] = cv;
    }
    return consume();
  });
}

// ---------------------------------------------------------------------------
// Dispatch + root
// ---------------------------------------------------------------------------

Status Codegen::EmitProduce(const OpPtr& op, const Consume& consume) {
  switch (op->kind()) {
    case OpKind::kScan:
      return EmitScan(op, consume);
    case OpKind::kCacheScan:
      return EmitCacheScan(op, consume);
    case OpKind::kSelect:
      return EmitProduce(op->child(0), [&]() { return EmitFilter(op->pred(), consume); });
    case OpKind::kUnnest:
      return EmitUnnest(op, consume);
    case OpKind::kJoin:
      // Chain joins of a morsel pipeline built their tables once in
      // proteus_build; the pipeline function only probes them.
      if (morsel_mode_ && chain_joins_.count(op.get()) != 0) {
        return EmitJoinProbe(*op, consume);
      }
      return EmitJoin(op, consume);
    case OpKind::kNest:
      return EmitNest(op, consume);
    case OpKind::kReduce:
      return Status::Internal("jit: nested Reduce");
  }
  return Status::Internal("jit: unknown operator");
}

Status Codegen::EmitRoot(const OpPtr& reduce) {
  return EmitReduceRoot(reduce, /*to_sink=*/false);
}

/// Dispatches the Reduce root to its bag or scalar emitter — the one home of
/// the collection-root eligibility rule, shared by both codegen modes.
Status Codegen::EmitReduceRoot(const OpPtr& reduce, bool to_sink) {
  const auto& outputs = reduce->outputs();
  bool is_bag = outputs.size() == 1 && IsCollectionMonoid(outputs[0].monoid);
  // Set roots ride the collection emitter: per-morsel sinks feed a kSet
  // Aggregator whose hash-indexed InsertSetItem dedups within the morsel,
  // and FinalizePlanPartials merges the partials in global morsel order —
  // the interpreter's exact fold, so first-appearance row order matches it
  // cell for cell. Legacy whole-relation mode dedups through
  // proteus_result_end_row_set instead.
  if (is_bag) return EmitBagReduce(reduce, to_sink);
  return EmitScalarReduce(reduce, to_sink);
}

/// Collection-monoid root. `to_sink` picks the destination of emitted rows:
/// the per-morsel JitMorselSink (morsel pipelines) or the runtime's result
/// builder (legacy single call) — same cell values either way.
Status Codegen::EmitBagReduce(const OpPtr& reduce, bool to_sink) {
  const auto& outputs = reduce->outputs();
  auto* i8p = b_.getInt8PtrTy();
  const ExprPtr& head = outputs[0].expr;
  std::vector<ExprPtr> cols;
  if (head->kind() == ExprKind::kRecordCons) {
    result_columns_ = head->record_names();
    row_records_ = true;
    cols = head->children();
  } else {
    result_columns_ = {outputs[0].name};
    cols = {head};
  }
  llvm::Value* dst = to_sink ? SinkPtr() : CtxPtr();
  const bool set_root = outputs[0].monoid == Monoid::kSet;
  const char* f_int = to_sink ? "proteus_sink_emit_int" : "proteus_result_emit_int";
  const char* f_double = to_sink ? "proteus_sink_emit_double" : "proteus_result_emit_double";
  const char* f_bool = to_sink ? "proteus_sink_emit_bool" : "proteus_result_emit_bool";
  const char* f_str = to_sink ? "proteus_sink_emit_str" : "proteus_result_emit_str";
  const char* f_null = to_sink ? "proteus_sink_emit_null" : "proteus_result_emit_null";
  // Sink mode needs no set-specific end: the morsel's kSet Aggregator dedups
  // on Add. The legacy path dedups the boxed row at end-of-row instead.
  const char* f_end = to_sink ? "proteus_sink_emit_end"
                     : set_root ? "proteus_result_end_row_set"
                                : "proteus_result_end_row";
  auto emit_row = [&]() -> Status {
    for (const auto& c : cols) {
      PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(c));
      llvm::BasicBlock* merge_bb = nullptr;
      if (v.null != nullptr) {
        // Null cells (outer-join drain / outer-unnest rows) box as
        // Value::Null, the cell the interpreter emits for them.
        auto* typed_bb = llvm::BasicBlock::Create(*llctx_, "emit.typed", fn_);
        auto* null_bb = llvm::BasicBlock::Create(*llctx_, "emit.null", fn_);
        merge_bb = llvm::BasicBlock::Create(*llctx_, "emit.merge", fn_);
        b_.CreateCondBr(v.null, null_bb, typed_bb);
        b_.SetInsertPoint(null_bb);
        b_.CreateCall(Helper(f_null, b_.getVoidTy(), {i8p}), {dst});
        b_.CreateBr(merge_bb);
        b_.SetInsertPoint(typed_bb);
      }
      if (v.kind == TypeKind::kInt64) {
        b_.CreateCall(Helper(f_int, b_.getVoidTy(), {i8p, b_.getInt64Ty()}), {dst, v.v});
      } else if (v.kind == TypeKind::kFloat64) {
        b_.CreateCall(Helper(f_double, b_.getVoidTy(), {i8p, b_.getDoubleTy()}), {dst, v.v});
      } else if (v.kind == TypeKind::kBool) {
        b_.CreateCall(Helper(f_bool, b_.getVoidTy(), {i8p, b_.getInt32Ty()}),
                      {dst, b_.CreateZExt(v.v, b_.getInt32Ty())});
      } else {
        b_.CreateCall(Helper(f_str, b_.getVoidTy(), {i8p, i8p, b_.getInt64Ty()}),
                      {dst, v.v, v.len});
      }
      if (merge_bb != nullptr) {
        b_.CreateBr(merge_bb);
        b_.SetInsertPoint(merge_bb);
      }
    }
    b_.CreateCall(Helper(f_end, b_.getVoidTy(), {i8p}), {dst});
    return Status::OK();
  };
  return EmitProduce(reduce->child(0),
                     [&]() { return EmitFilter(reduce->pred(), emit_row); });
}

/// Scalar-aggregate root. Accumulators live in allocas (promoted to
/// registers); the per-tuple fold is identical in both modes. `to_sink`
/// changes only what happens after the loop: the legacy path emits the one
/// result row, the morsel path flushes each register into this morsel's
/// Aggregator partial (with the contributing row count, so empty morsels
/// leave their partial in the same empty state an interpreter partial has).
Status Codegen::EmitScalarReduce(const OpPtr& reduce, bool to_sink) {
  const auto& outputs = reduce->outputs();
  auto* i8p = b_.getInt8PtrTy();
  struct Acc {
    llvm::Value* ptr;
    TypeKind kind;
    Monoid monoid;
  };
  std::vector<Acc> accs;
  for (const auto& o : outputs) {
    if (IsCollectionMonoid(o.monoid)) {
      return Status::Unimplemented("jit: mixed collection/aggregate outputs");
    }
    TypeKind k = TypeKind::kInt64;
    if (o.monoid != Monoid::kCount) {
      if (!o.expr->type()) return Status::Internal("jit: un-typechecked reduce output");
      TypeKind ek = o.expr->type()->kind();
      if (o.monoid == Monoid::kAnd || o.monoid == Monoid::kOr) {
        k = TypeKind::kBool;
      } else {
        k = ek == TypeKind::kFloat64 ? TypeKind::kFloat64 : TypeKind::kInt64;
      }
    }
    llvm::Type* ty = k == TypeKind::kFloat64 ? (llvm::Type*)b_.getDoubleTy()
                     : k == TypeKind::kBool  ? (llvm::Type*)b_.getInt1Ty()
                                             : (llvm::Type*)b_.getInt64Ty();
    llvm::Value* ptr = EntryAlloca(ty, nullptr, "acc");
    llvm::Value* zero;
    if (k == TypeKind::kFloat64) {
      double d = 0;
      if (o.monoid == Monoid::kMax) d = -std::numeric_limits<double>::infinity();
      if (o.monoid == Monoid::kMin) d = std::numeric_limits<double>::infinity();
      zero = llvm::ConstantFP::get(b_.getDoubleTy(), d);
    } else if (k == TypeKind::kBool) {
      zero = b_.getInt1(o.monoid == Monoid::kAnd);
    } else {
      int64_t z = 0;
      if (o.monoid == Monoid::kMax) z = std::numeric_limits<int64_t>::min();
      if (o.monoid == Monoid::kMin) z = std::numeric_limits<int64_t>::max();
      zero = b_.getInt64(z);
    }
    b_.CreateStore(zero, ptr);
    accs.push_back({ptr, k, o.monoid});
    result_columns_.push_back(o.name);
  }
  // Per-accumulator contributing-row counters: the flush must leave an
  // accumulator that saw no (non-null) input in its empty state — the empty
  // state, not a zero value, is what merges as the identity, exactly like an
  // interpreter partial whose Add() calls were all skipped. Null inputs
  // (outer-join drain rows, outer-unnest rows) contribute to count but not
  // to value monoids, so the counters are per output, not per row.
  std::vector<llvm::Value*> rows_ptrs;
  if (to_sink) {
    for (size_t i = 0; i < outputs.size(); ++i) {
      rows_ptrs.push_back(EntryAlloca(b_.getInt64Ty(), nullptr, "rows"));
      b_.CreateStore(b_.getInt64(0), rows_ptrs.back());
    }
  }

  auto update = [&]() -> Status {
    for (size_t i = 0; i < outputs.size(); ++i) {
      const AggOutput& o = outputs[i];
      const Acc& a = accs[i];
      llvm::Type* ty = a.kind == TypeKind::kFloat64 ? (llvm::Type*)b_.getDoubleTy()
                       : a.kind == TypeKind::kBool  ? (llvm::Type*)b_.getInt1Ty()
                                                    : (llvm::Type*)b_.getInt64Ty();
      llvm::Value* cur = b_.CreateLoad(ty, a.ptr);
      llvm::Value* updated;
      llvm::Value* contrib = b_.getInt64(1);
      if (o.monoid == Monoid::kCount) {
        updated = b_.CreateAdd(cur, b_.getInt64(1));
      } else {
        PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(o.expr));
        if (a.kind == TypeKind::kFloat64) {
          llvm::Value* x = ToDouble(v);
          if (o.monoid == Monoid::kSum) {
            updated = b_.CreateFAdd(cur, x);
          } else if (o.monoid == Monoid::kMax) {
            updated = b_.CreateSelect(b_.CreateFCmpOGT(x, cur), x, cur);
          } else {
            updated = b_.CreateSelect(b_.CreateFCmpOLT(x, cur), x, cur);
          }
        } else if (a.kind == TypeKind::kBool) {
          updated = o.monoid == Monoid::kAnd ? b_.CreateAnd(cur, v.v) : b_.CreateOr(cur, v.v);
        } else {
          if (o.monoid == Monoid::kSum) {
            updated = b_.CreateAdd(cur, v.v);
          } else if (o.monoid == Monoid::kMax) {
            updated = b_.CreateSelect(b_.CreateICmpSGT(v.v, cur), v.v, cur);
          } else {
            updated = b_.CreateSelect(b_.CreateICmpSLT(v.v, cur), v.v, cur);
          }
        }
        if (v.null != nullptr) {
          // Null inputs do not contribute (Aggregator::Add(null) is a no-op).
          updated = b_.CreateSelect(v.null, cur, updated);
          contrib = b_.CreateZExt(b_.CreateNot(v.null), b_.getInt64Ty());
        }
      }
      b_.CreateStore(updated, a.ptr);
      if (to_sink) {
        b_.CreateStore(
            b_.CreateAdd(b_.CreateLoad(b_.getInt64Ty(), rows_ptrs[i]), contrib),
            rows_ptrs[i]);
      }
    }
    return Status::OK();
  };

  PROTEUS_RETURN_NOT_OK(EmitProduce(reduce->child(0),
                                    [&]() { return EmitFilter(reduce->pred(), update); }));

  if (to_sink) {
    // Flush each register accumulator into this morsel's Aggregator partial.
    for (size_t i = 0; i < accs.size(); ++i) {
      const Acc& a = accs[i];
      llvm::Value* idx = b_.getInt32(static_cast<uint32_t>(i));
      llvm::Value* rows = b_.CreateLoad(b_.getInt64Ty(), rows_ptrs[i]);
      if (a.kind == TypeKind::kFloat64) {
        llvm::Value* v = b_.CreateLoad(b_.getDoubleTy(), a.ptr);
        b_.CreateCall(Helper("proteus_sink_agg_flush_double", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getDoubleTy(), b_.getInt64Ty()}),
                      {SinkPtr(), idx, v, rows});
      } else if (a.kind == TypeKind::kBool) {
        llvm::Value* v = b_.CreateLoad(b_.getInt1Ty(), a.ptr);
        b_.CreateCall(Helper("proteus_sink_agg_flush_bool", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getInt32Ty(), b_.getInt64Ty()}),
                      {SinkPtr(), idx, b_.CreateZExt(v, b_.getInt32Ty()), rows});
      } else {
        llvm::Value* v = b_.CreateLoad(b_.getInt64Ty(), a.ptr);
        b_.CreateCall(Helper("proteus_sink_agg_flush_int", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getInt64Ty(), b_.getInt64Ty()}),
                      {SinkPtr(), idx, v, rows});
      }
    }
    return Status::OK();
  }

  // Emit the single result row.
  for (const Acc& a : accs) {
    if (a.kind == TypeKind::kFloat64) {
      llvm::Value* v = b_.CreateLoad(b_.getDoubleTy(), a.ptr);
      b_.CreateCall(Helper("proteus_result_emit_double", b_.getVoidTy(), {i8p, b_.getDoubleTy()}),
                    {CtxPtr(), v});
    } else if (a.kind == TypeKind::kBool) {
      llvm::Value* v = b_.CreateLoad(b_.getInt1Ty(), a.ptr);
      b_.CreateCall(Helper("proteus_result_emit_bool", b_.getVoidTy(), {i8p, b_.getInt32Ty()}),
                    {CtxPtr(), b_.CreateZExt(v, b_.getInt32Ty())});
    } else {
      llvm::Value* v = b_.CreateLoad(b_.getInt64Ty(), a.ptr);
      b_.CreateCall(Helper("proteus_result_emit_int", b_.getVoidTy(), {i8p, b_.getInt64Ty()}),
                    {CtxPtr(), v});
    }
  }
  b_.CreateCall(Helper("proteus_result_end_row", b_.getVoidTy(), {i8p}), {CtxPtr()});
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Morsel-mode roots
// ---------------------------------------------------------------------------

Status Codegen::EmitMorselRoot(const OpPtr& reduce, const Operator* nest) {
  if (nest != nullptr) return EmitNestMorsel(*nest);
  return EmitReduceRoot(reduce, /*to_sink=*/true);
}

/// Nest directly under the root: per-row group upsert into this morsel's
/// GroupTable partial through the sink entry points. The merged groups
/// stream through the Reduce root in FinalizePlanPartials — the same code
/// the interpreter's parallel path runs — so group order and aggregate bits
/// match it exactly.
Status Codegen::EmitNestMorsel(const Operator& op) {
  auto* i8p = b_.getInt8PtrTy();
  if (!op.group_by()->type()) return Status::Internal("jit: un-typechecked group key");
  for (const auto& o : op.outputs()) {
    if (o.monoid != Monoid::kCount && !o.expr->type()) {
      return Status::Internal("jit: un-typechecked nest output");
    }
  }

  Consume update = [&]() -> Status {
    PROTEUS_ASSIGN_OR_RETURN(CgValue key, EmitExpr(op.group_by()));
    auto begin_typed = [&]() {
      if (key.kind == TypeKind::kString) {
        b_.CreateCall(Helper("proteus_sink_group_begin_str", b_.getVoidTy(),
                             {i8p, i8p, b_.getInt64Ty()}),
                      {SinkPtr(), key.v, key.len});
      } else if (key.kind == TypeKind::kBool) {
        b_.CreateCall(Helper("proteus_sink_group_begin_bool", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty()}),
                      {SinkPtr(), b_.CreateZExt(key.v, b_.getInt32Ty())});
      } else if (key.kind == TypeKind::kFloat64) {
        // Float keys box through Value::Float — the interpreter's exact
        // group key, so hashing/equality/order cannot diverge from it.
        b_.CreateCall(Helper("proteus_sink_group_begin_double", b_.getVoidTy(),
                             {i8p, b_.getDoubleTy()}),
                      {SinkPtr(), key.v});
      } else {
        b_.CreateCall(Helper("proteus_sink_group_begin_int", b_.getVoidTy(),
                             {i8p, b_.getInt64Ty()}),
                      {SinkPtr(), key.v});
      }
    };
    if (key.null == nullptr) {
      begin_typed();
    } else {
      // The boxed group table holds Value::Null keys the same way the
      // interpreter's does (drain rows grouping on a probe-side field).
      auto* typed_bb = llvm::BasicBlock::Create(*llctx_, "group.key", fn_);
      auto* null_bb = llvm::BasicBlock::Create(*llctx_, "group.nullkey", fn_);
      auto* merge_bb = llvm::BasicBlock::Create(*llctx_, "group.merge", fn_);
      b_.CreateCondBr(key.null, null_bb, typed_bb);
      b_.SetInsertPoint(typed_bb);
      begin_typed();
      b_.CreateBr(merge_bb);
      b_.SetInsertPoint(null_bb);
      b_.CreateCall(Helper("proteus_sink_group_begin_null", b_.getVoidTy(), {i8p}),
                    {SinkPtr()});
      b_.CreateBr(merge_bb);
      b_.SetInsertPoint(merge_bb);
    }
    for (size_t i = 0; i < op.outputs().size(); ++i) {
      const AggOutput& o = op.outputs()[i];
      llvm::Value* idx = b_.getInt32(static_cast<uint32_t>(i));
      if (o.monoid == Monoid::kCount) {
        b_.CreateCall(Helper("proteus_sink_group_agg_count", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty()}),
                      {SinkPtr(), idx});
        continue;
      }
      PROTEUS_ASSIGN_OR_RETURN(CgValue v, EmitExpr(o.expr));
      // Dispatch on the emitted kind so the boxed value the sink Add()s has
      // the same Value kind the interpreter's Eval() would produce. Null
      // inputs skip the call — Aggregator::Add(null) is a no-op anyway.
      llvm::BasicBlock* agg_merge = nullptr;
      if (v.null != nullptr) {
        auto* agg_bb = llvm::BasicBlock::Create(*llctx_, "group.agg", fn_);
        agg_merge = llvm::BasicBlock::Create(*llctx_, "group.agg.merge", fn_);
        b_.CreateCondBr(v.null, agg_merge, agg_bb);
        b_.SetInsertPoint(agg_bb);
      }
      if (v.kind == TypeKind::kFloat64) {
        b_.CreateCall(Helper("proteus_sink_group_agg_double", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getDoubleTy()}),
                      {SinkPtr(), idx, v.v});
      } else if (v.kind == TypeKind::kBool) {
        b_.CreateCall(Helper("proteus_sink_group_agg_bool", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getInt32Ty()}),
                      {SinkPtr(), idx, b_.CreateZExt(v.v, b_.getInt32Ty())});
      } else if (v.kind == TypeKind::kString) {
        b_.CreateCall(Helper("proteus_sink_group_agg_str", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), i8p, b_.getInt64Ty()}),
                      {SinkPtr(), idx, v.v, v.len});
      } else {
        b_.CreateCall(Helper("proteus_sink_group_agg_int", b_.getVoidTy(),
                             {i8p, b_.getInt32Ty(), b_.getInt64Ty()}),
                      {SinkPtr(), idx, v.v});
      }
      if (agg_merge != nullptr) {
        b_.CreateBr(agg_merge);
        b_.SetInsertPoint(agg_merge);
      }
    }
    return Status::OK();
  };
  return EmitProduce(op.child(0), [&]() { return EmitFilter(op.pred(), update); });
}

// ---------------------------------------------------------------------------
// Compilation entry points
// ---------------------------------------------------------------------------

llvm::Function* Codegen::OpenFunction(const char* name, uint32_t ptr_args, uint32_t int_args) {
  std::vector<llvm::Type*> params;
  for (uint32_t i = 0; i < ptr_args; ++i) params.push_back(b_.getInt8PtrTy());
  for (uint32_t i = 0; i < int_args; ++i) params.push_back(b_.getInt64Ty());
  auto* fty = llvm::FunctionType::get(b_.getVoidTy(), params, false);
  fn_ = llvm::Function::Create(fty, llvm::Function::ExternalLinkage, name, module_.get());
  ctx_arg_ = fn_->getArg(0);
  // Every generated function takes the parameter table as its last pointer
  // argument. The entry block holds its i64* view plus the lazily inserted
  // param loads and allocas (before entry_term_, so they dominate the body).
  auto* entry = llvm::BasicBlock::Create(*llctx_, "entry", fn_);
  auto* body = llvm::BasicBlock::Create(*llctx_, "body", fn_);
  b_.SetInsertPoint(entry);
  params_arg_ = b_.CreateBitCast(fn_->getArg(ptr_args - 1),
                                 b_.getInt64Ty()->getPointerTo(), "params");
  entry_term_ = b_.CreateBr(body);
  b_.SetInsertPoint(body);
  // Per-function emission state: virtual buffers never cross functions, and
  // function-specific arguments must be re-set by the caller.
  bindings_.clear();
  oids_.clear();
  param_values_.clear();
  sink_arg_ = nullptr;
  begin_arg_ = nullptr;
  end_arg_ = nullptr;
  drain_matched_arg_ = nullptr;
  return fn_;
}

llvm::Value* Codegen::ParamI64(jit::ParamDesc desc) {
  uint32_t slot = params_->Slot(std::move(desc));
  auto it = param_values_.find(slot);
  if (it != param_values_.end()) return it->second;
  auto* saved_bb = b_.GetInsertBlock();
  auto saved_pt = b_.GetInsertPoint();
  b_.SetInsertPoint(entry_term_);
  llvm::Value* addr = b_.CreateConstInBoundsGEP1_64(b_.getInt64Ty(), params_arg_, slot);
  llvm::Value* v = b_.CreateLoad(b_.getInt64Ty(), addr);
  b_.SetInsertPoint(saved_bb, saved_pt);
  param_values_[slot] = v;
  return v;
}

llvm::Value* Codegen::EntryAlloca(llvm::Type* ty, llvm::Value* array_size, const char* name) {
  auto* saved_bb = b_.GetInsertBlock();
  auto saved_pt = b_.GetInsertPoint();
  b_.SetInsertPoint(entry_term_);
  llvm::Value* a = b_.CreateAlloca(ty, array_size, name);
  b_.SetInsertPoint(saved_bb, saved_pt);
  return a;
}

Status Codegen::Compile(const OpPtr& plan) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("jit: plan root must be Reduce");
  }
  PROTEUS_RETURN_NOT_OK(CheckSupported(plan));
  CollectJoinKeyPaths(plan, &key_paths_);
  PROTEUS_RETURN_NOT_OK(Prepare(plan));

  OpenFunction("proteus_query", /*ptr_args=*/2, /*int_args=*/0);  // (ctx, params)
  PROTEUS_RETURN_NOT_OK(EmitRoot(plan));
  b_.CreateRetVoid();

  std::string err;
  llvm::raw_string_ostream os(err);
  if (llvm::verifyModule(*module_, &os)) {
    return Status::Internal("jit: invalid IR generated: " + os.str() +
                            (std::getenv("PROTEUS_DUMP_BAD_IR") ? "\n" + DumpIR() : ""));
  }
  return Status::OK();
}

Status Codegen::CompileMorsel(const OpPtr& plan, const MorselPipeline& pipe) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("jit: plan root must be Reduce");
  }
  // Chain context first: CheckSupported accepts outer joins only on the
  // morsel pipeline chain (their bitmaps + drain functions live there).
  morsel_mode_ = true;
  driver_leaf_ = pipe.leaf;
  chain_joins_.insert(pipe.joins.begin(), pipe.joins.end());
  PROTEUS_RETURN_NOT_OK(CheckSupported(plan));
  CollectJoinKeyPaths(plan, &key_paths_);
  PROTEUS_RETURN_NOT_OK(Prepare(plan));

  const OpPtr& top = plan->child(0);
  const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;

  // proteus_build(ctx, params): chain join build sides, each a
  // whole-relation pipeline run exactly once before the morsel fan-out.
  // Build subtrees may themselves contain joins or nests — they emit fully
  // in here.
  OpenFunction("proteus_build", /*ptr_args=*/2, /*int_args=*/0);
  for (const Operator* j : pipe.joins) {
    PROTEUS_RETURN_NOT_OK(EmitJoinBuild(*j));
  }
  b_.CreateRetVoid();

  // proteus_pipeline(ctx, sink, params, begin, end): the driver chain over
  // one morsel's range, feeding the morsel's partial sink.
  OpenFunction("proteus_pipeline", /*ptr_args=*/3, /*int_args=*/2);
  sink_arg_ = fn_->getArg(1);
  begin_arg_ = fn_->getArg(3);
  end_arg_ = fn_->getArg(4);
  PROTEUS_RETURN_NOT_OK(EmitMorselRoot(plan, nest));
  b_.CreateRetVoid();

  // proteus_drain<k>(ctx, sink, matched, params): one one-shot unmatched
  // drain per outer chain join, deepest-first — run after all probe morsels
  // reported their matched-build bitmaps, with `matched` their host-side OR.
  // Each iterates its join's build rows (EmitJoinProbe dispatches to
  // EmitJoinDrain at drain_join_) and runs the unmatched ones through the
  // ops above the join into a trailing partial slot — the same slot frame
  // the interpreter's DrainOuterJoins fills.
  const std::vector<const Operator*> outer = OuterChainJoins(pipe);
  for (size_t k = 0; k < outer.size(); ++k) {
    std::string name = "proteus_drain" + std::to_string(k);
    OpenFunction(name.c_str(), /*ptr_args=*/4, /*int_args=*/0);
    sink_arg_ = fn_->getArg(1);
    drain_matched_arg_ = fn_->getArg(2);
    drain_join_ = outer[k];
    PROTEUS_RETURN_NOT_OK(EmitMorselRoot(plan, nest));
    b_.CreateRetVoid();
    outer_join_tables_.push_back(join_ids_.at(outer[k]));
  }
  drain_join_ = nullptr;

  std::string err;
  llvm::raw_string_ostream os(err);
  if (llvm::verifyModule(*module_, &os)) {
    return Status::Internal("jit: invalid IR generated: " + os.str() +
                            (std::getenv("PROTEUS_DUMP_BAD_IR") ? "\n" + DumpIR() : ""));
  }
  return Status::OK();
}

/// Runs the standard pass pipeline at `level` over `m` (mem2reg/SROA
/// promotes the virtual buffers to registers, the rest fuses the pipeline
/// into tight loops).
void RunPassPipeline(llvm::Module& m, llvm::OptimizationLevel level) {
  llvm::PassBuilder pb;
  llvm::LoopAnalysisManager lam;
  llvm::FunctionAnalysisManager fam;
  llvm::CGSCCAnalysisManager cam;
  llvm::ModuleAnalysisManager mam;
  pb.registerModuleAnalyses(mam);
  pb.registerCGSCCAnalyses(cam);
  pb.registerFunctionAnalyses(fam);
  pb.registerLoopAnalyses(lam);
  pb.crossRegisterProxies(lam, fam, cam, mam);
  auto mpm = pb.buildPerModuleDefaultPipeline(level);
  mpm.run(m, mam);
}

/// Generates, optimizes, and links `plan` into a position-independent
/// jit::CompiledModule (parameter table + runtime layout instead of baked
/// constants) that the CompiledQueryCache can reuse across executions,
/// threads, and shards. With `pipe`, compiles in morsel mode (proteus_build
/// + proteus_pipeline); without, legacy whole-relation mode (proteus_query).
///
/// `tier` selects the compile pipeline. Tier 1 — every foreground path —
/// optimizes inline at O2 and links through a default LLJIT. Tier 2 — the
/// background recompile of a proven-hot signature — builds its LLJIT around
/// an ORC ConcurrentIRCompiler whose target machine codegens at
/// CodeGenOpt::Aggressive, and defers IR optimization to an O3
/// IRTransformLayer transform on the materialization path. Entry points and
/// results are identical across tiers; only the machine code differs.
Result<std::shared_ptr<const jit::CompiledModule>> CompileAndLink(const ExecContext& ctx,
                                                                  const OpPtr& plan,
                                                                  const MorselPipeline* pipe,
                                                                  int tier = 1) {
  InitLLVMOnce();
  OBS_SPAN(ctx.trace, "jit_compile", "tier", tier);
  auto out = std::make_shared<jit::CompiledModule>();
  out->tier = tier;
  jit::ParamTable param_table;
  Codegen cg(ctx, &out->layout, &param_table);
  {
    OBS_SPAN(ctx.trace, "ir_gen");
    if (pipe != nullptr) {
      PROTEUS_RETURN_NOT_OK(cg.CompileMorsel(plan, *pipe));
    } else {
      PROTEUS_RETURN_NOT_OK(cg.Compile(plan));
    }
  }
  out->ir = cg.DumpIR();
  out->columns = cg.result_columns();
  out->row_records = cg.row_records();
  out->params = param_table.Take();

  auto module = cg.TakeModule();
  auto llctx = cg.TakeContext();

  // Contract verification runs on the raw codegen output (before the pass
  // pipeline rewrites it): the param-table GEPs and runtime-call shapes the
  // verifier reasons about are exactly what Codegen emitted.
  if (ctx.verify_ir) {
    OBS_SPAN(ctx.trace, "ir_verify");
    PROTEUS_RETURN_NOT_OK(
        jit::VerifyGeneratedModule(*module, out->params.size()));
    out->ir_verified = true;
  }

  if (tier < 2) RunPassPipeline(*module, llvm::OptimizationLevel::O2);

  llvm::orc::LLJITBuilder builder;
  if (tier >= 2) {
    builder.setCompileFunctionCreator(
        [](llvm::orc::JITTargetMachineBuilder jtmb)
            -> llvm::Expected<std::unique_ptr<llvm::orc::IRCompileLayer::IRCompiler>> {
          jtmb.setCodeGenOptLevel(llvm::CodeGenOpt::Aggressive);
          return std::make_unique<llvm::orc::ConcurrentIRCompiler>(std::move(jtmb));
        });
  }
  auto jit_or = builder.create();
  if (!jit_or) {
    return Status::Internal("jit: LLJIT creation failed: " +
                            llvm::toString(jit_or.takeError()));
  }
  out->jit = std::move(*jit_or);
  if (tier >= 2) {
    out->jit->getIRTransformLayer().setTransform(
        [](llvm::orc::ThreadSafeModule tsm, const llvm::orc::MaterializationResponsibility&)
            -> llvm::Expected<llvm::orc::ThreadSafeModule> {
          tsm.withModuleDo(
              [](llvm::Module& m) { RunPassPipeline(m, llvm::OptimizationLevel::O3); });
          return std::move(tsm);
        });
  }

  llvm::orc::SymbolMap symbols;
  for (const auto& [name, addr] : jit::RuntimeSymbols()) {
    symbols[out->jit->mangleAndIntern(name)] = llvm::JITEvaluatedSymbol(
        llvm::pointerToJITTargetAddress(addr),
        llvm::JITSymbolFlags::Exported | llvm::JITSymbolFlags::Callable);
  }
  if (auto err = out->jit->getMainJITDylib().define(llvm::orc::absoluteSymbols(symbols))) {
    return Status::Internal("jit: symbol registration failed: " +
                            llvm::toString(std::move(err)));
  }
  if (auto err = out->jit->addIRModule(
          llvm::orc::ThreadSafeModule(std::move(module), std::move(llctx)))) {
    return Status::Internal("jit: addIRModule failed: " + llvm::toString(std::move(err)));
  }
  auto lookup = [&](const char* name) -> Result<void*> {
    auto sym = out->jit->lookup(name);
    if (!sym) {
      return Status::Internal("jit: lookup failed: " + llvm::toString(sym.takeError()));
    }
    return reinterpret_cast<void*>(sym->getAddress());
  };
  if (pipe != nullptr) {
    PROTEUS_ASSIGN_OR_RETURN(void* b, lookup("proteus_build"));
    PROTEUS_ASSIGN_OR_RETURN(void* p, lookup("proteus_pipeline"));
    out->build_fn = reinterpret_cast<jit::CompiledModule::BuildFn>(b);
    out->pipeline_fn = reinterpret_cast<jit::CompiledModule::PipelineFn>(p);
    out->outer_join_tables = cg.outer_join_tables();
    for (size_t k = 0; k < out->outer_join_tables.size(); ++k) {
      PROTEUS_ASSIGN_OR_RETURN(void* d, lookup(("proteus_drain" + std::to_string(k)).c_str()));
      out->drain_fns.push_back(reinterpret_cast<jit::CompiledModule::DrainFn>(d));
    }
  } else {
    PROTEUS_ASSIGN_OR_RETURN(void* q, lookup("proteus_query"));
    out->query_fn = reinterpret_cast<jit::CompiledModule::QueryFn>(q);
  }
  return std::shared_ptr<const jit::CompiledModule>(std::move(out));
}

}  // namespace

// ---------------------------------------------------------------------------
// Public compile entry points (tiered controller)
// ---------------------------------------------------------------------------

namespace jit {

QueryCacheKey MakeQueryCacheKey(const ExecContext& ctx, const OpPtr& plan, CodegenMode mode) {
  QueryCacheKey key;
  key.signature = plan->Signature();
  key.mode = mode;
  // Join strategies are not part of Signature() (the logical plan is the
  // same either way) but the compiled module bakes each table's bucket
  // layout into its RuntimeLayout — two strategy assignments must never
  // share a cache entry.
  std::function<void(const Operator&)> walk = [&](const Operator& op) {
    if (op.kind() == OpKind::kJoin && op.left_key() != nullptr) {
      if (!key.join_strategies.empty()) key.join_strategies.push_back(',');
      key.join_strategies.append(JoinStrategyName(op.join_strategy()));
    }
    for (const auto& c : op.children()) walk(*c);
  };
  walk(*plan);
  key.catalog_epoch = ctx.catalog != nullptr ? ctx.catalog->epoch() : 0;
  key.cache_epoch = ctx.caches != nullptr ? ctx.caches->epoch() : 0;
  return key;
}

Result<std::shared_ptr<const CompiledModule>> CompilePlan(const ExecContext& ctx,
                                                          const OpPtr& plan, CodegenMode mode,
                                                          int tier) {
  if (plan == nullptr || plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("jit: plan root must be Reduce");
  }
  if (mode == CodegenMode::kWholeRelation) {
    return CompileAndLink(ctx, plan, nullptr, tier);
  }
  const OpPtr& top = plan->child(0);
  const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
  const OpPtr& pipe_root = nest != nullptr ? top->child(0) : top;
  MorselPipeline pipe;
  if (!CollectMorselPipeline(pipe_root, &pipe)) {
    return Status::Unimplemented("jit: plan is not morsel-parallelizable");
  }
  return CompileAndLink(ctx, plan, &pipe, tier);
}

}  // namespace jit

// ---------------------------------------------------------------------------
// JitExecutor
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const jit::CompiledModule>> JitExecutor::GetOrCompileModule(
    const OpPtr& plan, const MorselPipeline* pipe) {
  last_cache_hit_ = false;
  last_compile_ms_ = 0;
  auto compile = [&]() -> Result<std::shared_ptr<const jit::CompiledModule>> {
    auto t0 = std::chrono::steady_clock::now();
    auto r = CompileAndLink(ctx_, plan, pipe);
    // Recorded on failure too: an aborted codegen attempt (e.g. an
    // Unimplemented feature discovered mid-emission) costs real wall time
    // that fallback telemetry must attribute to compile_ms, not execute_ms.
    last_compile_ms_ = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    return r;
  };
  if (ctx_.jit_cache == nullptr || ctx_.catalog == nullptr) return compile();
  const jit::QueryCacheKey key = jit::MakeQueryCacheKey(
      ctx_, plan,
      pipe != nullptr ? jit::CodegenMode::kMorsel : jit::CodegenMode::kWholeRelation);
  // On a hit (or a single-flight wait on another thread's compile)
  // last_compile_ms_ stays 0: this execution generated no IR at all.
  // The probe span covers the whole lookup — a miss nests the jit_compile
  // span inside it, so the probe-only cost is the difference.
  obs::TraceSpan probe(ctx_.trace, "cache_probe");
  auto r = ctx_.jit_cache->GetOrCompile(key, compile, &last_cache_hit_, ctx_.trace);
  probe.set_arg0("hit", last_cache_hit_ ? 1 : 0);
  return r;
}

const std::string& JitExecutor::last_ir() const {
  static const std::string kEmpty;
  return last_module_ != nullptr ? last_module_->ir : kEmpty;
}

Result<QueryResult> JitExecutor::Execute(const OpPtr& plan) {
  PROTEUS_ASSIGN_OR_RETURN(std::shared_ptr<const jit::CompiledModule> mod,
                           GetOrCompileModule(plan, nullptr));
  last_module_ = mod;

  // Fresh per-execution state: runtime tables from the recorded layout, data
  // constants re-bound from the live catalog/plug-ins/caches.
  jit::QueryRuntime rt;
  jit::InitRuntimeFromLayout(mod->layout, &rt);
  rt.scheduler = ctx_.scheduler;
  std::vector<std::shared_ptr<const CacheBlock>> pinned_blocks;
  PROTEUS_ASSIGN_OR_RETURN(std::vector<int64_t> params,
                           jit::BindParams(ctx_, mod->params, &pinned_blocks));

  jit::MorselCtx mc(&rt);
  mod->query_fn(&mc, params.data());
  if (rt.failed) return Status::Internal("jit runtime: " + rt.error);

  rt.result.columns = mod->columns;  // copy: the module is shared
  return std::move(rt.result);
}

Result<PlanPartials> JitExecutor::RunMorselPipelines(
    const OpPtr& plan, uint64_t morsel_begin, uint64_t morsel_end, bool whole_plan,
    InterpExecutor::ExecStats* stats, std::shared_ptr<const jit::CompiledModule> premodule) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("jit: plan root must be Reduce");
  }
  const OpPtr& top = plan->child(0);
  const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
  const OpPtr& pipe_root = nest != nullptr ? top->child(0) : top;
  MorselPipeline pipe;
  if (!CollectMorselPipeline(pipe_root, &pipe)) {
    return Status::Unimplemented("jit: plan is not morsel-parallelizable");
  }
  const std::vector<const Operator*> outer = OuterChainJoins(pipe);
  if (!whole_plan && !outer.empty()) {
    // Mirror of InterpExecutor::ExecutePartials: a shard sees only its
    // morsel slice, but the unmatched-build drain needs every probe morsel's
    // bitmap — a global view.
    return Status::InvalidArgument(
        "outer joins cannot shard: the unmatched-build drain is global");
  }

  std::shared_ptr<const jit::CompiledModule> cq;
  if (premodule != nullptr) {
    // Tiered swap path: the background thread compiled (and cached) the
    // module already — this thread only binds parameters and runs.
    last_cache_hit_ = false;
    last_compile_ms_ = 0;
    cq = std::move(premodule);
  } else {
    PROTEUS_ASSIGN_OR_RETURN(cq, GetOrCompileModule(plan, &pipe));
  }
  last_module_ = cq;

  // Fresh per-execution state: runtime tables from the recorded layout, data
  // constants re-bound from the live catalog/plug-ins/caches. The machine
  // code itself is shared — possibly concurrently with other shard threads
  // executing the same cached module.
  jit::QueryRuntime rt;
  jit::InitRuntimeFromLayout(cq->layout, &rt);
  rt.scheduler = ctx_.scheduler;
  std::vector<std::shared_ptr<const CacheBlock>> pinned_blocks;
  PROTEUS_ASSIGN_OR_RETURN(std::vector<int64_t> params,
                           jit::BindParams(ctx_, cq->params, &pinned_blocks));

  // Shared join builds run once (their radix tables build through the
  // parallel RadixTable::Build path via rt.scheduler), then freeze.
  {
    OBS_SPAN(ctx_.trace, "join_build");
    jit::MorselCtx build_ctx(&rt);
    cq->build_fn(&build_ctx, params.data());
  }
  if (rt.failed) return Status::Internal("jit runtime: " + rt.error);

  // The global morsel decomposition — the exact frame the interpreter and
  // the shard coordinator use, so every engine agrees on partial boundaries.
  PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> all, SplitLeafMorsels(ctx_, *pipe.leaf));
  if (whole_plan) {
    morsel_begin = 0;
    morsel_end = all.size();
  } else if (morsel_begin > morsel_end || morsel_end > all.size()) {
    return Status::InvalidArgument("jit morsel range [" + std::to_string(morsel_begin) +
                                   ", " + std::to_string(morsel_end) + ") out of bounds for " +
                                   std::to_string(all.size()) + " morsels");
  }
  const std::vector<ScanRange> morsels(all.begin() + morsel_begin, all.begin() + morsel_end);
  const size_t n = morsels.size();

  // One partial sink per morsel plus one trailing slot per outer-join drain
  // (the shared PlanPartialSlots frame); workers write disjoint slots, so
  // the fan-out needs no locking and the merge below is deterministic in
  // morsel order.
  const size_t slots = whole_plan ? PlanPartialSlots(pipe, n) : n;
  PlanPartials partials;
  partials.nest = nest != nullptr;
  std::vector<JitMorselSink> sinks(slots);
  if (nest != nullptr) {
    partials.group_morsels.resize(slots);
    for (size_t m = 0; m < slots; ++m) {
      partials.group_morsels[m].count_bytes = false;
      sinks[m].groups = &partials.group_morsels[m];
      sinks[m].nest = nest;
    }
  } else {
    partials.agg_morsels.reserve(slots);
    for (size_t m = 0; m < slots; ++m) partials.agg_morsels.push_back(MakeReduceAggs(*plan));
    for (size_t m = 0; m < slots; ++m) {
      sinks[m].aggs = &partials.agg_morsels[m];
      sinks[m].columns = &cq->columns;  // module outlives the run (shared_ptr held)
      sinks[m].row_records = cq->row_records;
    }
  }

  // One reusable ctx per worker, not per morsel: unnest cursors and probe
  // iterators are (re)initialized by the generated code before every use,
  // so reuse is race-free and skips 2 vector allocations per morsel.
  const int workers = ctx_.scheduler != nullptr ? ctx_.scheduler->num_threads() : 1;
  std::vector<jit::MorselCtx> ctxs(static_cast<size_t>(workers), jit::MorselCtx(&rt));

  // Matched-build bitmaps for the outer chain joins, one set per *worker*
  // (marking is an idempotent 0→1 write and the merge below ORs, so which
  // worker marked a row cannot matter) plus one per drain pass — a drain's
  // rows can match outer joins above its own, and later drains OR those in,
  // exactly the interpreter's bitmap pool. Memory and merge cost are thus
  // bounded by thread count, not morsel count. Build rows are frozen
  // (proteus_build already ran), so the sizes are final.
  std::vector<std::vector<std::vector<uint8_t>>> matched;
  if (!outer.empty()) {
    matched.resize(static_cast<size_t>(workers) + outer.size());
    for (auto& per_table : matched) {
      per_table.resize(rt.joins.size());
      for (uint32_t table : cq->outer_join_tables) {
        per_table[table].assign(rt.joins[table]->keys.size(), 0);
      }
    }
    for (size_t k = 0; k < outer.size(); ++k) {
      sinks[n + k].matched = &matched[static_cast<size_t>(workers) + k];
    }
  }

  auto run_one = [&](uint64_t m, int worker) -> Status {
    // Morsel boundary: the cooperative cancellation point of the generated
    // engine — generated code never checks mid-morsel.
    PROTEUS_RETURN_NOT_OK(CheckCancelled(ctx_));
    if (ctx_.morsel_hook != nullptr) (*ctx_.morsel_hook)(morsel_begin + m);
    // Trace the dispatch boundary with the *global* morsel index, so a
    // sharded or tiered trace reads in the one decomposition every engine
    // shares.
    OBS_SPAN(ctx_.trace, "jit_morsel", "morsel", static_cast<int64_t>(morsel_begin + m));
    if (!matched.empty()) sinks[m].matched = &matched[worker];
    cq->pipeline_fn(&ctxs[worker], &sinks[m], params.data(), morsels[m].begin,
                    morsels[m].end);
    return Status::OK();
  };
  if (ctx_.scheduler != nullptr) {
    PROTEUS_RETURN_NOT_OK(ctx_.scheduler->ParallelFor(n, run_one));
  } else {
    for (uint64_t m = 0; m < n; ++m) PROTEUS_RETURN_NOT_OK(run_one(m, 0));
  }
  if (rt.failed) return Status::Internal("jit runtime: " + rt.error);

  // Outer-join unmatched drains: serially, deepest join first, once all
  // probe morsels reported. Each drain k ORs every earlier bitmap (all
  // worker bitmaps + drains 0..k-1) and feeds trailing slot n + k — the
  // slot order FinalizePlanPartials folds, so the emitted row order
  // reproduces the interpreter's exactly.
  if (!outer.empty()) {
    OBS_SPAN(ctx_.trace, "outer_drain");
    jit::MorselCtx drain_ctx(&rt);
    for (size_t k = 0; k < cq->drain_fns.size(); ++k) {
      const uint32_t table = cq->outer_join_tables[k];
      const size_t rows = rt.joins[table]->keys.size();
      std::vector<uint8_t> merged(std::max<size_t>(rows, 1), 0);
      for (size_t s = 0; s < static_cast<size_t>(workers) + k; ++s) {
        const std::vector<uint8_t>& bm = matched[s][table];
        for (size_t i = 0; i < rows; ++i) merged[i] |= bm[i];
      }
      cq->drain_fns[k](&drain_ctx, &sinks[n + k], merged.data(), params.data());
    }
    if (rt.failed) return Status::Internal("jit runtime: " + rt.error);
  }

  if (stats != nullptr) {
    stats->morsels = n;
    stats->threads_used = static_cast<int>(std::min<uint64_t>(
        ctx_.scheduler != nullptr ? ctx_.scheduler->num_threads() : 1, std::max<size_t>(n, 1)));
  }
  return partials;
}

Result<QueryResult> JitExecutor::ExecuteParallel(const OpPtr& plan,
                                                 InterpExecutor::ExecStats* stats) {
  PROTEUS_ASSIGN_OR_RETURN(PlanPartials partials,
                           RunMorselPipelines(plan, 0, 0, /*whole_plan=*/true, stats, nullptr));
  const OpPtr& top = plan->child(0);
  const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
  return FinalizePlanPartials(*plan, nest, std::move(partials), ctx_.trace);
}

Result<PlanPartials> JitExecutor::ExecutePartials(const OpPtr& plan, uint64_t morsel_begin,
                                                  uint64_t morsel_end) {
  return RunMorselPipelines(plan, morsel_begin, morsel_end, /*whole_plan=*/false, nullptr,
                            nullptr);
}

Result<PlanPartials> JitExecutor::ExecutePartialsPrecompiled(
    const OpPtr& plan, std::shared_ptr<const jit::CompiledModule> module,
    uint64_t morsel_begin, uint64_t morsel_end) {
  if (module == nullptr) {
    return Status::InvalidArgument("jit: precompiled module is null");
  }
  return RunMorselPipelines(plan, morsel_begin, morsel_end, /*whole_plan=*/false, nullptr,
                            std::move(module));
}

}  // namespace proteus
