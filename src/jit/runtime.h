// Runtime support library for generated code (paper §5.1 "Proteus also uses
// pre-existing (i.e., not generated) C++ code for some of its functionality.
// Proteus wraps these operations in C++ functions and calls them when
// appropriate from the generated code").
//
// The generated query function receives a QueryRuntime*. Join tables, group
// tables, unnest cursors, and the result builder live here; tight per-tuple
// work (field loads from binary data, predicate evaluation, aggregation
// arithmetic) is emitted as straight LLVM IR and never crosses this
// boundary. CSV/JSON token access crosses it through thin helpers, mirroring
// the paper's plug-in calls.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/aggregator.h"
#include "src/engine/radix_table.h"
#include "src/engine/result.h"
#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"

namespace proteus {
namespace jit {

/// Radix join state: build-side keys + packed 8-byte payload slots. Filled
/// once by the build pipeline, then read-only — probe iteration state lives
/// in the per-task MorselCtx so concurrent morsel pipelines can probe the
/// same table. Null-keyed build rows (proteus_join_insert_null) occupy a row
/// slot without a radix entry: probes never reach them, but an outer join's
/// unmatched drain still iterates them — exactly the interpreter's
/// "null keys never match; outer joins still keep the row" rule.
struct JoinTableRt {
  RadixTable table;
  std::vector<int64_t> keys;
  std::vector<int64_t> payload;  ///< row-major, slots_per_row per entry
  uint32_t slots_per_row = 0;
};

/// Hash grouping state: int64 or string keys, packed 8-byte agg slots.
struct GroupTableRt {
  bool string_keys = false;
  std::vector<int64_t> ikeys;
  std::vector<std::string> skeys;
  std::vector<int64_t> slots;  ///< group-major, slots_per_group per group
  uint32_t slots_per_group = 0;
  std::vector<int64_t> init_slots;
  // open addressing over key hash -> group index
  std::vector<uint32_t> buckets;
  uint32_t mask = 0;
};

/// Lazy JSON array iteration state for generated Unnest loops.
struct UnnestStateRt {
  const JsonPlugin* plugin = nullptr;
  const char* obj_base = nullptr;
  uint32_t pos = 0;
  uint32_t end = 0;
  const JsonElem* elems = nullptr;
  // current element span
  const char* elem_start = nullptr;
  const char* elem_end = nullptr;
};

/// Query-lifetime state shared by every pipeline invocation. During the
/// morsel-parallel phase everything here is read-only: join tables are
/// frozen after proteus_build runs, and group tables are only touched by
/// single-call code — the legacy whole-relation path, or a mid-chain Nest
/// inside a join build subtree (which runs once, inside proteus_build).
/// Per-task mutable state lives in MorselCtx.
struct QueryRuntime {
  std::vector<std::unique_ptr<JoinTableRt>> joins;
  std::vector<std::unique_ptr<GroupTableRt>> groups;
  uint32_t num_unnests = 0;
  /// Parallel radix build for join tables (byte-identical layout to the
  /// serial build); null builds serially.
  TaskScheduler* scheduler = nullptr;
  QueryResult result;       // legacy whole-relation path only
  std::vector<Value> cur_row;
  /// Legacy whole-relation set-monoid roots: proteus_result_end_row_set
  /// boxes each finished row and keeps it only if this set accumulator —
  /// the same dedup the interpreter applies — hasn't seen an equal row.
  Aggregator result_set{Monoid::kSet};
  bool failed = false;
  std::string error;

  uint32_t AddJoin(uint32_t payload_slots, bool partitioned = false) {
    auto t = std::make_unique<JoinTableRt>();
    t->slots_per_row = payload_slots;
    t->table.set_partitioned(partitioned);
    joins.push_back(std::move(t));
    return static_cast<uint32_t>(joins.size() - 1);
  }
  uint32_t AddGroup(bool string_keys, std::vector<int64_t> init) {
    auto t = std::make_unique<GroupTableRt>();
    t->string_keys = string_keys;
    t->slots_per_group = static_cast<uint32_t>(init.size());
    t->init_slots = std::move(init);
    groups.push_back(std::move(t));
    return static_cast<uint32_t>(groups.size() - 1);
  }
  uint32_t AddUnnest() { return num_unnests++; }
};

/// Per-invocation mutable state of one generated pipeline call: every
/// runtime helper takes a MorselCtx* so concurrent morsel tasks never write
/// shared state. Unnest cursors and join probe iterators are per-task; the
/// legacy whole-relation path simply runs with a single ctx.
struct MorselCtx {
  explicit MorselCtx(QueryRuntime* runtime)
      : rt(runtime), unnests(runtime->num_unnests), probes(runtime->joins.size()) {}

  struct ProbeState {
    std::vector<uint32_t> matches;
    size_t pos = 0;
    uint32_t cur_row = 0;  ///< build row of the last yielded match (outer-join
                           ///< bitmap marking reads it via proteus_join_probe_row)
  };

  QueryRuntime* rt;
  std::vector<UnnestStateRt> unnests;
  std::vector<ProbeState> probes;  ///< one per join table
};

/// Registers every helper below in `names` -> address pairs so the ORC JIT
/// can resolve them.
std::vector<std::pair<std::string, void*>> RuntimeSymbols();

}  // namespace jit
}  // namespace proteus

// ---------------------------------------------------------------------------
// C ABI helpers callable from generated IR. `ctx` is a jit::MorselCtx* —
// per-task state, so every helper below is safe to call from concurrent
// morsel pipelines over the same QueryRuntime.
// ---------------------------------------------------------------------------
extern "C" {

// CSV field access (the CSV plug-in's generated access path).
int64_t proteus_csv_int(const void* plugin, uint64_t oid, uint32_t col);
double proteus_csv_double(const void* plugin, uint64_t oid, uint32_t col);
const char* proteus_csv_str(const void* plugin, uint64_t oid, uint32_t col, int64_t* len);

// JSON field access through the structural index. proteus_json_has reports
// whether the field is present at all — the generated null check behind the
// interpreter's "null keys never match" join semantics (absent JSON fields
// bind SQL null there; the typed readers below return 0/"" instead).
// proteus_json_int_opt fuses presence + int read into one index lookup for
// the hot join-key path (returns presence, writes the value or 0).
int32_t proteus_json_has(const void* plugin, uint64_t oid, uint64_t path_hash);
int32_t proteus_json_int_opt(const void* plugin, uint64_t oid, uint64_t path_hash,
                             int64_t* out);
int64_t proteus_json_int(const void* plugin, uint64_t oid, uint64_t path_hash);
double proteus_json_double(const void* plugin, uint64_t oid, uint64_t path_hash);
int64_t proteus_json_bool(const void* plugin, uint64_t oid, uint64_t path_hash);
const char* proteus_json_str(const void* plugin, uint64_t oid, uint64_t path_hash,
                             int64_t* len);

// JSON array unnest (unnestInit / unnestHasNext / unnestGetNext). Cursor
// state lives in ctx->unnests[slot].
void proteus_unnest_init(void* ctx, uint32_t slot, const void* plugin, uint64_t oid,
                         uint64_t path_hash);
int32_t proteus_unnest_has_next(void* ctx, uint32_t slot);
void proteus_unnest_advance(void* ctx, uint32_t slot);
int64_t proteus_unnest_elem_int(void* ctx, uint32_t slot, const char* name, int64_t name_len);
double proteus_unnest_elem_double(void* ctx, uint32_t slot, const char* name, int64_t name_len);
const char* proteus_unnest_elem_str(void* ctx, uint32_t slot, const char* name,
                                    int64_t name_len, int64_t* len);

// Radix hash join. Insert/build run in the single-call build pipeline; probe
// iteration state lives in ctx->probes[table] so concurrent morsels can
// probe the same frozen table.
void proteus_join_insert(void* ctx, uint32_t table, int64_t key, const int64_t* payload);
// Null-keyed build row of an outer join: keeps the payload (the unmatched
// drain iterates it) without a radix entry (probes can never match it).
void proteus_join_insert_null(void* ctx, uint32_t table, const int64_t* payload);
void proteus_join_build(void* ctx, uint32_t table);
const int64_t* proteus_join_probe_first(void* ctx, uint32_t table, int64_t key);
const int64_t* proteus_join_probe_next(void* ctx, uint32_t table);
// Build row index of the match probe_next last yielded (per-task state).
int64_t proteus_join_probe_row(void* ctx, uint32_t table);
// Unmatched-drain iteration over a frozen build side: total row count and
// direct payload access by row index.
int64_t proteus_join_rows(void* ctx, uint32_t table);
const int64_t* proteus_join_payload_at(void* ctx, uint32_t table, int64_t row);

// Hash grouping (Nest) — legacy single-call path and mid-chain nests inside
// build pipelines; morsel-parallel group-bys go through the partial-sink
// entry points (partial_sink.h) instead.
int64_t* proteus_group_upsert(void* ctx, uint32_t table, int64_t key);
int64_t* proteus_group_upsert_str(void* ctx, uint32_t table, const char* key, int64_t len);
uint64_t proteus_group_count(void* ctx, uint32_t table);
int64_t proteus_group_key(void* ctx, uint32_t table, uint64_t idx);
const char* proteus_group_key_str(void* ctx, uint32_t table, uint64_t idx, int64_t* len);
int64_t* proteus_group_slots(void* ctx, uint32_t table, uint64_t idx);

// Result building (legacy single-call path; morsel pipelines emit rows into
// their JitMorselSink instead).
void proteus_result_emit_int(void* ctx, int64_t v);
void proteus_result_emit_double(void* ctx, double v);
void proteus_result_emit_bool(void* ctx, int32_t v);
void proteus_result_emit_str(void* ctx, const char* p, int64_t len);
void proteus_result_emit_null(void* ctx);
void proteus_result_end_row(void* ctx);
// Set-monoid root (legacy whole-relation mode): ends the staged row only if
// no equal row was emitted before (hash of the boxed row + cell equality).
void proteus_result_end_row_set(void* ctx);

// Strings.
int32_t proteus_str_eq(const char* a, int64_t alen, const char* b, int64_t blen);
int32_t proteus_str_lt(const char* a, int64_t alen, const char* b, int64_t blen);

}  // extern "C"
