#include "src/shard/executor.h"

#include "src/jit/jit_engine.h"
#include "src/obs/trace.h"
#include "src/shard/partial_result.h"

namespace proteus {

ShardExecutor::ShardExecutor(int shard_id, const ExecContext& base, int num_threads,
                             bool use_jit)
    : shard_id_(shard_id), scheduler_(num_threads), ctx_(base), use_jit_(use_jit) {
  ctx_.scheduler = &scheduler_;
  ctx_.stats = nullptr;  // cold-access stats were collected by the coordinator
  // ctx_.jit_cache is inherited from `base`: every shard shares the
  // coordinator's compiled-query cache, so one plan compiles once per
  // engine, not once per shard.
}

Status ShardExecutor::Run(const ShardTask& task, ShardTransport* transport) {
  // The coordinator runs each executor on its own thread, so the label
  // becomes the shard's track in the exported trace.
  if (ctx_.trace != nullptr) {
    ctx_.trace->LabelThisThread("shard-" + std::to_string(shard_id_));
  }
  OBS_SPAN(ctx_.trace, "shard_slice", "shard", shard_id_, "morsels",
           static_cast<int64_t>(task.morsel_end - task.morsel_begin));
  PlanPartials partials;
  jit_ran_ = false;
  tiered_ran_ = false;
  served_tier_ = 0;
  ir_verified_ = false;
  if (use_jit_ && ctx_.tiered != nullptr) {
    // Tiered shard: this slice starts on the interpreter while the (shared,
    // single-flight) background compile runs, and hot-swaps at its own
    // morsel boundary. Partials are bit-identical either way, so a mid-query
    // swap in one shard composes freely with any state of the others.
    jit::TieredRunStats ts;
    auto r = jit::RunTiered(ctx_, task.plan, task.morsel_begin, task.morsel_end,
                            /*whole_plan=*/false, &ts);
    if (r.ok()) {
      partials = std::move(*r);
      tiered_ran_ = true;
      tiered_stats_ = ts;
      jit_ran_ = ts.morsels_jit > 0;
      served_tier_ = ts.compile_tier;
      ir_verified_ = ts.ir_verified;
      morsels_run_ = task.morsel_end - task.morsel_begin;
    } else if (r.status().code() != StatusCode::kUnimplemented) {
      return r.status();
    }
    // Unimplemented: fall through to the plain JIT/interpreter paths.
  }
  if (!tiered_ran_ && use_jit_) {
    JitExecutor jit(ctx_);
    auto r = jit.ExecutePartials(task.plan, task.morsel_begin, task.morsel_end);
    if (r.ok()) {
      partials = std::move(*r);
      jit_ran_ = true;
      served_tier_ = jit.last_module() != nullptr ? jit.last_module()->tier : 1;
      ir_verified_ = jit.last_module() != nullptr && jit.last_module()->ir_verified;
      morsels_run_ = task.morsel_end - task.morsel_begin;
    } else if (r.status().code() != StatusCode::kUnimplemented) {
      return r.status();
    }
    // Unimplemented: the plan uses features outside the generated fast path;
    // the interpreter produces bit-identical partials below.
  }
  if (!tiered_ran_ && !jit_ran_) {
    InterpExecutor interp(ctx_);
    PROTEUS_ASSIGN_OR_RETURN(
        partials, interp.ExecutePartials(task.plan, task.morsel_begin, task.morsel_end));
    morsels_run_ = interp.exec_stats().morsels;
  }
  std::string bytes = PartialResult::FromPartials(std::move(partials)).Serialize();
  OBS_SPAN(ctx_.trace, "exchange_send", "shard", shard_id_, "bytes",
           static_cast<int64_t>(bytes.size()));
  return transport->Send(shard_id_, std::move(bytes));
}

}  // namespace proteus
