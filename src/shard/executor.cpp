#include "src/shard/executor.h"

#include "src/jit/jit_engine.h"
#include "src/shard/partial_result.h"

namespace proteus {

ShardExecutor::ShardExecutor(int shard_id, const ExecContext& base, int num_threads,
                             bool use_jit)
    : shard_id_(shard_id), scheduler_(num_threads), ctx_(base), use_jit_(use_jit) {
  ctx_.scheduler = &scheduler_;
  ctx_.stats = nullptr;  // cold-access stats were collected by the coordinator
  // ctx_.jit_cache is inherited from `base`: every shard shares the
  // coordinator's compiled-query cache, so one plan compiles once per
  // engine, not once per shard.
}

Status ShardExecutor::Run(const ShardTask& task, ShardTransport* transport) {
  PlanPartials partials;
  jit_ran_ = false;
  if (use_jit_) {
    JitExecutor jit(ctx_);
    auto r = jit.ExecutePartials(task.plan, task.morsel_begin, task.morsel_end);
    if (r.ok()) {
      partials = std::move(*r);
      jit_ran_ = true;
      morsels_run_ = task.morsel_end - task.morsel_begin;
    } else if (r.status().code() != StatusCode::kUnimplemented) {
      return r.status();
    }
    // Unimplemented: the plan uses features outside the generated fast path;
    // the interpreter produces bit-identical partials below.
  }
  if (!jit_ran_) {
    InterpExecutor interp(ctx_);
    PROTEUS_ASSIGN_OR_RETURN(
        partials, interp.ExecutePartials(task.plan, task.morsel_begin, task.morsel_end));
    morsels_run_ = interp.exec_stats().morsels;
  }
  return transport->Send(shard_id_, PartialResult::FromPartials(std::move(partials)).Serialize());
}

}  // namespace proteus
