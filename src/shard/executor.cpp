#include "src/shard/executor.h"

#include "src/shard/partial_result.h"

namespace proteus {

ShardExecutor::ShardExecutor(int shard_id, const ExecContext& base, int num_threads)
    : shard_id_(shard_id), scheduler_(num_threads), ctx_(base) {
  ctx_.scheduler = &scheduler_;
  ctx_.stats = nullptr;  // cold-access stats were collected by the coordinator
}

Status ShardExecutor::Run(const ShardTask& task, ShardTransport* transport) {
  InterpExecutor interp(ctx_);
  PROTEUS_ASSIGN_OR_RETURN(PlanPartials partials,
                           interp.ExecutePartials(task.plan, task.morsel_begin,
                                                  task.morsel_end));
  morsels_run_ = interp.exec_stats().morsels;
  return transport->Send(shard_id_, PartialResult::FromPartials(std::move(partials)).Serialize());
}

}  // namespace proteus
