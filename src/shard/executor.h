// ShardExecutor: one shard's execution engine.
//
// A shard owns its own TaskScheduler (shards × morsel workers compose: each
// shard drives its assigned slice of the global morsel decomposition through
// its private pool), runs the plan's pipelines over that slice, and ships
// the per-morsel partial sinks to the coordinator as a serialized
// PartialResult — never as live objects. On a single node the executor reads
// the catalog/plug-ins/caches in-process; in a multi-node deployment the
// same class would run inside the remote worker with its own ExecContext.
#pragma once

#include "src/common/task_scheduler.h"
#include "src/engine/interp.h"
#include "src/jit/tiered_compiler.h"
#include "src/shard/transport.h"

namespace proteus {

/// The unit of work the coordinator hands a shard: a physical plan plus the
/// shard's slice [morsel_begin, morsel_end) of the global morsel index
/// space. Shards never receive row ranges directly — the morsel
/// decomposition is the one deterministic frame both sides agree on, which
/// is what keeps results cell-identical across shard counts.
struct ShardTask {
  OpPtr plan;
  uint64_t morsel_begin = 0;
  uint64_t morsel_end = 0;
};

class ShardExecutor {
 public:
  /// `base` supplies catalog/plug-ins/caches *and the coordinator's shared
  /// compiled-query cache* (ExecContext::jit_cache); the executor swaps in
  /// its own scheduler and drops the stats sink (the coordinator already
  /// collected cold-access stats before fanning out). With `use_jit`, the
  /// shard resolves the plan through the shared cache and runs its slice
  /// through the morsel-parameterized pipelines (JitExecutor::
  /// ExecutePartials) — N shards of one plan trigger exactly one compile,
  /// because concurrent lookups of the same signature single-flight; plans
  /// outside the generated fast path fall back to the interpreter's
  /// partials. Both engines produce bit-identical per-morsel partials, so
  /// the choice never affects the merged result.
  ShardExecutor(int shard_id, const ExecContext& base, int num_threads, bool use_jit = false);

  /// Runs the task's morsel slice and Sends the serialized partials through
  /// `transport`.
  Status Run(const ShardTask& task, ShardTransport* transport);

  int shard_id() const { return shard_id_; }
  int num_threads() const { return scheduler_.num_threads(); }
  /// Morsels this shard drove (valid after Run).
  uint64_t morsels_run() const { return morsels_run_; }
  /// Whether generated pipelines (not the interpreter) ran any of the slice.
  bool jit_ran() const { return jit_ran_; }
  /// Whether the tiered controller ran the slice (ExecContext::tiered set
  /// and the plan accepted); tiered_stats() is valid when true. Each shard
  /// swaps independently — its controller polls the one shared background
  /// compile at its own morsel boundaries.
  bool tiered_ran() const { return tiered_ran_; }
  const jit::TieredRunStats& tiered_stats() const { return tiered_stats_; }
  /// Optimization tier of the generated code that ran (part of) the slice:
  /// 0 when the interpreter ran it all, 1 or 2 otherwise (a background
  /// promotion can serve tier 2 to a plain warm shard run too).
  int served_tier() const { return served_tier_; }
  /// The generated module that ran this slice passed the IR contract
  /// verifier (meaningful only when jit_ran()).
  bool ir_verified() const { return ir_verified_; }
  /// Work-stealing counters of this shard's private morsel pool (lifetime of
  /// the executor — which is one Run, so they are per-slice numbers).
  uint64_t steals() const { return scheduler_.total_steals(); }
  uint64_t tasks_dealt() const { return scheduler_.total_dealt(); }

 private:
  int shard_id_;
  TaskScheduler scheduler_;
  ExecContext ctx_;
  bool use_jit_ = false;
  bool jit_ran_ = false;
  bool tiered_ran_ = false;
  int served_tier_ = 0;
  bool ir_verified_ = false;
  uint64_t morsels_run_ = 0;
  jit::TieredRunStats tiered_stats_;
};

}  // namespace proteus
