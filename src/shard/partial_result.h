// PartialResult: the wire format shard results cross the shard boundary in.
//
// A shard never hands the coordinator live objects — its per-morsel partial
// sinks (Reduce aggregate vectors or Nest group tables, in global morsel
// order) are encoded into a flat byte string, shipped through a
// ShardTransport, and decoded on the coordinator. The format also carries
// materialized row batches (columns + boxed rows) so future operators that
// exchange intermediate tuples — e.g. a distributed build side — reuse the
// same envelope instead of inventing another one.
//
// Layout (see src/common/wire.h for primitive encodings):
//   magic "PS" | version u8 | kind u8 | payload
//   kAggregates: u64 morsel count, then per morsel: u64 agg count + aggs
//   kGroups:     u64 morsel count, then per morsel: one GroupTable
//   kRows:       u64 column count + names, u64 row count, then per row:
//                u64 cell count + values
#pragma once

#include <string>
#include <string_view>

#include "src/engine/partial_sink.h"
#include "src/engine/result.h"

namespace proteus {

struct PartialResult {
  enum class Kind : uint8_t {
    kAggregates = 1,  ///< per-morsel Reduce accumulator vectors
    kGroups = 2,      ///< per-morsel Nest group tables
    kRows = 3,        ///< a materialized row batch
  };

  Kind kind = Kind::kAggregates;
  /// kAggregates / kGroups payload (PlanPartials.nest mirrors `kind`).
  PlanPartials partials;
  /// kRows payload.
  QueryResult rows;

  /// Wraps one shard's partial sinks (kind picked from `p.nest`).
  static PartialResult FromPartials(PlanPartials p);
  static PartialResult FromRows(QueryResult r);

  std::string Serialize() const;
  static Result<PartialResult> Deserialize(std::string_view bytes);
};

}  // namespace proteus
