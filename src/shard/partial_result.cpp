#include "src/shard/partial_result.h"

#include "src/common/wire.h"

namespace proteus {

namespace {
constexpr char kMagic0 = 'P';
constexpr char kMagic1 = 'S';
constexpr uint8_t kVersion = 1;
}  // namespace

PartialResult PartialResult::FromPartials(PlanPartials p) {
  PartialResult r;
  r.kind = p.nest ? Kind::kGroups : Kind::kAggregates;
  r.partials = std::move(p);
  return r;
}

PartialResult PartialResult::FromRows(QueryResult rows) {
  PartialResult r;
  r.kind = Kind::kRows;
  r.rows = std::move(rows);
  return r;
}

std::string PartialResult::Serialize() const {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(kMagic0));
  w.PutU8(static_cast<uint8_t>(kMagic1));
  w.PutU8(kVersion);
  w.PutU8(static_cast<uint8_t>(kind));
  switch (kind) {
    case Kind::kAggregates:
      w.PutU64(partials.agg_morsels.size());
      for (const auto& aggs : partials.agg_morsels) {
        w.PutU64(aggs.size());
        for (const Aggregator& a : aggs) a.Serialize(&w);
      }
      break;
    case Kind::kGroups:
      w.PutU64(partials.group_morsels.size());
      for (const GroupTable& t : partials.group_morsels) t.Serialize(&w);
      break;
    case Kind::kRows:
      w.PutU64(rows.columns.size());
      for (const auto& c : rows.columns) w.PutStr(c);
      w.PutU64(rows.rows.size());
      for (const auto& row : rows.rows) {
        w.PutU64(row.size());
        for (const Value& v : row) w.PutValue(v);
      }
      break;
  }
  return w.Take();
}

Result<PartialResult> PartialResult::Deserialize(std::string_view bytes) {
  WireReader r(bytes);
  PROTEUS_ASSIGN_OR_RETURN(uint8_t m0, r.U8());
  PROTEUS_ASSIGN_OR_RETURN(uint8_t m1, r.U8());
  if (m0 != static_cast<uint8_t>(kMagic0) || m1 != static_cast<uint8_t>(kMagic1)) {
    return Status::InvalidArgument("PartialResult: bad magic");
  }
  PROTEUS_ASSIGN_OR_RETURN(uint8_t version, r.U8());
  if (version != kVersion) {
    return Status::InvalidArgument("PartialResult: unsupported version " +
                                   std::to_string(version));
  }
  PROTEUS_ASSIGN_OR_RETURN(uint8_t kind_byte, r.U8());
  PartialResult out;
  switch (kind_byte) {
    case static_cast<uint8_t>(Kind::kAggregates): {
      out.kind = Kind::kAggregates;
      out.partials.nest = false;
      PROTEUS_ASSIGN_OR_RETURN(uint64_t morsels, r.U64());
      if (morsels > r.remaining()) {
        return Status::InvalidArgument("PartialResult: bad morsel count");
      }
      out.partials.agg_morsels.reserve(morsels);
      for (uint64_t m = 0; m < morsels; ++m) {
        PROTEUS_ASSIGN_OR_RETURN(uint64_t n, r.U64());
        if (n > r.remaining()) {
          return Status::InvalidArgument("PartialResult: bad aggregate count");
        }
        std::vector<Aggregator> aggs;
        aggs.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          PROTEUS_ASSIGN_OR_RETURN(Aggregator a, Aggregator::Deserialize(&r));
          aggs.push_back(std::move(a));
        }
        out.partials.agg_morsels.push_back(std::move(aggs));
      }
      break;
    }
    case static_cast<uint8_t>(Kind::kGroups): {
      out.kind = Kind::kGroups;
      out.partials.nest = true;
      PROTEUS_ASSIGN_OR_RETURN(uint64_t morsels, r.U64());
      if (morsels > r.remaining()) {
        return Status::InvalidArgument("PartialResult: bad morsel count");
      }
      out.partials.group_morsels.reserve(morsels);
      for (uint64_t m = 0; m < morsels; ++m) {
        PROTEUS_ASSIGN_OR_RETURN(GroupTable t, GroupTable::Deserialize(&r));
        out.partials.group_morsels.push_back(std::move(t));
      }
      break;
    }
    case static_cast<uint8_t>(Kind::kRows): {
      out.kind = Kind::kRows;
      PROTEUS_ASSIGN_OR_RETURN(uint64_t cols, r.U64());
      if (cols > r.remaining()) return Status::InvalidArgument("PartialResult: bad column count");
      out.rows.columns.reserve(cols);
      for (uint64_t c = 0; c < cols; ++c) {
        PROTEUS_ASSIGN_OR_RETURN(std::string name, r.Str());
        out.rows.columns.push_back(std::move(name));
      }
      PROTEUS_ASSIGN_OR_RETURN(uint64_t nrows, r.U64());
      if (nrows > r.remaining()) return Status::InvalidArgument("PartialResult: bad row count");
      out.rows.rows.reserve(nrows);
      for (uint64_t i = 0; i < nrows; ++i) {
        PROTEUS_ASSIGN_OR_RETURN(uint64_t cells, r.U64());
        if (cells > r.remaining()) {
          return Status::InvalidArgument("PartialResult: bad cell count");
        }
        std::vector<Value> row;
        row.reserve(cells);
        for (uint64_t c = 0; c < cells; ++c) {
          PROTEUS_ASSIGN_OR_RETURN(Value v, r.ReadValue());
          row.push_back(std::move(v));
        }
        out.rows.rows.push_back(std::move(row));
      }
      break;
    }
    default:
      return Status::InvalidArgument("PartialResult: unknown kind " +
                                     std::to_string(kind_byte));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("PartialResult: trailing bytes");
  return out;
}

}  // namespace proteus
