#include "src/shard/transport.h"

namespace proteus {

Status LoopbackTransport::Send(int shard_id, std::string bytes) {
  MutexLock lk(mu_);
  auto [it, inserted] = inbox_.emplace(shard_id, std::move(bytes));
  if (!inserted) {
    return Status::AlreadyExists("shard " + std::to_string(shard_id) +
                                 " already sent its partial result");
  }
  bytes_ += it->second.size();
  return Status::OK();
}

Result<std::string> LoopbackTransport::Collect(int shard_id) {
  MutexLock lk(mu_);
  auto it = inbox_.find(shard_id);
  if (it == inbox_.end()) {
    return Status::NotFound("no partial result from shard " + std::to_string(shard_id));
  }
  std::string bytes = std::move(it->second);
  inbox_.erase(it);
  return bytes;
}

uint64_t LoopbackTransport::bytes_exchanged() const {
  MutexLock lk(mu_);
  return bytes_;
}

}  // namespace proteus
