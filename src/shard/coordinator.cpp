#include "src/shard/coordinator.h"

#include <algorithm>
#include <thread>

#include "src/common/counters.h"
#include "src/common/mutex.h"
#include "src/jit/query_cache.h"
#include "src/obs/trace.h"
#include "src/shard/executor.h"
#include "src/shard/partial_result.h"

namespace proteus {

ShardCoordinator::ShardCoordinator(ExecContext base, int num_shards, int threads_per_shard,
                                   bool use_jit)
    : base_(base),
      num_shards_(std::max(1, num_shards)),
      threads_per_shard_(threads_per_shard),
      use_jit_(use_jit) {}

bool ShardCoordinator::PlanIsShardable(const OpPtr& plan) { return proteus::PlanIsShardable(plan); }

Result<QueryResult> ShardCoordinator::Run(const OpPtr& plan, ShardTransport* transport,
                                          ShardExecStats* stats) {
  if (!PlanIsShardable(plan)) {
    return Status::InvalidArgument("plan cannot be sharded");
  }
  PROTEUS_RETURN_NOT_OK(PreOpenPlanPlugins(base_, plan));

  // The global morsel decomposition is the contract between shard counts:
  // it depends only on the data and morsel_rows, and shards receive
  // contiguous index slices of it.
  InterpExecutor probe(base_);
  PROTEUS_ASSIGN_OR_RETURN(uint64_t num_morsels, probe.CountPlanMorsels(plan));
  // EvenSplit returns fewer (never empty) slices when morsels < shards:
  // the surplus shards simply don't run.
  std::vector<ScanRange> slices =
      EvenSplit(num_morsels, static_cast<uint64_t>(num_shards_));

  // Snapshot the shared compiled-query cache so the stats can report this
  // run's compile/hit deltas — the proof that N shards triggered one compile.
  jit::CompiledQueryCache::Stats cache_before;
  if (base_.jit_cache != nullptr) cache_before = base_.jit_cache->stats();

  // Fan out: one executor thread per shard, each with its own morsel pool.
  // Shard threads write only to the transport and their status slot; their
  // execution counters fold back into the coordinator thread afterwards,
  // keeping benchmark accounting aligned with non-sharded runs.
  std::vector<Status> shard_status(slices.size(), Status::OK());
  std::vector<char> shard_jit(slices.size(), 0);
  std::vector<char> shard_tiered(slices.size(), 0);
  std::vector<char> shard_verified(slices.size(), 0);
  std::vector<int> shard_tier(slices.size(), 0);
  std::vector<jit::TieredRunStats> shard_tiered_stats(slices.size());
  std::vector<uint64_t> shard_steals(slices.size(), 0);
  std::vector<uint64_t> shard_dealt(slices.size(), 0);
  ExecCounters shard_counters;
  Mutex counters_mu;
  int threads_per_shard = 1;
  {
    std::vector<std::thread> threads;
    threads.reserve(slices.size());
    for (size_t i = 0; i < slices.size(); ++i) {
      threads.emplace_back([&, i] {
        ExecCounters before = GlobalCounters();
        ShardExecutor executor(static_cast<int>(i), base_, threads_per_shard_, use_jit_);
        ShardTask task{plan, slices[i].begin, slices[i].end};
        shard_status[i] = executor.Run(task, transport);
        shard_jit[i] = executor.jit_ran() ? 1 : 0;
        shard_tiered[i] = executor.tiered_ran() ? 1 : 0;
        shard_verified[i] = executor.ir_verified() ? 1 : 0;
        shard_tier[i] = executor.served_tier();
        shard_steals[i] = executor.steals();
        shard_dealt[i] = executor.tasks_dealt();
        if (executor.tiered_ran()) shard_tiered_stats[i] = executor.tiered_stats();
        ExecCounters delta = GlobalCounters().Since(before);
        MutexLock lk(counters_mu);
        shard_counters += delta;
        threads_per_shard = executor.num_threads();
      });
    }
    for (auto& t : threads) t.join();
  }
  GlobalCounters() += shard_counters;
  for (const Status& s : shard_status) PROTEUS_RETURN_NOT_OK(s);

  // Collect in shard order — slice order is global morsel order, so
  // appending shard partials reconstructs the exact fold sequence the
  // single-node morsel executor uses.
  const OpPtr& top = plan->child(0);
  const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
  PlanPartials all;
  all.nest = nest != nullptr;
  const double collect_start_us = base_.trace != nullptr ? base_.trace->NowUs() : 0;
  for (size_t i = 0; i < slices.size(); ++i) {
    PROTEUS_ASSIGN_OR_RETURN(std::string bytes, transport->Collect(static_cast<int>(i)));
    PROTEUS_ASSIGN_OR_RETURN(PartialResult partial, PartialResult::Deserialize(bytes));
    const PartialResult::Kind expected =
        nest != nullptr ? PartialResult::Kind::kGroups : PartialResult::Kind::kAggregates;
    if (partial.kind != expected) {
      return Status::Internal("shard " + std::to_string(i) + " sent mismatched partial kind");
    }
    if (partial.partials.num_morsels() != slices[i].size()) {
      return Status::Internal("shard " + std::to_string(i) + " sent " +
                              std::to_string(partial.partials.num_morsels()) +
                              " morsel partials, expected " + std::to_string(slices[i].size()));
    }
    // Validate against the plan before any merge: a wire-valid payload
    // whose aggregate vectors don't match the plan's outputs would index
    // out of bounds in the fold (arity) or land in the wrong Final() branch
    // (monoid). The wire format is the trust boundary — a socket transport
    // hands us whatever the peer sent.
    const auto& outputs = nest != nullptr ? nest->outputs() : plan->outputs();
    auto check_aggs = [&](const std::vector<Aggregator>& aggs) -> Status {
      if (aggs.size() != outputs.size()) {
        return Status::Internal("shard " + std::to_string(i) +
                                " sent an aggregate vector of arity " +
                                std::to_string(aggs.size()) + ", expected " +
                                std::to_string(outputs.size()));
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        if (aggs[a].monoid() != outputs[a].monoid) {
          return Status::Internal("shard " + std::to_string(i) +
                                  " sent monoid " + MonoidName(aggs[a].monoid()) +
                                  " for output " + std::to_string(a) + ", expected " +
                                  MonoidName(outputs[a].monoid));
        }
      }
      return Status::OK();
    };
    for (const auto& aggs : partial.partials.agg_morsels) {
      PROTEUS_RETURN_NOT_OK(check_aggs(aggs));
    }
    for (const auto& table : partial.partials.group_morsels) {
      for (const auto& aggs : table.aggs) {
        PROTEUS_RETURN_NOT_OK(check_aggs(aggs));
      }
    }
    all.Append(std::move(partial.partials));
  }
  if (base_.trace != nullptr) {
    base_.trace->Emit("exchange_collect", collect_start_us,
                      base_.trace->NowUs() - collect_start_us, "shards",
                      static_cast<int64_t>(slices.size()));
  }

  stats->shards_used = static_cast<int>(slices.size());
  stats->bytes_exchanged = transport->bytes_exchanged();
  stats->threads_per_shard = threads_per_shard;
  stats->morsels = num_morsels;
  stats->jit_shards = 0;
  for (char j : shard_jit) stats->jit_shards += j;
  // Verified means *every* shard that ran generated code ran a verified
  // module — one unverified shard (e.g. a cached pre-verifier module) makes
  // the whole query unverified.
  stats->ir_verified = stats->jit_shards > 0;
  for (size_t i = 0; i < slices.size(); ++i) {
    if (shard_jit[i] != 0 && shard_verified[i] == 0) stats->ir_verified = false;
  }
  for (size_t i = 0; i < slices.size(); ++i) {
    stats->steals += shard_steals[i];
    stats->tasks_dealt += shard_dealt[i];
    stats->compile_tier = std::max(stats->compile_tier, shard_tier[i]);
    if (shard_tiered[i] == 0) continue;
    const jit::TieredRunStats& ts = shard_tiered_stats[i];
    stats->tiered_shards++;
    stats->morsels_interpreted += ts.morsels_interpreted;
    stats->morsels_jit += ts.morsels_jit;
    stats->swap_ms = std::max(stats->swap_ms, ts.swap_ms);
    stats->first_morsel_ms = std::max(stats->first_morsel_ms, ts.first_morsel_ms);
  }
  if (base_.jit_cache != nullptr) {
    jit::CompiledQueryCache::Stats after = base_.jit_cache->stats();
    stats->jit_compiles = after.compiles - cache_before.compiles;
    stats->jit_cache_hits = after.hits - cache_before.hits;
    stats->jit_compile_ms = after.compile_ms_total - cache_before.compile_ms_total;
  }
  return FinalizePlanPartials(*plan, nest, std::move(all), base_.trace);
}

}  // namespace proteus
