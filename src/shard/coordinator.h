// ShardCoordinator: partitioned scale-out execution over the Split() API.
//
// The plug-in Split() range API (PR 1) was designed so scan ranges can live
// on different machines; the coordinator is the next scaling rung after
// intra-node morsel parallelism. It decomposes an optimized physical plan's
// driver scan into the *global* morsel sequence (the same deterministic
// decomposition the single-node morsel executor uses), deals contiguous
// morsel slices to N ShardExecutors, and folds the per-morsel partials they
// ship back — through the serialized PartialResult wire format — in shard
// order, i.e. in global morsel order. Because every shard count folds the
// exact same per-morsel partials in the exact same order, query results are
// cell-identical (float bits included) for every num_shards by construction.
//
// Single-node today: shards run as threads against a LoopbackTransport. The
// boundary is already a real serialization boundary, so a socket transport
// plus remote executors is a drop-in, not a rewrite.
#pragma once

#include "src/engine/interp.h"
#include "src/shard/transport.h"

namespace proteus {

/// How a sharded query ran (surfaced as QueryTelemetry).
struct ShardExecStats {
  int shards_used = 0;          ///< executors that received a morsel slice
  uint64_t bytes_exchanged = 0; ///< serialized partial bytes through the transport
  int threads_per_shard = 1;    ///< morsel workers inside each shard
  uint64_t morsels = 0;         ///< global morsel count across all shards
  int jit_shards = 0;           ///< shards that ran generated (JIT) pipelines
  /// Compiled-query cache activity of this run (deltas of the shared
  /// cache's counters across the shard fan-out). Every ShardExecutor gets
  /// the coordinator's ExecContext — one cache for all shards — so for a
  /// cacheable plan jit_compiles is exactly 1 on a cold run (the other
  /// shards single-flight onto that compile: jit_cache_hits == shards - 1)
  /// and 0 on a warm one (jit_cache_hits == shards).
  uint64_t jit_compiles = 0;
  uint64_t jit_cache_hits = 0;
  double jit_compile_ms = 0;  ///< wall ms shards spent compiling this run
  /// Tiered execution across the fan-out (zeros when tiered is off): shards
  /// that ran the tiered controller, summed interpreter/generated morsel
  /// counts, the highest tier any shard ran, and the slowest shard's swap /
  /// first-chunk latencies. Shards swap independently, so mixed states
  /// (one shard swapped, another finished on the interpreter) are normal.
  int tiered_shards = 0;
  uint64_t morsels_interpreted = 0;
  uint64_t morsels_jit = 0;
  int compile_tier = 0;
  double swap_ms = 0;
  double first_morsel_ms = 0;
  /// Every shard that ran generated code ran IR-verified modules
  /// (src/jit/ir_verifier.h). False when no shard ran JIT or when
  /// verification is off (EngineOptions::verify_ir).
  bool ir_verified = false;
  /// Work-stealing counters summed over every shard's private morsel pool
  /// (each ShardExecutor owns its scheduler, so these are per-run numbers).
  uint64_t tasks_dealt = 0;
  uint64_t steals = 0;
};

class ShardCoordinator {
 public:
  /// `base` supplies catalog/plug-ins/stats/caches (its scheduler is not
  /// used — each shard owns one). `num_shards` caps the fan-out; fewer run
  /// when the plan yields fewer morsels. `threads_per_shard` sizes each
  /// shard's morsel pool (shards × workers compose). With `use_jit`, shards
  /// run morsel-parameterized JIT pipelines where the plan supports them
  /// (stats->jit_shards reports how many did) — partials are bit-identical
  /// either way.
  ShardCoordinator(ExecContext base, int num_shards, int threads_per_shard,
                   bool use_jit = false);

  /// True when `plan` decomposes into independent shards (delegates to
  /// PlanIsShardable: morsel-parallelizable, no outer joins in the chain).
  static bool PlanIsShardable(const OpPtr& plan);

  /// Executes `plan` (root = Reduce) across shards and merges their partial
  /// results deterministically in shard order.
  Result<QueryResult> Run(const OpPtr& plan, ShardTransport* transport,
                          ShardExecStats* stats);

 private:
  ExecContext base_;
  int num_shards_;
  int threads_per_shard_;
  bool use_jit_;
};

}  // namespace proteus
