// ShardTransport: the byte-level channel between shard executors and the
// coordinator.
//
// The interface deals only in opaque byte strings (serialized PartialResult
// payloads), so shard results never share pointers with the coordinator:
// everything that crosses is copied through the encoding. LoopbackTransport
// is the in-process implementation used by single-node sharded execution; a
// socket transport for multi-node deployments implements the same two calls
// and drops in (ROADMAP follow-on) — the coordinator and executors are
// already written against the boundary.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/status.h"

namespace proteus {

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Shard side: submits shard `shard_id`'s serialized PartialResult. Each
  /// shard reports exactly once per query.
  virtual Status Send(int shard_id, std::string bytes) = 0;

  /// Coordinator side: takes shard `shard_id`'s payload out of the
  /// transport (NotFound if the shard has not reported).
  virtual Result<std::string> Collect(int shard_id) = 0;

  /// Total payload bytes that crossed the boundary (telemetry).
  virtual uint64_t bytes_exchanged() const = 0;
};

/// In-process transport: shard worker threads Send concurrently; the
/// coordinator Collects after joining them.
class LoopbackTransport final : public ShardTransport {
 public:
  Status Send(int shard_id, std::string bytes) override EXCLUDES(mu_);
  Result<std::string> Collect(int shard_id) override EXCLUDES(mu_);
  uint64_t bytes_exchanged() const override EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<int, std::string> inbox_ GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace proteus
