#include "src/common/task_scheduler.h"

#include <algorithm>
#include <atomic>

namespace proteus {

namespace {
/// True while the current thread is executing tasks of some batch; nested
/// ParallelFor calls detect this and run inline instead of deadlocking.
thread_local bool t_in_batch = false;
}  // namespace

struct TaskScheduler::Batch {
  explicit Batch(int workers) : queues(workers), queue_mus(workers) {}

  std::vector<std::deque<uint64_t>> queues;
  std::vector<std::mutex> queue_mus;
  const std::function<Status(uint64_t, int)>* body = nullptr;

  std::atomic<uint64_t> unfinished{0};  ///< tasks not yet completed
  std::atomic<bool> cancelled{false};
  std::atomic<uint64_t> steals{0};

  std::mutex err_mu;
  Status error = Status::OK();
  uint64_t error_task = UINT64_MAX;  // lowest failing index wins

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::atomic<int> active_workers{0};  ///< pool workers still inside RunBatch

  ExecCounters pool_counters;  ///< folded from pool workers (under err_mu)
};

TaskScheduler::TaskScheduler(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(1, num_threads);
  threads_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskScheduler::WorkerLoop(int worker_id) {
  uint64_t seen_seq = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || (batch_ != nullptr && batch_seq_ != seen_seq); });
      if (stop_) return;
      batch = batch_;
      seen_seq = batch_seq_;
    }
    batch->active_workers.fetch_add(1, std::memory_order_relaxed);
    // Pool workers account their counters into the batch; the caller folds
    // them into its own thread-local counters when the batch completes.
    ExecCounters& local = GlobalCounters();
    ExecCounters before = local;
    t_in_batch = true;
    RunBatch(batch.get(), worker_id);
    t_in_batch = false;
    ExecCounters delta = local.Since(before);
    {
      std::lock_guard<std::mutex> lk(batch->err_mu);
      batch->pool_counters += delta;
    }
    if (batch->active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        batch->unfinished.load(std::memory_order_acquire) == 0) {
      std::lock_guard<std::mutex> lk(batch->done_mu);  // pairs with the waiter
      batch->done_cv.notify_one();
    }
  }
}

void TaskScheduler::RunBatch(Batch* batch, int worker_id) {
  const int n = static_cast<int>(batch->queues.size());
  while (batch->unfinished.load(std::memory_order_acquire) > 0) {
    uint64_t task = UINT64_MAX;
    bool stolen = false;
    {
      std::lock_guard<std::mutex> lk(batch->queue_mus[worker_id]);
      if (!batch->queues[worker_id].empty()) {
        task = batch->queues[worker_id].front();
        batch->queues[worker_id].pop_front();
      }
    }
    if (task == UINT64_MAX) {
      // Steal from the back of the first non-empty victim deque.
      for (int k = 1; k < n && task == UINT64_MAX; ++k) {
        int victim = (worker_id + k) % n;
        std::lock_guard<std::mutex> lk(batch->queue_mus[victim]);
        if (!batch->queues[victim].empty()) {
          task = batch->queues[victim].back();
          batch->queues[victim].pop_back();
          stolen = true;
        }
      }
    }
    if (task == UINT64_MAX) return;  // fully drained (some tasks may still run elsewhere)
    if (stolen) batch->steals.fetch_add(1, std::memory_order_relaxed);
    if (!batch->cancelled.load(std::memory_order_acquire)) {
      Status s = (*batch->body)(task, worker_id);
      if (!s.ok()) {
        batch->cancelled.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lk(batch->err_mu);
        if (task < batch->error_task) {
          batch->error_task = task;
          batch->error = s;
        }
      }
    }
    if (batch->unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(batch->done_mu);  // pairs with the waiter
      batch->done_cv.notify_one();
    }
  }
}

Status TaskScheduler::ParallelFor(uint64_t num_tasks,
                                  const std::function<Status(uint64_t, int)>& body) {
  if (num_tasks == 0) return Status::OK();
  total_dealt_.fetch_add(num_tasks, std::memory_order_relaxed);
  if (t_in_batch || num_threads_ == 1) {
    // Inline path: nested call from inside a task, or a single-worker pool.
    for (uint64_t t = 0; t < num_tasks; ++t) {
      PROTEUS_RETURN_NOT_OK(body(t, 0));
    }
    return Status::OK();
  }

  std::lock_guard<std::mutex> submit_lk(submit_mu_);
  auto batch = std::make_shared<Batch>(num_threads_);
  batch->body = &body;
  batch->unfinished.store(num_tasks, std::memory_order_relaxed);
  // Deal morsels round-robin so neighbouring ranges land on different
  // workers' deques; stealing rebalances skew.
  for (uint64_t t = 0; t < num_tasks; ++t) {
    batch->queues[t % num_threads_].push_back(t);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();

  // The caller participates as worker 0.
  t_in_batch = true;
  RunBatch(batch.get(), 0);
  t_in_batch = false;

  {
    std::unique_lock<std::mutex> lk(batch->done_mu);
    batch->done_cv.wait(lk, [&] {
      return batch->unfinished.load(std::memory_order_acquire) == 0 &&
             batch->active_workers.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = nullptr;
  }
  {
    // err_mu also guards pool_counters; a late-waking worker may still fold
    // in its (necessarily empty) delta after the done-wait released us.
    std::lock_guard<std::mutex> lk(batch->err_mu);
    GlobalCounters() += batch->pool_counters;
  }
  total_steals_.fetch_add(batch->steals.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  return batch->error;
}

}  // namespace proteus
