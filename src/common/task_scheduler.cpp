#include "src/common/task_scheduler.h"

#include <algorithm>
#include <atomic>

namespace proteus {

namespace {
/// Attribution target installed by StatsScope (null = unattributed).
thread_local TaskScheduler::BatchStats* t_batch_stats = nullptr;
}  // namespace

/// The batch whose task the current thread is executing (null = none).
/// Nested ParallelFor calls detect this and run inline instead of
/// deadlocking — and credit their dealt count to this batch, so per-query
/// attribution stays exact even when a task body fans out again on a pool
/// worker thread (where the submitting query's StatsScope is not installed).
thread_local TaskScheduler::Batch* t_cur_batch = nullptr;

TaskScheduler::StatsScope::StatsScope(BatchStats* stats) : prev_(t_batch_stats) {
  t_batch_stats = stats;
}

TaskScheduler::StatsScope::~StatsScope() { t_batch_stats = prev_; }

struct TaskScheduler::Batch {
  explicit Batch(int workers) : queues(workers), queue_mus(workers) {}

  /// queues[i] is guarded by queue_mus[i] — an element-wise association the
  /// thread-safety analysis cannot express (GUARDED_BY needs a named
  /// capability, not an indexed one), so the deques stay unannotated and
  /// every access in TryRunOne takes the matching MutexLock explicitly.
  std::vector<std::deque<uint64_t>> queues;
  std::vector<Mutex> queue_mus;
  const std::function<Status(uint64_t, int)>* body = nullptr;

  std::atomic<uint64_t> unfinished{0};  ///< tasks not yet completed
  std::atomic<bool> cancelled{false};
  std::atomic<uint64_t> steals{0};
  /// Tasks dealt by nested ParallelFor calls made from inside this batch's
  /// task bodies on pool worker threads. Folded into the submitter's
  /// StatsScope when the batch completes.
  std::atomic<uint64_t> nested_dealt{0};

  /// Guards error/error_task and pool_counters. Pool workers fold their
  /// per-task counter delta here BEFORE decrementing `unfinished`, so the
  /// caller's acquire-load of unfinished == 0 plus taking this mutex sees
  /// every fold.
  Mutex err_mu;
  Status error GUARDED_BY(err_mu) = Status::OK();
  uint64_t error_task GUARDED_BY(err_mu) = UINT64_MAX;  // lowest failing index wins

  Mutex done_mu;
  CondVar done_cv;

  ExecCounters pool_counters GUARDED_BY(err_mu);  ///< folded from pool workers
};

TaskScheduler::TaskScheduler(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(1, num_threads);
  threads_.reserve(num_threads_ - 1);
  for (int i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void TaskScheduler::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  size_t rr = 0;  // rotates which active batch this worker visits first
  while (true) {
    std::vector<std::shared_ptr<Batch>> batches;
    {
      MutexLock lk(mu_);
      while (!stop_ && work_epoch_ == seen_epoch) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_epoch = work_epoch_;
      batches = active_;
    }
    // Sweep all active batches, claiming ONE task per batch per visit —
    // morsels of concurrent queries interleave instead of running one
    // query's whole batch to completion first.
    bool any = true;
    while (any && !batches.empty()) {
      any = false;
      for (size_t k = 0; k < batches.size(); ++k) {
        Batch* b = batches[(rr + k) % batches.size()].get();
        if (TryRunOne(b, worker_id, /*fold_counters=*/true)) any = true;
      }
      ++rr;
      {
        // Refresh so batches submitted mid-sweep join it and completed ones
        // drop out; also re-arm the epoch so the outer wait doesn't miss a
        // submission that raced with this refresh.
        MutexLock lk(mu_);
        seen_epoch = work_epoch_;
        batches = active_;
        if (stop_) return;
      }
    }
  }
}

bool TaskScheduler::TryRunOne(Batch* batch, int worker_id, bool fold_counters) {
  if (batch->unfinished.load(std::memory_order_acquire) == 0) return false;
  const int n = static_cast<int>(batch->queues.size());
  uint64_t task = UINT64_MAX;
  bool stolen = false;
  {
    MutexLock lk(batch->queue_mus[worker_id]);
    if (!batch->queues[worker_id].empty()) {
      task = batch->queues[worker_id].front();
      batch->queues[worker_id].pop_front();
    }
  }
  if (task == UINT64_MAX) {
    // Steal from the back of the first non-empty victim deque.
    for (int k = 1; k < n && task == UINT64_MAX; ++k) {
      int victim = (worker_id + k) % n;
      MutexLock lk(batch->queue_mus[victim]);
      if (!batch->queues[victim].empty()) {
        task = batch->queues[victim].back();
        batch->queues[victim].pop_back();
        stolen = true;
      }
    }
  }
  if (task == UINT64_MAX) return false;
  if (stolen) batch->steals.fetch_add(1, std::memory_order_relaxed);

  ExecCounters& local = GlobalCounters();
  ExecCounters before = local;
  if (!batch->cancelled.load(std::memory_order_acquire)) {
    Batch* const was_batch = t_cur_batch;
    t_cur_batch = batch;
    Status s = (*batch->body)(task, worker_id);
    t_cur_batch = was_batch;
    if (!s.ok()) {
      batch->cancelled.store(true, std::memory_order_release);
      MutexLock lk(batch->err_mu);
      if (task < batch->error_task) {
        batch->error_task = task;
        batch->error = s;
      }
    }
  }
  if (fold_counters) {
    ExecCounters delta = local.Since(before);
    MutexLock lk(batch->err_mu);
    batch->pool_counters += delta;
  }
  if (batch->unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lk(batch->done_mu);  // pairs with the waiter
    batch->done_cv.NotifyAll();
  }
  return true;
}

Status TaskScheduler::ParallelFor(uint64_t num_tasks,
                                  const std::function<Status(uint64_t, int)>& body) {
  if (num_tasks == 0) return Status::OK();
  total_dealt_.fetch_add(num_tasks, std::memory_order_relaxed);
  if (t_cur_batch != nullptr || num_threads_ == 1) {
    // Inline path: nested call from inside a task, or a single-worker pool.
    // Nothing can be stolen here, so only `dealt` is attributed — to this
    // thread's scope when one is installed (the submitting caller), else to
    // the enclosing batch, whose submitter folds it in on completion (a pool
    // worker fanning out inside another query's task body).
    if (t_batch_stats != nullptr) {
      t_batch_stats->dealt += num_tasks;
    } else if (t_cur_batch != nullptr) {
      t_cur_batch->nested_dealt.fetch_add(num_tasks, std::memory_order_relaxed);
    }
    for (uint64_t t = 0; t < num_tasks; ++t) {
      PROTEUS_RETURN_NOT_OK(body(t, 0));
    }
    return Status::OK();
  }
  if (t_batch_stats != nullptr) t_batch_stats->dealt += num_tasks;

  auto batch = std::make_shared<Batch>(num_threads_);
  batch->body = &body;
  batch->unfinished.store(num_tasks, std::memory_order_relaxed);
  // Deal morsels round-robin so neighbouring ranges land on different
  // workers' deques; stealing rebalances skew.
  for (uint64_t t = 0; t < num_tasks; ++t) {
    batch->queues[t % num_threads_].push_back(t);
  }
  {
    MutexLock lk(mu_);
    active_.push_back(batch);
    ++work_epoch_;
  }
  work_cv_.NotifyAll();

  // The caller participates as worker 0 — of ITS OWN batch only. It never
  // takes tasks of a concurrent caller's batch, so one query's latency is
  // not inflated by executing another query's morsels on its thread.
  while (TryRunOne(batch.get(), 0, /*fold_counters=*/false)) {
  }

  {
    MutexLock lk(batch->done_mu);
    while (batch->unfinished.load(std::memory_order_acquire) != 0) {
      batch->done_cv.Wait(batch->done_mu);
    }
  }
  {
    MutexLock lk(mu_);
    for (auto it = active_.begin(); it != active_.end(); ++it) {
      if (it->get() == batch.get()) {
        active_.erase(it);
        break;
      }
    }
  }
  Status batch_error;
  {
    // err_mu also guards pool_counters and the error slot; every fold
    // happened before the unfinished count hit zero, so this read sees all
    // of them.
    MutexLock lk(batch->err_mu);
    GlobalCounters() += batch->pool_counters;
    batch_error = batch->error;
  }
  const uint64_t batch_steals = batch->steals.load(std::memory_order_relaxed);
  total_steals_.fetch_add(batch_steals, std::memory_order_relaxed);
  if (t_batch_stats != nullptr) {
    t_batch_stats->steals += batch_steals;
    // Claim the fan-outs this batch's task bodies made on pool workers: they
    // belong to this query but ran where its scope was not installed.
    t_batch_stats->dealt += batch->nested_dealt.load(std::memory_order_relaxed);
  }
  return batch_error;
}

}  // namespace proteus
