// Bump-pointer arena allocator used for cache blocks and per-query scratch
// memory. Mirrors the paper's "memory arena" that pins caching structures
// (§4, Memory Manager).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace proteus {

/// A growable bump allocator. Individual allocations are never freed; the
/// arena releases all memory at once on destruction or Reset().
class Arena {
 public:
  explicit Arena(size_t block_size = 1 << 20) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` bytes aligned to `align` (power of two).
  void* Allocate(size_t n, size_t align = 8) {
    size_t pos = (pos_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || pos + n > cur_size_) {
      NewBlock(n);
      pos = 0;
    }
    void* p = blocks_.back().get() + pos;
    pos_ = pos + n;
    return p;
  }

  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
  }

  /// Total bytes handed out (upper bound on live data).
  size_t bytes_allocated() const { return total_; }

  /// Drops all blocks.
  void Reset() {
    blocks_.clear();
    pos_ = cur_size_ = total_ = 0;
  }

 private:
  void NewBlock(size_t at_least) {
    size_t sz = at_least > block_size_ ? at_least : block_size_;
    blocks_.push_back(std::make_unique<uint8_t[]>(sz));
    cur_size_ = sz;
    pos_ = 0;
    total_ += sz;
  }

  size_t block_size_;
  size_t pos_ = 0;
  size_t cur_size_ = 0;
  size_t total_ = 0;
  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
};

}  // namespace proteus
