#include "src/common/wire.h"

#include <cstring>

namespace proteus {

namespace {

// Value type tags (stable across versions of the PartialResult format).
enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagFloat = 2,
  kTagBool = 3,
  kTagString = 4,
  kTagRecord = 5,
  kTagList = 6,
};

}  // namespace

void WireWriter::PutU64(uint64_t v) {
  char raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  buf_.append(raw, sizeof(v));
}

void WireWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutStr(std::string_view s) {
  PutU64(s.size());
  buf_.append(s.data(), s.size());
}

void WireWriter::PutValue(const Value& v) {
  if (v.is_null()) {
    PutU8(kTagNull);
  } else if (v.is_int()) {
    PutU8(kTagInt);
    PutI64(v.i());
  } else if (v.is_float()) {
    PutU8(kTagFloat);
    PutF64(v.f());
  } else if (v.is_bool()) {
    PutU8(kTagBool);
    PutBool(v.b());
  } else if (v.is_string()) {
    PutU8(kTagString);
    PutStr(v.s());
  } else if (v.is_record()) {
    PutU8(kTagRecord);
    const RecordValue& r = v.record();
    PutU64(r.names.size());
    for (size_t i = 0; i < r.names.size(); ++i) {
      PutStr(r.names[i]);
      PutValue(r.values[i]);
    }
  } else {
    PutU8(kTagList);
    const ValueList& l = v.list();
    PutU64(l.size());
    for (const Value& item : l) PutValue(item);
  }
}

Status WireReader::Need(size_t n) const {
  if (bytes_.size() - pos_ < n) {
    return Status::InvalidArgument("wire: truncated payload (need " + std::to_string(n) +
                                   " bytes, have " + std::to_string(bytes_.size() - pos_) +
                                   ")");
  }
  return Status::OK();
}

Result<uint8_t> WireReader::U8() {
  PROTEUS_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(bytes_[pos_++]);
}

Result<bool> WireReader::Bool() {
  PROTEUS_ASSIGN_OR_RETURN(uint8_t v, U8());
  if (v > 1) return Status::InvalidArgument("wire: bad bool byte");
  return v == 1;
}

Result<uint64_t> WireReader::U64() {
  PROTEUS_RETURN_NOT_OK(Need(sizeof(uint64_t)));
  uint64_t v;
  std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<int64_t> WireReader::I64() {
  PROTEUS_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::F64() {
  PROTEUS_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::Str() {
  PROTEUS_ASSIGN_OR_RETURN(uint64_t n, U64());
  PROTEUS_RETURN_NOT_OK(Need(n));
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

Result<Value> WireReader::ReadValue() { return ReadValueAtDepth(0); }

Result<Value> WireReader::ReadValueAtDepth(int depth) {
  if (depth > kMaxValueDepth) {
    return Status::InvalidArgument("wire: value nesting exceeds depth limit");
  }
  PROTEUS_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagInt: {
      PROTEUS_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Int(v);
    }
    case kTagFloat: {
      PROTEUS_ASSIGN_OR_RETURN(double v, F64());
      return Value::Float(v);
    }
    case kTagBool: {
      PROTEUS_ASSIGN_OR_RETURN(bool v, Bool());
      return Value::Boolean(v);
    }
    case kTagString: {
      PROTEUS_ASSIGN_OR_RETURN(std::string v, Str());
      return Value::Str(std::move(v));
    }
    case kTagRecord: {
      PROTEUS_ASSIGN_OR_RETURN(uint64_t n, U64());
      // Every field costs ≥ 9 bytes (name length prefix + value tag):
      // reject counts the remaining payload cannot possibly hold.
      if (n > remaining() / 9) return Status::InvalidArgument("wire: bad record size");
      std::vector<std::string> names;
      std::vector<Value> values;
      names.reserve(n);
      values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        PROTEUS_ASSIGN_OR_RETURN(std::string name, Str());
        PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValueAtDepth(depth + 1));
        names.push_back(std::move(name));
        values.push_back(std::move(v));
      }
      return Value::MakeRecord(std::move(names), std::move(values));
    }
    case kTagList: {
      PROTEUS_ASSIGN_OR_RETURN(uint64_t n, U64());
      if (n > remaining()) return Status::InvalidArgument("wire: bad list size");
      ValueList items;
      items.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValueAtDepth(depth + 1));
        items.push_back(std::move(v));
      }
      return Value::MakeList(std::move(items));
    }
    default:
      return Status::InvalidArgument("wire: unknown value tag " + std::to_string(tag));
  }
}

}  // namespace proteus
