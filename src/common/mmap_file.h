// Memory-mapped read-only file. The Proteus Memory Manager memory-maps every
// input file and delegates paging to the OS virtual memory manager (paper §4).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace proteus {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only into the address space.
  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }
  const std::string& path() const { return path_; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace proteus
