#include "src/common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace proteus {

MmapFile::~MmapFile() {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr && size_ > 0) ::munmap(const_cast<char*>(data_), size_);
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat(" + path + "): " + std::strerror(errno));
  }
  MmapFile f;
  f.size_ = static_cast<size_t>(st.st_size);
  f.path_ = path;
  if (f.size_ > 0) {
    void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("mmap(" + path + "): " + std::strerror(errno));
    }
    f.data_ = static_cast<const char*>(p);
  }
  ::close(fd);
  return f;
}

}  // namespace proteus
