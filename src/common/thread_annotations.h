// Clang thread-safety-analysis attribute macros (no-ops elsewhere).
//
// These wrap the `-Wthread-safety` attributes so the locking discipline of
// every concurrent subsystem is stated in the code and machine-checked on
// every clang build (the CI `static-analysis` job compiles with
// -Werror=thread-safety). GCC and MSVC see empty macros: the annotations
// cost nothing at runtime and nothing on non-clang toolchains.
//
// Conventions (see docs/STATIC_ANALYSIS.md):
//  - Data members protected by a lock get GUARDED_BY(mu_).
//  - Private helpers called with the lock already held get REQUIRES(mu_)
//    and a `Locked` name suffix.
//  - Public entry points that take the lock themselves get EXCLUDES(mu_)
//    so a re-entrant call from a locked context is a compile error, not a
//    deadlock.
//  - NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a comment
//    explaining why the analysis cannot see the invariant.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PROTEUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PROTEUS_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) PROTEUS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY PROTEUS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) PROTEUS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) PROTEUS_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PROTEUS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PROTEUS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) PROTEUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) PROTEUS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PROTEUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) PROTEUS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PROTEUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) PROTEUS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PROTEUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) PROTEUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PROTEUS_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) PROTEUS_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS PROTEUS_THREAD_ANNOTATION(no_thread_safety_analysis)
