#include "src/common/counters.h"

namespace proteus {

ExecCounters& GlobalCounters() {
  static thread_local ExecCounters counters;
  return counters;
}

}  // namespace proteus
