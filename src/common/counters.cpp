#include "src/common/counters.h"

namespace proteus {

ExecCounters& GlobalCounters() {
  static ExecCounters counters;
  return counters;
}

}  // namespace proteus
