// Software execution counters. The paper reports hardware counters (dTLB /
// LLC misses, branches); without PMU access we track the software analogues
// that drive those numbers: bytes materialized into intermediates, branch
// evaluations in the interpreted path, tuples flowing through operators, and
// raw-format field accesses. Benchmarks report these alongside wall time.
#pragma once

#include <cstdint>

namespace proteus {

struct ExecCounters {
  uint64_t tuples_scanned = 0;
  uint64_t tuples_output = 0;
  uint64_t bytes_materialized = 0;   ///< intermediate results (columnar engines pay this)
  uint64_t branch_evals = 0;         ///< interpreter dispatch / predicate branches
  uint64_t raw_field_accesses = 0;   ///< accesses that touched a raw CSV/JSON token
  uint64_t cache_field_accesses = 0; ///< accesses served from Proteus caches
  uint64_t virtual_calls = 0;        ///< Volcano getNext-style calls (interpretation overhead)

  void Reset() { *this = ExecCounters{}; }

  ExecCounters& operator+=(const ExecCounters& o) {
    tuples_scanned += o.tuples_scanned;
    tuples_output += o.tuples_output;
    bytes_materialized += o.bytes_materialized;
    branch_evals += o.branch_evals;
    raw_field_accesses += o.raw_field_accesses;
    cache_field_accesses += o.cache_field_accesses;
    virtual_calls += o.virtual_calls;
    return *this;
  }
};

/// Process-wide counters for the currently running query. Benchmarks reset
/// before a query and read after; single-threaded by design (the paper's
/// evaluation runs all systems single-threaded).
ExecCounters& GlobalCounters();

}  // namespace proteus
