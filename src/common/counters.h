// Software execution counters. The paper reports hardware counters (dTLB /
// LLC misses, branches); without PMU access we track the software analogues
// that drive those numbers: bytes materialized into intermediates, branch
// evaluations in the interpreted path, tuples flowing through operators, and
// raw-format field accesses. Benchmarks report these alongside wall time.
#pragma once

#include <cstdint>

namespace proteus {

/// Field list expanded by operator+= and Since(), keeping parallel-run
/// fold-back (TaskScheduler worker deltas) in sync with serial accounting.
/// When adding a counter: add the field below, add it here, and bump the
/// static_assert — it trips the build if the two drift apart.
#define PROTEUS_EXEC_COUNTER_FIELDS(X) \
  X(tuples_scanned)                    \
  X(tuples_output)                     \
  X(bytes_materialized)                \
  X(branch_evals)                      \
  X(raw_field_accesses)                \
  X(cache_field_accesses)              \
  X(virtual_calls)

struct ExecCounters {
  uint64_t tuples_scanned = 0;
  uint64_t tuples_output = 0;
  uint64_t bytes_materialized = 0;   ///< intermediate results (columnar engines pay this)
  uint64_t branch_evals = 0;         ///< interpreter dispatch / predicate branches
  uint64_t raw_field_accesses = 0;   ///< accesses that touched a raw CSV/JSON token
  uint64_t cache_field_accesses = 0; ///< accesses served from Proteus caches
  uint64_t virtual_calls = 0;        ///< Volcano getNext-style calls (interpretation overhead)

  void Reset() { *this = ExecCounters{}; }

  ExecCounters& operator+=(const ExecCounters& o) {
#define PROTEUS_ADD_FIELD(f) f += o.f;
    PROTEUS_EXEC_COUNTER_FIELDS(PROTEUS_ADD_FIELD)
#undef PROTEUS_ADD_FIELD
    return *this;
  }

  /// Field-wise delta against an earlier snapshot of the same counters.
  ExecCounters Since(const ExecCounters& base) const {
    ExecCounters d;
#define PROTEUS_SUB_FIELD(f) d.f = f - base.f;
    PROTEUS_EXEC_COUNTER_FIELDS(PROTEUS_SUB_FIELD)
#undef PROTEUS_SUB_FIELD
    return d;
  }
};

static_assert(sizeof(ExecCounters) == 7 * sizeof(uint64_t),
              "ExecCounters field added? Update PROTEUS_EXEC_COUNTER_FIELDS "
              "and this count together.");

/// Per-thread counters for the currently running query. Benchmarks reset
/// before a query and read after, on the thread that runs the query; the
/// TaskScheduler folds pool workers' counters back into the submitting
/// thread at the end of every parallel batch, so totals match a serial run.
ExecCounters& GlobalCounters();

}  // namespace proteus
