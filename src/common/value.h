// Runtime Value: the boxed representation used by the interpreter engine,
// the plug-in boundary, and test oracles. The JIT engine never boxes — it
// keeps field values in LLVM virtual registers (the paper's "virtual
// buffers") — but both engines must agree on these semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/types/type.h"

namespace proteus {

class Value;
using ValueList = std::vector<Value>;

/// An ordered set of named field values. Field order is significant and
/// matches the record's Type.
struct RecordValue {
  std::vector<std::string> names;
  std::vector<Value> values;
};

/// A dynamically-typed value. Null is represented by monostate.
class Value {
 public:
  Value() = default;  // null
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { Value x; x.v_ = v; return x; }
  static Value Float(double v) { Value x; x.v_ = v; return x; }
  static Value Boolean(bool v) { Value x; x.v_ = v; return x; }
  static Value Str(std::string v) { Value x; x.v_ = std::move(v); return x; }
  static Value Record(std::shared_ptr<RecordValue> r) { Value x; x.v_ = std::move(r); return x; }
  static Value List(std::shared_ptr<ValueList> l) { Value x; x.v_ = std::move(l); return x; }

  static Value MakeRecord(std::vector<std::string> names, std::vector<Value> values) {
    auto r = std::make_shared<RecordValue>();
    r->names = std::move(names);
    r->values = std::move(values);
    return Record(std::move(r));
  }
  static Value MakeList(ValueList vals) {
    return List(std::make_shared<ValueList>(std::move(vals)));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_float() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_record() const { return std::holds_alternative<std::shared_ptr<RecordValue>>(v_); }
  bool is_list() const { return std::holds_alternative<std::shared_ptr<ValueList>>(v_); }

  int64_t i() const { return std::get<int64_t>(v_); }
  double f() const { return std::get<double>(v_); }
  bool b() const { return std::get<bool>(v_); }
  const std::string& s() const { return std::get<std::string>(v_); }
  const RecordValue& record() const { return *std::get<std::shared_ptr<RecordValue>>(v_); }
  const ValueList& list() const { return *std::get<std::shared_ptr<ValueList>>(v_); }

  /// Numeric widening: int/date read as double.
  double AsFloat() const { return is_float() ? f() : static_cast<double>(i()); }

  /// Field lookup on a record value.
  Result<Value> GetField(const std::string& name) const;

  /// Total order used by min/max monoids and sorting; null sorts first.
  /// Comparable types only (both numeric, both string, both bool).
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const;

  uint64_t Hash() const;
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string,
               std::shared_ptr<RecordValue>, std::shared_ptr<ValueList>>
      v_;
};

}  // namespace proteus
