// Work-stealing task scheduler for morsel-driven parallel execution
// (Leis et al., "Morsel-Driven Parallelism", adapted to this engine).
//
// A fixed pool of worker threads executes batches of index-addressed tasks
// ("morsels"). Each batch deals task indices round-robin across per-worker
// deques; workers pop from the front of their home deque and steal from the
// back of a victim's when theirs runs dry. The calling thread participates
// as worker 0 of its own batch, so `num_threads == 1` degenerates to inline
// serial execution with no cross-thread traffic at all.
//
// Concurrent batches: multiple threads may call ParallelFor at once (the
// serving layer runs N queries against one process-wide scheduler). Each
// caller drains only its own batch; pool workers sweep every active batch
// round-robin, claiming ONE task per batch per visit, so morsels of
// concurrent queries interleave at task granularity — a long-running query
// cannot starve a short one of the shared pool.
//
// ExecCounters are thread-local (see counters.h); pool workers fold the
// counters accumulated per task back into that task's batch, and the batch's
// caller folds the batch total into its own thread-local counters — so every
// caller observes the same totals as a serial run, even when its tasks were
// interleaved with another query's.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/counters.h"
#include "src/common/mutex.h"
#include "src/common/status.h"

namespace proteus {

class TaskScheduler {
 public:
  /// Opaque in-flight batch (defined in the .cpp; public only so the
  /// implementation's thread-local current-batch pointer can name it).
  struct Batch;

  /// Work-dispatch telemetry attributed to one logical caller (one query):
  /// tasks dispatched through ParallelFor on this thread while a StatsScope
  /// was installed, and how many of them another worker stole. Filled by the
  /// scheduler; read by the owner after its scope ends.
  struct BatchStats {
    uint64_t dealt = 0;
    uint64_t steals = 0;
  };

  /// RAII: attribute every ParallelFor issued from the current thread to
  /// `stats` until the scope ends. Scopes nest (the previous target is
  /// restored on destruction). The engine installs one per query, which is
  /// how concurrent queries sharing one scheduler each see their own
  /// tasks_dealt / steals instead of a racy read-then-reset global delta.
  class StatsScope {
   public:
    explicit StatsScope(BatchStats* stats);
    ~StatsScope();
    StatsScope(const StatsScope&) = delete;
    StatsScope& operator=(const StatsScope&) = delete;

   private:
    BatchStats* prev_;
  };

  /// `num_threads` total workers including the caller; 0 picks the hardware
  /// concurrency. The pool spawns `num_threads - 1` threads.
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `body(task_index, worker_id)` for every index in [0, num_tasks)
  /// and blocks until all tasks finished. Task indices are dealt round-robin
  /// over the workers' deques; idle workers steal. On error the batch is
  /// cancelled best-effort and the lowest-index error among the tasks that
  /// actually ran is returned. Which tasks ran before cancellation depends
  /// on scheduling, so with several failing tasks the reported one can vary
  /// between runs — only success/failure itself is deterministic.
  ///
  /// Safe to call from any number of threads concurrently; each caller's
  /// batch completes independently and pool workers interleave across all
  /// active batches. Not reentrant from inside a task: a nested call runs
  /// inline on the calling worker (morsel pipelines materialize join build
  /// sides before the probe batch, so nesting only arises in degenerate
  /// plans).
  Status ParallelFor(uint64_t num_tasks, const std::function<Status(uint64_t, int)>& body)
      EXCLUDES(mu_);

  /// Tasks executed by a worker other than the one whose deque they were
  /// dealt to, across all batches so far (work-stealing telemetry; safe to
  /// read from any thread).
  uint64_t total_steals() const { return total_steals_.load(std::memory_order_relaxed); }

  /// Tasks dispatched through ParallelFor across all batches so far,
  /// including inline (nested / single-worker) runs. With total_steals()
  /// this gives the steal *rate*, the number that actually says whether the
  /// deal was balanced.
  uint64_t total_dealt() const { return total_dealt_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop(int worker_id) EXCLUDES(mu_);
  /// Claims and runs at most one task of `batch` from `worker_id`'s deque
  /// (stealing when empty). Pool workers fold their per-task ExecCounters
  /// delta into the batch; the submitting caller (fold_counters = false)
  /// accumulates into its own thread-local counters directly. Returns true
  /// if a task was claimed.
  bool TryRunOne(Batch* batch, int worker_id, bool fold_counters);

  int num_threads_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar work_cv_;
  std::vector<std::shared_ptr<Batch>> active_ GUARDED_BY(mu_);  // in-flight batches
  uint64_t work_epoch_ GUARDED_BY(mu_) = 0;                     // bumped per submission
  bool stop_ GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> total_steals_{0};
  std::atomic<uint64_t> total_dealt_{0};
};

}  // namespace proteus
