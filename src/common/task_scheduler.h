// Work-stealing task scheduler for morsel-driven parallel execution
// (Leis et al., "Morsel-Driven Parallelism", adapted to this engine).
//
// A fixed pool of worker threads executes batches of index-addressed tasks
// ("morsels"). Each worker owns a deque; a batch deals task indices
// round-robin across the deques, workers pop from the front of their own
// deque and steal from the back of a victim's when theirs runs dry. The
// calling thread participates as worker 0, so `num_threads == 1` degenerates
// to inline serial execution with no cross-thread traffic at all.
//
// ExecCounters are thread-local (see counters.h); the scheduler folds the
// counters accumulated by pool workers during a batch back into the calling
// thread's counters, so callers observe the same totals as a serial run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/counters.h"
#include "src/common/status.h"

namespace proteus {

class TaskScheduler {
 public:
  /// `num_threads` total workers including the caller; 0 picks the hardware
  /// concurrency. The pool spawns `num_threads - 1` threads.
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `body(task_index, worker_id)` for every index in [0, num_tasks)
  /// and blocks until all tasks finished. Task indices are dealt round-robin
  /// over the workers' deques; idle workers steal. On error the batch is
  /// cancelled best-effort and the lowest-index error among the tasks that
  /// actually ran is returned. Which tasks ran before cancellation depends
  /// on scheduling, so with several failing tasks the reported one can vary
  /// between runs — only success/failure itself is deterministic.
  ///
  /// Not reentrant from inside a task: a nested call runs inline on the
  /// calling worker (morsel pipelines materialize join build sides before
  /// the probe batch, so nesting only arises in degenerate plans).
  Status ParallelFor(uint64_t num_tasks, const std::function<Status(uint64_t, int)>& body);

  /// Tasks executed by a worker other than the one whose deque they were
  /// dealt to, across all batches so far (work-stealing telemetry; safe to
  /// read from any thread).
  uint64_t total_steals() const { return total_steals_.load(std::memory_order_relaxed); }

  /// Tasks dispatched through ParallelFor across all batches so far,
  /// including inline (nested / single-worker) runs. With total_steals()
  /// this gives the steal *rate*, the number that actually says whether the
  /// deal was balanced.
  uint64_t total_dealt() const { return total_dealt_.load(std::memory_order_relaxed); }

 private:
  struct Batch;

  void WorkerLoop(int worker_id);
  /// Drains `batch` from `worker_id`'s deque, stealing when empty.
  void RunBatch(Batch* batch, int worker_id);

  int num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<Batch> batch_;  // current batch; null when idle
  uint64_t batch_seq_ = 0;
  bool stop_ = false;

  std::mutex submit_mu_;  // serializes concurrent ParallelFor callers
  std::atomic<uint64_t> total_steals_{0};
  std::atomic<uint64_t> total_dealt_{0};
};

}  // namespace proteus
