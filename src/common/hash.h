// Hashing utilities shared by the radix join, the nest (group-by) operator,
// and the JSON Level-0 field map.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace proteus {

/// 64-bit finalizer from MurmurHash3; a good integer mixer.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// FNV-1a over arbitrary bytes; used for strings and composite keys.
inline uint64_t HashBytes(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace proteus
