// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable carrying the clang thread-safety attributes from
// thread_annotations.h, so GUARDED_BY(mu_) members and REQUIRES(mu_)
// helpers are checked at compile time on clang (and cost nothing anywhere).
//
// Three types:
//  - Mutex: a CAPABILITY("mutex"). Prefer MutexLock; the manual
//    Lock()/Unlock() pair exists for the two single-flight paths
//    (CompiledQueryCache::GetOrCompile, TieredCompiler::WorkerLoop) that
//    deliberately drop the lock around a long compile.
//  - MutexLock: SCOPED_CAPABILITY RAII guard (std::lock_guard shape).
//  - CondVar: condition variable whose Wait(Mutex&) REQUIRES the mutex.
//    The analysis cannot follow predicates through lambdas (a lambda body
//    is analyzed as a separate, unannotated function), so call sites spell
//    the classic `while (!cond) cv.Wait(mu);` loop instead of the
//    predicate overload of std::condition_variable::wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace proteus {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning — the caller's critical section resumes exactly where it
  /// left off, so the annotation is REQUIRES, not ACQUIRE/RELEASE. The
  /// adopt/release dance hands the already-held std::mutex to a
  /// unique_lock for the wait without touching any annotated API, which
  /// keeps the body analysis-clean.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // still held: ownership goes back to the caller
  }

  /// Wait with a deadline; returns false on timeout (lock re-held either
  /// way, same contract as Wait).
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool ok = cv_.wait_for(lk, d) == std::cv_status::no_timeout;
    lk.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace proteus
