// Minimal Status / Result error-handling primitives (Arrow/absl style).
//
// Proteus code reports recoverable errors through Status / Result<T> rather
// than exceptions; the library is built to work with -fno-exceptions
// toolchains such as LLVM's.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace proteus {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIOError,
  kParseError,
  kTypeError,
  kCancelled,
};

/// A success-or-error outcome carrying a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status IOError(std::string m) { return {StatusCode::kIOError, std::move(m)}; }
  static Status ParseError(std::string m) { return {StatusCode::kParseError, std::move(m)}; }
  static Status TypeError(std::string m) { return {StatusCode::kTypeError, std::move(m)}; }
  static Status Cancelled(std::string m) { return {StatusCode::kCancelled, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kCancelled: return "Cancelled";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {   // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { assert(ok()); return *value_; }
  const T& value() const& { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return std::move(*value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

#define PROTEUS_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::proteus::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define PROTEUS_CONCAT_IMPL(a, b) a##b
#define PROTEUS_CONCAT(a, b) PROTEUS_CONCAT_IMPL(a, b)

#define PROTEUS_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto PROTEUS_CONCAT(_res_, __LINE__) = (rexpr);                    \
  if (!PROTEUS_CONCAT(_res_, __LINE__).ok())                         \
    return PROTEUS_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(PROTEUS_CONCAT(_res_, __LINE__)).value()

}  // namespace proteus
