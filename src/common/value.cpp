#include "src/common/value.h"

#include <sstream>

namespace proteus {

Result<Value> Value::GetField(const std::string& name) const {
  if (!is_record()) return Status::TypeError("GetField on non-record " + ToString());
  const RecordValue& r = record();
  for (size_t i = 0; i < r.names.size(); ++i) {
    if (r.names[i] == name) return r.values[i];
  }
  return Status::NotFound("record has no field '" + name + "'");
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (is_string() && other.is_string()) {
    return s().compare(other.s()) < 0 ? -1 : (s() == other.s() ? 0 : 1);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(b()) - static_cast<int>(other.b());
  }
  // Numeric comparison with widening.
  double a = AsFloat(), bb = other.AsFloat();
  if (a < bb) return -1;
  if (a > bb) return 1;
  return 0;
}

bool Value::Equals(const Value& other) const {
  if (v_.index() != other.v_.index()) {
    // Allow int/float cross-equality for numeric results.
    if ((is_int() || is_float()) && (other.is_int() || other.is_float())) {
      return AsFloat() == other.AsFloat();
    }
    return false;
  }
  if (is_null()) return true;
  if (is_int()) return i() == other.i();
  if (is_float()) return f() == other.f();
  if (is_bool()) return b() == other.b();
  if (is_string()) return s() == other.s();
  if (is_record()) {
    const auto& a = record();
    const auto& c = other.record();
    if (a.names != c.names || a.values.size() != c.values.size()) return false;
    for (size_t k = 0; k < a.values.size(); ++k) {
      if (!a.values[k].Equals(c.values[k])) return false;
    }
    return true;
  }
  const auto& a = list();
  const auto& c = other.list();
  if (a.size() != c.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (!a[k].Equals(c[k])) return false;
  }
  return true;
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_int()) return HashMix64(static_cast<uint64_t>(i()));
  if (is_float()) {
    double d = f();
    // Hash integral doubles like their int counterparts so mixed-type keys group.
    if (d == static_cast<double>(static_cast<int64_t>(d))) {
      return HashMix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
    }
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(d));
    return HashMix64(bits);
  }
  if (is_bool()) return HashMix64(b() ? 1 : 2);
  if (is_string()) return HashString(s());
  uint64_t h = 0x51ed270b;
  if (is_record()) {
    for (const auto& v : record().values) h = HashCombine(h, v.Hash());
    return h;
  }
  for (const auto& v : list()) h = HashCombine(h, v.Hash());
  return h;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(i());
  if (is_float()) {
    std::ostringstream os;
    os << f();
    return os.str();
  }
  if (is_bool()) return b() ? "true" : "false";
  if (is_string()) return "\"" + s() + "\"";
  std::ostringstream os;
  if (is_record()) {
    os << "{";
    const auto& r = record();
    for (size_t k = 0; k < r.names.size(); ++k) {
      if (k) os << ", ";
      os << r.names[k] << ": " << r.values[k].ToString();
    }
    os << "}";
    return os.str();
  }
  os << "[";
  const auto& l = list();
  for (size_t k = 0; k < l.size(); ++k) {
    if (k) os << ", ";
    os << l[k].ToString();
  }
  os << "]";
  return os.str();
}

}  // namespace proteus
