// Wire buffer helpers for the shard boundary.
//
// Shard partial results cross a real serialization boundary (see src/shard/):
// everything is encoded into a flat byte string with length-prefixed fields
// and decoded on the other side — no pointers survive the crossing. The
// encoding is the simplest thing that is exact and bounds-checked:
// fixed-width 8-byte integers, bit-pattern doubles (partial float aggregates
// must round-trip bit-exactly, or shard counts would change query results),
// and u64-length-prefixed strings. Host byte order: the in-process
// LoopbackTransport never crosses machines; a socket transport would add a
// byte-order pass here, not a new format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/value.h"

namespace proteus {

/// Append-only encoder. Take() hands the buffer off.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Bit-pattern encoding: the exact double comes back out.
  void PutF64(double v);
  void PutStr(std::string_view s);
  /// Recursive tagged encoding of a boxed Value (null / int / float / bool /
  /// string / record / list).
  void PutValue(const Value& v);

  size_t size() const { return buf_.size(); }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range. Every getter returns
/// InvalidArgument on truncated or malformed input instead of reading past
/// the end — transport payloads are not trusted to be well-formed.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8();
  Result<bool> Bool();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> Str();
  Result<Value> ReadValue();

  bool AtEnd() const { return pos_ >= bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

  /// Nesting bound for ReadValue: a crafted payload of nested list/record
  /// headers must fail with InvalidArgument, not overflow the stack.
  static constexpr int kMaxValueDepth = 100;

 private:
  Status Need(size_t n) const;
  Result<Value> ReadValueAtDepth(int depth);

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace proteus
