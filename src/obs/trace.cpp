#include "src/obs/trace.h"

#include <algorithm>
#include <fstream>

namespace proteus {
namespace obs {

namespace {

/// Thread-local recorder→buffer cache. Validated by recorder id (process-
/// unique, monotonically assigned), so a recorder reallocated at the same
/// address can never revive a stale pointer.
struct TlsSlot {
  uint64_t rec_id = 0;
  void* buf = nullptr;
};
thread_local TlsSlot t_slot;

std::atomic<uint64_t>& RecorderIds() {
  static std::atomic<uint64_t> ids{1};
  return ids;
}

void JsonEscape(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(*s) < 0x20) {
          char hex[8];
          snprintf(hex, sizeof(hex), "\\u%04x", *s);
          out << hex;
        } else {
          out << *s;
        }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

struct TraceRecorder::Chunk {
  static constexpr size_t kEvents = 512;
  TraceEvent events[kEvents];
};

struct TraceRecorder::ThreadBuffer {
  /// Hard cap per thread: a runaway span site degrades to counted drops
  /// instead of unbounded memory growth.
  static constexpr uint64_t kMaxEvents = 1 << 20;

  uint32_t tid = 0;
  std::thread::id owner;
  std::string label;  ///< guarded by the recorder's mu_

  /// Events [0, published) are fully written; the release store in Append
  /// is what makes the slot contents visible to an acquiring reader.
  std::atomic<uint64_t> published{0};
  std::atomic<uint64_t> dropped{0};
  uint64_t floor = 0;  ///< snapshot floor set by Clear(); guarded by mu_

  mutable Mutex chunks_mu;  ///< guards the chunk-pointer vector only
  std::vector<std::unique_ptr<Chunk>> chunks GUARDED_BY(chunks_mu);
  /// Owner-thread cache of chunks.back(). Written under chunks_mu (the
  /// growth path), read lock-free — but only ever by the owning thread, so
  /// the unsynchronized read cannot race the owner's own write.
  Chunk* current = nullptr;

  void Append(const TraceEvent& ev) {
    const uint64_t i = published.load(std::memory_order_relaxed);
    if (i >= kMaxEvents) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const size_t slot = static_cast<size_t>(i % Chunk::kEvents);
    if (slot == 0) {
      // Chunk boundary: grow under the lock so concurrent readers can walk
      // the vector. Amortized to once per kEvents appends.
      MutexLock lk(chunks_mu);
      chunks.push_back(std::make_unique<Chunk>());
      current = chunks.back().get();
    }
    current->events[slot] = ev;
    published.store(i + 1, std::memory_order_release);
  }
};

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder()
    : id_(RecorderIds().fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (t_slot.rec_id == id_) return static_cast<ThreadBuffer*>(t_slot.buf);
  MutexLock lk(mu_);
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& b : buffers_) {
    if (b->owner == self) {
      t_slot = {id_, b.get()};
      return b.get();
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buf = buffers_.back().get();
  buf->tid = static_cast<uint32_t>(buffers_.size());
  buf->owner = self;
  t_slot = {id_, buf};
  return buf;
}

void TraceRecorder::Emit(const char* name, double ts_us, double dur_us,
                         const char* arg0_name, int64_t arg0, const char* arg1_name,
                         int64_t arg1) {
  ThreadBuffer* buf = BufferForThisThread();
  TraceEvent ev;
  ev.name = name;
  ev.tid = buf->tid;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  buf->Append(ev);
}

void TraceRecorder::Instant(const char* name, const char* arg0_name, int64_t arg0,
                            const char* arg1_name, int64_t arg1) {
  Emit(name, NowUs(), /*dur_us=*/-1.0, arg0_name, arg0, arg1_name, arg1);
}

void TraceRecorder::LabelThisThread(const std::string& label) {
  ThreadBuffer* buf = BufferForThisThread();
  MutexLock lk(mu_);
  buf->label = label;
}

TraceRecorder::Capture TraceRecorder::BeginCapture() const {
  Capture cap;
  MutexLock lk(mu_);
  cap.floors.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    // tids are assigned 1..N in registration order, so tid - 1 indexes.
    cap.floors.push_back(b->published.load(std::memory_order_acquire));
  }
  return cap;
}

QueryTrace TraceRecorder::Snapshot(const Capture& capture) const {
  QueryTrace out;
  MutexLock lk(mu_);
  for (const auto& b : buffers_) {
    const uint64_t n = b->published.load(std::memory_order_acquire);
    out.dropped += b->dropped.load(std::memory_order_relaxed);
    if (!b->label.empty()) out.thread_names[b->tid] = b->label;
    const size_t idx = b->tid - 1;
    const uint64_t floor = idx < capture.floors.size() ? capture.floors[idx] : 0;
    MutexLock clk(b->chunks_mu);
    for (uint64_t i = floor; i < n; ++i) {
      out.events.push_back(
          b->chunks[static_cast<size_t>(i / Chunk::kEvents)]
              ->events[static_cast<size_t>(i % Chunk::kEvents)]);
    }
  }
  return out;
}

QueryTrace TraceRecorder::Snapshot() const {
  QueryTrace out;
  MutexLock lk(mu_);
  for (const auto& b : buffers_) {
    const uint64_t n = b->published.load(std::memory_order_acquire);
    out.dropped += b->dropped.load(std::memory_order_relaxed);
    if (!b->label.empty()) out.thread_names[b->tid] = b->label;
    MutexLock clk(b->chunks_mu);
    for (uint64_t i = b->floor; i < n; ++i) {
      out.events.push_back(
          b->chunks[static_cast<size_t>(i / Chunk::kEvents)]
              ->events[static_cast<size_t>(i % Chunk::kEvents)]);
    }
  }
  return out;
}

void TraceRecorder::Clear() {
  MutexLock lk(mu_);
  for (const auto& b : buffers_) {
    b->floor = b->published.load(std::memory_order_acquire);
  }
}

uint64_t TraceRecorder::TotalEvents() const {
  uint64_t total = 0;
  MutexLock lk(mu_);
  for (const auto& b : buffers_) {
    total += b->published.load(std::memory_order_acquire) - b->floor;
  }
  return total;
}

// ---------------------------------------------------------------------------
// QueryTrace
// ---------------------------------------------------------------------------

size_t QueryTrace::CountSpans(const std::string& name) const {
  size_t n = 0;
  for (const TraceEvent& ev : events) {
    if (name == ev.name) ++n;
  }
  return n;
}

bool QueryTrace::HasSpan(const std::string& name) const { return CountSpans(name) > 0; }

double QueryTrace::SumDurationMs(const std::string& name) const {
  double us = 0;
  for (const TraceEvent& ev : events) {
    if (!ev.instant() && name == ev.name) us += ev.dur_us;
  }
  return us / 1000.0;
}

bool QueryTrace::TimeBounds(const std::string& name, double* min_ts_us,
                            double* max_end_us) const {
  bool found = false;
  for (const TraceEvent& ev : events) {
    if (name != ev.name) continue;
    const double end = ev.instant() ? ev.ts_us : ev.ts_us + ev.dur_us;
    if (!found) {
      *min_ts_us = ev.ts_us;
      *max_end_us = end;
      found = true;
    } else {
      *min_ts_us = std::min(*min_ts_us, ev.ts_us);
      *max_end_us = std::max(*max_end_us, end);
    }
  }
  return found;
}

void QueryTrace::WriteJson(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const auto& [tid, label] : thread_names) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"";
    JsonEscape(out, label.c_str());
    out << "\"}}";
  }
  for (const TraceEvent& ev : events) {
    comma();
    out << "{\"name\":\"";
    JsonEscape(out, ev.name);
    out << "\",\"ph\":\"" << (ev.instant() ? "i" : "X") << "\",\"pid\":1,\"tid\":" << ev.tid
        << ",\"ts\":" << ev.ts_us;
    if (ev.instant()) {
      out << ",\"s\":\"t\"";
    } else {
      out << ",\"dur\":" << ev.dur_us;
    }
    if (ev.arg0_name != nullptr || ev.arg1_name != nullptr) {
      out << ",\"args\":{";
      bool first_arg = true;
      auto arg = [&](const char* name, int64_t value) {
        if (name == nullptr) return;
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"";
        JsonEscape(out, name);
        out << "\":" << value;
      };
      arg(ev.arg0_name, ev.arg0);
      arg(ev.arg1_name, ev.arg1);
      out << "}";
    }
    out << "}";
  }
  out << "]}";
}

Status QueryTrace::WriteJsonFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("trace: cannot open " + path + " for writing");
  WriteJson(f);
  f.flush();
  if (!f) return Status::IOError("trace: write to " + path + " failed");
  return Status::OK();
}

}  // namespace obs
}  // namespace proteus
