// Query tracing: per-thread span buffers with a Chrome-trace / Perfetto
// JSON export.
//
// The paper's whole argument is a cost story — codegen (≤~50 ms) vs
// execution, interpreter vs generated code, cold vs warm — and a flat
// per-query telemetry struct cannot show *where inside* a query the time
// went. The TraceRecorder can: every layer that has a timing story (the
// optimizer, IR generation, compiled-query-cache probes, join builds,
// per-morsel pipeline execution in both engines, the tiered background
// compile and its hot-swap, shard slices and partial exchange) opens a
// cheap RAII TraceSpan, and QueryTrace::WriteJson emits one file that
// chrome://tracing or https://ui.perfetto.dev renders per thread: the
// interpreter morsels, the overlapping background compile, and the swap
// landing, per shard.
//
// Design constraints, in order:
//   1. *Zero* cost when disabled. Every instrumentation site holds a
//      TraceRecorder* that is null when EngineOptions::trace is off; the
//      disabled path is a single pointer test (OBS_SPAN compiles to two
//      branches around a steady_clock read — nothing else).
//   2. Race-free under the engine's real concurrency (scheduler workers,
//      shard threads, the tiered background compile thread — all exercised
//      under TSan). Each thread appends to a buffer it owns, lock-free:
//      events are written into chunked storage and *published* with a
//      release store of the count; snapshotting threads acquire the count
//      and read only published slots. Chunks are allocated (rarely) under a
//      per-buffer mutex so readers can walk the chunk list safely while the
//      owner keeps appending — which is exactly the situation when a
//      background compile outlives the query being exported.
//   3. No allocation per span on the hot path: names and argument keys are
//      compile-time string literals; argument values are two int64 slots.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"

namespace proteus {
namespace obs {

/// One completed span or instant event. `name`, `arg0_name`, `arg1_name`
/// must be string literals (static storage duration) — the buffer stores
/// the pointers, never copies.
struct TraceEvent {
  const char* name = nullptr;
  uint32_t tid = 0;            ///< recorder-assigned stable thread id
  double ts_us = 0;            ///< start, microseconds since recorder epoch
  double dur_us = 0;           ///< span duration; < 0 marks an instant event
  const char* arg0_name = nullptr;
  int64_t arg0 = 0;
  const char* arg1_name = nullptr;
  int64_t arg1 = 0;

  bool instant() const { return dur_us < 0; }
};

/// An exported snapshot of recorded events, safe to inspect and serialize
/// long after the recorder moved on. WriteJson produces the Chrome
/// trace-event array format (`{"traceEvents": [...]}`) that
/// chrome://tracing and Perfetto load directly.
struct QueryTrace {
  std::vector<TraceEvent> events;
  std::unordered_map<uint32_t, std::string> thread_names;
  uint64_t dropped = 0;  ///< events lost to the per-thread buffer cap

  /// Structural helpers (tests and smoke checks).
  size_t CountSpans(const std::string& name) const;
  bool HasSpan(const std::string& name) const;
  /// Sum of span durations (ms) across every event named `name`.
  double SumDurationMs(const std::string& name) const;
  /// Earliest start / latest end (us since epoch) among events named
  /// `name`; returns false when none exist.
  bool TimeBounds(const std::string& name, double* min_ts_us, double* max_end_us) const;

  void WriteJson(std::ostream& out) const;
  Status WriteJsonFile(const std::string& path) const;
};

/// The recorder. One per QueryEngine (created when EngineOptions::trace is
/// set); instrumentation sites receive it as a nullable pointer through
/// ExecContext. Thread buffers register lazily on first use and live for
/// the recorder's lifetime, so scheduler pool threads pay the registration
/// mutex once, not per query.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since the recorder's construction (the trace epoch).
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     epoch_)
        .count();
  }

  /// Records a completed span. Lock-free on the owning thread's buffer
  /// (the rare chunk growth takes a per-buffer mutex).
  void Emit(const char* name, double ts_us, double dur_us, const char* arg0_name = nullptr,
            int64_t arg0 = 0, const char* arg1_name = nullptr, int64_t arg1 = 0);

  /// Records an instant event (a point in time — e.g. the tiered hot-swap).
  void Instant(const char* name, const char* arg0_name = nullptr, int64_t arg0 = 0,
               const char* arg1_name = nullptr, int64_t arg1 = 0);

  /// Names the calling thread's track in the exported trace (e.g.
  /// "shard-1", "background-compiler"). Rare-path: takes the registry lock.
  void LabelThisThread(const std::string& label) EXCLUDES(mu_);

  /// A per-observer snapshot floor: BeginCapture() records how many events
  /// each thread had published at that instant, and Snapshot(capture)
  /// returns only events published after it. Unlike Clear(), whose floor is
  /// process-global state, a Capture is owned by one observer — concurrent
  /// queries sharing a recorder each take their own capture, and one
  /// session calling Clear() can no longer drop spans another in-flight
  /// capture still expects (chunk storage is retained, never freed).
  struct Capture {
    /// Published counts indexed by tid - 1 at capture time; buffers
    /// registered later fall off the end and are captured from zero.
    std::vector<uint64_t> floors;
  };

  /// Starts a capture scoped to the caller (rare path: takes the registry
  /// lock once).
  Capture BeginCapture() const EXCLUDES(mu_);

  /// Copies every event published since `capture` began. Independent of
  /// Clear(): a global Clear between BeginCapture and this call does not
  /// hide events from the capture.
  QueryTrace Snapshot(const Capture& capture) const EXCLUDES(mu_);

  /// Copies every event published since the last Clear(). Safe to call
  /// while other threads (e.g. an outlived background compile) are still
  /// appending: only slots published with release semantics are read.
  QueryTrace Snapshot() const EXCLUDES(mu_);

  /// Logically discards everything recorded so far (per-query reset). The
  /// storage is retained and writers are never blocked: the current
  /// published counts simply become the new snapshot floor. An event
  /// published *after* Clear by a straggler thread (a compile outliving its
  /// query) lands in the next snapshot — intentionally: it shows the
  /// compile landing.
  void Clear() EXCLUDES(mu_);

  /// Published (undiscarded) events across all threads — cheap, for tests.
  uint64_t TotalEvents() const EXCLUDES(mu_);

 private:
  struct Chunk;
  struct ThreadBuffer;

  ThreadBuffer* BufferForThisThread() EXCLUDES(mu_);

  const uint64_t id_;  ///< process-unique, validates thread-local caches
  const std::chrono::steady_clock::time_point epoch_;
  /// Guards buffers_ registration — and, by convention, each ThreadBuffer's
  /// label and snapshot floor (stated there; the analysis cannot name one
  /// object's mutex from another type, so those two members carry comments
  /// instead of GUARDED_BY).
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) on the recorder, or does
/// nothing at all when `rec` is null — the single-branch disabled path.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* rec, const char* name, const char* arg0_name = nullptr,
            int64_t arg0 = 0, const char* arg1_name = nullptr, int64_t arg1 = 0)
      : rec_(rec),
        name_(name),
        arg0_name_(arg0_name),
        arg0_(arg0),
        arg1_name_(arg1_name),
        arg1_(arg1) {
    if (rec_ != nullptr) start_us_ = rec_->NowUs();
  }

  ~TraceSpan() {
    if (rec_ != nullptr) {
      rec_->Emit(name_, start_us_, rec_->NowUs() - start_us_, arg0_name_, arg0_,
                 arg1_name_, arg1_);
    }
  }

  /// Updates an argument before the span closes (e.g. a cache probe's
  /// hit/miss outcome, known only at the end).
  void set_arg0(const char* name, int64_t value) {
    arg0_name_ = name;
    arg0_ = value;
  }
  void set_arg1(const char* name, int64_t value) {
    arg1_name_ = name;
    arg1_ = value;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* rec_;
  const char* name_;
  double start_us_ = 0;
  const char* arg0_name_;
  int64_t arg0_;
  const char* arg1_name_;
  int64_t arg1_;
};

#define PROTEUS_OBS_CONCAT_INNER(a, b) a##b
#define PROTEUS_OBS_CONCAT(a, b) PROTEUS_OBS_CONCAT_INNER(a, b)
/// Opens a scoped span on `rec` (nullable): OBS_SPAN(rec, "join_build",
/// "rows", n). Name and argument keys must be string literals.
#define OBS_SPAN(rec, ...) \
  ::proteus::obs::TraceSpan PROTEUS_OBS_CONCAT(_obs_span_, __LINE__)(rec, __VA_ARGS__)

}  // namespace obs
}  // namespace proteus
