#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace proteus {
namespace obs {

namespace {

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

void AtomicAddDouble(std::atomic<uint64_t>* cell, double delta) {
  uint64_t old_bits = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(old_bits, DoubleToBits(BitsToDouble(old_bits) + delta),
                                      std::memory_order_relaxed)) {
  }
}

template <typename Better>
void AtomicExtremum(std::atomic<uint64_t>* cell, double value, Better better) {
  uint64_t old_bits = cell->load(std::memory_order_relaxed);
  while (better(value, BitsToDouble(old_bits)) &&
         !cell->compare_exchange_weak(old_bits, DoubleToBits(value),
                                      std::memory_order_relaxed)) {
  }
}

void JsonEscape(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
}

/// JSON has no inf/nan; empty-histogram extrema export as 0.
double Finite(double d) { return std::isfinite(d) ? d : 0.0; }

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(new std::atomic<uint64_t>[boundaries_.size() + 1]),
      sum_bits_(DoubleToBits(0.0)),
      min_bits_(DoubleToBits(std::numeric_limits<double>::infinity())),
      max_bits_(DoubleToBits(-std::numeric_limits<double>::infinity())) {
  for (size_t i = 0; i <= boundaries_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value) - boundaries_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
  AtomicExtremum(&min_bits_, value, [](double a, double b) { return a < b; });
  AtomicExtremum(&max_bits_, value, [](double a, double b) { return a > b; });
}

double Histogram::sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return BitsToDouble(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return BitsToDouble(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::Percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based), then walk the cumulative
  // counts to its bucket.
  const double rank = q * static_cast<double>(n);
  uint64_t cumulative = 0;
  const size_t num_buckets = boundaries_.size() + 1;
  for (size_t i = 0; i < num_buckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The observed min/max bound the true range tighter than the fixed
    // boundaries: the first populated bucket cannot start below min, the
    // last cannot extend past max.
    double lo = i == 0 ? min() : boundaries_[i - 1];
    double hi = i == boundaries_.size() ? max() : boundaries_[i];
    lo = std::max(lo, min());
    hi = std::min(hi, max());
    if (hi < lo) return lo;
    const double frac =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return max();
}

const std::vector<double>& Histogram::LatencyBoundariesMs() {
  static const std::vector<double> kBoundaries = {
      0.05, 0.1, 0.25, 0.5, 1,   2.5,  5,    10,    25,   50,
      100,  250, 500,  1000, 2500, 5000, 10000, 30000};
  return kBoundaries;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& boundaries) {
  MutexLock lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(boundaries);
  return slot.get();
}

void MetricsRegistry::WriteText(std::ostream& out) const {
  MutexLock lk(mu_);
  for (const auto& [name, c] : counters_) {
    out << "# TYPE " << name << " counter\n" << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "# TYPE " << name << " gauge\n" << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "# TYPE " << name << " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      out << name << "{quantile=\"" << q << "\"} " << h->Percentile(q) << "\n";
    }
    out << name << "_sum " << Finite(h->sum()) << "\n";
    out << name << "_count " << h->count() << "\n";
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  MutexLock lk(mu_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    JsonEscape(out, name);
    out << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    JsonEscape(out, name);
    out << "\":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    JsonEscape(out, name);
    out << "\":{\"count\":" << h->count() << ",\"sum\":" << Finite(h->sum())
        << ",\"min\":" << Finite(h->min()) << ",\"max\":" << Finite(h->max())
        << ",\"p50\":" << h->Percentile(0.5) << ",\"p95\":" << h->Percentile(0.95)
        << ",\"p99\":" << h->Percentile(0.99) << "}";
  }
  out << "}}";
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // intentionally leaked
  return *g;
}

}  // namespace obs
}  // namespace proteus
