// Process-wide engine metrics: counters, gauges, and fixed-boundary
// histograms with percentile estimation, behind a registry handle.
//
// Where a trace (trace.h) answers "where did *this* query's time go", the
// metrics registry answers the fleet question the ROADMAP's next items
// (multi-query serving, scale-out) depend on: query latency p50/p95/p99,
// compile cost, cache hit rates, morsel/steal counts, bytes exchanged —
// accumulated across every execution of the process. `QueryEngine` feeds it
// after each query when `EngineOptions::metrics` is set; the bench harness
// snapshots it per variant into the BENCH_*.json trajectory.
//
// Concurrency: every instrument is a fixed set of atomics once created, so
// recording is lock-free and wait-free; the registry mutex is only taken to
// create/look up instruments (once per call site, cached by pointer) and to
// enumerate for exposition. Disabled path: call sites hold a nullable
// `MetricsRegistry*` and skip on null — same single-branch contract as
// tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/mutex.h"

namespace proteus {
namespace obs {

/// Monotonically increasing count (queries executed, cache hits, ...).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written point-in-time value (entries resident in the JIT cache, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary histogram. Bucket i counts observations <= boundaries[i];
/// one implicit overflow bucket counts the rest. Percentiles are estimated
/// by linear interpolation inside the containing bucket, sharpened at the
/// edges by the exact observed min/max — good enough to separate a 1 ms warm
/// hit from a 50 ms cold compile, which is what the paper's cost story needs.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty

  /// Estimated value at quantile q in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  const std::vector<double>& boundaries() const { return boundaries_; }
  /// Cumulative observation count through bucket i (tests).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Default latency boundaries (ms): 50us .. ~30s, roughly 2.5x steps.
  static const std::vector<double>& LatencyBoundariesMs();

 private:
  const std::vector<double> boundaries_;
  /// One atomic per boundary plus the overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_;  ///< double, CAS-accumulated
  std::atomic<uint64_t> min_bits_;  ///< double, CAS-min
  std::atomic<uint64_t> max_bits_;  ///< double, CAS-max
};

/// Named instrument registry. Instruments are created on first use and live
/// for the registry's lifetime — returned pointers are stable and safe to
/// cache at call sites. Names follow the prometheus convention
/// (`proteus_queries_total`, `proteus_query_latency_ms`, ...).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  /// First creation fixes the boundaries; later calls with the same name
  /// return the existing histogram regardless of `boundaries`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& boundaries =
                              Histogram::LatencyBoundariesMs()) EXCLUDES(mu_);

  /// Prometheus-style text exposition: `# TYPE` lines, one sample per
  /// counter/gauge, quantile/sum/count lines per histogram.
  void WriteText(std::ostream& out) const EXCLUDES(mu_);
  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, min, max, p50, p95, p99}}}. The bench reporter's
  /// snapshot format.
  void WriteJson(std::ostream& out) const EXCLUDES(mu_);

  /// The process-wide instance benches and long-lived engines share.
  static MetricsRegistry& Global();

 private:
  /// Guards only the instrument maps — creation and enumeration. The
  /// instruments themselves are all-atomic, so recording never locks.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace proteus
