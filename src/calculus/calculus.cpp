#include "src/calculus/calculus.h"

#include <sstream>
#include <unordered_set>

namespace proteus {

Qualifier Qualifier::Generator(std::string v, ExprPtr src) {
  Qualifier q;
  q.kind = Kind::kGenerator;
  q.var = std::move(v);
  q.source = std::move(src);
  return q;
}

Qualifier Qualifier::GeneratorComp(std::string v, ComprehensionPtr comp) {
  Qualifier q;
  q.kind = Kind::kGenerator;
  q.var = std::move(v);
  q.source_comp = std::move(comp);
  return q;
}

Qualifier Qualifier::Predicate(ExprPtr p) {
  Qualifier q;
  q.kind = Kind::kPredicate;
  q.pred = std::move(p);
  return q;
}

std::string Comprehension::ToString() const {
  std::ostringstream os;
  os << "for { ";
  for (size_t i = 0; i < quals.size(); ++i) {
    if (i) os << ", ";
    const Qualifier& q = quals[i];
    if (q.kind == Qualifier::Kind::kGenerator) {
      os << q.var << " <- ";
      if (q.source_comp) {
        os << "(" << q.source_comp->ToString() << ")";
      } else {
        os << q.source->ToString();
      }
    } else {
      os << q.pred->ToString();
    }
  }
  os << " } yield ";
  if (!outputs.empty()) {
    os << "(";
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (i) os << ", ";
      os << MonoidName(outputs[i].monoid);
      if (outputs[i].expr) os << " " << outputs[i].expr->ToString();
    }
    os << ")";
  } else {
    os << MonoidName(monoid);
    if (head) os << " " << head->ToString();
  }
  if (group_by) os << " group by " << group_by->ToString();
  return os.str();
}

namespace {

/// Substitutes `var := replacement` in every expression of qualifiers
/// [from, end) and in the head/outputs/group_by.
void SubstituteFrom(Comprehension* c, size_t from, const std::string& var,
                    const ExprPtr& replacement) {
  for (size_t i = from; i < c->quals.size(); ++i) {
    Qualifier& q = c->quals[i];
    if (q.kind == Qualifier::Kind::kPredicate) {
      q.pred = Expr::SubstituteVar(q.pred, var, replacement);
    } else if (q.source) {
      q.source = Expr::SubstituteVar(q.source, var, replacement);
    }
  }
  if (c->head) c->head = Expr::SubstituteVar(c->head, var, replacement);
  for (auto& o : c->outputs) {
    if (o.expr) o.expr = Expr::SubstituteVar(o.expr, var, replacement);
  }
  if (c->group_by) c->group_by = Expr::SubstituteVar(c->group_by, var, replacement);
}

/// One pass of rule N8: v <- ⊕{ e | qs } becomes qs, with v := e substituted
/// downstream. Returns true if a rewrite happened.
bool SpliceNestedComprehensions(Comprehension* c) {
  for (size_t i = 0; i < c->quals.size(); ++i) {
    Qualifier& q = c->quals[i];
    if (q.kind != Qualifier::Kind::kGenerator || !q.source_comp) continue;
    Comprehension inner = *q.source_comp;  // copy
    Normalize(&inner);
    if (!IsCollectionMonoid(inner.monoid) || inner.group_by || !inner.outputs.empty()) {
      continue;  // only collection-valued, group-free inners can splice
    }
    std::string var = q.var;
    ExprPtr head = inner.head;
    // Replace qualifier i by the inner qualifiers.
    std::vector<Qualifier> merged;
    merged.reserve(c->quals.size() + inner.quals.size());
    merged.insert(merged.end(), c->quals.begin(), c->quals.begin() + static_cast<long>(i));
    merged.insert(merged.end(), inner.quals.begin(), inner.quals.end());
    size_t resume = merged.size();
    merged.insert(merged.end(), c->quals.begin() + static_cast<long>(i) + 1, c->quals.end());
    c->quals = std::move(merged);
    SubstituteFrom(c, resume, var, head);
    return true;
  }
  return false;
}

}  // namespace

void Normalize(Comprehension* c) {
  while (SpliceNestedComprehensions(c)) {
  }
  for (auto& q : c->quals) {
    if (q.kind == Qualifier::Kind::kPredicate) q.pred = FoldConstants(q.pred);
  }
  // Drop literal-true predicates.
  std::vector<Qualifier> kept;
  kept.reserve(c->quals.size());
  for (auto& q : c->quals) {
    if (q.kind == Qualifier::Kind::kPredicate && q.pred->kind() == ExprKind::kLiteral &&
        q.pred->literal().is_bool() && q.pred->literal().b()) {
      continue;
    }
    kept.push_back(std::move(q));
  }
  c->quals = std::move(kept);
  if (c->head) c->head = FoldConstants(c->head);
  for (auto& o : c->outputs) {
    if (o.expr) o.expr = FoldConstants(o.expr);
  }
}

Result<OpPtr> ToAlgebra(const Comprehension& c, const Catalog& catalog) {
  OpPtr op;
  std::unordered_set<std::string> bound;
  std::vector<ExprPtr> pending_preds;

  for (const auto& q : c.quals) {
    if (q.kind == Qualifier::Kind::kPredicate) {
      pending_preds.push_back(q.pred);
      continue;
    }
    if (q.source_comp) {
      return Status::Unimplemented(
          "nested comprehension source survived normalization (non-collection or grouped "
          "inner query): " +
          q.source_comp->ToString());
    }
    if (bound.count(q.var)) {
      return Status::InvalidArgument("variable '" + q.var + "' bound twice");
    }
    if (q.source->kind() == ExprKind::kVarRef) {
      const std::string& ds = q.source->var_name();
      if (!catalog.Contains(ds)) {
        return Status::NotFound("unknown dataset '" + ds + "' in generator " + q.var);
      }
      OpPtr scan = Operator::Scan(ds, q.var);
      op = op ? Operator::Join(std::move(op), std::move(scan), nullptr) : std::move(scan);
    } else if (q.source->kind() == ExprKind::kProj) {
      // Path source: root variable must already be bound -> Unnest.
      FieldPath path;
      const Expr* e = q.source.get();
      while (e->kind() == ExprKind::kProj) {
        path.insert(path.begin(), e->field());
        e = e->child(0).get();
      }
      if (e->kind() != ExprKind::kVarRef) {
        return Status::InvalidArgument("generator path must be rooted at a variable: " +
                                       q.source->ToString());
      }
      path.insert(path.begin(), e->var_name());
      if (!bound.count(path[0])) {
        return Status::InvalidArgument("unnest source variable '" + path[0] +
                                       "' is not bound yet");
      }
      if (!op) return Status::Internal("unnest with no upstream operator");
      op = Operator::Unnest(std::move(op), path, q.var);
    } else {
      return Status::InvalidArgument("unsupported generator source: " + q.source->ToString());
    }
    bound.insert(q.var);
  }

  if (!op) return Status::InvalidArgument("query has no generators");
  if (!pending_preds.empty()) {
    op = Operator::Select(std::move(op), CombineConjuncts(pending_preds));
  }

  // Outputs: explicit list, or a single (monoid, head).
  std::vector<AggOutput> outputs = c.outputs;
  if (outputs.empty()) {
    outputs.push_back({c.monoid, c.head, "out"});
  }

  if (c.group_by) {
    std::string key_name = c.group_name.empty() ? "key" : c.group_name;
    op = Operator::Nest(std::move(op), c.group_by, key_name, outputs, nullptr, "$group");
    // Root reduce emits the grouped records as a bag.
    std::vector<std::string> names{key_name};
    std::vector<ExprPtr> exprs{Expr::Proj(Expr::Var("$group"), key_name)};
    for (const auto& o : outputs) {
      names.push_back(o.name);
      exprs.push_back(Expr::Proj(Expr::Var("$group"), o.name));
    }
    std::vector<AggOutput> root{{Monoid::kBag, Expr::Record(names, exprs), "out"}};
    return Operator::Reduce(std::move(op), std::move(root));
  }
  return Operator::Reduce(std::move(op), std::move(outputs));
}

}  // namespace proteus
