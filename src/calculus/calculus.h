// Monoid comprehension calculus (Fegaras & Maier), the internal query
// representation of Proteus (paper §3).
//
// A comprehension  ⊕{ e | q1, ..., qn }  folds the head expression `e` over
// the bindings produced by qualifiers (generators `v <- source` and filter
// predicates) into the output monoid ⊕ (sum/max/bag/...). Generators may
// range over datasets, over nested collections of bound variables (paths),
// or over *nested comprehensions*, which normalization splices away.
//
// Frontends (SQL, comprehension syntax) desugar into this form; the
// translator rewrites normalized comprehensions into the nested relational
// algebra of src/algebra.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/expr/expr.h"

namespace proteus {

struct Comprehension;
using ComprehensionPtr = std::shared_ptr<Comprehension>;

struct Qualifier {
  enum class Kind { kGenerator, kPredicate };
  Kind kind = Kind::kPredicate;

  // Generator: var <- source. Exactly one of source / source_comp is set.
  std::string var;
  ExprPtr source;                 ///< VarRef (a dataset) or Proj path (a nested collection)
  ComprehensionPtr source_comp;   ///< nested comprehension source

  ExprPtr pred;  ///< predicate qualifier

  static Qualifier Generator(std::string v, ExprPtr src);
  static Qualifier GeneratorComp(std::string v, ComprehensionPtr comp);
  static Qualifier Predicate(ExprPtr p);
};

struct Comprehension {
  /// Output monoid of the head (used when `outputs` is empty).
  Monoid monoid = Monoid::kBag;
  ExprPtr head;  ///< null for count

  /// Multi-aggregate extension used by the SQL frontend: several (monoid,
  /// expr) outputs evaluated in one pass (product monoid).
  std::vector<AggOutput> outputs;

  std::vector<Qualifier> quals;

  /// Group-by extension (SQL GROUP BY): translated to the Nest operator.
  ExprPtr group_by;
  std::string group_name;

  std::string ToString() const;
};

/// Applies normalization rules until fixpoint. Currently:
///  * N8 (generator over a nested bag comprehension is spliced into the
///    outer comprehension, substituting the inner head for the variable) —
///    the key unnesting rule;
///  * predicate constant folding; `true` predicates dropped.
void Normalize(Comprehension* c);

/// Rewrites a normalized comprehension into a nested-relational-algebra tree:
/// dataset generators become scans (joined left-deep), path generators become
/// Unnest operators, predicates gather into a Select (pushed down later by
/// the optimizer), and the head/outputs become the root Reduce (with a Nest
/// below it when group_by is present).
Result<OpPtr> ToAlgebra(const Comprehension& c, const Catalog& catalog);

}  // namespace proteus
