#include "src/datagen/spam.h"

#include <random>

namespace proteus {
namespace datagen {

namespace {

const char* kLangs[] = {"en", "ru", "zh", "es", "de", "fr", "pt"};
const char* kCountries[] = {"US", "RU", "CN", "BR", "IN", "DE", "NG", "VN"};
const char* kBots[] = {"rustock", "grum", "cutwail", "kelihos", "necurs", "unknown"};
const char* kSubjects[] = {"cheap meds online", "you won a prize", "account verification",
                           "invoice attached", "urgent wire transfer", "hot stock tip"};
const char* kLabels[] = {"phishing", "pharma", "stock", "malware", "dating"};

}  // namespace

TypePtr SpamJSONSchema() {
  TypePtr origin = Type::Record({{"ip", Type::String()}, {"country", Type::String()}});
  TypePtr cls = Type::Record({{"dim", Type::String()}, {"label", Type::Int64()}});
  return Type::BagOfRecords({{"mail_id", Type::Int64()},
                             {"lang", Type::String()},
                             {"bot", Type::String()},
                             {"subject", Type::String()},
                             {"body_len", Type::Int64()},
                             {"score", Type::Float64()},
                             {"origin", origin},
                             {"classes", Type::Collection(CollectionKind::kArray, cls)}});
}

TypePtr SpamCSVSchema() {
  return Type::BagOfRecords({{"mail_id", Type::Int64()},
                             {"iter", Type::Int64()},
                             {"cls_a", Type::Int64()},
                             {"cls_b", Type::Int64()},
                             {"score_a", Type::Float64()},
                             {"score_b", Type::Float64()},
                             {"label", Type::String()}});
}

TypePtr SpamBinarySchema() {
  return Type::BagOfRecords({{"mail_id", Type::Int64()},
                             {"day", Type::Int64()},
                             {"src", Type::Int64()},
                             {"spam_score", Type::Float64()},
                             {"hits", Type::Int64()}});
}

RowTable GenSpamJSON(uint64_t num_mails, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> lang(0, 6), country(0, 7), bot(0, 5), subject(0, 5);
  std::uniform_int_distribution<int64_t> body(40, 9000);
  std::uniform_real_distribution<double> score(0.0, 1.0);
  std::uniform_int_distribution<int> nclasses(1, 4);
  std::uniform_int_distribution<int64_t> label(0, 31);
  std::uniform_int_distribution<int> octet(1, 254);

  RowTable t(SpamJSONSchema()->elem());
  for (uint64_t id = 0; id < num_mails; ++id) {
    std::string ip = std::to_string(octet(rng)) + "." + std::to_string(octet(rng)) + "." +
                     std::to_string(octet(rng)) + "." + std::to_string(octet(rng));
    Value origin = Value::MakeRecord({"ip", "country"},
                                     {Value::Str(ip), Value::Str(kCountries[country(rng)])});
    ValueList classes;
    int n = nclasses(rng);
    for (int k = 0; k < n; ++k) {
      classes.push_back(Value::MakeRecord(
          {"dim", "label"}, {Value::Str(kLabels[k % 5]), Value::Int(label(rng))}));
    }
    t.Append({Value::Int(static_cast<int64_t>(id)), Value::Str(kLangs[lang(rng)]),
              Value::Str(kBots[bot(rng)]), Value::Str(kSubjects[subject(rng)]),
              Value::Int(body(rng)), Value::Float(score(rng)), origin,
              Value::MakeList(std::move(classes))});
  }
  return t;
}

RowTable GenSpamCSV(uint64_t num_mails, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> iters(1, 3);
  std::uniform_int_distribution<int64_t> cls(0, 63);
  std::uniform_real_distribution<double> score(0.0, 1.0);
  std::uniform_int_distribution<int> label(0, 4);

  RowTable t(SpamCSVSchema()->elem());
  for (uint64_t id = 0; id < num_mails; ++id) {
    int n = iters(rng);
    for (int it = 0; it < n; ++it) {
      t.Append({Value::Int(static_cast<int64_t>(id)), Value::Int(it), Value::Int(cls(rng)),
                Value::Int(cls(rng)), Value::Float(score(rng)), Value::Float(score(rng)),
                Value::Str(kLabels[label(rng)])});
    }
  }
  return t;
}

RowTable GenSpamBinary(uint64_t num_mails, double scale, uint64_t seed) {
  std::mt19937_64 rng(seed);
  uint64_t rows = static_cast<uint64_t>(static_cast<double>(num_mails) * scale);
  std::uniform_int_distribution<int64_t> mail(0, static_cast<int64_t>(num_mails) - 1);
  std::uniform_int_distribution<int64_t> day(0, 364), src(0, 9999), hits(1, 500);
  std::uniform_real_distribution<double> score(0.0, 1.0);

  RowTable t(SpamBinarySchema()->elem());
  for (uint64_t i = 0; i < rows; ++i) {
    t.Append({Value::Int(mail(rng)), Value::Int(day(rng)), Value::Int(src(rng)),
              Value::Float(score(rng)), Value::Int(hits(rng))});
  }
  return t;
}

}  // namespace datagen
}  // namespace proteus
