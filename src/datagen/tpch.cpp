#include "src/datagen/tpch.h"

#include <algorithm>
#include <random>
#include <unordered_map>

namespace proteus {
namespace datagen {

namespace {

const char* kShipModes[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"};
const char* kComments[] = {"quick brown fox", "deposits sleep", "furiously bold",
                           "ironic packages", "silent requests", "express pinto"};

}  // namespace

TypePtr LineitemSchema() {
  return Type::BagOfRecords({{"l_orderkey", Type::Int64()},
                             {"l_linenumber", Type::Int64()},
                             {"l_quantity", Type::Float64()},
                             {"l_extendedprice", Type::Float64()},
                             {"l_discount", Type::Float64()},
                             {"l_tax", Type::Float64()},
                             {"l_shipmode", Type::String()},
                             {"l_comment", Type::String()}});
}

TypePtr OrdersSchema() {
  return Type::BagOfRecords({{"o_orderkey", Type::Int64()},
                             {"o_custkey", Type::Int64()},
                             {"o_totalprice", Type::Float64()},
                             {"o_shippriority", Type::Int64()},
                             {"o_comment", Type::String()}});
}

TypePtr OrdersDenormSchema() {
  TypePtr line_elem = LineitemSchema()->elem();
  return Type::BagOfRecords(
      {{"o_orderkey", Type::Int64()},
       {"o_custkey", Type::Int64()},
       {"o_totalprice", Type::Float64()},
       {"lineitems", Type::Collection(CollectionKind::kArray, line_elem)}});
}

RowTable GenLineitem(uint64_t num_orders, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> lines_per_order(1, 7);
  std::uniform_real_distribution<double> qty(1.0, 50.0);
  std::uniform_real_distribution<double> price(900.0, 105000.0);
  std::uniform_real_distribution<double> disc(0.0, 0.10);
  std::uniform_real_distribution<double> tax(0.0, 0.08);
  std::uniform_int_distribution<int> mode(0, 4);
  std::uniform_int_distribution<int> comment(0, 5);

  RowTable t(LineitemSchema()->elem());
  for (uint64_t ok = 0; ok < num_orders; ++ok) {
    int n = lines_per_order(rng);
    for (int ln = 1; ln <= n; ++ln) {
      t.Append({Value::Int(static_cast<int64_t>(ok)), Value::Int(ln),
                Value::Float(qty(rng)), Value::Float(price(rng)), Value::Float(disc(rng)),
                Value::Float(tax(rng)), Value::Str(kShipModes[mode(rng)]),
                Value::Str(kComments[comment(rng)])});
    }
  }
  // The paper shuffles file contents to avoid interesting-order effects.
  std::shuffle(t.rows().begin(), t.rows().end(), rng);
  return t;
}

RowTable GenOrders(uint64_t num_orders, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> cust(0, static_cast<int64_t>(num_orders / 10 + 1));
  std::uniform_real_distribution<double> total(1000.0, 500000.0);
  std::uniform_int_distribution<int64_t> prio(0, 4);
  std::uniform_int_distribution<int> comment(0, 5);

  RowTable t(OrdersSchema()->elem());
  for (uint64_t ok = 0; ok < num_orders; ++ok) {
    t.Append({Value::Int(static_cast<int64_t>(ok)), Value::Int(cust(rng)),
              Value::Float(total(rng)), Value::Int(prio(rng)),
              Value::Str(kComments[comment(rng)])});
  }
  std::shuffle(t.rows().begin(), t.rows().end(), rng);
  return t;
}

RowTable Denormalize(const RowTable& orders, const RowTable& lineitem) {
  const auto& line_fields = lineitem.record_type()->fields();
  std::vector<std::string> line_names;
  for (const auto& f : line_fields) line_names.push_back(f.name);

  std::unordered_map<int64_t, ValueList> by_order;
  for (size_t i = 0; i < lineitem.num_rows(); ++i) {
    const auto& row = lineitem.row(i);
    by_order[row[0].i()].push_back(Value::MakeRecord(line_names, row));
  }

  RowTable t(OrdersDenormSchema()->elem());
  for (size_t i = 0; i < orders.num_rows(); ++i) {
    const auto& row = orders.row(i);
    int64_t ok = row[0].i();
    auto it = by_order.find(ok);
    ValueList lines = it == by_order.end() ? ValueList{} : it->second;
    t.Append({row[0], row[1], row[2], Value::MakeList(std::move(lines))});
  }
  return t;
}

}  // namespace datagen
}  // namespace proteus
