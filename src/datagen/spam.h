// Synthetic stand-in for the Symantec spam-trap workload (paper §7.2).
//
// The real workload is proprietary: periodic batches of JSON files describing
// spam e-mails (body language, origin IP/country, responsible bot), CSV files
// produced by classification/clustering iterations, and a large relational
// history table. We generate the same three-silo shape with matched schema
// richness: the JSON objects carry a nested `origin` record and a nested
// `classes` array (exercised by unnest queries), the CSV carries per-mail
// class assignments including string labels, and the binary table carries
// numeric history. Cross-dataset joins use `mail_id`.
#pragma once

#include <cstdint>

#include "src/storage/table.h"

namespace proteus {
namespace datagen {

TypePtr SpamJSONSchema();   ///< nested: origin record + classes array
TypePtr SpamCSVSchema();    ///< flat classification output
TypePtr SpamBinarySchema(); ///< flat history table

/// `num_mails` JSON spam objects; mail_id in [0, num_mails).
RowTable GenSpamJSON(uint64_t num_mails, uint64_t seed = 11);
/// Classification rows; several per mail (clustering iterations).
RowTable GenSpamCSV(uint64_t num_mails, uint64_t seed = 12);
/// History rows; `scale` rows per mail id on average.
RowTable GenSpamBinary(uint64_t num_mails, double scale = 1.25, uint64_t seed = 13);

}  // namespace datagen
}  // namespace proteus
