// TPC-H-like data generator for the synthetic evaluation (paper §7.1).
//
// The paper uses TPC-H `lineitem` and `orders` at SF10/SF100, shuffled to
// destroy interesting orders, converted to JSON for the hierarchical
// experiments, and a denormalized variant (orders embedding their lineitem
// array) for the unnest experiment. We regenerate the same shapes at a
// configurable scale: `num_orders` plays the role of the scale factor
// (TPC-H has 1.5M orders and ~6M lineitems per SF).
//
// Selectivity knob: `l_orderkey`/`o_orderkey` are uniform in [0, num_orders),
// so a predicate `l_orderkey < frac * num_orders` selects ~frac of the rows,
// exactly like the paper's `WHERE l_orderkey < [X]` templates.
#pragma once

#include <cstdint>

#include "src/storage/table.h"

namespace proteus {
namespace datagen {

TypePtr LineitemSchema();
TypePtr OrdersSchema();
/// Orders with an embedded `lineitems` array (denormalized JSON experiment).
TypePtr OrdersDenormSchema();

/// ~4 lineitems per order (1..7 uniform), rows shuffled.
RowTable GenLineitem(uint64_t num_orders, uint64_t seed = 1);
RowTable GenOrders(uint64_t num_orders, uint64_t seed = 2);

/// Builds the denormalized view: one row per order, with its lineitems nested
/// as an array of records (join pre-materialized, as document stores assume).
RowTable Denormalize(const RowTable& orders, const RowTable& lineitem);

}  // namespace datagen
}  // namespace proteus
