// Baseline engines standing in for the systems the paper compares against
// (§7 Experimental Setup). Each reproduces the architectural property that
// drives its published behaviour — not the systems' code, but their cost
// shape:
//
//   RowStoreEngine   ≈ PostgreSQL / DBMS X: tuple-at-a-time interpreted
//     execution over loaded row storage; JSON is a loaded binary document
//     value (jsonb-like) whose every field access is a dynamic lookup; data
//     must be loaded before first query.
//
//   ColumnarEngine   ≈ MonetDB / DBMS C: operator-at-a-time execution with
//     full materialization of intermediate results (selection vectors,
//     gathered columns); optionally sorts on a key at load and skips blocks
//     via zone maps (DBMS C's behaviour on its sort key); JSON is stored as
//     VARCHAR and re-parsed per access (the "immature JSON support" the
//     paper observes).
//
//   DocStoreEngine   ≈ MongoDB: documents in a packed BSON-like binary
//     encoding; per-document interpreted evaluation (cheap count, extra walk
//     per additional aggregate); native array unnest; joins only via a
//     map-reduce-style boxed materialization.
//
// Benchmarks drive all engines through the BenchQuery mini-spec, which
// covers exactly the paper's query templates (selections, projections with
// 1-4 aggregates, equi-joins, unnests, group-bys).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/engine/result.h"
#include "src/storage/table.h"

namespace proteus {
namespace baselines {

enum class AggKind { kCount, kMax, kMin, kSum };

struct BenchPred {
  std::string col;   ///< dotted path for nested docs ("origin.country")
  char cmp = '<';    ///< '<', '>', '='
  double val = 0;
  std::string sval;  ///< set for string equality
  bool is_string = false;
};

struct BenchAgg {
  AggKind kind = AggKind::kCount;
  std::string col;  ///< unused for count
};

/// One benchmark query over a primary table, with optional equi-join,
/// group-by, or array unnest.
struct BenchQuery {
  std::string table;
  std::vector<BenchPred> where;
  std::vector<BenchAgg> aggs;
  std::string group_by;

  // Optional equi-join: `table` is the probe side, `join_table` the build.
  std::string join_table;
  std::string probe_key, build_key;
  std::vector<BenchPred> build_where;
  std::vector<BenchAgg> build_aggs;  ///< aggregates over build-side columns
  /// Forces a nested-loop join in the RowStoreEngine — models an optimizer
  /// that treats one side as an opaque BLOB and cannot hash it (the paper's
  /// PostgreSQL Q39 outlier).
  bool nested_loop = false;

  // Optional unnest of an embedded array field of `table`.
  std::string unnest_path;
  std::vector<BenchPred> unnest_where;  ///< preds on element fields
};

// ---------------------------------------------------------------------------
// Row store (PostgreSQL-class)
// ---------------------------------------------------------------------------

class RowStoreEngine {
 public:
  /// Loads a flat table into row storage. Returns load time in ms.
  Result<double> LoadTable(const std::string& name, const RowTable& data);
  /// Loads documents (possibly nested) into jsonb-like binary values.
  Result<double> LoadDocuments(const std::string& name, const RowTable& data);

  Result<QueryResult> Execute(const BenchQuery& q) const;

 private:
  struct Stored {
    TypePtr schema;
    std::vector<Value> docs;  ///< one boxed record per row
  };
  Result<const Stored*> Find(const std::string& name) const;
  std::map<std::string, Stored> tables_;
};

// ---------------------------------------------------------------------------
// Column store (MonetDB / DBMS C class)
// ---------------------------------------------------------------------------

struct ColumnarOptions {
  /// Sort rows on this column at load; selections on it skip zone-mapped
  /// blocks (DBMS C behaviour).
  std::string sort_key;
};

class ColumnarEngine {
 public:
  Result<double> LoadTable(const std::string& name, const RowTable& data,
                           const ColumnarOptions& opts = {});
  /// JSON stored as one VARCHAR column, re-parsed on access.
  Result<double> LoadJSONAsVarchar(const std::string& name, const RowTable& data);

  Result<QueryResult> Execute(const BenchQuery& q) const;

  /// Bytes materialized into intermediates by the last query.
  size_t last_materialized_bytes() const { return last_materialized_; }

 private:
  struct Column {
    TypeKind type;
    std::vector<int64_t> ints;
    std::vector<double> floats;
    std::vector<std::string> strs;
  };
  struct Stored {
    uint64_t rows = 0;
    std::map<std::string, Column> cols;
    std::string sort_key;
    std::vector<std::pair<double, double>> zones;  ///< min/max per 1024-row block
    bool varchar_json = false;
    std::vector<std::string> raw_docs;
  };
  Result<const Stored*> Find(const std::string& name) const;
  Result<std::vector<uint32_t>> EvalPreds(const Stored& t,
                                          const std::vector<BenchPred>& preds) const;
  Result<double> ColValue(const Stored& t, const std::string& col, uint32_t row) const;

  std::map<std::string, Stored> tables_;
  mutable size_t last_materialized_ = 0;
};

// ---------------------------------------------------------------------------
// Document store (MongoDB class)
// ---------------------------------------------------------------------------

class DocStoreEngine {
 public:
  /// Serializes rows into the packed binary document log. Returns ms.
  Result<double> LoadDocuments(const std::string& name, const RowTable& data);

  Result<QueryResult> Execute(const BenchQuery& q) const;

  size_t storage_bytes(const std::string& name) const;

 private:
  struct Stored {
    std::string buf;                 ///< concatenated binary docs
    std::vector<uint64_t> offsets;   ///< start of each doc
  };
  Result<const Stored*> Find(const std::string& name) const;
  std::map<std::string, Stored> tables_;
};

/// BSON-lite encoding helpers (exposed for tests).
void EncodeDocument(const Value& record, std::string* out);
/// Finds a (possibly dotted) field in an encoded doc; returns false if
/// absent. Numeric results land in *num (strings in *str, arrays: *arr gets
/// the span of the embedded array region).
bool DocGetNumeric(const char* doc, const std::string& dotted, double* num);
bool DocGetString(const char* doc, const std::string& dotted, std::string_view* str);
bool DocGetArray(const char* doc, const std::string& dotted, const char** begin,
                 uint32_t* count);
const char* DocArrayElem(const char* elem);  ///< advances to the next element

}  // namespace baselines
}  // namespace proteus
