#include "src/baselines/baselines.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "src/common/counters.h"
#include "src/plugins/json_plugin.h"
#include "src/plugins/plugin.h"
#include "src/storage/text_writers.h"

namespace proteus {
namespace baselines {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct AggState {
  int64_t count = 0;
  double sum = 0;
  double mx = -1e300;
  double mn = 1e300;

  void Add(AggKind k, double v) {
    switch (k) {
      case AggKind::kCount: ++count; break;
      case AggKind::kSum: sum += v; break;
      case AggKind::kMax: mx = std::max(mx, v); break;
      case AggKind::kMin: mn = std::min(mn, v); break;
    }
  }
  Value Final(AggKind k) const {
    switch (k) {
      case AggKind::kCount: return Value::Int(count);
      case AggKind::kSum: return Value::Float(sum);
      case AggKind::kMax: return Value::Float(mx);
      case AggKind::kMin: return Value::Float(mn);
    }
    return Value::Null();
  }
};

const char* AggName(AggKind k) {
  switch (k) {
    case AggKind::kCount: return "count";
    case AggKind::kSum: return "sum";
    case AggKind::kMax: return "max";
    case AggKind::kMin: return "min";
  }
  return "?";
}

std::vector<std::string> AggColumns(const BenchQuery& q) {
  std::vector<std::string> names;
  for (const auto& a : q.aggs) names.push_back(AggName(a.kind));
  for (const auto& a : q.build_aggs) names.push_back(std::string(AggName(a.kind)) + "_b");
  return names;
}

bool CmpDouble(char cmp, double a, double b) {
  GlobalCounters().branch_evals++;
  switch (cmp) {
    case '<': return a < b;
    case '>': return a > b;
    case '=': return a == b;
  }
  return false;
}

/// Boxed field access via a dotted path (RowStore jsonb-like behaviour).
Result<Value> BoxedGet(const Value& doc, const std::string& dotted) {
  GlobalCounters().virtual_calls++;  // per-access dynamic dispatch
  Value cur = doc;
  size_t start = 0;
  while (true) {
    size_t dot = dotted.find('.', start);
    std::string part = dotted.substr(start, dot == std::string::npos ? dot : dot - start);
    auto f = cur.GetField(part);
    if (!f.ok()) return f.status();
    cur = std::move(*f);
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
}

Result<bool> BoxedPred(const Value& doc, const BenchPred& p) {
  PROTEUS_ASSIGN_OR_RETURN(Value v, BoxedGet(doc, p.col));
  if (v.is_null()) return false;
  if (p.is_string) return v.is_string() && v.s() == p.sval;
  return CmpDouble(p.cmp, v.AsFloat(), p.val);
}

}  // namespace

// ===========================================================================
// RowStoreEngine
// ===========================================================================

Result<double> RowStoreEngine::LoadTable(const std::string& name, const RowTable& data) {
  return LoadDocuments(name, data);
}

Result<double> RowStoreEngine::LoadDocuments(const std::string& name, const RowTable& data) {
  auto t0 = std::chrono::steady_clock::now();
  Stored s;
  s.schema = data.record_type();
  s.docs.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    s.docs.push_back(data.RecordAt(i));  // boxed binary representation
  }
  tables_[name] = std::move(s);
  return MsSince(t0);
}

Result<const RowStoreEngine::Stored*> RowStoreEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("rowstore: no table '" + name + "'");
  return &it->second;
}

Result<QueryResult> RowStoreEngine::Execute(const BenchQuery& q) const {
  PROTEUS_ASSIGN_OR_RETURN(const Stored* t, Find(q.table));

  // Optional build side for a join. With nested_loop the "hash" degenerates
  // to a flat candidate list probed linearly per outer tuple.
  std::unordered_map<int64_t, std::vector<const Value*>> build;
  std::vector<std::pair<int64_t, const Value*>> build_flat;
  const Stored* bt = nullptr;
  if (!q.join_table.empty()) {
    PROTEUS_ASSIGN_OR_RETURN(bt, Find(q.join_table));
    for (const Value& doc : bt->docs) {
      GlobalCounters().virtual_calls++;
      bool pass = true;
      for (const auto& p : q.build_where) {
        PROTEUS_ASSIGN_OR_RETURN(bool ok, BoxedPred(doc, p));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      PROTEUS_ASSIGN_OR_RETURN(Value k, BoxedGet(doc, q.build_key));
      if (q.nested_loop) {
        build_flat.emplace_back(k.i(), &doc);
      } else {
        build[k.i()].push_back(&doc);
      }
      GlobalCounters().bytes_materialized += 16;
    }
  }

  bool grouped = !q.group_by.empty();
  std::map<std::string, std::vector<AggState>> groups;  // key printable -> states
  std::map<std::string, Value> group_keys;
  std::vector<AggState> flat(q.aggs.size() + q.build_aggs.size());

  auto accumulate = [&](const Value& doc, const Value* build_doc) -> Status {
    std::vector<AggState>* states = &flat;
    if (grouped) {
      PROTEUS_ASSIGN_OR_RETURN(Value k, BoxedGet(doc, q.group_by));
      std::string kk = k.ToString();
      auto [it, inserted] = groups.try_emplace(kk);
      if (inserted) {
        it->second.resize(q.aggs.size() + q.build_aggs.size());
        group_keys[kk] = k;
      }
      states = &it->second;
    }
    for (size_t i = 0; i < q.aggs.size(); ++i) {
      double v = 0;
      if (q.aggs[i].kind != AggKind::kCount) {
        PROTEUS_ASSIGN_OR_RETURN(Value x, BoxedGet(doc, q.aggs[i].col));
        v = x.AsFloat();
      }
      (*states)[i].Add(q.aggs[i].kind, v);
    }
    for (size_t i = 0; i < q.build_aggs.size(); ++i) {
      double v = 0;
      if (q.build_aggs[i].kind != AggKind::kCount && build_doc != nullptr) {
        PROTEUS_ASSIGN_OR_RETURN(Value x, BoxedGet(*build_doc, q.build_aggs[i].col));
        v = x.AsFloat();
      }
      (*states)[q.aggs.size() + i].Add(q.build_aggs[i].kind, v);
    }
    return Status::OK();
  };

  for (const Value& doc : t->docs) {
    GlobalCounters().virtual_calls++;  // Volcano getNext
    bool pass = true;
    for (const auto& p : q.where) {
      PROTEUS_ASSIGN_OR_RETURN(bool ok, BoxedPred(doc, p));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;

    if (!q.unnest_path.empty()) {
      PROTEUS_ASSIGN_OR_RETURN(Value arr, BoxedGet(doc, q.unnest_path));
      if (arr.is_null()) continue;
      for (const Value& elem : arr.list()) {
        bool epass = true;
        for (const auto& p : q.unnest_where) {
          PROTEUS_ASSIGN_OR_RETURN(bool ok, BoxedPred(elem, p));
          if (!ok) {
            epass = false;
            break;
          }
        }
        if (epass) PROTEUS_RETURN_NOT_OK(accumulate(elem, nullptr));
      }
      continue;
    }
    if (bt != nullptr) {
      PROTEUS_ASSIGN_OR_RETURN(Value k, BoxedGet(doc, q.probe_key));
      if (q.nested_loop) {
        for (const auto& [bk, bdoc] : build_flat) {
          GlobalCounters().branch_evals++;
          if (bk == k.i()) PROTEUS_RETURN_NOT_OK(accumulate(doc, bdoc));
        }
        continue;
      }
      auto it = build.find(k.i());
      if (it == build.end()) continue;
      for (const Value* bdoc : it->second) {
        PROTEUS_RETURN_NOT_OK(accumulate(doc, bdoc));
      }
      continue;
    }
    PROTEUS_RETURN_NOT_OK(accumulate(doc, nullptr));
  }

  QueryResult out;
  std::vector<std::string> agg_names = AggColumns(q);
  if (grouped) {
    out.columns.push_back(q.group_by);
    out.columns.insert(out.columns.end(), agg_names.begin(), agg_names.end());
    for (auto& [kk, states] : groups) {
      std::vector<Value> row{group_keys[kk]};
      for (size_t i = 0; i < q.aggs.size(); ++i) row.push_back(states[i].Final(q.aggs[i].kind));
      for (size_t i = 0; i < q.build_aggs.size(); ++i) {
        row.push_back(states[q.aggs.size() + i].Final(q.build_aggs[i].kind));
      }
      out.rows.push_back(std::move(row));
    }
  } else {
    out.columns = agg_names;
    std::vector<Value> row;
    for (size_t i = 0; i < q.aggs.size(); ++i) row.push_back(flat[i].Final(q.aggs[i].kind));
    for (size_t i = 0; i < q.build_aggs.size(); ++i) {
      row.push_back(flat[q.aggs.size() + i].Final(q.build_aggs[i].kind));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

// ===========================================================================
// ColumnarEngine
// ===========================================================================

Result<double> ColumnarEngine::LoadTable(const std::string& name, const RowTable& data,
                                         const ColumnarOptions& opts) {
  auto t0 = std::chrono::steady_clock::now();
  Stored s;
  s.rows = data.num_rows();
  const auto& fields = data.record_type()->fields();

  // Optional sort on load (DBMS C).
  std::vector<uint32_t> order(data.num_rows());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  int sort_col = -1;
  if (!opts.sort_key.empty()) {
    for (size_t j = 0; j < fields.size(); ++j) {
      if (fields[j].name == opts.sort_key) sort_col = static_cast<int>(j);
    }
    if (sort_col >= 0) {
      std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return data.row(a)[sort_col].AsFloat() < data.row(b)[sort_col].AsFloat();
      });
      s.sort_key = opts.sort_key;
    }
  }

  for (size_t j = 0; j < fields.size(); ++j) {
    Column c;
    c.type = fields[j].type->kind();
    if (!fields[j].type->is_primitive()) continue;  // flat tables only
    for (uint32_t i : order) {
      const Value& v = data.row(i)[j];
      switch (c.type) {
        case TypeKind::kInt64:
        case TypeKind::kDate:
          c.ints.push_back(v.is_null() ? 0 : v.i());
          break;
        case TypeKind::kBool:
          c.ints.push_back(!v.is_null() && v.b() ? 1 : 0);
          break;
        case TypeKind::kFloat64:
          c.floats.push_back(v.is_null() ? 0 : v.AsFloat());
          break;
        case TypeKind::kString:
          c.strs.push_back(v.is_null() ? "" : v.s());
          break;
        default:
          break;
      }
    }
    s.cols[fields[j].name] = std::move(c);
  }
  // Zone map on the sort key.
  if (sort_col >= 0) {
    const Column& key = s.cols[s.sort_key];
    for (uint64_t b = 0; b < s.rows; b += 1024) {
      double lo = 1e300, hi = -1e300;
      for (uint64_t i = b; i < std::min(s.rows, b + 1024); ++i) {
        double v = key.type == TypeKind::kFloat64 ? key.floats[i]
                                                  : static_cast<double>(key.ints[i]);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      s.zones.push_back({lo, hi});
    }
  }
  tables_[name] = std::move(s);
  return MsSince(t0);
}

Result<double> ColumnarEngine::LoadJSONAsVarchar(const std::string& name,
                                                 const RowTable& data) {
  auto t0 = std::chrono::steady_clock::now();
  Stored s;
  s.rows = data.num_rows();
  s.varchar_json = true;
  s.raw_docs.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    s.raw_docs.push_back(ValueToJSON(data.RecordAt(i)));
  }
  tables_[name] = std::move(s);
  return MsSince(t0);
}

Result<const ColumnarEngine::Stored*> ColumnarEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("columnar: no table '" + name + "'");
  return &it->second;
}

Result<double> ColumnarEngine::ColValue(const Stored& t, const std::string& col,
                                        uint32_t row) const {
  if (t.varchar_json) {
    // VARCHAR-encoded JSON: parse the document on every access.
    const std::string& doc = t.raw_docs[row];
    auto v = ParseJsonValue(doc.data(), doc.data() + doc.size());
    if (!v.ok()) return v.status();
    Value cur = *v;
    size_t start = 0;
    while (true) {
      size_t dot = col.find('.', start);
      auto f = cur.GetField(col.substr(start, dot == std::string::npos ? dot : dot - start));
      if (!f.ok()) return f.status();
      cur = *f;
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    return cur.is_null() ? 0.0 : cur.AsFloat();
  }
  auto it = t.cols.find(col);
  if (it == t.cols.end()) return Status::NotFound("columnar: no column '" + col + "'");
  const Column& c = it->second;
  return c.type == TypeKind::kFloat64 ? c.floats[row] : static_cast<double>(c.ints[row]);
}

Result<std::vector<uint32_t>> ColumnarEngine::EvalPreds(
    const Stored& t, const std::vector<BenchPred>& preds) const {
  // Operator-at-a-time: each predicate materializes a selection vector.
  std::vector<uint32_t> sel;
  bool first = true;
  for (const auto& p : preds) {
    std::vector<uint32_t> next;
    auto test = [&](uint32_t i) -> Result<bool> {
      if (p.is_string) {
        if (t.varchar_json) {
          const std::string& doc = t.raw_docs[i];
          auto v = ParseJsonValue(doc.data(), doc.data() + doc.size());
          if (!v.ok()) return v.status();
          auto f = v->GetField(p.col);
          return f.ok() && f->is_string() && f->s() == p.sval;
        }
        auto it = t.cols.find(p.col);
        if (it == t.cols.end()) return Status::NotFound("no column " + p.col);
        return it->second.strs[i] == p.sval;
      }
      PROTEUS_ASSIGN_OR_RETURN(double v, ColValue(t, p.col, i));
      return CmpDouble(p.cmp, v, p.val);
    };
    if (first) {
      // Zone-map skipping on the sort key.
      uint64_t begin = 0, end = t.rows;
      if (!t.varchar_json && p.col == t.sort_key && !t.zones.empty() && !p.is_string) {
        for (size_t z = 0; z < t.zones.size(); ++z) {
          bool maybe = p.cmp == '<' ? t.zones[z].first < p.val
                       : p.cmp == '>' ? t.zones[z].second > p.val
                                      : (t.zones[z].first <= p.val && p.val <= t.zones[z].second);
          if (!maybe) {
            if (p.cmp == '<' && t.zones[z].first >= p.val) {
              end = std::min<uint64_t>(end, z * 1024);
              break;
            }
            begin = (z + 1) * 1024;
          }
        }
      }
      for (uint64_t i = begin; i < end; ++i) {
        PROTEUS_ASSIGN_OR_RETURN(bool ok, test(static_cast<uint32_t>(i)));
        if (ok) next.push_back(static_cast<uint32_t>(i));
      }
      first = false;
    } else {
      for (uint32_t i : sel) {
        PROTEUS_ASSIGN_OR_RETURN(bool ok, test(i));
        if (ok) next.push_back(i);
      }
    }
    last_materialized_ += next.size() * sizeof(uint32_t);
    sel = std::move(next);
  }
  if (first) {  // no predicates: all rows qualify (materialized anyway)
    sel.resize(t.rows);
    for (uint32_t i = 0; i < t.rows; ++i) sel[i] = i;
    last_materialized_ += sel.size() * sizeof(uint32_t);
  }
  GlobalCounters().bytes_materialized += last_materialized_;
  return sel;
}

Result<QueryResult> ColumnarEngine::Execute(const BenchQuery& q) const {
  last_materialized_ = 0;
  PROTEUS_ASSIGN_OR_RETURN(const Stored* t, Find(q.table));
  if (!q.unnest_path.empty()) {
    return Status::Unimplemented("columnar baseline: no unnest operator");
  }
  PROTEUS_ASSIGN_OR_RETURN(std::vector<uint32_t> sel, EvalPreds(*t, q.where));

  // Optional join: build from join_table, probe with `sel`.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;  // (probe row, build row)
  const Stored* bt = nullptr;
  if (!q.join_table.empty()) {
    PROTEUS_ASSIGN_OR_RETURN(bt, Find(q.join_table));
    PROTEUS_ASSIGN_OR_RETURN(std::vector<uint32_t> bsel, EvalPreds(*bt, q.build_where));
    std::unordered_multimap<int64_t, uint32_t> ht;
    ht.reserve(bsel.size());
    for (uint32_t i : bsel) {
      PROTEUS_ASSIGN_OR_RETURN(double k, ColValue(*bt, q.build_key, i));
      ht.emplace(static_cast<int64_t>(k), i);
    }
    for (uint32_t i : sel) {
      PROTEUS_ASSIGN_OR_RETURN(double k, ColValue(*t, q.probe_key, i));
      auto [lo, hi] = ht.equal_range(static_cast<int64_t>(k));
      for (auto it = lo; it != hi; ++it) pairs.push_back({i, it->second});
    }
    // Materialized join index.
    last_materialized_ += pairs.size() * sizeof(pairs[0]);
    GlobalCounters().bytes_materialized += pairs.size() * sizeof(pairs[0]);
  }

  auto gather = [&](const Stored& tbl, const std::string& col, bool from_build)
      -> Result<std::vector<double>> {
    std::vector<double> out;
    if (!pairs.empty() || bt != nullptr) {
      out.reserve(pairs.size());
      for (const auto& [pi, bi] : pairs) {
        PROTEUS_ASSIGN_OR_RETURN(double v, ColValue(tbl, col, from_build ? bi : pi));
        out.push_back(v);
      }
    } else {
      out.reserve(sel.size());
      for (uint32_t i : sel) {
        PROTEUS_ASSIGN_OR_RETURN(double v, ColValue(tbl, col, i));
        out.push_back(v);
      }
    }
    // Gathered intermediate column (the materialization the paper measures).
    last_materialized_ += out.size() * sizeof(double);
    GlobalCounters().bytes_materialized += out.size() * sizeof(double);
    return out;
  };

  size_t n_qualifying = bt != nullptr ? pairs.size() : sel.size();
  QueryResult out;
  std::vector<std::string> agg_names = AggColumns(q);

  if (!q.group_by.empty()) {
    // Keys: numeric columns gather into doubles; string columns group on the
    // dictionary value directly.
    bool string_key = false;
    if (!t->varchar_json) {
      auto it = t->cols.find(q.group_by);
      if (it == t->cols.end()) return Status::NotFound("no column " + q.group_by);
      string_key = it->second.type == TypeKind::kString;
    }
    std::vector<std::vector<double>> agg_cols;
    for (const auto& a : q.aggs) {
      if (a.kind == AggKind::kCount) {
        agg_cols.emplace_back();
      } else {
        PROTEUS_ASSIGN_OR_RETURN(std::vector<double> col, gather(*t, a.col, false));
        agg_cols.push_back(std::move(col));
      }
    }
    std::map<std::string, std::vector<AggState>> sgroups;
    std::map<int64_t, std::vector<AggState>> igroups;
    auto update = [&](std::vector<AggState>& states, size_t r) {
      if (states.empty()) states.resize(q.aggs.size());
      for (size_t i = 0; i < q.aggs.size(); ++i) {
        states[i].Add(q.aggs[i].kind, q.aggs[i].kind == AggKind::kCount ? 0 : agg_cols[i][r]);
      }
    };
    if (string_key) {
      const Column& kc = t->cols.at(q.group_by);
      // Gathered key column is materialized like any intermediate.
      last_materialized_ += sel.size() * sizeof(void*);
      GlobalCounters().bytes_materialized += sel.size() * sizeof(void*);
      for (size_t r = 0; r < sel.size(); ++r) update(sgroups[kc.strs[sel[r]]], r);
    } else {
      PROTEUS_ASSIGN_OR_RETURN(std::vector<double> keys, gather(*t, q.group_by, false));
      for (size_t r = 0; r < keys.size(); ++r) {
        update(igroups[static_cast<int64_t>(keys[r])], r);
      }
    }
    out.columns.push_back(q.group_by);
    out.columns.insert(out.columns.end(), agg_names.begin(), agg_names.end());
    auto emit = [&](Value key, std::vector<AggState>& states) {
      std::vector<Value> row{std::move(key)};
      for (size_t i = 0; i < q.aggs.size(); ++i) row.push_back(states[i].Final(q.aggs[i].kind));
      out.rows.push_back(std::move(row));
    };
    for (auto& [k, states] : sgroups) emit(Value::Str(k), states);
    for (auto& [k, states] : igroups) emit(Value::Int(k), states);
    return out;
  }

  std::vector<Value> row;
  for (const auto& a : q.aggs) {
    if (a.kind == AggKind::kCount) {
      row.push_back(Value::Int(static_cast<int64_t>(n_qualifying)));
      continue;
    }
    PROTEUS_ASSIGN_OR_RETURN(std::vector<double> col, gather(*t, a.col, false));
    AggState st;
    for (double v : col) st.Add(a.kind, v);
    row.push_back(st.Final(a.kind));
  }
  for (const auto& a : q.build_aggs) {
    if (a.kind == AggKind::kCount) {
      row.push_back(Value::Int(static_cast<int64_t>(n_qualifying)));
      continue;
    }
    PROTEUS_ASSIGN_OR_RETURN(std::vector<double> col, gather(*bt, a.col, true));
    AggState st;
    for (double v : col) st.Add(a.kind, v);
    row.push_back(st.Final(a.kind));
  }
  out.columns = agg_names;
  out.rows.push_back(std::move(row));
  return out;
}

// ===========================================================================
// DocStoreEngine — BSON-lite
// ===========================================================================

namespace {
constexpr uint8_t kDocInt = 1;
constexpr uint8_t kDocDouble = 2;
constexpr uint8_t kDocBool = 3;
constexpr uint8_t kDocString = 4;
constexpr uint8_t kDocNested = 5;
constexpr uint8_t kDocArray = 6;

template <typename T>
void Put(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
T Get(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

void EncodeValuePayload(const Value& v, uint8_t* type, std::string* out);

void EncodeFields(const RecordValue& rec, std::string* out) {
  for (size_t i = 0; i < rec.names.size(); ++i) {
    uint8_t type;
    std::string payload;
    EncodeValuePayload(rec.values[i], &type, &payload);
    Put(out, type);
    Put(out, static_cast<uint8_t>(rec.names[i].size()));
    out->append(rec.names[i]);
    out->append(payload);
  }
}

void EncodeValuePayload(const Value& v, uint8_t* type, std::string* out) {
  if (v.is_int()) {
    *type = kDocInt;
    Put(out, v.i());
  } else if (v.is_float()) {
    *type = kDocDouble;
    Put(out, v.f());
  } else if (v.is_bool()) {
    *type = kDocBool;
    out->push_back(v.b() ? 1 : 0);
  } else if (v.is_string()) {
    *type = kDocString;
    Put(out, static_cast<uint32_t>(v.s().size()));
    out->append(v.s());
  } else if (v.is_record()) {
    *type = kDocNested;
    std::string fields;
    EncodeFields(v.record(), &fields);
    Put(out, static_cast<uint32_t>(fields.size()));
    out->append(fields);
  } else if (v.is_list()) {
    *type = kDocArray;
    std::string elems;
    uint32_t count = 0;
    for (const Value& e : v.list()) {
      uint8_t et;
      std::string payload;
      EncodeValuePayload(e, &et, &payload);
      Put(&elems, et);
      elems.append(payload);
      ++count;
    }
    Put(out, static_cast<uint32_t>(elems.size()));
    Put(out, count);
    out->append(elems);
  } else {  // null -> encode as bool false placeholder with distinct type 0
    *type = 0;
  }
}

/// Size of a value payload starting at p with the given type tag.
size_t PayloadSize(uint8_t type, const char* p) {
  switch (type) {
    case 0: return 0;
    case kDocInt:
    case kDocDouble: return 8;
    case kDocBool: return 1;
    case kDocString: return 4 + Get<uint32_t>(p);
    case kDocNested: return 4 + Get<uint32_t>(p);
    case kDocArray: return 8 + Get<uint32_t>(p);
  }
  return 0;
}

/// Walks the fields region [p, end): finds `name`; returns type+payload ptr.
bool FindField(const char* p, const char* end, std::string_view name, uint8_t* type,
               const char** payload) {
  while (p < end) {
    uint8_t t = static_cast<uint8_t>(*p++);
    uint8_t nlen = static_cast<uint8_t>(*p++);
    std::string_view fname(p, nlen);
    p += nlen;
    if (fname == name) {
      *type = t;
      *payload = p;
      return true;
    }
    p += PayloadSize(t, p);
  }
  return false;
}

/// Resolves a dotted path inside a doc's field region.
bool ResolvePath(const char* fields, const char* fields_end, const std::string& dotted,
                 uint8_t* type, const char** payload) {
  const char* p = fields;
  const char* end = fields_end;
  size_t start = 0;
  while (true) {
    size_t dot = dotted.find('.', start);
    std::string_view part(dotted.data() + start,
                          (dot == std::string::npos ? dotted.size() : dot) - start);
    uint8_t t;
    const char* pay;
    if (!FindField(p, end, part, &t, &pay)) return false;
    if (dot == std::string::npos) {
      *type = t;
      *payload = pay;
      return true;
    }
    if (t != kDocNested) return false;
    uint32_t len = Get<uint32_t>(pay);
    p = pay + 4;
    end = p + len;
    start = dot + 1;
  }
}

}  // namespace

void EncodeDocument(const Value& record, std::string* out) {
  std::string fields;
  EncodeFields(record.record(), &fields);
  Put(out, static_cast<uint32_t>(fields.size()));
  out->append(fields);
}

bool DocGetNumeric(const char* doc, const std::string& dotted, double* num) {
  uint32_t flen = Get<uint32_t>(doc);
  uint8_t type;
  const char* pay;
  if (!ResolvePath(doc + 4, doc + 4 + flen, dotted, &type, &pay)) return false;
  switch (type) {
    case kDocInt: *num = static_cast<double>(Get<int64_t>(pay)); return true;
    case kDocDouble: *num = Get<double>(pay); return true;
    case kDocBool: *num = *pay != 0 ? 1 : 0; return true;
    default: return false;
  }
}

bool DocGetString(const char* doc, const std::string& dotted, std::string_view* str) {
  uint32_t flen = Get<uint32_t>(doc);
  uint8_t type;
  const char* pay;
  if (!ResolvePath(doc + 4, doc + 4 + flen, dotted, &type, &pay)) return false;
  if (type != kDocString) return false;
  uint32_t len = Get<uint32_t>(pay);
  *str = std::string_view(pay + 4, len);
  return true;
}

bool DocGetArray(const char* doc, const std::string& dotted, const char** begin,
                 uint32_t* count) {
  uint32_t flen = Get<uint32_t>(doc);
  uint8_t type;
  const char* pay;
  if (!ResolvePath(doc + 4, doc + 4 + flen, dotted, &type, &pay)) return false;
  if (type != kDocArray) return false;
  *count = Get<uint32_t>(pay + 4);
  *begin = pay + 8;
  return true;
}

const char* DocArrayElem(const char* elem) {
  uint8_t type = static_cast<uint8_t>(*elem);
  return elem + 1 + PayloadSize(type, elem + 1);
}

Result<double> DocStoreEngine::LoadDocuments(const std::string& name, const RowTable& data) {
  auto t0 = std::chrono::steady_clock::now();
  Stored s;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    s.offsets.push_back(s.buf.size());
    EncodeDocument(data.RecordAt(i), &s.buf);
  }
  tables_[name] = std::move(s);
  return MsSince(t0);
}

size_t DocStoreEngine::storage_bytes(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.buf.size();
}

Result<const DocStoreEngine::Stored*> DocStoreEngine::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("docstore: no collection '" + name + "'");
  return &it->second;
}

namespace {

bool DocPred(const char* doc, const BenchPred& p) {
  if (p.is_string) {
    std::string_view s;
    return DocGetString(doc, p.col, &s) && s == p.sval;
  }
  double v;
  if (!DocGetNumeric(doc, p.col, &v)) return false;
  return CmpDouble(p.cmp, v, p.val);
}

/// Predicate over an array element (elements are nested docs or scalars).
bool ElemPred(const char* elem, const BenchPred& p) {
  uint8_t type = static_cast<uint8_t>(*elem);
  const char* pay = elem + 1;
  if (type == kDocNested) {
    uint32_t len = Get<uint32_t>(pay);
    uint8_t ft;
    const char* fpay;
    if (!ResolvePath(pay + 4, pay + 4 + len, p.col, &ft, &fpay)) return false;
    if (p.is_string) {
      if (ft != kDocString) return false;
      uint32_t slen = Get<uint32_t>(fpay);
      return std::string_view(fpay + 4, slen) == p.sval;
    }
    double v = ft == kDocInt      ? static_cast<double>(Get<int64_t>(fpay))
               : ft == kDocDouble ? Get<double>(fpay)
                                  : 0;
    return CmpDouble(p.cmp, v, p.val);
  }
  double v = type == kDocInt ? static_cast<double>(Get<int64_t>(pay)) : Get<double>(pay);
  return CmpDouble(p.cmp, v, p.val);
}

Value DecodeDocToValue(const char* doc);

Value DecodePayload(uint8_t type, const char* pay) {
  switch (type) {
    case kDocInt: return Value::Int(Get<int64_t>(pay));
    case kDocDouble: return Value::Float(Get<double>(pay));
    case kDocBool: return Value::Boolean(*pay != 0);
    case kDocString: {
      uint32_t len = Get<uint32_t>(pay);
      return Value::Str(std::string(pay + 4, len));
    }
    case kDocNested: {
      std::string tmp;
      uint32_t len = Get<uint32_t>(pay);
      tmp.append(reinterpret_cast<const char*>(&len), 4);
      tmp.append(pay + 4, len);
      return DecodeDocToValue(tmp.data());
    }
    case kDocArray: {
      uint32_t count = Get<uint32_t>(pay + 4);
      const char* e = pay + 8;
      ValueList items;
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t et = static_cast<uint8_t>(*e);
        items.push_back(DecodePayload(et, e + 1));
        e = DocArrayElem(e);
      }
      return Value::MakeList(std::move(items));
    }
    default:
      return Value::Null();
  }
}

Value DecodeDocToValue(const char* doc) {
  uint32_t flen = Get<uint32_t>(doc);
  const char* p = doc + 4;
  const char* end = p + flen;
  std::vector<std::string> names;
  std::vector<Value> values;
  while (p < end) {
    uint8_t t = static_cast<uint8_t>(*p++);
    uint8_t nlen = static_cast<uint8_t>(*p++);
    names.emplace_back(p, nlen);
    p += nlen;
    values.push_back(DecodePayload(t, p));
    p += PayloadSize(t, p);
  }
  return Value::MakeRecord(std::move(names), std::move(values));
}

}  // namespace

Result<QueryResult> DocStoreEngine::Execute(const BenchQuery& q) const {
  PROTEUS_ASSIGN_OR_RETURN(const Stored* t, Find(q.table));
  std::vector<std::string> agg_names = AggColumns(q);

  // Joins: map-reduce style — decode both sides into boxed values, group the
  // build side by key, then merge (the expensive path the paper observes).
  if (!q.join_table.empty()) {
    PROTEUS_ASSIGN_OR_RETURN(const Stored* bt, Find(q.join_table));
    std::unordered_multimap<int64_t, Value> build;
    for (uint64_t off : bt->offsets) {
      const char* doc = bt->buf.data() + off;
      bool pass = true;
      for (const auto& p : q.build_where) pass = pass && DocPred(doc, p);
      if (!pass) continue;
      Value v = DecodeDocToValue(doc);  // boxed materialization
      GlobalCounters().bytes_materialized += 64;
      double k;
      if (!DocGetNumeric(doc, q.build_key, &k)) continue;
      build.emplace(static_cast<int64_t>(k), std::move(v));
    }
    std::vector<AggState> states(q.aggs.size() + q.build_aggs.size());
    for (uint64_t off : t->offsets) {
      const char* doc = t->buf.data() + off;
      bool pass = true;
      for (const auto& p : q.where) pass = pass && DocPred(doc, p);
      if (!pass) continue;
      double k;
      if (!DocGetNumeric(doc, q.probe_key, &k)) continue;
      auto [lo, hi] = build.equal_range(static_cast<int64_t>(k));
      for (auto it = lo; it != hi; ++it) {
        for (size_t i = 0; i < q.aggs.size(); ++i) {
          double v = 0;
          if (q.aggs[i].kind != AggKind::kCount) DocGetNumeric(doc, q.aggs[i].col, &v);
          states[i].Add(q.aggs[i].kind, v);
        }
        for (size_t i = 0; i < q.build_aggs.size(); ++i) {
          double v = 0;
          if (q.build_aggs[i].kind != AggKind::kCount) {
            auto f = it->second.GetField(q.build_aggs[i].col);
            if (f.ok() && !f->is_null()) v = f->AsFloat();
          }
          states[q.aggs.size() + i].Add(q.build_aggs[i].kind, v);
        }
      }
    }
    QueryResult out;
    out.columns = agg_names;
    std::vector<Value> row;
    for (size_t i = 0; i < q.aggs.size(); ++i) row.push_back(states[i].Final(q.aggs[i].kind));
    for (size_t i = 0; i < q.build_aggs.size(); ++i) {
      row.push_back(states[q.aggs.size() + i].Final(q.build_aggs[i].kind));
    }
    out.rows.push_back(std::move(row));
    return out;
  }

  bool grouped = !q.group_by.empty();
  std::map<std::string, std::vector<AggState>> groups;
  std::map<std::string, Value> group_keys;
  std::vector<AggState> flat(q.aggs.size());

  for (uint64_t off : t->offsets) {
    const char* doc = t->buf.data() + off;
    bool pass = true;
    for (const auto& p : q.where) pass = pass && DocPred(doc, p);
    if (!pass) continue;

    if (!q.unnest_path.empty()) {
      const char* elem;
      uint32_t count;
      if (!DocGetArray(doc, q.unnest_path, &elem, &count)) continue;
      for (uint32_t i = 0; i < count; ++i) {
        bool epass = true;
        for (const auto& p : q.unnest_where) epass = epass && ElemPred(elem, p);
        if (epass) {
          for (size_t a = 0; a < q.aggs.size(); ++a) flat[a].Add(q.aggs[a].kind, 0);
        }
        elem = DocArrayElem(elem);
      }
      continue;
    }

    std::vector<AggState>* states = &flat;
    if (grouped) {
      double kn;
      std::string_view ks;
      Value key;
      if (DocGetNumeric(doc, q.group_by, &kn)) {
        key = Value::Int(static_cast<int64_t>(kn));
      } else if (DocGetString(doc, q.group_by, &ks)) {
        key = Value::Str(std::string(ks));
      } else {
        continue;
      }
      std::string kk = key.ToString();
      auto [it, inserted] = groups.try_emplace(kk);
      if (inserted) {
        it->second.resize(q.aggs.size());
        group_keys[kk] = key;
      }
      states = &it->second;
    }
    // One extra document walk per additional aggregate: the reason MongoDB
    // loses ground as the aggregate count grows (paper Fig 5).
    for (size_t i = 0; i < q.aggs.size(); ++i) {
      double v = 0;
      if (q.aggs[i].kind != AggKind::kCount) DocGetNumeric(doc, q.aggs[i].col, &v);
      (*states)[i].Add(q.aggs[i].kind, v);
    }
  }

  QueryResult out;
  if (grouped) {
    out.columns.push_back(q.group_by);
    out.columns.insert(out.columns.end(), agg_names.begin(), agg_names.end());
    for (auto& [kk, states] : groups) {
      std::vector<Value> row{group_keys[kk]};
      for (size_t i = 0; i < q.aggs.size(); ++i) row.push_back(states[i].Final(q.aggs[i].kind));
      out.rows.push_back(std::move(row));
    }
  } else {
    out.columns = agg_names;
    std::vector<Value> row;
    for (size_t i = 0; i < q.aggs.size(); ++i) row.push_back(flat[i].Final(q.aggs[i].kind));
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace baselines
}  // namespace proteus
