#include "src/catalog/catalog.h"

#include <algorithm>

namespace proteus {

const char* DataFormatName(DataFormat f) {
  switch (f) {
    case DataFormat::kCSV: return "csv";
    case DataFormat::kJSON: return "json";
    case DataFormat::kBinaryRow: return "binrow";
    case DataFormat::kBinaryColumn: return "bincol";
    case DataFormat::kCacheBlock: return "cache";
  }
  return "?";
}

Status Catalog::Register(DatasetInfo info) {
  if (info.name.empty()) return Status::InvalidArgument("dataset name is empty");
  if (!info.type || info.type->kind() != TypeKind::kCollection ||
      info.type->elem()->kind() != TypeKind::kRecord) {
    return Status::InvalidArgument("dataset '" + info.name +
                                   "' type must be a collection of records");
  }
  {
    MutexLock lk(mu_);
    if (datasets_.count(info.name)) {
      return Status::AlreadyExists("dataset '" + info.name + "' already registered");
    }
    datasets_.emplace(info.name, std::move(info));
  }
  BumpEpoch();
  return Status::OK();
}

Result<const DatasetInfo*> Catalog::Get(const std::string& name) const {
  MutexLock lk(mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) return Status::NotFound("unknown dataset '" + name + "'");
  // Map nodes are never erased, so the pointer outlives the lock.
  return &it->second;
}

std::vector<std::string> Catalog::ListDatasets() const {
  std::vector<std::string> names;
  MutexLock lk(mu_);
  names.reserve(datasets_.size());
  for (const auto& [k, v] : datasets_) names.push_back(k);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace proteus
