// Dataset registry and metadata store.
//
// Proteus queries data in situ: registering a dataset records its format,
// location, and schema, but moves no data. Statistics are collected lazily by
// the input plug-ins (first cold scan / materialization points / idle daemon,
// paper §5.2 "Enabling Cost-based Optimizations").
#pragma once

#include <atomic>
#include <bitset>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/types/type.h"

namespace proteus {

enum class DataFormat { kCSV, kJSON, kBinaryRow, kBinaryColumn, kCacheBlock };

const char* DataFormatName(DataFormat f);

struct CSVOptions {
  char delimiter = ',';
  bool has_header = false;
  /// Structural index stride: the position of every Nth field of each row is
  /// indexed (paper §5.2: "Proteus stores the position of every Nth field").
  int index_stride = 10;
};

struct JSONOptions {
  /// When true, the plug-in verifies all objects share one field order during
  /// index construction and, if so, drops Level 0 in favour of deterministic
  /// slot positions (paper §5.2 "Specializing per Dataset Contents").
  bool exploit_fixed_schema = true;
};

struct DatasetInfo {
  std::string name;
  DataFormat format = DataFormat::kCSV;
  std::string path;   ///< file (CSV/JSON/binrow) or directory (bincol)
  TypePtr type;       ///< bag<record<...>>; the element record is the schema
  CSVOptions csv;
  JSONOptions json;

  const Type& record_type() const { return *type->elem(); }
};

/// Per-column statistics gathered by input plug-ins.
struct ColumnStats {
  bool valid = false;
  double min = 0.0;
  double max = 0.0;
  /// Crude distinct-count estimate (linear counting on a small bitmap).
  uint64_t ndv = 0;
};

/// The linear-counting estimator behind ColumnStats::ndv: one bit per value
/// hash, ndv ≈ -m·ln(zeros/m). Near-exact far below m distinct values —
/// plenty for the optimizer's duplication-ratio test (build rows / ndv),
/// which only needs order-of-magnitude fidelity.
class NdvSketch {
 public:
  void Add(uint64_t hash) { bits_.set((hash ^ (hash >> 23)) % kBits); }
  uint64_t Estimate() const {
    const uint64_t zeros = kBits - bits_.count();
    if (zeros == 0) return kBits;
    const double est = -static_cast<double>(kBits) *
                       std::log(static_cast<double>(zeros) / static_cast<double>(kBits));
    return static_cast<uint64_t>(est + 0.5);
  }

 private:
  static constexpr uint64_t kBits = 1 << 14;
  std::bitset<kBits> bits_;
};

struct DatasetStats {
  bool valid = false;
  uint64_t cardinality = 0;
  std::map<std::string, ColumnStats> columns;  ///< keyed by dotted field path
};

/// Metadata store: statistics per data source (paper §5.2). Thread-safe:
/// with concurrent queries on one engine, one query's optimizer can read a
/// dataset's stats while another query's cold scan is publishing them.
/// Writers build a complete DatasetStats locally and Publish() it in one
/// step; readers get an immutable shared snapshot that stays valid even if
/// the entry is invalidated or republished underneath them.
class StatsStore {
 public:
  /// Atomically installs a fully-built statistics object for `dataset`,
  /// replacing any previous one.
  void Publish(const std::string& dataset, DatasetStats stats) {
    auto sp = std::make_shared<const DatasetStats>(std::move(stats));
    MutexLock lk(mu_);
    stats_[dataset] = std::move(sp);
  }

  /// Immutable snapshot (null when absent).
  std::shared_ptr<const DatasetStats> Find(const std::string& dataset) const {
    MutexLock lk(mu_);
    auto it = stats_.find(dataset);
    return it == stats_.end() ? nullptr : it->second;
  }

  void Invalidate(const std::string& dataset) {
    MutexLock lk(mu_);
    stats_.erase(dataset);
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const DatasetStats>> stats_
      GUARDED_BY(mu_);
};

/// Dataset registry. Thread-safe for the serving workload: registrations
/// are expected at setup time, but lookups may race a late registration.
/// Entries are never erased (InvalidateDataset drops plug-ins/stats/caches,
/// not the registration), so the DatasetInfo pointers Get() hands out stay
/// valid for the catalog's lifetime.
class Catalog {
 public:
  Status Register(DatasetInfo info);
  Result<const DatasetInfo*> Get(const std::string& name) const;
  bool Contains(const std::string& name) const {
    MutexLock lk(mu_);
    return datasets_.count(name) > 0;
  }
  std::vector<std::string> ListDatasets() const;

  StatsStore& stats() { return stats_; }
  const StatsStore& stats() const { return stats_; }

  /// Monotonic catalog version, part of the compiled-query cache key:
  /// codegen bakes schema-derived constants (column indices, row widths,
  /// JSON path hashes) into generated code, so any registration or dataset
  /// invalidation must retire previously compiled modules. Bumped by
  /// Register() and by QueryEngine::InvalidateDataset via BumpEpoch().
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, DatasetInfo> datasets_ GUARDED_BY(mu_);
  StatsStore stats_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace proteus
