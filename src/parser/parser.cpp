#include "src/parser/parser.h"

#include <unordered_map>
#include <unordered_set>

#include "src/parser/lexer.h"

namespace proteus {

namespace {

// ---------------------------------------------------------------------------
// Shared expression parsing (precedence climbing)
// ---------------------------------------------------------------------------

class ParserBase {
 public:
  explicit ParserBase(std::vector<Token> toks) : toks_(std::move(toks)) {}

 protected:
  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Cur() const { return Peek(0); }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool Eat(TokKind k) {
    if (Cur().kind == k) {
      Advance();
      return true;
    }
    return false;
  }
  bool EatKw(const char* kw) {
    if (Cur().Is(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokKind k, const char* what) {
    if (!Eat(k)) {
      return Status::ParseError(std::string("expected ") + what + " at offset " +
                                std::to_string(Cur().pos));
    }
    return Status::OK();
  }
  Status ExpectKw(const char* kw) {
    if (!EatKw(kw)) {
      return Status::ParseError(std::string("expected '") + kw + "' at offset " +
                                std::to_string(Cur().pos));
    }
    return Status::OK();
  }

  Status ErrorHere(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(Cur().pos));
  }

  // expr := or_expr
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr l, ParseAnd());
    while (Cur().Is("or")) {
      Advance();
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, ParseAnd());
      l = Expr::Bin(BinOp::kOr, l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseAnd() {
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr l, ParseNot());
    while (Cur().Is("and")) {
      Advance();
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, ParseNot());
      l = Expr::Bin(BinOp::kAnd, l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseNot() {
    if (Cur().Is("not")) {
      Advance();
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr c, ParseNot());
      return Expr::Un(UnOp::kNot, c);
    }
    return ParseCmp();
  }

  Result<ExprPtr> ParseCmp() {
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr l, ParseAdd());
    BinOp op;
    switch (Cur().kind) {
      case TokKind::kLt: op = BinOp::kLt; break;
      case TokKind::kLe: op = BinOp::kLe; break;
      case TokKind::kGt: op = BinOp::kGt; break;
      case TokKind::kGe: op = BinOp::kGe; break;
      case TokKind::kEq: op = BinOp::kEq; break;
      case TokKind::kNe: op = BinOp::kNe; break;
      default: return l;
    }
    Advance();
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, ParseAdd());
    return Expr::Bin(op, l, r);
  }

  Result<ExprPtr> ParseAdd() {
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr l, ParseMul());
    while (Cur().kind == TokKind::kPlus || Cur().kind == TokKind::kMinus) {
      BinOp op = Cur().kind == TokKind::kPlus ? BinOp::kAdd : BinOp::kSub;
      Advance();
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, ParseMul());
      l = Expr::Bin(op, l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseMul() {
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr l, ParseUnary());
    while (Cur().kind == TokKind::kStar || Cur().kind == TokKind::kSlash ||
           Cur().kind == TokKind::kPercent) {
      BinOp op = Cur().kind == TokKind::kStar
                     ? BinOp::kMul
                     : (Cur().kind == TokKind::kSlash ? BinOp::kDiv : BinOp::kMod);
      Advance();
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, ParseUnary());
      l = Expr::Bin(op, l, r);
    }
    return l;
  }

  Result<ExprPtr> ParseUnary() {
    if (Eat(TokKind::kMinus)) {
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr c, ParseUnary());
      return Expr::Un(UnOp::kNeg, c);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kInt: {
        int64_t v = t.int_val;
        Advance();
        return Expr::Int(v);
      }
      case TokKind::kFloat: {
        double v = t.float_val;
        Advance();
        return Expr::Float(v);
      }
      case TokKind::kString: {
        std::string s = t.text;
        Advance();
        return Expr::Str(std::move(s));
      }
      case TokKind::kLParen: {
        Advance();
        PROTEUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        PROTEUS_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return e;
      }
      case TokKind::kLt: {
        if (!allow_record_cons_) break;
        return ParseRecordCons();
      }
      case TokKind::kIdent: {
        if (t.Is("true")) {
          Advance();
          return Expr::Bool(true);
        }
        if (t.Is("false")) {
          Advance();
          return Expr::Bool(false);
        }
        if (t.Is("if")) {
          Advance();
          PROTEUS_ASSIGN_OR_RETURN(ExprPtr c, ParseExpr());
          PROTEUS_RETURN_NOT_OK(ExpectKw("then"));
          PROTEUS_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
          PROTEUS_RETURN_NOT_OK(ExpectKw("else"));
          PROTEUS_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
          return Expr::If(c, a, b);
        }
        return ParsePath();
      }
      default:
        break;
    }
    return ErrorHere("unexpected token in expression");
  }

  /// IDENT ('.' IDENT)*  -> VarRef with Proj chain.
  Result<ExprPtr> ParsePath() {
    if (Cur().kind != TokKind::kIdent) return ErrorHere("expected identifier");
    ExprPtr e = Expr::Var(Cur().text);
    Advance();
    while (Eat(TokKind::kDot)) {
      if (Cur().kind != TokKind::kIdent) return ErrorHere("expected field name after '.'");
      e = Expr::Proj(e, Cur().text);
      Advance();
    }
    return e;
  }

  /// < name: expr, ... >
  Result<ExprPtr> ParseRecordCons() {
    PROTEUS_RETURN_NOT_OK(Expect(TokKind::kLt, "'<'"));
    std::vector<std::string> names;
    std::vector<ExprPtr> exprs;
    while (true) {
      if (Cur().kind != TokKind::kIdent) return ErrorHere("expected field name in record");
      names.push_back(Cur().text);
      Advance();
      PROTEUS_RETURN_NOT_OK(Expect(TokKind::kColon, "':'"));
      // Field values parse below comparison precedence: the record's closing
      // '>' would otherwise be taken as a comparison. Parenthesize to compare.
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr e, ParseAdd());
      exprs.push_back(std::move(e));
      if (Eat(TokKind::kComma)) continue;
      break;
    }
    PROTEUS_RETURN_NOT_OK(Expect(TokKind::kGt, "'>'"));
    return Expr::Record(std::move(names), std::move(exprs));
  }

  static bool MonoidFromName(const Token& t, Monoid* out) {
    static const std::pair<const char*, Monoid> kNames[] = {
        {"sum", Monoid::kSum}, {"count", Monoid::kCount}, {"max", Monoid::kMax},
        {"min", Monoid::kMin}, {"bag", Monoid::kBag},     {"list", Monoid::kList},
        {"set", Monoid::kSet}, {"all", Monoid::kAnd},     {"some", Monoid::kOr},
    };
    for (const auto& [name, m] : kNames) {
      if (t.Is(name)) {
        *out = m;
        return true;
      }
    }
    return false;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  bool allow_record_cons_ = true;
};

// ---------------------------------------------------------------------------
// Comprehension syntax
// ---------------------------------------------------------------------------

class ComprehensionParser : public ParserBase {
 public:
  using ParserBase::ParserBase;

  Result<Comprehension> Parse() {
    PROTEUS_ASSIGN_OR_RETURN(Comprehension c, ParseFor());
    if (Cur().kind != TokKind::kEnd) return ErrorHere("trailing input after query");
    return c;
  }

 private:
  Result<Comprehension> ParseFor() {
    Comprehension c;
    PROTEUS_RETURN_NOT_OK(ExpectKw("for"));
    PROTEUS_RETURN_NOT_OK(Expect(TokKind::kLBrace, "'{'"));
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(Qualifier q, ParseQualifier());
      c.quals.push_back(std::move(q));
      if (Eat(TokKind::kComma)) continue;
      break;
    }
    PROTEUS_RETURN_NOT_OK(Expect(TokKind::kRBrace, "'}'"));
    PROTEUS_RETURN_NOT_OK(ExpectKw("yield"));
    PROTEUS_RETURN_NOT_OK(ParseYield(&c));
    return c;
  }

  Result<Qualifier> ParseQualifier() {
    // Generator: IDENT <- source
    if (Cur().kind == TokKind::kIdent && Peek(1).kind == TokKind::kArrow) {
      std::string var = Cur().text;
      Advance();
      Advance();  // <-
      if (Cur().kind == TokKind::kLParen && Peek(1).Is("for")) {
        Advance();
        PROTEUS_ASSIGN_OR_RETURN(Comprehension inner, ParseFor());
        PROTEUS_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return Qualifier::GeneratorComp(var, std::make_shared<Comprehension>(std::move(inner)));
      }
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr src, ParsePath());
      return Qualifier::Generator(var, std::move(src));
    }
    PROTEUS_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
    return Qualifier::Predicate(std::move(p));
  }

  Status ParseYield(Comprehension* c) {
    if (Cur().kind == TokKind::kLParen) {
      // Multi-aggregate: yield (sum e, max e2, count)
      Advance();
      int idx = 0;
      while (true) {
        PROTEUS_ASSIGN_OR_RETURN(AggOutput o, ParseOneOutput(idx++));
        c->outputs.push_back(std::move(o));
        if (Eat(TokKind::kComma)) continue;
        break;
      }
      return Expect(TokKind::kRParen, "')'");
    }
    PROTEUS_ASSIGN_OR_RETURN(AggOutput o, ParseOneOutput(0));
    c->monoid = o.monoid;
    c->head = o.expr;
    return Status::OK();
  }

  Result<AggOutput> ParseOneOutput(int idx) {
    Monoid m;
    if (!MonoidFromName(Cur(), &m)) {
      return ErrorHere("expected a monoid (bag/sum/max/min/count/list/set/all/some)");
    }
    Advance();
    AggOutput o;
    o.monoid = m;
    o.name = std::string(MonoidName(m)) + (idx > 0 ? "_" + std::to_string(idx) : "");
    if (m != Monoid::kCount) {
      PROTEUS_ASSIGN_OR_RETURN(o.expr, ParseExpr());
    }
    if (EatKw("as")) {
      if (Cur().kind != TokKind::kIdent) return ErrorHere("expected alias after 'as'");
      o.name = Cur().text;
      Advance();
    }
    return o;
  }
};

// ---------------------------------------------------------------------------
// SQL subset
// ---------------------------------------------------------------------------

struct FromItem {
  std::string var;       // binding
  std::string dataset;   // dataset generator, or
  FieldPath unnest_path; // unnest generator (path[0] = source var)
};

class SqlParser : public ParserBase {
 public:
  SqlParser(std::vector<Token> toks, const Catalog& catalog)
      : ParserBase(std::move(toks)), catalog_(catalog) {
    allow_record_cons_ = false;  // '<' is always a comparison in SQL
  }

  Result<Comprehension> Parse() {
    PROTEUS_RETURN_NOT_OK(ExpectKw("select"));
    PROTEUS_RETURN_NOT_OK(ParseSelectList());
    PROTEUS_RETURN_NOT_OK(ExpectKw("from"));
    PROTEUS_RETURN_NOT_OK(ParseFromList());
    while (EatKw("join")) {
      PROTEUS_RETURN_NOT_OK(ParseOneFrom());
      PROTEUS_RETURN_NOT_OK(ExpectKw("on"));
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
      where_.push_back(std::move(on));
    }
    if (EatKw("where")) {
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr w, ParseExpr());
      where_.push_back(std::move(w));
    }
    if (EatKw("group")) {
      PROTEUS_RETURN_NOT_OK(ExpectKw("by"));
      PROTEUS_ASSIGN_OR_RETURN(group_by_, ParsePath());
    }
    if (Cur().kind != TokKind::kEnd) return ErrorHere("trailing input after query");
    return Desugar();
  }

 private:
  struct SelItem {
    bool is_agg = false;
    Monoid monoid = Monoid::kCount;
    ExprPtr expr;  // null for count(*)
    std::string name;
  };

  Status ParseSelectList() {
    int idx = 0;
    while (true) {
      SelItem item;
      Monoid m;
      if (MonoidFromName(Cur(), &m) && Peek(1).kind == TokKind::kLParen) {
        Advance();
        Advance();
        item.is_agg = true;
        item.monoid = m;
        item.name = std::string(MonoidName(m)) + (idx > 0 ? "_" + std::to_string(idx) : "");
        if (m == Monoid::kCount && Cur().kind == TokKind::kStar) {
          Advance();
        } else {
          PROTEUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
          if (m == Monoid::kCount) item.expr = nullptr;  // COUNT(x) == COUNT(*) here
        }
        PROTEUS_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
      } else {
        PROTEUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        item.name = "col" + std::to_string(idx);
        if (item.expr->kind() == ExprKind::kProj) item.name = item.expr->field();
        if (item.expr->kind() == ExprKind::kVarRef) item.name = item.expr->var_name();
      }
      if (EatKw("as")) {
        if (Cur().kind != TokKind::kIdent) return ErrorHere("expected alias after 'as'");
        item.name = Cur().text;
        Advance();
      }
      select_.push_back(std::move(item));
      ++idx;
      if (Eat(TokKind::kComma)) continue;
      break;
    }
    return Status::OK();
  }

  Status ParseFromList() {
    PROTEUS_RETURN_NOT_OK(ParseOneFrom());
    while (Eat(TokKind::kComma)) PROTEUS_RETURN_NOT_OK(ParseOneFrom());
    return Status::OK();
  }

  Status ParseOneFrom() {
    FromItem item;
    if (EatKw("unnest")) {
      PROTEUS_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
      PROTEUS_RETURN_NOT_OK(ParsePathInto(&item.unnest_path));
      PROTEUS_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    } else {
      if (Cur().kind != TokKind::kIdent) return ErrorHere("expected dataset name");
      std::string first = Cur().text;
      Advance();
      if (Cur().kind == TokKind::kDot) {
        // alias.path form of unnest (FROM o, o.lineitems l)
        item.unnest_path.push_back(first);
        while (Eat(TokKind::kDot)) {
          if (Cur().kind != TokKind::kIdent) return ErrorHere("expected field after '.'");
          item.unnest_path.push_back(Cur().text);
          Advance();
        }
      } else {
        item.dataset = first;
      }
    }
    EatKw("as");
    if (Cur().kind == TokKind::kIdent && !IsClauseKeyword(Cur())) {
      item.var = Cur().text;
      Advance();
    } else if (!item.dataset.empty()) {
      item.var = item.dataset;  // default alias
    } else {
      return ErrorHere("UNNEST requires an alias");
    }
    from_.push_back(std::move(item));
    return Status::OK();
  }

  Status ParsePathInto(FieldPath* out) {
    if (Cur().kind != TokKind::kIdent) return ErrorHere("expected path");
    out->push_back(Cur().text);
    Advance();
    while (Eat(TokKind::kDot)) {
      if (Cur().kind != TokKind::kIdent) return ErrorHere("expected field after '.'");
      out->push_back(Cur().text);
      Advance();
    }
    return Status::OK();
  }

  static bool IsClauseKeyword(const Token& t) {
    return t.Is("join") || t.Is("on") || t.Is("where") || t.Is("group") || t.Is("select") ||
           t.Is("from");
  }

  /// Resolves unqualified column names against FROM schemas and assembles
  /// the comprehension.
  Result<Comprehension> Desugar() {
    // Build variable -> record type for every generator.
    std::unordered_map<std::string, TypePtr> var_types;
    std::unordered_map<std::string, std::string> field_to_var;
    std::unordered_set<std::string> ambiguous;
    auto add_fields = [&](const std::string& var, const TypePtr& rec) {
      for (const auto& f : rec->fields()) {
        auto [it, inserted] = field_to_var.emplace(f.name, var);
        if (!inserted && it->second != var) ambiguous.insert(f.name);
      }
    };

    Comprehension c;
    for (const auto& item : from_) {
      if (!item.dataset.empty()) {
        PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, catalog_.Get(item.dataset));
        TypePtr rec = info->type->elem();
        var_types[item.var] = rec;
        add_fields(item.var, rec);
        c.quals.push_back(Qualifier::Generator(item.var, Expr::Var(item.dataset)));
      } else {
        // Unnest: resolve the element type through the source variable.
        auto it = var_types.find(item.unnest_path[0]);
        if (it == var_types.end()) {
          return Status::InvalidArgument("unnest source '" + item.unnest_path[0] +
                                         "' is not a known alias");
        }
        TypePtr t = it->second;
        for (size_t i = 1; i < item.unnest_path.size(); ++i) {
          PROTEUS_ASSIGN_OR_RETURN(t, t->FieldType(item.unnest_path[i]));
        }
        if (t->kind() != TypeKind::kCollection) {
          return Status::TypeError("UNNEST path is not a collection");
        }
        TypePtr elem = t->elem();
        var_types[item.var] = elem;
        if (elem->kind() == TypeKind::kRecord) add_fields(item.var, elem);
        c.quals.push_back(
            Qualifier::Generator(item.var, Expr::Path(item.unnest_path)));
      }
    }

    auto resolve = [&](const ExprPtr& e) -> Result<ExprPtr> {
      return ResolveNames(e, var_types, field_to_var, ambiguous);
    };

    for (auto& w : where_) {
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, resolve(w));
      c.quals.push_back(Qualifier::Predicate(std::move(r)));
    }

    bool has_agg = false, has_plain = false;
    for (const auto& s : select_) {
      (s.is_agg ? has_agg : has_plain) = true;
    }

    if (group_by_) {
      PROTEUS_ASSIGN_OR_RETURN(c.group_by, resolve(group_by_));
      c.group_name = "key";
      if (c.group_by->kind() == ExprKind::kProj) c.group_name = c.group_by->field();
      for (const auto& s : select_) {
        if (!s.is_agg) {
          // Plain items must be the group key.
          PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, resolve(s.expr));
          if (!r->Equals(*c.group_by)) {
            return Status::InvalidArgument("non-aggregate SELECT item '" + s.name +
                                           "' is not the GROUP BY key");
          }
          c.group_name = s.name;
          continue;
        }
        AggOutput o{s.monoid, nullptr, s.name};
        if (s.expr) {
          PROTEUS_ASSIGN_OR_RETURN(o.expr, resolve(s.expr));
        }
        c.outputs.push_back(std::move(o));
      }
      if (c.outputs.empty()) {
        return Status::InvalidArgument("GROUP BY query needs at least one aggregate");
      }
      return c;
    }

    if (has_agg && has_plain) {
      return Status::InvalidArgument("mixing aggregates and plain columns requires GROUP BY");
    }
    if (has_agg) {
      for (const auto& s : select_) {
        AggOutput o{s.monoid, nullptr, s.name};
        if (s.expr) {
          PROTEUS_ASSIGN_OR_RETURN(o.expr, resolve(s.expr));
        }
        c.outputs.push_back(std::move(o));
      }
      return c;
    }
    // Plain projection: bag of a record.
    std::vector<std::string> names;
    std::vector<ExprPtr> exprs;
    for (const auto& s : select_) {
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, resolve(s.expr));
      names.push_back(s.name);
      exprs.push_back(std::move(r));
    }
    c.monoid = Monoid::kBag;
    c.head = Expr::Record(std::move(names), std::move(exprs));
    return c;
  }

  Result<ExprPtr> ResolveNames(const ExprPtr& e,
                               const std::unordered_map<std::string, TypePtr>& var_types,
                               const std::unordered_map<std::string, std::string>& field_to_var,
                               const std::unordered_set<std::string>& ambiguous) {
    if (e->kind() == ExprKind::kVarRef) {
      const std::string& n = e->var_name();
      if (var_types.count(n)) return e;  // a generator alias
      if (ambiguous.count(n)) {
        return Status::InvalidArgument("column '" + n + "' is ambiguous; qualify it");
      }
      auto it = field_to_var.find(n);
      if (it == field_to_var.end()) {
        return Status::NotFound("unknown column '" + n + "'");
      }
      return Expr::Proj(Expr::Var(it->second), n);
    }
    if (e->children().empty()) return e;
    std::vector<ExprPtr> kids;
    kids.reserve(e->children().size());
    bool changed = false;
    for (const auto& ch : e->children()) {
      PROTEUS_ASSIGN_OR_RETURN(ExprPtr r, ResolveNames(ch, var_types, field_to_var, ambiguous));
      changed |= (r != ch);
      kids.push_back(std::move(r));
    }
    if (!changed) return e;
    switch (e->kind()) {
      case ExprKind::kProj: return Expr::Proj(kids[0], e->field());
      case ExprKind::kBinary: return Expr::Bin(e->bin_op(), kids[0], kids[1]);
      case ExprKind::kUnary: return Expr::Un(e->un_op(), kids[0]);
      case ExprKind::kIf: return Expr::If(kids[0], kids[1], kids[2]);
      case ExprKind::kCast: return Expr::Cast(e->cast_to(), kids[0]);
      case ExprKind::kRecordCons: return Expr::Record(e->record_names(), kids);
      default: return e;
    }
  }

  const Catalog& catalog_;
  std::vector<SelItem> select_;
  std::vector<FromItem> from_;
  std::vector<ExprPtr> where_;
  ExprPtr group_by_;
};

}  // namespace

Result<Comprehension> ParseComprehension(const std::string& text) {
  PROTEUS_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  return ComprehensionParser(std::move(toks)).Parse();
}

Result<Comprehension> ParseSQL(const std::string& text, const Catalog& catalog) {
  PROTEUS_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  return SqlParser(std::move(toks), catalog).Parse();
}

Result<Comprehension> ParseQuery(const std::string& text, const Catalog& catalog) {
  PROTEUS_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(text));
  if (toks.empty() || toks[0].kind == TokKind::kEnd) {
    return Status::ParseError("empty query");
  }
  if (toks[0].Is("for")) return ComprehensionParser(std::move(toks)).Parse();
  if (toks[0].Is("select")) return SqlParser(std::move(toks), catalog).Parse();
  return Status::ParseError("query must start with FOR or SELECT");
}

}  // namespace proteus
