#include "src/parser/lexer.h"

#include <cctype>
#include <charconv>

namespace proteus {

bool Token::Is(const char* kw) const {
  if (kind != TokKind::kIdent) return false;
  size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    if (kw[i] == '\0' ||
        std::tolower(static_cast<unsigned char>(text[i])) !=
            std::tolower(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return kw[n] == '\0';
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokKind k, size_t pos) {
    Token t;
    t.kind = k;
    t.pos = pos;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) || input[j] == '_' ||
                       input[j] == '$')) {
        ++j;
      }
      Token t;
      t.kind = TokKind::kIdent;
      t.text = input.substr(i, j - i);
      t.pos = start;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) || input[j] == '.' ||
                       input[j] == 'e' || input[j] == 'E' ||
                       ((input[j] == '+' || input[j] == '-') && j > i &&
                        (input[j - 1] == 'e' || input[j - 1] == 'E')))) {
        if (input[j] == '.' || input[j] == 'e' || input[j] == 'E') is_float = true;
        ++j;
      }
      Token t;
      t.pos = start;
      std::string text = input.substr(i, j - i);
      if (is_float) {
        t.kind = TokKind::kFloat;
        auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), t.float_val);
        if (ec != std::errc()) return Status::ParseError("bad number '" + text + "'");
      } else {
        t.kind = TokKind::kInt;
        auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), t.int_val);
        if (ec != std::errc()) return Status::ParseError("bad number '" + text + "'");
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      size_t j = i + 1;
      std::string s;
      while (j < n && input[j] != c) {
        if (input[j] == '\\' && j + 1 < n) ++j;
        s += input[j++];
      }
      if (j >= n) return Status::ParseError("unterminated string literal");
      Token t;
      t.kind = TokKind::kString;
      t.text = std::move(s);
      t.pos = start;
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    switch (c) {
      case '{': push(TokKind::kLBrace, start); ++i; break;
      case '}': push(TokKind::kRBrace, start); ++i; break;
      case '(': push(TokKind::kLParen, start); ++i; break;
      case ')': push(TokKind::kRParen, start); ++i; break;
      case ',': push(TokKind::kComma, start); ++i; break;
      case '.': push(TokKind::kDot, start); ++i; break;
      case ':': push(TokKind::kColon, start); ++i; break;
      case '+': push(TokKind::kPlus, start); ++i; break;
      case '-': push(TokKind::kMinus, start); ++i; break;
      case '*': push(TokKind::kStar, start); ++i; break;
      case '/': push(TokKind::kSlash, start); ++i; break;
      case '%': push(TokKind::kPercent, start); ++i; break;
      case '=': push(TokKind::kEq, start); ++i; break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokKind::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " + std::to_string(i));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '-') {
          push(TokKind::kArrow, start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '=') {
          push(TokKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokKind::kNe, start);
          i += 2;
        } else {
          push(TokKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokKind::kGe, start);
          i += 2;
        } else {
          push(TokKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c + "' at offset " +
                                  std::to_string(i));
    }
  }
  push(TokKind::kEnd, n);
  return out;
}

}  // namespace proteus
