// Query frontends (paper §3): a monoid-comprehension syntax for queries over
// nested data, and a SQL subset for relational-style queries that desugars
// into comprehensions.
//
// Comprehension syntax (Example 3.1 of the paper):
//
//   for { s <- sailors, c <- s.children, s2 <- ships,
//         p <- s2.personnel, s.id = p.id, c.age > 18 }
//   yield bag <id: s.id, ship: s2.name, child: c.name>
//
//   yield clause:  yield MONOID expr            (bag/sum/max/min/list/set/and/or)
//                  yield count
//                  yield (sum e1, max e2, count)   -- multi-aggregate
//
// SQL subset:
//
//   SELECT count(*), max(l_quantity) FROM lineitem WHERE l_orderkey < 100
//   SELECT o.o_orderkey, sum(l.l_extendedprice)
//     FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
//     GROUP BY o.o_orderkey
//   SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE ...
//
// Unqualified SQL column names resolve against the FROM datasets' schemas.
#pragma once

#include "src/calculus/calculus.h"
#include "src/catalog/catalog.h"

namespace proteus {

/// Parses either syntax (dispatch on the first keyword: FOR / SELECT).
Result<Comprehension> ParseQuery(const std::string& text, const Catalog& catalog);

/// Entry points for a single syntax (exposed for tests).
Result<Comprehension> ParseComprehension(const std::string& text);
Result<Comprehension> ParseSQL(const std::string& text, const Catalog& catalog);

}  // namespace proteus
