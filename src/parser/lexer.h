// Tokenizer shared by the comprehension-syntax and SQL frontends.
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"

namespace proteus {

enum class TokKind {
  kEnd,
  kIdent,
  kInt,
  kFloat,
  kString,
  // punctuation / operators
  kLBrace, kRBrace, kLParen, kRParen, kComma, kDot, kColon,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kArrow,  // <-
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier / string contents
  int64_t int_val = 0;
  double float_val = 0;
  size_t pos = 0;       // byte offset, for error messages

  /// Case-insensitive keyword check (identifiers only).
  bool Is(const char* kw) const;
};

/// Tokenizes `input`. `<` directly followed by `-` lexes as the generator
/// arrow `<-`; string literals use single or double quotes.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace proteus
