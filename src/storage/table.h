// In-memory row table: the interchange unit between data generators, format
// writers, and test oracles. Not used on the query path (Proteus queries data
// in situ).
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/types/type.h"

namespace proteus {

/// A schema plus rows of boxed values. Row i, field j corresponds to
/// schema->fields()[j].
class RowTable {
 public:
  RowTable() = default;
  explicit RowTable(TypePtr record_type) : record_type_(std::move(record_type)) {}

  const TypePtr& record_type() const { return record_type_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return record_type_ ? record_type_->fields().size() : 0; }

  void Append(std::vector<Value> row) { rows_.push_back(std::move(row)); }
  const std::vector<Value>& row(size_t i) const { return rows_[i]; }
  std::vector<std::vector<Value>>& rows() { return rows_; }
  const std::vector<std::vector<Value>>& rows() const { return rows_; }

  /// Row as a record Value (for EvalEnv bindings in oracles).
  Value RecordAt(size_t i) const {
    std::vector<std::string> names;
    names.reserve(num_cols());
    for (const auto& f : record_type_->fields()) names.push_back(f.name);
    return Value::MakeRecord(std::move(names), rows_[i]);
  }

 private:
  TypePtr record_type_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace proteus
