#include "src/storage/text_writers.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <random>
#include <sstream>

namespace proteus {

namespace {

void AppendJSONString(std::ostringstream* os, const std::string& s) {
  (*os) << '"';
  for (char c : s) {
    switch (c) {
      case '"': (*os) << "\\\""; break;
      case '\\': (*os) << "\\\\"; break;
      case '\n': (*os) << "\\n"; break;
      case '\t': (*os) << "\\t"; break;
      case '\r': (*os) << "\\r"; break;
      default: (*os) << c;
    }
  }
  (*os) << '"';
}

void AppendJSON(std::ostringstream* os, const Value& v) {
  if (v.is_null()) {
    (*os) << "null";
  } else if (v.is_int()) {
    (*os) << v.i();
  } else if (v.is_float()) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v.f();
    std::string s = tmp.str();
    // Ensure floats stay floats on round-trip.
    if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
      s += ".0";
    }
    (*os) << s;
  } else if (v.is_bool()) {
    (*os) << (v.b() ? "true" : "false");
  } else if (v.is_string()) {
    AppendJSONString(os, v.s());
  } else if (v.is_record()) {
    const auto& r = v.record();
    (*os) << '{';
    for (size_t i = 0; i < r.names.size(); ++i) {
      if (i) (*os) << ',';
      AppendJSONString(os, r.names[i]);
      (*os) << ':';
      AppendJSON(os, r.values[i]);
    }
    (*os) << '}';
  } else {
    (*os) << '[';
    const auto& l = v.list();
    for (size_t i = 0; i < l.size(); ++i) {
      if (i) (*os) << ',';
      AppendJSON(os, l[i]);
    }
    (*os) << ']';
  }
}

void AppendCSVValue(std::ostream& os, const Value& v) {
  if (v.is_null()) return;  // empty cell
  if (v.is_int()) {
    os << v.i();
  } else if (v.is_float()) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v.f();
    os << tmp.str();
  } else if (v.is_bool()) {
    os << (v.b() ? "true" : "false");
  } else {
    os << v.s();
  }
}

}  // namespace

std::string ValueToJSON(const Value& v) {
  std::ostringstream os;
  AppendJSON(&os, v);
  return os.str();
}

Status WriteCSVFile(const std::string& path, const RowTable& table,
                    const CSVWriteOptions& opts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  const auto& fields = table.record_type()->fields();
  if (opts.write_header) {
    for (size_t j = 0; j < fields.size(); ++j) {
      if (j) out << opts.delimiter;
      out << fields[j].name;
    }
    out << '\n';
  }
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto& row = table.row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      if (j) out << opts.delimiter;
      AppendCSVValue(out, row[j]);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status WriteJSONFile(const std::string& path, const RowTable& table,
                     const JSONWriteOptions& opts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  const auto& fields = table.record_type()->fields();
  std::mt19937_64 rng(opts.shuffle_seed);
  std::vector<size_t> order(fields.size());
  std::iota(order.begin(), order.end(), 0);

  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto& row = table.row(i);
    if (opts.shuffle_field_order) {
      std::shuffle(order.begin(), order.end(), rng);
    }
    std::ostringstream os;
    os << '{';
    for (size_t k = 0; k < order.size(); ++k) {
      size_t j = order[k];
      if (k) os << ',';
      AppendJSONString(&os, fields[j].name);
      os << ':';
      AppendJSON(&os, row[j]);
    }
    os << '}';
    out << os.str() << '\n';
  }
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace proteus
