// Relational binary column format ("bincol"): one raw array file per column
// in a directory, plus a text manifest. This mirrors the paper's setup where
// "Proteus operates over binary column files similar to the ones of MonetDB".
//
// Manifest (`manifest.txt`):
//   proteus-bincol 1
//   rows <n>
//   col <name> <type>          (type in int64|float64|bool|date|string)
//
// Fixed-width columns are raw little-endian arrays (`<name>.bin`): int64 and
// date as int64, float64 as double, bool as int8. Strings use `<name>.off`
// (uint64 offsets, n+1 entries) plus `<name>.dat` (bytes).
//
// Flat (non-nested) schemas only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/mmap_file.h"
#include "src/common/status.h"
#include "src/storage/table.h"
#include "src/types/type.h"

namespace proteus {

/// Serializes `table` into directory `dir` (created if missing).
Status WriteBinaryColumnDir(const std::string& dir, const RowTable& table);

/// Zero-copy reader over a memory-mapped bincol directory.
class BinColReader {
 public:
  static Result<BinColReader> Open(const std::string& dir);

  uint64_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return static_cast<uint32_t>(cols_.size()); }
  int ColumnIndex(const std::string& name) const;
  const std::string& col_name(uint32_t j) const { return cols_[j].name; }
  TypeKind col_type(uint32_t j) const { return cols_[j].type; }

  /// Raw base pointers for JIT-emitted direct loads.
  const int64_t* IntColumn(uint32_t j) const;
  const double* FloatColumn(uint32_t j) const;
  const int8_t* BoolColumn(uint32_t j) const;
  const uint64_t* StringOffsets(uint32_t j) const;
  const char* StringData(uint32_t j) const;

  int64_t ReadInt(uint64_t row, uint32_t col) const { return IntColumn(col)[row]; }
  double ReadFloat(uint64_t row, uint32_t col) const { return FloatColumn(col)[row]; }
  bool ReadBool(uint64_t row, uint32_t col) const { return BoolColumn(col)[row] != 0; }
  std::string_view ReadString(uint64_t row, uint32_t col) const;

 private:
  struct Column {
    std::string name;
    TypeKind type;
    MmapFile data;     // .bin or .dat
    MmapFile offsets;  // .off, strings only
  };

  uint64_t num_rows_ = 0;
  std::vector<Column> cols_;
};

}  // namespace proteus
