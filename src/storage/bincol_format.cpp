#include "src/storage/bincol_format.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace proteus {

namespace {

const char* TypeNameOf(TypeKind k) {
  switch (k) {
    case TypeKind::kInt64: return "int64";
    case TypeKind::kFloat64: return "float64";
    case TypeKind::kBool: return "bool";
    case TypeKind::kDate: return "date";
    case TypeKind::kString: return "string";
    default: return nullptr;
  }
}

Result<TypeKind> TypeFromName(const std::string& s) {
  if (s == "int64") return TypeKind::kInt64;
  if (s == "float64") return TypeKind::kFloat64;
  if (s == "bool") return TypeKind::kBool;
  if (s == "date") return TypeKind::kDate;
  if (s == "string") return TypeKind::kString;
  return Status::ParseError("unknown column type '" + s + "'");
}

Status WriteWhole(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace

Status WriteBinaryColumnDir(const std::string& dir, const RowTable& table) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir(" + dir + "): " + std::strerror(errno));
  }
  const auto& fields = table.record_type()->fields();
  std::ostringstream manifest;
  manifest << "proteus-bincol 1\n";
  manifest << "rows " << table.num_rows() << "\n";

  for (size_t j = 0; j < fields.size(); ++j) {
    const char* tn = TypeNameOf(fields[j].type->kind());
    if (tn == nullptr) {
      return Status::InvalidArgument("bincol supports flat schemas only, field '" +
                                     fields[j].name + "' is " + fields[j].type->ToString());
    }
    manifest << "col " << fields[j].name << " " << tn << "\n";

    std::string data, offs;
    TypeKind k = fields[j].type->kind();
    uint64_t running = 0;
    if (k == TypeKind::kString) {
      offs.append(reinterpret_cast<const char*>(&running), 8);
    }
    for (size_t i = 0; i < table.num_rows(); ++i) {
      const Value& v = table.row(i)[j];
      switch (k) {
        case TypeKind::kInt64:
        case TypeKind::kDate: {
          int64_t x = v.is_null() ? 0 : v.i();
          data.append(reinterpret_cast<const char*>(&x), 8);
          break;
        }
        case TypeKind::kFloat64: {
          double x = v.is_null() ? 0.0 : v.AsFloat();
          data.append(reinterpret_cast<const char*>(&x), 8);
          break;
        }
        case TypeKind::kBool: {
          int8_t x = (!v.is_null() && v.b()) ? 1 : 0;
          data.append(reinterpret_cast<const char*>(&x), 1);
          break;
        }
        case TypeKind::kString: {
          if (!v.is_null()) data.append(v.s());
          running = data.size();
          offs.append(reinterpret_cast<const char*>(&running), 8);
          break;
        }
        default:
          return Status::Internal("unreachable");
      }
    }
    if (k == TypeKind::kString) {
      PROTEUS_RETURN_NOT_OK(WriteWhole(dir + "/" + fields[j].name + ".dat", data));
      PROTEUS_RETURN_NOT_OK(WriteWhole(dir + "/" + fields[j].name + ".off", offs));
    } else {
      PROTEUS_RETURN_NOT_OK(WriteWhole(dir + "/" + fields[j].name + ".bin", data));
    }
  }
  return WriteWhole(dir + "/manifest.txt", manifest.str());
}

Result<BinColReader> BinColReader::Open(const std::string& dir) {
  std::ifstream mf(dir + "/manifest.txt");
  if (!mf) return Status::IOError("cannot open " + dir + "/manifest.txt");
  std::string word, version;
  mf >> word >> version;
  if (word != "proteus-bincol") return Status::ParseError(dir + ": not a bincol directory");

  BinColReader r;
  std::string key;
  mf >> key >> r.num_rows_;
  if (key != "rows") return Status::ParseError(dir + ": malformed manifest");

  std::string name, tname;
  while (mf >> key >> name >> tname) {
    if (key != "col") return Status::ParseError(dir + ": malformed manifest line");
    PROTEUS_ASSIGN_OR_RETURN(TypeKind k, TypeFromName(tname));
    Column c;
    c.name = name;
    c.type = k;
    if (k == TypeKind::kString) {
      PROTEUS_ASSIGN_OR_RETURN(c.data, MmapFile::Open(dir + "/" + name + ".dat"));
      PROTEUS_ASSIGN_OR_RETURN(c.offsets, MmapFile::Open(dir + "/" + name + ".off"));
      if (c.offsets.size() != (r.num_rows_ + 1) * 8) {
        return Status::ParseError(dir + "/" + name + ".off: wrong size");
      }
    } else {
      PROTEUS_ASSIGN_OR_RETURN(c.data, MmapFile::Open(dir + "/" + name + ".bin"));
      size_t width = (k == TypeKind::kBool) ? 1 : 8;
      if (c.data.size() != r.num_rows_ * width) {
        return Status::ParseError(dir + "/" + name + ".bin: wrong size");
      }
    }
    r.cols_.push_back(std::move(c));
  }
  return r;
}

int BinColReader::ColumnIndex(const std::string& name) const {
  for (size_t j = 0; j < cols_.size(); ++j) {
    if (cols_[j].name == name) return static_cast<int>(j);
  }
  return -1;
}

const int64_t* BinColReader::IntColumn(uint32_t j) const {
  return reinterpret_cast<const int64_t*>(cols_[j].data.data());
}
const double* BinColReader::FloatColumn(uint32_t j) const {
  return reinterpret_cast<const double*>(cols_[j].data.data());
}
const int8_t* BinColReader::BoolColumn(uint32_t j) const {
  return reinterpret_cast<const int8_t*>(cols_[j].data.data());
}
const uint64_t* BinColReader::StringOffsets(uint32_t j) const {
  return reinterpret_cast<const uint64_t*>(cols_[j].offsets.data());
}
const char* BinColReader::StringData(uint32_t j) const { return cols_[j].data.data(); }

std::string_view BinColReader::ReadString(uint64_t row, uint32_t col) const {
  const uint64_t* off = StringOffsets(col);
  return {StringData(col) + off[row], off[row + 1] - off[row]};
}

}  // namespace proteus
