// Relational binary row format ("PROTROW1").
//
// Layout: header { magic[8], uint64 nrows, uint32 ncols, uint32 row_width }
// followed by ncols column descriptors { uint8 typecode, uint16 name_len,
// name bytes }, padded to 8 bytes, then nrows fixed-width rows (8 bytes per
// field), then a string heap. Strings are stored in-row as packed
// (uint32 heap offset, uint32 length).
//
// This is the "relational binary, row-oriented" native storage of the paper.
// Flat (non-nested) schemas only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/mmap_file.h"
#include "src/common/status.h"
#include "src/storage/table.h"
#include "src/types/type.h"

namespace proteus {

namespace binrow {
constexpr char kMagic[8] = {'P', 'R', 'O', 'T', 'R', 'O', 'W', '1'};
constexpr uint8_t kTypeInt64 = 1;
constexpr uint8_t kTypeFloat64 = 2;
constexpr uint8_t kTypeBool = 3;
constexpr uint8_t kTypeString = 4;
constexpr uint8_t kTypeDate = 5;
}  // namespace binrow

/// Serializes `table` to `path` in PROTROW1 format.
Status WriteBinaryRowFile(const std::string& path, const RowTable& table);

/// Zero-copy reader over a memory-mapped PROTROW1 file.
class BinRowReader {
 public:
  static Result<BinRowReader> Open(const std::string& path);

  uint64_t num_rows() const { return num_rows_; }
  uint32_t num_cols() const { return static_cast<uint32_t>(col_names_.size()); }
  uint32_t row_width() const { return row_width_; }
  const std::vector<std::string>& col_names() const { return col_names_; }
  const std::vector<uint8_t>& col_types() const { return col_types_; }
  int ColumnIndex(const std::string& name) const;

  /// Base pointer of the fixed-width row region; field j of row i lives at
  /// rows_base() + i * row_width() + 8 * j. Exposed so the JIT scan code can
  /// emit direct address arithmetic (the plug-in "generates" these accesses).
  const char* rows_base() const { return rows_base_; }
  const char* heap_base() const { return heap_base_; }

  int64_t ReadInt(uint64_t row, uint32_t col) const;
  double ReadFloat(uint64_t row, uint32_t col) const;
  bool ReadBool(uint64_t row, uint32_t col) const;
  std::string_view ReadString(uint64_t row, uint32_t col) const;

 private:
  MmapFile file_;
  const char* rows_base_ = nullptr;
  const char* heap_base_ = nullptr;
  uint64_t num_rows_ = 0;
  uint32_t row_width_ = 0;
  std::vector<std::string> col_names_;
  std::vector<uint8_t> col_types_;
};

}  // namespace proteus
