#include "src/storage/binrow_format.h"

#include <cstring>
#include <fstream>

namespace proteus {

namespace {

Result<uint8_t> TypeCodeOf(const TypePtr& t) {
  switch (t->kind()) {
    case TypeKind::kInt64: return binrow::kTypeInt64;
    case TypeKind::kFloat64: return binrow::kTypeFloat64;
    case TypeKind::kBool: return binrow::kTypeBool;
    case TypeKind::kString: return binrow::kTypeString;
    case TypeKind::kDate: return binrow::kTypeDate;
    default:
      return Status::InvalidArgument("binary row format supports flat schemas only, got " +
                                     t->ToString());
  }
}

template <typename T>
void PutRaw(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace

Status WriteBinaryRowFile(const std::string& path, const RowTable& table) {
  const auto& fields = table.record_type()->fields();
  std::vector<uint8_t> codes;
  for (const auto& f : fields) {
    PROTEUS_ASSIGN_OR_RETURN(uint8_t c, TypeCodeOf(f.type));
    codes.push_back(c);
  }

  std::string header;
  header.append(binrow::kMagic, 8);
  PutRaw(&header, uint64_t(table.num_rows()));
  PutRaw(&header, uint32_t(fields.size()));
  uint32_t row_width = 8 * static_cast<uint32_t>(fields.size());
  PutRaw(&header, row_width);
  for (size_t j = 0; j < fields.size(); ++j) {
    PutRaw(&header, codes[j]);
    PutRaw(&header, uint16_t(fields[j].name.size()));
    header.append(fields[j].name);
  }
  while (header.size() % 8 != 0) header.push_back('\0');

  std::string rows;
  rows.reserve(table.num_rows() * row_width);
  std::string heap;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto& row = table.row(i);
    if (row.size() != fields.size()) {
      return Status::InvalidArgument("row " + std::to_string(i) + " has wrong arity");
    }
    for (size_t j = 0; j < fields.size(); ++j) {
      const Value& v = row[j];
      switch (codes[j]) {
        case binrow::kTypeInt64:
        case binrow::kTypeDate:
          PutRaw(&rows, int64_t(v.is_null() ? 0 : v.i()));
          break;
        case binrow::kTypeFloat64:
          PutRaw(&rows, double(v.is_null() ? 0.0 : v.AsFloat()));
          break;
        case binrow::kTypeBool:
          PutRaw(&rows, int64_t(v.is_null() ? 0 : (v.b() ? 1 : 0)));
          break;
        case binrow::kTypeString: {
          uint32_t off = static_cast<uint32_t>(heap.size());
          uint32_t len = 0;
          if (!v.is_null()) {
            heap.append(v.s());
            len = static_cast<uint32_t>(v.s().size());
          }
          PutRaw(&rows, off);
          PutRaw(&rows, len);
          break;
        }
      }
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(rows.data(), static_cast<std::streamsize>(rows.size()));
  out.write(heap.data(), static_cast<std::streamsize>(heap.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<BinRowReader> BinRowReader::Open(const std::string& path) {
  PROTEUS_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  BinRowReader r;
  const char* p = file.data();
  const char* end = p + file.size();
  if (file.size() < 24 || std::memcmp(p, binrow::kMagic, 8) != 0) {
    return Status::ParseError(path + ": not a PROTROW1 file");
  }
  p += 8;
  uint64_t nrows;
  uint32_t ncols;
  std::memcpy(&nrows, p, 8); p += 8;
  std::memcpy(&ncols, p, 4); p += 4;
  std::memcpy(&r.row_width_, p, 4); p += 4;
  for (uint32_t j = 0; j < ncols; ++j) {
    if (p + 3 > end) return Status::ParseError(path + ": truncated column descriptor");
    uint8_t code = static_cast<uint8_t>(*p++);
    uint16_t len;
    std::memcpy(&len, p, 2); p += 2;
    if (p + len > end) return Status::ParseError(path + ": truncated column name");
    r.col_names_.emplace_back(p, len);
    r.col_types_.push_back(code);
    p += len;
  }
  while ((p - file.data()) % 8 != 0) ++p;
  r.num_rows_ = nrows;
  r.rows_base_ = p;
  r.heap_base_ = p + nrows * r.row_width_;
  if (r.heap_base_ > end) return Status::ParseError(path + ": truncated row data");
  r.file_ = std::move(file);
  return r;
}

int BinRowReader::ColumnIndex(const std::string& name) const {
  for (size_t j = 0; j < col_names_.size(); ++j) {
    if (col_names_[j] == name) return static_cast<int>(j);
  }
  return -1;
}

int64_t BinRowReader::ReadInt(uint64_t row, uint32_t col) const {
  int64_t v;
  std::memcpy(&v, rows_base_ + row * row_width_ + 8 * col, 8);
  return v;
}

double BinRowReader::ReadFloat(uint64_t row, uint32_t col) const {
  double v;
  std::memcpy(&v, rows_base_ + row * row_width_ + 8 * col, 8);
  return v;
}

bool BinRowReader::ReadBool(uint64_t row, uint32_t col) const {
  return ReadInt(row, col) != 0;
}

std::string_view BinRowReader::ReadString(uint64_t row, uint32_t col) const {
  uint32_t off, len;
  const char* p = rows_base_ + row * row_width_ + 8 * col;
  std::memcpy(&off, p, 4);
  std::memcpy(&len, p + 4, 4);
  return {heap_base_ + off, len};
}

}  // namespace proteus
