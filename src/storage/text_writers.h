// Writers for the textual raw formats (CSV, newline-delimited JSON) used to
// materialize generated workloads on disk. Query execution never uses these;
// Proteus reads the raw files in situ through input plug-ins.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/storage/table.h"

namespace proteus {

struct CSVWriteOptions {
  char delimiter = ',';
  bool write_header = false;
};

/// Writes `table` as CSV. String fields must not contain the delimiter or
/// newlines (the generators guarantee this; quoting is out of scope, as the
/// paper's CSV datasets are machine-generated).
Status WriteCSVFile(const std::string& path, const RowTable& table,
                    const CSVWriteOptions& opts = {});

struct JSONWriteOptions {
  /// When true, each object's top-level field order is permuted pseudo-
  /// randomly (paper: "JSON file of 28M objects with arbitrary field order").
  bool shuffle_field_order = false;
  uint64_t shuffle_seed = 42;
};

/// Writes `table` as newline-delimited JSON objects. Nested record and list
/// values serialize recursively.
Status WriteJSONFile(const std::string& path, const RowTable& table,
                     const JSONWriteOptions& opts = {});

/// Serializes one Value as JSON text (helper shared with tests).
std::string ValueToJSON(const Value& v);

}  // namespace proteus
