// The Proteus type system: primitives, records, and monoid collections.
//
// The monoid comprehension calculus (Fegaras & Maier) supports arbitrary
// nestings of collection monoids (bag, set, list, array) over records and
// primitives. Types are immutable and shared via TypePtr.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace proteus {

enum class TypeKind {
  kInt64,
  kFloat64,
  kBool,
  kString,
  kDate,       ///< days since epoch, stored as int64
  kRecord,
  kCollection,
};

enum class CollectionKind { kBag, kList, kSet, kArray };

class Type;
using TypePtr = std::shared_ptr<const Type>;

struct Field {
  std::string name;
  TypePtr type;
};

/// An immutable type descriptor.
class Type {
 public:
  static TypePtr Int64();
  static TypePtr Float64();
  static TypePtr Bool();
  static TypePtr String();
  static TypePtr Date();
  static TypePtr Record(std::vector<Field> fields);
  static TypePtr Collection(CollectionKind kind, TypePtr elem);
  /// Shorthand: bag-of-records, the common dataset type.
  static TypePtr BagOfRecords(std::vector<Field> fields) {
    return Collection(CollectionKind::kBag, Record(std::move(fields)));
  }

  TypeKind kind() const { return kind_; }
  bool is_primitive() const {
    return kind_ != TypeKind::kRecord && kind_ != TypeKind::kCollection;
  }
  bool is_numeric() const { return kind_ == TypeKind::kInt64 || kind_ == TypeKind::kFloat64 || kind_ == TypeKind::kDate; }

  /// Record accessors (kind() == kRecord).
  const std::vector<Field>& fields() const { return fields_; }
  /// Returns the index of `name` in fields(), or -1.
  int FieldIndex(const std::string& name) const;
  /// Returns the type of field `name`, or error.
  Result<TypePtr> FieldType(const std::string& name) const;

  /// Collection accessors (kind() == kCollection).
  CollectionKind collection_kind() const { return ckind_; }
  const TypePtr& elem() const { return elem_; }

  /// Structural equality.
  bool Equals(const Type& other) const;
  std::string ToString() const;

 private:
  explicit Type(TypeKind k) : kind_(k) {}

  TypeKind kind_;
  std::vector<Field> fields_;                      // kRecord
  CollectionKind ckind_ = CollectionKind::kBag;    // kCollection
  TypePtr elem_;                                   // kCollection
};

const char* CollectionKindName(CollectionKind k);

}  // namespace proteus
