#include "src/types/type.h"

#include <sstream>

namespace proteus {

TypePtr Type::Int64() {
  static TypePtr t(new Type(TypeKind::kInt64));
  return t;
}
TypePtr Type::Float64() {
  static TypePtr t(new Type(TypeKind::kFloat64));
  return t;
}
TypePtr Type::Bool() {
  static TypePtr t(new Type(TypeKind::kBool));
  return t;
}
TypePtr Type::String() {
  static TypePtr t(new Type(TypeKind::kString));
  return t;
}
TypePtr Type::Date() {
  static TypePtr t(new Type(TypeKind::kDate));
  return t;
}

TypePtr Type::Record(std::vector<Field> fields) {
  auto* t = new Type(TypeKind::kRecord);
  t->fields_ = std::move(fields);
  return TypePtr(t);
}

TypePtr Type::Collection(CollectionKind kind, TypePtr elem) {
  auto* t = new Type(TypeKind::kCollection);
  t->ckind_ = kind;
  t->elem_ = std::move(elem);
  return TypePtr(t);
}

int Type::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<TypePtr> Type::FieldType(const std::string& name) const {
  int i = FieldIndex(name);
  if (i < 0) return Status::NotFound("no field '" + name + "' in " + ToString());
  return fields_[i].type;
}

bool Type::Equals(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kRecord: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
    case TypeKind::kCollection:
      return ckind_ == other.ckind_ && elem_->Equals(*other.elem_);
    default:
      return true;
  }
}

const char* CollectionKindName(CollectionKind k) {
  switch (k) {
    case CollectionKind::kBag: return "bag";
    case CollectionKind::kList: return "list";
    case CollectionKind::kSet: return "set";
    case CollectionKind::kArray: return "array";
  }
  return "?";
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kInt64: return "int64";
    case TypeKind::kFloat64: return "float64";
    case TypeKind::kBool: return "bool";
    case TypeKind::kString: return "string";
    case TypeKind::kDate: return "date";
    case TypeKind::kRecord: {
      std::ostringstream os;
      os << "record<";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i) os << ", ";
        os << fields_[i].name << ": " << fields_[i].type->ToString();
      }
      os << ">";
      return os.str();
    }
    case TypeKind::kCollection: {
      std::ostringstream os;
      os << CollectionKindName(ckind_) << "<" << elem_->ToString() << ">";
      return os.str();
    }
  }
  return "?";
}

}  // namespace proteus
