#include "src/optimizer/optimizer.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace proteus {

namespace {

/// Variables bound by the subtree rooted at `op`.
void BoundVars(const OpPtr& op, std::unordered_set<std::string>* out) {
  switch (op->kind()) {
    case OpKind::kScan:
    case OpKind::kCacheScan:
      out->insert(op->binding());
      return;
    case OpKind::kUnnest:
      BoundVars(op->child(0), out);
      out->insert(op->binding());
      return;
    case OpKind::kNest:
      out->insert(op->binding().empty() ? "$group" : op->binding());
      return;
    default:
      for (const auto& c : op->children()) BoundVars(c, out);
      return;
  }
}

ExprPtr FoldOrNull(const ExprPtr& e) { return e ? FoldConstants(e) : e; }

/// Rebuilds the tree with all embedded expressions constant-folded.
OpPtr FoldPlanConstants(const OpPtr& op) {
  // Operators are shared_ptrs built once per query; in-place is safe here.
  for (const auto& c : op->children()) FoldPlanConstants(c);
  op->set_pred(FoldOrNull(op->pred()));
  return op;
}

}  // namespace

// ---------------------------------------------------------------------------
// Selection pushdown
// ---------------------------------------------------------------------------

namespace {

struct PushResult {
  OpPtr op;
  std::vector<ExprPtr> leftover;
};

bool DependsOnlyOn(const ExprPtr& e, const std::unordered_set<std::string>& vars) {
  return e->OnlyDependsOn(vars);
}

PushResult PushDown(OpPtr op, std::vector<ExprPtr> pending) {
  switch (op->kind()) {
    case OpKind::kSelect: {
      auto conj = SplitConjuncts(op->pred());
      pending.insert(pending.end(), conj.begin(), conj.end());
      return PushDown(op->child(0), std::move(pending));
    }
    case OpKind::kScan:
    case OpKind::kCacheScan: {
      std::unordered_set<std::string> bound{op->binding()};
      std::vector<ExprPtr> mine, rest;
      for (auto& p : pending) {
        (DependsOnlyOn(p, bound) ? mine : rest).push_back(p);
      }
      OpPtr out = op;
      if (!mine.empty()) out = Operator::Select(out, CombineConjuncts(mine));
      return {out, std::move(rest)};
    }
    case OpKind::kJoin: {
      // Existing join predicate joins the pending pool, then partitions.
      auto conj = SplitConjuncts(op->pred());
      pending.insert(pending.end(), conj.begin(), conj.end());
      std::unordered_set<std::string> bl, br;
      BoundVars(op->child(0), &bl);
      BoundVars(op->child(1), &br);
      std::unordered_set<std::string> both = bl;
      both.insert(br.begin(), br.end());

      std::vector<ExprPtr> left_p, right_p, join_p, rest;
      for (auto& p : pending) {
        if (DependsOnlyOn(p, bl)) {
          left_p.push_back(p);
        } else if (DependsOnlyOn(p, br)) {
          right_p.push_back(p);
        } else if (DependsOnlyOn(p, both)) {
          join_p.push_back(p);
        } else {
          rest.push_back(p);
        }
      }
      // Outer joins must not filter the preserved side below the join.
      if (op->outer()) {
        join_p.insert(join_p.end(), right_p.begin(), right_p.end());
        right_p.clear();
      }
      PushResult l = PushDown(op->child(0), std::move(left_p));
      PushResult r = PushDown(op->child(1), std::move(right_p));
      join_p.insert(join_p.end(), l.leftover.begin(), l.leftover.end());
      join_p.insert(join_p.end(), r.leftover.begin(), r.leftover.end());
      OpPtr out = Operator::Join(l.op, r.op, join_p.empty() ? nullptr : CombineConjuncts(join_p),
                                 op->outer());
      return {out, std::move(rest)};
    }
    case OpKind::kUnnest: {
      auto conj = SplitConjuncts(op->pred());
      pending.insert(pending.end(), conj.begin(), conj.end());
      std::unordered_set<std::string> below;
      BoundVars(op->child(0), &below);
      std::unordered_set<std::string> with_elem = below;
      with_elem.insert(op->binding());

      std::vector<ExprPtr> child_p, mine, rest;
      for (auto& p : pending) {
        if (DependsOnlyOn(p, below)) {
          child_p.push_back(p);
        } else if (DependsOnlyOn(p, with_elem)) {
          mine.push_back(p);  // embedded filtering step of Unnest (Table 1)
        } else {
          rest.push_back(p);
        }
      }
      PushResult c = PushDown(op->child(0), std::move(child_p));
      rest.insert(rest.end(), c.leftover.begin(), c.leftover.end());
      OpPtr out = Operator::Unnest(c.op, op->unnest_path(), op->binding(),
                                   mine.empty() ? nullptr : CombineConjuncts(mine), op->outer());
      return {out, std::move(rest)};
    }
    case OpKind::kReduce: {
      PushResult c = PushDown(op->child(0), std::move(pending));
      OpPtr in = c.op;
      if (!c.leftover.empty()) in = Operator::Select(in, CombineConjuncts(c.leftover));
      return {Operator::Reduce(in, op->outputs(), op->pred()), {}};
    }
    case OpKind::kNest: {
      // Nothing sinks through a Nest: conjuncts arriving from above can only
      // reference the nest's own binding (child vars are out of scope up
      // there), and filtering before aggregation would change the groups.
      // They stay pending above; anchoring them below left them referencing
      // an unbound variable.
      PushResult c = PushDown(op->child(0), {});
      OpPtr in = c.op;
      if (!c.leftover.empty()) in = Operator::Select(in, CombineConjuncts(c.leftover));
      return {Operator::Nest(in, op->group_by(), op->group_name(), op->outputs(), op->pred(),
                             op->binding()),
              std::move(pending)};
    }
  }
  return {op, std::move(pending)};
}

}  // namespace

Result<OpPtr> Optimizer::PushdownSelections(OpPtr plan) {
  PushResult r = PushDown(std::move(plan), {});
  OpPtr out = r.op;
  if (!r.leftover.empty()) out = Operator::Select(out, CombineConjuncts(r.leftover));
  return out;
}

// ---------------------------------------------------------------------------
// Equi-join key extraction
// ---------------------------------------------------------------------------

Result<OpPtr> Optimizer::ExtractJoinKeys(OpPtr plan) {
  for (size_t i = 0; i < plan->children().size(); ++i) {
    PROTEUS_ASSIGN_OR_RETURN(*plan->mutable_child(i), ExtractJoinKeys(plan->child(i)));
  }
  if (plan->kind() != OpKind::kJoin || !plan->pred()) return plan;

  std::unordered_set<std::string> bl, br;
  BoundVars(plan->child(0), &bl);
  BoundVars(plan->child(1), &br);

  auto conjuncts = SplitConjuncts(plan->pred());
  for (const auto& c : conjuncts) {
    if (c->kind() != ExprKind::kBinary || c->bin_op() != BinOp::kEq) continue;
    const ExprPtr& a = c->child(0);
    const ExprPtr& b = c->child(1);
    if (DependsOnlyOn(a, bl) && DependsOnlyOn(b, br)) {
      plan->set_join_keys(a, b);
      break;
    }
    if (DependsOnlyOn(a, br) && DependsOnlyOn(b, bl)) {
      plan->set_join_keys(b, a);
      break;
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Join strategy selection (shared vs partitioned probe layout)
// ---------------------------------------------------------------------------

Result<OpPtr> Optimizer::SelectJoinStrategies(OpPtr plan) {
  for (size_t i = 0; i < plan->children().size(); ++i) {
    PROTEUS_ASSIGN_OR_RETURN(*plan->mutable_child(i), SelectJoinStrategies(plan->child(i)));
  }
  // Non-equi joins probe by full nested loop over the frozen build vectors;
  // their radix directory is never consulted, so the layout choice is moot.
  if (plan->kind() != OpKind::kJoin || !plan->left_key()) return plan;
  if (opts_.join_strategy == JoinStrategyOverride::kForceShared) {
    plan->set_join_strategy(JoinStrategy::kShared);
    return plan;
  }
  if (opts_.join_strategy == JoinStrategyOverride::kForcePartitioned) {
    plan->set_join_strategy(JoinStrategy::kPartitioned);
    return plan;
  }
  const double rows = EstimateCardinality(plan->child(0));
  bool partitioned = rows >= opts_.partitioned_build_rows;
  if (!partitioned && rows >= opts_.skew_min_rows) {
    // Heavy-hitter detector over the per-dataset column stats: a distinct
    // count far below the build row count means some keys repeat heavily —
    // exactly where the shared layout's max-partition bucket sizing makes
    // every partition pay for the hottest one.
    FieldPath path;
    const Expr* e = plan->left_key().get();
    while (e->kind() == ExprKind::kProj) {
      path.insert(path.begin(), e->field());
      e = e->child(0).get();
    }
    if (e->kind() == ExprKind::kVarRef) {
      std::string var = e->var_name();
      std::function<const Operator*(const Operator*)> find_scan =
          [&](const Operator* o) -> const Operator* {
        if (o->kind() == OpKind::kScan && o->binding() == var) return o;
        for (const auto& ch : o->children()) {
          const Operator* f = find_scan(ch.get());
          if (f != nullptr) return f;
        }
        return nullptr;
      };
      const Operator* scan = find_scan(plan->child(0).get());
      if (scan != nullptr) {
        const auto ds = catalog_.stats().Find(scan->dataset());
        if (ds != nullptr && ds->valid) {
          auto it = ds->columns.find(DottedPath(path));
          if (it != ds->columns.end() && it->second.valid && it->second.ndv > 0) {
            partitioned =
                rows / static_cast<double>(it->second.ndv) >= opts_.skew_dup_ratio;
          }
        }
      }
    }
  }
  plan->set_join_strategy(partitioned ? JoinStrategy::kPartitioned : JoinStrategy::kShared);
  return plan;
}

// ---------------------------------------------------------------------------
// Cardinality / selectivity estimation
// ---------------------------------------------------------------------------

double Optimizer::EstimateSelectivity(const ExprPtr& pred, const OpPtr& op) const {
  if (!pred) return 1.0;
  double sel = 1.0;
  for (const auto& c : SplitConjuncts(pred)) {
    double s = opts_.default_selectivity;
    // Range predicate col <op> literal with known min/max: uniform model.
    if (c->kind() == ExprKind::kBinary) {
      const ExprPtr* col = nullptr;
      const ExprPtr* lit = nullptr;
      bool flipped = false;
      if (c->child(0)->kind() == ExprKind::kProj && c->child(1)->kind() == ExprKind::kLiteral) {
        col = &c->child(0);
        lit = &c->child(1);
      } else if (c->child(1)->kind() == ExprKind::kProj &&
                 c->child(0)->kind() == ExprKind::kLiteral) {
        col = &c->child(1);
        lit = &c->child(0);
        flipped = true;
      }
      if (col != nullptr &&
          ((*lit)->literal().is_int() || (*lit)->literal().is_float())) {
        // Resolve var.field to a dataset column.
        FieldPath path;
        const Expr* e = col->get();
        while (e->kind() == ExprKind::kProj) {
          path.insert(path.begin(), e->field());
          e = e->child(0).get();
        }
        if (e->kind() == ExprKind::kVarRef) {
          // Find the dataset that binds this variable.
          std::string var = e->var_name();
          std::function<const Operator*(const Operator*)> find_scan =
              [&](const Operator* o) -> const Operator* {
            if ((o->kind() == OpKind::kScan) && o->binding() == var) return o;
            for (const auto& ch : o->children()) {
              const Operator* f = find_scan(ch.get());
              if (f != nullptr) return f;
            }
            return nullptr;
          };
          const Operator* scan = find_scan(op.get());
          if (scan != nullptr) {
            const auto ds = catalog_.stats().Find(scan->dataset());
            if (ds != nullptr) {
              auto it = ds->columns.find(DottedPath(path));
              if (it != ds->columns.end() && it->second.valid &&
                  it->second.max > it->second.min) {
                double x = (*lit)->literal().AsFloat();
                double lo = it->second.min, hi = it->second.max;
                double frac = (x - lo) / (hi - lo);
                frac = std::clamp(frac, 0.0, 1.0);
                BinOp o2 = c->bin_op();
                if (flipped) {
                  if (o2 == BinOp::kLt) o2 = BinOp::kGt;
                  else if (o2 == BinOp::kLe) o2 = BinOp::kGe;
                  else if (o2 == BinOp::kGt) o2 = BinOp::kLt;
                  else if (o2 == BinOp::kGe) o2 = BinOp::kLe;
                }
                switch (o2) {
                  case BinOp::kLt:
                  case BinOp::kLe: s = frac; break;
                  case BinOp::kGt:
                  case BinOp::kGe: s = 1.0 - frac; break;
                  case BinOp::kEq: s = 1.0 / std::max(1.0, hi - lo); break;
                  case BinOp::kNe: s = 1.0 - 1.0 / std::max(1.0, hi - lo); break;
                  default: break;
                }
              }
            }
          }
        }
      }
    }
    sel *= s;
  }
  return sel;
}

double Optimizer::EstimateCardinality(const OpPtr& op) const {
  switch (op->kind()) {
    case OpKind::kScan: {
      const auto ds = catalog_.stats().Find(op->dataset());
      return ds != nullptr && ds->valid ? static_cast<double>(ds->cardinality) : 1000.0;
    }
    case OpKind::kCacheScan:
      return 1000.0;
    case OpKind::kSelect:
      return EstimateCardinality(op->child(0)) *
             EstimateSelectivity(op->pred(), op->child(0));
    case OpKind::kJoin: {
      double l = EstimateCardinality(op->child(0));
      double r = EstimateCardinality(op->child(1));
      // PK-FK model: result ~ the FK (larger) side, scaled by any residual.
      double card = std::max(l, r);
      if (!op->left_key() && op->pred()) card = l * r * 0.1;
      return std::max(card, 1.0);
    }
    case OpKind::kUnnest:
      // Average fan-out guess of 4 elements per record (TPC-H-like).
      return EstimateCardinality(op->child(0)) * 4.0 *
             (op->pred() ? opts_.default_selectivity : 1.0);
    case OpKind::kReduce:
      return 1.0;
    case OpKind::kNest:
      return std::max(1.0, EstimateCardinality(op->child(0)) * 0.1);
  }
  return 1000.0;
}

// ---------------------------------------------------------------------------
// Join reordering (greedy smallest-result-first, left-deep)
// ---------------------------------------------------------------------------

namespace {

/// Collects the maximal join-only region rooted at `op`: base units (any
/// non-join operator) and the equi/filter predicates between them.
void FlattenJoins(const OpPtr& op, std::vector<OpPtr>* units, std::vector<ExprPtr>* preds) {
  if (op->kind() == OpKind::kJoin && !op->outer()) {
    FlattenJoins(op->child(0), units, preds);
    FlattenJoins(op->child(1), units, preds);
    if (op->pred()) {
      auto c = SplitConjuncts(op->pred());
      preds->insert(preds->end(), c.begin(), c.end());
    }
    return;
  }
  units->push_back(op);
}

}  // namespace

Result<OpPtr> Optimizer::ReorderJoins(OpPtr plan) {
  for (size_t i = 0; i < plan->children().size(); ++i) {
    if (plan->child(i)->kind() == OpKind::kJoin) continue;  // handled below
  }
  // Recurse into non-join children first.
  if (plan->kind() != OpKind::kJoin) {
    for (size_t i = 0; i < plan->children().size(); ++i) {
      PROTEUS_ASSIGN_OR_RETURN(*plan->mutable_child(i), ReorderJoins(plan->child(i)));
    }
    return plan;
  }
  if (plan->outer()) {
    for (size_t i = 0; i < plan->children().size(); ++i) {
      PROTEUS_ASSIGN_OR_RETURN(*plan->mutable_child(i), ReorderJoins(plan->child(i)));
    }
    return plan;
  }

  std::vector<OpPtr> units;
  std::vector<ExprPtr> preds;
  FlattenJoins(plan, &units, &preds);
  for (auto& u : units) {
    PROTEUS_ASSIGN_OR_RETURN(u, ReorderJoins(u));
  }
  if (units.size() < 2 || !opts_.reorder_joins) {
    // Nothing to reorder; rebuild as-is.
    OpPtr acc = units[0];
    for (size_t i = 1; i < units.size(); ++i) acc = Operator::Join(acc, units[i], nullptr);
    return Operator::Select(acc, CombineConjuncts(preds));
  }

  // Greedy: start from the smallest unit; repeatedly add the connected unit
  // with the smallest estimated join result.
  std::vector<std::unordered_set<std::string>> unit_vars(units.size());
  for (size_t i = 0; i < units.size(); ++i) BoundVars(units[i], &unit_vars[i]);

  std::vector<double> card(units.size());
  for (size_t i = 0; i < units.size(); ++i) card[i] = EstimateCardinality(units[i]);

  std::vector<bool> used(units.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < units.size(); ++i) {
    if (card[i] < card[first]) first = i;
  }
  used[first] = true;
  OpPtr acc = units[first];
  std::unordered_set<std::string> acc_vars = unit_vars[first];
  double acc_card = card[first];

  auto connected = [&](size_t i) {
    for (const auto& p : preds) {
      std::unordered_set<std::string> fv;
      p->CollectFreeVars(&fv);
      bool touches_acc = false, touches_i = false, touches_other = false;
      for (const auto& v : fv) {
        if (acc_vars.count(v)) touches_acc = true;
        else if (unit_vars[i].count(v)) touches_i = true;
        else touches_other = true;
      }
      if (touches_acc && touches_i && !touches_other) return true;
    }
    return false;
  };

  for (size_t step = 1; step < units.size(); ++step) {
    size_t best = units.size();
    double best_card = 0;
    for (size_t i = 0; i < units.size(); ++i) {
      if (used[i]) continue;
      double est = connected(i) ? std::max(acc_card, card[i]) : acc_card * card[i];
      if (best == units.size() || est < best_card) {
        best = i;
        best_card = est;
      }
    }
    acc = Operator::Join(acc, units[best], nullptr);
    used[best] = true;
    acc_vars.insert(unit_vars[best].begin(), unit_vars[best].end());
    acc_card = best_card;
  }
  // Reapply predicates above; a pushdown+key-extraction pass will sink them.
  OpPtr out = Operator::Select(acc, CombineConjuncts(preds));
  PROTEUS_ASSIGN_OR_RETURN(out, PushdownSelections(out));
  return ExtractJoinKeys(out);
}

// ---------------------------------------------------------------------------
// Projection pushdown
// ---------------------------------------------------------------------------

namespace {

/// Collects every var-rooted path used by `e` into out[var].
void CollectPaths(const ExprPtr& e,
                  std::unordered_map<std::string, std::vector<FieldPath>>* out) {
  if (e == nullptr) return;
  if (e->kind() == ExprKind::kProj) {
    FieldPath path;
    const Expr* cur = e.get();
    while (cur->kind() == ExprKind::kProj) {
      path.insert(path.begin(), cur->field());
      cur = cur->child(0).get();
    }
    if (cur->kind() == ExprKind::kVarRef) {
      (*out)[cur->var_name()].push_back(path);
      return;
    }
    // Projection over a computed record: recurse normally.
  }
  if (e->kind() == ExprKind::kVarRef) {
    // Whole-record use: mark with an empty path = "all fields".
    (*out)[e->var_name()].push_back({});
    return;
  }
  for (const auto& c : e->children()) CollectPaths(c, out);
}

void CollectPlanPaths(const OpPtr& op,
                      std::unordered_map<std::string, std::vector<FieldPath>>* out) {
  CollectPaths(op->pred(), out);
  CollectPaths(op->group_by(), out);
  CollectPaths(op->left_key(), out);
  CollectPaths(op->right_key(), out);
  for (const auto& o : op->outputs()) CollectPaths(o.expr, out);
  if (op->kind() == OpKind::kUnnest) {
    const FieldPath& p = op->unnest_path();
    (*out)[p[0]].push_back(FieldPath(p.begin() + 1, p.end()));
  }
  for (const auto& c : op->children()) CollectPlanPaths(c, out);
}

void ApplyScanFields(const OpPtr& op, const Catalog& catalog,
                     const std::unordered_map<std::string, std::vector<FieldPath>>& paths) {
  if (op->kind() == OpKind::kScan) {
    std::vector<FieldPath> fields;
    auto it = paths.find(op->binding());
    if (it != paths.end()) {
      bool whole_record = false;
      for (const auto& p : it->second) {
        if (p.empty()) whole_record = true;
      }
      if (whole_record) {
        // Expand to all top-level fields.
        auto info = catalog.Get(op->dataset());
        if (info.ok()) {
          for (const auto& f : (*info)->record_type().fields()) fields.push_back({f.name});
        }
      } else {
        for (const auto& p : it->second) fields.push_back(p);
      }
      // Dedup, dropping paths covered by a shorter prefix.
      std::sort(fields.begin(), fields.end());
      fields.erase(std::unique(fields.begin(), fields.end()), fields.end());
      std::vector<FieldPath> kept;
      for (const auto& p : fields) {
        bool covered = false;
        for (const auto& q : kept) {
          if (q.size() <= p.size() && std::equal(q.begin(), q.end(), p.begin())) covered = true;
        }
        if (!covered) kept.push_back(p);
      }
      fields = std::move(kept);
    }
    op->set_scan_fields(std::move(fields));
    return;
  }
  for (const auto& c : op->children()) ApplyScanFields(c, catalog, paths);
}

}  // namespace

Result<OpPtr> Optimizer::PushdownProjections(OpPtr plan) {
  std::unordered_map<std::string, std::vector<FieldPath>> paths;
  CollectPlanPaths(plan, &paths);
  ApplyScanFields(plan, catalog_, paths);
  return plan;
}

// ---------------------------------------------------------------------------
// Type checking
// ---------------------------------------------------------------------------

Status Optimizer::TypeCheckPlan(const OpPtr& plan) {
  for (const auto& c : plan->children()) PROTEUS_RETURN_NOT_OK(TypeCheckPlan(c));
  // Cache scans erase static type info; the engine validates at runtime.
  std::function<bool(const Operator*)> has_cache = [&](const Operator* o) {
    if (o->kind() == OpKind::kCacheScan) return true;
    for (const auto& ch : o->children()) {
      if (has_cache(ch.get())) return true;
    }
    return false;
  };
  if (has_cache(plan.get())) return Status::OK();

  TypeEnv env;
  if (!plan->children().empty()) {
    PROTEUS_ASSIGN_OR_RETURN(env, plan->child(0)->OutputEnv(catalog_));
    if (plan->kind() == OpKind::kJoin) {
      PROTEUS_ASSIGN_OR_RETURN(TypeEnv renv, plan->child(1)->OutputEnv(catalog_));
      for (auto& [k, v] : renv) env[k] = v;
    }
  }
  if (plan->kind() == OpKind::kUnnest) {
    PROTEUS_ASSIGN_OR_RETURN(TypeEnv self, plan->OutputEnv(catalog_));
    env = self;
  }
  if (plan->pred()) {
    PROTEUS_ASSIGN_OR_RETURN(TypePtr t, TypeCheck(plan->pred(), env));
    if (t->kind() != TypeKind::kBool) {
      return Status::TypeError("predicate is not boolean: " + plan->pred()->ToString());
    }
  }
  if (plan->group_by()) PROTEUS_RETURN_NOT_OK(TypeCheck(plan->group_by(), env).status());
  if (plan->left_key()) {
    PROTEUS_RETURN_NOT_OK(TypeCheck(plan->left_key(), env).status());
    PROTEUS_RETURN_NOT_OK(TypeCheck(plan->right_key(), env).status());
  }
  for (const auto& o : plan->outputs()) {
    if (o.expr) PROTEUS_RETURN_NOT_OK(TypeCheck(o.expr, env).status());
  }
  return Status::OK();
}

Result<OpPtr> Optimizer::Optimize(OpPtr plan) {
  plan = FoldPlanConstants(std::move(plan));
  PROTEUS_ASSIGN_OR_RETURN(plan, PushdownSelections(std::move(plan)));
  PROTEUS_ASSIGN_OR_RETURN(plan, ExtractJoinKeys(std::move(plan)));
  if (opts_.reorder_joins) {
    PROTEUS_ASSIGN_OR_RETURN(plan, ReorderJoins(std::move(plan)));
    // Reordering re-wraps predicates; normalize once more.
    PROTEUS_ASSIGN_OR_RETURN(plan, PushdownSelections(std::move(plan)));
    PROTEUS_ASSIGN_OR_RETURN(plan, ExtractJoinKeys(std::move(plan)));
  }
  PROTEUS_ASSIGN_OR_RETURN(plan, SelectJoinStrategies(std::move(plan)));
  PROTEUS_ASSIGN_OR_RETURN(plan, PushdownProjections(std::move(plan)));
  PROTEUS_RETURN_NOT_OK(TypeCheckPlan(plan));
  return plan;
}

}  // namespace proteus
