// Query optimizer (paper §4 "Query Optimization").
//
// Pipeline: after the frontend normalizes the comprehension and the
// translator emits an algebraic tree, the optimizer applies
//   1. constant folding over all embedded expressions,
//   2. selection pushdown — conjuncts sink to the lowest operator whose
//      bindings cover them (scans get Select wrappers, cross-side conjuncts
//      become join predicates, unnest-element conjuncts embed into the
//      Unnest operator's own filtering step),
//   3. equi-join key extraction for the radix hash join,
//   4. cost-based join reordering (greedy smallest-result-first over the
//      join graph) driven by statistics and per-source cost formulas that
//      the input plug-ins provide,
//   5. projection pushdown — each scan learns exactly the field paths the
//      rest of the plan touches,
//   6. a full type-checking pass annotating every expression.
#pragma once

#include "src/algebra/algebra.h"
#include "src/catalog/catalog.h"

namespace proteus {

struct OptimizerOptions {
  bool reorder_joins = true;
  /// Fallback predicate selectivity when statistics cannot answer
  /// (the paper's plug-in skeleton default: 10%).
  double default_selectivity = 0.1;
};

class Optimizer {
 public:
  Optimizer(const Catalog& catalog, OptimizerOptions opts = {})
      : catalog_(catalog), opts_(opts) {}

  /// Runs all passes; returns the physical plan.
  Result<OpPtr> Optimize(OpPtr plan);

  /// Individual passes (exposed for tests / ablations).
  Result<OpPtr> PushdownSelections(OpPtr plan);
  Result<OpPtr> ExtractJoinKeys(OpPtr plan);
  Result<OpPtr> ReorderJoins(OpPtr plan);
  Result<OpPtr> PushdownProjections(OpPtr plan);
  Status TypeCheckPlan(const OpPtr& plan);

  /// Estimated output cardinality of a subtree (uses StatsStore).
  double EstimateCardinality(const OpPtr& op) const;
  /// Estimated selectivity of a predicate over `op`'s output.
  double EstimateSelectivity(const ExprPtr& pred, const OpPtr& op) const;

 private:
  const Catalog& catalog_;
  OptimizerOptions opts_;
};

}  // namespace proteus
