// Query optimizer (paper §4 "Query Optimization").
//
// Pipeline: after the frontend normalizes the comprehension and the
// translator emits an algebraic tree, the optimizer applies
//   1. constant folding over all embedded expressions,
//   2. selection pushdown — conjuncts sink to the lowest operator whose
//      bindings cover them (scans get Select wrappers, cross-side conjuncts
//      become join predicates, unnest-element conjuncts embed into the
//      Unnest operator's own filtering step),
//   3. equi-join key extraction for the radix hash join,
//   4. cost-based join reordering (greedy smallest-result-first over the
//      join graph) driven by statistics and per-source cost formulas that
//      the input plug-ins provide,
//   5. projection pushdown — each scan learns exactly the field paths the
//      rest of the plan touches,
//   6. a full type-checking pass annotating every expression.
#pragma once

#include "src/algebra/algebra.h"
#include "src/catalog/catalog.h"

namespace proteus {

/// Override for the join-strategy pass (benchmarks / ablations / tests):
/// kAuto lets the cardinality+skew heuristic decide per join; the force
/// values pin every equi join to one probe layout. Results are identical
/// either way — only the build table's memory layout changes.
enum class JoinStrategyOverride : uint8_t { kAuto, kForceShared, kForcePartitioned };

struct OptimizerOptions {
  bool reorder_joins = true;
  /// Fallback predicate selectivity when statistics cannot answer
  /// (the paper's plug-in skeleton default: 10%).
  double default_selectivity = 0.1;
  /// Join probe-layout selection (see SelectJoinStrategies).
  JoinStrategyOverride join_strategy = JoinStrategyOverride::kAuto;
  /// Build sides at or above this estimated row count always take the
  /// partitioned layout — partition-local build memory pays off regardless
  /// of skew once the table outgrows cache.
  double partitioned_build_rows = 4096;
  /// Skew trigger for smaller builds: partitioned when the build key's
  /// duplication ratio (rows / distinct values) reaches skew_dup_ratio and
  /// the build side has at least skew_min_rows rows.
  double skew_dup_ratio = 4.0;
  double skew_min_rows = 256;
};

class Optimizer {
 public:
  Optimizer(const Catalog& catalog, OptimizerOptions opts = {})
      : catalog_(catalog), opts_(opts) {}

  /// Runs all passes; returns the physical plan.
  Result<OpPtr> Optimize(OpPtr plan);

  /// Individual passes (exposed for tests / ablations).
  Result<OpPtr> PushdownSelections(OpPtr plan);
  Result<OpPtr> ExtractJoinKeys(OpPtr plan);
  Result<OpPtr> ReorderJoins(OpPtr plan);
  /// Picks the probe layout (shared vs partitioned) for every equi join:
  /// the build-time skew detector over per-dataset statistics. Large builds
  /// partition outright; mid-size builds partition when the key column's
  /// heavy-hitter signal (rows/ndv) crosses the skew ratio; everything else
  /// — including every join of a cold dataset whose stats have not been
  /// gathered yet — keeps the shared table.
  Result<OpPtr> SelectJoinStrategies(OpPtr plan);
  Result<OpPtr> PushdownProjections(OpPtr plan);
  Status TypeCheckPlan(const OpPtr& plan);

  /// Estimated output cardinality of a subtree (uses StatsStore).
  double EstimateCardinality(const OpPtr& op) const;
  /// Estimated selectivity of a predicate over `op`'s output.
  double EstimateSelectivity(const ExprPtr& pred, const OpPtr& op) const;

 private:
  const Catalog& catalog_;
  OptimizerOptions opts_;
};

}  // namespace proteus
