// Public entry point: the Proteus query engine.
//
// Usage (see examples/):
//
//   proteus::QueryEngine engine;
//   engine.RegisterDataset({.name = "lineitem", .format = DataFormat::kJSON,
//                           .path = "lineitem.json", .type = LineitemSchema()});
//   auto result = engine.Execute(
//       "SELECT count(*), max(l_quantity) FROM lineitem WHERE l_orderkey < 100");
//
// Pipeline per query (paper Fig 2): parse (SQL or comprehension syntax) ->
// monoid calculus -> normalize -> nested relational algebra -> optimize
// (pushdowns, join order via plug-in stats) -> cache matching -> code
// generation (LLVM) -> execution. Plans outside the JIT's fast path fall
// back to the Volcano interpreter transparently.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "src/catalog/catalog.h"
#include "src/common/mutex.h"
#include "src/common/task_scheduler.h"
#include "src/engine/cache.h"
#include "src/engine/interp.h"
#include "src/engine/result.h"
#include "src/jit/query_cache.h"
#include "src/jit/tiered_compiler.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/optimizer/optimizer.h"

namespace proteus {

enum class ExecMode {
  kJIT,     ///< generate an engine per query; interpreter fallback
  kInterp,  ///< force the Volcano interpreter (baseline / debugging)
};

struct EngineOptions {
  ExecMode mode = ExecMode::kJIT;
  CachePolicy cache_policy;             ///< caching off by default
  OptimizerOptions optimizer;
  bool collect_stats_on_cold_access = true;
  /// Workers for morsel-driven parallel execution (scans, join build/probe,
  /// partial aggregation). 1 = no extra threads; 0 = hardware concurrency.
  /// Results are identical for every value — morsel boundaries depend only
  /// on the data. Generated (JIT) engines are morsel-parallel too: eligible
  /// plans compile to range-parameterized pipeline functions driven by the
  /// scheduler, so num_threads > 1 keeps codegen speed (telemetry reports
  /// jit_parallel = true). Plans outside the generated fast path fall back
  /// to the morsel-parallel interpreter as before.
  int num_threads = 1;
  /// Target scan rows per morsel (tuning / testing). Affects the morsel
  /// decomposition — deterministically, per dataset — but never the result.
  uint64_t morsel_rows = kDefaultMorselRows;
  /// Shard fan-out for partitioned scale-out execution. 0 = sharding off.
  /// N >= 1 routes shardable plans through the ShardCoordinator: the driver
  /// scan's global morsel decomposition is dealt to N ShardExecutors (each
  /// with its own `num_threads`-worker morsel pool — shards × workers
  /// compose) whose partial results cross a serialized wire format and merge
  /// in shard order. Results are cell-identical for every value by
  /// construction. Plans the coordinator declines (outer joins, Nest
  /// mid-chain) keep their normal path.
  int num_shards = 0;
  /// Entry capacity of the compiled-query cache (signature-keyed reuse of
  /// JIT-compiled modules across executions — and across shards, which all
  /// share the engine's one instance, so N shards of one plan compile it
  /// exactly once). 0 disables the cache: every execution recompiles, the
  /// pre-cache behavior. Results are identical either way — only compile
  /// time (QueryTelemetry::jit_compile_ms) changes.
  size_t jit_cache_capacity = 32;
  /// Tiered execution (opt-in): cold queries start on the morsel-parallel
  /// interpreter immediately while their module compiles on a background
  /// thread, then hot-swap to the generated pipelines at a morsel boundary;
  /// hot signatures earn an aggressive tier-2 recompile behind the same
  /// cache key. Results are cell-identical to both pure-interpreter and
  /// pure-JIT runs — partials merge in global morsel order regardless of
  /// where the swap lands. Applies in kJIT mode to chunk-decomposable plans
  /// (the shardable shape); others keep their normal path. Telemetry:
  /// compile_tier, morsels_interpreted, morsels_jit, swap_ms,
  /// first_morsel_ms.
  bool tiered = false;
  /// Knobs and deterministic test hooks for tiered execution.
  jit::TieredOptions tiered_opts;
  /// Query tracing (opt-in): record per-thread spans across every execution
  /// layer — optimizer, cache probes, compiles, join builds, per-morsel
  /// pipelines, shard slices/exchange, tiered swap — and export them as
  /// Chrome trace-event / Perfetto JSON via QueryEngine::trace(). Off by
  /// default; the disabled path is a single null-pointer test per site.
  bool trace = false;
  /// Process-wide metrics sink (opt-in): when set, every execution feeds
  /// query latency, compile cost, cache hit/miss, morsel/steal counts, and
  /// exchange bytes into this registry (e.g. obs::MetricsRegistry::Global()).
  /// Null = no metrics recorded.
  obs::MetricsRegistry* metrics = nullptr;
  /// Generated-code contract verification (src/jit/ir_verifier.h): every
  /// JIT module is checked after LLVM's structural verifyModule against the
  /// engine's code-generation contract — no mutable globals, external calls
  /// only into the proteus_* runtime C-ABI, in-bounds constant param-table
  /// indices, exact entry-point signatures. A violation fails the query with
  /// an Internal status naming each offending symbol (it is a codegen bug,
  /// never valid output). On by default in debug builds; opt-in for release.
#ifdef NDEBUG
  bool verify_ir = false;
#else
  bool verify_ir = true;
#endif
  /// Deterministic test hook: called with the global morsel index at the top
  /// of every morsel any driver (interpreter or JIT) of this engine is about
  /// to run, after the cancel check. Tests block in it to hold a query at a
  /// morsel boundary — e.g. to land a cancellation at a known execution
  /// point. Shared by every concurrent query of the engine; leave unset in
  /// production.
  std::function<void(uint64_t)> morsel_boundary_hook;
};

/// Telemetry for the last executed query.
struct QueryTelemetry {
  double optimize_ms = 0;
  double compile_ms = 0;   ///< LLVM IR generation + compilation (0 on a cache hit)
  /// Per-execution JIT compile cost: equals compile_ms on a miss, ~0 on a
  /// compiled-query-cache hit (no IR is generated at all). Sharded runs
  /// report the summed compile time their shards actually spent — with the
  /// shared cache that is one compile for all shards, or 0 when warm.
  double jit_compile_ms = 0;
  /// The last JIT execution was served by the compiled-query cache without
  /// compiling. Sharded runs report true when every shard was served warm;
  /// always false when the cache is disabled (jit_cache_capacity = 0).
  bool jit_cache_hit = false;
  /// Plan run time (excludes optimize/compile). Exception: a sharded JIT
  /// run with the cache *disabled* folds each shard's in-thread compile
  /// into this number — per-shard compile time is only observable through
  /// the shared cache's counters.
  double execute_ms = 0;
  double cache_build_ms = 0;
  bool used_jit = false;
  /// Generated pipelines ran morsel-parallel (range-parameterized functions
  /// over the Split() decomposition). True whenever the parallel JIT path
  /// executed — including at num_threads == 1, which drives the same morsel
  /// frame on one worker so results cannot depend on the thread count.
  bool jit_parallel = false;
  bool used_cache = false;
  int threads_used = 1;    ///< workers that executed the plan (interpreter or parallel JIT)
  uint64_t morsels = 0;    ///< morsels driven through parallel pipelines (0 = serial)
  int shards_used = 0;     ///< shard executors that ran the plan (0 = unsharded)
  uint64_t bytes_exchanged = 0;  ///< serialized partial-result bytes shard→coordinator
  /// Optimization tier of the generated code that ran morsels this query:
  /// 0 = none (interpreter only — including a tiered run whose compile never
  /// landed), 1 = the default pipeline, 2 = the aggressive background
  /// recompile. Non-tiered JIT runs report 1. Sharded tiered runs report the
  /// highest tier any shard ran.
  int compile_tier = 0;
  /// Tiered runs: morsels the interpreter executed before the hot-swap and
  /// morsels the generated code executed after it (summed across shards).
  /// Both zero on non-tiered paths.
  uint64_t morsels_interpreted = 0;
  uint64_t morsels_jit = 0;
  /// Tiered runs: ms from execution start to the hot-swap (0 = never
  /// swapped; max across shards), and ms to the first completed morsel
  /// chunk — the cold-start latency the tiered path exists to shrink.
  double swap_ms = 0;
  double first_morsel_ms = 0;
  /// Work-stealing balance of the morsel pools this query: tasks dispatched
  /// through ParallelFor and how many of them were executed by a worker
  /// other than the one they were dealt to. Unsharded runs read the engine
  /// scheduler's delta; sharded runs sum every ShardExecutor's pool.
  uint64_t tasks_dealt = 0;
  uint64_t steals = 0;
  /// The query observed its CallOptions::cancel flag and stopped at a morsel
  /// boundary. The Result carries StatusCode::kCancelled; metrics count the
  /// query under proteus_queries_cancelled_total, not the error counter —
  /// a cancellation the caller asked for is not a failure of the engine.
  bool cancelled = false;
  /// Probe layout the optimizer chose for each equi join of the physical
  /// plan, comma-joined in plan order ("shared" / "partitioned"); empty when
  /// the plan has no equi joins. The same annotation drives the interpreter,
  /// the generated engines, and every shard — strategy never varies by
  /// execution path within one query.
  std::string join_strategy;
  /// Every generated module that served this query passed the IR contract
  /// verifier (EngineOptions::verify_ir). False when verification is off,
  /// when the interpreter ran, or when a cached module predates a verifying
  /// engine. Sharded runs report true only if every JIT shard ran verified
  /// code.
  bool ir_verified = false;
  /// Why the interpreter ran, if it did. A plan rejected for several
  /// features reports every reason, semicolon-joined.
  std::string fallback_reason;
  std::string plan;             ///< physical plan, printable
};

/// Per-call knobs for Execute() / ExecutePlan(). All optional; the
/// parameterless overloads pass the defaults. Concurrent callers sharing one
/// engine should pass their own `telemetry` (and `ir` if they want it): the
/// legacy engine-level telemetry()/last_ir() accessors are last-writer-wins
/// under concurrency and only meaningful for single-caller use.
struct CallOptions {
  /// Receives this query's telemetry (reset at entry). Per-query scheduler
  /// attribution (tasks_dealt / steals) is exact even with N concurrent
  /// queries on the shared TaskScheduler: counters are attributed to the
  /// query whose morsel fan-out created the tasks, not read as racy deltas
  /// of the engine-lifetime totals.
  QueryTelemetry* telemetry = nullptr;
  /// Cooperative cancellation flag owned by the caller. Set it (from any
  /// thread) to stop the query at its next morsel boundary; the call then
  /// returns StatusCode::kCancelled with telemetry.cancelled = true. Must
  /// outlive the call. Null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Receives the LLVM IR of the query if it JIT-compiled (cleared at
  /// entry; empty when the interpreter ran or the module came from cache).
  std::string* ir = nullptr;
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions opts = {});

  /// Registers a dataset in situ (no data movement).
  Status RegisterDataset(DatasetInfo info);

  /// Signals that `dataset` was appended/replaced: drops its plug-in (index
  /// rebuilt on next access), statistics, and dependent caches (the paper's
  /// drop-and-rebuild update story, §4).
  void InvalidateDataset(const std::string& dataset);

  /// Parses, optimizes, and runs a query in either syntax.
  Result<QueryResult> Execute(const std::string& query) { return Execute(query, CallOptions{}); }
  Result<QueryResult> Execute(const std::string& query, const CallOptions& call);

  /// Runs an already-built logical plan (used by benchmarks that construct
  /// plans directly). Fully reentrant: N threads may call concurrently on
  /// one engine — they share the catalog, plug-ins, scan caches, compiled-
  /// query cache, tiered compiler, and the one process-wide TaskScheduler
  /// (so concurrent queries interleave at morsel granularity instead of
  /// queueing whole-query). Pass CallOptions::telemetry to get this query's
  /// numbers without racing on the engine-level accessor.
  Result<QueryResult> ExecutePlan(OpPtr logical_plan) {
    return ExecutePlan(std::move(logical_plan), CallOptions{});
  }
  Result<QueryResult> ExecutePlan(OpPtr logical_plan, const CallOptions& call);

  /// Telemetry of the most recently completed query (last-writer-wins).
  /// Single-caller convenience: concurrent callers must pass
  /// CallOptions::telemetry instead — this snapshot may belong to any of
  /// them. Do not call while another thread is mid-ExecutePlan if the torn
  /// read matters; the engine keeps it coherent (mutex-copied), but which
  /// query it describes is unspecified.
  QueryTelemetry telemetry() const EXCLUDES(legacy_mu_) {
    MutexLock lk(legacy_mu_);
    return telemetry_;
  }
  /// LLVM IR of the last JIT-compiled query (empty if interpreter ran).
  /// Same last-writer-wins caveat as telemetry().
  std::string last_ir() const EXCLUDES(legacy_mu_) {
    MutexLock lk(legacy_mu_);
    return last_ir_;
  }
  /// Queries currently inside ExecutePlan (also exported as the
  /// proteus_queries_inflight gauge when options().metrics is set).
  int inflight() const { return inflight_.load(std::memory_order_acquire); }

  Catalog& catalog() { return catalog_; }
  CachingManager& caches() { return caches_; }
  PluginRegistry& plugins() { return plugins_; }
  TaskScheduler& scheduler() { return scheduler_; }
  /// The engine's compiled-query cache (null when jit_cache_capacity == 0).
  /// Shared by every execution path — including all ShardExecutors of a
  /// sharded run — so hit/miss/compile stats are engine-global.
  jit::CompiledQueryCache* jit_cache() { return jit_cache_.get(); }
  /// The background tiered compiler (null unless options().tiered).
  jit::TieredCompiler* tiered_compiler() { return tiered_compiler_.get(); }
  /// The query trace recorder (null unless options().trace). A query that
  /// runs alone (no other query in flight) clears it at entry, so a
  /// Snapshot() taken after a single-caller Execute() is that query's trace
  /// — plus any background compile that outlived the previous query.
  /// Concurrent queries share the recorder without clearing (their spans
  /// interleave in one timeline); use TraceRecorder::BeginCapture() /
  /// Snapshot(capture) to scope a window independently of resets.
  obs::TraceRecorder* trace() { return trace_recorder_.get(); }
  const EngineOptions& options() const { return opts_; }
  void set_mode(ExecMode m) { opts_.mode = m; }

 private:
  Result<QueryResult> ExecutePlanInner(OpPtr logical_plan, const CallOptions& call,
                                       QueryTelemetry& tel, std::string& ir);
  Result<QueryResult> Run(OpPtr physical, const CallOptions& call, QueryTelemetry& tel,
                          std::string& ir);
  Result<QueryResult> RunInner(ExecContext& ctx, OpPtr physical, QueryTelemetry& tel,
                               std::string& ir);
  Status PopulateCaches(const OpPtr& physical);
  void RecordMetrics(const QueryTelemetry& tel, bool ok) const;

  EngineOptions opts_;
  Catalog catalog_;
  PluginRegistry plugins_;
  CachingManager caches_;
  TaskScheduler scheduler_;
  /// Declared before the subsystems whose background jobs may still emit
  /// spans (the tiered compiler's worker): reverse destruction order joins
  /// those threads before the recorder dies.
  std::unique_ptr<obs::TraceRecorder> trace_recorder_;
  std::unique_ptr<jit::CompiledQueryCache> jit_cache_;
  /// Declared after every subsystem its background jobs borrow (catalog,
  /// plug-ins, caches, jit cache): destruction runs in reverse order, so the
  /// compile thread joins before anything it references dies.
  std::unique_ptr<jit::TieredCompiler> tiered_compiler_;
  /// Queries currently inside ExecutePlan. Gates the per-query trace
  /// auto-Clear (only a sole caller resets the recorder) and feeds the
  /// proteus_queries_inflight gauge.
  std::atomic<int> inflight_{0};
  /// Guards the legacy single-caller mirrors below. Every query copies its
  /// telemetry/IR here on completion (last writer wins); per-query truth is
  /// whatever the caller received through CallOptions.
  mutable Mutex legacy_mu_;
  QueryTelemetry telemetry_ GUARDED_BY(legacy_mu_);
  std::string last_ir_ GUARDED_BY(legacy_mu_);
};

}  // namespace proteus
