#include "src/core/query_engine.h"

#include <chrono>
#include <functional>

#include "src/calculus/calculus.h"
#include "src/jit/jit_engine.h"
#include "src/parser/parser.h"
#include "src/shard/coordinator.h"
#include "src/shard/transport.h"

namespace proteus {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Collects raw-format scans still present in a physical plan.
void CollectRawScans(const OpPtr& op, std::vector<const Operator*>* out) {
  if (op->kind() == OpKind::kScan) {
    out->push_back(op.get());
    return;
  }
  for (const auto& c : op->children()) CollectRawScans(c, out);
}

/// Comma-joined probe strategies of the plan's equi joins, in plan order
/// (pre-order) — the QueryTelemetry::join_strategy value.
void AppendJoinStrategies(const Operator& op, std::string* out) {
  if (op.kind() == OpKind::kJoin && op.left_key() != nullptr) {
    if (!out->empty()) out->append(",");
    out->append(JoinStrategyName(op.join_strategy()));
  }
  for (const auto& c : op.children()) AppendJoinStrategies(*c, out);
}

}  // namespace

QueryEngine::QueryEngine(EngineOptions opts)
    : opts_(std::move(opts)),
      caches_(opts_.cache_policy),
      scheduler_(opts_.num_threads) {
  // num_threads = 0 asks for hardware concurrency; the scheduler resolved
  // it, so reflect the actual worker count back into the options (telemetry
  // and the shard coordinator's per-shard pools size off this value).
  opts_.num_threads = scheduler_.num_threads();
  if (opts_.trace) {
    trace_recorder_ = std::make_unique<obs::TraceRecorder>();
  }
  if (opts_.jit_cache_capacity > 0) {
    jit_cache_ = std::make_unique<jit::CompiledQueryCache>(opts_.jit_cache_capacity);
  }
  if (opts_.tiered) {
    tiered_compiler_ = std::make_unique<jit::TieredCompiler>();
  }
}

Status QueryEngine::RegisterDataset(DatasetInfo info) { return catalog_.Register(std::move(info)); }

void QueryEngine::InvalidateDataset(const std::string& dataset) {
  plugins_.Evict(dataset);
  catalog_.stats().Invalidate(dataset);
  caches_.InvalidateDataset(dataset);
  // Compiled modules bake schema-derived constants (column indices, row
  // widths, JSON path hashes) for the old data; retire them all.
  catalog_.BumpEpoch();
}

Result<QueryResult> QueryEngine::Execute(const std::string& query, const CallOptions& call) {
  auto plan = [&]() -> Result<OpPtr> {
    PROTEUS_ASSIGN_OR_RETURN(Comprehension comp, ParseQuery(query, catalog_));
    Normalize(&comp);
    return ToAlgebra(comp, catalog_);
  }();
  if (!plan.ok()) {
    // Queries that never produce a plan still count: a fleet dashboard that
    // missed parse/bind failures would under-report the error rate.
    if (opts_.metrics != nullptr) RecordMetrics(QueryTelemetry{}, false);
    return plan.status();
  }
  return ExecutePlan(std::move(*plan), call);
}

Result<QueryResult> QueryEngine::ExecutePlan(OpPtr logical_plan, const CallOptions& call) {
  // Per-query state lives on this call's stack (or in the caller's
  // out-params) — nothing here touches engine members without a lock, which
  // is what makes N concurrent ExecutePlan calls on one engine safe.
  QueryTelemetry local_tel;
  QueryTelemetry& tel = call.telemetry != nullptr ? *call.telemetry : local_tel;
  tel = QueryTelemetry{};
  std::string local_ir;
  std::string& ir = call.ir != nullptr ? *call.ir : local_ir;
  ir.clear();

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (opts_.metrics != nullptr) opts_.metrics->GetGauge("proteus_queries_inflight")->Add(1);

  auto result = ExecutePlanInner(std::move(logical_plan), call, tel, ir);
  if (!result.ok() && result.status().code() == StatusCode::kCancelled) {
    tel.cancelled = true;
  }

  if (opts_.metrics != nullptr) {
    opts_.metrics->GetGauge("proteus_queries_inflight")->Add(-1);
    RecordMetrics(tel, result.ok());
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  // Refresh the legacy single-caller mirrors (telemetry() / last_ir()).
  {
    MutexLock lk(legacy_mu_);
    telemetry_ = tel;
    last_ir_ = ir;
  }
  return result;
}

Result<QueryResult> QueryEngine::ExecutePlanInner(OpPtr logical_plan, const CallOptions& call,
                                                  QueryTelemetry& tel, std::string& ir) {
  // Per-query trace reset — but only when this query runs alone. A straggler
  // background compile that published after this point intentionally lands
  // in this query's snapshot (it shows the compile landing); with other
  // queries in flight, clearing would amputate *their* timelines, so
  // concurrent executions share one uncleared timeline and callers that
  // need scoped windows use TraceRecorder captures instead.
  if (trace_recorder_ != nullptr && inflight_.load(std::memory_order_acquire) == 1) {
    trace_recorder_->Clear();
  }

  auto t0 = std::chrono::steady_clock::now();
  Optimizer optimizer(catalog_, opts_.optimizer);
  OpPtr physical;
  {
    OBS_SPAN(trace_recorder_.get(), "optimize");
    PROTEUS_ASSIGN_OR_RETURN(physical, optimizer.Optimize(std::move(logical_plan)));
  }
  tel.optimize_ms = MsSince(t0);

  if (caches_.policy().enabled) {
    auto tc = std::chrono::steady_clock::now();
    OBS_SPAN(trace_recorder_.get(), "cache_populate");
    PROTEUS_RETURN_NOT_OK(PopulateCaches(physical));
    physical = caches_.RewriteWithCaches(std::move(physical), catalog_);
    tel.cache_build_ms = MsSince(tc);
    std::function<bool(const Operator&)> has_cache_scan = [&](const Operator& op) {
      if (op.kind() == OpKind::kCacheScan) return true;
      for (const auto& c : op.children()) {
        if (has_cache_scan(*c)) return true;
      }
      return false;
    };
    tel.used_cache = has_cache_scan(*physical);
  }
  tel.plan = physical->ToString();
  AppendJoinStrategies(*physical, &tel.join_strategy);
  return Run(std::move(physical), call, tel, ir);
}

Status QueryEngine::PopulateCaches(const OpPtr& physical) {
  // Leaf-level policy (paper §6 "Cache Policies"): eagerly convert raw CSV /
  // JSON values touched by this query into binary cache columns, as a
  // side-effect of the query that first touches them. The cost lands on the
  // triggering query (visible as the Q9/Q16-style first-touch overhead).
  std::vector<const Operator*> scans;
  CollectRawScans(physical, &scans);
  for (const Operator* scan : scans) {
    PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, catalog_.Get(scan->dataset()));
    if (caches_.policy().raw_formats_only && info->format != DataFormat::kCSV &&
        info->format != DataFormat::kJSON) {
      continue;
    }
    // Already cached for this scan shape *and* covering this query's numeric
    // fields? If the existing block is too narrow, build a wider one
    // (Install() replaces covered same-signature blocks).
    OpPtr probe = Operator::Scan(scan->dataset(), scan->binding());
    const auto existing = caches_.FindMatch(*probe);
    if (existing != nullptr) {
      bool covered = true;
      for (const auto& p : scan->scan_fields()) {
        if (existing->Find(scan->binding(), p) != nullptr) continue;
        // Missing column: only acceptable when the leaf is one the policy
        // would not cache anyway (strings, collections).
        const Type* t = &info->record_type();
        TypePtr leaf;
        bool resolvable = true;
        for (size_t i = 0; i < p.size() && resolvable; ++i) {
          auto ft = t->FieldType(p[i]);
          if (!ft.ok()) {
            resolvable = false;
            break;
          }
          leaf = *ft;
          if (leaf->kind() == TypeKind::kRecord) t = leaf.get();
        }
        if (resolvable && leaf != nullptr &&
            (leaf->is_numeric() || leaf->kind() == TypeKind::kBool)) {
          covered = false;
          break;
        }
      }
      if (covered) continue;
      // Widen: union of old columns' paths and the new field set.
      std::vector<FieldPath> fields = scan->scan_fields();
      for (const auto& col : existing->cols) {
        if (col.path != FieldPath{"$oid"}) fields.push_back(col.path);
      }
      PROTEUS_ASSIGN_OR_RETURN(
          InputPlugin * plugin,
          plugins_.GetOrOpen(*info, opts_.collect_stats_on_cold_access ? &catalog_.stats()
                                                                       : nullptr));
      PROTEUS_RETURN_NOT_OK(
          caches_.BuildScanCache(plugin, *info, scan->binding(), fields, &scheduler_)
              .status());
      continue;
    }
    PROTEUS_ASSIGN_OR_RETURN(
        InputPlugin * plugin,
        plugins_.GetOrOpen(*info, opts_.collect_stats_on_cold_access ? &catalog_.stats()
                                                                     : nullptr));
    PROTEUS_RETURN_NOT_OK(
        caches_.BuildScanCache(plugin, *info, scan->binding(), scan->scan_fields(), &scheduler_)
            .status());
  }
  return Status::OK();
}

Result<QueryResult> QueryEngine::Run(OpPtr physical, const CallOptions& call, QueryTelemetry& tel,
                                     std::string& ir) {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.plugins = &plugins_;
  ctx.stats = opts_.collect_stats_on_cold_access ? &catalog_.stats() : nullptr;
  ctx.caches = &caches_;
  ctx.scheduler = &scheduler_;
  ctx.jit_cache = jit_cache_.get();
  ctx.morsel_rows = opts_.morsel_rows;
  ctx.verify_ir = opts_.verify_ir;
  ctx.trace = trace_recorder_.get();
  ctx.cancel = call.cancel;
  if (opts_.morsel_boundary_hook) ctx.morsel_hook = &opts_.morsel_boundary_hook;
  if (opts_.mode == ExecMode::kJIT && tiered_compiler_ != nullptr) {
    ctx.tiered = tiered_compiler_.get();
    ctx.tiered_opts = &opts_.tiered_opts;
  }

  // Per-query steal telemetry by attribution, not by delta: a StatsScope on
  // this thread tags every ParallelFor this query submits, so the scheduler
  // credits its dealt/stolen tasks to this query alone — exact even with N
  // concurrent queries interleaving on the shared pool (the old
  // read-lifetime-totals-twice delta charged one query with its neighbors'
  // work). Sharded runs use per-shard pools instead (summed by the
  // coordinator), so RunInner overwrites these with the shard totals.
  TaskScheduler::BatchStats query_stats;
  Result<QueryResult> result = [&] {
    TaskScheduler::StatsScope stats_scope(&query_stats);
    OBS_SPAN(ctx.trace, "execute");
    return RunInner(ctx, std::move(physical), tel, ir);
  }();
  if (tel.shards_used == 0) {
    tel.steals = query_stats.steals;
    tel.tasks_dealt = query_stats.dealt;
  }
  return result;
}

void QueryEngine::RecordMetrics(const QueryTelemetry& tel, bool ok) const {
  obs::MetricsRegistry* m = opts_.metrics;
  m->GetCounter("proteus_queries_total")->Increment();
  if (tel.cancelled) {
    // A cancellation the caller asked for is not an engine failure: count it
    // under its own counter so error-rate dashboards stay honest.
    m->GetCounter("proteus_queries_cancelled_total")->Increment();
    return;
  }
  if (!ok) {
    m->GetCounter("proteus_query_errors_total")->Increment();
    return;
  }
  m->GetHistogram("proteus_query_latency_ms")->Observe(tel.execute_ms);
  if (tel.jit_compile_ms > 0) {
    m->GetHistogram("proteus_compile_ms")->Observe(tel.jit_compile_ms);
  }
  if (tel.used_jit) {
    m->GetCounter(tel.jit_cache_hit ? "proteus_jit_cache_hits_total"
                                    : "proteus_jit_cache_misses_total")
        ->Increment();
  }
  if (tel.ir_verified) {
    m->GetCounter("proteus_ir_verified_total")->Increment();
  }
  m->GetCounter("proteus_morsels_total")->Add(tel.morsels);
  m->GetCounter("proteus_tasks_dealt_total")->Add(tel.tasks_dealt);
  m->GetCounter("proteus_steals_total")->Add(tel.steals);
  m->GetCounter("proteus_bytes_exchanged_total")->Add(tel.bytes_exchanged);
  if (jit_cache_ != nullptr) {
    m->GetGauge("proteus_jit_cache_entries")->Set(static_cast<int64_t>(jit_cache_->size()));
  }
}

Result<QueryResult> QueryEngine::RunInner(ExecContext& ctx, OpPtr physical, QueryTelemetry& tel,
                                          std::string& ir) {
  auto t0 = std::chrono::steady_clock::now();
  // Sharded routing: num_shards >= 1 is an explicit opt-in, so shardable
  // plans go through the coordinator ahead of the JIT/interpreter choice.
  // Non-shardable plans (outer joins, Nest mid-chain) fall through to the
  // normal paths below. In JIT mode each shard runs the plan's
  // morsel-parameterized generated pipelines over its slice (interpreter
  // partials for plans outside the generated fast path — bit-identical
  // either way).
  if (opts_.num_shards >= 1 && ShardCoordinator::PlanIsShardable(physical)) {
    ShardCoordinator coordinator(ctx, opts_.num_shards, opts_.num_threads,
                                 opts_.mode == ExecMode::kJIT);
    LoopbackTransport transport;
    ShardExecStats shard_stats;
    auto result = coordinator.Run(physical, &transport, &shard_stats);
    tel.shards_used = shard_stats.shards_used;
    tel.bytes_exchanged = shard_stats.bytes_exchanged;
    tel.threads_used = shard_stats.threads_per_shard;
    tel.morsels = shard_stats.morsels;
    tel.tasks_dealt = shard_stats.tasks_dealt;
    tel.steals = shard_stats.steals;
    tel.used_jit = shard_stats.jit_shards > 0;
    tel.jit_parallel = shard_stats.jit_shards > 0;
    tel.compile_tier = shard_stats.compile_tier;
    tel.morsels_interpreted = shard_stats.morsels_interpreted;
    tel.morsels_jit = shard_stats.morsels_jit;
    tel.swap_ms = shard_stats.swap_ms;
    tel.first_morsel_ms = shard_stats.first_morsel_ms;
    tel.ir_verified = shard_stats.jit_shards > 0 && shard_stats.ir_verified;
    // Shards share the engine's compiled-query cache: N shards of one plan
    // compile it exactly once (cold) or zero times (warm). With the cache
    // disabled (jit_cache_capacity = 0) no per-shard compile cost is
    // observable, so compile telemetry honestly stays at its zeros and
    // jit_cache_hit stays false — there is no cache to hit.
    tel.jit_compile_ms = shard_stats.jit_compile_ms;
    tel.compile_ms = shard_stats.jit_compile_ms;
    tel.jit_cache_hit = ctx.jit_cache != nullptr && shard_stats.jit_shards > 0 &&
                               shard_stats.jit_compiles == 0 && shard_stats.jit_cache_hits > 0;
    // Compiles run inside the fan-out (single-flight: at most one per plan),
    // so subtracting the measured compile time keeps execute_ms ≈ plan run
    // time, matching the unsharded JIT branch below.
    tel.execute_ms = MsSince(t0) - tel.compile_ms;
    if (opts_.mode == ExecMode::kJIT && shard_stats.jit_shards < shard_stats.shards_used) {
      tel.fallback_reason =
          std::to_string(shard_stats.shards_used - shard_stats.jit_shards) +
          " shard(s) ran the interpreter (plan outside the generated fast path)";
    }
    return result;
  }
  // Tiered routing (opt-in): the cold query starts on the interpreter
  // immediately while its module compiles on the background thread, and
  // hot-swaps to generated code at a morsel boundary; warm queries run as
  // pure generated code from morsel 0. Plans the controller declines (outer
  // joins in the chain, shapes outside the morsel driver) fall through to
  // the normal routes below.
  if (ctx.tiered != nullptr) {
    jit::TieredRunStats ts;
    auto partials = jit::RunTiered(ctx, physical, 0, 0, /*whole_plan=*/true, &ts);
    if (partials.ok()) {
      const OpPtr& top = physical->child(0);
      const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
      auto result = FinalizePlanPartials(*physical, nest, std::move(*partials), ctx.trace);
      tel.used_jit = ts.morsels_jit > 0;
      tel.jit_parallel = ts.morsels_jit > 0;
      tel.compile_tier = ts.compile_tier;
      tel.morsels_interpreted = ts.morsels_interpreted;
      tel.morsels_jit = ts.morsels_jit;
      tel.swap_ms = ts.swap_ms;
      tel.first_morsel_ms = ts.first_morsel_ms;
      tel.ir_verified = ts.ir_verified;
      tel.jit_cache_hit = ts.cache_hit;
      // The background compile overlapped execution, so execute_ms keeps
      // the full wall time — there is no foreground compile to subtract.
      // compile_ms reports the background compile this run observed
      // (0 when warm, or when the compile outlived the query).
      tel.compile_ms = ts.compile_ms;
      tel.jit_compile_ms = ts.compile_ms;
      tel.execute_ms = MsSince(t0);
      tel.morsels = ts.morsels_interpreted + ts.morsels_jit;
      tel.threads_used = opts_.num_threads;
      if (ts.morsels_jit == 0) {
        tel.fallback_reason =
            ts.compile_ms > 0
                ? "tiered: background compile failed; interpreter completed the query"
                : "tiered: compile did not land before the query finished";
      }
      return result;
    }
    if (partials.status().code() != StatusCode::kUnimplemented) {
      return partials.status();
    }
    // Not chunk-decomposable: keep the normal JIT/interpreter routing.
  }
  if (opts_.mode == ExecMode::kJIT) {
    JitExecutor jit(ctx);
    // Parallel JIT pipelines for morsel-drivable plans: the generated code
    // itself is morsel-driven, for every thread count — num_threads == 1
    // runs the same morsel frame on one worker, so the thread count can
    // never change the result. Other shapes keep the legacy whole-relation
    // generated engine (single-threaded; they gain nothing from workers).
    const bool parallel = PlanIsMorselParallelizable(physical);
    InterpExecutor::ExecStats stats;
    auto result = parallel ? jit.ExecuteParallel(physical, &stats) : jit.Execute(physical);
    if (result.ok()) {
      tel.used_jit = true;
      tel.jit_parallel = parallel;
      // The served module's tier — 1 normally, 2 when a background
      // promotion already swapped the aggressive module behind this key.
      tel.compile_tier =
          jit.last_module() != nullptr ? jit.last_module()->tier : 1;
      tel.ir_verified = jit.last_module() != nullptr && jit.last_module()->ir_verified;
      if (parallel) {
        tel.threads_used = stats.threads_used;
        tel.morsels = stats.morsels;
      }
      tel.compile_ms = jit.last_compile_ms();
      tel.jit_compile_ms = jit.last_compile_ms();
      tel.jit_cache_hit = jit.last_cache_hit();
      tel.execute_ms = MsSince(t0) - tel.compile_ms;
      ir = jit.last_ir();
      return result;
    }
    if (result.status().code() != StatusCode::kUnimplemented) {
      return result.status();
    }
    tel.fallback_reason = result.status().message();
    // The aborted codegen attempt still cost compile time; record it the
    // way the success path does so fallback runs stop folding it into
    // execute_ms with compile_ms stuck at 0.
    tel.compile_ms = jit.last_compile_ms();
    tel.jit_compile_ms = jit.last_compile_ms();
  }
  InterpExecutor interp(ctx);
  auto result = interp.Execute(physical);
  tel.execute_ms = MsSince(t0) - tel.compile_ms;
  tel.threads_used = interp.exec_stats().threads_used;
  tel.morsels = interp.exec_stats().morsels;
  return result;
}

}  // namespace proteus
