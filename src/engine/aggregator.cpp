#include "src/engine/aggregator.h"

#include <iterator>

namespace proteus {

void Aggregator::Add(const Value& v) {
  if (v.is_null()) return;  // nulls do not contribute to aggregates
  switch (monoid_) {
    case Monoid::kCount:
      ++count_;
      break;
    case Monoid::kSum:
      if (v.is_int() && all_int_) {
        int_acc_ += v.i();
      } else {
        if (all_int_) {
          float_acc_ = static_cast<double>(int_acc_);
          all_int_ = false;
        }
        float_acc_ += v.AsFloat();
      }
      break;
    case Monoid::kMax:
      if (!seen_ || v.Compare(extreme_) > 0) extreme_ = v;
      break;
    case Monoid::kMin:
      if (!seen_ || v.Compare(extreme_) < 0) extreme_ = v;
      break;
    case Monoid::kAnd:
      bool_acc_ = seen_ ? (bool_acc_ && v.b()) : v.b();
      break;
    case Monoid::kOr:
      bool_acc_ = seen_ ? (bool_acc_ || v.b()) : v.b();
      break;
    case Monoid::kBag:
    case Monoid::kList:
      items_.push_back(v);
      break;
    case Monoid::kSet:
      if (!InsertSetItem(v)) return;
      break;
  }
  seen_ = true;
}

void Aggregator::LoadScalar(const Value& v) {
  switch (monoid_) {
    case Monoid::kCount:
      count_ = v.i();
      break;
    case Monoid::kSum:
      if (v.is_int()) {
        int_acc_ = v.i();
      } else {
        all_int_ = false;
        float_acc_ = v.f();
      }
      break;
    case Monoid::kMax:
    case Monoid::kMin:
      extreme_ = v;
      break;
    case Monoid::kAnd:
    case Monoid::kOr:
      bool_acc_ = v.b();
      break;
    case Monoid::kBag:
    case Monoid::kList:
    case Monoid::kSet:
      return;  // collection monoids fold item-wise, never as one scalar
  }
  seen_ = true;
}

bool Aggregator::InsertSetItem(Value v) {
  if (set_index_ == nullptr) set_index_ = std::make_unique<SetIndex>();
  auto& bucket = (*set_index_)[v.Hash()];
  for (uint32_t i : bucket) {
    if (items_[i].Equals(v)) return false;
  }
  bucket.push_back(static_cast<uint32_t>(items_.size()));
  items_.push_back(std::move(v));
  return true;
}

void Aggregator::Merge(const Aggregator& other) {
  switch (monoid_) {
    case Monoid::kCount:
      count_ += other.count_;
      break;
    case Monoid::kSum:
      if (!other.seen_) return;
      if (all_int_ && other.all_int_) {
        int_acc_ += other.int_acc_;
      } else {
        if (all_int_) {
          float_acc_ = static_cast<double>(int_acc_);
          all_int_ = false;
        }
        float_acc_ += other.all_int_ ? static_cast<double>(other.int_acc_) : other.float_acc_;
      }
      break;
    case Monoid::kMax:
      if (other.seen_ && (!seen_ || other.extreme_.Compare(extreme_) > 0)) {
        extreme_ = other.extreme_;
      }
      break;
    case Monoid::kMin:
      if (other.seen_ && (!seen_ || other.extreme_.Compare(extreme_) < 0)) {
        extreme_ = other.extreme_;
      }
      break;
    case Monoid::kAnd:
      if (other.seen_) bool_acc_ = seen_ ? (bool_acc_ && other.bool_acc_) : other.bool_acc_;
      break;
    case Monoid::kOr:
      if (other.seen_) bool_acc_ = seen_ ? (bool_acc_ || other.bool_acc_) : other.bool_acc_;
      break;
    case Monoid::kBag:
    case Monoid::kList:
      items_.insert(items_.end(), other.items_.begin(), other.items_.end());
      break;
    case Monoid::kSet:
      for (const auto& v : other.items_) Add(v);
      return;  // Add already maintains seen_
  }
  seen_ = seen_ || other.seen_;
}

void Aggregator::Merge(Aggregator&& other) {
  switch (monoid_) {
    case Monoid::kBag:
    case Monoid::kList:
      items_.insert(items_.end(), std::make_move_iterator(other.items_.begin()),
                    std::make_move_iterator(other.items_.end()));
      seen_ = seen_ || other.seen_;
      return;
    case Monoid::kSet:
      for (auto& v : other.items_) {
        if (InsertSetItem(std::move(v))) seen_ = true;
      }
      return;
    default:
      Merge(other);  // scalar accumulator state: copying is free
      return;
  }
}

void Aggregator::Serialize(WireWriter* w) const {
  w->PutU8(static_cast<uint8_t>(monoid_));
  w->PutI64(count_);
  w->PutBool(seen_);
  w->PutBool(all_int_);
  w->PutI64(int_acc_);
  w->PutF64(float_acc_);
  w->PutBool(bool_acc_);
  w->PutValue(extreme_);
  w->PutU64(items_.size());
  for (const Value& v : items_) w->PutValue(v);
}

Result<Aggregator> Aggregator::Deserialize(WireReader* r) {
  PROTEUS_ASSIGN_OR_RETURN(uint8_t m, r->U8());
  if (m > static_cast<uint8_t>(Monoid::kSet)) {
    return Status::InvalidArgument("wire: unknown monoid " + std::to_string(m));
  }
  Aggregator a(static_cast<Monoid>(m));
  PROTEUS_ASSIGN_OR_RETURN(a.count_, r->I64());
  PROTEUS_ASSIGN_OR_RETURN(a.seen_, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(a.all_int_, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(a.int_acc_, r->I64());
  PROTEUS_ASSIGN_OR_RETURN(a.float_acc_, r->F64());
  PROTEUS_ASSIGN_OR_RETURN(a.bool_acc_, r->Bool());
  PROTEUS_ASSIGN_OR_RETURN(a.extreme_, r->ReadValue());
  PROTEUS_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  if (n > r->remaining()) return Status::InvalidArgument("wire: bad aggregator item count");
  a.items_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PROTEUS_ASSIGN_OR_RETURN(Value v, r->ReadValue());
    a.items_.push_back(std::move(v));
  }
  if (a.monoid_ == Monoid::kSet && !a.items_.empty()) {
    // Items on the wire are already unique; rebuild the dedup index so
    // post-deserialization merges keep deduplicating.
    a.set_index_ = std::make_unique<SetIndex>();
    for (uint32_t i = 0; i < a.items_.size(); ++i) {
      (*a.set_index_)[a.items_[i].Hash()].push_back(i);
    }
  }
  return a;
}

Value Aggregator::Final() const {
  switch (monoid_) {
    case Monoid::kCount:
      return Value::Int(count_);
    case Monoid::kSum:
      if (!seen_) return Value::Int(0);
      return all_int_ ? Value::Int(int_acc_) : Value::Float(float_acc_);
    case Monoid::kMax:
    case Monoid::kMin:
      return seen_ ? extreme_ : Value::Null();
    case Monoid::kAnd:
      return Value::Boolean(seen_ ? bool_acc_ : true);
    case Monoid::kOr:
      return Value::Boolean(seen_ ? bool_acc_ : false);
    case Monoid::kBag:
    case Monoid::kList:
    case Monoid::kSet:
      return Value::MakeList(items_);
  }
  return Value::Null();
}

}  // namespace proteus
