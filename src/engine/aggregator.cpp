#include "src/engine/aggregator.h"

namespace proteus {

void Aggregator::Add(const Value& v) {
  if (v.is_null()) return;  // nulls do not contribute to aggregates
  switch (monoid_) {
    case Monoid::kCount:
      ++count_;
      break;
    case Monoid::kSum:
      if (v.is_int() && all_int_) {
        int_acc_ += v.i();
      } else {
        if (all_int_) {
          float_acc_ = static_cast<double>(int_acc_);
          all_int_ = false;
        }
        float_acc_ += v.AsFloat();
      }
      break;
    case Monoid::kMax:
      if (!seen_ || v.Compare(extreme_) > 0) extreme_ = v;
      break;
    case Monoid::kMin:
      if (!seen_ || v.Compare(extreme_) < 0) extreme_ = v;
      break;
    case Monoid::kAnd:
      bool_acc_ = seen_ ? (bool_acc_ && v.b()) : v.b();
      break;
    case Monoid::kOr:
      bool_acc_ = seen_ ? (bool_acc_ || v.b()) : v.b();
      break;
    case Monoid::kBag:
    case Monoid::kList:
      items_.push_back(v);
      break;
    case Monoid::kSet: {
      for (const auto& x : items_) {
        if (x.Equals(v)) return;
      }
      items_.push_back(v);
      break;
    }
  }
  seen_ = true;
}

Value Aggregator::Final() const {
  switch (monoid_) {
    case Monoid::kCount:
      return Value::Int(count_);
    case Monoid::kSum:
      if (!seen_) return Value::Int(0);
      return all_int_ ? Value::Int(int_acc_) : Value::Float(float_acc_);
    case Monoid::kMax:
    case Monoid::kMin:
      return seen_ ? extreme_ : Value::Null();
    case Monoid::kAnd:
      return Value::Boolean(seen_ ? bool_acc_ : true);
    case Monoid::kOr:
      return Value::Boolean(seen_ ? bool_acc_ : false);
    case Monoid::kBag:
    case Monoid::kList:
    case Monoid::kSet:
      return Value::MakeList(items_);
  }
  return Value::Null();
}

}  // namespace proteus
