// Radix-partitioned hash table for joins and grouping.
//
// The paper uses variations of the radix hash join [Manegold et al.] adapted
// from Balkesen et al.; parts of the join are precompiled C++ called from
// generated code (§5.1). This table is that precompiled core: inserts buffer
// (hash, row-id) pairs; Build() clusters them by hash radix into cache-sized
// partitions (the "clustering the materialized entries" function the paper
// wraps in C++) and lays per-partition chained buckets over them. Probes
// touch exactly one partition.
//
// Two physical layouts share that logical structure:
//   - shared (default): one clustered array + one uniform bucket directory
//     sized by the *largest* partition — compact directory addressing, but
//     a heavy-hitter partition inflates every partition's bucket range.
//   - partitioned (set_partitioned(true) before Build): each partition owns
//     its rows/buckets/next storage with its own power-of-two bucket count
//     sized to *its* row count. Skewed builds stop paying the max-partition
//     tax, partitions build without touching each other's memory, and a
//     probe's working set is exactly one partition's arrays.
// Probe chain order is identical across layouts (and across thread counts):
// rows cluster in entry order and chains push-front over the same per-
// partition scan, so differential tests stay cell-identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace proteus {

class TaskScheduler;

class RadixTable {
 public:
  /// `radix_bits` partitions = 2^bits; 8 bits keeps partitions L1-resident
  /// for the scales this repo runs.
  explicit RadixTable(int radix_bits = 8) : radix_bits_(radix_bits) {}

  void Reserve(size_t n) { entries_.reserve(n); }
  void Insert(uint64_t hash, uint32_t row_id) { entries_.push_back({hash, row_id}); }
  size_t size() const { return entries_.size(); }

  /// Selects the partitioned layout (per-partition rows/buckets/next with
  /// partition-local bucket sizing). Must be set before Build(); the
  /// optimizer's join-strategy pass drives it per query.
  void set_partitioned(bool on) { partitioned_ = on; }
  bool partitioned() const { return partitioned_; }

  /// Partition introspection (partitioned layout; 0/empty before Build).
  size_t num_partitions() const { return parts_.size(); }
  size_t partition_size(size_t p) const { return parts_[p].rows.size(); }

  /// Clusters entries by radix and builds per-partition buckets. Must be
  /// called once, after all inserts and before any probe. With a scheduler,
  /// the histogram and scatter passes run chunk-parallel and the bucket
  /// chaining partition-parallel; the resulting layout is byte-identical to
  /// the serial build (chunk boundaries depend only on the entry count, and
  /// each (chunk, partition) pair owns a disjoint slice of the clustered
  /// array), so probes see the same chain order either way.
  void Build(TaskScheduler* scheduler = nullptr);

  /// Invokes `cb(row_id)` for every entry whose hash equals `hash`.
  template <typename F>
  void Probe(uint64_t hash, F&& cb) const {
    if (partitioned_) {
      if (parts_.empty()) return;
      const Partition& pt = parts_[hash & partition_mask_];
      if (pt.buckets.empty()) return;
      uint32_t bucket = static_cast<uint32_t>((hash >> radix_bits_) & pt.bucket_mask);
      for (uint32_t i = pt.buckets[bucket]; i != kNil; i = pt.next[i]) {
        if (pt.rows[i].hash == hash) cb(pt.rows[i].row_id);
      }
      return;
    }
    if (bucket_mask_ == 0 && buckets_.empty()) return;
    uint32_t part = static_cast<uint32_t>(hash & partition_mask_);
    uint32_t bucket = part * buckets_per_part_ +
                      static_cast<uint32_t>((hash >> radix_bits_) & bucket_mask_);
    for (uint32_t i = buckets_[bucket]; i != kNil; i = next_[i]) {
      if (clustered_[i].hash == hash) cb(clustered_[i].row_id);
    }
  }

  /// Bytes held (reported as materialization cost by benchmarks).
  size_t bytes() const {
    size_t b = (entries_.capacity() + clustered_.capacity()) * sizeof(Entry) +
               buckets_.capacity() * sizeof(uint32_t) + next_.capacity() * sizeof(uint32_t);
    for (const Partition& pt : parts_) {
      b += pt.rows.capacity() * sizeof(Entry) +
           (pt.buckets.capacity() + pt.next.capacity()) * sizeof(uint32_t);
    }
    return b;
  }

 private:
  struct Entry {
    uint64_t hash;
    uint32_t row_id;
  };
  /// Partitioned layout: one self-contained sub-table per radix partition.
  struct Partition {
    std::vector<Entry> rows;        ///< clustered entries, entry order
    std::vector<uint32_t> buckets;  ///< NextPow2(rows.size()) chain heads
    std::vector<uint32_t> next;
    uint32_t bucket_mask = 0;
  };
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  int radix_bits_;
  bool partitioned_ = false;
  uint64_t partition_mask_ = 0;
  uint64_t bucket_mask_ = 0;
  uint32_t buckets_per_part_ = 0;
  std::vector<Entry> entries_;
  std::vector<Entry> clustered_;
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> next_;
  std::vector<Partition> parts_;
};

}  // namespace proteus
