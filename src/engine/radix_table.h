// Radix-partitioned hash table for joins and grouping.
//
// The paper uses variations of the radix hash join [Manegold et al.] adapted
// from Balkesen et al.; parts of the join are precompiled C++ called from
// generated code (§5.1). This table is that precompiled core: inserts buffer
// (hash, row-id) pairs; Build() clusters them by hash radix into cache-sized
// partitions (the "clustering the materialized entries" function the paper
// wraps in C++) and lays per-partition chained buckets over them. Probes
// touch exactly one partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace proteus {

class TaskScheduler;

class RadixTable {
 public:
  /// `radix_bits` partitions = 2^bits; 8 bits keeps partitions L1-resident
  /// for the scales this repo runs.
  explicit RadixTable(int radix_bits = 8) : radix_bits_(radix_bits) {}

  void Reserve(size_t n) { entries_.reserve(n); }
  void Insert(uint64_t hash, uint32_t row_id) { entries_.push_back({hash, row_id}); }
  size_t size() const { return entries_.size(); }

  /// Clusters entries by radix and builds per-partition buckets. Must be
  /// called once, after all inserts and before any probe. With a scheduler,
  /// the histogram and scatter passes run chunk-parallel and the bucket
  /// chaining partition-parallel; the resulting layout is byte-identical to
  /// the serial build (chunk boundaries depend only on the entry count, and
  /// each (chunk, partition) pair owns a disjoint slice of the clustered
  /// array), so probes see the same chain order either way.
  void Build(TaskScheduler* scheduler = nullptr);

  /// Invokes `cb(row_id)` for every entry whose hash equals `hash`.
  template <typename F>
  void Probe(uint64_t hash, F&& cb) const {
    if (bucket_mask_ == 0 && buckets_.empty()) return;
    uint32_t part = static_cast<uint32_t>(hash & partition_mask_);
    uint32_t bucket = part * buckets_per_part_ +
                      static_cast<uint32_t>((hash >> radix_bits_) & bucket_mask_);
    for (uint32_t i = buckets_[bucket]; i != kNil; i = next_[i]) {
      if (clustered_[i].hash == hash) cb(clustered_[i].row_id);
    }
  }

  /// Bytes held (reported as materialization cost by benchmarks).
  size_t bytes() const {
    return (entries_.capacity() + clustered_.capacity()) * sizeof(Entry) +
           buckets_.capacity() * sizeof(uint32_t) + next_.capacity() * sizeof(uint32_t);
  }

 private:
  struct Entry {
    uint64_t hash;
    uint32_t row_id;
  };
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  int radix_bits_;
  uint64_t partition_mask_ = 0;
  uint64_t bucket_mask_ = 0;
  uint32_t buckets_per_part_ = 0;
  std::vector<Entry> entries_;
  std::vector<Entry> clustered_;
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> next_;
};

}  // namespace proteus
