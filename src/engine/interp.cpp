#include "src/engine/interp.h"

#include <unordered_map>

#include "src/common/counters.h"
#include "src/engine/aggregator.h"
#include "src/engine/partial_sink.h"
#include "src/engine/radix_table.h"
#include "src/obs/trace.h"

namespace proteus {

void CollectBoundVars(const OpPtr& op, std::vector<std::string>* out) {
  switch (op->kind()) {
    case OpKind::kScan:
    case OpKind::kCacheScan:
      out->push_back(op->binding());
      return;
    case OpKind::kUnnest:
      CollectBoundVars(op->child(0), out);
      out->push_back(op->binding());
      return;
    case OpKind::kNest:
      out->push_back(op->binding().empty() ? "$group" : op->binding());
      return;
    default:
      for (const auto& c : op->children()) CollectBoundVars(c, out);
      return;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

class ScanCursor : public Cursor {
 public:
  ScanCursor(const ExecContext& ctx, const Operator& op) : ctx_(ctx), op_(op) {}
  /// Morsel variant: scans only OIDs in `range`.
  ScanCursor(const ExecContext& ctx, const Operator& op, ScanRange range)
      : ctx_(ctx), op_(op), range_{range.begin, range.end} {}

  Status Open() override {
    PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op_.dataset()));
    PROTEUS_ASSIGN_OR_RETURN(plugin_, ctx_.plugins->GetOrOpen(*info, ctx_.stats));
    fields_ = op_.scan_fields();
    if (fields_.empty()) {
      for (const auto& f : info->record_type().fields()) fields_.push_back({f.name});
    }
    n_ = std::min(plugin_->NumRecords(), range_.end);
    oid_ = range_.begin;
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (oid_ >= n_) return false;
    GlobalCounters().tuples_scanned++;
    PROTEUS_ASSIGN_OR_RETURN(Value rec, ReadOne(oid_));
    (*row)[op_.binding()] = std::move(rec);
    ++oid_;
    return true;
  }

 protected:
  virtual Result<Value> ReadOne(uint64_t oid) { return plugin_->ReadRecord(oid, fields_); }

  const ExecContext& ctx_;
  const Operator& op_;
  ScanRange range_{0, UINT64_MAX};
  InputPlugin* plugin_ = nullptr;
  std::vector<FieldPath> fields_;
  uint64_t n_ = 0;
  uint64_t oid_ = 0;
};

/// JSON objects with optional fields: a requested-but-absent field binds
/// null instead of failing the scan.
class LenientScanCursor : public ScanCursor {
 public:
  using ScanCursor::ScanCursor;

 protected:
  Result<Value> ReadOne(uint64_t oid) override {
    std::vector<std::string> names;
    std::vector<Value> values;
    for (const auto& p : fields_) {
      auto v = plugin_->ReadValue(oid, p);
      Value out = Value::Null();
      if (v.ok()) {
        out = std::move(*v);
      } else if (v.status().code() != StatusCode::kNotFound) {
        return v.status();
      }
      // Re-nest deep paths one level at a time.
      for (size_t k = p.size(); k-- > 1;) out = Value::MakeRecord({p[k]}, {std::move(out)});
      names.push_back(p[0]);
      values.push_back(std::move(out));
    }
    // Merge duplicate heads (e.g. origin.ip + origin.country).
    std::vector<std::string> merged_names;
    std::vector<Value> merged_values;
    for (size_t i = 0; i < names.size(); ++i) {
      bool merged = false;
      for (size_t j = 0; j < merged_names.size(); ++j) {
        if (merged_names[j] == names[i] && merged_values[j].is_record() &&
            values[i].is_record()) {
          const auto& a = merged_values[j].record();
          const auto& b = values[i].record();
          std::vector<std::string> ns = a.names;
          std::vector<Value> vs = a.values;
          ns.insert(ns.end(), b.names.begin(), b.names.end());
          vs.insert(vs.end(), b.values.begin(), b.values.end());
          merged_values[j] = Value::MakeRecord(std::move(ns), std::move(vs));
          merged = true;
          break;
        }
      }
      if (!merged) {
        merged_names.push_back(names[i]);
        merged_values.push_back(values[i]);
      }
    }
    return Value::MakeRecord(std::move(merged_names), std::move(merged_values));
  }
};

// ---------------------------------------------------------------------------
// CacheScan
// ---------------------------------------------------------------------------

/// Cache-block lookup shared by the serial cursor and the morsel splitter,
/// so both resolve (and report) blocks identically.
Result<std::shared_ptr<const CacheBlock>> ResolveCacheBlock(const ExecContext& ctx,
                                                            uint64_t cache_id) {
  if (ctx.caches == nullptr) return Status::Internal("cache scan without CachingManager");
  std::shared_ptr<const CacheBlock> block = ctx.caches->FindById(cache_id);
  if (block == nullptr) {
    return Status::NotFound("cache block #" + std::to_string(cache_id) + " evicted");
  }
  return block;
}

class CacheScanCursor : public Cursor {
 public:
  CacheScanCursor(const ExecContext& ctx, const Operator& op) : ctx_(ctx), op_(op) {}
  /// Morsel variant: reads only block rows in `range`.
  CacheScanCursor(const ExecContext& ctx, const Operator& op, ScanRange range)
      : ctx_(ctx), op_(op), range_{range.begin, range.end} {}

  Status Open() override {
    PROTEUS_ASSIGN_OR_RETURN(block_, ResolveCacheBlock(ctx_, op_.cache_id()));
    // Fields the plan needs; fall back to everything the block holds.
    fields_ = op_.scan_fields();
    if (fields_.empty()) {
      for (const auto& c : block_->cols) {
        if (c.path != FieldPath{"$oid"}) fields_.push_back(c.path);
      }
    }
    // Hybrid raw access for fields missing from the block (e.g. strings).
    for (const auto& p : fields_) {
      if (block_->Find(op_.binding(), p) == nullptr) {
        auto info = ctx_.catalog->Get(op_.dataset());
        if (!info.ok()) return info.status();
        PROTEUS_ASSIGN_OR_RETURN(plugin_, ctx_.plugins->GetOrOpen(**info, ctx_.stats));
        oid_col_ = block_->Find(op_.binding(), {"$oid"});
        if (oid_col_ == nullptr) {
          return Status::Internal("hybrid cache scan requires an OID column");
        }
        break;
      }
    }
    row_ = range_.begin;
    limit_ = std::min(block_->num_rows, range_.end);
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (row_ >= limit_) return false;
    std::vector<std::string> names;
    std::vector<Value> values;
    for (const auto& p : fields_) {
      const CacheColumn* c = block_->Find(op_.binding(), p);
      Value v;
      if (c != nullptr) {
        GlobalCounters().cache_field_accesses++;
        switch (c->type) {
          case TypeKind::kInt64:
          case TypeKind::kDate: v = Value::Int(c->ints[row_]); break;
          case TypeKind::kBool: v = Value::Boolean(c->ints[row_] != 0); break;
          case TypeKind::kFloat64: v = Value::Float(c->floats[row_]); break;
          case TypeKind::kString: v = Value::Str(c->strs[row_]); break;
          default: return Status::Internal("bad cache column type");
        }
      } else {
        // Raw fallback through the OID (paper: caching only the OID can be
        // sufficient; Q12-style string predicates still touch the file).
        auto raw = plugin_->ReadValue(static_cast<uint64_t>(oid_col_->ints[row_]), p);
        if (raw.ok()) {
          v = std::move(*raw);
        } else if (raw.status().code() == StatusCode::kNotFound) {
          v = Value::Null();
        } else {
          return raw.status();
        }
      }
      for (size_t k = p.size(); k-- > 1;) v = Value::MakeRecord({p[k]}, {std::move(v)});
      names.push_back(p[0]);
      values.push_back(std::move(v));
    }
    // Merge duplicate heads (nested sub-records split across columns).
    std::vector<std::string> mn;
    std::vector<Value> mv;
    for (size_t i = 0; i < names.size(); ++i) {
      bool merged = false;
      for (size_t j = 0; j < mn.size(); ++j) {
        if (mn[j] == names[i] && mv[j].is_record() && values[i].is_record()) {
          const auto& a = mv[j].record();
          const auto& b = values[i].record();
          std::vector<std::string> ns = a.names;
          std::vector<Value> vs = a.values;
          ns.insert(ns.end(), b.names.begin(), b.names.end());
          vs.insert(vs.end(), b.values.begin(), b.values.end());
          mv[j] = Value::MakeRecord(std::move(ns), std::move(vs));
          merged = true;
          break;
        }
      }
      if (!merged) {
        mn.push_back(names[i]);
        mv.push_back(values[i]);
      }
    }
    (*row)[op_.binding()] = Value::MakeRecord(std::move(mn), std::move(mv));
    ++row_;
    return true;
  }

 private:
  const ExecContext& ctx_;
  const Operator& op_;
  ScanRange range_{0, UINT64_MAX};
  std::shared_ptr<const CacheBlock> block_;  ///< shared: survives eviction mid-query
  std::vector<FieldPath> fields_;
  InputPlugin* plugin_ = nullptr;
  const CacheColumn* oid_col_ = nullptr;
  uint64_t row_ = 0;
  uint64_t limit_ = 0;
};

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

class SelectCursor : public Cursor {
 public:
  SelectCursor(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), *row));
      if (pass) return true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
};

// ---------------------------------------------------------------------------
// Unnest
// ---------------------------------------------------------------------------

class UnnestCursorOp : public Cursor {
 public:
  UnnestCursorOp(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (pos_ < current_.size()) {
        (*row) = outer_row_;
        (*row)[op_.binding()] = current_[pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), *row));
        if (!pass) continue;
        return true;
      }
      if (pending_outer_emit_) {
        pending_outer_emit_ = false;
        (*row) = outer_row_;
        (*row)[op_.binding()] = Value::Null();
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(&outer_row_));
      if (!has) return false;
      // Resolve the collection through the bound record value.
      const FieldPath& p = op_.unnest_path();
      auto it = outer_row_.find(p[0]);
      if (it == outer_row_.end()) {
        return Status::Internal("unnest source '" + p[0] + "' missing at runtime");
      }
      Value v = it->second;
      for (size_t i = 1; i < p.size() && !v.is_null(); ++i) {
        PROTEUS_ASSIGN_OR_RETURN(v, v.GetField(p[i]));
      }
      current_.clear();
      pos_ = 0;
      if (v.is_null()) {
        // absent collection
      } else if (v.is_list()) {
        current_ = v.list();
      } else {
        return Status::TypeError("unnest path " + DottedPath(p) + " is not a collection");
      }
      if (current_.empty() && op_.outer()) pending_outer_emit_ = true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
  EvalEnv outer_row_;
  ValueList current_;
  size_t pos_ = 0;
  bool pending_outer_emit_ = false;
};

// ---------------------------------------------------------------------------
// Join (radix hash for equi-joins, block nested loop otherwise)
// ---------------------------------------------------------------------------

/// A materialized join build side. The serial JoinCursorOp fills one during
/// Open(); the morsel executor fills one up front and shares it read-only
/// across all worker pipelines.
struct SharedJoinBuild {
  std::vector<EvalEnv> rows;
  std::vector<Value> keys;  ///< parallel to rows when has_key
  RadixTable table;
  bool has_key = false;
};

/// Match set of `probe_row` against a build side — the probe semantics
/// shared verbatim by the serial and morsel join cursors (equi probe via
/// the radix table with key-equality check; nested loop otherwise). A null
/// probe key matches nothing.
Status FindJoinMatches(const Operator& op, const SharedJoinBuild& build,
                       const EvalEnv& probe_row, std::vector<uint32_t>* matches) {
  matches->clear();
  if (build.has_key) {
    PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(op.right_key(), probe_row));
    if (k.is_null()) return Status::OK();
    build.table.Probe(k.Hash(), [&](uint32_t idx) {
      if (build.keys[idx].Equals(k)) matches->push_back(idx);
    });
  } else {
    // Nested loop: every build row is a candidate; predicate filters.
    matches->resize(build.rows.size());
    for (uint32_t i = 0; i < build.rows.size(); ++i) (*matches)[i] = i;
  }
  return Status::OK();
}

/// Emits build row `idx` overlaid with the probe row's bindings, then runs
/// the join predicate (with hash keys, equality was already verified via
/// build.keys; the full predicate still covers residual conjuncts).
Result<bool> EmitJoinRow(const Operator& op, const SharedJoinBuild& build, uint32_t idx,
                         const EvalEnv& probe_row, EvalEnv* row) {
  *row = build.rows[idx];
  for (const auto& [k, v] : probe_row) (*row)[k] = v;
  return EvalPredicate(op.pred(), *row);
}

class JoinCursorOp : public Cursor {
 public:
  JoinCursorOp(std::unique_ptr<Cursor> left, std::unique_ptr<Cursor> right, const Operator& op)
      : left_(std::move(left)), right_(std::move(right)), op_(op) {
    CollectBoundVars(op_.child(1), &right_vars_);
  }

  Status Open() override {
    PROTEUS_RETURN_NOT_OK(left_->Open());
    PROTEUS_RETURN_NOT_OK(right_->Open());
    // Build phase: materialize the left (build) side.
    build_.has_key = op_.left_key() != nullptr;
    build_.table.set_partitioned(op_.join_strategy() == JoinStrategy::kPartitioned);
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, left_->Next(&row));
      if (!has) break;
      if (build_.has_key) {
        PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(op_.left_key(), row));
        if (k.is_null()) {
          // Null keys never match; outer joins still keep the row so the
          // unmatched drain can emit it.
          if (op_.outer()) {
            build_.rows.push_back(row);
            build_.keys.push_back(Value::Null());
          }
          continue;
        }
        build_.table.Insert(k.Hash(), static_cast<uint32_t>(build_.rows.size()));
        build_.rows.push_back(row);
        build_.keys.push_back(std::move(k));
      } else {
        build_.rows.push_back(row);
      }
      GlobalCounters().bytes_materialized += 64;  // boxed row estimate
    }
    if (build_.has_key) build_.table.Build();
    matched_.assign(build_.rows.size(), false);
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (match_pos_ < matches_.size()) {
        uint32_t idx = matches_[match_pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EmitJoinRow(op_, build_, idx, probe_row_, row));
        if (!pass) continue;
        matched_[idx] = true;
        return true;
      }
      if (drain_unmatched_) {
        while (unmatched_pos_ < build_.rows.size() && matched_[unmatched_pos_]) {
          ++unmatched_pos_;
        }
        if (unmatched_pos_ >= build_.rows.size()) return false;
        *row = build_.rows[unmatched_pos_++];
        for (const auto& v : right_vars_) (*row)[v] = Value::Null();
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, right_->Next(&probe_row_));
      if (!has) {
        if (op_.outer()) {
          drain_unmatched_ = true;
          continue;
        }
        return false;
      }
      match_pos_ = 0;
      PROTEUS_RETURN_NOT_OK(FindJoinMatches(op_, build_, probe_row_, &matches_));
    }
  }

 private:
  std::unique_ptr<Cursor> left_, right_;
  const Operator& op_;
  std::vector<std::string> right_vars_;
  SharedJoinBuild build_;
  std::vector<bool> matched_;
  EvalEnv probe_row_;
  std::vector<uint32_t> matches_;
  size_t match_pos_ = 0;
  bool drain_unmatched_ = false;
  size_t unmatched_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Nest (hash grouping) — GroupTable and NestBinding live in partial_sink.h,
// shared with the shard subsystem, which serializes per-morsel group tables
// across the shard boundary.
// ---------------------------------------------------------------------------

class NestCursorOp : public Cursor {
 public:
  NestCursorOp(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override {
    PROTEUS_RETURN_NOT_OK(child_->Open());
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      PROTEUS_RETURN_NOT_OK(groups_.AddRow(op_, row));
    }
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (pos_ >= groups_.keys.size()) return false;
    row->clear();
    (*row)[NestBinding(op_)] = groups_.GroupRecord(op_, pos_);
    ++pos_;
    return true;
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
  GroupTable groups_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution (Leis et al., adapted to this engine)
//
// Eligible plans are chains of Select / Unnest / Join ops between the
// Reduce root (optionally through one Nest directly under it) and a
// splittable Scan or CacheScan leaf. Join build sides are materialized once
// up front — themselves morsel-parallel when their shape allows — into
// SharedJoinBuild structures that worker pipelines probe read-only. The
// driver leaf is split into morsels via the plug-in Split() API; each morsel
// runs a private pipeline instance feeding a per-morsel partial sink
// (Reduce accumulators or Nest group tables), merged in morsel order.
// Outer joins track per-morsel matched-build bitmaps, OR-merged after the
// probe morsels; the unmatched build rows then drain — serially, once —
// through the ops above the join into a trailing partial slot, reproducing
// the serial cursor's emission order.
//
// Determinism: morsel boundaries, radix-build layout, and merge order all
// depend only on the data — never on the worker count — so a query returns
// bit-identical results for num_threads = 1 and num_threads = N.
// ---------------------------------------------------------------------------

/// Upper bound on morsels per pipeline (merge cost stays negligible).
constexpr uint64_t kMaxMorsels = 1024;

/// Probe side of a join over a shared, pre-built build side; the per-morsel
/// replacement for JoinCursorOp. Match computation and row emission are the
/// same FindJoinMatches/EmitJoinRow the serial cursor uses. For outer joins
/// the cursor records matched build rows in `matched` (this partial's
/// private bitmap); the unmatched drain itself runs later, once, after every
/// probe partial has reported its bitmap.
class SharedJoinProbeCursor : public Cursor {
 public:
  SharedJoinProbeCursor(std::unique_ptr<Cursor> probe, const SharedJoinBuild* build,
                        const Operator& op, std::vector<uint8_t>* matched = nullptr)
      : probe_(std::move(probe)), build_(build), op_(op), matched_(matched) {}

  Status Open() override { return probe_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (match_pos_ < matches_.size()) {
        uint32_t idx = matches_[match_pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EmitJoinRow(op_, *build_, idx, probe_row_, row));
        if (!pass) continue;
        if (matched_ != nullptr) (*matched_)[idx] = 1;
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_row_));
      if (!has) return false;
      match_pos_ = 0;
      PROTEUS_RETURN_NOT_OK(FindJoinMatches(op_, *build_, probe_row_, &matches_));
    }
  }

 private:
  std::unique_ptr<Cursor> probe_;
  const SharedJoinBuild* build_;
  const Operator& op_;
  std::vector<uint8_t>* matched_;
  EvalEnv probe_row_;
  std::vector<uint32_t> matches_;
  size_t match_pos_ = 0;
};

/// Cursor over a materialized row vector — the source feeding an outer
/// join's unmatched-drain pass through the ops above the join.
class VectorRowCursor : public Cursor {
 public:
  explicit VectorRowCursor(std::vector<EvalEnv> rows) : rows_(std::move(rows)) {}

  Status Open() override { return Status::OK(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (pos_ >= rows_.size()) return false;
    *row = std::move(rows_[pos_++]);
    return true;
  }

 private:
  std::vector<EvalEnv> rows_;
  size_t pos_ = 0;
};

/// The pipeline chain type lives in interp.h (MorselPipeline) — the JIT
/// engine walks the same chain to range-parameterize its generated code.
using PipelineDesc = MorselPipeline;

bool CollectPipelineDesc(const OpPtr& op, PipelineDesc* out) {
  return CollectMorselPipeline(op, out);
}

class MorselRunner {
 public:
  explicit MorselRunner(const ExecContext& ctx) : ctx_(ctx) {}

  /// Attempts morsel-parallel execution of `plan` (root = Reduce). Sets
  /// `*ran = false` without touching `*stats` when the plan shape is not
  /// eligible; the caller then falls back to the serial Volcano path.
  Result<QueryResult> Run(const OpPtr& plan, bool* ran, InterpExecutor::ExecStats* stats) {
    *ran = false;
    const OpPtr& top = plan->child(0);
    const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
    const OpPtr& pipe_root = nest != nullptr ? top->child(0) : top;
    PipelineDesc desc;
    if (!CollectPipelineDesc(pipe_root, &desc)) return QueryResult{};

    // Open every scanned dataset (and collect cold-access stats) on this
    // thread before fanning out; workers then only hit the warm path.
    PROTEUS_RETURN_NOT_OK(PreOpenPlugins(plan));
    for (const Operator* j : desc.joins) {
      PROTEUS_RETURN_NOT_OK(MaterializeBuild(*j));
    }
    PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> morsels, SplitLeaf(*desc.leaf));
    *ran = true;

    PROTEUS_ASSIGN_OR_RETURN(PlanPartials partials, RunRegion(plan, nest, desc, morsels));
    stats->morsels = morsels_run_;
    stats->threads_used =
        static_cast<int>(std::min<uint64_t>(ctx_.scheduler->num_threads(), max_batch_));
    return FinalizePlanPartials(*plan, nest, std::move(partials), ctx_.trace);
  }

  /// Shard-side variant: runs only morsels [morsel_begin, morsel_end) of the
  /// global decomposition and returns their per-morsel partial sinks (the
  /// unit serialized across the shard boundary) instead of a final result.
  Result<PlanPartials> RunPartial(const OpPtr& plan, uint64_t morsel_begin,
                                  uint64_t morsel_end) {
    const OpPtr& top = plan->child(0);
    const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
    const OpPtr& pipe_root = nest != nullptr ? top->child(0) : top;
    PipelineDesc desc;
    if (!CollectPipelineDesc(pipe_root, &desc)) {
      return Status::InvalidArgument("plan is not morsel-parallelizable");
    }
    for (const Operator* j : desc.joins) {
      if (j->outer()) {
        return Status::InvalidArgument(
            "outer joins cannot shard: the unmatched-build drain is global");
      }
    }
    PROTEUS_RETURN_NOT_OK(PreOpenPlugins(plan));
    for (const Operator* j : desc.joins) {
      PROTEUS_RETURN_NOT_OK(MaterializeBuild(*j));
    }
    PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> all, SplitLeaf(*desc.leaf));
    if (morsel_begin > morsel_end || morsel_end > all.size()) {
      return Status::InvalidArgument("shard morsel range [" + std::to_string(morsel_begin) +
                                     ", " + std::to_string(morsel_end) + ") out of bounds for " +
                                     std::to_string(all.size()) + " morsels");
    }
    std::vector<ScanRange> mine(all.begin() + morsel_begin, all.begin() + morsel_end);
    return RunRegion(plan, nest, desc, mine);
  }

  /// Tiered-session entry points (InterpPartialSession): materialize the
  /// chain's build sides once, then run arbitrary morsel subsets against the
  /// retained builds — the per-chunk work drops to pipeline execution only.
  Status MaterializeChainBuilds(const PipelineDesc& desc) {
    for (const Operator* j : desc.joins) {
      PROTEUS_RETURN_NOT_OK(MaterializeBuild(*j));
    }
    return Status::OK();
  }
  Result<PlanPartials> RunChunkRegion(const OpPtr& plan, const Operator* nest,
                                      const PipelineDesc& desc,
                                      const std::vector<ScanRange>& morsels) {
    return RunRegion(plan, nest, desc, morsels);
  }

  /// Morsel count of the global decomposition (see
  /// InterpExecutor::CountPlanMorsels).
  Result<uint64_t> CountMorsels(const OpPtr& plan) {
    const OpPtr& top = plan->child(0);
    const OpPtr& pipe_root = top->kind() == OpKind::kNest ? top->child(0) : top;
    PipelineDesc desc;
    if (!CollectPipelineDesc(pipe_root, &desc)) {
      return Status::InvalidArgument("plan is not morsel-parallelizable");
    }
    PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> morsels, SplitLeaf(*desc.leaf));
    return static_cast<uint64_t>(morsels.size());
  }

 private:
  /// Runs worker pipelines over `morsels` into fresh per-slot partial sinks
  /// (one slot per morsel plus one trailing slot per outer-join drain).
  Result<PlanPartials> RunRegion(const OpPtr& plan, const Operator* nest,
                                 const PipelineDesc& desc,
                                 const std::vector<ScanRange>& morsels) {
    const uint64_t slots = PartialSlots(desc, morsels);
    PlanPartials partials;
    partials.nest = nest != nullptr;
    if (nest != nullptr) {
      partials.group_morsels.resize(slots);
      for (auto& p : partials.group_morsels) p.count_bytes = false;
      PROTEUS_RETURN_NOT_OK(RunPipelines(desc, morsels, [&](EvalEnv& row, uint64_t m) {
        return partials.group_morsels[m].AddRow(*nest, row);
      }));
    } else {
      partials.agg_morsels.reserve(slots);
      for (uint64_t m = 0; m < slots; ++m) partials.agg_morsels.push_back(MakeReduceAggs(*plan));
      PROTEUS_RETURN_NOT_OK(RunPipelines(desc, morsels, [&](EvalEnv& row, uint64_t m) {
        return AccumulateReduceRow(*plan, row, &partials.agg_morsels[m]);
      }));
    }
    return partials;
  }

  Status PreOpenPlugins(const OpPtr& op) { return PreOpenPlanPlugins(ctx_, op); }

  Result<std::vector<ScanRange>> SplitLeaf(const Operator& leaf) {
    return SplitLeafMorsels(ctx_, leaf);
  }

  /// Materializes the build side of `join` into builds_[join]; the subtree
  /// runs morsel-parallel itself when its shape allows.
  Status MaterializeBuild(const Operator& join) {
    obs::TraceSpan span(ctx_.trace, "join_build");
    PROTEUS_ASSIGN_OR_RETURN(std::vector<EvalEnv> rows, MaterializeRows(join.child(0)));
    span.set_arg0("rows", static_cast<int64_t>(rows.size()));
    auto build = std::make_shared<SharedJoinBuild>();
    if (join.left_key()) {
      build->has_key = true;
      build->table.set_partitioned(join.join_strategy() == JoinStrategy::kPartitioned);
      build->rows.reserve(rows.size());
      build->keys.reserve(rows.size());
      build->table.Reserve(rows.size());
      for (auto& row : rows) {
        PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(join.left_key(), row));
        if (k.is_null()) {
          // Null keys never match; outer joins still keep the row (with no
          // radix entry) so the unmatched drain can emit it — mirroring the
          // serial build phase's row order exactly.
          if (join.outer()) {
            build->rows.push_back(std::move(row));
            build->keys.push_back(Value::Null());
          }
          continue;
        }
        build->table.Insert(k.Hash(), static_cast<uint32_t>(build->rows.size()));
        build->rows.push_back(std::move(row));
        build->keys.push_back(std::move(k));
        GlobalCounters().bytes_materialized += 64;  // boxed row estimate
      }
      build->table.Build(ctx_.scheduler);
    } else {
      GlobalCounters().bytes_materialized += 64 * rows.size();
      build->rows = std::move(rows);
    }
    builds_[&join] = std::move(build);
    return Status::OK();
  }

  /// Materializes all rows produced by `subtree`, morsel-parallel when the
  /// subtree is itself an eligible pipeline, serially otherwise.
  Result<std::vector<EvalEnv>> MaterializeRows(const OpPtr& subtree) {
    PipelineDesc desc;
    if (CollectPipelineDesc(subtree, &desc)) {
      for (const Operator* j : desc.joins) {
        PROTEUS_RETURN_NOT_OK(MaterializeBuild(*j));
      }
      PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> morsels, SplitLeaf(*desc.leaf));
      std::vector<std::vector<EvalEnv>> per_morsel(PartialSlots(desc, morsels));
      PROTEUS_RETURN_NOT_OK(RunPipelines(desc, morsels, [&](EvalEnv& row, uint64_t m) {
        per_morsel[m].push_back(row);
        return Status::OK();
      }));
      std::vector<EvalEnv> rows;
      for (auto& chunk : per_morsel) {
        for (auto& row : chunk) rows.push_back(std::move(row));
      }
      return rows;
    }
    // Serial fallback: drain a Volcano cursor tree for this subtree.
    InterpExecutor serial(ctx_);
    PROTEUS_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor, serial.BuildCursor(subtree));
    PROTEUS_RETURN_NOT_OK(cursor->Open());
    std::vector<EvalEnv> rows;
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
      if (!has) break;
      rows.push_back(row);
    }
    return rows;
  }

  /// Matched-build bitmaps of one probe partial (morsel or drain pass),
  /// keyed by outer-join op. unordered_map nodes are pointer-stable, so
  /// cursors hold direct pointers into their partial's entry.
  using MatchedBitmaps = std::unordered_map<const Operator*, std::vector<uint8_t>>;

  /// Partial sink slots a pipeline region feeds (shared accounting with the
  /// JIT executor — see PlanPartialSlots in interp.h).
  static uint64_t PartialSlots(const PipelineDesc& desc, const std::vector<ScanRange>& morsels) {
    return PlanPartialSlots(desc, morsels.size());
  }

  /// Wraps `cursor` in the pipeline op `op` (shared by the per-morsel
  /// pipelines and the outer-join drain passes). Outer joins register a
  /// matched bitmap in `bitmaps`.
  Result<std::unique_ptr<Cursor>> WrapOp(std::unique_ptr<Cursor> cursor, const Operator& op,
                                         MatchedBitmaps* bitmaps) {
    switch (op.kind()) {
      case OpKind::kSelect:
        return std::unique_ptr<Cursor>(new SelectCursor(std::move(cursor), op));
      case OpKind::kUnnest:
        return std::unique_ptr<Cursor>(new UnnestCursorOp(std::move(cursor), op));
      case OpKind::kJoin: {
        const SharedJoinBuild* build = builds_.at(&op).get();
        std::vector<uint8_t>* matched = nullptr;
        if (op.outer()) {
          auto& bm = (*bitmaps)[&op];
          bm.assign(build->rows.size(), 0);
          matched = &bm;
        }
        return std::unique_ptr<Cursor>(
            new SharedJoinProbeCursor(std::move(cursor), build, op, matched));
      }
      default:
        return Status::Internal("unexpected op in morsel pipeline");
    }
  }

  /// Builds one private pipeline instance over `range` (leaf up to root).
  Result<std::unique_ptr<Cursor>> MakePipeline(const PipelineDesc& desc, ScanRange range,
                                               MatchedBitmaps* bitmaps) {
    std::unique_ptr<Cursor> cursor;
    for (size_t i = desc.ops.size(); i-- > 0;) {
      const Operator& op = *desc.ops[i];
      switch (op.kind()) {
        case OpKind::kScan: {
          PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op.dataset()));
          if (info->format == DataFormat::kJSON) {
            cursor.reset(new LenientScanCursor(ctx_, op, range));
          } else {
            cursor.reset(new ScanCursor(ctx_, op, range));
          }
          break;
        }
        case OpKind::kCacheScan:
          cursor.reset(new CacheScanCursor(ctx_, op, range));
          break;
        default: {
          PROTEUS_ASSIGN_OR_RETURN(cursor, WrapOp(std::move(cursor), op, bitmaps));
          break;
        }
      }
    }
    return cursor;
  }

  /// Builds the drain pipeline of outer join `join`: its unmatched build
  /// rows run through only the ops *above* the join (they already carry the
  /// build side's bindings; the probe side is nulled).
  Result<std::unique_ptr<Cursor>> MakeDrainPipeline(const PipelineDesc& desc,
                                                    const Operator* join,
                                                    std::vector<EvalEnv> rows,
                                                    MatchedBitmaps* bitmaps) {
    size_t pos = desc.ops.size();
    for (size_t i = 0; i < desc.ops.size(); ++i) {
      if (desc.ops[i] == join) {
        pos = i;
        break;
      }
    }
    if (pos == desc.ops.size()) return Status::Internal("outer join missing from pipeline");
    std::unique_ptr<Cursor> cursor(new VectorRowCursor(std::move(rows)));
    for (size_t i = pos; i-- > 0;) {
      PROTEUS_ASSIGN_OR_RETURN(cursor, WrapOp(std::move(cursor), *desc.ops[i], bitmaps));
    }
    return cursor;
  }

  /// Outer-join unmatched drains (the lifted ROADMAP serial fallback): OR
  /// the per-partial matched bitmaps of each outer join and run its
  /// unmatched build rows — serially, once — through the ops above it into
  /// trailing partial slot `next_slot`, `next_slot + 1`, ... Deepest joins
  /// drain first, and each drain pass records the matches it produces on
  /// outer joins above it (its bitmaps join the pool for later drains), so
  /// the emitted row order reproduces the serial cursor's exactly: probe
  /// stream first, then unmatched build rows, bottom-up.
  Status DrainOuterJoins(const PipelineDesc& desc, std::vector<MatchedBitmaps>* bitmaps,
                         uint64_t next_slot,
                         const std::function<Status(EvalEnv&, uint64_t)>& sink) {
    for (const Operator* j : OuterChainJoins(desc)) {
      OBS_SPAN(ctx_.trace, "outer_drain");
      const SharedJoinBuild& build = *builds_.at(j);
      std::vector<uint8_t> matched(build.rows.size(), 0);
      for (const MatchedBitmaps& bm : *bitmaps) {
        auto f = bm.find(j);
        if (f == bm.end()) continue;
        for (size_t i = 0; i < matched.size(); ++i) matched[i] |= f->second[i];
      }
      std::vector<std::string> right_vars;
      CollectBoundVars(j->child(1), &right_vars);
      std::vector<EvalEnv> rows;
      for (size_t i = 0; i < build.rows.size(); ++i) {
        if (matched[i] != 0) continue;
        EvalEnv row = build.rows[i];
        for (const auto& v : right_vars) row[v] = Value::Null();
        rows.push_back(std::move(row));
      }
      bitmaps->emplace_back();
      PROTEUS_ASSIGN_OR_RETURN(
          std::unique_ptr<Cursor> cursor,
          MakeDrainPipeline(desc, j, std::move(rows), &bitmaps->back()));
      PROTEUS_RETURN_NOT_OK(cursor->Open());
      EvalEnv row;
      while (true) {
        PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
        if (!has) break;
        PROTEUS_RETURN_NOT_OK(sink(row, next_slot));
      }
      ++next_slot;
    }
    return Status::OK();
  }

  /// Runs one pipeline instance per morsel, fanning out over the scheduler;
  /// `sink(row, slot)` receives every produced row (workers write disjoint
  /// per-morsel slots, so sinks need no locking). Outer-join drains follow
  /// serially, feeding the trailing slots.
  Status RunPipelines(const PipelineDesc& desc, const std::vector<ScanRange>& morsels,
                      const std::function<Status(EvalEnv&, uint64_t)>& sink) {
    morsels_run_ += morsels.size();
    max_batch_ = std::max<uint64_t>(max_batch_, morsels.size());
    std::vector<MatchedBitmaps> bitmaps(morsels.size());
    PROTEUS_RETURN_NOT_OK(ctx_.scheduler->ParallelFor(
        morsels.size(), [&](uint64_t m, int) -> Status {
          PROTEUS_RETURN_NOT_OK(CheckCancelled(ctx_));
          if (ctx_.morsel_hook != nullptr) (*ctx_.morsel_hook)(m);
          OBS_SPAN(ctx_.trace, "interp_morsel", "morsel", static_cast<int64_t>(m));
          PROTEUS_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor,
                                   MakePipeline(desc, morsels[m], &bitmaps[m]));
          PROTEUS_RETURN_NOT_OK(cursor->Open());
          EvalEnv row;
          while (true) {
            PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
            if (!has) break;
            PROTEUS_RETURN_NOT_OK(sink(row, m));
          }
          return Status::OK();
        }));
    return DrainOuterJoins(desc, &bitmaps, morsels.size(), sink);
  }

  const ExecContext& ctx_;
  std::unordered_map<const Operator*, std::shared_ptr<SharedJoinBuild>> builds_;
  uint64_t morsels_run_ = 0;
  uint64_t max_batch_ = 0;
};

/// InterpPartialSession implementation: one MorselRunner whose join builds
/// persist across chunks. The context is held by value (the session may
/// outlive the caller's frame) and must be declared before the runner,
/// which borrows it by reference.
class PartialSessionImpl final : public InterpPartialSession {
 public:
  PartialSessionImpl(const ExecContext& ctx, OpPtr plan)
      : ctx_(ctx), plan_(std::move(plan)), runner_(ctx_) {}

  Status Prepare() {
    const OpPtr& top = plan_->child(0);
    nest_ = top->kind() == OpKind::kNest ? top.get() : nullptr;
    const OpPtr& pipe_root = nest_ != nullptr ? top->child(0) : top;
    if (!CollectPipelineDesc(pipe_root, &desc_)) {
      return Status::InvalidArgument("plan is not morsel-parallelizable");
    }
    for (const Operator* j : desc_.joins) {
      if (j->outer()) {
        return Status::InvalidArgument(
            "outer joins cannot run chunked: the unmatched-build drain is global");
      }
    }
    PROTEUS_RETURN_NOT_OK(PreOpenPlanPlugins(ctx_, plan_));
    PROTEUS_RETURN_NOT_OK(runner_.MaterializeChainBuilds(desc_));
    PROTEUS_ASSIGN_OR_RETURN(morsels_, SplitLeafMorsels(ctx_, *desc_.leaf));
    return Status::OK();
  }

  uint64_t num_morsels() const override { return morsels_.size(); }

  Status RunChunk(uint64_t morsel_begin, uint64_t morsel_end, PlanPartials* out) override {
    if (morsel_begin > morsel_end || morsel_end > morsels_.size()) {
      return Status::InvalidArgument(
          "chunk morsel range [" + std::to_string(morsel_begin) + ", " +
          std::to_string(morsel_end) + ") out of bounds for " +
          std::to_string(morsels_.size()) + " morsels");
    }
    std::vector<ScanRange> mine(morsels_.begin() + morsel_begin, morsels_.begin() + morsel_end);
    PROTEUS_ASSIGN_OR_RETURN(PlanPartials chunk,
                             runner_.RunChunkRegion(plan_, nest_, desc_, mine));
    out->nest = chunk.nest;
    out->Append(std::move(chunk));
    return Status::OK();
  }

 private:
  ExecContext ctx_;
  OpPtr plan_;
  MorselRunner runner_;
  PipelineDesc desc_;
  const Operator* nest_ = nullptr;
  std::vector<ScanRange> morsels_;
};

}  // namespace

Result<std::unique_ptr<InterpPartialSession>> MakeInterpPartialSession(const ExecContext& ctx,
                                                                       const OpPtr& plan) {
  if (plan == nullptr || plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("plan root must be Reduce");
  }
  if (ctx.scheduler == nullptr) {
    return Status::InvalidArgument("interp session requires a scheduler");
  }
  auto session = std::make_unique<PartialSessionImpl>(ctx, plan);
  PROTEUS_RETURN_NOT_OK(session->Prepare());
  return std::unique_ptr<InterpPartialSession>(std::move(session));
}

// ---------------------------------------------------------------------------
// Shared morsel decomposition (interpreter morsels, JIT pipelines, shards)
// ---------------------------------------------------------------------------

bool CollectMorselPipeline(const OpPtr& op, MorselPipeline* out) {
  switch (op->kind()) {
    case OpKind::kScan:
    case OpKind::kCacheScan:
      out->ops.push_back(op.get());
      out->leaf = op.get();
      return true;
    case OpKind::kSelect:
    case OpKind::kUnnest:
      out->ops.push_back(op.get());
      return CollectMorselPipeline(op->child(0), out);
    case OpKind::kJoin:
      // Outer joins are eligible too: matched-build bits are tracked per
      // morsel and the unmatched drain runs once after the probe morsels.
      out->ops.push_back(op.get());
      out->joins.push_back(op.get());
      return CollectMorselPipeline(op->child(1), out);
    default:
      return false;  // Nest mid-chain, Reduce, unknown
  }
}

std::vector<const Operator*> OuterChainJoins(const MorselPipeline& pipe) {
  // pipe.joins is collected root-first; drains run deepest-first.
  std::vector<const Operator*> outer;
  for (size_t k = pipe.joins.size(); k-- > 0;) {
    if (pipe.joins[k]->outer()) outer.push_back(pipe.joins[k]);
  }
  return outer;
}

uint64_t PlanPartialSlots(const MorselPipeline& pipe, uint64_t num_morsels) {
  uint64_t outer = 0;
  for (const Operator* j : pipe.joins) outer += j->outer() ? 1 : 0;
  return num_morsels + outer;
}

Result<std::vector<ScanRange>> SplitLeafMorsels(const ExecContext& ctx, const Operator& leaf) {
  const uint64_t per_morsel = ctx.morsel_rows == 0 ? kDefaultMorselRows : ctx.morsel_rows;
  auto target = [&](uint64_t n) {
    return std::max<uint64_t>(1, std::min(kMaxMorsels, (n + per_morsel - 1) / per_morsel));
  };
  if (leaf.kind() == OpKind::kScan) {
    PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx.catalog->Get(leaf.dataset()));
    PROTEUS_ASSIGN_OR_RETURN(InputPlugin * plugin, ctx.plugins->GetOrOpen(*info, ctx.stats));
    uint64_t n = plugin->NumRecords();
    std::vector<ScanRange> morsels = plugin->Split(target(n));
    // The Split contract does not promise non-emptiness; the merge phase
    // indexes partials[0], so guarantee at least one morsel here.
    if (morsels.empty()) morsels.push_back({0, n});
    return morsels;
  }
  // CacheScan: evenly split the block's row range.
  PROTEUS_ASSIGN_OR_RETURN(const auto block, ResolveCacheBlock(ctx, leaf.cache_id()));
  return EvenSplit(block->num_rows, target(block->num_rows));
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

bool PlanIsMorselParallelizable(const OpPtr& plan) {
  if (plan == nullptr || plan->kind() != OpKind::kReduce) return false;
  const OpPtr& top = plan->child(0);
  const OpPtr& root = top->kind() == OpKind::kNest ? top->child(0) : top;
  PipelineDesc desc;
  return CollectPipelineDesc(root, &desc);
}

Status PreOpenPlanPlugins(const ExecContext& ctx, const OpPtr& op) {
  if (op->kind() == OpKind::kScan ||
      (op->kind() == OpKind::kCacheScan && !op->dataset().empty())) {
    PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx.catalog->Get(op->dataset()));
    PROTEUS_RETURN_NOT_OK(ctx.plugins->GetOrOpen(*info, ctx.stats).status());
  }
  for (const auto& c : op->children()) PROTEUS_RETURN_NOT_OK(PreOpenPlanPlugins(ctx, c));
  return Status::OK();
}

bool PlanIsShardable(const OpPtr& plan) {
  if (plan == nullptr || plan->kind() != OpKind::kReduce) return false;
  const OpPtr& top = plan->child(0);
  const OpPtr& root = top->kind() == OpKind::kNest ? top->child(0) : top;
  PipelineDesc desc;
  if (!CollectPipelineDesc(root, &desc)) return false;
  for (const Operator* j : desc.joins) {
    if (j->outer()) return false;  // the unmatched drain needs a global view
  }
  return true;
}

Result<uint64_t> InterpExecutor::CountPlanMorsels(const OpPtr& plan) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("physical plan root must be Reduce");
  }
  MorselRunner runner(ctx_);
  return runner.CountMorsels(plan);
}

Result<PlanPartials> InterpExecutor::ExecutePartials(const OpPtr& plan, uint64_t morsel_begin,
                                                     uint64_t morsel_end) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("physical plan root must be Reduce");
  }
  if (ctx_.scheduler == nullptr) {
    return Status::InvalidArgument("ExecutePartials requires a TaskScheduler");
  }
  exec_stats_ = ExecStats{};
  MorselRunner runner(ctx_);
  PROTEUS_ASSIGN_OR_RETURN(PlanPartials partials,
                           runner.RunPartial(plan, morsel_begin, morsel_end));
  exec_stats_.morsels = morsel_end - morsel_begin;
  exec_stats_.threads_used = ctx_.scheduler->num_threads();
  return partials;
}

Result<std::unique_ptr<Cursor>> InterpExecutor::BuildCursor(const OpPtr& op) {
  switch (op->kind()) {
    case OpKind::kScan: {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op->dataset()));
      if (info->format == DataFormat::kJSON) {
        return std::unique_ptr<Cursor>(new LenientScanCursor(ctx_, *op));
      }
      return std::unique_ptr<Cursor>(new ScanCursor(ctx_, *op));
    }
    case OpKind::kCacheScan:
      return std::unique_ptr<Cursor>(new CacheScanCursor(ctx_, *op));
    case OpKind::kSelect: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new SelectCursor(std::move(child), *op));
    }
    case OpKind::kUnnest: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new UnnestCursorOp(std::move(child), *op));
    }
    case OpKind::kJoin: {
      PROTEUS_ASSIGN_OR_RETURN(auto l, BuildCursor(op->child(0)));
      PROTEUS_ASSIGN_OR_RETURN(auto r, BuildCursor(op->child(1)));
      return std::unique_ptr<Cursor>(new JoinCursorOp(std::move(l), std::move(r), *op));
    }
    case OpKind::kNest: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new NestCursorOp(std::move(child), *op));
    }
    case OpKind::kReduce:
      return Status::InvalidArgument("Reduce must be the plan root");
  }
  return Status::Internal("unknown operator kind");
}

Result<QueryResult> InterpExecutor::Execute(const OpPtr& plan) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("physical plan root must be Reduce, got:\n" +
                                   plan->ToString());
  }
  exec_stats_ = ExecStats{};

  // Morsel-driven parallel path; ineligible plan shapes (Nest mid-chain,
  // unknown ops) fall through to the serial Volcano drain below.
  //
  // Deliberately taken even at num_threads == 1: cross-thread-count result
  // identity requires every worker count to use the same per-morsel partial
  // sums (float addition is not associative), so the worker count may only
  // change who runs a morsel, never the fold shape. The cost is that
  // eligible plans' float aggregates can differ in the last ulps from the
  // serial drain — within every oracle tolerance in the suite.
  if (ctx_.scheduler != nullptr) {
    MorselRunner runner(ctx_);
    bool ran = false;
    PROTEUS_ASSIGN_OR_RETURN(QueryResult result, runner.Run(plan, &ran, &exec_stats_));
    if (ran) return result;
  }

  PROTEUS_ASSIGN_OR_RETURN(auto cursor, BuildCursor(plan->child(0)));
  PROTEUS_RETURN_NOT_OK(cursor->Open());

  std::vector<Aggregator> aggs;
  aggs.reserve(plan->outputs().size());
  for (const auto& o : plan->outputs()) aggs.emplace_back(o.monoid);

  EvalEnv row;
  uint64_t rows = 0;
  while (true) {
    // The serial drain has no morsel boundaries; re-check the cancel flag
    // every kDefaultMorselRows rows so it honours the same promptness
    // contract as the morsel paths.
    if ((rows++ % kDefaultMorselRows) == 0) PROTEUS_RETURN_NOT_OK(CheckCancelled(ctx_));
    PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
    if (!has) break;
    PROTEUS_RETURN_NOT_OK(AccumulateReduceRow(*plan, row, &aggs));
  }
  return FinalizeReduce(*plan, aggs);
}

}  // namespace proteus
