#include "src/engine/interp.h"

#include <unordered_map>

#include "src/common/counters.h"
#include "src/engine/aggregator.h"
#include "src/engine/radix_table.h"

namespace proteus {

void CollectBoundVars(const OpPtr& op, std::vector<std::string>* out) {
  switch (op->kind()) {
    case OpKind::kScan:
    case OpKind::kCacheScan:
      out->push_back(op->binding());
      return;
    case OpKind::kUnnest:
      CollectBoundVars(op->child(0), out);
      out->push_back(op->binding());
      return;
    case OpKind::kNest:
      out->push_back(op->binding().empty() ? "$group" : op->binding());
      return;
    default:
      for (const auto& c : op->children()) CollectBoundVars(c, out);
      return;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

class ScanCursor : public Cursor {
 public:
  ScanCursor(const ExecContext& ctx, const Operator& op) : ctx_(ctx), op_(op) {}
  /// Morsel variant: scans only OIDs in `range`.
  ScanCursor(const ExecContext& ctx, const Operator& op, ScanRange range)
      : ctx_(ctx), op_(op), range_{range.begin, range.end} {}

  Status Open() override {
    PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op_.dataset()));
    PROTEUS_ASSIGN_OR_RETURN(plugin_, ctx_.plugins->GetOrOpen(*info, ctx_.stats));
    fields_ = op_.scan_fields();
    if (fields_.empty()) {
      for (const auto& f : info->record_type().fields()) fields_.push_back({f.name});
    }
    n_ = std::min(plugin_->NumRecords(), range_.end);
    oid_ = range_.begin;
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (oid_ >= n_) return false;
    GlobalCounters().tuples_scanned++;
    PROTEUS_ASSIGN_OR_RETURN(Value rec, ReadOne(oid_));
    (*row)[op_.binding()] = std::move(rec);
    ++oid_;
    return true;
  }

 protected:
  virtual Result<Value> ReadOne(uint64_t oid) { return plugin_->ReadRecord(oid, fields_); }

  const ExecContext& ctx_;
  const Operator& op_;
  ScanRange range_{0, UINT64_MAX};
  InputPlugin* plugin_ = nullptr;
  std::vector<FieldPath> fields_;
  uint64_t n_ = 0;
  uint64_t oid_ = 0;
};

/// JSON objects with optional fields: a requested-but-absent field binds
/// null instead of failing the scan.
class LenientScanCursor : public ScanCursor {
 public:
  using ScanCursor::ScanCursor;

 protected:
  Result<Value> ReadOne(uint64_t oid) override {
    std::vector<std::string> names;
    std::vector<Value> values;
    for (const auto& p : fields_) {
      auto v = plugin_->ReadValue(oid, p);
      Value out = Value::Null();
      if (v.ok()) {
        out = std::move(*v);
      } else if (v.status().code() != StatusCode::kNotFound) {
        return v.status();
      }
      // Re-nest deep paths one level at a time.
      for (size_t k = p.size(); k-- > 1;) out = Value::MakeRecord({p[k]}, {std::move(out)});
      names.push_back(p[0]);
      values.push_back(std::move(out));
    }
    // Merge duplicate heads (e.g. origin.ip + origin.country).
    std::vector<std::string> merged_names;
    std::vector<Value> merged_values;
    for (size_t i = 0; i < names.size(); ++i) {
      bool merged = false;
      for (size_t j = 0; j < merged_names.size(); ++j) {
        if (merged_names[j] == names[i] && merged_values[j].is_record() &&
            values[i].is_record()) {
          const auto& a = merged_values[j].record();
          const auto& b = values[i].record();
          std::vector<std::string> ns = a.names;
          std::vector<Value> vs = a.values;
          ns.insert(ns.end(), b.names.begin(), b.names.end());
          vs.insert(vs.end(), b.values.begin(), b.values.end());
          merged_values[j] = Value::MakeRecord(std::move(ns), std::move(vs));
          merged = true;
          break;
        }
      }
      if (!merged) {
        merged_names.push_back(names[i]);
        merged_values.push_back(values[i]);
      }
    }
    return Value::MakeRecord(std::move(merged_names), std::move(merged_values));
  }
};

// ---------------------------------------------------------------------------
// CacheScan
// ---------------------------------------------------------------------------

/// Cache-block lookup shared by the serial cursor and the morsel splitter,
/// so both resolve (and report) blocks identically.
Result<const CacheBlock*> ResolveCacheBlock(const ExecContext& ctx, uint64_t cache_id) {
  if (ctx.caches == nullptr) return Status::Internal("cache scan without CachingManager");
  const CacheBlock* block = ctx.caches->FindById(cache_id);
  if (block == nullptr) {
    return Status::NotFound("cache block #" + std::to_string(cache_id) + " evicted");
  }
  return block;
}

class CacheScanCursor : public Cursor {
 public:
  CacheScanCursor(const ExecContext& ctx, const Operator& op) : ctx_(ctx), op_(op) {}
  /// Morsel variant: reads only block rows in `range`.
  CacheScanCursor(const ExecContext& ctx, const Operator& op, ScanRange range)
      : ctx_(ctx), op_(op), range_{range.begin, range.end} {}

  Status Open() override {
    PROTEUS_ASSIGN_OR_RETURN(block_, ResolveCacheBlock(ctx_, op_.cache_id()));
    // Fields the plan needs; fall back to everything the block holds.
    fields_ = op_.scan_fields();
    if (fields_.empty()) {
      for (const auto& c : block_->cols) {
        if (c.path != FieldPath{"$oid"}) fields_.push_back(c.path);
      }
    }
    // Hybrid raw access for fields missing from the block (e.g. strings).
    for (const auto& p : fields_) {
      if (block_->Find(op_.binding(), p) == nullptr) {
        auto info = ctx_.catalog->Get(op_.dataset());
        if (!info.ok()) return info.status();
        PROTEUS_ASSIGN_OR_RETURN(plugin_, ctx_.plugins->GetOrOpen(**info, ctx_.stats));
        oid_col_ = block_->Find(op_.binding(), {"$oid"});
        if (oid_col_ == nullptr) {
          return Status::Internal("hybrid cache scan requires an OID column");
        }
        break;
      }
    }
    row_ = range_.begin;
    limit_ = std::min(block_->num_rows, range_.end);
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (row_ >= limit_) return false;
    std::vector<std::string> names;
    std::vector<Value> values;
    for (const auto& p : fields_) {
      const CacheColumn* c = block_->Find(op_.binding(), p);
      Value v;
      if (c != nullptr) {
        GlobalCounters().cache_field_accesses++;
        switch (c->type) {
          case TypeKind::kInt64:
          case TypeKind::kDate: v = Value::Int(c->ints[row_]); break;
          case TypeKind::kBool: v = Value::Boolean(c->ints[row_] != 0); break;
          case TypeKind::kFloat64: v = Value::Float(c->floats[row_]); break;
          case TypeKind::kString: v = Value::Str(c->strs[row_]); break;
          default: return Status::Internal("bad cache column type");
        }
      } else {
        // Raw fallback through the OID (paper: caching only the OID can be
        // sufficient; Q12-style string predicates still touch the file).
        auto raw = plugin_->ReadValue(static_cast<uint64_t>(oid_col_->ints[row_]), p);
        if (raw.ok()) {
          v = std::move(*raw);
        } else if (raw.status().code() == StatusCode::kNotFound) {
          v = Value::Null();
        } else {
          return raw.status();
        }
      }
      for (size_t k = p.size(); k-- > 1;) v = Value::MakeRecord({p[k]}, {std::move(v)});
      names.push_back(p[0]);
      values.push_back(std::move(v));
    }
    // Merge duplicate heads (nested sub-records split across columns).
    std::vector<std::string> mn;
    std::vector<Value> mv;
    for (size_t i = 0; i < names.size(); ++i) {
      bool merged = false;
      for (size_t j = 0; j < mn.size(); ++j) {
        if (mn[j] == names[i] && mv[j].is_record() && values[i].is_record()) {
          const auto& a = mv[j].record();
          const auto& b = values[i].record();
          std::vector<std::string> ns = a.names;
          std::vector<Value> vs = a.values;
          ns.insert(ns.end(), b.names.begin(), b.names.end());
          vs.insert(vs.end(), b.values.begin(), b.values.end());
          mv[j] = Value::MakeRecord(std::move(ns), std::move(vs));
          merged = true;
          break;
        }
      }
      if (!merged) {
        mn.push_back(names[i]);
        mv.push_back(values[i]);
      }
    }
    (*row)[op_.binding()] = Value::MakeRecord(std::move(mn), std::move(mv));
    ++row_;
    return true;
  }

 private:
  const ExecContext& ctx_;
  const Operator& op_;
  ScanRange range_{0, UINT64_MAX};
  const CacheBlock* block_ = nullptr;
  std::vector<FieldPath> fields_;
  InputPlugin* plugin_ = nullptr;
  const CacheColumn* oid_col_ = nullptr;
  uint64_t row_ = 0;
  uint64_t limit_ = 0;
};

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

class SelectCursor : public Cursor {
 public:
  SelectCursor(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), *row));
      if (pass) return true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
};

// ---------------------------------------------------------------------------
// Unnest
// ---------------------------------------------------------------------------

class UnnestCursorOp : public Cursor {
 public:
  UnnestCursorOp(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (pos_ < current_.size()) {
        (*row) = outer_row_;
        (*row)[op_.binding()] = current_[pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), *row));
        if (!pass) continue;
        return true;
      }
      if (pending_outer_emit_) {
        pending_outer_emit_ = false;
        (*row) = outer_row_;
        (*row)[op_.binding()] = Value::Null();
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(&outer_row_));
      if (!has) return false;
      // Resolve the collection through the bound record value.
      const FieldPath& p = op_.unnest_path();
      auto it = outer_row_.find(p[0]);
      if (it == outer_row_.end()) {
        return Status::Internal("unnest source '" + p[0] + "' missing at runtime");
      }
      Value v = it->second;
      for (size_t i = 1; i < p.size() && !v.is_null(); ++i) {
        PROTEUS_ASSIGN_OR_RETURN(v, v.GetField(p[i]));
      }
      current_.clear();
      pos_ = 0;
      if (v.is_null()) {
        // absent collection
      } else if (v.is_list()) {
        current_ = v.list();
      } else {
        return Status::TypeError("unnest path " + DottedPath(p) + " is not a collection");
      }
      if (current_.empty() && op_.outer()) pending_outer_emit_ = true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
  EvalEnv outer_row_;
  ValueList current_;
  size_t pos_ = 0;
  bool pending_outer_emit_ = false;
};

// ---------------------------------------------------------------------------
// Join (radix hash for equi-joins, block nested loop otherwise)
// ---------------------------------------------------------------------------

/// A materialized join build side. The serial JoinCursorOp fills one during
/// Open(); the morsel executor fills one up front and shares it read-only
/// across all worker pipelines.
struct SharedJoinBuild {
  std::vector<EvalEnv> rows;
  std::vector<Value> keys;  ///< parallel to rows when has_key
  RadixTable table;
  bool has_key = false;
};

/// Match set of `probe_row` against a build side — the probe semantics
/// shared verbatim by the serial and morsel join cursors (equi probe via
/// the radix table with key-equality check; nested loop otherwise). A null
/// probe key matches nothing.
Status FindJoinMatches(const Operator& op, const SharedJoinBuild& build,
                       const EvalEnv& probe_row, std::vector<uint32_t>* matches) {
  matches->clear();
  if (build.has_key) {
    PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(op.right_key(), probe_row));
    if (k.is_null()) return Status::OK();
    build.table.Probe(k.Hash(), [&](uint32_t idx) {
      if (build.keys[idx].Equals(k)) matches->push_back(idx);
    });
  } else {
    // Nested loop: every build row is a candidate; predicate filters.
    matches->resize(build.rows.size());
    for (uint32_t i = 0; i < build.rows.size(); ++i) (*matches)[i] = i;
  }
  return Status::OK();
}

/// Emits build row `idx` overlaid with the probe row's bindings, then runs
/// the join predicate (with hash keys, equality was already verified via
/// build.keys; the full predicate still covers residual conjuncts).
Result<bool> EmitJoinRow(const Operator& op, const SharedJoinBuild& build, uint32_t idx,
                         const EvalEnv& probe_row, EvalEnv* row) {
  *row = build.rows[idx];
  for (const auto& [k, v] : probe_row) (*row)[k] = v;
  return EvalPredicate(op.pred(), *row);
}

class JoinCursorOp : public Cursor {
 public:
  JoinCursorOp(std::unique_ptr<Cursor> left, std::unique_ptr<Cursor> right, const Operator& op)
      : left_(std::move(left)), right_(std::move(right)), op_(op) {
    CollectBoundVars(op_.child(1), &right_vars_);
  }

  Status Open() override {
    PROTEUS_RETURN_NOT_OK(left_->Open());
    PROTEUS_RETURN_NOT_OK(right_->Open());
    // Build phase: materialize the left (build) side.
    build_.has_key = op_.left_key() != nullptr;
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, left_->Next(&row));
      if (!has) break;
      if (build_.has_key) {
        PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(op_.left_key(), row));
        if (k.is_null()) {
          // Null keys never match; outer joins still keep the row so the
          // unmatched drain can emit it.
          if (op_.outer()) {
            build_.rows.push_back(row);
            build_.keys.push_back(Value::Null());
          }
          continue;
        }
        build_.table.Insert(k.Hash(), static_cast<uint32_t>(build_.rows.size()));
        build_.rows.push_back(row);
        build_.keys.push_back(std::move(k));
      } else {
        build_.rows.push_back(row);
      }
      GlobalCounters().bytes_materialized += 64;  // boxed row estimate
    }
    if (build_.has_key) build_.table.Build();
    matched_.assign(build_.rows.size(), false);
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (match_pos_ < matches_.size()) {
        uint32_t idx = matches_[match_pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EmitJoinRow(op_, build_, idx, probe_row_, row));
        if (!pass) continue;
        matched_[idx] = true;
        return true;
      }
      if (drain_unmatched_) {
        while (unmatched_pos_ < build_.rows.size() && matched_[unmatched_pos_]) {
          ++unmatched_pos_;
        }
        if (unmatched_pos_ >= build_.rows.size()) return false;
        *row = build_.rows[unmatched_pos_++];
        for (const auto& v : right_vars_) (*row)[v] = Value::Null();
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, right_->Next(&probe_row_));
      if (!has) {
        if (op_.outer()) {
          drain_unmatched_ = true;
          continue;
        }
        return false;
      }
      match_pos_ = 0;
      PROTEUS_RETURN_NOT_OK(FindJoinMatches(op_, build_, probe_row_, &matches_));
    }
  }

 private:
  std::unique_ptr<Cursor> left_, right_;
  const Operator& op_;
  std::vector<std::string> right_vars_;
  SharedJoinBuild build_;
  std::vector<bool> matched_;
  EvalEnv probe_row_;
  std::vector<uint32_t> matches_;
  size_t match_pos_ = 0;
  bool drain_unmatched_ = false;
  size_t unmatched_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Nest (hash grouping)
// ---------------------------------------------------------------------------

/// Hash group table of a Nest operator. The single home of the grouping
/// semantics: the serial NestCursorOp fills one over its whole input; the
/// morsel executor fills one per morsel and folds them together in morsel
/// order (first-appearance group order then matches the serial scan's).
struct GroupTable {
  std::vector<Value> keys;
  std::vector<std::vector<Aggregator>> aggs;
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  /// Per-morsel partials set this false and the merged distinct-group total
  /// is counted once instead, so bytes_materialized for a group-by matches
  /// the serial path regardless of morsel count.
  bool count_bytes = true;

  Status AddRow(const Operator& op, const EvalEnv& row) {
    PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op.pred(), row));
    if (!pass) return Status::OK();
    PROTEUS_ASSIGN_OR_RETURN(Value key, Eval(op.group_by(), row));
    size_t group = FindOrAdd(op, std::move(key));
    for (size_t i = 0; i < op.outputs().size(); ++i) {
      const AggOutput& o = op.outputs()[i];
      if (o.monoid == Monoid::kCount) {
        aggs[group][i].Add(Value::Int(1));
      } else {
        PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(o.expr, row));
        aggs[group][i].Add(v);
      }
    }
    return Status::OK();
  }

  /// Folds `other` into this table, appending unseen groups in `other`'s
  /// first-appearance order.
  void MergeFrom(const Operator& op, GroupTable&& other) {
    for (size_t g = 0; g < other.keys.size(); ++g) {
      size_t group = FindOrAdd(op, std::move(other.keys[g]));
      for (size_t i = 0; i < aggs[group].size(); ++i) {
        aggs[group][i].Merge(std::move(other.aggs[g][i]));
      }
    }
  }

  /// Output record of group `g` ({group_name: key, <output aggregates>...}).
  Value GroupRecord(const Operator& op, size_t g) const {
    std::vector<std::string> names{op.group_name()};
    std::vector<Value> values{keys[g]};
    for (size_t i = 0; i < op.outputs().size(); ++i) {
      names.push_back(op.outputs()[i].name);
      values.push_back(aggs[g][i].Final());
    }
    return Value::MakeRecord(std::move(names), std::move(values));
  }

 private:
  size_t FindOrAdd(const Operator& op, Value key) {
    uint64_t h = key.Hash();
    for (size_t g : index[h]) {
      if (keys[g].Equals(key)) return g;
    }
    size_t group = keys.size();
    keys.push_back(std::move(key));
    index[h].push_back(group);
    aggs.emplace_back();
    for (const auto& o : op.outputs()) aggs.back().emplace_back(o.monoid);
    if (count_bytes) GlobalCounters().bytes_materialized += 48;
    return group;
  }
};

/// The binding a Nest's grouped record is published under.
const std::string& NestBinding(const Operator& op) {
  static const std::string kDefault = "$group";
  return op.binding().empty() ? kDefault : op.binding();
}

class NestCursorOp : public Cursor {
 public:
  NestCursorOp(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override {
    PROTEUS_RETURN_NOT_OK(child_->Open());
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      PROTEUS_RETURN_NOT_OK(groups_.AddRow(op_, row));
    }
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (pos_ >= groups_.keys.size()) return false;
    row->clear();
    (*row)[NestBinding(op_)] = groups_.GroupRecord(op_, pos_);
    ++pos_;
    return true;
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
  GroupTable groups_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Shared Reduce plumbing (serial drain loop and morsel sinks both use these)
// ---------------------------------------------------------------------------

Status AccumulateReduceRow(const Operator& reduce, const EvalEnv& row,
                           std::vector<Aggregator>* aggs) {
  PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(reduce.pred(), row));
  if (!pass) return Status::OK();
  const auto& outputs = reduce.outputs();
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].monoid == Monoid::kCount) {
      (*aggs)[i].Add(Value::Int(1));
    } else {
      PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(outputs[i].expr, row));
      (*aggs)[i].Add(v);
    }
  }
  return Status::OK();
}

QueryResult FinalizeReduce(const Operator& reduce, std::vector<Aggregator>& aggs) {
  const auto& outputs = reduce.outputs();
  QueryResult result;
  // A single collection output of records unfolds into a row set.
  if (outputs.size() == 1 && IsCollectionMonoid(outputs[0].monoid)) {
    Value collected = aggs[0].Final();
    const ValueList& items = collected.list();
    bool records = !items.empty() && items[0].is_record();
    if (records) {
      result.columns = items[0].record().names;
      for (const auto& item : items) {
        result.rows.push_back(item.record().values);
      }
    } else {
      result.columns = {outputs[0].name};
      for (const auto& item : items) result.rows.push_back({item});
    }
    GlobalCounters().tuples_output += result.rows.size();
    return result;
  }
  for (const auto& o : outputs) result.columns.push_back(o.name);
  result.rows.emplace_back();
  for (auto& a : aggs) result.rows[0].push_back(a.Final());
  GlobalCounters().tuples_output += 1;
  return result;
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution (Leis et al., adapted to this engine)
//
// Eligible plans are chains of Select / Unnest / non-outer Join ops between
// the Reduce root (optionally through one Nest directly under it) and a
// splittable Scan or CacheScan leaf. Join build sides are materialized once
// up front — themselves morsel-parallel when their shape allows — into
// SharedJoinBuild structures that worker pipelines probe read-only. The
// driver leaf is split into morsels via the plug-in Split() API; each morsel
// runs a private pipeline instance feeding a per-morsel partial sink
// (Reduce accumulators or Nest group tables), merged in morsel order.
//
// Determinism: morsel boundaries, radix-build layout, and merge order all
// depend only on the data — never on the worker count — so a query returns
// bit-identical results for num_threads = 1 and num_threads = N.
// ---------------------------------------------------------------------------

/// Upper bound on morsels per pipeline (merge cost stays negligible).
constexpr uint64_t kMaxMorsels = 1024;

/// Probe side of a non-outer join over a shared, pre-built build side; the
/// per-morsel replacement for JoinCursorOp. Match computation and row
/// emission are the same FindJoinMatches/EmitJoinRow the serial cursor
/// uses; only outer-join bookkeeping (matched bits, unmatched drain) is
/// absent — those plans stay serial.
class SharedJoinProbeCursor : public Cursor {
 public:
  SharedJoinProbeCursor(std::unique_ptr<Cursor> probe, const SharedJoinBuild* build,
                        const Operator& op)
      : probe_(std::move(probe)), build_(build), op_(op) {}

  Status Open() override { return probe_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (match_pos_ < matches_.size()) {
        uint32_t idx = matches_[match_pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EmitJoinRow(op_, *build_, idx, probe_row_, row));
        if (!pass) continue;
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_row_));
      if (!has) return false;
      match_pos_ = 0;
      PROTEUS_RETURN_NOT_OK(FindJoinMatches(op_, *build_, probe_row_, &matches_));
    }
  }

 private:
  std::unique_ptr<Cursor> probe_;
  const SharedJoinBuild* build_;
  const Operator& op_;
  EvalEnv probe_row_;
  std::vector<uint32_t> matches_;
  size_t match_pos_ = 0;
};

/// A morsel-parallelizable pipeline: ops from the region root down to the
/// splittable leaf (root first). Probe sides continue the chain; join build
/// subtrees hang off the collected join nodes.
struct PipelineDesc {
  std::vector<const Operator*> ops;
  const Operator* leaf = nullptr;
  std::vector<const Operator*> joins;
};

bool CollectPipelineDesc(const OpPtr& op, PipelineDesc* out) {
  switch (op->kind()) {
    case OpKind::kScan:
    case OpKind::kCacheScan:
      out->ops.push_back(op.get());
      out->leaf = op.get();
      return true;
    case OpKind::kSelect:
    case OpKind::kUnnest:
      out->ops.push_back(op.get());
      return CollectPipelineDesc(op->child(0), out);
    case OpKind::kJoin:
      // Outer joins track unmatched build rows across morsels; they stay on
      // the serial path for now (ROADMAP: parallel outer-join drain).
      if (op->outer()) return false;
      out->ops.push_back(op.get());
      out->joins.push_back(op.get());
      return CollectPipelineDesc(op->child(1), out);
    default:
      return false;  // Nest mid-chain, Reduce, unknown
  }
}

class MorselRunner {
 public:
  explicit MorselRunner(const ExecContext& ctx) : ctx_(ctx) {}

  /// Attempts morsel-parallel execution of `plan` (root = Reduce). Sets
  /// `*ran = false` without touching `*stats` when the plan shape is not
  /// eligible; the caller then falls back to the serial Volcano path.
  Result<QueryResult> Run(const OpPtr& plan, bool* ran, InterpExecutor::ExecStats* stats) {
    *ran = false;
    const OpPtr& top = plan->child(0);
    const Operator* nest = top->kind() == OpKind::kNest ? top.get() : nullptr;
    const OpPtr& pipe_root = nest != nullptr ? top->child(0) : top;
    PipelineDesc desc;
    if (!CollectPipelineDesc(pipe_root, &desc)) return QueryResult{};

    // Open every scanned dataset (and collect cold-access stats) on this
    // thread before fanning out; workers then only hit the warm path.
    PROTEUS_RETURN_NOT_OK(PreOpenPlugins(plan));
    for (const Operator* j : desc.joins) {
      PROTEUS_RETURN_NOT_OK(MaterializeBuild(*j));
    }
    PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> morsels, SplitLeaf(*desc.leaf));
    *ran = true;

    QueryResult result;
    if (nest != nullptr) {
      std::vector<GroupTable> partials(morsels.size());
      for (auto& p : partials) p.count_bytes = false;
      PROTEUS_RETURN_NOT_OK(RunPipelines(desc, morsels, [&](EvalEnv& row, uint64_t m) {
        return partials[m].AddRow(*nest, row);
      }));
      GroupTable merged = std::move(partials[0]);
      for (size_t m = 1; m < partials.size(); ++m) {
        merged.MergeFrom(*nest, std::move(partials[m]));
      }
      // Serial-parity materialization estimate: 48 bytes per distinct group.
      GlobalCounters().bytes_materialized += 48 * merged.keys.size();
      // Stream the merged groups through the Reduce root serially (group
      // counts are small next to input cardinalities).
      std::vector<Aggregator> aggs = MakeAggs(*plan);
      for (size_t g = 0; g < merged.keys.size(); ++g) {
        EvalEnv row;
        row[NestBinding(*nest)] = merged.GroupRecord(*nest, g);
        PROTEUS_RETURN_NOT_OK(AccumulateReduceRow(*plan, row, &aggs));
      }
      result = FinalizeReduce(*plan, aggs);
    } else {
      std::vector<std::vector<Aggregator>> partials;
      partials.reserve(morsels.size());
      for (size_t m = 0; m < morsels.size(); ++m) partials.push_back(MakeAggs(*plan));
      PROTEUS_RETURN_NOT_OK(RunPipelines(desc, morsels, [&](EvalEnv& row, uint64_t m) {
        return AccumulateReduceRow(*plan, row, &partials[m]);
      }));
      std::vector<Aggregator> aggs = std::move(partials[0]);
      for (size_t m = 1; m < partials.size(); ++m) {
        for (size_t i = 0; i < aggs.size(); ++i) aggs[i].Merge(std::move(partials[m][i]));
      }
      result = FinalizeReduce(*plan, aggs);
    }
    stats->morsels = morsels_run_;
    stats->threads_used =
        static_cast<int>(std::min<uint64_t>(ctx_.scheduler->num_threads(), max_batch_));
    return result;
  }

 private:
  static std::vector<Aggregator> MakeAggs(const Operator& reduce) {
    std::vector<Aggregator> aggs;
    aggs.reserve(reduce.outputs().size());
    for (const auto& o : reduce.outputs()) aggs.emplace_back(o.monoid);
    return aggs;
  }

  Status PreOpenPlugins(const OpPtr& op) {
    if (op->kind() == OpKind::kScan ||
        (op->kind() == OpKind::kCacheScan && !op->dataset().empty())) {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op->dataset()));
      PROTEUS_RETURN_NOT_OK(ctx_.plugins->GetOrOpen(*info, ctx_.stats).status());
    }
    for (const auto& c : op->children()) PROTEUS_RETURN_NOT_OK(PreOpenPlugins(c));
    return Status::OK();
  }

  Result<std::vector<ScanRange>> SplitLeaf(const Operator& leaf) {
    if (leaf.kind() == OpKind::kScan) {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(leaf.dataset()));
      PROTEUS_ASSIGN_OR_RETURN(InputPlugin * plugin,
                               ctx_.plugins->GetOrOpen(*info, ctx_.stats));
      uint64_t n = plugin->NumRecords();
      std::vector<ScanRange> morsels = plugin->Split(TargetMorsels(n));
      // The Split contract does not promise non-emptiness; the merge phase
      // indexes partials[0], so guarantee at least one morsel here.
      if (morsels.empty()) morsels.push_back({0, n});
      return morsels;
    }
    // CacheScan: evenly split the block's row range.
    PROTEUS_ASSIGN_OR_RETURN(const CacheBlock* block, ResolveCacheBlock(ctx_, leaf.cache_id()));
    return EvenSplit(block->num_rows, TargetMorsels(block->num_rows));
  }

  uint64_t TargetMorsels(uint64_t n) const {
    const uint64_t per_morsel = ctx_.morsel_rows == 0 ? kDefaultMorselRows : ctx_.morsel_rows;
    return std::max<uint64_t>(1, std::min(kMaxMorsels, (n + per_morsel - 1) / per_morsel));
  }

  /// Materializes the build side of `join` into builds_[join]; the subtree
  /// runs morsel-parallel itself when its shape allows.
  Status MaterializeBuild(const Operator& join) {
    PROTEUS_ASSIGN_OR_RETURN(std::vector<EvalEnv> rows, MaterializeRows(join.child(0)));
    auto build = std::make_shared<SharedJoinBuild>();
    if (join.left_key()) {
      build->has_key = true;
      build->rows.reserve(rows.size());
      build->keys.reserve(rows.size());
      build->table.Reserve(rows.size());
      for (auto& row : rows) {
        PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(join.left_key(), row));
        // Null keys never match a non-outer equi-join; drop them here like
        // the serial build phase does.
        if (k.is_null()) continue;
        build->table.Insert(k.Hash(), static_cast<uint32_t>(build->rows.size()));
        build->rows.push_back(std::move(row));
        build->keys.push_back(std::move(k));
        GlobalCounters().bytes_materialized += 64;  // boxed row estimate
      }
      build->table.Build(ctx_.scheduler);
    } else {
      GlobalCounters().bytes_materialized += 64 * rows.size();
      build->rows = std::move(rows);
    }
    builds_[&join] = std::move(build);
    return Status::OK();
  }

  /// Materializes all rows produced by `subtree`, morsel-parallel when the
  /// subtree is itself an eligible pipeline, serially otherwise.
  Result<std::vector<EvalEnv>> MaterializeRows(const OpPtr& subtree) {
    PipelineDesc desc;
    if (CollectPipelineDesc(subtree, &desc)) {
      for (const Operator* j : desc.joins) {
        PROTEUS_RETURN_NOT_OK(MaterializeBuild(*j));
      }
      PROTEUS_ASSIGN_OR_RETURN(std::vector<ScanRange> morsels, SplitLeaf(*desc.leaf));
      std::vector<std::vector<EvalEnv>> per_morsel(morsels.size());
      PROTEUS_RETURN_NOT_OK(RunPipelines(desc, morsels, [&](EvalEnv& row, uint64_t m) {
        per_morsel[m].push_back(row);
        return Status::OK();
      }));
      std::vector<EvalEnv> rows;
      for (auto& chunk : per_morsel) {
        for (auto& row : chunk) rows.push_back(std::move(row));
      }
      return rows;
    }
    // Serial fallback: drain a Volcano cursor tree for this subtree.
    InterpExecutor serial(ctx_);
    PROTEUS_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor, serial.BuildCursor(subtree));
    PROTEUS_RETURN_NOT_OK(cursor->Open());
    std::vector<EvalEnv> rows;
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
      if (!has) break;
      rows.push_back(row);
    }
    return rows;
  }

  /// Builds one private pipeline instance over `range` (leaf up to root).
  Result<std::unique_ptr<Cursor>> MakePipeline(const PipelineDesc& desc, ScanRange range) {
    std::unique_ptr<Cursor> cursor;
    for (size_t i = desc.ops.size(); i-- > 0;) {
      const Operator& op = *desc.ops[i];
      switch (op.kind()) {
        case OpKind::kScan: {
          PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op.dataset()));
          if (info->format == DataFormat::kJSON) {
            cursor.reset(new LenientScanCursor(ctx_, op, range));
          } else {
            cursor.reset(new ScanCursor(ctx_, op, range));
          }
          break;
        }
        case OpKind::kCacheScan:
          cursor.reset(new CacheScanCursor(ctx_, op, range));
          break;
        case OpKind::kSelect:
          cursor.reset(new SelectCursor(std::move(cursor), op));
          break;
        case OpKind::kUnnest:
          cursor.reset(new UnnestCursorOp(std::move(cursor), op));
          break;
        case OpKind::kJoin:
          cursor.reset(
              new SharedJoinProbeCursor(std::move(cursor), builds_.at(&op).get(), op));
          break;
        default:
          return Status::Internal("unexpected op in morsel pipeline");
      }
    }
    return cursor;
  }

  /// Runs one pipeline instance per morsel, fanning out over the scheduler;
  /// `sink(row, morsel_idx)` receives every produced row (workers write
  /// disjoint per-morsel slots, so sinks need no locking).
  Status RunPipelines(const PipelineDesc& desc, const std::vector<ScanRange>& morsels,
                      const std::function<Status(EvalEnv&, uint64_t)>& sink) {
    morsels_run_ += morsels.size();
    max_batch_ = std::max<uint64_t>(max_batch_, morsels.size());
    return ctx_.scheduler->ParallelFor(
        morsels.size(), [&](uint64_t m, int) -> Status {
          PROTEUS_ASSIGN_OR_RETURN(std::unique_ptr<Cursor> cursor,
                                   MakePipeline(desc, morsels[m]));
          PROTEUS_RETURN_NOT_OK(cursor->Open());
          EvalEnv row;
          while (true) {
            PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
            if (!has) break;
            PROTEUS_RETURN_NOT_OK(sink(row, m));
          }
          return Status::OK();
        });
  }

  const ExecContext& ctx_;
  std::unordered_map<const Operator*, std::shared_ptr<SharedJoinBuild>> builds_;
  uint64_t morsels_run_ = 0;
  uint64_t max_batch_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

bool PlanIsMorselParallelizable(const OpPtr& plan) {
  if (plan == nullptr || plan->kind() != OpKind::kReduce) return false;
  const OpPtr& top = plan->child(0);
  const OpPtr& root = top->kind() == OpKind::kNest ? top->child(0) : top;
  PipelineDesc desc;
  return CollectPipelineDesc(root, &desc);
}

Result<std::unique_ptr<Cursor>> InterpExecutor::BuildCursor(const OpPtr& op) {
  switch (op->kind()) {
    case OpKind::kScan: {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op->dataset()));
      if (info->format == DataFormat::kJSON) {
        return std::unique_ptr<Cursor>(new LenientScanCursor(ctx_, *op));
      }
      return std::unique_ptr<Cursor>(new ScanCursor(ctx_, *op));
    }
    case OpKind::kCacheScan:
      return std::unique_ptr<Cursor>(new CacheScanCursor(ctx_, *op));
    case OpKind::kSelect: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new SelectCursor(std::move(child), *op));
    }
    case OpKind::kUnnest: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new UnnestCursorOp(std::move(child), *op));
    }
    case OpKind::kJoin: {
      PROTEUS_ASSIGN_OR_RETURN(auto l, BuildCursor(op->child(0)));
      PROTEUS_ASSIGN_OR_RETURN(auto r, BuildCursor(op->child(1)));
      return std::unique_ptr<Cursor>(new JoinCursorOp(std::move(l), std::move(r), *op));
    }
    case OpKind::kNest: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new NestCursorOp(std::move(child), *op));
    }
    case OpKind::kReduce:
      return Status::InvalidArgument("Reduce must be the plan root");
  }
  return Status::Internal("unknown operator kind");
}

Result<QueryResult> InterpExecutor::Execute(const OpPtr& plan) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("physical plan root must be Reduce, got:\n" +
                                   plan->ToString());
  }
  exec_stats_ = ExecStats{};

  // Morsel-driven parallel path; ineligible plan shapes (outer joins, Nest
  // mid-chain) fall through to the serial Volcano drain below.
  //
  // Deliberately taken even at num_threads == 1: cross-thread-count result
  // identity requires every worker count to use the same per-morsel partial
  // sums (float addition is not associative), so the worker count may only
  // change who runs a morsel, never the fold shape. The cost is that
  // eligible plans' float aggregates can differ in the last ulps from the
  // serial drain — within every oracle tolerance in the suite.
  if (ctx_.scheduler != nullptr) {
    MorselRunner runner(ctx_);
    bool ran = false;
    PROTEUS_ASSIGN_OR_RETURN(QueryResult result, runner.Run(plan, &ran, &exec_stats_));
    if (ran) return result;
  }

  PROTEUS_ASSIGN_OR_RETURN(auto cursor, BuildCursor(plan->child(0)));
  PROTEUS_RETURN_NOT_OK(cursor->Open());

  std::vector<Aggregator> aggs;
  aggs.reserve(plan->outputs().size());
  for (const auto& o : plan->outputs()) aggs.emplace_back(o.monoid);

  EvalEnv row;
  while (true) {
    PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
    if (!has) break;
    PROTEUS_RETURN_NOT_OK(AccumulateReduceRow(*plan, row, &aggs));
  }
  return FinalizeReduce(*plan, aggs);
}

}  // namespace proteus
