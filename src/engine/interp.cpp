#include "src/engine/interp.h"

#include <unordered_map>

#include "src/common/counters.h"
#include "src/engine/aggregator.h"
#include "src/engine/radix_table.h"

namespace proteus {

void CollectBoundVars(const OpPtr& op, std::vector<std::string>* out) {
  switch (op->kind()) {
    case OpKind::kScan:
    case OpKind::kCacheScan:
      out->push_back(op->binding());
      return;
    case OpKind::kUnnest:
      CollectBoundVars(op->child(0), out);
      out->push_back(op->binding());
      return;
    case OpKind::kNest:
      out->push_back(op->binding().empty() ? "$group" : op->binding());
      return;
    default:
      for (const auto& c : op->children()) CollectBoundVars(c, out);
      return;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

class ScanCursor : public Cursor {
 public:
  ScanCursor(const ExecContext& ctx, const Operator& op) : ctx_(ctx), op_(op) {}

  Status Open() override {
    PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op_.dataset()));
    PROTEUS_ASSIGN_OR_RETURN(plugin_, ctx_.plugins->GetOrOpen(*info, ctx_.stats));
    fields_ = op_.scan_fields();
    if (fields_.empty()) {
      for (const auto& f : info->record_type().fields()) fields_.push_back({f.name});
    }
    n_ = plugin_->NumRecords();
    oid_ = 0;
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (oid_ >= n_) return false;
    GlobalCounters().tuples_scanned++;
    PROTEUS_ASSIGN_OR_RETURN(Value rec, ReadOne(oid_));
    (*row)[op_.binding()] = std::move(rec);
    ++oid_;
    return true;
  }

 protected:
  virtual Result<Value> ReadOne(uint64_t oid) { return plugin_->ReadRecord(oid, fields_); }

  const ExecContext& ctx_;
  const Operator& op_;
  InputPlugin* plugin_ = nullptr;
  std::vector<FieldPath> fields_;
  uint64_t n_ = 0;
  uint64_t oid_ = 0;
};

/// JSON objects with optional fields: a requested-but-absent field binds
/// null instead of failing the scan.
class LenientScanCursor : public ScanCursor {
 public:
  using ScanCursor::ScanCursor;

 protected:
  Result<Value> ReadOne(uint64_t oid) override {
    std::vector<std::string> names;
    std::vector<Value> values;
    for (const auto& p : fields_) {
      auto v = plugin_->ReadValue(oid, p);
      Value out = Value::Null();
      if (v.ok()) {
        out = std::move(*v);
      } else if (v.status().code() != StatusCode::kNotFound) {
        return v.status();
      }
      // Re-nest deep paths one level at a time.
      for (size_t k = p.size(); k-- > 1;) out = Value::MakeRecord({p[k]}, {std::move(out)});
      names.push_back(p[0]);
      values.push_back(std::move(out));
    }
    // Merge duplicate heads (e.g. origin.ip + origin.country).
    std::vector<std::string> merged_names;
    std::vector<Value> merged_values;
    for (size_t i = 0; i < names.size(); ++i) {
      bool merged = false;
      for (size_t j = 0; j < merged_names.size(); ++j) {
        if (merged_names[j] == names[i] && merged_values[j].is_record() &&
            values[i].is_record()) {
          const auto& a = merged_values[j].record();
          const auto& b = values[i].record();
          std::vector<std::string> ns = a.names;
          std::vector<Value> vs = a.values;
          ns.insert(ns.end(), b.names.begin(), b.names.end());
          vs.insert(vs.end(), b.values.begin(), b.values.end());
          merged_values[j] = Value::MakeRecord(std::move(ns), std::move(vs));
          merged = true;
          break;
        }
      }
      if (!merged) {
        merged_names.push_back(names[i]);
        merged_values.push_back(values[i]);
      }
    }
    return Value::MakeRecord(std::move(merged_names), std::move(merged_values));
  }
};

// ---------------------------------------------------------------------------
// CacheScan
// ---------------------------------------------------------------------------

class CacheScanCursor : public Cursor {
 public:
  CacheScanCursor(const ExecContext& ctx, const Operator& op) : ctx_(ctx), op_(op) {}

  Status Open() override {
    if (ctx_.caches == nullptr) return Status::Internal("cache scan without CachingManager");
    block_ = ctx_.caches->FindById(op_.cache_id());
    if (block_ == nullptr) {
      return Status::NotFound("cache block #" + std::to_string(op_.cache_id()) + " evicted");
    }
    // Fields the plan needs; fall back to everything the block holds.
    fields_ = op_.scan_fields();
    if (fields_.empty()) {
      for (const auto& c : block_->cols) {
        if (c.path != FieldPath{"$oid"}) fields_.push_back(c.path);
      }
    }
    // Hybrid raw access for fields missing from the block (e.g. strings).
    for (const auto& p : fields_) {
      if (block_->Find(op_.binding(), p) == nullptr) {
        auto info = ctx_.catalog->Get(op_.dataset());
        if (!info.ok()) return info.status();
        PROTEUS_ASSIGN_OR_RETURN(plugin_, ctx_.plugins->GetOrOpen(**info, ctx_.stats));
        oid_col_ = block_->Find(op_.binding(), {"$oid"});
        if (oid_col_ == nullptr) {
          return Status::Internal("hybrid cache scan requires an OID column");
        }
        break;
      }
    }
    row_ = 0;
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (row_ >= block_->num_rows) return false;
    std::vector<std::string> names;
    std::vector<Value> values;
    for (const auto& p : fields_) {
      const CacheColumn* c = block_->Find(op_.binding(), p);
      Value v;
      if (c != nullptr) {
        GlobalCounters().cache_field_accesses++;
        switch (c->type) {
          case TypeKind::kInt64:
          case TypeKind::kDate: v = Value::Int(c->ints[row_]); break;
          case TypeKind::kBool: v = Value::Boolean(c->ints[row_] != 0); break;
          case TypeKind::kFloat64: v = Value::Float(c->floats[row_]); break;
          case TypeKind::kString: v = Value::Str(c->strs[row_]); break;
          default: return Status::Internal("bad cache column type");
        }
      } else {
        // Raw fallback through the OID (paper: caching only the OID can be
        // sufficient; Q12-style string predicates still touch the file).
        auto raw = plugin_->ReadValue(static_cast<uint64_t>(oid_col_->ints[row_]), p);
        if (raw.ok()) {
          v = std::move(*raw);
        } else if (raw.status().code() == StatusCode::kNotFound) {
          v = Value::Null();
        } else {
          return raw.status();
        }
      }
      for (size_t k = p.size(); k-- > 1;) v = Value::MakeRecord({p[k]}, {std::move(v)});
      names.push_back(p[0]);
      values.push_back(std::move(v));
    }
    // Merge duplicate heads (nested sub-records split across columns).
    std::vector<std::string> mn;
    std::vector<Value> mv;
    for (size_t i = 0; i < names.size(); ++i) {
      bool merged = false;
      for (size_t j = 0; j < mn.size(); ++j) {
        if (mn[j] == names[i] && mv[j].is_record() && values[i].is_record()) {
          const auto& a = mv[j].record();
          const auto& b = values[i].record();
          std::vector<std::string> ns = a.names;
          std::vector<Value> vs = a.values;
          ns.insert(ns.end(), b.names.begin(), b.names.end());
          vs.insert(vs.end(), b.values.begin(), b.values.end());
          mv[j] = Value::MakeRecord(std::move(ns), std::move(vs));
          merged = true;
          break;
        }
      }
      if (!merged) {
        mn.push_back(names[i]);
        mv.push_back(values[i]);
      }
    }
    (*row)[op_.binding()] = Value::MakeRecord(std::move(mn), std::move(mv));
    ++row_;
    return true;
  }

 private:
  const ExecContext& ctx_;
  const Operator& op_;
  const CacheBlock* block_ = nullptr;
  std::vector<FieldPath> fields_;
  InputPlugin* plugin_ = nullptr;
  const CacheColumn* oid_col_ = nullptr;
  uint64_t row_ = 0;
};

// ---------------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------------

class SelectCursor : public Cursor {
 public:
  SelectCursor(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(row));
      if (!has) return false;
      PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), *row));
      if (pass) return true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
};

// ---------------------------------------------------------------------------
// Unnest
// ---------------------------------------------------------------------------

class UnnestCursorOp : public Cursor {
 public:
  UnnestCursorOp(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (pos_ < current_.size()) {
        (*row) = outer_row_;
        (*row)[op_.binding()] = current_[pos_++];
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), *row));
        if (!pass) continue;
        return true;
      }
      if (pending_outer_emit_) {
        pending_outer_emit_ = false;
        (*row) = outer_row_;
        (*row)[op_.binding()] = Value::Null();
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(&outer_row_));
      if (!has) return false;
      // Resolve the collection through the bound record value.
      const FieldPath& p = op_.unnest_path();
      auto it = outer_row_.find(p[0]);
      if (it == outer_row_.end()) {
        return Status::Internal("unnest source '" + p[0] + "' missing at runtime");
      }
      Value v = it->second;
      for (size_t i = 1; i < p.size() && !v.is_null(); ++i) {
        PROTEUS_ASSIGN_OR_RETURN(v, v.GetField(p[i]));
      }
      current_.clear();
      pos_ = 0;
      if (v.is_null()) {
        // absent collection
      } else if (v.is_list()) {
        current_ = v.list();
      } else {
        return Status::TypeError("unnest path " + DottedPath(p) + " is not a collection");
      }
      if (current_.empty() && op_.outer()) pending_outer_emit_ = true;
    }
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
  EvalEnv outer_row_;
  ValueList current_;
  size_t pos_ = 0;
  bool pending_outer_emit_ = false;
};

// ---------------------------------------------------------------------------
// Join (radix hash for equi-joins, block nested loop otherwise)
// ---------------------------------------------------------------------------

class JoinCursorOp : public Cursor {
 public:
  JoinCursorOp(std::unique_ptr<Cursor> left, std::unique_ptr<Cursor> right, const Operator& op)
      : left_(std::move(left)), right_(std::move(right)), op_(op) {
    CollectBoundVars(op_.child(1), &right_vars_);
  }

  Status Open() override {
    PROTEUS_RETURN_NOT_OK(left_->Open());
    PROTEUS_RETURN_NOT_OK(right_->Open());
    // Build phase: materialize the left (build) side.
    EvalEnv row;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, left_->Next(&row));
      if (!has) break;
      if (op_.left_key()) {
        PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(op_.left_key(), row));
        if (k.is_null()) {
          if (op_.outer()) {
            build_rows_.push_back(row);
            build_keys_.push_back(Value::Null());
          }
          continue;
        }
        table_.Insert(k.Hash(), static_cast<uint32_t>(build_rows_.size()));
        build_rows_.push_back(row);
        build_keys_.push_back(std::move(k));
      } else {
        build_rows_.push_back(row);
      }
      GlobalCounters().bytes_materialized += 64;  // boxed row estimate
    }
    if (op_.left_key()) table_.Build();
    matched_.assign(build_rows_.size(), false);
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    while (true) {
      if (match_pos_ < matches_.size()) {
        uint32_t idx = matches_[match_pos_++];
        *row = build_rows_[idx];
        for (auto& [k, v] : probe_row_) (*row)[k] = v;
        PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(ResidualPred(), *row));
        if (!pass) continue;
        matched_[idx] = true;
        return true;
      }
      if (drain_unmatched_) {
        while (unmatched_pos_ < build_rows_.size() && matched_[unmatched_pos_]) {
          ++unmatched_pos_;
        }
        if (unmatched_pos_ >= build_rows_.size()) return false;
        *row = build_rows_[unmatched_pos_++];
        for (const auto& v : right_vars_) (*row)[v] = Value::Null();
        return true;
      }
      PROTEUS_ASSIGN_OR_RETURN(bool has, right_->Next(&probe_row_));
      if (!has) {
        if (op_.outer()) {
          drain_unmatched_ = true;
          continue;
        }
        return false;
      }
      matches_.clear();
      match_pos_ = 0;
      if (op_.left_key()) {
        PROTEUS_ASSIGN_OR_RETURN(Value k, Eval(op_.right_key(), probe_row_));
        if (k.is_null()) continue;
        uint64_t h = k.Hash();
        table_.Probe(h, [&](uint32_t idx) {
          if (build_keys_[idx].Equals(k)) matches_.push_back(idx);
        });
      } else {
        // Nested loop: every build row is a candidate; predicate filters.
        matches_.resize(build_rows_.size());
        for (uint32_t i = 0; i < build_rows_.size(); ++i) matches_[i] = i;
      }
    }
  }

 private:
  /// With hash keys, the equality itself is verified via build_keys_; the
  /// full predicate still runs to cover residual conjuncts.
  const ExprPtr& ResidualPred() const { return op_.pred(); }

  std::unique_ptr<Cursor> left_, right_;
  const Operator& op_;
  std::vector<std::string> right_vars_;
  std::vector<EvalEnv> build_rows_;
  std::vector<Value> build_keys_;
  RadixTable table_;
  std::vector<bool> matched_;
  EvalEnv probe_row_;
  std::vector<uint32_t> matches_;
  size_t match_pos_ = 0;
  bool drain_unmatched_ = false;
  size_t unmatched_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Nest (hash grouping)
// ---------------------------------------------------------------------------

class NestCursorOp : public Cursor {
 public:
  NestCursorOp(std::unique_ptr<Cursor> child, const Operator& op)
      : child_(std::move(child)), op_(op) {}

  Status Open() override {
    PROTEUS_RETURN_NOT_OK(child_->Open());
    EvalEnv row;
    std::unordered_map<uint64_t, std::vector<size_t>> index;
    while (true) {
      PROTEUS_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred(), row));
      if (!pass) continue;
      PROTEUS_ASSIGN_OR_RETURN(Value key, Eval(op_.group_by(), row));
      uint64_t h = key.Hash();
      size_t group = SIZE_MAX;
      for (size_t g : index[h]) {
        if (keys_[g].Equals(key)) {
          group = g;
          break;
        }
      }
      if (group == SIZE_MAX) {
        group = keys_.size();
        keys_.push_back(key);
        index[h].push_back(group);
        aggs_.emplace_back();
        for (const auto& o : op_.outputs()) aggs_.back().emplace_back(o.monoid);
        GlobalCounters().bytes_materialized += 48;
      }
      for (size_t i = 0; i < op_.outputs().size(); ++i) {
        const AggOutput& o = op_.outputs()[i];
        if (o.monoid == Monoid::kCount) {
          aggs_[group][i].Add(Value::Int(1));
        } else {
          PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(o.expr, row));
          aggs_[group][i].Add(v);
        }
      }
    }
    return Status::OK();
  }

  Result<bool> Next(EvalEnv* row) override {
    GlobalCounters().virtual_calls++;
    if (pos_ >= keys_.size()) return false;
    std::vector<std::string> names{op_.group_name()};
    std::vector<Value> values{keys_[pos_]};
    for (size_t i = 0; i < op_.outputs().size(); ++i) {
      names.push_back(op_.outputs()[i].name);
      values.push_back(aggs_[pos_][i].Final());
    }
    row->clear();
    (*row)[op_.binding().empty() ? "$group" : op_.binding()] =
        Value::MakeRecord(std::move(names), std::move(values));
    ++pos_;
    return true;
  }

 private:
  std::unique_ptr<Cursor> child_;
  const Operator& op_;
  std::vector<Value> keys_;
  std::vector<std::vector<Aggregator>> aggs_;
  size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Cursor>> InterpExecutor::BuildCursor(const OpPtr& op) {
  switch (op->kind()) {
    case OpKind::kScan: {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, ctx_.catalog->Get(op->dataset()));
      if (info->format == DataFormat::kJSON) {
        return std::unique_ptr<Cursor>(new LenientScanCursor(ctx_, *op));
      }
      return std::unique_ptr<Cursor>(new ScanCursor(ctx_, *op));
    }
    case OpKind::kCacheScan:
      return std::unique_ptr<Cursor>(new CacheScanCursor(ctx_, *op));
    case OpKind::kSelect: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new SelectCursor(std::move(child), *op));
    }
    case OpKind::kUnnest: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new UnnestCursorOp(std::move(child), *op));
    }
    case OpKind::kJoin: {
      PROTEUS_ASSIGN_OR_RETURN(auto l, BuildCursor(op->child(0)));
      PROTEUS_ASSIGN_OR_RETURN(auto r, BuildCursor(op->child(1)));
      return std::unique_ptr<Cursor>(new JoinCursorOp(std::move(l), std::move(r), *op));
    }
    case OpKind::kNest: {
      PROTEUS_ASSIGN_OR_RETURN(auto child, BuildCursor(op->child(0)));
      return std::unique_ptr<Cursor>(new NestCursorOp(std::move(child), *op));
    }
    case OpKind::kReduce:
      return Status::InvalidArgument("Reduce must be the plan root");
  }
  return Status::Internal("unknown operator kind");
}

Result<QueryResult> InterpExecutor::Execute(const OpPtr& plan) {
  if (plan->kind() != OpKind::kReduce) {
    return Status::InvalidArgument("physical plan root must be Reduce, got:\n" +
                                   plan->ToString());
  }
  PROTEUS_ASSIGN_OR_RETURN(auto cursor, BuildCursor(plan->child(0)));
  PROTEUS_RETURN_NOT_OK(cursor->Open());

  const auto& outputs = plan->outputs();
  std::vector<Aggregator> aggs;
  aggs.reserve(outputs.size());
  for (const auto& o : outputs) aggs.emplace_back(o.monoid);

  EvalEnv row;
  while (true) {
    PROTEUS_ASSIGN_OR_RETURN(bool has, cursor->Next(&row));
    if (!has) break;
    PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(plan->pred(), row));
    if (!pass) continue;
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (outputs[i].monoid == Monoid::kCount) {
        aggs[i].Add(Value::Int(1));
      } else {
        PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(outputs[i].expr, row));
        aggs[i].Add(v);
      }
    }
  }

  QueryResult result;
  // A single collection output of records unfolds into a row set.
  if (outputs.size() == 1 && IsCollectionMonoid(outputs[0].monoid)) {
    Value collected = aggs[0].Final();
    const ValueList& items = collected.list();
    bool records = !items.empty() && items[0].is_record();
    if (records) {
      result.columns = items[0].record().names;
      for (const auto& item : items) {
        result.rows.push_back(item.record().values);
      }
    } else {
      result.columns = {outputs[0].name};
      for (const auto& item : items) result.rows.push_back({item});
    }
    GlobalCounters().tuples_output += result.rows.size();
    return result;
  }
  for (const auto& o : outputs) result.columns.push_back(o.name);
  result.rows.emplace_back();
  for (auto& a : aggs) result.rows[0].push_back(a.Final());
  GlobalCounters().tuples_output += 1;
  return result;
}

}  // namespace proteus
