// Monoid accumulators shared by the Reduce and Nest interpreters.
#pragma once

#include "src/algebra/algebra.h"
#include "src/common/value.h"
#include "src/common/wire.h"

namespace proteus {

/// Folds values into one monoid. Value-boxed (interpreter path); the JIT
/// engine keeps accumulators in registers instead.
class Aggregator {
 public:
  explicit Aggregator(Monoid m) : monoid_(m) {}

  Monoid monoid() const { return monoid_; }

  void Add(const Value& v);
  void AddCount() { count_++; }

  /// Installs the scalar fold state a generated (JIT) per-morsel pipeline
  /// computed in CPU registers, leaving this accumulator indistinguishable
  /// from one that Add()ed the same rows: count installs the row count, sum
  /// the running total (int or float per `v`'s kind — the register fold and
  /// Add() share init value and operation order, so the bits match), max/min
  /// the extreme, and/or the folded bool. Callers must skip the call when no
  /// row contributed (the accumulator then stays in its empty state, exactly
  /// like an interpreter partial that saw no rows). Collection monoids are
  /// not scalar-loadable.
  void LoadScalar(const Value& v);

  /// Folds another partial accumulator of the same monoid into this one —
  /// the merge step of morsel-parallel aggregation. Merging partials in
  /// morsel order keeps results deterministic regardless of worker count
  /// (collection monoids concatenate in order; set union keeps first-seen
  /// order; numeric merges are order-fixed by the caller).
  void Merge(const Aggregator& other);
  /// Move-aware overload: splices collection payloads out of an expiring
  /// partial instead of copying them (scalar monoids defer to the copy).
  void Merge(Aggregator&& other);

  /// The folded result; the monoid's zero element if nothing was added.
  Value Final() const;

  /// Encodes the complete accumulator state (monoid included) so a partial
  /// aggregate can cross the shard wire; Deserialize rebuilds an accumulator
  /// that is indistinguishable from the original — Merge and Final behave
  /// bit-identically (doubles travel as bit patterns).
  void Serialize(WireWriter* w) const;
  static Result<Aggregator> Deserialize(WireReader* r);

 private:
  /// Single home of the set monoid's dedup: appends `v` unless an equal
  /// element exists. Returns whether it was added.
  bool InsertSetItem(Value v);

  Monoid monoid_;
  int64_t count_ = 0;
  bool seen_ = false;
  bool all_int_ = true;
  int64_t int_acc_ = 0;
  double float_acc_ = 0;
  bool bool_acc_ = false;
  Value extreme_;     // max/min
  ValueList items_;   // bag/list/set
};

}  // namespace proteus
