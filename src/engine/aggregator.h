// Monoid accumulators shared by the Reduce and Nest interpreters.
#pragma once

#include <memory>
#include <unordered_map>

#include "src/algebra/algebra.h"
#include "src/common/value.h"
#include "src/common/wire.h"

namespace proteus {

/// Folds values into one monoid. Value-boxed (interpreter path); the JIT
/// engine keeps accumulators in registers instead.
class Aggregator {
 public:
  explicit Aggregator(Monoid m) : monoid_(m) {}
  Aggregator(Aggregator&&) = default;
  Aggregator& operator=(Aggregator&&) = default;
  // The set-dedup index is lazily allocated; copies deep-copy it.
  Aggregator(const Aggregator& o)
      : monoid_(o.monoid_),
        count_(o.count_),
        seen_(o.seen_),
        all_int_(o.all_int_),
        int_acc_(o.int_acc_),
        float_acc_(o.float_acc_),
        bool_acc_(o.bool_acc_),
        extreme_(o.extreme_),
        items_(o.items_),
        set_index_(o.set_index_ ? std::make_unique<SetIndex>(*o.set_index_) : nullptr) {}
  Aggregator& operator=(const Aggregator& o) {
    if (this != &o) *this = Aggregator(o);
    return *this;
  }

  Monoid monoid() const { return monoid_; }

  void Add(const Value& v);
  void AddCount() { count_++; }

  /// Installs the scalar fold state a generated (JIT) per-morsel pipeline
  /// computed in CPU registers, leaving this accumulator indistinguishable
  /// from one that Add()ed the same rows: count installs the row count, sum
  /// the running total (int or float per `v`'s kind — the register fold and
  /// Add() share init value and operation order, so the bits match), max/min
  /// the extreme, and/or the folded bool. Callers must skip the call when no
  /// row contributed (the accumulator then stays in its empty state, exactly
  /// like an interpreter partial that saw no rows). Collection monoids are
  /// not scalar-loadable.
  void LoadScalar(const Value& v);

  /// Folds another partial accumulator of the same monoid into this one —
  /// the merge step of morsel-parallel aggregation. Merging partials in
  /// morsel order keeps results deterministic regardless of worker count
  /// (collection monoids concatenate in order; set union keeps first-seen
  /// order; numeric merges are order-fixed by the caller).
  void Merge(const Aggregator& other);
  /// Move-aware overload: splices collection payloads out of an expiring
  /// partial instead of copying them (scalar monoids defer to the copy).
  void Merge(Aggregator&& other);

  /// The folded result; the monoid's zero element if nothing was added.
  Value Final() const;

  /// kSet only: adds `v` unless an equal item exists; returns whether it was
  /// added. Exposed so the JIT's legacy whole-relation set sink shares the
  /// one dedup implementation instead of growing its own.
  bool InsertDistinct(Value v) {
    if (!InsertSetItem(std::move(v))) return false;
    seen_ = true;
    return true;
  }

  /// Encodes the complete accumulator state (monoid included) so a partial
  /// aggregate can cross the shard wire; Deserialize rebuilds an accumulator
  /// that is indistinguishable from the original — Merge and Final behave
  /// bit-identically (doubles travel as bit patterns).
  void Serialize(WireWriter* w) const;
  static Result<Aggregator> Deserialize(WireReader* r);

 private:
  /// Single home of the set monoid's dedup: appends `v` unless an equal
  /// element exists. Returns whether it was added. Hash-indexed (boxed-item
  /// hash -> candidate indices, equality-checked), so per-morsel dedup and
  /// the morsel-order merge stay O(1) amortized per item instead of O(n) —
  /// the dedup behind JIT set-output sinks as well as the interpreter's.
  bool InsertSetItem(Value v);

  Monoid monoid_;
  int64_t count_ = 0;
  bool seen_ = false;
  bool all_int_ = true;
  int64_t int_acc_ = 0;
  double float_acc_ = 0;
  bool bool_acc_ = false;
  Value extreme_;     // max/min
  ValueList items_;   // bag/list/set
  /// kSet only: item hash -> indices into items_ (rebuilt on deserialize).
  /// Lazily allocated so the overwhelmingly more common non-set
  /// accumulators — e.g. every group × output cell of a group-by partial —
  /// don't carry an empty hash map.
  using SetIndex = std::unordered_map<uint64_t, std::vector<uint32_t>>;
  std::unique_ptr<SetIndex> set_index_;
};

}  // namespace proteus
