// Monoid accumulators shared by the Reduce and Nest interpreters.
#pragma once

#include "src/algebra/algebra.h"
#include "src/common/value.h"

namespace proteus {

/// Folds values into one monoid. Value-boxed (interpreter path); the JIT
/// engine keeps accumulators in registers instead.
class Aggregator {
 public:
  explicit Aggregator(Monoid m) : monoid_(m) {}

  void Add(const Value& v);
  void AddCount() { count_++; }

  /// The folded result; the monoid's zero element if nothing was added.
  Value Final() const;

 private:
  Monoid monoid_;
  int64_t count_ = 0;
  bool seen_ = false;
  bool all_int_ = true;
  int64_t int_acc_ = 0;
  double float_acc_ = 0;
  bool bool_acc_ = false;
  Value extreme_;     // max/min
  ValueList items_;   // bag/list/set
};

}  // namespace proteus
