// Adaptive caching structures (paper §6).
//
// Proteus materializes caches of algebraic expressions as a side-effect of
// query execution (implicitly at blocking operators, or explicitly via
// caching operators placed near the leaves). A cache block stores evaluated
// field expressions of one plan subtree in compact *binary columns*, so that
// later queries touching the same subtree read binary data instead of
// re-navigating CSV/JSON. Caches are exposed back to the engine as an extra
// input: the plan rewrite replaces the matched subtree with a CacheScan.
//
// Cache matching keys on the subtree's canonical Signature(); eviction uses
// a format-biased LRU (JSON ≻ CSV ≻ binary: drop cheap-to-rebuild caches
// first — paper: "favoring data from inputs that are more costly to access").
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/task_scheduler.h"
#include "src/common/value.h"
#include "src/plugins/plugin.h"

namespace proteus {

/// One materialized column of a cache block: the evaluated values of a
/// var-rooted field path (e.g. "l.l_orderkey") in compact typed storage.
struct CacheColumn {
  std::string var;    ///< bound variable the path is rooted at
  FieldPath path;     ///< path within the variable's record
  TypeKind type = TypeKind::kInt64;
  std::vector<int64_t> ints;       // int64 / date / bool(0|1)
  std::vector<double> floats;
  std::vector<std::string> strs;

  std::string DottedName() const { return var + "." + DottedPath(path); }
  size_t bytes() const {
    size_t b = ints.capacity() * 8 + floats.capacity() * 8;
    for (const auto& s : strs) b += s.size() + sizeof(std::string);
    return b;
  }
};

/// A materialized cache: the signature of the plan subtree it replaces, the
/// source format that produced it (for biased eviction), and its columns.
struct CacheBlock {
  uint64_t id = 0;
  std::string signature;
  DataFormat source_format = DataFormat::kBinaryColumn;
  uint64_t num_rows = 0;
  std::vector<CacheColumn> cols;
  uint64_t last_used_tick = 0;

  size_t bytes() const {
    size_t b = 0;
    for (const auto& c : cols) b += c.bytes();
    return b;
  }
  const CacheColumn* Find(const std::string& var, const FieldPath& path) const {
    for (const auto& c : cols) {
      if (c.var == var && c.path == path) return &c;
    }
    return nullptr;
  }
};

/// Policy knobs (paper: "different caching policies depending on the
/// expected workload").
struct CachePolicy {
  bool enabled = false;
  /// Skip variable-length string fields (paper: "Proteus avoids caching
  /// variable-length string fields from CSV and JSON files").
  bool cache_strings = false;
  /// Only cache values read from raw text formats (CSV/JSON); binary inputs
  /// are already cheap.
  bool raw_formats_only = true;
  size_t memory_budget_bytes = 256ull << 20;
};

/// Thread-safe for concurrent queries sharing one engine: block metadata
/// mutates under an internal mutex, and lookups hand out shared ownership of
/// immutable blocks — an Install/eviction/invalidation by one query cannot
/// free column storage another in-flight query is still reading. Policy is
/// setup-time state: set_policy() must not race live executions.
class CachingManager {
 public:
  explicit CachingManager(CachePolicy policy = {}) : policy_(policy) {}

  const CachePolicy& policy() const { return policy_; }
  void set_policy(CachePolicy p) {
    policy_ = std::move(p);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Monotonic cache-state version, part of the compiled-query cache key:
  /// generated cache scans bind block column pointers per execution, but a
  /// block appearing, being replaced, or being evicted changes which plans
  /// the rewriter produces and which blocks exist, so compiled modules from
  /// before the mutation must be retired. Bumped by Install() (which also
  /// covers its internal evictions), InvalidateDataset(), and set_policy().
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Registers a freshly built block; evicts LRU (format-biased) blocks if
  /// over budget. Returns the assigned cache id.
  uint64_t Install(CacheBlock block);

  /// Looks up a cache whose signature matches the subtree rooted at `op`.
  /// The returned block is shared: it stays readable even if replaced or
  /// evicted while the caller executes against it.
  std::shared_ptr<const CacheBlock> FindMatch(const Operator& op) const;
  std::shared_ptr<const CacheBlock> FindById(uint64_t id) const;

  /// Rewrites `plan`, replacing every cached subtree with a CacheScan leaf
  /// (full sub-tree matching, bottom-up — paper §6 "Cache Matching"). A scan
  /// is replaced only when the cache covers all its numeric fields; string
  /// fields fall back to hybrid raw reads via the cached OID column.
  OpPtr RewriteWithCaches(OpPtr plan, const Catalog& catalog) const;

  /// Builds a scan-shaped cache for `dataset`: evaluates the numeric leaf
  /// fields in `fields` for every record of `plugin` into binary columns,
  /// always including the OID column. This is the paper's leaf-level caching
  /// operator ("convert input raw values to a binary format"). With a
  /// `scheduler`, the cold-access drain runs morsel-parallel: the record
  /// range is split via the plug-in Split() API and workers fill disjoint
  /// slices of the preallocated columns — the built block is byte-identical
  /// to a serial build.
  Result<uint64_t> BuildScanCache(InputPlugin* plugin, const DatasetInfo& info,
                                  const std::string& binding,
                                  const std::vector<FieldPath>& fields,
                                  TaskScheduler* scheduler = nullptr);

  /// Drops all caches built from dataset `name` (append invalidation).
  void InvalidateDataset(const std::string& name);

  size_t total_bytes() const;
  size_t num_blocks() const {
    MutexLock lk(mu_);
    return blocks_.size();
  }
  /// Shared snapshots of every live block (observability / tests).
  std::vector<std::shared_ptr<const CacheBlock>> blocks() const;

 private:
  void MaybeEvictLocked() REQUIRES(mu_);
  size_t TotalBytesLocked() const REQUIRES(mu_);

  CachePolicy policy_;
  mutable Mutex mu_;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> epoch_{0};
  std::map<uint64_t, std::shared_ptr<CacheBlock>> blocks_ GUARDED_BY(mu_);
};

}  // namespace proteus
