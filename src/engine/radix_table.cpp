#include "src/engine/radix_table.h"

#include "src/common/counters.h"

namespace proteus {

namespace {

uint32_t NextPow2(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

void RadixTable::Build() {
  const uint32_t num_parts = 1u << radix_bits_;
  partition_mask_ = num_parts - 1;

  // Pass 1: histogram.
  std::vector<uint32_t> counts(num_parts, 0);
  for (const Entry& e : entries_) counts[e.hash & partition_mask_]++;

  // Prefix sums -> partition start offsets.
  std::vector<uint32_t> offsets(num_parts + 1, 0);
  for (uint32_t p = 0; p < num_parts; ++p) offsets[p + 1] = offsets[p] + counts[p];

  // Pass 2: scatter into clustered order (the radix clustering step).
  clustered_.resize(entries_.size());
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Entry& e : entries_) {
    clustered_[cursor[e.hash & partition_mask_]++] = e;
  }
  GlobalCounters().bytes_materialized += entries_.size() * sizeof(Entry);
  entries_.clear();
  entries_.shrink_to_fit();

  // Per-partition chained buckets, uniform bucket count for O(1) addressing.
  uint32_t max_part = 0;
  for (uint32_t p = 0; p < num_parts; ++p) max_part = std::max(max_part, counts[p]);
  buckets_per_part_ = NextPow2(max_part == 0 ? 1 : max_part);
  bucket_mask_ = buckets_per_part_ - 1;

  buckets_.assign(static_cast<size_t>(num_parts) * buckets_per_part_, kNil);
  next_.assign(clustered_.size(), kNil);
  for (uint32_t p = 0; p < num_parts; ++p) {
    for (uint32_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      uint64_t h = clustered_[i].hash;
      uint32_t bucket = p * buckets_per_part_ +
                        static_cast<uint32_t>((h >> radix_bits_) & bucket_mask_);
      next_[i] = buckets_[bucket];
      buckets_[bucket] = i;
    }
  }
}

}  // namespace proteus
