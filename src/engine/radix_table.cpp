#include "src/engine/radix_table.h"

#include <algorithm>

#include "src/common/counters.h"
#include "src/common/task_scheduler.h"

namespace proteus {

namespace {

uint32_t NextPow2(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Entries per parallel histogram/scatter chunk. Depends only on the entry
/// count — never on the worker count — so the clustered layout (and with it
/// every probe's chain order) is identical across thread counts.
constexpr size_t kBuildChunk = 1 << 16;

}  // namespace

void RadixTable::Build(TaskScheduler* scheduler) {
  const uint32_t num_parts = 1u << radix_bits_;
  partition_mask_ = num_parts - 1;

  const size_t n = entries_.size();
  const size_t num_chunks = n == 0 ? 1 : (n + kBuildChunk - 1) / kBuildChunk;
  const bool parallel = scheduler != nullptr && scheduler->num_threads() > 1 && n >= kBuildChunk;

  // Pass 1: per-chunk histograms (chunk-parallel; chunks own disjoint input).
  std::vector<std::vector<uint32_t>> chunk_counts(num_chunks,
                                                  std::vector<uint32_t>(num_parts, 0));
  auto histogram = [&](uint64_t c, int) -> Status {
    const size_t lo = c * kBuildChunk, hi = std::min(n, lo + kBuildChunk);
    auto& counts = chunk_counts[c];
    for (size_t i = lo; i < hi; ++i) counts[entries_[i].hash & partition_mask_]++;
    return Status::OK();
  };

  // Partition totals and prefix sums -> partition start offsets.
  std::vector<uint32_t> counts(num_parts, 0);
  std::vector<uint32_t> offsets(num_parts + 1, 0);

  // Per-(chunk, partition) write cursors: chunk c writes partition p's rows
  // at the partition start + sum of earlier chunks' counts for p. Disjoint
  // slices, so the scatter needs no synchronization and reproduces the
  // serial order (chunks are in entry order, entries in order within each
  // chunk). In the partitioned layout the cursor is partition-local (starts
  // at 0 per partition) — the relative row order within a partition is the
  // same either way, which is what keeps probe chain order layout-invariant.
  std::vector<std::vector<uint32_t>> chunk_starts(num_chunks,
                                                  std::vector<uint32_t>(num_parts, 0));
  auto scatter = [&](uint64_t c, int) -> Status {
    const size_t lo = c * kBuildChunk, hi = std::min(n, lo + kBuildChunk);
    auto& cursor = chunk_starts[c];
    if (partitioned_) {
      for (size_t i = lo; i < hi; ++i) {
        uint64_t p = entries_[i].hash & partition_mask_;
        parts_[p].rows[cursor[p]++] = entries_[i];
      }
    } else {
      for (size_t i = lo; i < hi; ++i) {
        clustered_[cursor[entries_[i].hash & partition_mask_]++] = entries_[i];
      }
    }
    return Status::OK();
  };

  if (parallel) {
    (void)scheduler->ParallelFor(num_chunks, histogram);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) (void)histogram(c, 0);
  }
  for (uint32_t p = 0; p < num_parts; ++p) {
    for (size_t c = 0; c < num_chunks; ++c) counts[p] += chunk_counts[c][p];
    offsets[p + 1] = offsets[p] + counts[p];
  }
  for (uint32_t p = 0; p < num_parts; ++p) {
    uint32_t at = partitioned_ ? 0 : offsets[p];
    for (size_t c = 0; c < num_chunks; ++c) {
      chunk_starts[c][p] = at;
      at += chunk_counts[c][p];
    }
  }

  // Pass 2: scatter into clustered order (the radix clustering step).
  if (partitioned_) {
    parts_.assign(num_parts, Partition{});
    for (uint32_t p = 0; p < num_parts; ++p) parts_[p].rows.resize(counts[p]);
  } else {
    clustered_.resize(n);
  }
  if (parallel) {
    (void)scheduler->ParallelFor(num_chunks, scatter);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) (void)scatter(c, 0);
  }
  GlobalCounters().bytes_materialized += n * sizeof(Entry);
  entries_.clear();
  entries_.shrink_to_fit();

  if (partitioned_) {
    // Partition-local chained buckets: each partition's directory is sized
    // to its own row count, so a heavy-hitter partition never inflates the
    // memory of its siblings — the point of this layout on skewed keys.
    auto chain_local = [&](uint64_t p, int) -> Status {
      Partition& pt = parts_[p];
      const uint32_t rows = static_cast<uint32_t>(pt.rows.size());
      if (rows == 0) return Status::OK();
      uint32_t nb = NextPow2(rows);
      pt.bucket_mask = nb - 1;
      pt.buckets.assign(nb, kNil);
      pt.next.assign(rows, kNil);
      for (uint32_t i = 0; i < rows; ++i) {
        uint32_t bucket =
            static_cast<uint32_t>((pt.rows[i].hash >> radix_bits_) & pt.bucket_mask);
        pt.next[i] = pt.buckets[bucket];
        pt.buckets[bucket] = i;
      }
      return Status::OK();
    };
    if (parallel) {
      // Each partition owns all of its memory, so this pass is trivially
      // race-free; chain order within a partition is the sequential scan
      // order, same as the serial build and the shared layout.
      (void)scheduler->ParallelFor(num_parts, chain_local);
    } else {
      for (uint32_t p = 0; p < num_parts; ++p) (void)chain_local(p, 0);
    }
    return;
  }

  // Per-partition chained buckets, uniform bucket count for O(1) addressing.
  uint32_t max_part = 0;
  for (uint32_t p = 0; p < num_parts; ++p) max_part = std::max(max_part, counts[p]);
  buckets_per_part_ = NextPow2(max_part == 0 ? 1 : max_part);
  bucket_mask_ = buckets_per_part_ - 1;

  buckets_.assign(static_cast<size_t>(num_parts) * buckets_per_part_, kNil);
  next_.assign(clustered_.size(), kNil);
  auto chain = [&](uint64_t p, int) -> Status {
    for (uint32_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      uint64_t h = clustered_[i].hash;
      uint32_t bucket = static_cast<uint32_t>(p) * buckets_per_part_ +
                        static_cast<uint32_t>((h >> radix_bits_) & bucket_mask_);
      next_[i] = buckets_[bucket];
      buckets_[bucket] = i;
    }
    return Status::OK();
  };
  if (parallel) {
    // Partitions own disjoint bucket and next_ ranges; chain order within a
    // partition is the sequential scan order, same as the serial build.
    (void)scheduler->ParallelFor(num_parts, chain);
  } else {
    for (uint32_t p = 0; p < num_parts; ++p) (void)chain(p, 0);
  }
}

}  // namespace proteus
