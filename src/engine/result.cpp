#include "src/engine/result.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace proteus {

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) os << " | ";
    os << columns[i];
  }
  os << "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) os << " | ";
      os << rows[r][i].ToString();
    }
    os << "\n";
  }
  if (rows.size() > max_rows) {
    os << "... (" << rows.size() << " rows total)\n";
  }
  return os.str();
}

namespace {

bool CellEquals(const Value& a, const Value& b, double tol) {
  if ((a.is_float() || a.is_int()) && (b.is_float() || b.is_int())) {
    double x = a.AsFloat(), y = b.AsFloat();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= tol * scale;
  }
  return a.Equals(b);
}

std::string RowKey(const std::vector<Value>& row) {
  std::string k;
  for (const auto& v : row) {
    // Round floats so equal-within-tolerance rows sort together.
    if (v.is_float()) {
      std::ostringstream os;
      os.precision(9);
      os << v.f();
      k += os.str();
    } else {
      k += v.ToString();
    }
    k += '\x1f';
  }
  return k;
}

}  // namespace

bool QueryResult::EqualsUnordered(const QueryResult& other, double float_tol) const {
  if (columns != other.columns || rows.size() != other.rows.size()) return false;
  std::vector<size_t> a(rows.size()), b(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) a[i] = b[i] = i;
  auto by_key = [](const std::vector<std::vector<Value>>& rs) {
    return [&rs](size_t x, size_t y) { return RowKey(rs[x]) < RowKey(rs[y]); };
  };
  std::sort(a.begin(), a.end(), by_key(rows));
  std::sort(b.begin(), b.end(), by_key(other.rows));
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& ra = rows[a[i]];
    const auto& rb = other.rows[b[i]];
    if (ra.size() != rb.size()) return false;
    for (size_t j = 0; j < ra.size(); ++j) {
      if (!CellEquals(ra[j], rb[j], float_tol)) return false;
    }
  }
  return true;
}

}  // namespace proteus
