// Query results: a small column-named row set (aggregates produce one row).
#pragma once

#include <string>
#include <vector>

#include "src/common/value.h"

namespace proteus {

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  size_t num_rows() const { return rows.size(); }

  /// First cell of the first row — convenient for single-aggregate queries.
  const Value& scalar() const { return rows.at(0).at(0); }

  std::string ToString(size_t max_rows = 20) const;

  /// Bag-semantics comparison: equal columns and equal row multisets.
  /// Used by the JIT-vs-interpreter equivalence property tests.
  bool EqualsUnordered(const QueryResult& other, double float_tol = 1e-9) const;
};

}  // namespace proteus
