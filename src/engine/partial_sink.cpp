#include "src/engine/partial_sink.h"

#include "src/common/counters.h"
#include "src/obs/trace.h"

namespace proteus {

Status GroupTable::AddRow(const Operator& op, const EvalEnv& row) {
  PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op.pred(), row));
  if (!pass) return Status::OK();
  PROTEUS_ASSIGN_OR_RETURN(Value key, Eval(op.group_by(), row));
  size_t group = FindOrAdd(op, std::move(key));
  for (size_t i = 0; i < op.outputs().size(); ++i) {
    const AggOutput& o = op.outputs()[i];
    if (o.monoid == Monoid::kCount) {
      aggs[group][i].Add(Value::Int(1));
    } else {
      PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(o.expr, row));
      aggs[group][i].Add(v);
    }
  }
  return Status::OK();
}

void GroupTable::MergeFrom(const Operator& op, GroupTable&& other) {
  for (size_t g = 0; g < other.keys.size(); ++g) {
    size_t group = FindOrAdd(op, std::move(other.keys[g]));
    for (size_t i = 0; i < aggs[group].size(); ++i) {
      aggs[group][i].Merge(std::move(other.aggs[g][i]));
    }
  }
}

Value GroupTable::GroupRecord(const Operator& op, size_t g) const {
  std::vector<std::string> names{op.group_name()};
  std::vector<Value> values{keys[g]};
  for (size_t i = 0; i < op.outputs().size(); ++i) {
    names.push_back(op.outputs()[i].name);
    values.push_back(aggs[g][i].Final());
  }
  return Value::MakeRecord(std::move(names), std::move(values));
}

void GroupTable::Serialize(WireWriter* w) const {
  w->PutU64(keys.size());
  for (size_t g = 0; g < keys.size(); ++g) {
    w->PutValue(keys[g]);
    w->PutU64(aggs[g].size());
    for (const Aggregator& a : aggs[g]) a.Serialize(w);
  }
}

Result<GroupTable> GroupTable::Deserialize(WireReader* r) {
  GroupTable t;
  t.count_bytes = false;  // deserialized partials never re-count group bytes
  PROTEUS_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  if (n > r->remaining()) return Status::InvalidArgument("wire: bad group count");
  t.keys.reserve(n);
  t.aggs.reserve(n);
  for (uint64_t g = 0; g < n; ++g) {
    PROTEUS_ASSIGN_OR_RETURN(Value key, r->ReadValue());
    t.index[key.Hash()].push_back(t.keys.size());
    t.keys.push_back(std::move(key));
    PROTEUS_ASSIGN_OR_RETURN(uint64_t na, r->U64());
    if (na > r->remaining()) return Status::InvalidArgument("wire: bad aggregate count");
    t.aggs.emplace_back();
    t.aggs.back().reserve(na);
    for (uint64_t i = 0; i < na; ++i) {
      PROTEUS_ASSIGN_OR_RETURN(Aggregator a, Aggregator::Deserialize(r));
      t.aggs.back().push_back(std::move(a));
    }
  }
  return t;
}

size_t GroupTable::FindOrAdd(const Operator& op, Value key) {
  uint64_t h = key.Hash();
  for (size_t g : index[h]) {
    if (keys[g].Equals(key)) return g;
  }
  size_t group = keys.size();
  keys.push_back(std::move(key));
  index[h].push_back(group);
  aggs.emplace_back();
  for (const auto& o : op.outputs()) aggs.back().emplace_back(o.monoid);
  if (count_bytes) GlobalCounters().bytes_materialized += 48;
  return group;
}

const std::string& NestBinding(const Operator& op) {
  static const std::string kDefault = "$group";
  return op.binding().empty() ? kDefault : op.binding();
}

Status AccumulateReduceRow(const Operator& reduce, const EvalEnv& row,
                           std::vector<Aggregator>* aggs) {
  PROTEUS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(reduce.pred(), row));
  if (!pass) return Status::OK();
  const auto& outputs = reduce.outputs();
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].monoid == Monoid::kCount) {
      (*aggs)[i].Add(Value::Int(1));
    } else {
      PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(outputs[i].expr, row));
      (*aggs)[i].Add(v);
    }
  }
  return Status::OK();
}

std::vector<Aggregator> MakeReduceAggs(const Operator& reduce) {
  std::vector<Aggregator> aggs;
  aggs.reserve(reduce.outputs().size());
  for (const auto& o : reduce.outputs()) aggs.emplace_back(o.monoid);
  return aggs;
}

QueryResult FinalizeReduce(const Operator& reduce, std::vector<Aggregator>& aggs) {
  const auto& outputs = reduce.outputs();
  QueryResult result;
  // A single collection output of records unfolds into a row set.
  if (outputs.size() == 1 && IsCollectionMonoid(outputs[0].monoid)) {
    Value collected = aggs[0].Final();
    const ValueList& items = collected.list();
    bool records = !items.empty() && items[0].is_record();
    if (records) {
      result.columns = items[0].record().names;
      for (const auto& item : items) {
        result.rows.push_back(item.record().values);
      }
    } else {
      result.columns = {outputs[0].name};
      for (const auto& item : items) result.rows.push_back({item});
    }
    GlobalCounters().tuples_output += result.rows.size();
    return result;
  }
  for (const auto& o : outputs) result.columns.push_back(o.name);
  result.rows.emplace_back();
  for (auto& a : aggs) result.rows[0].push_back(a.Final());
  GlobalCounters().tuples_output += 1;
  return result;
}

void PlanPartials::Append(PlanPartials&& other) {
  nest = nest || other.nest;
  for (auto& m : other.agg_morsels) agg_morsels.push_back(std::move(m));
  for (auto& m : other.group_morsels) group_morsels.push_back(std::move(m));
}

Result<QueryResult> FinalizePlanPartials(const Operator& reduce, const Operator* nest,
                                         PlanPartials&& partials,
                                         obs::TraceRecorder* trace) {
  OBS_SPAN(trace, "partial_merge", "morsels",
           static_cast<int64_t>(partials.num_morsels()));
  if (partials.num_morsels() == 0) {
    return Status::Internal("FinalizePlanPartials requires at least one morsel partial");
  }
  if (nest != nullptr) {
    GroupTable merged = std::move(partials.group_morsels[0]);
    for (size_t m = 1; m < partials.group_morsels.size(); ++m) {
      merged.MergeFrom(*nest, std::move(partials.group_morsels[m]));
    }
    // Serial-parity materialization estimate: 48 bytes per distinct group.
    GlobalCounters().bytes_materialized += 48 * merged.keys.size();
    // Stream the merged groups through the Reduce root serially (group
    // counts are small next to input cardinalities).
    std::vector<Aggregator> aggs = MakeReduceAggs(reduce);
    for (size_t g = 0; g < merged.keys.size(); ++g) {
      EvalEnv row;
      row[NestBinding(*nest)] = merged.GroupRecord(*nest, g);
      PROTEUS_RETURN_NOT_OK(AccumulateReduceRow(reduce, row, &aggs));
    }
    return FinalizeReduce(reduce, aggs);
  }
  std::vector<Aggregator> aggs = std::move(partials.agg_morsels[0]);
  for (size_t m = 1; m < partials.agg_morsels.size(); ++m) {
    for (size_t i = 0; i < aggs.size(); ++i) aggs[i].Merge(std::move(partials.agg_morsels[m][i]));
  }
  return FinalizeReduce(reduce, aggs);
}

}  // namespace proteus

// ---------------------------------------------------------------------------
// C ABI partial-sink entry points (generated code -> JitMorselSink)
// ---------------------------------------------------------------------------

namespace {

proteus::JitMorselSink* SINK(void* p) { return static_cast<proteus::JitMorselSink*>(p); }

}  // namespace

extern "C" {

void proteus_sink_agg_flush_int(void* sink, uint32_t i, int64_t v, int64_t rows) {
  if (rows == 0) return;
  (*SINK(sink)->aggs)[i].LoadScalar(proteus::Value::Int(v));
}

void proteus_sink_agg_flush_double(void* sink, uint32_t i, double v, int64_t rows) {
  if (rows == 0) return;
  (*SINK(sink)->aggs)[i].LoadScalar(proteus::Value::Float(v));
}

void proteus_sink_agg_flush_bool(void* sink, uint32_t i, int32_t v, int64_t rows) {
  if (rows == 0) return;
  (*SINK(sink)->aggs)[i].LoadScalar(proteus::Value::Boolean(v != 0));
}

void proteus_sink_group_begin_int(void* sink, int64_t key) {
  proteus::JitMorselSink* s = SINK(sink);
  s->cur_group = s->groups->UpsertKey(*s->nest, proteus::Value::Int(key));
}

void proteus_sink_group_begin_double(void* sink, double key) {
  proteus::JitMorselSink* s = SINK(sink);
  // Boxed through the same Value path the interpreter's Nest uses, so float
  // group keys hash and compare by the exact same rules (bit pattern via
  // Value::Hash / Equals) in both engines.
  s->cur_group = s->groups->UpsertKey(*s->nest, proteus::Value::Float(key));
}

void proteus_sink_group_begin_bool(void* sink, int32_t key) {
  proteus::JitMorselSink* s = SINK(sink);
  s->cur_group = s->groups->UpsertKey(*s->nest, proteus::Value::Boolean(key != 0));
}

void proteus_sink_group_begin_str(void* sink, const char* p, int64_t len) {
  proteus::JitMorselSink* s = SINK(sink);
  s->cur_group = s->groups->UpsertKey(
      *s->nest, proteus::Value::Str(std::string(p, static_cast<size_t>(len))));
}

void proteus_sink_group_begin_null(void* sink) {
  proteus::JitMorselSink* s = SINK(sink);
  s->cur_group = s->groups->UpsertKey(*s->nest, proteus::Value::Null());
}

void proteus_sink_group_agg_count(void* sink, uint32_t i) {
  proteus::JitMorselSink* s = SINK(sink);
  s->groups->aggs[s->cur_group][i].Add(proteus::Value::Int(1));
}

void proteus_sink_group_agg_int(void* sink, uint32_t i, int64_t v) {
  proteus::JitMorselSink* s = SINK(sink);
  s->groups->aggs[s->cur_group][i].Add(proteus::Value::Int(v));
}

void proteus_sink_group_agg_double(void* sink, uint32_t i, double v) {
  proteus::JitMorselSink* s = SINK(sink);
  s->groups->aggs[s->cur_group][i].Add(proteus::Value::Float(v));
}

void proteus_sink_group_agg_bool(void* sink, uint32_t i, int32_t v) {
  proteus::JitMorselSink* s = SINK(sink);
  s->groups->aggs[s->cur_group][i].Add(proteus::Value::Boolean(v != 0));
}

void proteus_sink_group_agg_str(void* sink, uint32_t i, const char* p, int64_t len) {
  proteus::JitMorselSink* s = SINK(sink);
  s->groups->aggs[s->cur_group][i].Add(
      proteus::Value::Str(std::string(p, static_cast<size_t>(len))));
}

void proteus_sink_emit_int(void* sink, int64_t v) {
  SINK(sink)->staged.push_back(proteus::Value::Int(v));
}

void proteus_sink_emit_double(void* sink, double v) {
  SINK(sink)->staged.push_back(proteus::Value::Float(v));
}

void proteus_sink_emit_bool(void* sink, int32_t v) {
  SINK(sink)->staged.push_back(proteus::Value::Boolean(v != 0));
}

void proteus_sink_emit_str(void* sink, const char* p, int64_t len) {
  SINK(sink)->staged.push_back(proteus::Value::Str(std::string(p, static_cast<size_t>(len))));
}

void proteus_sink_emit_null(void* sink) {
  SINK(sink)->staged.push_back(proteus::Value::Null());
}

void proteus_sink_join_matched(void* sink, uint32_t table, int64_t row) {
  (*SINK(sink)->matched)[table][static_cast<size_t>(row)] = 1;
}

void proteus_sink_emit_end(void* sink) {
  proteus::JitMorselSink* s = SINK(sink);
  if (s->row_records) {
    (*s->aggs)[0].Add(proteus::Value::MakeRecord(*s->columns, std::move(s->staged)));
  } else {
    (*s->aggs)[0].Add(s->staged[0]);
  }
  s->staged.clear();
}

}  // extern "C"
