// Volcano-style interpreter over physical plans.
//
// This is (a) the reference executor that the JIT engine is property-tested
// against, and (b) the stand-in for general-purpose interpreted engines
// (PostgreSQL-class row stores) in the benchmark suite: every tuple crosses
// virtual getNext() calls and every expression is dispatched dynamically —
// exactly the interpretation overhead the paper's code generation removes
// (§5). ExecCounters::virtual_calls tracks those crossings.
//
// With an ExecContext::scheduler, eligible plans additionally run
// morsel-driven parallel: the driver scan is split into ranges via the
// plug-in Split() API, every worker runs its own pipeline instance over one
// morsel at a time (join build sides are materialized once up front and
// shared read-only), and per-morsel partial aggregates are merged in morsel
// order. Morsel boundaries depend only on the data, so results are
// identical for every worker count. Outer joins run morsel-parallel too:
// per-morsel matched-build bitmaps are OR-merged after the probe morsels and
// the unmatched build rows drain — once — through the ops above the join.
// Plans whose shape the morsel driver does not understand fall back to the
// serial path.
#pragma once

#include <memory>

#include "src/algebra/algebra.h"
#include "src/catalog/catalog.h"
#include "src/common/task_scheduler.h"
#include "src/engine/cache.h"
#include "src/engine/partial_sink.h"
#include "src/engine/result.h"
#include "src/expr/eval.h"
#include "src/plugins/plugin.h"

namespace proteus {

namespace jit {
class CompiledQueryCache;
class TieredCompiler;
struct TieredOptions;
}  // namespace jit

namespace obs {
class TraceRecorder;
}  // namespace obs

/// Default target scan rows per morsel — the single home of this constant
/// (EngineOptions, ExecContext, and the zero-value fallback all use it, so
/// every path produces the same morsel decomposition).
constexpr uint64_t kDefaultMorselRows = 4096;

struct ExecContext {
  const Catalog* catalog = nullptr;
  PluginRegistry* plugins = nullptr;
  StatsStore* stats = nullptr;       ///< cold-access stats collection target
  CachingManager* caches = nullptr;  ///< optional adaptive caching
  TaskScheduler* scheduler = nullptr;  ///< morsel-parallel execution when set
  /// Shared compiled-query cache (src/jit/query_cache.h). Optional: null
  /// compiles every execution. The ShardCoordinator hands one ExecContext to
  /// every ShardExecutor, so N shards of one engine share this instance and
  /// compile a plan exactly once (concurrent lookups single-flight).
  jit::CompiledQueryCache* jit_cache = nullptr;
  /// Target scan rows per morsel. Part of the deterministic morsel
  /// decomposition: results depend on this value but never on the worker
  /// count. Small values are used by tests to force multi-morsel merges on
  /// tiny corpora.
  uint64_t morsel_rows = kDefaultMorselRows;
  /// Tiered execution (src/jit/tiered_compiler.h), when the engine opted in:
  /// the background compile thread plus its knobs. Null = tiered routing
  /// off. Shard executors inherit both from the coordinator's context, so
  /// each shard runs its own hot-swapping controller against the one shared
  /// compile thread.
  jit::TieredCompiler* tiered = nullptr;
  const jit::TieredOptions* tiered_opts = nullptr;
  /// Query tracing (src/obs/trace.h), when the engine opted in. Null = off;
  /// every instrumentation site tests this one pointer and does nothing
  /// else. Shard executors and the tiered background compile inherit it, so
  /// one recorder collects the whole distributed timeline.
  obs::TraceRecorder* trace = nullptr;
  /// Cooperative cancellation flag (null = not cancellable). Checked at
  /// every morsel boundary — the interpreter's morsel/chunk loops, the JIT
  /// morsel driver, and the serial Volcano drain (every few thousand rows) —
  /// so a cancelled query stops within one morsel of the store. Execution
  /// paths return StatusCode::kCancelled when they observe it set. Shard
  /// executors and tiered chunks inherit the pointer with the context.
  const std::atomic<bool>* cancel = nullptr;
  /// Deterministic test hook: when set, called with the global morsel index
  /// at the top of every morsel a driver (interpreter or JIT) is about to
  /// run — after the cancel check. Tests block in it to hold a query at a
  /// morsel boundary (e.g. to land a cancel or an admission probe at a known
  /// execution point). Null in production.
  const std::function<void(uint64_t)>* morsel_hook = nullptr;
  /// Run the generated-code contract verifier (src/jit/ir_verifier.h) on
  /// every module after LLVM's structural verifyModule. Mirrors
  /// EngineOptions::verify_ir; a violation fails the compile with an
  /// Internal status (never a silent interpreter fallback).
  bool verify_ir = false;
};

/// Shared cancel test: Status::Cancelled when ctx.cancel is set. The single
/// home of the message every morsel-boundary check returns.
inline Status CheckCancelled(const ExecContext& ctx) {
  if (ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled at morsel boundary");
  }
  return Status::OK();
}

/// Pull-based row cursor (getNextTuple() of the Volcano model).
class Cursor {
 public:
  virtual ~Cursor() = default;
  virtual Status Open() = 0;
  /// Fills `row` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(EvalEnv* row) = 0;
};

class InterpExecutor {
 public:
  /// How the last Execute() ran (surfaced as QueryTelemetry).
  struct ExecStats {
    int threads_used = 1;
    uint64_t morsels = 0;  ///< 0 = serial Volcano path
  };

  explicit InterpExecutor(ExecContext ctx) : ctx_(ctx) {}

  /// Executes a physical plan whose root is Reduce.
  Result<QueryResult> Execute(const OpPtr& plan);

  /// Builds the cursor tree for a sub-plan (exposed for the caching manager,
  /// which drains subtree cursors to populate explicit caches).
  Result<std::unique_ptr<Cursor>> BuildCursor(const OpPtr& op);

  /// Morsel count of `plan`'s global decomposition (root = Reduce, shardable
  /// shape). Depends only on the data and morsel_rows — never on worker or
  /// shard counts — so shards can partition this index space and every shard
  /// count folds the exact same per-morsel partials. Opens the driver leaf's
  /// plug-in (cold index/stats on the calling thread).
  Result<uint64_t> CountPlanMorsels(const OpPtr& plan);

  /// Shard-side execution: runs only morsels [morsel_begin, morsel_end) of
  /// the global decomposition and returns their per-morsel partial sinks in
  /// morsel order instead of a final result. Join build sides are
  /// materialized in full (each shard probes its own copy). Rejects plans
  /// with outer joins in the probe chain — their unmatched drain is global.
  Result<PlanPartials> ExecutePartials(const OpPtr& plan, uint64_t morsel_begin,
                                       uint64_t morsel_end);

  const ExecStats& exec_stats() const { return exec_stats_; }

 private:
  ExecContext ctx_;
  ExecStats exec_stats_;
};

/// A resumable shard-style interpreter execution: preparation (plug-ins
/// opened, join build sides materialized, global morsel decomposition
/// computed) happens once at construction, then arbitrary chunks of the
/// global morsel index space run against the retained builds. Chunk
/// boundaries never change results — each chunk produces the same
/// per-morsel partials a whole run would, appended in morsel order — which
/// is what lets the tiered controller interleave interpreter chunks with a
/// generated-code tail and still merge through one FinalizePlanPartials
/// fold. Rejects plans with outer joins in the probe chain (their unmatched
/// drain needs a global view), the same restriction sharding has.
class InterpPartialSession {
 public:
  virtual ~InterpPartialSession() = default;
  /// Morsel count of the global decomposition (chunk indices address it).
  virtual uint64_t num_morsels() const = 0;
  /// Runs global morsels [morsel_begin, morsel_end), appending their
  /// per-morsel partials to `out` in morsel order.
  virtual Status RunChunk(uint64_t morsel_begin, uint64_t morsel_end, PlanPartials* out) = 0;
};

/// Prepares a chunked interpreter session for `plan` (root = Reduce).
/// Requires ctx.scheduler. The session captures `ctx` by value and `plan` by
/// shared_ptr, so it stays valid for as long as the engine subsystems the
/// context points at do.
Result<std::unique_ptr<InterpPartialSession>> MakeInterpPartialSession(const ExecContext& ctx,
                                                                       const OpPtr& plan);

/// Variables bound by the subtree rooted at `op` (shared helper).
void CollectBoundVars(const OpPtr& op, std::vector<std::string>* out);

/// A morsel-parallelizable pipeline: the chain of ops from the region root
/// (the op under Reduce, or under a Nest directly under Reduce) down to the
/// splittable driver leaf, root first. Probe sides continue the chain; join
/// build subtrees hang off the collected join nodes. Shared between the
/// interpreter's morsel runner and the JIT engine, which range-parameterizes
/// exactly this chain (build sides run once, the driver leaf loops over a
/// morsel range).
struct MorselPipeline {
  std::vector<const Operator*> ops;   ///< root-first, leaf included
  const Operator* leaf = nullptr;     ///< the splittable Scan / CacheScan
  std::vector<const Operator*> joins; ///< chain joins, root-first
};

/// Collects the pipeline chain under `pipe_root`. Returns false when the
/// shape is not morsel-parallelizable (Nest mid-chain, unknown ops).
bool CollectMorselPipeline(const OpPtr& pipe_root, MorselPipeline* out);

/// Outer joins of the chain in drain order (deepest-first): the order both
/// engines run unmatched-build drains — each drain's matches on the outer
/// joins above it join the bitmap pool of later drains — and the order the
/// trailing partial slots are filled in.
std::vector<const Operator*> OuterChainJoins(const MorselPipeline& pipe);

/// Partial-sink slot count of a pipeline region: one slot per morsel plus
/// one trailing slot per outer chain join's drain pass. The single home of
/// this accounting, shared by the interpreter's morsel runner and the JIT
/// executor so their partial frames (and thus merged results) line up
/// slot for slot.
uint64_t PlanPartialSlots(const MorselPipeline& pipe, uint64_t num_morsels);

/// The global morsel decomposition of a pipeline's driver leaf: plug-in
/// Split() for raw scans (byte-balanced where the format supports it), an
/// even row split for cache blocks. Deterministic — depends only on the data
/// and ctx.morsel_rows, never on worker or shard counts — and never empty.
/// The one decomposition every executor (interpreter morsels, JIT pipelines,
/// shard slices) must agree on for results to stay cell-identical.
Result<std::vector<ScanRange>> SplitLeafMorsels(const ExecContext& ctx, const Operator& leaf);

/// True when `plan` (root Reduce) has a shape the morsel-parallel driver
/// accepts. The QueryEngine consults this before routing: ineligible plans
/// gain nothing from num_threads > 1, so they keep their normal (e.g. JIT)
/// path instead of silently landing on the serial interpreter.
bool PlanIsMorselParallelizable(const OpPtr& plan);

/// True when `plan` can additionally be decomposed into independent shards
/// over disjoint leaf ranges: morsel-parallelizable AND free of outer joins
/// in the probe chain (their unmatched-build drain needs a global view, so
/// they stay intra-node). Build subtrees are unrestricted — each shard
/// materializes the full build side locally.
bool PlanIsShardable(const OpPtr& plan);

/// Opens every dataset scanned under `op` (building structural indexes and
/// collecting cold-access stats via ctx.stats) on the calling thread. The
/// morsel runner and the shard coordinator share this pre-warm so their
/// worker/shard threads only hit the warm plug-in registry path.
Status PreOpenPlanPlugins(const ExecContext& ctx, const OpPtr& op);

}  // namespace proteus
