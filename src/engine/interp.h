// Volcano-style interpreter over physical plans.
//
// This is (a) the reference executor that the JIT engine is property-tested
// against, and (b) the stand-in for general-purpose interpreted engines
// (PostgreSQL-class row stores) in the benchmark suite: every tuple crosses
// virtual getNext() calls and every expression is dispatched dynamically —
// exactly the interpretation overhead the paper's code generation removes
// (§5). ExecCounters::virtual_calls tracks those crossings.
#pragma once

#include <memory>

#include "src/algebra/algebra.h"
#include "src/catalog/catalog.h"
#include "src/engine/cache.h"
#include "src/engine/result.h"
#include "src/expr/eval.h"
#include "src/plugins/plugin.h"

namespace proteus {

struct ExecContext {
  const Catalog* catalog = nullptr;
  PluginRegistry* plugins = nullptr;
  StatsStore* stats = nullptr;       ///< cold-access stats collection target
  CachingManager* caches = nullptr;  ///< optional adaptive caching
};

/// Pull-based row cursor (getNextTuple() of the Volcano model).
class Cursor {
 public:
  virtual ~Cursor() = default;
  virtual Status Open() = 0;
  /// Fills `row` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(EvalEnv* row) = 0;
};

class InterpExecutor {
 public:
  explicit InterpExecutor(ExecContext ctx) : ctx_(ctx) {}

  /// Executes a physical plan whose root is Reduce.
  Result<QueryResult> Execute(const OpPtr& plan);

  /// Builds the cursor tree for a sub-plan (exposed for the caching manager,
  /// which drains subtree cursors to populate explicit caches).
  Result<std::unique_ptr<Cursor>> BuildCursor(const OpPtr& op);

 private:
  ExecContext ctx_;
};

/// Variables bound by the subtree rooted at `op` (shared helper).
void CollectBoundVars(const OpPtr& op, std::vector<std::string>* out);

}  // namespace proteus
