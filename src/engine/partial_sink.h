// Partial sinks of morsel-parallel execution: the per-morsel accumulator
// state a worker pipeline feeds (Reduce aggregate vectors, Nest group
// tables), plus the deterministic fold that turns a sequence of per-morsel
// partials back into a query result.
//
// Extracted from the interpreter so two consumers share one definition of
// the grouping/merge semantics: the in-process morsel executor (interp.cpp)
// and the shard subsystem (src/shard/), which serializes these partials
// across the shard boundary and folds them on the coordinator. Results stay
// identical across worker *and* shard counts precisely because both paths
// fold the same per-morsel partials in the same (global morsel) order.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/common/wire.h"
#include "src/engine/aggregator.h"
#include "src/engine/result.h"
#include "src/expr/eval.h"

namespace proteus {

/// Hash group table of a Nest operator. The single home of the grouping
/// semantics: the serial nest cursor fills one over its whole input; the
/// morsel executor fills one per morsel and folds them together in morsel
/// order (first-appearance group order then matches the serial scan's).
struct GroupTable {
  std::vector<Value> keys;
  std::vector<std::vector<Aggregator>> aggs;
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  /// Per-morsel partials set this false and the merged distinct-group total
  /// is counted once instead, so bytes_materialized for a group-by matches
  /// the serial path regardless of morsel count.
  bool count_bytes = true;

  Status AddRow(const Operator& op, const EvalEnv& row);

  /// Folds `other` into this table, appending unseen groups in `other`'s
  /// first-appearance order.
  void MergeFrom(const Operator& op, GroupTable&& other);

  /// Output record of group `g` ({group_name: key, <output aggregates>...}).
  Value GroupRecord(const Operator& op, size_t g) const;

  /// Wire round-trip for the shard boundary. The hash index is rebuilt on
  /// deserialization; the reconstructed table merges and finalizes
  /// identically to the original.
  void Serialize(WireWriter* w) const;
  static Result<GroupTable> Deserialize(WireReader* r);

 private:
  size_t FindOrAdd(const Operator& op, Value key);
};

/// The binding a Nest's grouped record is published under.
const std::string& NestBinding(const Operator& op);

/// Runs `row` through the Reduce root's predicate and folds it into `aggs`
/// (one accumulator per output).
Status AccumulateReduceRow(const Operator& reduce, const EvalEnv& row,
                           std::vector<Aggregator>* aggs);

/// Zero-valued accumulators matching the Reduce root's outputs.
std::vector<Aggregator> MakeReduceAggs(const Operator& reduce);

/// Turns the folded accumulators into the final row set (a single collection
/// output of records unfolds into rows).
QueryResult FinalizeReduce(const Operator& reduce, std::vector<Aggregator>& aggs);

/// Per-morsel partial sinks of one plan region, in global morsel order.
/// Exactly one of the two vectors is populated: agg_morsels when the plan's
/// top is the Reduce root itself, group_morsels when a Nest sits directly
/// under it.
struct PlanPartials {
  bool nest = false;
  std::vector<std::vector<Aggregator>> agg_morsels;
  std::vector<GroupTable> group_morsels;

  size_t num_morsels() const { return nest ? group_morsels.size() : agg_morsels.size(); }

  /// Concatenates `other`'s morsel entries after this one's — the shard
  /// coordinator appends shard partials in shard order, reconstructing the
  /// global morsel sequence.
  void Append(PlanPartials&& other);
};

/// Folds per-morsel partials in morsel order and runs the Reduce root — the
/// one merge implementation shared by the morsel executor and the shard
/// coordinator, so neither worker nor shard counts can change the fold
/// shape. `nest` is the Nest directly under `reduce`, or null. Requires at
/// least one morsel entry.
Result<QueryResult> FinalizePlanPartials(const Operator& reduce, const Operator* nest,
                                         PlanPartials&& partials);

}  // namespace proteus
