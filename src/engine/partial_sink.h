// Partial sinks of morsel-parallel execution: the per-morsel accumulator
// state a worker pipeline feeds (Reduce aggregate vectors, Nest group
// tables), plus the deterministic fold that turns a sequence of per-morsel
// partials back into a query result.
//
// Extracted from the interpreter so two consumers share one definition of
// the grouping/merge semantics: the in-process morsel executor (interp.cpp)
// and the shard subsystem (src/shard/), which serializes these partials
// across the shard boundary and folds them on the coordinator. Results stay
// identical across worker *and* shard counts precisely because both paths
// fold the same per-morsel partials in the same (global morsel) order.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/common/wire.h"
#include "src/engine/aggregator.h"
#include "src/engine/result.h"
#include "src/expr/eval.h"

namespace proteus {

namespace obs {
class TraceRecorder;
}  // namespace obs

/// Hash group table of a Nest operator. The single home of the grouping
/// semantics: the serial nest cursor fills one over its whole input; the
/// morsel executor fills one per morsel and folds them together in morsel
/// order (first-appearance group order then matches the serial scan's).
struct GroupTable {
  std::vector<Value> keys;
  std::vector<std::vector<Aggregator>> aggs;
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  /// Per-morsel partials set this false and the merged distinct-group total
  /// is counted once instead, so bytes_materialized for a group-by matches
  /// the serial path regardless of morsel count.
  bool count_bytes = true;

  Status AddRow(const Operator& op, const EvalEnv& row);

  /// Raw-value row path used by generated (JIT) per-morsel pipelines, which
  /// hold the already-evaluated key in a register: finds or creates `key`'s
  /// group and returns its index; the caller then Add()s into aggs[group].
  /// Same first-appearance group order as AddRow.
  size_t UpsertKey(const Operator& op, Value key) { return FindOrAdd(op, std::move(key)); }

  /// Folds `other` into this table, appending unseen groups in `other`'s
  /// first-appearance order.
  void MergeFrom(const Operator& op, GroupTable&& other);

  /// Output record of group `g` ({group_name: key, <output aggregates>...}).
  Value GroupRecord(const Operator& op, size_t g) const;

  /// Wire round-trip for the shard boundary. The hash index is rebuilt on
  /// deserialization; the reconstructed table merges and finalizes
  /// identically to the original.
  void Serialize(WireWriter* w) const;
  static Result<GroupTable> Deserialize(WireReader* r);

 private:
  size_t FindOrAdd(const Operator& op, Value key);
};

/// The binding a Nest's grouped record is published under.
const std::string& NestBinding(const Operator& op);

/// Runs `row` through the Reduce root's predicate and folds it into `aggs`
/// (one accumulator per output).
Status AccumulateReduceRow(const Operator& reduce, const EvalEnv& row,
                           std::vector<Aggregator>* aggs);

/// Zero-valued accumulators matching the Reduce root's outputs.
std::vector<Aggregator> MakeReduceAggs(const Operator& reduce);

/// Turns the folded accumulators into the final row set (a single collection
/// output of records unfolds into rows).
QueryResult FinalizeReduce(const Operator& reduce, std::vector<Aggregator>& aggs);

/// Per-morsel partial sinks of one plan region, in global morsel order.
/// Exactly one of the two vectors is populated: agg_morsels when the plan's
/// top is the Reduce root itself, group_morsels when a Nest sits directly
/// under it.
struct PlanPartials {
  bool nest = false;
  std::vector<std::vector<Aggregator>> agg_morsels;
  std::vector<GroupTable> group_morsels;

  size_t num_morsels() const { return nest ? group_morsels.size() : agg_morsels.size(); }

  /// Concatenates `other`'s morsel entries after this one's — the shard
  /// coordinator appends shard partials in shard order, reconstructing the
  /// global morsel sequence.
  void Append(PlanPartials&& other);
};

/// Folds per-morsel partials in morsel order and runs the Reduce root — the
/// one merge implementation shared by the morsel executor and the shard
/// coordinator, so neither worker nor shard counts can change the fold
/// shape. `nest` is the Nest directly under `reduce`, or null. Requires at
/// least one morsel entry. `trace` (nullable) records the merge as a
/// "partial_merge" span with the folded morsel count.
Result<QueryResult> FinalizePlanPartials(const Operator& reduce, const Operator* nest,
                                         PlanPartials&& partials,
                                         obs::TraceRecorder* trace = nullptr);

/// One morsel's partial sink as seen by a generated (JIT) pipeline through
/// the C entry points below. The generated function keeps per-tuple work in
/// registers and crosses this boundary only at the partial-sink granularity
/// the interpreter's morsel executor uses too — a scalar flush per morsel,
/// a group upsert per grouped row, a boxed row per emitted row — so a JIT
/// morsel partial is bit-indistinguishable from an interpreter one and both
/// merge through the same FinalizePlanPartials fold.
struct JitMorselSink {
  /// Scalar-aggregate or collection root: the morsel's accumulator vector
  /// (MakeReduceAggs shape).
  std::vector<Aggregator>* aggs = nullptr;
  /// Nest directly under the root: the morsel's group table + the Nest op.
  GroupTable* groups = nullptr;
  const Operator* nest = nullptr;
  /// Collection root: result column names; row_records is true when the
  /// head expression was a record constructor (rows box into records with
  /// these names, matching what Eval() produces for the interpreter).
  const std::vector<std::string>* columns = nullptr;
  bool row_records = false;

  /// Outer-join matched-build bitmaps this sink's marks land in, indexed by
  /// join table id (entries stay empty for non-outer tables). The generated
  /// probe body sets one byte per matched build row — the JIT counterpart
  /// of the interpreter's MatchedBitmaps. Morsel sinks share one bitmap set
  /// per *worker* (marking is an idempotent 0→1 write, so sharing across a
  /// worker's morsels cannot change the OR); drain sinks get their own. The
  /// host ORs all sets before running each generated unmatched-drain pass.
  /// Null when the plan has no outer chain joins.
  std::vector<std::vector<uint8_t>>* matched = nullptr;

  size_t cur_group = 0;       ///< group of the row being aggregated
  std::vector<Value> staged;  ///< cells of the row being emitted
};

}  // namespace proteus

// ---------------------------------------------------------------------------
// C ABI partial-sink entry points callable from generated IR. `sink` is a
// JitMorselSink*. Registered with the ORC JIT by jit::RuntimeSymbols().
// ---------------------------------------------------------------------------
extern "C" {

// Scalar Reduce root: one flush per (morsel, output) after the morsel's
// loop — `rows` is the number of rows that contributed; 0 leaves the
// accumulator in its empty state exactly like an interpreter partial that
// saw no rows.
void proteus_sink_agg_flush_int(void* sink, uint32_t i, int64_t v, int64_t rows);
void proteus_sink_agg_flush_double(void* sink, uint32_t i, double v, int64_t rows);
void proteus_sink_agg_flush_bool(void* sink, uint32_t i, int32_t v, int64_t rows);

// Nest under the root: begin a grouped row (upsert its key), then fold each
// output's evaluated value. The null variant covers SQL-null group keys
// (e.g. rows drained from an outer join grouping on a probe-side field).
void proteus_sink_group_begin_int(void* sink, int64_t key);
void proteus_sink_group_begin_double(void* sink, double key);
void proteus_sink_group_begin_bool(void* sink, int32_t key);
void proteus_sink_group_begin_str(void* sink, const char* p, int64_t len);
void proteus_sink_group_begin_null(void* sink);
void proteus_sink_group_agg_count(void* sink, uint32_t i);
void proteus_sink_group_agg_int(void* sink, uint32_t i, int64_t v);
void proteus_sink_group_agg_double(void* sink, uint32_t i, double v);
void proteus_sink_group_agg_bool(void* sink, uint32_t i, int32_t v);
void proteus_sink_group_agg_str(void* sink, uint32_t i, const char* p, int64_t len);

// Collection root: stage one row's cells, then box it into the morsel's
// collection accumulator. emit_null stages a SQL-null cell (outer-join
// drain rows, outer-unnest rows). A set-monoid accumulator deduplicates on
// Add, so emit_end needs no set-specific variant here.
void proteus_sink_emit_int(void* sink, int64_t v);
void proteus_sink_emit_double(void* sink, double v);
void proteus_sink_emit_bool(void* sink, int32_t v);
void proteus_sink_emit_str(void* sink, const char* p, int64_t len);
void proteus_sink_emit_null(void* sink);
void proteus_sink_emit_end(void* sink);

// Outer joins: mark build row `row` of join table `table` as matched in
// this partial's bitmap (called after the join's residual predicate passes,
// mirroring the interpreter's matched_[idx] = true).
void proteus_sink_join_matched(void* sink, uint32_t table, int64_t row);

}  // extern "C"
