#include "src/engine/cache.h"

#include <algorithm>

#include "src/common/counters.h"

namespace proteus {

uint64_t CacheBlockFormatRank(DataFormat f) {
  // Eviction priority: cheap-to-rebuild caches go first
  // (JSON > CSV > Binary in retention value — paper §6 "Cache Policies").
  switch (f) {
    case DataFormat::kJSON: return 3;
    case DataFormat::kCSV: return 2;
    default: return 1;
  }
}

uint64_t CachingManager::Install(CacheBlock block) {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  MutexLock lk(mu_);
  block.id = next_id_++;
  block.last_used_tick = ++tick_;
  // Replace an older block for the same subtree if this one covers at least
  // as many columns. Erasing only drops the map's reference — an in-flight
  // query holding the shared_ptr keeps reading the old block safely.
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second->signature == block.signature &&
        it->second->cols.size() <= block.cols.size()) {
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  uint64_t id = block.id;
  blocks_.emplace(id, std::make_shared<CacheBlock>(std::move(block)));
  MaybeEvictLocked();
  return id;
}

void CachingManager::MaybeEvictLocked() {
  while (TotalBytesLocked() > policy_.memory_budget_bytes && blocks_.size() > 1) {
    // Format-biased LRU: evict the lowest (format rank, last_used) block.
    auto victim = blocks_.end();
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
      if (victim == blocks_.end()) {
        victim = it;
        continue;
      }
      uint64_t a = CacheBlockFormatRank(it->second->source_format);
      uint64_t b = CacheBlockFormatRank(victim->second->source_format);
      if (a < b || (a == b && it->second->last_used_tick < victim->second->last_used_tick)) {
        victim = it;
      }
    }
    blocks_.erase(victim);
  }
}

std::shared_ptr<const CacheBlock> CachingManager::FindMatch(const Operator& op) const {
  std::string sig = op.Signature();
  MutexLock lk(mu_);
  for (const auto& [id, b] : blocks_) {
    if (b->signature == sig) {
      b->last_used_tick = ++const_cast<CachingManager*>(this)->tick_;
      return b;
    }
  }
  return nullptr;
}

std::shared_ptr<const CacheBlock> CachingManager::FindById(uint64_t id) const {
  MutexLock lk(mu_);
  auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : it->second;
}

OpPtr CachingManager::RewriteWithCaches(OpPtr plan, const Catalog& catalog) const {
  if (plan->kind() == OpKind::kScan) {
    const auto b = FindMatch(*plan);
    if (b == nullptr) return plan;
    // Check coverage: every numeric scan field must be a cache column;
    // strings may fall back to hybrid raw reads through the OID column.
    auto info = catalog.Get(plan->dataset());
    if (!info.ok()) return plan;
    for (const auto& p : plan->scan_fields()) {
      if (b->Find(plan->binding(), p) != nullptr) continue;
      // Absent from cache: acceptable only for non-numeric leaves.
      const Type* t = &(*info)->record_type();
      TypePtr leaf;
      bool resolvable = true;
      for (size_t i = 0; i < p.size() && resolvable; ++i) {
        auto ft = t->FieldType(p[i]);
        if (!ft.ok()) {
          resolvable = false;
          break;
        }
        leaf = *ft;
        if (leaf->kind() == TypeKind::kRecord) t = leaf.get();
      }
      if (!resolvable || leaf == nullptr) return plan;
      if (leaf->is_numeric()) return plan;  // cache too narrow: keep raw scan
    }
    OpPtr cs = Operator::CacheScan(b->id, plan->binding(), b->signature, plan->dataset());
    cs->set_scan_fields(plan->scan_fields());
    return cs;
  }
  if (plan->kind() == OpKind::kCacheScan) return plan;
  for (size_t i = 0; i < plan->children().size(); ++i) {
    *plan->mutable_child(i) = RewriteWithCaches(plan->child(i), catalog);
  }
  return plan;
}

namespace {

/// Converts one raw read into its cache-column slot. NotFound (optional JSON
/// field) stores the monoid zero — the preallocated slot already holds it —
/// and hybrid readers re-check the raw object when exactness matters.
Status StoreCacheValue(InputPlugin* plugin, const FieldPath& path, uint64_t oid,
                       CacheColumn* col) {
  auto v = plugin->ReadValue(oid, path);
  if (!v.ok()) {
    if (v.status().code() == StatusCode::kNotFound) return Status::OK();
    return v.status();
  }
  switch (col->type) {
    case TypeKind::kInt64:
      col->ints[oid] = v->is_null() ? 0 : v->i();
      return Status::OK();
    case TypeKind::kBool:
      col->ints[oid] = !v->is_null() && v->b() ? 1 : 0;
      return Status::OK();
    case TypeKind::kFloat64:
      col->floats[oid] = v->is_null() ? 0.0 : v->AsFloat();
      return Status::OK();
    case TypeKind::kString:
      col->strs[oid] = v->is_null() ? "" : v->s();
      return Status::OK();
    default:
      return Status::Internal("unexpected cache column type");
  }
}

}  // namespace

Result<uint64_t> CachingManager::BuildScanCache(InputPlugin* plugin, const DatasetInfo& info,
                                                const std::string& binding,
                                                const std::vector<FieldPath>& fields,
                                                TaskScheduler* scheduler) {
  CacheBlock block;
  block.signature = Operator::Scan(info.name, binding)->Signature();
  block.source_format = info.format;
  uint64_t n = plugin->NumRecords();
  block.num_rows = n;

  // OID column (always): enables hybrid raw reads and partial reuse.
  CacheColumn oid_col;
  oid_col.var = binding;
  oid_col.path = {"$oid"};
  oid_col.type = TypeKind::kInt64;
  oid_col.ints.reserve(n);
  for (uint64_t i = 0; i < n; ++i) oid_col.ints.push_back(static_cast<int64_t>(i));
  block.cols.push_back(std::move(oid_col));

  // Resolve leaf types first; only cacheable leaves get (zero-filled,
  // full-size) columns. Preallocating lets the parallel drain below write
  // disjoint OID slices without locks — and the result is byte-identical to
  // a serial build, whatever the morsel boundaries.
  std::vector<CacheColumn> cols;
  for (const auto& p : fields) {
    const Type* t = &info.record_type();
    TypePtr leaf;
    bool ok = true;
    for (size_t i = 0; i < p.size(); ++i) {
      auto ft = t->FieldType(p[i]);
      if (!ft.ok()) {
        ok = false;
        break;
      }
      leaf = *ft;
      if (leaf->kind() == TypeKind::kRecord) t = leaf.get();
    }
    if (!ok || leaf == nullptr) continue;
    bool is_string = leaf->kind() == TypeKind::kString;
    if (is_string && !policy_.cache_strings) continue;
    if (!is_string && !leaf->is_numeric() && leaf->kind() != TypeKind::kBool) continue;

    CacheColumn col;
    col.var = binding;
    col.path = p;
    col.type = leaf->kind() == TypeKind::kDate ? TypeKind::kInt64 : leaf->kind();
    if (col.type == TypeKind::kFloat64) {
      col.floats.assign(n, 0.0);
    } else if (col.type == TypeKind::kString) {
      col.strs.assign(n, "");
    } else {
      col.ints.assign(n, 0);
    }
    cols.push_back(std::move(col));
  }

  if (!cols.empty() && n > 0) {
    // Cold-access drain, morsel-parallel when a scheduler is available
    // (ROADMAP item "parallel cache population"): the plug-in Split() API
    // yields the same byte-balanced ranges the scan pipelines use.
    std::vector<ScanRange> morsels;
    if (scheduler != nullptr && scheduler->num_threads() > 1) {
      morsels = plugin->Split(std::max<uint64_t>(
          1, std::min<uint64_t>(1024, static_cast<uint64_t>(scheduler->num_threads()) * 8)));
    }
    if (morsels.empty()) morsels.push_back({0, n});
    auto fill = [&](uint64_t m, int) -> Status {
      for (uint64_t oid = morsels[m].begin; oid < morsels[m].end; ++oid) {
        for (auto& col : cols) {
          PROTEUS_RETURN_NOT_OK(StoreCacheValue(plugin, col.path, oid, &col));
        }
      }
      return Status::OK();
    };
    if (scheduler != nullptr) {
      PROTEUS_RETURN_NOT_OK(scheduler->ParallelFor(morsels.size(), fill));
    } else {
      for (uint64_t m = 0; m < morsels.size(); ++m) PROTEUS_RETURN_NOT_OK(fill(m, 0));
    }
  }

  for (auto& col : cols) {
    GlobalCounters().bytes_materialized += col.bytes();
    block.cols.push_back(std::move(col));
  }
  return Install(std::move(block));
}

void CachingManager::InvalidateDataset(const std::string& name) {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  MutexLock lk(mu_);
  // Dataset scans embed the dataset name in their signature.
  std::string needle = "scan(" + name + " ";
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second->signature.find(needle) != std::string::npos) {
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t CachingManager::TotalBytesLocked() const {
  size_t b = 0;
  for (const auto& [id, block] : blocks_) b += block->bytes();
  return b;
}

size_t CachingManager::total_bytes() const {
  MutexLock lk(mu_);
  return TotalBytesLocked();
}

std::vector<std::shared_ptr<const CacheBlock>> CachingManager::blocks() const {
  std::vector<std::shared_ptr<const CacheBlock>> out;
  MutexLock lk(mu_);
  out.reserve(blocks_.size());
  for (const auto& [id, b] : blocks_) out.push_back(b);
  return out;
}

}  // namespace proteus
