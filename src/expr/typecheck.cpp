#include "src/expr/expr.h"

namespace proteus {

namespace {

Result<TypePtr> LiteralType(const Value& v) {
  if (v.is_null()) return Status::TypeError("cannot infer type of null literal");
  if (v.is_int()) return Type::Int64();
  if (v.is_float()) return Type::Float64();
  if (v.is_bool()) return Type::Bool();
  if (v.is_string()) return Type::String();
  return Status::TypeError("unsupported literal " + v.ToString());
}

bool IsComparable(const TypePtr& a, const TypePtr& b) {
  if (a->is_numeric() && b->is_numeric()) return true;
  if (a->kind() == TypeKind::kString && b->kind() == TypeKind::kString) return true;
  if (a->kind() == TypeKind::kBool && b->kind() == TypeKind::kBool) return true;
  return false;
}

TypePtr NumericJoin(const TypePtr& a, const TypePtr& b) {
  if (a->kind() == TypeKind::kFloat64 || b->kind() == TypeKind::kFloat64) {
    return Type::Float64();
  }
  return Type::Int64();
}

}  // namespace

Result<TypePtr> TypeCheck(const ExprPtr& expr, const TypeEnv& env) {
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      PROTEUS_ASSIGN_OR_RETURN(TypePtr t, LiteralType(expr->literal()));
      expr->set_type(t);
      return t;
    }
    case ExprKind::kVarRef: {
      auto it = env.find(expr->var_name());
      if (it == env.end()) {
        return Status::TypeError("unbound variable '" + expr->var_name() + "'");
      }
      expr->set_type(it->second);
      return it->second;
    }
    case ExprKind::kProj: {
      PROTEUS_ASSIGN_OR_RETURN(TypePtr in, TypeCheck(expr->child(0), env));
      if (in->kind() != TypeKind::kRecord) {
        return Status::TypeError("projection ." + expr->field() + " on non-record type " +
                                 in->ToString());
      }
      auto ft = in->FieldType(expr->field());
      if (!ft.ok()) return ft.status();
      expr->set_type(*ft);
      return *ft;
    }
    case ExprKind::kBinary: {
      PROTEUS_ASSIGN_OR_RETURN(TypePtr l, TypeCheck(expr->child(0), env));
      PROTEUS_ASSIGN_OR_RETURN(TypePtr r, TypeCheck(expr->child(1), env));
      switch (expr->bin_op()) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv: {
          if (!l->is_numeric() || !r->is_numeric()) {
            return Status::TypeError("arithmetic on non-numeric types " + l->ToString() +
                                     ", " + r->ToString());
          }
          TypePtr t = expr->bin_op() == BinOp::kDiv ? Type::Float64() : NumericJoin(l, r);
          expr->set_type(t);
          return t;
        }
        case BinOp::kMod: {
          if (l->kind() != TypeKind::kInt64 || r->kind() != TypeKind::kInt64) {
            return Status::TypeError("modulo requires int64 operands");
          }
          expr->set_type(Type::Int64());
          return Type::Int64();
        }
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
        case BinOp::kEq:
        case BinOp::kNe: {
          if (!IsComparable(l, r)) {
            return Status::TypeError("cannot compare " + l->ToString() + " with " +
                                     r->ToString());
          }
          expr->set_type(Type::Bool());
          return Type::Bool();
        }
        case BinOp::kAnd:
        case BinOp::kOr: {
          if (l->kind() != TypeKind::kBool || r->kind() != TypeKind::kBool) {
            return Status::TypeError("logical op on non-bool operands");
          }
          expr->set_type(Type::Bool());
          return Type::Bool();
        }
      }
      return Status::Internal("unreachable binop");
    }
    case ExprKind::kUnary: {
      PROTEUS_ASSIGN_OR_RETURN(TypePtr c, TypeCheck(expr->child(0), env));
      if (expr->un_op() == UnOp::kNot) {
        if (c->kind() != TypeKind::kBool) return Status::TypeError("not on non-bool");
        expr->set_type(Type::Bool());
        return Type::Bool();
      }
      if (!c->is_numeric()) return Status::TypeError("negation on non-numeric");
      expr->set_type(c);
      return c;
    }
    case ExprKind::kIf: {
      PROTEUS_ASSIGN_OR_RETURN(TypePtr c, TypeCheck(expr->child(0), env));
      if (c->kind() != TypeKind::kBool) return Status::TypeError("if condition must be bool");
      PROTEUS_ASSIGN_OR_RETURN(TypePtr t, TypeCheck(expr->child(1), env));
      PROTEUS_ASSIGN_OR_RETURN(TypePtr e, TypeCheck(expr->child(2), env));
      if (t->is_numeric() && e->is_numeric()) {
        TypePtr j = NumericJoin(t, e);
        expr->set_type(j);
        return j;
      }
      if (!t->Equals(*e)) {
        return Status::TypeError("if branches have incompatible types " + t->ToString() +
                                 " vs " + e->ToString());
      }
      expr->set_type(t);
      return t;
    }
    case ExprKind::kCast: {
      PROTEUS_ASSIGN_OR_RETURN(TypePtr c, TypeCheck(expr->child(0), env));
      if (!c->is_numeric() || !expr->cast_to()->is_numeric()) {
        return Status::TypeError("cast supports numeric types only");
      }
      expr->set_type(expr->cast_to());
      return expr->cast_to();
    }
    case ExprKind::kRecordCons: {
      std::vector<Field> fields;
      for (size_t i = 0; i < expr->children().size(); ++i) {
        PROTEUS_ASSIGN_OR_RETURN(TypePtr t, TypeCheck(expr->child(i), env));
        fields.push_back({expr->record_names()[i], t});
      }
      TypePtr t = Type::Record(std::move(fields));
      expr->set_type(t);
      return t;
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace proteus
