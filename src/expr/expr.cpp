#include "src/expr/expr.h"

#include <sstream>

namespace proteus {

ExprPtr Expr::Lit(Value v) {
  auto e = ExprPtr(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Var(std::string name) {
  auto e = ExprPtr(new Expr(ExprKind::kVarRef));
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Proj(ExprPtr input, std::string field) {
  auto e = ExprPtr(new Expr(ExprKind::kProj));
  e->children_ = {std::move(input)};
  e->name_ = std::move(field);
  return e;
}

ExprPtr Expr::Path(const std::vector<std::string>& path) {
  ExprPtr e = Var(path.front());
  for (size_t i = 1; i < path.size(); ++i) e = Proj(e, path[i]);
  return e;
}

ExprPtr Expr::Bin(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kBinary));
  e->bin_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Un(UnOp op, ExprPtr c) {
  auto e = ExprPtr(new Expr(ExprKind::kUnary));
  e->un_op_ = op;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = ExprPtr(new Expr(ExprKind::kIf));
  e->children_ = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

ExprPtr Expr::Cast(TypePtr to, ExprPtr c) {
  auto e = ExprPtr(new Expr(ExprKind::kCast));
  e->cast_to_ = std::move(to);
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::Record(std::vector<std::string> names, std::vector<ExprPtr> children) {
  auto e = ExprPtr(new Expr(ExprKind::kRecordCons));
  e->record_names_ = std::move(names);
  e->children_ = std::move(children);
  return e;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kLiteral:
      os << literal_.ToString();
      break;
    case ExprKind::kVarRef:
      os << name_;
      break;
    case ExprKind::kProj:
      os << children_[0]->ToString() << "." << name_;
      break;
    case ExprKind::kBinary:
      os << "(" << children_[0]->ToString() << " " << BinOpName(bin_op_) << " "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kUnary:
      os << (un_op_ == UnOp::kNot ? "not " : "-") << children_[0]->ToString();
      break;
    case ExprKind::kIf:
      os << "if " << children_[0]->ToString() << " then " << children_[1]->ToString()
         << " else " << children_[2]->ToString();
      break;
    case ExprKind::kCast:
      os << "cast<" << cast_to_->ToString() << ">(" << children_[0]->ToString() << ")";
      break;
    case ExprKind::kRecordCons:
      os << "<";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) os << ", ";
        os << record_names_[i] << ": " << children_[i]->ToString();
      }
      os << ">";
      break;
  }
  return os.str();
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kLiteral:
      if (!literal_.Equals(other.literal_)) return false;
      break;
    case ExprKind::kVarRef:
    case ExprKind::kProj:
      if (name_ != other.name_) return false;
      break;
    case ExprKind::kBinary:
      if (bin_op_ != other.bin_op_) return false;
      break;
    case ExprKind::kUnary:
      if (un_op_ != other.un_op_) return false;
      break;
    case ExprKind::kCast:
      if (!cast_to_->Equals(*other.cast_to_)) return false;
      break;
    case ExprKind::kRecordCons:
      if (record_names_ != other.record_names_) return false;
      break;
    case ExprKind::kIf:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

void Expr::CollectFreeVars(std::unordered_set<std::string>* out) const {
  if (kind_ == ExprKind::kVarRef) {
    out->insert(name_);
    return;
  }
  for (const auto& c : children_) c->CollectFreeVars(out);
}

bool Expr::OnlyDependsOn(const std::unordered_set<std::string>& bound) const {
  std::unordered_set<std::string> free;
  CollectFreeVars(&free);
  for (const auto& v : free) {
    if (!bound.count(v)) return false;
  }
  return true;
}

ExprPtr Expr::SubstituteVar(const ExprPtr& e, const std::string& var, const ExprPtr& replacement) {
  if (e->kind_ == ExprKind::kVarRef) {
    return e->name_ == var ? replacement : e;
  }
  if (e->children_.empty()) return e;
  auto copy = ExprPtr(new Expr(*e));
  for (auto& c : copy->children_) c = SubstituteVar(c, var, replacement);
  return copy;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (!pred) return out;
  if (pred->kind() == ExprKind::kBinary && pred->bin_op() == BinOp::kAnd) {
    auto l = SplitConjuncts(pred->child(0));
    auto r = SplitConjuncts(pred->child(1));
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(pred);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return Expr::Bool(true);
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::Bin(BinOp::kAnd, acc, conjuncts[i]);
  }
  return acc;
}

}  // namespace proteus
