// Tree-walking expression evaluation over boxed Values. Used by the Volcano
// interpreter engine and as the test oracle for the JIT expression compiler.
#pragma once

#include <unordered_map>

#include "src/common/value.h"
#include "src/expr/expr.h"

namespace proteus {

/// Variable bindings during evaluation: generator variable -> current value.
using EvalEnv = std::unordered_map<std::string, Value>;

/// Evaluates `expr` under `env`. Increments ExecCounters::branch_evals for
/// every conditional evaluated — the software analogue of the interpretation
/// overhead the paper measures (§5).
Result<Value> Eval(const ExprPtr& expr, const EvalEnv& env);

/// Evaluates a predicate; null is treated as false (SQL-like semantics).
Result<bool> EvalPredicate(const ExprPtr& pred, const EvalEnv& env);

}  // namespace proteus
