// Expression AST of the nested relational algebra.
//
// Expressions appear as filtering predicates (p), output expressions (e),
// group-by expressions (f), and record constructions. They are evaluated
// either by the tree-walking interpreter (src/expr/eval.h) or compiled to
// LLVM IR by the expression generators (src/jit/expr_codegen.h) — the paper's
// "Expression Generators" component (§4, §5.2).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/value.h"
#include "src/types/type.h"

namespace proteus {

enum class ExprKind {
  kLiteral,     ///< constant value
  kVarRef,      ///< reference to a bound variable (a generator binding)
  kProj,        ///< field projection  e.name
  kBinary,      ///< arithmetic / comparison / logical
  kUnary,       ///< not / negate
  kIf,          ///< if c then t else e
  kCast,        ///< numeric cast
  kRecordCons,  ///< < name1: e1, ..., nameN: eN >
};

enum class BinOp { kAdd, kSub, kMul, kDiv, kMod, kLt, kLe, kGt, kGe, kEq, kNe, kAnd, kOr };
enum class UnOp { kNot, kNeg };

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

class Expr {
 public:
  // ---- Builders ------------------------------------------------------------
  static ExprPtr Lit(Value v);
  static ExprPtr Int(int64_t v) { return Lit(Value::Int(v)); }
  static ExprPtr Float(double v) { return Lit(Value::Float(v)); }
  static ExprPtr Bool(bool v) { return Lit(Value::Boolean(v)); }
  static ExprPtr Str(std::string v) { return Lit(Value::Str(std::move(v))); }
  static ExprPtr Var(std::string name);
  static ExprPtr Proj(ExprPtr input, std::string field);
  /// Convenience: Var(path[0]).path[1].path[2]...
  static ExprPtr Path(const std::vector<std::string>& path);
  static ExprPtr Bin(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Un(UnOp op, ExprPtr c);
  static ExprPtr If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
  static ExprPtr Cast(TypePtr to, ExprPtr c);
  static ExprPtr Record(std::vector<std::string> names, std::vector<ExprPtr> children);

  // ---- Accessors -----------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& var_name() const { return name_; }
  const std::string& field() const { return name_; }
  BinOp bin_op() const { return bin_op_; }
  UnOp un_op() const { return un_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  const std::vector<std::string>& record_names() const { return record_names_; }
  const TypePtr& cast_to() const { return cast_to_; }

  /// Type annotation, filled in by TypeCheck().
  const TypePtr& type() const { return type_; }
  void set_type(TypePtr t) { type_ = std::move(t); }

  /// Canonical textual form; used for plan signatures (cache matching) and
  /// debugging. Structurally equal expressions print identically.
  std::string ToString() const;
  bool Equals(const Expr& other) const;

  /// Free variables referenced anywhere in this expression.
  void CollectFreeVars(std::unordered_set<std::string>* out) const;
  /// True if all free variables are within `bound`.
  bool OnlyDependsOn(const std::unordered_set<std::string>& bound) const;

  /// Deep copy with a variable renamed (used by calculus normalization).
  static ExprPtr SubstituteVar(const ExprPtr& e, const std::string& var, const ExprPtr& replacement);

 private:
  explicit Expr(ExprKind k) : kind_(k) {}

  ExprKind kind_;
  Value literal_;                         // kLiteral
  std::string name_;                      // kVarRef: var name; kProj: field name
  BinOp bin_op_ = BinOp::kAdd;            // kBinary
  UnOp un_op_ = UnOp::kNot;               // kUnary
  std::vector<ExprPtr> children_;
  std::vector<std::string> record_names_; // kRecordCons
  TypePtr cast_to_;                       // kCast
  TypePtr type_;
};

const char* BinOpName(BinOp op);

/// Maps variable names to their types during type checking.
using TypeEnv = std::unordered_map<std::string, TypePtr>;

/// Infers and annotates types bottom-up. Errors on unknown variables/fields
/// and non-sensical operand types (e.g. adding strings).
Result<TypePtr> TypeCheck(const ExprPtr& expr, const TypeEnv& env);

/// Folds constant subexpressions (literal arithmetic, boolean short-circuits).
ExprPtr FoldConstants(const ExprPtr& expr);

/// Conjunction helpers: split a predicate on AND, rebuild from conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace proteus
