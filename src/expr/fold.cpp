#include "src/expr/eval.h"
#include "src/expr/expr.h"

namespace proteus {

namespace {

bool IsLiteral(const ExprPtr& e) { return e->kind() == ExprKind::kLiteral; }

bool IsTrue(const ExprPtr& e) {
  return IsLiteral(e) && e->literal().is_bool() && e->literal().b();
}
bool IsFalse(const ExprPtr& e) {
  return IsLiteral(e) && e->literal().is_bool() && !e->literal().b();
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr) {
  if (expr->children().empty()) return expr;

  std::vector<ExprPtr> folded;
  folded.reserve(expr->children().size());
  bool all_literal = true;
  for (const auto& c : expr->children()) {
    folded.push_back(FoldConstants(c));
    all_literal &= IsLiteral(folded.back());
  }

  auto rebuild = [&]() -> ExprPtr {
    switch (expr->kind()) {
      case ExprKind::kProj: return Expr::Proj(folded[0], expr->field());
      case ExprKind::kBinary: return Expr::Bin(expr->bin_op(), folded[0], folded[1]);
      case ExprKind::kUnary: return Expr::Un(expr->un_op(), folded[0]);
      case ExprKind::kIf: return Expr::If(folded[0], folded[1], folded[2]);
      case ExprKind::kCast: return Expr::Cast(expr->cast_to(), folded[0]);
      case ExprKind::kRecordCons: return Expr::Record(expr->record_names(), folded);
      default: return expr;
    }
  };

  // Boolean identities that do not require full literal children.
  if (expr->kind() == ExprKind::kBinary) {
    BinOp op = expr->bin_op();
    if (op == BinOp::kAnd) {
      if (IsTrue(folded[0])) return folded[1];
      if (IsTrue(folded[1])) return folded[0];
      if (IsFalse(folded[0]) || IsFalse(folded[1])) return Expr::Bool(false);
    }
    if (op == BinOp::kOr) {
      if (IsFalse(folded[0])) return folded[1];
      if (IsFalse(folded[1])) return folded[0];
      if (IsTrue(folded[0]) || IsTrue(folded[1])) return Expr::Bool(true);
    }
  }
  if (expr->kind() == ExprKind::kIf) {
    if (IsTrue(folded[0])) return folded[1];
    if (IsFalse(folded[0])) return folded[2];
  }

  if (!all_literal || expr->kind() == ExprKind::kRecordCons) return rebuild();

  // Pure literal subtree: evaluate it now.
  ExprPtr candidate = rebuild();
  EvalEnv empty;
  auto v = Eval(candidate, empty);
  if (!v.ok()) return candidate;  // e.g. division by zero: keep for runtime error
  if (v->is_record() || v->is_list()) return candidate;
  return Expr::Lit(std::move(*v));
}

}  // namespace proteus
