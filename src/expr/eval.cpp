#include "src/expr/eval.h"

#include <cmath>

#include "src/common/counters.h"

namespace proteus {

namespace {

Result<Value> EvalArith(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool both_int = l.is_int() && r.is_int();
  switch (op) {
    case BinOp::kAdd:
      return both_int ? Value::Int(l.i() + r.i()) : Value::Float(l.AsFloat() + r.AsFloat());
    case BinOp::kSub:
      return both_int ? Value::Int(l.i() - r.i()) : Value::Float(l.AsFloat() - r.AsFloat());
    case BinOp::kMul:
      return both_int ? Value::Int(l.i() * r.i()) : Value::Float(l.AsFloat() * r.AsFloat());
    case BinOp::kDiv: {
      double d = r.AsFloat();
      if (d == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Float(l.AsFloat() / d);
    }
    case BinOp::kMod: {
      if (r.i() == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Int(l.i() % r.i());
    }
    default:
      return Status::Internal("not an arithmetic op");
  }
}

Result<Value> EvalCompare(BinOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  GlobalCounters().branch_evals++;
  if (op == BinOp::kEq) return Value::Boolean(l.Equals(r));
  if (op == BinOp::kNe) return Value::Boolean(!l.Equals(r));
  int c = l.Compare(r);
  switch (op) {
    case BinOp::kLt: return Value::Boolean(c < 0);
    case BinOp::kLe: return Value::Boolean(c <= 0);
    case BinOp::kGt: return Value::Boolean(c > 0);
    case BinOp::kGe: return Value::Boolean(c >= 0);
    default: return Status::Internal("not a comparison op");
  }
}

}  // namespace

Result<Value> Eval(const ExprPtr& expr, const EvalEnv& env) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return expr->literal();
    case ExprKind::kVarRef: {
      auto it = env.find(expr->var_name());
      if (it == env.end()) {
        return Status::Internal("unbound variable '" + expr->var_name() + "' at eval time");
      }
      return it->second;
    }
    case ExprKind::kProj: {
      PROTEUS_ASSIGN_OR_RETURN(Value in, Eval(expr->child(0), env));
      if (in.is_null()) return Value::Null();
      return in.GetField(expr->field());
    }
    case ExprKind::kBinary: {
      BinOp op = expr->bin_op();
      if (op == BinOp::kAnd || op == BinOp::kOr) {
        GlobalCounters().branch_evals++;
        PROTEUS_ASSIGN_OR_RETURN(Value l, Eval(expr->child(0), env));
        bool lb = !l.is_null() && l.b();
        // Short-circuit evaluation.
        if (op == BinOp::kAnd && !lb) return Value::Boolean(false);
        if (op == BinOp::kOr && lb) return Value::Boolean(true);
        PROTEUS_ASSIGN_OR_RETURN(Value r, Eval(expr->child(1), env));
        bool rb = !r.is_null() && r.b();
        return Value::Boolean(rb);
      }
      PROTEUS_ASSIGN_OR_RETURN(Value l, Eval(expr->child(0), env));
      PROTEUS_ASSIGN_OR_RETURN(Value r, Eval(expr->child(1), env));
      if (op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul ||
          op == BinOp::kDiv || op == BinOp::kMod) {
        return EvalArith(op, l, r);
      }
      return EvalCompare(op, l, r);
    }
    case ExprKind::kUnary: {
      PROTEUS_ASSIGN_OR_RETURN(Value c, Eval(expr->child(0), env));
      if (c.is_null()) return Value::Null();
      if (expr->un_op() == UnOp::kNot) return Value::Boolean(!c.b());
      return c.is_int() ? Value::Int(-c.i()) : Value::Float(-c.f());
    }
    case ExprKind::kIf: {
      GlobalCounters().branch_evals++;
      PROTEUS_ASSIGN_OR_RETURN(Value c, Eval(expr->child(0), env));
      bool cond = !c.is_null() && c.b();
      return Eval(expr->child(cond ? 1 : 2), env);
    }
    case ExprKind::kCast: {
      PROTEUS_ASSIGN_OR_RETURN(Value c, Eval(expr->child(0), env));
      if (c.is_null()) return Value::Null();
      if (expr->cast_to()->kind() == TypeKind::kFloat64) return Value::Float(c.AsFloat());
      if (c.is_float()) return Value::Int(static_cast<int64_t>(c.f()));
      return c;
    }
    case ExprKind::kRecordCons: {
      std::vector<Value> vals;
      vals.reserve(expr->children().size());
      for (const auto& ch : expr->children()) {
        PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(ch, env));
        vals.push_back(std::move(v));
      }
      return Value::MakeRecord(expr->record_names(), std::move(vals));
    }
  }
  return Status::Internal("unreachable expr kind at eval");
}

Result<bool> EvalPredicate(const ExprPtr& pred, const EvalEnv& env) {
  if (!pred) return true;
  PROTEUS_ASSIGN_OR_RETURN(Value v, Eval(pred, env));
  return !v.is_null() && v.b();
}

}  // namespace proteus
