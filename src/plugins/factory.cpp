#include "src/plugins/binary_plugins.h"
#include "src/plugins/csv_plugin.h"
#include "src/plugins/json_plugin.h"
#include "src/plugins/plugin.h"

namespace proteus {

Result<std::unique_ptr<InputPlugin>> CreateInputPlugin(const DatasetInfo& info) {
  switch (info.format) {
    case DataFormat::kCSV:
      return std::unique_ptr<InputPlugin>(new CsvPlugin(info));
    case DataFormat::kJSON:
      return std::unique_ptr<InputPlugin>(new JsonPlugin(info));
    case DataFormat::kBinaryRow:
      return std::unique_ptr<InputPlugin>(new BinRowPlugin(info));
    case DataFormat::kBinaryColumn:
      return std::unique_ptr<InputPlugin>(new BinColPlugin(info));
    case DataFormat::kCacheBlock:
      return Status::InvalidArgument(
          "cache plug-ins are created by the CachingManager, not the factory");
  }
  return Status::Internal("unknown data format");
}

}  // namespace proteus
