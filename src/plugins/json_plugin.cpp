#include "src/plugins/json_plugin.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>

#include "src/common/counters.h"
#include "src/common/hash.h"

namespace proteus {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parsing machinery
// ---------------------------------------------------------------------------

namespace {

struct JsonCursor {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n')) ++p;
  }
  bool Eof() const { return p >= end; }
  char Peek() const { return *p; }

  Status Expect(char c) {
    SkipWs();
    if (Eof() || *p != c) {
      return Status::ParseError(std::string("expected '") + c + "' in JSON at offset " +
                                std::to_string(end - p));
    }
    ++p;
    return Status::OK();
  }

  /// Skips a string literal (cursor at opening quote).
  Status SkipString() {
    ++p;  // opening quote
    while (p < end) {
      if (*p == '\\') {
        p += 2;
        continue;
      }
      if (*p == '"') {
        ++p;
        return Status::OK();
      }
      ++p;
    }
    return Status::ParseError("unterminated JSON string");
  }

  /// Parses a field name into `out` (no unescaping: names are plain).
  Status ParseName(std::string_view* out) {
    SkipWs();
    if (Eof() || *p != '"') return Status::ParseError("expected field name");
    const char* s = ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') ++p;
      ++p;
    }
    if (Eof()) return Status::ParseError("unterminated field name");
    *out = {s, static_cast<size_t>(p - s)};
    ++p;
    return Status::OK();
  }

  /// Skips any JSON value; reports its span and type.
  Status SkipValue(const char** vstart, const char** vend, JsonTokenType* type) {
    SkipWs();
    if (Eof()) return Status::ParseError("unexpected end of JSON");
    *vstart = p;
    char c = *p;
    if (c == '"') {
      *type = JsonTokenType::kString;
      PROTEUS_RETURN_NOT_OK(SkipString());
    } else if (c == '{' || c == '[') {
      *type = c == '{' ? JsonTokenType::kObject : JsonTokenType::kArray;
      int depth = 0;
      while (p < end) {
        char d = *p;
        if (d == '"') {
          PROTEUS_RETURN_NOT_OK(SkipString());
          continue;
        }
        if (d == '{' || d == '[') ++depth;
        if (d == '}' || d == ']') {
          --depth;
          ++p;
          if (depth == 0) break;
          continue;
        }
        ++p;
      }
      if (depth != 0) return Status::ParseError("unbalanced JSON brackets");
    } else if (c == 't' || c == 'f') {
      *type = JsonTokenType::kBool;
      p += (c == 't') ? 4 : 5;
      if (p > end) return Status::ParseError("truncated JSON literal");
    } else if (c == 'n') {
      *type = JsonTokenType::kNull;
      p += 4;
      if (p > end) return Status::ParseError("truncated JSON literal");
    } else {
      bool is_float = false;
      while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) || *p == '-' ||
                         *p == '+' || *p == '.' || *p == 'e' || *p == 'E')) {
        if (*p == '.' || *p == 'e' || *p == 'E') is_float = true;
        ++p;
      }
      if (p == *vstart) return Status::ParseError("invalid JSON value");
      *type = is_float ? JsonTokenType::kFloat : JsonTokenType::kInt;
    }
    *vend = p;
    return Status::OK();
  }
};

std::string UnescapeJsonString(const char* s, const char* e) {
  std::string out;
  out.reserve(static_cast<size_t>(e - s));
  for (const char* p = s; p < e; ++p) {
    if (*p == '\\' && p + 1 < e) {
      ++p;
      switch (*p) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        default: out += *p;
      }
    } else {
      out += *p;
    }
  }
  return out;
}

}  // namespace

Result<Value> ParseJsonValue(const char* begin, const char* end) {
  JsonCursor c{begin, end};
  c.SkipWs();
  if (c.Eof()) return Status::ParseError("empty JSON value");
  char ch = c.Peek();
  if (ch == '{') {
    std::vector<std::string> names;
    std::vector<Value> values;
    PROTEUS_RETURN_NOT_OK(c.Expect('{'));
    c.SkipWs();
    if (!c.Eof() && c.Peek() == '}') {
      ++c.p;
      return Value::MakeRecord({}, {});
    }
    while (true) {
      std::string_view name;
      PROTEUS_RETURN_NOT_OK(c.ParseName(&name));
      PROTEUS_RETURN_NOT_OK(c.Expect(':'));
      const char *vs, *ve;
      JsonTokenType vt;
      PROTEUS_RETURN_NOT_OK(c.SkipValue(&vs, &ve, &vt));
      PROTEUS_ASSIGN_OR_RETURN(Value v, ParseJsonValue(vs, ve));
      names.emplace_back(name);
      values.push_back(std::move(v));
      c.SkipWs();
      if (!c.Eof() && c.Peek() == ',') {
        ++c.p;
        continue;
      }
      break;
    }
    PROTEUS_RETURN_NOT_OK(c.Expect('}'));
    return Value::MakeRecord(std::move(names), std::move(values));
  }
  if (ch == '[') {
    ValueList elems;
    PROTEUS_RETURN_NOT_OK(c.Expect('['));
    c.SkipWs();
    if (!c.Eof() && c.Peek() == ']') {
      ++c.p;
      return Value::MakeList({});
    }
    while (true) {
      const char *vs, *ve;
      JsonTokenType vt;
      PROTEUS_RETURN_NOT_OK(c.SkipValue(&vs, &ve, &vt));
      PROTEUS_ASSIGN_OR_RETURN(Value v, ParseJsonValue(vs, ve));
      elems.push_back(std::move(v));
      c.SkipWs();
      if (!c.Eof() && c.Peek() == ',') {
        ++c.p;
        continue;
      }
      break;
    }
    PROTEUS_RETURN_NOT_OK(c.Expect(']'));
    return Value::MakeList(std::move(elems));
  }
  if (ch == '"') {
    const char *vs, *ve;
    JsonTokenType vt;
    PROTEUS_RETURN_NOT_OK(c.SkipValue(&vs, &ve, &vt));
    return Value::Str(UnescapeJsonString(vs + 1, ve - 1));
  }
  if (ch == 't') return Value::Boolean(true);
  if (ch == 'f') return Value::Boolean(false);
  if (ch == 'n') return Value::Null();
  // number
  std::string_view text(begin, static_cast<size_t>(end - begin));
  bool is_float = text.find('.') != std::string_view::npos ||
                  text.find('e') != std::string_view::npos ||
                  text.find('E') != std::string_view::npos;
  if (is_float) {
    double d = 0;
    auto [ptr, ec] = std::from_chars(c.p, end, d);
    if (ec != std::errc()) return Status::ParseError("bad JSON number");
    return Value::Float(d);
  }
  int64_t i = 0;
  auto [ptr, ec] = std::from_chars(c.p, end, i);
  if (ec != std::errc()) return Status::ParseError("bad JSON number");
  return Value::Int(i);
}

// ---------------------------------------------------------------------------
// Structural index construction
// ---------------------------------------------------------------------------

Status JsonPlugin::Open() {
  if (opened_) return Status::OK();
  PROTEUS_ASSIGN_OR_RETURN(file_, MmapFile::Open(info_.path));
  PROTEUS_RETURN_NOT_OK(BuildIndex());
  opened_ = true;
  return Status::OK();
}

Status JsonPlugin::BuildIndex() {
  const char* base = file_.data();
  const char* end = base + file_.size();

  // Per-object scratch, reused.
  std::vector<uint64_t> path_hashes;     // doc-order path hash per token
  std::vector<uint64_t> first_sequence;  // object 0's path sequence
  bool schemas_identical = true;

  // Recursive object walker: records tokens for record fields (recursing into
  // nested objects) and element spans for arrays.
  struct Walker {
    JsonPlugin* self;
    const char* obj_base;
    std::vector<uint64_t>* path_hashes;

    Status WalkObject(JsonCursor* c, const std::string& prefix) {
      PROTEUS_RETURN_NOT_OK(c->Expect('{'));
      c->SkipWs();
      if (!c->Eof() && c->Peek() == '}') {
        ++c->p;
        return Status::OK();
      }
      while (true) {
        std::string_view name;
        PROTEUS_RETURN_NOT_OK(c->ParseName(&name));
        PROTEUS_RETURN_NOT_OK(c->Expect(':'));
        const char *vs, *ve;
        JsonTokenType vt;
        PROTEUS_RETURN_NOT_OK(c->SkipValue(&vs, &ve, &vt));
        std::string path = prefix.empty() ? std::string(name) : prefix + "." + std::string(name);

        JsonToken tok;
        tok.start = static_cast<uint32_t>(vs - obj_base);
        tok.end = static_cast<uint32_t>(ve - obj_base);
        tok.type = vt;
        if (vt == JsonTokenType::kArray) {
          JsonArrayInfo ai;
          ai.token_idx = static_cast<uint32_t>(self->tokens_.size());
          ai.elem_begin = static_cast<uint32_t>(self->elems_.size());
          JsonCursor ac{vs, ve};
          PROTEUS_RETURN_NOT_OK(ac.Expect('['));
          ac.SkipWs();
          uint32_t count = 0;
          if (!ac.Eof() && ac.Peek() != ']') {
            while (true) {
              const char *es, *ee;
              JsonTokenType et;
              PROTEUS_RETURN_NOT_OK(ac.SkipValue(&es, &ee, &et));
              self->elems_.push_back({static_cast<uint32_t>(es - obj_base),
                                      static_cast<uint32_t>(ee - obj_base), et});
              ++count;
              ac.SkipWs();
              if (!ac.Eof() && ac.Peek() == ',') {
                ++ac.p;
                continue;
              }
              break;
            }
          }
          ai.elem_count = count;
          self->arrays_.push_back(ai);
        }
        self->tokens_.push_back(tok);
        path_hashes->push_back(HashString(path));

        if (vt == JsonTokenType::kObject) {
          // Register nested record fields too (Fig 4: c.d.d1 is in Level 0).
          JsonCursor nested{vs, ve};
          PROTEUS_RETURN_NOT_OK(WalkObject(&nested, path));
        }

        c->SkipWs();
        if (!c->Eof() && c->Peek() == ',') {
          ++c->p;
          continue;
        }
        break;
      }
      return c->Expect('}');
    }
  };

  const char* p = base;
  while (p < end) {
    // One object per line.
    const char* line_end = static_cast<const char*>(memchr(p, '\n', end - p));
    if (line_end == nullptr) line_end = end;
    if (line_end == p) {  // blank line
      p = line_end + 1;
      continue;
    }
    obj_offsets_.push_back(static_cast<uint64_t>(p - base));
    tok_begin_.push_back(static_cast<uint32_t>(tokens_.size()));

    path_hashes.clear();
    Walker w{this, p, &path_hashes};
    JsonCursor c{p, line_end};
    Status st = w.WalkObject(&c, "");
    if (!st.ok()) {
      return Status::ParseError("object " + std::to_string(obj_offsets_.size() - 1) + " in " +
                                info_.path + ": " + st.message());
    }

    if (obj_offsets_.size() == 1) {
      first_sequence = path_hashes;
    } else if (schemas_identical && path_hashes != first_sequence) {
      schemas_identical = false;
    }

    // Level 0 for this object: sorted (hash, local idx).
    uint32_t slice_begin = tok_begin_.back();
    level0_begin_.push_back(static_cast<uint32_t>(level0_.size()));
    for (uint32_t k = 0; k < path_hashes.size(); ++k) {
      level0_.emplace_back(path_hashes[k], slice_begin + k);
    }
    auto l0b = level0_.begin() + level0_begin_.back();
    std::sort(l0b, level0_.end());

    p = line_end < end ? line_end + 1 : end;
  }
  num_objects_ = obj_offsets_.size();
  tok_begin_.push_back(static_cast<uint32_t>(tokens_.size()));
  level0_begin_.push_back(static_cast<uint32_t>(level0_.size()));

  // Release growth slack: the index is immutable from here on.
  tokens_.shrink_to_fit();
  elems_.shrink_to_fit();
  arrays_.shrink_to_fit();
  level0_.shrink_to_fit();
  obj_offsets_.shrink_to_fit();

  if (schemas_identical && num_objects_ > 0 && info_.json.exploit_fixed_schema) {
    // Machine-generated data: drop Level 0, lookups become deterministic.
    fixed_schema_ = true;
    for (uint32_t k = 0; k < first_sequence.size(); ++k) {
      fixed_slots_.emplace(first_sequence[k], k);
    }
    level0_.clear();
    level0_.shrink_to_fit();
    level0_begin_.clear();
    level0_begin_.shrink_to_fit();
  }
  return Status::OK();
}

size_t JsonPlugin::StructuralIndexBytes() const {
  return tokens_.capacity() * sizeof(JsonToken) + tok_begin_.capacity() * sizeof(uint32_t) +
         elems_.capacity() * sizeof(JsonElem) + arrays_.capacity() * sizeof(JsonArrayInfo) +
         level0_.capacity() * sizeof(std::pair<uint64_t, uint32_t>) +
         level0_begin_.capacity() * sizeof(uint32_t) +
         obj_offsets_.capacity() * sizeof(uint64_t) +
         fixed_slots_.size() * (sizeof(uint64_t) + sizeof(uint32_t) + 16);
}

std::vector<ScanRange> JsonPlugin::Split(uint64_t max_morsels) const {
  return SplitByByteOffsets(obj_offsets_, num_objects_, file_.size(), max_morsels);
}

// ---------------------------------------------------------------------------
// Lookups
// ---------------------------------------------------------------------------

const JsonToken* JsonPlugin::FindTokenByHash(uint64_t oid, uint64_t path_hash) const {
  if (fixed_schema_) {
    auto it = fixed_slots_.find(path_hash);
    if (it == fixed_slots_.end()) return nullptr;
    return &tokens_[tok_begin_[oid] + it->second];
  }
  auto begin = level0_.begin() + level0_begin_[oid];
  auto end = level0_.begin() + level0_begin_[oid + 1];
  auto it = std::lower_bound(begin, end, std::make_pair(path_hash, uint32_t(0)));
  if (it == end || it->first != path_hash) return nullptr;
  return &tokens_[it->second];
}

Result<const JsonToken*> JsonPlugin::FindToken(uint64_t oid, const FieldPath& path) const {
  const JsonToken* tok = FindTokenByHash(oid, HashString(DottedPath(path)));
  if (tok == nullptr) {
    return Status::NotFound("object " + std::to_string(oid) + " has no field '" +
                            DottedPath(path) + "'");
  }
  return tok;
}

Result<Value> JsonPlugin::SpanToValue(const char* s, const char* e, JsonTokenType type) const {
  GlobalCounters().raw_field_accesses++;
  switch (type) {
    case JsonTokenType::kNull:
      return Value::Null();
    case JsonTokenType::kBool:
      return Value::Boolean(*s == 't');
    case JsonTokenType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(s, e, v);
      if (ec != std::errc()) return Status::ParseError("bad int token");
      return Value::Int(v);
    }
    case JsonTokenType::kFloat: {
      double v = 0;
      auto [ptr, ec] = std::from_chars(s, e, v);
      if (ec != std::errc()) return Status::ParseError("bad float token");
      return Value::Float(v);
    }
    case JsonTokenType::kString:
      return Value::Str(UnescapeJsonString(s + 1, e - 1));
    case JsonTokenType::kObject:
    case JsonTokenType::kArray:
      return ParseJsonValue(s, e);
  }
  return Status::Internal("bad token type");
}

Result<Value> JsonPlugin::TokenToValue(uint64_t oid, const JsonToken& tok) const {
  const char* ob = ObjectBase(oid);
  return SpanToValue(ob + tok.start, ob + tok.end, tok.type);
}

Result<Value> JsonPlugin::ReadValue(uint64_t oid, const FieldPath& path) {
  PROTEUS_ASSIGN_OR_RETURN(const JsonToken* tok, FindToken(oid, path));
  return TokenToValue(oid, *tok);
}

// ---------------------------------------------------------------------------
// Unnest
// ---------------------------------------------------------------------------

namespace {

/// Lazy element cursor: parses one element per GetNext() call — the unnest
/// code path converts values only when consumed (paper §5.2: lazy plug-ins).
class JsonElemUnnestCursorImpl : public UnnestCursor {
 public:
  JsonElemUnnestCursorImpl(const char* obj_base, const std::vector<JsonElem>* elems,
                           uint32_t begin, uint32_t count)
      : obj_base_(obj_base), elems_(elems), pos_(begin), end_(begin + count) {}

  bool HasNext() override { return pos_ < end_; }

  Result<Value> GetNext() override {
    const JsonElem& e = (*elems_)[pos_++];
    GlobalCounters().raw_field_accesses++;
    return ParseJsonValue(obj_base_ + e.start, obj_base_ + e.end);
  }

 private:
  const char* obj_base_;
  const std::vector<JsonElem>* elems_;
  uint32_t pos_;
  uint32_t end_;
};

}  // namespace

const JsonArrayInfo* JsonPlugin::FindArrayInfo(const JsonToken* tok) const {
  auto idx = static_cast<uint32_t>(tok - tokens_.data());
  auto it = std::lower_bound(arrays_.begin(), arrays_.end(), idx,
                             [](const JsonArrayInfo& a, uint32_t i) { return a.token_idx < i; });
  if (it == arrays_.end() || it->token_idx != idx) return nullptr;
  return &*it;
}

Result<std::unique_ptr<UnnestCursor>> JsonPlugin::UnnestInit(uint64_t oid,
                                                             const FieldPath& path) {
  PROTEUS_ASSIGN_OR_RETURN(const JsonToken* tok, FindToken(oid, path));
  if (tok->type == JsonTokenType::kNull) {
    return std::unique_ptr<UnnestCursor>(new ValueListUnnestCursor({}));
  }
  if (tok->type != JsonTokenType::kArray) {
    return Status::TypeError("field '" + DottedPath(path) + "' is not an array");
  }
  const JsonArrayInfo* ai = FindArrayInfo(tok);
  if (ai == nullptr) return Status::Internal("array token without element info");
  return std::unique_ptr<UnnestCursor>(new JsonElemUnnestCursorImpl(
      ObjectBase(oid), &elems_, ai->elem_begin, ai->elem_count));
}

}  // namespace proteus
