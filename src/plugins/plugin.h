// Input plug-in API (paper §5.2, Table 2).
//
// Each supported file format has an input plug-in that encapsulates format
// heterogeneity: it "generates" the scan access path, serves lazy field reads
// addressed by OID, iterates nested collections for the Unnest operator, and
// supplies statistics plus cost formulas to the optimizer.
//
// Mapping to the paper's Table 2 API:
//   generate()        -> Open() + the scan loop over [0, NumRecords())
//   readValue()       -> ReadValue(oid, path) for a primitive leaf
//   readPath()        -> ReadValue(oid, path) for nested paths / ReadRecord()
//   hashValue()       -> HashValue(oid, path)
//   flushValue()      -> FlushValue(oid, path, out)
//   unnestInit()      -> UnnestInit(oid, path)
//   unnestHasNext()   -> UnnestCursor::HasNext()
//   unnestGetNext()   -> UnnestCursor::GetNext()
//
// The JIT engine additionally specializes scans per format (direct loads for
// binary data, structural-index helpers for CSV/JSON); see src/jit/.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace proteus {

/// A dotted access path into a record, e.g. {"origin", "country"}.
using FieldPath = std::vector<std::string>;

std::string DottedPath(const FieldPath& path);
FieldPath SplitPath(const std::string& dotted);

/// Iterates the elements of one nested collection of one record
/// (unnestInit / unnestHasNext / unnestGetNext).
class UnnestCursor {
 public:
  virtual ~UnnestCursor() = default;
  virtual bool HasNext() = 0;
  virtual Result<Value> GetNext() = 0;
};

/// A half-open OID range [begin, end) — one morsel of a splittable scan.
struct ScanRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t size() const { return end - begin; }
};

class InputPlugin {
 public:
  virtual ~InputPlugin() = default;

  virtual const DatasetInfo& info() const = 0;
  virtual const char* name() const = 0;

  /// Prepares the dataset for scanning; builds the structural index on the
  /// first (cold) access for raw formats. Idempotent.
  virtual Status Open() = 0;

  /// Number of records / "tuples"; valid after Open(). OIDs are [0, n).
  virtual uint64_t NumRecords() const = 0;

  /// Lazily reads a (possibly nested) field of record `oid` and converts it
  /// to a boxed value. Raw formats count a raw_field_access.
  virtual Result<Value> ReadValue(uint64_t oid, const FieldPath& path) = 0;

  /// Reads record `oid` restricted to `fields` (the pushed-down projection
  /// set). Nested paths reconstruct the enclosing sub-records.
  virtual Result<Value> ReadRecord(uint64_t oid, const std::vector<FieldPath>& fields);

  /// Opens a cursor over the nested collection at `path` of record `oid`.
  virtual Result<std::unique_ptr<UnnestCursor>> UnnestInit(uint64_t oid,
                                                           const FieldPath& path);

  /// Hash of a field value, for join/group keys.
  virtual Result<uint64_t> HashValue(uint64_t oid, const FieldPath& path);

  /// Appends the textual form of a field value to `out` (result flushing).
  virtual Status FlushValue(uint64_t oid, const FieldPath& path, std::string* out);

  /// Collects dataset statistics into `store` (cardinality, min/max per
  /// numeric leaf). Called on the cold access / by the idle daemon.
  virtual Status CollectStats(StatsStore* store);

  /// Cost formula inputs used by the optimizer (paper: each plug-in provides
  /// costing for its data source). Units are abstract "work per tuple".
  virtual double CostPerTuple() const = 0;
  virtual double CostPerField() const = 0;

  /// Bytes of auxiliary structural index memory (0 for binary formats).
  virtual size_t StructuralIndexBytes() const { return 0; }

  /// Splits [0, NumRecords()) into at most `max_morsels` contiguous ranges
  /// for morsel-driven parallel scans. Raw formats override this to balance
  /// *bytes* per morsel using their structural index (JSON objects and CSV
  /// rows vary in width); the default splits record counts evenly. Must be
  /// deterministic for a given dataset — parallel results are required to be
  /// identical across thread counts, so morsel boundaries may depend only on
  /// the data, never on the worker count. Valid after Open().
  virtual std::vector<ScanRange> Split(uint64_t max_morsels) const;
};

/// Even record-count split of [0, n) into at most `max_morsels` contiguous
/// ranges, the remainder spread over the first ranges. The default
/// InputPlugin::Split and the cache-block split share this so morsel
/// boundaries stay identical across code paths.
std::vector<ScanRange> EvenSplit(uint64_t n, uint64_t max_morsels);

/// Byte-balanced morsel split over a structural index: `starts[i]` is the
/// byte offset of record i (`starts` holds at least `n` entries), `end_byte`
/// the end of the last record. Returns at most `max_morsels` OID ranges
/// cut so each covers roughly equal bytes — raw records vary in width, and
/// balancing bytes instead of record counts is what keeps morsel run times
/// even. Shared by the JSON and CSV plug-ins.
std::vector<ScanRange> SplitByByteOffsets(const std::vector<uint64_t>& starts, uint64_t n,
                                          uint64_t end_byte, uint64_t max_morsels);

/// Creates the plug-in matching `info.format`. Adding a format = adding a
/// case here plus an InputPlugin subclass (paper: "adding a plug-in suffices
/// to support a new data format").
Result<std::unique_ptr<InputPlugin>> CreateInputPlugin(const DatasetInfo& info);

/// Keeps plug-ins (and their structural indexes) alive across queries.
/// GetOrOpen/Evict are mutex-guarded so pool workers can look up plug-ins
/// concurrently; the parallel executor still pre-opens every scanned dataset
/// before fanning out, keeping index construction (and its stats pass) on
/// the submitting thread.
class PluginRegistry {
 public:
  /// Returns the opened plug-in for `info.name`, creating it on first use
  /// (the cold access, where index construction and stats gathering happen).
  Result<InputPlugin*> GetOrOpen(const DatasetInfo& info, StatsStore* stats);

  /// Drops the plug-in (e.g. after an append invalidates its index).
  void Evict(const std::string& dataset);

 private:
  Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<InputPlugin>> open_ GUARDED_BY(mu_);
};

/// Shared default implementation: builds an UnnestCursor over a ValueList.
class ValueListUnnestCursor : public UnnestCursor {
 public:
  explicit ValueListUnnestCursor(ValueList values) : values_(std::move(values)) {}
  bool HasNext() override { return pos_ < values_.size(); }
  Result<Value> GetNext() override { return values_[pos_++]; }

 private:
  ValueList values_;
  size_t pos_ = 0;
};

}  // namespace proteus
