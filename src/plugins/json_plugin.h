// JSON input plug-in with a two-level structural index (paper §5.2, Fig 4).
//
// The dataset is newline-delimited JSON (one object per line, matching the
// paper's multi-object files). On first access the plug-in validates the
// input and builds, per object:
//
//   Level 1 — tokens: the byte span and type of every record field value
//     reachable without crossing an array (nested record fields get their own
//     tokens, e.g. `origin.country`), plus one token per array field. Array
//     *element* spans are stored in a side table referenced by the array
//     token, since the Unnest operator applies the same action to every
//     element and needs no name lookups (paper: array contents are omitted
//     from Level 0).
//
//   Level 0 — an associative structure mapping dotted field paths to their
//     Level-1 token, making lookups deterministic despite arbitrary per-
//     object field order. Implemented as a per-object (path-hash, token)
//     array sorted for binary search.
//
// Specializing per dataset contents: while building the index the plug-in
// checks whether every object yields the identical path sequence (machine-
// generated data). If so, Level 0 is dropped entirely and lookups become a
// single dataset-level map from path to token slot (paper: "drop Level 0
// because the lookup process is now deterministic").
#pragma once

#include <unordered_map>

#include "src/common/mmap_file.h"
#include "src/plugins/plugin.h"

namespace proteus {

enum class JsonTokenType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kFloat,
  kString,
  kObject,
  kArray,
};

/// A Level-1 entry: byte span (relative to the object start) and type of one
/// field value. Kept to 12 bytes — index compactness is a reported result
/// (the paper's indexes are ~15-25% of the JSON file).
struct JsonToken {
  uint32_t start = 0;
  uint32_t end = 0;
  JsonTokenType type = JsonTokenType::kNull;
};

/// Array bookkeeping for the few tokens that are arrays: global token index
/// -> element span range in the elems table. Stored sorted (append order).
struct JsonArrayInfo {
  uint32_t token_idx = 0;   ///< global index into the token table
  uint32_t elem_begin = 0;  ///< first element in the elems table
  uint32_t elem_count = 0;
};

/// An array element span (start/end relative to the object start).
struct JsonElem {
  uint32_t start = 0;
  uint32_t end = 0;
  JsonTokenType type = JsonTokenType::kNull;
};

class JsonPlugin : public InputPlugin {
 public:
  explicit JsonPlugin(DatasetInfo info) : info_(std::move(info)) {}

  const DatasetInfo& info() const override { return info_; }
  const char* name() const override { return "json"; }
  Status Open() override;
  uint64_t NumRecords() const override { return num_objects_; }
  Result<Value> ReadValue(uint64_t oid, const FieldPath& path) override;
  Result<std::unique_ptr<UnnestCursor>> UnnestInit(uint64_t oid,
                                                   const FieldPath& path) override;
  double CostPerTuple() const override { return 8.0; }   // verbose format navigation
  double CostPerField() const override { return 10.0; }  // conversion from text
  size_t StructuralIndexBytes() const override;
  /// Morsels balanced by object bytes via the structural index's offsets
  /// (JSON objects vary widely in width; see SplitByByteOffsets).
  std::vector<ScanRange> Split(uint64_t max_morsels) const override;

  /// True when Level 0 was dropped in favour of deterministic slots.
  bool fixed_schema() const { return fixed_schema_; }

  /// Finds the Level-1 token for `path` in object `oid` (JIT helper entry).
  Result<const JsonToken*> FindToken(uint64_t oid, const FieldPath& path) const;
  const JsonToken* FindTokenByHash(uint64_t oid, uint64_t path_hash) const;
  /// Element range of an array token (binary search in the side table).
  const JsonArrayInfo* FindArrayInfo(const JsonToken* tok) const;

  /// Converts a token/element span of object `oid` to a boxed Value.
  Result<Value> TokenToValue(uint64_t oid, const JsonToken& tok) const;

  const MmapFile& file() const { return file_; }
  const char* ObjectBase(uint64_t oid) const { return file_.data() + obj_offsets_[oid]; }
  const std::vector<JsonElem>& elems() const { return elems_; }

 private:
  Status BuildIndex();
  Result<Value> SpanToValue(const char* s, const char* e, JsonTokenType type) const;

  DatasetInfo info_;
  MmapFile file_;
  bool opened_ = false;

  uint64_t num_objects_ = 0;
  std::vector<uint64_t> obj_offsets_;

  // Level 1 (flattened across objects; per-object slice via tok_begin_).
  std::vector<JsonToken> tokens_;
  std::vector<uint32_t> tok_begin_;
  std::vector<JsonElem> elems_;
  std::vector<JsonArrayInfo> arrays_;  // sorted by token_idx

  // Level 0, variable-schema mode: per-object sorted (hash, local idx).
  std::vector<std::pair<uint64_t, uint32_t>> level0_;
  std::vector<uint32_t> level0_begin_;

  // Fixed-schema mode: dataset-level path-hash -> slot.
  bool fixed_schema_ = false;
  std::unordered_map<uint64_t, uint32_t> fixed_slots_;

  friend class JsonElemUnnestCursor;
};

/// Parses a standalone JSON value (used for array elements and whole nested
/// objects). Exposed for tests.
Result<Value> ParseJsonValue(const char* begin, const char* end);

}  // namespace proteus
