#include "src/plugins/plugin.h"

#include <algorithm>
#include <sstream>

namespace proteus {

std::string DottedPath(const FieldPath& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i) out += '.';
    out += path[i];
  }
  return out;
}

FieldPath SplitPath(const std::string& dotted) {
  FieldPath out;
  std::string cur;
  for (char c : dotted) {
    if (c == '.') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

Result<Value> InputPlugin::ReadRecord(uint64_t oid, const std::vector<FieldPath>& fields) {
  // Group requested paths by head field, reconstructing nested sub-records so
  // that Proj chains evaluate naturally over the result.
  std::vector<std::string> names;
  std::vector<Value> values;
  // Preserve request order but merge duplicate heads.
  std::vector<std::pair<std::string, std::vector<FieldPath>>> groups;
  for (const auto& p : fields) {
    if (p.empty()) continue;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == p[0]; });
    if (it == groups.end()) {
      groups.push_back({p[0], {}});
      it = groups.end() - 1;
    }
    if (p.size() > 1) it->second.push_back(FieldPath(p.begin() + 1, p.end()));
  }
  for (auto& [head, subpaths] : groups) {
    if (subpaths.empty()) {
      PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValue(oid, {head}));
      names.push_back(head);
      values.push_back(std::move(v));
    } else {
      // Nested reconstruction: read each leaf and assemble a sub-record.
      std::vector<std::string> sub_names;
      std::vector<Value> sub_values;
      for (auto& sp : subpaths) {
        FieldPath full{head};
        full.insert(full.end(), sp.begin(), sp.end());
        PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValue(oid, full));
        // Re-nest one level at a time.
        for (size_t k = sp.size(); k-- > 1;) {
          v = Value::MakeRecord({sp[k]}, {std::move(v)});
        }
        sub_names.push_back(sp[0]);
        sub_values.push_back(std::move(v));
      }
      names.push_back(head);
      values.push_back(Value::MakeRecord(std::move(sub_names), std::move(sub_values)));
    }
  }
  return Value::MakeRecord(std::move(names), std::move(values));
}

Result<std::unique_ptr<UnnestCursor>> InputPlugin::UnnestInit(uint64_t oid,
                                                              const FieldPath& path) {
  PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValue(oid, path));
  if (v.is_null()) {
    return std::unique_ptr<UnnestCursor>(new ValueListUnnestCursor({}));
  }
  if (!v.is_list()) {
    return Status::TypeError("unnest path " + DottedPath(path) + " is not a collection");
  }
  return std::unique_ptr<UnnestCursor>(new ValueListUnnestCursor(v.list()));
}

Result<uint64_t> InputPlugin::HashValue(uint64_t oid, const FieldPath& path) {
  PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValue(oid, path));
  return v.Hash();
}

Status InputPlugin::FlushValue(uint64_t oid, const FieldPath& path, std::string* out) {
  PROTEUS_ASSIGN_OR_RETURN(Value v, ReadValue(oid, path));
  out->append(v.ToString());
  return Status::OK();
}

namespace {

/// Recursively enumerates numeric leaf paths of a record type, skipping
/// collection contents (array stats are the unnest operator's concern).
void NumericLeafPaths(const Type& rec, FieldPath* prefix, std::vector<FieldPath>* out) {
  for (const auto& f : rec.fields()) {
    prefix->push_back(f.name);
    if (f.type->is_numeric()) {
      out->push_back(*prefix);
    } else if (f.type->kind() == TypeKind::kRecord) {
      NumericLeafPaths(*f.type, prefix, out);
    }
    prefix->pop_back();
  }
}

}  // namespace

Status InputPlugin::CollectStats(StatsStore* store) {
  PROTEUS_RETURN_NOT_OK(Open());
  // Build locally, publish atomically: a concurrent query's optimizer must
  // never observe a half-filled DatasetStats.
  DatasetStats ds;
  ds.cardinality = NumRecords();
  std::vector<FieldPath> paths;
  FieldPath prefix;
  NumericLeafPaths(info().record_type(), &prefix, &paths);
  for (const auto& p : paths) {
    ColumnStats& cs = ds.columns[DottedPath(p)];
    cs.valid = false;
    bool first = true;
    NdvSketch sketch;
    for (uint64_t oid = 0; oid < NumRecords(); ++oid) {
      auto v = ReadValue(oid, p);
      if (!v.ok()) {
        // Optional JSON fields: an absent leaf is a null, not an error —
        // the same leniency the scan cursors apply.
        if (v.status().code() == StatusCode::kNotFound) continue;
        return v.status();
      }
      if (v->is_null()) continue;
      double d = v->AsFloat();
      if (first || d < cs.min) cs.min = d;
      if (first || d > cs.max) cs.max = d;
      first = false;
      sketch.Add(v->Hash());
    }
    cs.valid = !first;
    cs.ndv = sketch.Estimate();
  }
  ds.valid = true;
  store->Publish(info().name, std::move(ds));
  return Status::OK();
}

std::vector<ScanRange> EvenSplit(uint64_t n, uint64_t max_morsels) {
  if (max_morsels == 0) max_morsels = 1;
  const uint64_t morsels = std::min<uint64_t>(max_morsels, n == 0 ? 1 : n);
  std::vector<ScanRange> out;
  out.reserve(morsels);
  uint64_t begin = 0;
  for (uint64_t m = 0; m < morsels; ++m) {
    // Even split with the remainder spread over the first ranges.
    uint64_t end = begin + n / morsels + (m < n % morsels ? 1 : 0);
    out.push_back({begin, end});
    begin = end;
  }
  return out;
}

std::vector<ScanRange> InputPlugin::Split(uint64_t max_morsels) const {
  return EvenSplit(NumRecords(), max_morsels);
}

std::vector<ScanRange> SplitByByteOffsets(const std::vector<uint64_t>& starts, uint64_t n,
                                          uint64_t end_byte, uint64_t max_morsels) {
  std::vector<ScanRange> out;
  if (n == 0 || max_morsels == 0) {
    out.push_back({0, n});
    return out;
  }
  const uint64_t total = end_byte - starts[0];
  const uint64_t target = std::max<uint64_t>(1, total / std::min(max_morsels, n));
  uint64_t begin = 0;
  uint64_t cut_bytes = starts[0] + target;
  for (uint64_t i = 1; i < n; ++i) {
    if (starts[i] >= cut_bytes && out.size() + 1 < max_morsels) {
      out.push_back({begin, i});
      begin = i;
      cut_bytes = starts[i] + target;
    }
  }
  out.push_back({begin, n});
  return out;
}

Result<InputPlugin*> PluginRegistry::GetOrOpen(const DatasetInfo& info, StatsStore* stats) {
  MutexLock lk(mu_);
  auto it = open_.find(info.name);
  if (it != open_.end()) return it->second.get();
  PROTEUS_ASSIGN_OR_RETURN(std::unique_ptr<InputPlugin> plugin, CreateInputPlugin(info));
  PROTEUS_RETURN_NOT_OK(plugin->Open());
  // Cold access: gather statistics while I/O is warm (paper §5.2).
  if (stats != nullptr && stats->Find(info.name) == nullptr) {
    PROTEUS_RETURN_NOT_OK(plugin->CollectStats(stats));
  }
  InputPlugin* raw = plugin.get();
  open_.emplace(info.name, std::move(plugin));
  return raw;
}

void PluginRegistry::Evict(const std::string& dataset) {
  MutexLock lk(mu_);
  open_.erase(dataset);
}

}  // namespace proteus
