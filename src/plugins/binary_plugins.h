// Input plug-ins for the relational binary formats (row- and column-
// oriented). These are the cheapest access paths: field reads are direct
// memory loads at computed positions, with no parsing and no structural
// index (paper §5.2 "for binary relational data, an input plug-in generates
// code reading the memory positions of the required data fields").
#pragma once

#include <optional>

#include "src/plugins/plugin.h"
#include "src/storage/bincol_format.h"
#include "src/storage/binrow_format.h"

namespace proteus {

class BinColPlugin : public InputPlugin {
 public:
  explicit BinColPlugin(DatasetInfo info) : info_(std::move(info)) {}

  const DatasetInfo& info() const override { return info_; }
  const char* name() const override { return "bincol"; }
  Status Open() override;
  uint64_t NumRecords() const override { return reader_ ? reader_->num_rows() : 0; }
  Result<Value> ReadValue(uint64_t oid, const FieldPath& path) override;
  Status CollectStats(StatsStore* store) override;
  double CostPerTuple() const override { return 1.0; }
  double CostPerField() const override { return 1.0; }
  /// Rows are fixed width; morsel boundaries snap to 1024-row blocks so
  /// workers touch disjoint, prefetch-friendly column segments.
  std::vector<ScanRange> Split(uint64_t max_morsels) const override;

  /// Direct reader access for the JIT scan specialization.
  const BinColReader* reader() const { return reader_ ? &*reader_ : nullptr; }

 private:
  DatasetInfo info_;
  std::optional<BinColReader> reader_;
};

class BinRowPlugin : public InputPlugin {
 public:
  explicit BinRowPlugin(DatasetInfo info) : info_(std::move(info)) {}

  const DatasetInfo& info() const override { return info_; }
  const char* name() const override { return "binrow"; }
  Status Open() override;
  uint64_t NumRecords() const override { return reader_ ? reader_->num_rows() : 0; }
  Result<Value> ReadValue(uint64_t oid, const FieldPath& path) override;
  double CostPerTuple() const override { return 1.2; }  // wider rows pollute cache lines
  double CostPerField() const override { return 1.0; }
  /// Same block-aligned split as BinColPlugin (fixed-width rows).
  std::vector<ScanRange> Split(uint64_t max_morsels) const override;

  const BinRowReader* reader() const { return reader_ ? &*reader_ : nullptr; }

 private:
  DatasetInfo info_;
  std::optional<BinRowReader> reader_;
};

}  // namespace proteus
