// CSV input plug-in with positional structural index (paper §5.2).
//
// The index stores, for each row, the byte positions of every Nth field
// (N = CSVOptions::index_stride). A field read locates the closest indexed
// position at or before the wanted field and scans forward from there,
// instead of re-parsing the row from its start. As in NoDB/RAW, this trades
// a small amount of memory for large savings on repeated selective access.
//
// Specialization per dataset contents: if all rows turn out to be
// fixed-length with identical field offsets, the plug-in drops the per-row
// samples entirely and computes positions deterministically
// (paper: "if a CSV file contains fixed-length entries, Proteus
// deterministically computes field positions").
#pragma once

#include <optional>

#include "src/common/mmap_file.h"
#include "src/plugins/plugin.h"

namespace proteus {

class CsvPlugin : public InputPlugin {
 public:
  explicit CsvPlugin(DatasetInfo info) : info_(std::move(info)) {}

  const DatasetInfo& info() const override { return info_; }
  const char* name() const override { return "csv"; }
  Status Open() override;
  uint64_t NumRecords() const override { return num_rows_; }
  Result<Value> ReadValue(uint64_t oid, const FieldPath& path) override;
  double CostPerTuple() const override { return 4.0; }   // parsing + navigation
  double CostPerField() const override { return 6.0; }   // text-to-binary conversion
  size_t StructuralIndexBytes() const override;
  /// Morsels balanced by row bytes via the positional index; fixed-width
  /// files (per-row offsets dropped) use the even record split.
  std::vector<ScanRange> Split(uint64_t max_morsels) const override;

  /// True when the fixed-length fast path replaced the per-row samples.
  bool fixed_width() const { return fixed_width_; }

  /// Returns the raw text of field `col` in row `oid` (exposed for the JIT
  /// runtime helpers, which are this plug-in's "generated" access code).
  std::string_view FieldText(uint64_t oid, uint32_t col) const;

  int ColumnIndex(const std::string& name) const;
  TypeKind ColumnType(uint32_t col) const { return col_types_[col]; }
  const MmapFile& file() const { return file_; }

 private:
  Status BuildIndex();

  DatasetInfo info_;
  MmapFile file_;
  bool opened_ = false;

  std::vector<std::string> col_names_;
  std::vector<TypeKind> col_types_;

  uint64_t num_rows_ = 0;
  std::vector<uint64_t> row_offsets_;   // + sentinel end offset
  int stride_ = 10;
  uint32_t samples_per_row_ = 0;
  std::vector<uint16_t> samples_;       // relative field-start offsets, every Nth field

  bool fixed_width_ = false;
  uint64_t fixed_row_width_ = 0;        // including newline
  uint64_t first_row_offset_ = 0;
  std::vector<uint16_t> fixed_field_off_;  // per column, relative to row start
};

}  // namespace proteus
