#include "src/plugins/binary_plugins.h"

namespace proteus {

namespace {

Status CheckFlatPath(const FieldPath& path, const char* fmt) {
  if (path.size() != 1) {
    return Status::InvalidArgument(std::string(fmt) + " stores flat records; bad path " +
                                   DottedPath(path));
  }
  return Status::OK();
}

/// Distributes whole `block`-row blocks evenly over the morsels (the final
/// morsel absorbs the partial tail block), so no two morsels share a
/// partially-covered block of the fixed-width layout and no morsel is empty
/// while blocks remain.
std::vector<ScanRange> BlockAlignedSplit(uint64_t n, uint64_t max_morsels, uint64_t block) {
  const uint64_t blocks = n == 0 ? 1 : (n + block - 1) / block;
  // EvenSplit over whole blocks, scaled back to rows (the final morsel's
  // partial tail block clamps to n) — one home for the split arithmetic.
  std::vector<ScanRange> out = EvenSplit(blocks, max_morsels);
  for (auto& r : out) {
    r.begin = std::min(n, r.begin * block);
    r.end = std::min(n, r.end * block);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// BinColPlugin
// ---------------------------------------------------------------------------

Status BinColPlugin::Open() {
  if (reader_) return Status::OK();
  PROTEUS_ASSIGN_OR_RETURN(BinColReader r, BinColReader::Open(info_.path));
  reader_ = std::move(r);
  return Status::OK();
}

Result<Value> BinColPlugin::ReadValue(uint64_t oid, const FieldPath& path) {
  PROTEUS_RETURN_NOT_OK(CheckFlatPath(path, "bincol"));
  int j = reader_->ColumnIndex(path[0]);
  if (j < 0) return Status::NotFound("bincol has no column '" + path[0] + "'");
  auto col = static_cast<uint32_t>(j);
  switch (reader_->col_type(col)) {
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return Value::Int(reader_->ReadInt(oid, col));
    case TypeKind::kFloat64:
      return Value::Float(reader_->ReadFloat(oid, col));
    case TypeKind::kBool:
      return Value::Boolean(reader_->ReadBool(oid, col));
    case TypeKind::kString:
      return Value::Str(std::string(reader_->ReadString(oid, col)));
    default:
      return Status::Internal("unexpected bincol type");
  }
}

Status BinColPlugin::CollectStats(StatsStore* store) {
  PROTEUS_RETURN_NOT_OK(Open());
  DatasetStats ds;
  ds.cardinality = reader_->num_rows();
  for (uint32_t j = 0; j < reader_->num_cols(); ++j) {
    TypeKind k = reader_->col_type(j);
    if (k != TypeKind::kInt64 && k != TypeKind::kDate && k != TypeKind::kFloat64) continue;
    ColumnStats& cs = ds.columns[reader_->col_name(j)];
    uint64_t n = reader_->num_rows();
    if (n == 0) continue;
    double mn = 0, mx = 0;
    NdvSketch sketch;
    if (k == TypeKind::kFloat64) {
      const double* col = reader_->FloatColumn(j);
      mn = mx = col[0];
      sketch.Add(Value::Float(col[0]).Hash());
      for (uint64_t i = 1; i < n; ++i) {
        if (col[i] < mn) mn = col[i];
        if (col[i] > mx) mx = col[i];
        sketch.Add(Value::Float(col[i]).Hash());
      }
    } else {
      const int64_t* col = reader_->IntColumn(j);
      mn = mx = static_cast<double>(col[0]);
      sketch.Add(Value::Int(col[0]).Hash());
      for (uint64_t i = 1; i < n; ++i) {
        double d = static_cast<double>(col[i]);
        if (d < mn) mn = d;
        if (d > mx) mx = d;
        sketch.Add(Value::Int(col[i]).Hash());
      }
    }
    cs.min = mn;
    cs.max = mx;
    cs.ndv = sketch.Estimate();
    cs.valid = true;
  }
  ds.valid = true;
  store->Publish(info_.name, std::move(ds));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// BinRowPlugin
// ---------------------------------------------------------------------------

Status BinRowPlugin::Open() {
  if (reader_) return Status::OK();
  PROTEUS_ASSIGN_OR_RETURN(BinRowReader r, BinRowReader::Open(info_.path));
  reader_ = std::move(r);
  return Status::OK();
}

Result<Value> BinRowPlugin::ReadValue(uint64_t oid, const FieldPath& path) {
  PROTEUS_RETURN_NOT_OK(CheckFlatPath(path, "binrow"));
  int j = reader_->ColumnIndex(path[0]);
  if (j < 0) return Status::NotFound("binrow has no column '" + path[0] + "'");
  auto col = static_cast<uint32_t>(j);
  switch (reader_->col_types()[col]) {
    case binrow::kTypeInt64:
    case binrow::kTypeDate:
      return Value::Int(reader_->ReadInt(oid, col));
    case binrow::kTypeFloat64:
      return Value::Float(reader_->ReadFloat(oid, col));
    case binrow::kTypeBool:
      return Value::Boolean(reader_->ReadBool(oid, col));
    case binrow::kTypeString:
      return Value::Str(std::string(reader_->ReadString(oid, col)));
    default:
      return Status::Internal("unexpected binrow type code");
  }
}

std::vector<ScanRange> BinColPlugin::Split(uint64_t max_morsels) const {
  return BlockAlignedSplit(NumRecords(), max_morsels, 1024);
}

std::vector<ScanRange> BinRowPlugin::Split(uint64_t max_morsels) const {
  return BlockAlignedSplit(NumRecords(), max_morsels, 1024);
}

}  // namespace proteus
