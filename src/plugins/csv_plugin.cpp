#include "src/plugins/csv_plugin.h"

#include <charconv>

#include "src/common/counters.h"

namespace proteus {

Status CsvPlugin::Open() {
  if (opened_) return Status::OK();
  PROTEUS_ASSIGN_OR_RETURN(file_, MmapFile::Open(info_.path));
  for (const auto& f : info_.record_type().fields()) {
    if (!f.type->is_primitive()) {
      return Status::InvalidArgument("CSV dataset '" + info_.name +
                                     "' must have a flat schema; field '" + f.name +
                                     "' is " + f.type->ToString());
    }
    col_names_.push_back(f.name);
    col_types_.push_back(f.type->kind());
  }
  stride_ = info_.csv.index_stride > 0 ? info_.csv.index_stride : 10;
  PROTEUS_RETURN_NOT_OK(BuildIndex());
  opened_ = true;
  return Status::OK();
}

Status CsvPlugin::BuildIndex() {
  const char* base = file_.data();
  const char* end = base + file_.size();
  const char delim = info_.csv.delimiter;
  const uint32_t ncols = static_cast<uint32_t>(col_names_.size());
  samples_per_row_ = (ncols + stride_ - 1) / static_cast<uint32_t>(stride_);

  const char* p = base;
  if (info_.csv.has_header) {
    while (p < end && *p != '\n') ++p;
    if (p < end) ++p;
  }

  bool maybe_fixed = true;
  uint64_t first_width = 0;
  std::vector<uint16_t> first_offsets;

  while (p < end) {
    uint64_t row_start = static_cast<uint64_t>(p - base);
    row_offsets_.push_back(row_start);
    const char* q = p;
    std::vector<uint16_t> offsets_this_row;
    offsets_this_row.reserve(ncols);
    offsets_this_row.push_back(0);
    while (p < end && *p != '\n') {
      if (*p == delim) {
        uint64_t rel = static_cast<uint64_t>(p + 1 - q);
        if (rel > 0xFFFF) {
          return Status::ParseError("CSV row longer than 64KB at offset " +
                                    std::to_string(row_start));
        }
        offsets_this_row.push_back(static_cast<uint16_t>(rel));
      }
      ++p;
    }
    const char* line_end = p;
    if (offsets_this_row.size() != ncols) {
      return Status::ParseError("CSV row " + std::to_string(row_offsets_.size() - 1) +
                                " has " + std::to_string(offsets_this_row.size()) +
                                " fields, schema expects " + std::to_string(ncols));
    }
    for (uint32_t s = 0; s < samples_per_row_; ++s) {
      samples_.push_back(offsets_this_row[s * static_cast<uint32_t>(stride_)]);
    }

    uint64_t width = static_cast<uint64_t>(line_end - q) + 1;  // + newline
    if (row_offsets_.size() == 1) {
      first_width = width;
      first_offsets = offsets_this_row;
    } else if (maybe_fixed && (width != first_width || offsets_this_row != first_offsets)) {
      maybe_fixed = false;
    }
    if (p < end) ++p;  // skip newline
  }
  num_rows_ = row_offsets_.size();
  row_offsets_.push_back(static_cast<uint64_t>(end - base));
  row_offsets_.shrink_to_fit();
  samples_.shrink_to_fit();

  if (maybe_fixed && num_rows_ > 0) {
    // Specialize per dataset contents: deterministic positions, no samples.
    fixed_width_ = true;
    fixed_row_width_ = first_width;
    first_row_offset_ = row_offsets_[0];
    fixed_field_off_ = first_offsets;
    samples_.clear();
    samples_.shrink_to_fit();
    row_offsets_.clear();
    row_offsets_.shrink_to_fit();
  }
  return Status::OK();
}

size_t CsvPlugin::StructuralIndexBytes() const {
  return row_offsets_.capacity() * sizeof(uint64_t) + samples_.capacity() * sizeof(uint16_t) +
         fixed_field_off_.capacity() * sizeof(uint16_t);
}

std::vector<ScanRange> CsvPlugin::Split(uint64_t max_morsels) const {
  if (fixed_width_) return InputPlugin::Split(max_morsels);  // rows equal by construction
  return SplitByByteOffsets(row_offsets_, num_rows_, row_offsets_.back(), max_morsels);
}

int CsvPlugin::ColumnIndex(const std::string& name) const {
  for (size_t j = 0; j < col_names_.size(); ++j) {
    if (col_names_[j] == name) return static_cast<int>(j);
  }
  return -1;
}

std::string_view CsvPlugin::FieldText(uint64_t oid, uint32_t col) const {
  GlobalCounters().raw_field_accesses++;
  const char* base = file_.data();
  const char delim = info_.csv.delimiter;
  const char* field;
  const char* row_end;
  if (fixed_width_) {
    const char* row = base + first_row_offset_ + oid * fixed_row_width_;
    field = row + fixed_field_off_[col];
    row_end = row + fixed_row_width_ - 1;
  } else {
    const char* row = base + row_offsets_[oid];
    row_end = base + row_offsets_[oid + 1];
    if (row_end > row && row_end[-1] == '\n') --row_end;
    // Closest indexed field at or before `col`, then seek forward.
    uint32_t sample = col / static_cast<uint32_t>(stride_);
    field = row + samples_[oid * samples_per_row_ + sample];
    uint32_t remaining = col - sample * static_cast<uint32_t>(stride_);
    while (remaining > 0 && field < row_end) {
      if (*field == delim) --remaining;
      ++field;
    }
  }
  const char* fe = field;
  while (fe < row_end && *fe != delim) ++fe;
  return {field, static_cast<size_t>(fe - field)};
}

Result<Value> CsvPlugin::ReadValue(uint64_t oid, const FieldPath& path) {
  if (path.size() != 1) {
    return Status::InvalidArgument("CSV is flat; bad path " + DottedPath(path));
  }
  int j = ColumnIndex(path[0]);
  if (j < 0) return Status::NotFound("CSV has no column '" + path[0] + "'");
  std::string_view text = FieldText(oid, static_cast<uint32_t>(j));
  if (text.empty()) return Value::Null();
  switch (col_types_[j]) {
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("bad int '" + std::string(text) + "' in " + info_.name);
      }
      return Value::Int(v);
    }
    case TypeKind::kFloat64: {
      double v = 0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("bad float '" + std::string(text) + "' in " + info_.name);
      }
      return Value::Float(v);
    }
    case TypeKind::kBool:
      return Value::Boolean(text == "true" || text == "1");
    case TypeKind::kString:
      return Value::Str(std::string(text));
    default:
      return Status::Internal("unexpected CSV column type");
  }
}

}  // namespace proteus
