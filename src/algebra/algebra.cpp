#include "src/algebra/algebra.h"

#include <sstream>

namespace proteus {

const char* MonoidName(Monoid m) {
  switch (m) {
    case Monoid::kSum: return "sum";
    case Monoid::kCount: return "count";
    case Monoid::kMax: return "max";
    case Monoid::kMin: return "min";
    case Monoid::kAnd: return "and";
    case Monoid::kOr: return "or";
    case Monoid::kBag: return "bag";
    case Monoid::kList: return "list";
    case Monoid::kSet: return "set";
  }
  return "?";
}

bool IsCollectionMonoid(Monoid m) {
  return m == Monoid::kBag || m == Monoid::kList || m == Monoid::kSet;
}

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kShared: return "shared";
    case JoinStrategy::kPartitioned: return "partitioned";
  }
  return "?";
}

OpPtr Operator::Scan(std::string dataset, std::string binding) {
  auto op = OpPtr(new Operator(OpKind::kScan));
  op->dataset_ = std::move(dataset);
  op->binding_ = std::move(binding);
  return op;
}

OpPtr Operator::Select(OpPtr child, ExprPtr pred) {
  auto op = OpPtr(new Operator(OpKind::kSelect));
  op->children_ = {std::move(child)};
  op->pred_ = std::move(pred);
  return op;
}

OpPtr Operator::Join(OpPtr left, OpPtr right, ExprPtr pred, bool outer) {
  auto op = OpPtr(new Operator(OpKind::kJoin));
  op->children_ = {std::move(left), std::move(right)};
  op->pred_ = std::move(pred);
  op->outer_ = outer;
  return op;
}

OpPtr Operator::Unnest(OpPtr child, FieldPath path_from_var, std::string binding,
                       ExprPtr pred, bool outer) {
  auto op = OpPtr(new Operator(OpKind::kUnnest));
  op->children_ = {std::move(child)};
  op->path_ = std::move(path_from_var);
  op->binding_ = std::move(binding);
  op->pred_ = std::move(pred);
  op->outer_ = outer;
  return op;
}

OpPtr Operator::Reduce(OpPtr child, std::vector<AggOutput> outputs, ExprPtr pred) {
  auto op = OpPtr(new Operator(OpKind::kReduce));
  op->children_ = {std::move(child)};
  op->outputs_ = std::move(outputs);
  op->pred_ = std::move(pred);
  return op;
}

OpPtr Operator::Nest(OpPtr child, ExprPtr group_by, std::string group_name,
                     std::vector<AggOutput> outputs, ExprPtr pred, std::string binding) {
  auto op = OpPtr(new Operator(OpKind::kNest));
  op->children_ = {std::move(child)};
  op->group_by_ = std::move(group_by);
  op->group_name_ = std::move(group_name);
  op->outputs_ = std::move(outputs);
  op->pred_ = std::move(pred);
  op->binding_ = std::move(binding);
  return op;
}

OpPtr Operator::CacheScan(uint64_t cache_id, std::string binding, std::string signature,
                          std::string dataset) {
  auto op = OpPtr(new Operator(OpKind::kCacheScan));
  op->cache_id_ = cache_id;
  op->binding_ = std::move(binding);
  op->cache_signature_ = std::move(signature);
  op->dataset_ = std::move(dataset);
  return op;
}

Result<TypeEnv> Operator::OutputEnv(const Catalog& catalog) const {
  switch (kind_) {
    case OpKind::kScan: {
      PROTEUS_ASSIGN_OR_RETURN(const DatasetInfo* info, catalog.Get(dataset_));
      TypeEnv env;
      env[binding_] = info->type->elem();
      return env;
    }
    case OpKind::kCacheScan: {
      // Cache scans are introduced after type checking; they re-bind the same
      // variable and type as the subtree they replace. The engine resolves
      // their schema from the cache block itself.
      return TypeEnv{};
    }
    case OpKind::kSelect:
      return children_[0]->OutputEnv(catalog);
    case OpKind::kJoin: {
      PROTEUS_ASSIGN_OR_RETURN(TypeEnv l, children_[0]->OutputEnv(catalog));
      PROTEUS_ASSIGN_OR_RETURN(TypeEnv r, children_[1]->OutputEnv(catalog));
      for (auto& [k, v] : r) {
        if (l.count(k)) {
          return Status::InvalidArgument("duplicate binding '" + k + "' across join sides");
        }
        l[k] = v;
      }
      return l;
    }
    case OpKind::kUnnest: {
      PROTEUS_ASSIGN_OR_RETURN(TypeEnv env, children_[0]->OutputEnv(catalog));
      auto it = env.find(path_[0]);
      if (it == env.end()) {
        return Status::InvalidArgument("unnest source variable '" + path_[0] + "' not bound");
      }
      TypePtr t = it->second;
      for (size_t i = 1; i < path_.size(); ++i) {
        if (t->kind() != TypeKind::kRecord) {
          return Status::TypeError("unnest path crosses non-record type");
        }
        PROTEUS_ASSIGN_OR_RETURN(t, t->FieldType(path_[i]));
      }
      if (t->kind() != TypeKind::kCollection) {
        return Status::TypeError("unnest path " + DottedPath(path_) + " is not a collection");
      }
      env[binding_] = t->elem();
      return env;
    }
    case OpKind::kReduce:
      return TypeEnv{};  // root: produces final output, no bindings
    case OpKind::kNest: {
      PROTEUS_ASSIGN_OR_RETURN(TypeEnv child_env, children_[0]->OutputEnv(catalog));
      PROTEUS_ASSIGN_OR_RETURN(TypePtr key_t, TypeCheck(group_by_, child_env));
      std::vector<Field> fields{{group_name_, key_t}};
      for (const auto& o : outputs_) {
        TypePtr t = Type::Int64();
        if (o.monoid != Monoid::kCount) {
          PROTEUS_ASSIGN_OR_RETURN(t, TypeCheck(o.expr, child_env));
          if (IsCollectionMonoid(o.monoid)) t = Type::Collection(CollectionKind::kBag, t);
        }
        fields.push_back({o.name, t});
      }
      TypeEnv env;
      std::string b = binding_.empty() ? "$group" : binding_;
      env[b] = Type::Record(std::move(fields));
      return env;
    }
  }
  return Status::Internal("unreachable op kind");
}

namespace {

void AppendOutputs(std::ostringstream& os, const std::vector<AggOutput>& outputs) {
  os << "[";
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (i) os << ", ";
    os << MonoidName(outputs[i].monoid);
    if (outputs[i].expr) os << "(" << outputs[i].expr->ToString() << ")";
    os << " as " << outputs[i].name;
  }
  os << "]";
}

}  // namespace

std::string Operator::Signature() const {
  std::ostringstream os;
  switch (kind_) {
    case OpKind::kScan:
      os << "scan(" << dataset_ << " as " << binding_ << ")";
      break;
    case OpKind::kCacheScan:
      os << "cachescan(#" << cache_id_ << " as " << binding_ << ")";
      break;
    case OpKind::kSelect:
      os << "select{" << (pred_ ? pred_->ToString() : "true") << "}("
         << children_[0]->Signature() << ")";
      break;
    case OpKind::kJoin:
      os << (outer_ ? "outerjoin{" : "join{") << (pred_ ? pred_->ToString() : "true") << "}("
         << children_[0]->Signature() << ", " << children_[1]->Signature() << ")";
      break;
    case OpKind::kUnnest:
      os << (outer_ ? "outerunnest{" : "unnest{") << DottedPath(path_) << " as " << binding_;
      if (pred_) os << " | " << pred_->ToString();
      os << "}(" << children_[0]->Signature() << ")";
      break;
    case OpKind::kReduce: {
      os << "reduce{";
      AppendOutputs(os, outputs_);
      if (pred_) os << " | " << pred_->ToString();
      os << "}(" << children_[0]->Signature() << ")";
      break;
    }
    case OpKind::kNest: {
      os << "nest{" << group_by_->ToString() << " as " << group_name_ << ", ";
      AppendOutputs(os, outputs_);
      if (pred_) os << " | " << pred_->ToString();
      os << "}(" << children_[0]->Signature() << ")";
      break;
    }
  }
  return os.str();
}

std::string Operator::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (kind_) {
    case OpKind::kScan: {
      os << pad << "Scan " << dataset_ << " as " << binding_;
      if (!scan_fields_.empty()) {
        os << " fields=[";
        for (size_t i = 0; i < scan_fields_.size(); ++i) {
          if (i) os << ",";
          os << DottedPath(scan_fields_[i]);
        }
        os << "]";
      }
      os << "\n";
      return os.str();
    }
    case OpKind::kCacheScan:
      os << pad << "CacheScan #" << cache_id_ << " as " << binding_ << "\n";
      return os.str();
    case OpKind::kSelect:
      os << pad << "Select " << pred_->ToString() << "\n";
      break;
    case OpKind::kJoin:
      os << pad << (outer_ ? "OuterJoin " : "Join ") << (pred_ ? pred_->ToString() : "true");
      if (left_key_) {
        os << " [hash: " << left_key_->ToString() << " = " << right_key_->ToString() << "]";
      }
      os << "\n";
      break;
    case OpKind::kUnnest:
      os << pad << (outer_ ? "OuterUnnest " : "Unnest ") << DottedPath(path_) << " as "
         << binding_;
      if (pred_) os << " | " << pred_->ToString();
      os << "\n";
      break;
    case OpKind::kReduce: {
      std::ostringstream tmp;
      AppendOutputs(tmp, outputs_);
      os << pad << "Reduce " << tmp.str();
      if (pred_) os << " | " << pred_->ToString();
      os << "\n";
      break;
    }
    case OpKind::kNest: {
      std::ostringstream tmp;
      AppendOutputs(tmp, outputs_);
      os << pad << "Nest by " << group_by_->ToString() << " " << tmp.str();
      if (pred_) os << " | " << pred_->ToString();
      os << "\n";
      break;
    }
  }
  for (const auto& c : children_) os << c->ToString(indent + 1);
  return os.str();
}

}  // namespace proteus
