// The nested relational algebra (paper Table 1).
//
// Operators: Scan (leaf), Select σp, (Outer)Join ⋈p, (Outer)Unnest μpath,
// Reduce Δ⊕/e/p, and (Outer)Nest Γ⊕/e/f/p. Reduce and Nest are overloaded
// versions of relational projection and grouping: they fold the stream into
// an output monoid (an aggregate like sum/max, or a collection like bag).
//
// Each operator propagates an *environment* of bound variables: a scan binds
// one variable per record, unnest adds a binding for the unnested element,
// join merges both sides' environments, nest replaces the environment with a
// single binding for the grouped record.
//
// Practical extension: Reduce/Nest carry a *list* of (monoid, expression)
// outputs so multi-aggregate queries (the paper benchmarks up to 4
// aggregates) evaluate in one pass. Formally this is a product of monoids.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/expr/expr.h"
#include "src/plugins/plugin.h"

namespace proteus {

enum class OpKind {
  kScan,
  kSelect,
  kJoin,
  kUnnest,
  kReduce,
  kNest,
  kCacheScan,  ///< leaf replaced by the CachingManager: reads a cache block
};

enum class Monoid { kSum, kCount, kMax, kMin, kAnd, kOr, kBag, kList, kSet };

/// Physical probe layout of a hash join's build table, chosen per join by
/// the optimizer (skew/cardinality heuristic over dataset statistics):
///   kShared      — one clustered array + uniform bucket directory; best for
///                  small, uniform build sides.
///   kPartitioned — per-radix-partition sub-tables with partition-local
///                  memory and bucket sizing; best for large or skewed
///                  build sides.
/// Results are cell-identical across strategies by construction; only the
/// table's memory layout differs. Deliberately NOT part of the plan
/// Signature() (the logical plan is the same) — but it IS part of the
/// compiled-query cache key, because generated modules bake the layout
/// choice into their runtime layout.
enum class JoinStrategy : uint8_t { kShared, kPartitioned };

const char* JoinStrategyName(JoinStrategy s);

const char* MonoidName(Monoid m);
/// True for collection monoids (bag/list/set); false for aggregates.
bool IsCollectionMonoid(Monoid m);

/// One (monoid, expression, output name) output of a Reduce or Nest.
struct AggOutput {
  Monoid monoid;
  ExprPtr expr;          ///< null for kCount
  std::string name;      ///< output column name
};

class Operator;
using OpPtr = std::shared_ptr<Operator>;

class Operator {
 public:
  // ---- Builders ------------------------------------------------------------
  /// Scan of a registered dataset; binds each record to `binding`.
  static OpPtr Scan(std::string dataset, std::string binding);
  static OpPtr Select(OpPtr child, ExprPtr pred);
  static OpPtr Join(OpPtr left, OpPtr right, ExprPtr pred, bool outer = false);
  /// Unnests collection `path` (rooted at bound variable path[0]); binds each
  /// element to `binding`. Outer unnest emits a null element when empty.
  static OpPtr Unnest(OpPtr child, FieldPath path_from_var, std::string binding,
                      ExprPtr pred = nullptr, bool outer = false);
  static OpPtr Reduce(OpPtr child, std::vector<AggOutput> outputs, ExprPtr pred = nullptr);
  /// Groups by `group_by` (named `group_name` in the output record).
  static OpPtr Nest(OpPtr child, ExprPtr group_by, std::string group_name,
                    std::vector<AggOutput> outputs, ExprPtr pred = nullptr,
                    std::string binding = "");

  // ---- Accessors -----------------------------------------------------------
  OpKind kind() const { return kind_; }
  const std::vector<OpPtr>& children() const { return children_; }
  const OpPtr& child(size_t i = 0) const { return children_[i]; }
  OpPtr* mutable_child(size_t i = 0) { return &children_[i]; }

  const std::string& dataset() const { return dataset_; }
  const std::string& binding() const { return binding_; }
  const ExprPtr& pred() const { return pred_; }
  void set_pred(ExprPtr p) { pred_ = std::move(p); }
  bool outer() const { return outer_; }
  const FieldPath& unnest_path() const { return path_; }
  const std::vector<AggOutput>& outputs() const { return outputs_; }
  const ExprPtr& group_by() const { return group_by_; }
  const std::string& group_name() const { return group_name_; }

  /// Pushed-down projection for scans (set by the optimizer; the input
  /// plug-in extracts only these fields).
  const std::vector<FieldPath>& scan_fields() const { return scan_fields_; }
  void set_scan_fields(std::vector<FieldPath> f) { scan_fields_ = std::move(f); }

  /// Equi-join keys extracted by the optimizer for the radix hash join.
  const ExprPtr& left_key() const { return left_key_; }
  const ExprPtr& right_key() const { return right_key_; }
  void set_join_keys(ExprPtr l, ExprPtr r) {
    left_key_ = std::move(l);
    right_key_ = std::move(r);
  }

  /// Probe layout of this join's build table (kJoin only; set by the
  /// optimizer's strategy pass, defaults to the shared table).
  JoinStrategy join_strategy() const { return join_strategy_; }
  void set_join_strategy(JoinStrategy s) { join_strategy_ = s; }

  /// Cache-scan payload (kCacheScan only): id of the cache block to read.
  /// `dataset` names the raw source so that fields absent from the cache
  /// (e.g. strings, which policy excludes) are read hybridly through the
  /// input plug-in using the cached OID column.
  uint64_t cache_id() const { return cache_id_; }
  static OpPtr CacheScan(uint64_t cache_id, std::string binding, std::string signature,
                         std::string dataset = "");

  /// Variables bound in this operator's output and their record types.
  /// Scans/unnests consult `catalog` for dataset schemas.
  Result<TypeEnv> OutputEnv(const Catalog& catalog) const;

  /// Canonical plan signature: structurally equal subtrees print identically.
  /// Used by the CachingManager as a matching key (paper §6).
  std::string Signature() const;
  /// Indented human-readable plan.
  std::string ToString(int indent = 0) const;

  /// Deep structural equality (signature-based).
  bool Equals(const Operator& other) const { return Signature() == other.Signature(); }

 private:
  explicit Operator(OpKind k) : kind_(k) {}

  OpKind kind_;
  std::vector<OpPtr> children_;
  std::string dataset_;             // kScan
  std::string binding_;             // kScan/kUnnest/kNest/kCacheScan
  ExprPtr pred_;                    // kSelect/kJoin/kUnnest/kReduce/kNest
  bool outer_ = false;              // kJoin/kUnnest
  FieldPath path_;                  // kUnnest (path[0] = source variable)
  std::vector<AggOutput> outputs_;  // kReduce/kNest
  ExprPtr group_by_;                // kNest
  std::string group_name_;          // kNest
  std::vector<FieldPath> scan_fields_;
  ExprPtr left_key_, right_key_;    // kJoin (optimizer)
  JoinStrategy join_strategy_ = JoinStrategy::kShared;  // kJoin (optimizer)
  uint64_t cache_id_ = 0;           // kCacheScan
  std::string cache_signature_;     // kCacheScan: signature of replaced subtree
};

}  // namespace proteus
