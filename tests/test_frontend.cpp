// Tests for the query frontends (comprehension + SQL), the calculus
// normalization rules, the calculus-to-algebra translation, and the
// optimizer passes.
#include <gtest/gtest.h>

#include "src/calculus/calculus.h"
#include "src/datagen/spam.h"
#include "src/datagen/tpch.h"
#include "src/optimizer/optimizer.h"
#include "src/parser/parser.h"

namespace proteus {
namespace {

class FrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetInfo lineitem{.name = "lineitem", .format = DataFormat::kBinaryColumn,
                         .path = "/dev/null", .type = datagen::LineitemSchema()};
    DatasetInfo orders{.name = "orders", .format = DataFormat::kBinaryColumn,
                       .path = "/dev/null", .type = datagen::OrdersSchema()};
    DatasetInfo denorm{.name = "orders_denorm", .format = DataFormat::kJSON,
                       .path = "/dev/null", .type = datagen::OrdersDenormSchema()};
    DatasetInfo spam{.name = "spam", .format = DataFormat::kJSON, .path = "/dev/null",
                     .type = datagen::SpamJSONSchema()};
    ASSERT_TRUE(catalog_.Register(lineitem).ok());
    ASSERT_TRUE(catalog_.Register(orders).ok());
    ASSERT_TRUE(catalog_.Register(denorm).ok());
    ASSERT_TRUE(catalog_.Register(spam).ok());
  }

  OpPtr MustPlan(const std::string& q) {
    auto comp = ParseQuery(q, catalog_);
    EXPECT_TRUE(comp.ok()) << q << "\n" << comp.status().ToString();
    Normalize(&*comp);
    auto plan = ToAlgebra(*comp, catalog_);
    EXPECT_TRUE(plan.ok()) << q << "\n" << plan.status().ToString();
    return *plan;
  }

  OpPtr MustOptimize(const std::string& q) {
    Optimizer opt(catalog_);
    auto plan = opt.Optimize(MustPlan(q));
    EXPECT_TRUE(plan.ok()) << q << "\n" << plan.status().ToString();
    return *plan;
  }

  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// Comprehension parsing
// ---------------------------------------------------------------------------

TEST_F(FrontendTest, ParsesSimpleComprehension) {
  auto c = ParseComprehension("for { l <- lineitem, l.l_orderkey < 100 } yield count");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->quals.size(), 2u);
  EXPECT_EQ(c->quals[0].kind, Qualifier::Kind::kGenerator);
  EXPECT_EQ(c->quals[0].var, "l");
  EXPECT_EQ(c->quals[1].kind, Qualifier::Kind::kPredicate);
  EXPECT_EQ(c->monoid, Monoid::kCount);
}

TEST_F(FrontendTest, ParsesRecordConstructionAndPaths) {
  auto c = ParseComprehension(
      "for { s <- spam, k <- s.classes, k.label > 3 } "
      "yield bag <id: s.mail_id, lab: k.label>");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->monoid, Monoid::kBag);
  EXPECT_EQ(c->head->kind(), ExprKind::kRecordCons);
  // Generator over a path == unnest.
  EXPECT_EQ(c->quals[1].source->ToString(), "s.classes");
}

TEST_F(FrontendTest, ParsesMultiAggregateYield) {
  auto c = ParseComprehension(
      "for { l <- lineitem } yield (count, max l.l_quantity as mq, sum l.l_tax)");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->outputs.size(), 3u);
  EXPECT_EQ(c->outputs[0].monoid, Monoid::kCount);
  EXPECT_EQ(c->outputs[1].name, "mq");
  EXPECT_EQ(c->outputs[2].monoid, Monoid::kSum);
}

TEST_F(FrontendTest, ParseErrorsAreReported) {
  EXPECT_FALSE(ParseComprehension("for { } yield count").ok());
  EXPECT_FALSE(ParseComprehension("for { l <- lineitem yield count").ok());
  EXPECT_FALSE(ParseComprehension("hello world").ok());
  EXPECT_FALSE(ParseQuery("", catalog_).ok());
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

TEST_F(FrontendTest, NestedComprehensionSplices) {
  // for { x <- (for { l <- lineitem, l.l_tax > 0 } yield bag l), x.l_orderkey < 5 }
  //   yield count
  // must normalize to a single-level comprehension over lineitem.
  auto c = ParseComprehension(
      "for { x <- (for { l <- lineitem, l.l_tax > 0.0 } yield bag l), "
      "x.l_orderkey < 5 } yield count");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  Normalize(&*c);
  ASSERT_EQ(c->quals.size(), 3u);
  EXPECT_EQ(c->quals[0].var, "l");
  EXPECT_EQ(c->quals[2].pred->ToString(), "(l.l_orderkey < 5)");
  auto plan = ToAlgebra(*c, catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST_F(FrontendTest, NormalizeDropsTruePredicates) {
  auto c = ParseComprehension("for { l <- lineitem, 1 < 2 } yield count");
  ASSERT_TRUE(c.ok());
  Normalize(&*c);
  EXPECT_EQ(c->quals.size(), 1u);
}

// ---------------------------------------------------------------------------
// SQL parsing + desugaring
// ---------------------------------------------------------------------------

TEST_F(FrontendTest, SqlSimpleAggregate) {
  auto c = ParseSQL("SELECT count(*), max(l_quantity) FROM lineitem WHERE l_orderkey < 10",
                    catalog_);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->outputs.size(), 2u);
  EXPECT_EQ(c->outputs[0].monoid, Monoid::kCount);
  EXPECT_EQ(c->outputs[1].monoid, Monoid::kMax);
  // Unqualified name resolved to the lineitem binding.
  EXPECT_EQ(c->outputs[1].expr->ToString(), "lineitem.l_quantity");
}

TEST_F(FrontendTest, SqlJoinOn) {
  auto c = ParseSQL(
      "SELECT count(*) FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
      "WHERE l_orderkey < 100",
      catalog_);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_EQ(c->quals.size(), 4u);  // 2 generators + on + where
}

TEST_F(FrontendTest, SqlGroupBy) {
  auto c = ParseSQL(
      "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM lineitem "
      "GROUP BY l_linenumber",
      catalog_);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ASSERT_TRUE(c->group_by != nullptr);
  EXPECT_EQ(c->group_name, "l_linenumber");
  EXPECT_EQ(c->outputs.size(), 2u);
}

TEST_F(FrontendTest, SqlUnnest) {
  auto c = ParseSQL(
      "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l "
      "WHERE l.l_quantity > 10.0",
      catalog_);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->quals[1].source->ToString(), "o.lineitems");
}

TEST_F(FrontendTest, SqlErrors) {
  EXPECT_FALSE(ParseSQL("SELECT count(*) FROM ghost_table", catalog_).ok());
  EXPECT_FALSE(ParseSQL("SELECT no_such_col FROM lineitem", catalog_).ok());
  EXPECT_FALSE(ParseSQL("SELECT l_orderkey, count(*) FROM lineitem", catalog_).ok());
  // A plain SELECT item that is not the GROUP BY key is invalid.
  EXPECT_FALSE(
      ParseSQL("SELECT l_tax, count(*) FROM lineitem GROUP BY l_orderkey", catalog_).ok());
}

// ---------------------------------------------------------------------------
// Algebra translation
// ---------------------------------------------------------------------------

TEST_F(FrontendTest, TranslatesToScanSelectReduce) {
  OpPtr plan = MustPlan("SELECT count(*) FROM lineitem WHERE l_orderkey < 10");
  ASSERT_EQ(plan->kind(), OpKind::kReduce);
  EXPECT_EQ(plan->child(0)->kind(), OpKind::kSelect);
  EXPECT_EQ(plan->child(0)->child(0)->kind(), OpKind::kScan);
}

TEST_F(FrontendTest, TranslatesUnnest) {
  OpPtr plan = MustPlan(
      "for { o <- orders_denorm, l <- o.lineitems, l.l_quantity > 5.0 } yield count");
  ASSERT_EQ(plan->kind(), OpKind::kReduce);
  const Operator* sel = plan->child(0).get();
  ASSERT_EQ(sel->kind(), OpKind::kSelect);
  EXPECT_EQ(sel->child(0)->kind(), OpKind::kUnnest);
}

TEST_F(FrontendTest, TranslatesGroupByToNest) {
  OpPtr plan = MustPlan(
      "SELECT l_linenumber, count(*) FROM lineitem GROUP BY l_linenumber");
  ASSERT_EQ(plan->kind(), OpKind::kReduce);
  EXPECT_EQ(plan->child(0)->kind(), OpKind::kNest);
}

TEST_F(FrontendTest, UnboundUnnestVariableFails) {
  auto c = ParseComprehension("for { l <- z.items } yield count");
  ASSERT_TRUE(c.ok());
  Normalize(&*c);
  EXPECT_FALSE(ToAlgebra(*c, catalog_).ok());
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

TEST_F(FrontendTest, PushdownSinksPredicatesToScans) {
  OpPtr plan = MustOptimize(
      "SELECT count(*) FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
      "WHERE l.l_orderkey < 100 and o.o_totalprice > 5000.0");
  std::string s = plan->ToString();
  // Join must carry hash keys; single-table predicates sit below the join.
  EXPECT_NE(s.find("hash:"), std::string::npos) << s;
  // The select on l_orderkey must be below the join (find Join line first).
  size_t join_pos = s.find("Join");
  size_t sel_pos = s.find("(l.l_orderkey < 100)");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(sel_pos, std::string::npos);
  EXPECT_GT(sel_pos, join_pos);
}

TEST_F(FrontendTest, UnnestPredicateEmbeds) {
  OpPtr plan = MustOptimize(
      "for { o <- orders_denorm, l <- o.lineitems, l.l_quantity > 5.0, "
      "o.o_totalprice > 100.0 } yield count");
  std::string s = plan->ToString();
  // The element predicate must be embedded in the Unnest operator line.
  size_t unnest_pos = s.find("Unnest");
  ASSERT_NE(unnest_pos, std::string::npos);
  size_t embedded = s.find("| (l.l_quantity > 5", unnest_pos);
  EXPECT_NE(embedded, std::string::npos) << s;
  // The o predicate is below the unnest, on the scan.
  EXPECT_NE(s.find("Select (o.o_totalprice > 100"), std::string::npos) << s;
}

TEST_F(FrontendTest, ProjectionPushdownListsOnlyNeededFields) {
  OpPtr plan = MustOptimize(
      "SELECT max(l_quantity) FROM lineitem WHERE l_orderkey < 10");
  // Find the scan and inspect fields.
  const Operator* op = plan.get();
  while (op->kind() != OpKind::kScan) op = op->child(0).get();
  auto fields = op->scan_fields();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(DottedPath(fields[0]), "l_orderkey");
  EXPECT_EQ(DottedPath(fields[1]), "l_quantity");
}

TEST_F(FrontendTest, PlanSignatureStableAcrossIdenticalQueries) {
  OpPtr a = MustOptimize("SELECT count(*) FROM lineitem WHERE l_orderkey < 10");
  OpPtr b = MustOptimize("SELECT count(*) FROM lineitem WHERE l_orderkey < 10");
  OpPtr c = MustOptimize("SELECT count(*) FROM lineitem WHERE l_orderkey < 20");
  EXPECT_EQ(a->Signature(), b->Signature());
  EXPECT_NE(a->Signature(), c->Signature());
}

TEST_F(FrontendTest, TypeCheckRejectsBadPlans) {
  auto comp = ParseComprehension("for { l <- lineitem, l.l_comment > 3 } yield count");
  ASSERT_TRUE(comp.ok());
  Normalize(&*comp);
  auto plan = ToAlgebra(*comp, catalog_);
  ASSERT_TRUE(plan.ok());
  Optimizer opt(catalog_);
  EXPECT_FALSE(opt.Optimize(*plan).ok());  // string vs int comparison
}

TEST_F(FrontendTest, SelectivityUsesStats) {
  DatasetStats ds;
  ds.valid = true;
  ds.cardinality = 1000;
  ds.columns["l_orderkey"] = {.valid = true, .min = 0, .max = 100, .ndv = 100};
  catalog_.stats().Publish("lineitem", std::move(ds));
  Optimizer opt(catalog_);
  OpPtr scan = Operator::Scan("lineitem", "l");
  auto pred = Expr::Bin(BinOp::kLt, Expr::Proj(Expr::Var("l"), "l_orderkey"), Expr::Int(20));
  EXPECT_NEAR(opt.EstimateSelectivity(pred, scan), 0.2, 0.01);
  auto pred2 = Expr::Bin(BinOp::kGt, Expr::Proj(Expr::Var("l"), "l_orderkey"), Expr::Int(20));
  EXPECT_NEAR(opt.EstimateSelectivity(pred2, scan), 0.8, 0.01);
}

TEST_F(FrontendTest, JoinReorderPutsSmallSideFirst) {
  DatasetStats lo;
  lo.valid = true;
  lo.cardinality = 400000;
  catalog_.stats().Publish("lineitem", std::move(lo));
  DatasetStats od;
  od.valid = true;
  od.cardinality = 100000;
  catalog_.stats().Publish("orders", std::move(od));
  OpPtr plan = MustOptimize(
      "SELECT count(*) FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey");
  // The left (build) side of the top join should be the smaller orders scan.
  const Operator* join = plan.get();
  while (join->kind() != OpKind::kJoin) join = join->child(0).get();
  const Operator* left = join->child(0).get();
  while (!left->children().empty()) left = left->child(0).get();
  EXPECT_EQ(left->dataset(), "orders") << plan->ToString();
}

}  // namespace
}  // namespace proteus
