// Generated-code contract verifier (src/jit/ir_verifier.h), both directions:
//
//   - Negative: hand-built llvm::Modules seeded with exactly one violation
//     per contract rule — a mutable global, a call outside the proteus_*
//     runtime whitelist, an out-of-bounds constant param-table index, an
//     entry-point signature deviation, a stray external definition — must be
//     rejected with an Internal status naming the offending symbol.
//   - Positive: every module the engine actually generates across the
//     test_jit_equiv plan corpus (selectivity x format x shape sweep, joins,
//     unnest, strings, morsel-parallel and sharded fan-outs) must verify
//     clean with EngineOptions::verify_ir on, and telemetry must report
//     ir_verified for every JIT-served query.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>

#include "src/jit/ir_verifier.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

using jit::VerifyGeneratedModule;

// ---------------------------------------------------------------------------
// Negative: hand-built modules, one seeded violation per contract rule
// ---------------------------------------------------------------------------

/// Owns the LLVMContext + Module a test builds its seeded IR into.
struct TestModule {
  llvm::LLVMContext ctx;
  std::unique_ptr<llvm::Module> mod = std::make_unique<llvm::Module>("t", ctx);

  llvm::Type* i8p() { return llvm::Type::getInt8PtrTy(ctx); }
  llvm::Type* i64() { return llvm::Type::getInt64Ty(ctx); }
  llvm::Type* vd() { return llvm::Type::getVoidTy(ctx); }

  /// Defines `name` with the contract signature for that entry point and an
  /// empty body (ret void), returning the builder parked before the ret.
  llvm::Function* AddEntry(const std::string& name,
                           llvm::IRBuilder<>* out_builder = nullptr) {
    std::vector<llvm::Type*> args;
    if (name == "proteus_pipeline") {
      args = {i8p(), i8p(), i8p(), i64(), i64()};
    } else if (name.rfind("proteus_drain", 0) == 0) {
      args = {i8p(), i8p(), i8p(), i8p()};
    } else {
      args = {i8p(), i8p()};  // proteus_query / proteus_build
    }
    auto* fty = llvm::FunctionType::get(vd(), args, false);
    auto* fn =
        llvm::Function::Create(fty, llvm::Function::ExternalLinkage, name, mod.get());
    llvm::IRBuilder<> b(llvm::BasicBlock::Create(ctx, "entry", fn));
    auto* ret = b.CreateRetVoid();
    if (out_builder != nullptr) {
      out_builder->SetInsertPoint(ret);
    }
    return fn;
  }
};

TEST(IrVerifierNegative, CleanModulePasses) {
  TestModule t;
  t.AddEntry("proteus_build");
  t.AddEntry("proteus_pipeline");
  t.AddEntry("proteus_drain0");
  EXPECT_TRUE(VerifyGeneratedModule(*t.mod, 0).ok());
}

TEST(IrVerifierNegative, MutableGlobalRejected) {
  TestModule t;
  t.AddEntry("proteus_build");
  new llvm::GlobalVariable(*t.mod, t.i64(), /*isConstant=*/false,
                           llvm::GlobalValue::InternalLinkage,
                           llvm::ConstantInt::get(t.i64(), 0), "sneaky_state");
  const Status s = VerifyGeneratedModule(*t.mod, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("mutable global variable: sneaky_state"),
            std::string::npos)
      << s.message();
}

TEST(IrVerifierNegative, ConstantGlobalAllowed) {
  TestModule t;
  t.AddEntry("proteus_build");
  new llvm::GlobalVariable(*t.mod, t.i64(), /*isConstant=*/true,
                           llvm::GlobalValue::PrivateLinkage,
                           llvm::ConstantInt::get(t.i64(), 42), "str_lit");
  EXPECT_TRUE(VerifyGeneratedModule(*t.mod, 0).ok());
}

TEST(IrVerifierNegative, NonWhitelistedExternRejected) {
  TestModule t;
  llvm::IRBuilder<> b(t.ctx);
  t.AddEntry("proteus_build", &b);
  auto evil = t.mod->getOrInsertFunction(
      "system_call_home", llvm::FunctionType::get(t.vd(), {}, false));
  b.CreateCall(evil);
  const Status s = VerifyGeneratedModule(*t.mod, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(
      s.message().find("non-whitelisted external symbol: system_call_home"),
      std::string::npos)
      << s.message();
}

TEST(IrVerifierNegative, WhitelistedRuntimeCallAllowed) {
  TestModule t;
  llvm::IRBuilder<> b(t.ctx);
  llvm::Function* fn = t.AddEntry("proteus_build", &b);
  auto rt = t.mod->getOrInsertFunction(
      "proteus_result_end_row", llvm::FunctionType::get(t.vd(), {t.i8p()}, false));
  b.CreateCall(rt, {fn->getArg(0)});
  EXPECT_TRUE(VerifyGeneratedModule(*t.mod, 0).ok());
}

TEST(IrVerifierNegative, ParamIndexOutOfBoundsRejected) {
  TestModule t;
  llvm::IRBuilder<> b(t.ctx);
  llvm::Function* fn = t.AddEntry("proteus_build", &b);
  // ParamI64's exact shape: bitcast the params argument (arg 1 for
  // proteus_build) to i64*, constant GEP, load.
  auto* params = b.CreateBitCast(fn->getArg(1), t.i64()->getPointerTo());
  auto* addr = b.CreateConstInBoundsGEP1_64(t.i64(), params, 7);
  b.CreateLoad(t.i64(), addr);
  const Status s = VerifyGeneratedModule(*t.mod, /*param_table_slots=*/4);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(
                "proteus_build: param-table index 7 out of bounds (table has "
                "4 slot(s))"),
            std::string::npos)
      << s.message();
  // The same module is fine against a table that actually has the slot.
  EXPECT_TRUE(VerifyGeneratedModule(*t.mod, 8).ok());
}

TEST(IrVerifierNegative, PipelineSignatureDeviationRejected) {
  TestModule t;
  // proteus_pipeline defined with the build signature (two pointers instead
  // of three pointers + two i64 range bounds).
  auto* fty = llvm::FunctionType::get(t.vd(), {t.i8p(), t.i8p()}, false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage,
                                    "proteus_pipeline", t.mod.get());
  llvm::IRBuilder<> b(llvm::BasicBlock::Create(t.ctx, "entry", fn));
  b.CreateRetVoid();
  const Status s = VerifyGeneratedModule(*t.mod, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(
                "entry point proteus_pipeline deviates from its contract "
                "signature"),
            std::string::npos)
      << s.message();
}

TEST(IrVerifierNegative, DrainSignatureDeviationRejected) {
  TestModule t;
  auto* fty =
      llvm::FunctionType::get(t.i64(), {t.i8p(), t.i8p(), t.i8p(), t.i8p()}, false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage,
                                    "proteus_drain0", t.mod.get());
  llvm::IRBuilder<> b(llvm::BasicBlock::Create(t.ctx, "entry", fn));
  b.CreateRet(llvm::ConstantInt::get(t.i64(), 0));
  const Status s = VerifyGeneratedModule(*t.mod, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("entry point proteus_drain0 deviates"),
            std::string::npos)
      << s.message();
}

TEST(IrVerifierNegative, StrayExternalDefinitionRejected) {
  TestModule t;
  t.AddEntry("proteus_build");
  auto* fty = llvm::FunctionType::get(t.vd(), {}, false);
  auto* fn = llvm::Function::Create(fty, llvm::Function::ExternalLinkage,
                                    "not_an_entry_point", t.mod.get());
  llvm::IRBuilder<> b(llvm::BasicBlock::Create(t.ctx, "entry", fn));
  b.CreateRetVoid();
  const Status s = VerifyGeneratedModule(*t.mod, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(
      s.message().find("unexpected externally-visible definition: not_an_entry_point"),
      std::string::npos)
      << s.message();
}

TEST(IrVerifierNegative, EveryViolationReported) {
  // Multiple seeded violations must all surface, semicolon-joined.
  TestModule t;
  llvm::IRBuilder<> b(t.ctx);
  t.AddEntry("proteus_build", &b);
  new llvm::GlobalVariable(*t.mod, t.i64(), false, llvm::GlobalValue::InternalLinkage,
                           llvm::ConstantInt::get(t.i64(), 0), "g1");
  auto evil = t.mod->getOrInsertFunction(
      "rogue_fn", llvm::FunctionType::get(t.vd(), {}, false));
  b.CreateCall(evil);
  const Status s = VerifyGeneratedModule(*t.mod, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("g1"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("rogue_fn"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("; "), std::string::npos) << s.message();
}

// ---------------------------------------------------------------------------
// Positive: every module the engine generates for the jit-equiv corpus
// ---------------------------------------------------------------------------

struct VerifyCase {
  std::string name;
  std::string query;
};

/// The test_jit_equiv plan corpus: selectivity x format x shape sweep plus
/// the string/projection/comprehension/join extras — every plan shape the
/// generated fast path accepts.
std::vector<VerifyCase> CorpusCases() {
  std::vector<VerifyCase> cases;
  for (int sel : {6, 12, 30, 60}) {
    for (const char* ds : {"lineitem_bincol", "lineitem_binrow", "lineitem_csv",
                           "lineitem_json", "lineitem_json_shuffled"}) {
      std::string s = std::to_string(sel);
      cases.push_back({std::string(ds) + "_count_" + s,
                       "SELECT count(*) FROM " + std::string(ds) + " WHERE l_orderkey < " + s});
      cases.push_back({std::string(ds) + "_agg4_" + s,
                       "SELECT count(*), max(l_quantity), sum(l_tax), min(l_discount) FROM " +
                           std::string(ds) + " WHERE l_orderkey < " + s});
      cases.push_back(
          {std::string(ds) + "_preds_" + s,
           "SELECT count(*) FROM " + std::string(ds) + " WHERE l_orderkey < " + s +
               " and l_quantity < 40.0 and l_discount < 0.08 and l_tax < 0.06"});
      cases.push_back({std::string(ds) + "_group_" + s,
                       "SELECT l_linenumber, count(*), sum(l_extendedprice) FROM " +
                           std::string(ds) + " WHERE l_orderkey < " + s +
                           " GROUP BY l_linenumber"});
    }
    std::string s = std::to_string(sel);
    cases.push_back({"join_bincol_" + s,
                     "SELECT count(*), max(o.o_totalprice) FROM orders_bincol o JOIN "
                     "lineitem_bincol l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < " +
                         s});
    cases.push_back({"join_json_" + s,
                     "SELECT count(*), max(o.o_totalprice) FROM orders_json o JOIN "
                     "lineitem_json l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < " +
                         s});
    cases.push_back({"unnest_" + s,
                     "SELECT count(*) FROM orders_denorm o, UNNEST(o.lineitems) l WHERE "
                     "l.l_orderkey < " +
                         s});
  }
  cases.push_back({"str_eq_csv",
                   "SELECT count(*) FROM lineitem_csv WHERE l_shipmode = 'RAIL'"});
  cases.push_back({"str_eq_json",
                   "SELECT count(*) FROM lineitem_json WHERE l_shipmode = 'SHIP'"});
  cases.push_back({"str_group",
                   "SELECT l_shipmode, count(*), max(l_quantity) FROM lineitem_bincol "
                   "GROUP BY l_shipmode"});
  cases.push_back({"projection_rows",
                   "SELECT o_orderkey, o_totalprice FROM orders_bincol WHERE o_orderkey < 17"});
  cases.push_back({"comp_record_yield",
                   "for { s <- spam, s.body_len > 3000 } "
                   "yield bag <id: s.mail_id, n: s.body_len>"});
  cases.push_back({"comp_nested_path",
                   "for { s <- spam, s.origin.country = 'RU' } yield count"});
  cases.push_back({"comp_unnest_elem",
                   "for { s <- spam, k <- s.classes, k.label > 10 } yield (count, max k.label)"});
  cases.push_back({"arith_expr",
                   "SELECT sum(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) "
                   "FROM lineitem_bincol WHERE l_orderkey < 30"});
  cases.push_back({"three_way_join",
                   "SELECT count(*) FROM lineitem_bincol l JOIN orders_bincol o ON "
                   "l.l_orderkey = o.o_orderkey JOIN orders_json oj ON "
                   "o.o_orderkey = oj.o_orderkey WHERE l.l_orderkey < 21"});
  return cases;
}

class IrVerifierSweep : public ::testing::TestWithParam<VerifyCase> {};

TEST_P(IrVerifierSweep, GeneratedModuleVerifiesClean) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.verify_ir = true;
  opts.num_threads = 2;
  opts.morsel_rows = 16;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  QueryTelemetry tel;
  CallOptions call;
  call.telemetry = &tel;
  auto r = engine.Execute(GetParam().query, call);
  // Every module codegen produces must pass the verifier — a contract
  // violation would surface here as an Internal error, not a fallback.
  ASSERT_TRUE(r.ok()) << GetParam().query << "\n" << r.status().ToString();
  if (tel.used_jit) {
    EXPECT_TRUE(tel.ir_verified) << GetParam().query;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, IrVerifierSweep, ::testing::ValuesIn(CorpusCases()),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Integration: the ir_verified signal across execution paths
// ---------------------------------------------------------------------------

TEST(IrVerifierIntegration, OuterJoinDrainModuleVerifiesClean) {
  // Outer joins generate the proteus_drain<k> entry points. The SQL grammar
  // has no LEFT JOIN, so build the plan directly (as test_jit_equiv's
  // outer-join suite does) and run it through ExecutePlan.
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.verify_ir = true;
  opts.num_threads = 2;
  opts.morsel_rows = 16;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  auto proj = [](const char* var, const char* field) {
    return Expr::Proj(Expr::Var(var), field);
  };
  OpPtr scan_o = Operator::Scan("orders_json", "o");
  OpPtr scan_l = Operator::Scan("lineitem_json", "l");
  ExprPtr pred =
      Expr::Bin(BinOp::kEq, proj("o", "o_orderkey"), proj("l", "l_orderkey"));
  OpPtr join = Operator::Join(scan_o, scan_l, pred, /*outer=*/true);
  OpPtr plan = Operator::Reduce(join, {{Monoid::kCount, nullptr, "n"},
                                       {Monoid::kMax, proj("l", "l_quantity"), "maxq"}});
  QueryTelemetry tel;
  CallOptions call;
  call.telemetry = &tel;
  auto r = engine.ExecutePlan(std::move(plan), call);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(tel.used_jit) << tel.fallback_reason;
  EXPECT_TRUE(tel.ir_verified);
}

TEST(IrVerifierIntegration, VerifiedFlagOffWhenDisabled) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.verify_ir = false;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  QueryTelemetry tel;
  CallOptions call;
  call.telemetry = &tel;
  auto r = engine.Execute("SELECT count(*) FROM lineitem_bincol WHERE l_orderkey < 30",
                          call);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(tel.used_jit);
  EXPECT_FALSE(tel.ir_verified);
}

TEST(IrVerifierIntegration, VerifiedAcrossShards) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.verify_ir = true;
  opts.num_threads = 2;
  opts.num_shards = 2;
  opts.morsel_rows = 16;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  QueryTelemetry tel;
  CallOptions call;
  call.telemetry = &tel;
  // lineitem_json: the JSON plug-in splits on morsel_rows, so the corpus
  // actually fans out across both shards (bincol yields a single morsel).
  auto r = engine.Execute(
      "SELECT count(*), sum(l_extendedprice) FROM lineitem_json WHERE l_orderkey < 30",
      call);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(tel.shards_used, 2);
  EXPECT_TRUE(tel.used_jit);
  EXPECT_TRUE(tel.ir_verified);
}

TEST(IrVerifierIntegration, VerifiedSurvivesCacheHit) {
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.verify_ir = true;
  opts.jit_cache_capacity = 8;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  const std::string q = "SELECT count(*) FROM lineitem_bincol WHERE l_orderkey < 30";
  QueryTelemetry tel;
  CallOptions call;
  call.telemetry = &tel;
  ASSERT_TRUE(engine.Execute(q, call).ok());
  EXPECT_TRUE(tel.ir_verified);
  EXPECT_FALSE(tel.jit_cache_hit);
  // Warm run: the cached module carries its verification state.
  ASSERT_TRUE(engine.Execute(q, call).ok());
  EXPECT_TRUE(tel.jit_cache_hit);
  EXPECT_TRUE(tel.ir_verified);
}

TEST(IrVerifierIntegration, VerifiedCountedInMetrics) {
  obs::MetricsRegistry metrics;
  EngineOptions opts;
  opts.mode = ExecMode::kJIT;
  opts.verify_ir = true;
  opts.metrics = &metrics;
  QueryEngine engine(opts);
  testutil::RegisterAll(&engine);
  ASSERT_TRUE(
      engine.Execute("SELECT count(*) FROM lineitem_bincol WHERE l_orderkey < 30").ok());
  EXPECT_EQ(metrics.GetCounter("proteus_ir_verified_total")->value(), 1u);
}

}  // namespace
}  // namespace proteus
