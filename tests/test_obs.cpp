// Observability tests: the trace recorder (lock-free per-thread span
// buffers, Chrome-trace JSON export), the metrics registry (counters,
// gauges, percentile histograms), and the engine wiring of both.
//
// The headline structural test is the ISSUE's acceptance scenario: one
// tiered, sharded, traced query whose exported trace shows the compiled-
// query-cache probe, the background compile, interpreter morsels before the
// hot-swap, generated morsels after it, the per-shard exchange, and the
// final partial merge. The recorder's concurrency contract (threads append
// lock-free while another thread snapshots) is exercised directly so the
// TSan CI job sees the real interleavings.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/engine_test_util.h"

namespace proteus {
namespace {

// Small morsels so the ~240-row corpus yields several morsels per shard.
constexpr uint64_t kTestMorselRows = 16;

// ---------------------------------------------------------------------------
// TraceRecorder core
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RecordsSpansInstantsAndArgs) {
  obs::TraceRecorder rec;
  {
    obs::TraceSpan span(&rec, "outer", "k", 7);
    obs::TraceSpan inner(&rec, "inner");
    (void)inner;
  }
  rec.Instant("tick", "morsel", 3);
  obs::QueryTrace t = rec.Snapshot();
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_TRUE(t.HasSpan("outer"));
  EXPECT_TRUE(t.HasSpan("inner"));
  EXPECT_EQ(t.CountSpans("tick"), 1u);
  for (const auto& e : t.events) {
    if (std::string(e.name) == "tick") {
      EXPECT_TRUE(e.instant());
      EXPECT_STREQ(e.arg0_name, "morsel");
      EXPECT_EQ(e.arg0, 3);
    }
    if (std::string(e.name) == "outer") {
      EXPECT_STREQ(e.arg0_name, "k");
      EXPECT_EQ(e.arg0, 7);
    }
  }
}

TEST(TraceRecorder, NestedSpansAreContainedInTheirParent) {
  obs::TraceRecorder rec;
  {
    obs::TraceSpan outer(&rec, "outer");
    {
      obs::TraceSpan inner(&rec, "inner");
      (void)inner;
    }
    (void)outer;
  }
  obs::QueryTrace t = rec.Snapshot();
  double o_begin = 0, o_end = 0, i_begin = 0, i_end = 0;
  ASSERT_TRUE(t.TimeBounds("outer", &o_begin, &o_end));
  ASSERT_TRUE(t.TimeBounds("inner", &i_begin, &i_end));
  EXPECT_LE(o_begin, i_begin);
  EXPECT_GE(o_end, i_end);
}

TEST(TraceRecorder, NullRecorderIsANoOp) {
  // The single-branch disabled path: every instrumentation site must accept
  // a null recorder.
  obs::TraceSpan span(nullptr, "nothing", "k", 1);
  span.set_arg0("k2", 2);
  OBS_SPAN(nullptr, "also_nothing");
}

TEST(TraceRecorder, ClearIsASnapshotFloorNotATruncation) {
  obs::TraceRecorder rec;
  rec.Instant("before");
  EXPECT_EQ(rec.Snapshot().events.size(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.Snapshot().events.size(), 0u);
  EXPECT_EQ(rec.TotalEvents(), 0u);
  rec.Instant("after");
  obs::QueryTrace t = rec.Snapshot();
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_STREQ(t.events[0].name, "after");
}

// Writers on many threads, a reader snapshotting concurrently — the exact
// Capture handles: per-observer snapshot floors, independent of the
// process-global Clear(). This is the regression test for the bug where
// Clear() — which any query could issue — silently moved the floor under a
// concurrent observer and amputated its window.
TEST(TraceRecorder, CapturesArePerObserverAndSurviveClear) {
  obs::TraceRecorder rec;
  rec.Instant("a");
  obs::TraceRecorder::Capture cap1 = rec.BeginCapture();
  rec.Instant("b");
  obs::TraceRecorder::Capture cap2 = rec.BeginCapture();
  rec.Instant("c");

  // Each capture sees exactly the events after its own floor; the legacy
  // snapshot still sees everything since the last Clear.
  EXPECT_EQ(rec.Snapshot(cap1).events.size(), 2u);  // b, c
  EXPECT_EQ(rec.Snapshot(cap2).events.size(), 1u);  // c
  EXPECT_EQ(rec.Snapshot().events.size(), 3u);      // a, b, c

  // A global Clear moves the legacy floor but must NOT hide events from the
  // still-open captures.
  rec.Clear();
  rec.Instant("d");
  EXPECT_EQ(rec.Snapshot().events.size(), 1u);      // d
  obs::QueryTrace t1 = rec.Snapshot(cap1);
  ASSERT_EQ(t1.events.size(), 3u);                  // b, c, d — Clear changed nothing
  EXPECT_STREQ(t1.events[0].name, "b");
  EXPECT_STREQ(t1.events[2].name, "d");
  EXPECT_EQ(rec.Snapshot(cap2).events.size(), 2u);  // c, d

  // A thread that starts publishing only after the capture began falls off
  // the end of the floor vector and is captured from zero.
  std::thread late([&] { rec.Instant("late"); });
  late.join();
  EXPECT_EQ(rec.Snapshot(cap1).events.size(), 4u);
}

// interleaving the TSan job must see racing-free. Each thread owns its
// buffer; the snapshot reads only release-published slots.
TEST(TraceRecorder, ConcurrentWritersAndSnapshots) {
  obs::TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::QueryTrace t = rec.Snapshot();
      // Every observed event must be fully published (name never null).
      for (const auto& e : t.events) ASSERT_NE(e.name, nullptr);
    }
  });
  {
    std::vector<std::thread> writers;
    for (int w = 0; w < kThreads; ++w) {
      writers.emplace_back([&, w] {
        rec.LabelThisThread("writer-" + std::to_string(w));
        for (int i = 0; i < kSpansPerThread; ++i) {
          OBS_SPAN(&rec, "work", "i", i);
        }
      });
    }
    for (auto& t : writers) t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  obs::QueryTrace t = rec.Snapshot();
  EXPECT_EQ(t.CountSpans("work"), static_cast<size_t>(kThreads) * kSpansPerThread);
  // Each writer thread got its own track and label.
  size_t labeled = 0;
  for (const auto& [tid, name] : t.thread_names) {
    if (name.rfind("writer-", 0) == 0) ++labeled;
  }
  EXPECT_EQ(labeled, static_cast<size_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Trace JSON export
// ---------------------------------------------------------------------------

// Minimal structural JSON validation (no parser dependency): balanced
// braces/brackets outside strings, and legal string escapes.
void ExpectStructurallyValidJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control character inside a JSON string at offset " << i;
      if (c == '\\') {
        ++i;  // escaped char, checked non-empty by the loop bound
        ASSERT_LT(i, s.size());
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced close at offset " << i;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceJson, ExportIsChromeTraceShapedAndEscaped) {
  obs::TraceRecorder rec;
  rec.LabelThisThread("needs \"escaping\"\n\t\\");
  {
    OBS_SPAN(&rec, "span_a", "morsel", 1, "rows", 42);
  }
  rec.Instant("swap");
  std::ostringstream out;
  rec.Snapshot().WriteJson(out);
  const std::string json = out.str();
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(json.find("span_a"), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\""), std::string::npos);
  // The label's raw newline/tab must have been escaped away.
  EXPECT_EQ(json.substr(0, json.size() - 1).find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(TraceJson, WriteJsonFileRoundTrips) {
  obs::TraceRecorder rec;
  rec.Instant("only_event");
  const std::string path = ::testing::TempDir() + "/trace_" +
                           std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(rec.Snapshot().WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  ExpectStructurallyValidJson(buf.str());
  EXPECT_NE(buf.str().find("only_event"), std::string::npos);
  EXPECT_FALSE(rec.Snapshot().WriteJsonFile("/nonexistent-dir/x/y.json").ok());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, CountersAndGauges) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("proteus_test_total");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(reg.GetCounter("proteus_test_total"), c);  // stable pointers
  obs::Gauge* g = reg.GetGauge("proteus_test_entries");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);
}

TEST(Metrics, HistogramPercentilesOnAKnownDistribution) {
  // Uniform 1..1000 against 10-wide buckets: every percentile is known to
  // within one bucket, and the interpolation should land much closer.
  std::vector<double> bounds;
  for (double b = 10; b <= 1000; b += 10) bounds.push_back(b);
  obs::Histogram h(bounds);
  for (int i = 1; i <= 1000; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.sum(), 500500.0, 1e-6);
  EXPECT_NEAR(h.Percentile(0.50), 500, 10.0);
  EXPECT_NEAR(h.Percentile(0.95), 950, 10.0);
  EXPECT_NEAR(h.Percentile(0.99), 990, 10.0);
  // Edge quantiles are sharpened by the exact observed extrema.
  EXPECT_NEAR(h.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.Percentile(1.0), 1000.0, 1e-9);
}

TEST(Metrics, HistogramOverflowBucketAndEmptyState) {
  obs::Histogram h({1.0, 10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);  // empty
  h.Observe(0.5);   // bucket 0
  h.Observe(5);     // bucket 1
  h.Observe(100);   // overflow
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // The overflow percentile is clamped by the observed max, not infinity.
  EXPECT_LE(h.Percentile(0.99), 100.0);
}

TEST(Metrics, ConcurrentObservationsAreLossless) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("proteus_test_latency_ms");
  obs::Counter* c = reg.GetCounter("proteus_test_ops_total");
  constexpr int kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(1.0);
        c->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(h->sum(), kThreads * kPerThread * 1.0, 1e-6);
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, TextAndJsonExposition) {
  obs::MetricsRegistry reg;
  reg.GetCounter("proteus_queries_total")->Add(3);
  reg.GetGauge("proteus_jit_cache_entries")->Set(2);
  reg.GetHistogram("proteus_query_latency_ms")->Observe(1.5);
  std::ostringstream text;
  reg.WriteText(text);
  EXPECT_NE(text.str().find("# TYPE proteus_queries_total counter"), std::string::npos);
  EXPECT_NE(text.str().find("proteus_queries_total 3"), std::string::npos);
  EXPECT_NE(text.str().find("quantile=\"0.95\""), std::string::npos);
  std::ostringstream json;
  reg.WriteJson(json);
  ExpectStructurallyValidJson(json.str());
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.str().find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine wiring
// ---------------------------------------------------------------------------

std::unique_ptr<QueryEngine> MakeEngine(EngineOptions opts) {
  auto engine = std::make_unique<QueryEngine>(opts);
  testutil::RegisterAll(engine.get());
  return engine;
}

// JSON scan: the ~240-row corpus decomposes into many 16-row morsels (the
// bincol corpus is a single storage block — one morsel — so it cannot
// exercise per-morsel spans or a 2-shard split at this scale).
const char* kAggQuery =
    "SELECT count(*), sum(l_extendedprice), max(l_quantity) FROM lineitem_json "
    "WHERE l_orderkey < 40";

TEST(EngineTrace, DisabledByDefaultAndResultsAreUnaffected) {
  EngineOptions plain;
  plain.morsel_rows = kTestMorselRows;
  auto untraced = MakeEngine(plain);
  EXPECT_EQ(untraced->trace(), nullptr);
  auto r1 = untraced->Execute(kAggQuery);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  EngineOptions traced = plain;
  traced.trace = true;
  auto engine = MakeEngine(traced);
  ASSERT_NE(engine->trace(), nullptr);
  auto r2 = engine->Execute(kAggQuery);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r1->EqualsUnordered(*r2, 0.0)) << "tracing changed the result";
}

TEST(EngineTrace, JitQueryEmitsTheCoreSpans) {
  EngineOptions opts;
  opts.trace = true;
  opts.num_threads = 2;
  opts.morsel_rows = kTestMorselRows;
  auto engine = MakeEngine(opts);
  ASSERT_TRUE(engine->Execute(kAggQuery).ok());
  obs::QueryTrace cold = engine->trace()->Snapshot();
  EXPECT_TRUE(cold.HasSpan("optimize"));
  EXPECT_TRUE(cold.HasSpan("execute"));
  EXPECT_TRUE(cold.HasSpan("cache_probe"));
  EXPECT_TRUE(cold.HasSpan("jit_compile"));
  EXPECT_TRUE(cold.HasSpan("ir_gen"));
  EXPECT_GE(cold.CountSpans("jit_morsel"), 1u);

  // Warm run: the probe hits, no compile — and each execution Clear()s the
  // recorder, so the snapshot holds exactly this query.
  ASSERT_TRUE(engine->Execute(kAggQuery).ok());
  obs::QueryTrace warm = engine->trace()->Snapshot();
  EXPECT_TRUE(warm.HasSpan("cache_probe"));
  EXPECT_FALSE(warm.HasSpan("jit_compile"));
  EXPECT_GE(warm.CountSpans("jit_morsel"), 1u);

  // Reconciliation: every morsel ran inside the execute span, and their
  // summed duration cannot exceed workers × the execute wall time.
  double e_begin = 0, e_end = 0, m_begin = 0, m_end = 0;
  ASSERT_TRUE(warm.TimeBounds("execute", &e_begin, &e_end));
  ASSERT_TRUE(warm.TimeBounds("jit_morsel", &m_begin, &m_end));
  EXPECT_GE(m_begin, e_begin);
  EXPECT_LE(m_end, e_end + 1.0);  // 1 us slack for clock rounding
  const double execute_ms = (e_end - e_begin) / 1000.0;
  EXPECT_LE(warm.SumDurationMs("jit_morsel"), execute_ms * opts.num_threads + 1.0);
  EXPECT_GT(warm.SumDurationMs("jit_morsel"), 0.0);
}

TEST(EngineTrace, InterpreterQueryEmitsInterpMorsels) {
  EngineOptions opts;
  opts.mode = ExecMode::kInterp;
  opts.trace = true;
  opts.num_threads = 2;
  opts.morsel_rows = kTestMorselRows;
  auto engine = MakeEngine(opts);
  ASSERT_TRUE(engine->Execute(kAggQuery).ok());
  obs::QueryTrace t = engine->trace()->Snapshot();
  EXPECT_GE(t.CountSpans("interp_morsel"), 2u);
  EXPECT_TRUE(t.HasSpan("partial_merge"));
  EXPECT_FALSE(t.HasSpan("jit_morsel"));
}

TEST(EngineTrace, JoinBuildSpanCarriesRows) {
  EngineOptions opts;
  opts.mode = ExecMode::kInterp;
  opts.trace = true;
  auto engine = MakeEngine(opts);
  auto r = engine->Execute(
      "SELECT count(*) FROM orders_bincol o JOIN lineitem_bincol l ON "
      "o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  obs::QueryTrace t = engine->trace()->Snapshot();
  ASSERT_TRUE(t.HasSpan("join_build"));
  for (const auto& e : t.events) {
    if (std::string(e.name) == "join_build") {
      ASSERT_STREQ(e.arg0_name, "rows");
      EXPECT_GT(e.arg0, 0);
    }
  }
}

// The ISSUE's acceptance scenario: one tiered, sharded, traced query. Each
// shard (2 shards × 2 workers) starts on the interpreter, the single-flight
// background compile lands, both shards hot-swap at a morsel boundary, and
// the partials cross the exchange before the final merge. force_swap pins
// the swap after exactly one interpreted morsel per shard so the structure
// is deterministic.
TEST(EngineTrace, TieredShardedTraceShowsTheFullStory) {
  EngineOptions opts;
  opts.trace = true;
  opts.tiered = true;
  opts.num_shards = 2;
  opts.num_threads = 2;
  opts.morsel_rows = kTestMorselRows;
  opts.tiered_opts.force_swap_after_morsels = 1;
  auto engine = MakeEngine(opts);
  auto r = engine->Execute(kAggQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(engine->telemetry().shards_used, 2);
  ASSERT_GT(engine->telemetry().morsels_jit, 0u);
  ASSERT_GT(engine->telemetry().morsels_interpreted, 0u);

  obs::QueryTrace t = engine->trace()->Snapshot();
  EXPECT_TRUE(t.HasSpan("cache_probe"));
  EXPECT_TRUE(t.HasSpan("background_compile"));
  EXPECT_GE(t.CountSpans("interp_morsel"), 1u);
  EXPECT_GE(t.CountSpans("hot_swap"), 1u);
  EXPECT_GE(t.CountSpans("jit_morsel"), 1u);
  EXPECT_EQ(t.CountSpans("shard_slice"), 2u);
  EXPECT_EQ(t.CountSpans("exchange_send"), 2u);
  EXPECT_EQ(t.CountSpans("exchange_collect"), 1u);
  EXPECT_TRUE(t.HasSpan("partial_merge"));

  // Ordering: on each track the interpreter ran before the swap and the
  // generated tail after it — globally, the earliest interp morsel precedes
  // the earliest swap, which precedes the last generated morsel's end.
  double i_begin = 0, i_end = 0, s_begin = 0, s_end = 0, j_begin = 0, j_end = 0;
  ASSERT_TRUE(t.TimeBounds("interp_morsel", &i_begin, &i_end));
  ASSERT_TRUE(t.TimeBounds("hot_swap", &s_begin, &s_end));
  ASSERT_TRUE(t.TimeBounds("jit_morsel", &j_begin, &j_end));
  EXPECT_LT(i_begin, s_end);
  EXPECT_LT(s_begin, j_end);

  // Shard threads and the background compiler are labeled tracks.
  std::vector<std::string> names;
  for (const auto& [tid, name] : t.thread_names) names.push_back(name);
  auto has = [&](const std::string& n) {
    for (const auto& x : names) {
      if (x == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("shard-0"));
  EXPECT_TRUE(has("shard-1"));
  EXPECT_TRUE(has("background-compiler"));

  // And the whole thing exports as one structurally valid Chrome trace.
  std::ostringstream out;
  t.WriteJson(out);
  ExpectStructurallyValidJson(out.str());
  EXPECT_NE(out.str().find("hot_swap"), std::string::npos);
}

TEST(EngineMetrics, ExecutionsFeedTheRegistry) {
  obs::MetricsRegistry reg;  // private registry: no cross-test pollution
  EngineOptions opts;
  opts.metrics = &reg;
  opts.num_threads = 2;
  opts.morsel_rows = kTestMorselRows;
  auto engine = MakeEngine(opts);
  ASSERT_TRUE(engine->Execute(kAggQuery).ok());
  ASSERT_TRUE(engine->Execute(kAggQuery).ok());

  EXPECT_EQ(reg.GetCounter("proteus_queries_total")->value(), 2u);
  EXPECT_EQ(reg.GetHistogram("proteus_query_latency_ms")->count(), 2u);
  // Cold then warm: one miss, one hit.
  EXPECT_EQ(reg.GetCounter("proteus_jit_cache_misses_total")->value(), 1u);
  EXPECT_EQ(reg.GetCounter("proteus_jit_cache_hits_total")->value(), 1u);
  EXPECT_GT(reg.GetCounter("proteus_morsels_total")->value(), 0u);
  EXPECT_EQ(reg.GetGauge("proteus_jit_cache_entries")->value(), 1);
  // A failed query counts as an error, not a latency sample.
  ASSERT_FALSE(engine->Execute("SELECT nope FROM nowhere").ok());
  EXPECT_EQ(reg.GetCounter("proteus_query_errors_total")->value(), 1u);
  EXPECT_EQ(reg.GetHistogram("proteus_query_latency_ms")->count(), 2u);
}

TEST(EngineTelemetry, StealCountersFoldAcrossShards) {
  EngineOptions opts;
  opts.mode = ExecMode::kInterp;
  opts.num_threads = 2;
  opts.morsel_rows = kTestMorselRows;
  auto engine = MakeEngine(opts);
  ASSERT_TRUE(engine->Execute(kAggQuery).ok());
  // The 2-worker run dealt at least one task per morsel batch; steals are
  // scheduling-dependent, but dealt is deterministic and non-zero.
  EXPECT_GT(engine->telemetry().tasks_dealt, 0u);

  EngineOptions sharded = opts;
  sharded.num_shards = 2;
  auto se = MakeEngine(sharded);
  ASSERT_TRUE(se->Execute(kAggQuery).ok());
  ASSERT_EQ(se->telemetry().shards_used, 2);
  EXPECT_GT(se->telemetry().tasks_dealt, 0u);
}

}  // namespace
}  // namespace proteus
