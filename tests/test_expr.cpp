// Unit tests for expression construction, type checking, evaluation, and
// constant folding.
#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/expr/expr.h"

namespace proteus {
namespace {

TypePtr LineitemType() {
  return Type::Record({{"l_orderkey", Type::Int64()},
                       {"l_quantity", Type::Float64()},
                       {"l_comment", Type::String()},
                       {"l_flag", Type::Bool()}});
}

TEST(Expr, ToStringCanonical) {
  auto e = Expr::Bin(BinOp::kLt, Expr::Proj(Expr::Var("l"), "l_orderkey"), Expr::Int(10));
  EXPECT_EQ(e->ToString(), "(l.l_orderkey < 10)");
}

TEST(Expr, EqualsStructural) {
  auto a = Expr::Bin(BinOp::kAdd, Expr::Var("x"), Expr::Int(1));
  auto b = Expr::Bin(BinOp::kAdd, Expr::Var("x"), Expr::Int(1));
  auto c = Expr::Bin(BinOp::kAdd, Expr::Var("x"), Expr::Int(2));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(Expr, FreeVars) {
  auto e = Expr::Bin(BinOp::kAdd, Expr::Proj(Expr::Var("a"), "f"), Expr::Var("b"));
  std::unordered_set<std::string> fv;
  e->CollectFreeVars(&fv);
  EXPECT_EQ(fv.size(), 2u);
  EXPECT_TRUE(fv.count("a"));
  EXPECT_TRUE(fv.count("b"));
  EXPECT_TRUE(e->OnlyDependsOn({"a", "b", "c"}));
  EXPECT_FALSE(e->OnlyDependsOn({"a"}));
}

TEST(Expr, SubstituteVar) {
  auto e = Expr::Bin(BinOp::kAdd, Expr::Var("x"), Expr::Var("y"));
  auto s = Expr::SubstituteVar(e, "x", Expr::Int(5));
  EXPECT_EQ(s->ToString(), "(5 + y)");
  // Original unchanged.
  EXPECT_EQ(e->ToString(), "(x + y)");
}

TEST(TypeCheck, InfersArithmetic) {
  TypeEnv env{{"l", LineitemType()}};
  auto e = Expr::Bin(BinOp::kAdd, Expr::Proj(Expr::Var("l"), "l_orderkey"),
                     Expr::Proj(Expr::Var("l"), "l_quantity"));
  auto t = TypeCheck(e, env);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->kind(), TypeKind::kFloat64);  // int + float widens
}

TEST(TypeCheck, DivisionIsFloat) {
  TypeEnv env;
  auto e = Expr::Bin(BinOp::kDiv, Expr::Int(1), Expr::Int(2));
  auto t = TypeCheck(e, env);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->kind(), TypeKind::kFloat64);
}

TEST(TypeCheck, RejectsUnboundVar) {
  TypeEnv env;
  auto t = TypeCheck(Expr::Var("ghost"), env);
  EXPECT_FALSE(t.ok());
}

TEST(TypeCheck, RejectsBadProjection) {
  TypeEnv env{{"l", LineitemType()}};
  EXPECT_FALSE(TypeCheck(Expr::Proj(Expr::Var("l"), "nope"), env).ok());
  EXPECT_FALSE(TypeCheck(Expr::Proj(Expr::Int(3), "f"), env).ok());
}

TEST(TypeCheck, RejectsStringArithmetic) {
  TypeEnv env{{"l", LineitemType()}};
  auto e = Expr::Bin(BinOp::kAdd, Expr::Proj(Expr::Var("l"), "l_comment"), Expr::Int(1));
  EXPECT_FALSE(TypeCheck(e, env).ok());
}

TEST(TypeCheck, RecordConstruction) {
  TypeEnv env{{"l", LineitemType()}};
  auto e = Expr::Record({"k", "q"}, {Expr::Proj(Expr::Var("l"), "l_orderkey"),
                                     Expr::Proj(Expr::Var("l"), "l_quantity")});
  auto t = TypeCheck(e, env);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->kind(), TypeKind::kRecord);
  EXPECT_EQ((*t)->fields()[0].name, "k");
}

TEST(Eval, Arithmetic) {
  EvalEnv env;
  auto e = Expr::Bin(BinOp::kMul, Expr::Int(6), Expr::Int(7));
  auto v = Eval(e, env);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->i(), 42);
}

TEST(Eval, ProjectionChain) {
  EvalEnv env;
  env["s"] = Value::MakeRecord(
      {"addr"}, {Value::MakeRecord({"city"}, {Value::Str("lausanne")})});
  auto e = Expr::Path({"s", "addr", "city"});
  auto v = Eval(e, env);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->s(), "lausanne");
}

TEST(Eval, ShortCircuitAnd) {
  EvalEnv env{{"x", Value::Int(0)}};
  // (false and (1/0 ...)) must not evaluate the rhs.
  auto e = Expr::Bin(BinOp::kAnd, Expr::Bool(false),
                     Expr::Bin(BinOp::kEq, Expr::Bin(BinOp::kDiv, Expr::Int(1), Expr::Var("x")),
                               Expr::Int(1)));
  auto v = Eval(e, env);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->b());
}

TEST(Eval, DivisionByZeroFails) {
  EvalEnv env;
  auto e = Expr::Bin(BinOp::kDiv, Expr::Int(1), Expr::Int(0));
  EXPECT_FALSE(Eval(e, env).ok());
}

TEST(Eval, NullPropagates) {
  EvalEnv env{{"x", Value::Null()}};
  auto e = Expr::Bin(BinOp::kAdd, Expr::Var("x"), Expr::Int(1));
  auto v = Eval(e, env);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  // Null in a predicate is false.
  auto p = EvalPredicate(Expr::Bin(BinOp::kLt, Expr::Var("x"), Expr::Int(1)), env);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(*p);
}

TEST(Eval, IfExpression) {
  EvalEnv env{{"x", Value::Int(5)}};
  auto e = Expr::If(Expr::Bin(BinOp::kGt, Expr::Var("x"), Expr::Int(3)), Expr::Str("big"),
                    Expr::Str("small"));
  auto v = Eval(e, env);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->s(), "big");
}

TEST(Eval, CastIntFloat) {
  EvalEnv env;
  auto v = Eval(Expr::Cast(Type::Float64(), Expr::Int(3)), env);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_float());
  EXPECT_DOUBLE_EQ(v->f(), 3.0);
  auto w = Eval(Expr::Cast(Type::Int64(), Expr::Float(3.9)), env);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->i(), 3);
}

TEST(Fold, LiteralArithmetic) {
  auto e = Expr::Bin(BinOp::kAdd, Expr::Int(1), Expr::Bin(BinOp::kMul, Expr::Int(2), Expr::Int(3)));
  auto f = FoldConstants(e);
  ASSERT_EQ(f->kind(), ExprKind::kLiteral);
  EXPECT_EQ(f->literal().i(), 7);
}

TEST(Fold, BooleanIdentities) {
  auto x = Expr::Bin(BinOp::kLt, Expr::Var("x"), Expr::Int(1));
  EXPECT_EQ(FoldConstants(Expr::Bin(BinOp::kAnd, Expr::Bool(true), x))->ToString(), x->ToString());
  EXPECT_EQ(FoldConstants(Expr::Bin(BinOp::kAnd, Expr::Bool(false), x))->ToString(), "false");
  EXPECT_EQ(FoldConstants(Expr::Bin(BinOp::kOr, Expr::Bool(true), x))->ToString(), "true");
}

TEST(Fold, KeepsRuntimeErrors) {
  // 1/0 must not fold into a crash; it stays an expression.
  auto e = Expr::Bin(BinOp::kDiv, Expr::Int(1), Expr::Int(0));
  auto f = FoldConstants(e);
  EXPECT_EQ(f->kind(), ExprKind::kBinary);
}

TEST(Conjuncts, SplitAndCombine) {
  auto a = Expr::Bin(BinOp::kLt, Expr::Var("x"), Expr::Int(1));
  auto b = Expr::Bin(BinOp::kGt, Expr::Var("y"), Expr::Int(2));
  auto c = Expr::Bin(BinOp::kEq, Expr::Var("z"), Expr::Int(3));
  auto pred = Expr::Bin(BinOp::kAnd, Expr::Bin(BinOp::kAnd, a, b), c);
  auto parts = SplitConjuncts(pred);
  ASSERT_EQ(parts.size(), 3u);
  auto back = CombineConjuncts(parts);
  EXPECT_TRUE(back->Equals(*pred));
  EXPECT_EQ(CombineConjuncts({})->ToString(), "true");
}

}  // namespace
}  // namespace proteus
