// Round-trip tests for the storage formats (binary row/column, CSV, JSON).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/datagen/tpch.h"
#include "src/storage/bincol_format.h"
#include "src/storage/binrow_format.h"
#include "src/storage/table.h"
#include "src/storage/text_writers.h"

namespace proteus {
namespace {

RowTable SmallTable() {
  RowTable t(Type::Record({{"k", Type::Int64()},
                           {"v", Type::Float64()},
                           {"flag", Type::Bool()},
                           {"name", Type::String()}}));
  t.Append({Value::Int(1), Value::Float(1.5), Value::Boolean(true), Value::Str("alpha")});
  t.Append({Value::Int(-7), Value::Float(-2.25), Value::Boolean(false), Value::Str("")});
  t.Append({Value::Int(1LL << 40), Value::Float(3.0), Value::Boolean(true), Value::Str("gamma delta")});
  return t;
}

TEST(BinRow, RoundTrip) {
  std::string path = testing::TempDir() + "/t.binrow";
  RowTable t = SmallTable();
  ASSERT_TRUE(WriteBinaryRowFile(path, t).ok());
  auto r = BinRowReader::Open(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->num_cols(), 4u);
  EXPECT_EQ(r->ReadInt(0, 0), 1);
  EXPECT_EQ(r->ReadInt(2, 0), 1LL << 40);
  EXPECT_DOUBLE_EQ(r->ReadFloat(1, 1), -2.25);
  EXPECT_TRUE(r->ReadBool(0, 2));
  EXPECT_FALSE(r->ReadBool(1, 2));
  EXPECT_EQ(r->ReadString(0, 3), "alpha");
  EXPECT_EQ(r->ReadString(1, 3), "");
  EXPECT_EQ(r->ReadString(2, 3), "gamma delta");
  EXPECT_EQ(r->ColumnIndex("v"), 1);
  EXPECT_EQ(r->ColumnIndex("zzz"), -1);
  std::remove(path.c_str());
}

TEST(BinRow, RejectsGarbage) {
  std::string path = testing::TempDir() + "/garbage.binrow";
  {
    std::ofstream f(path);
    f << "this is not a binrow file at all";
  }
  EXPECT_FALSE(BinRowReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(BinRow, RejectsNestedSchema) {
  RowTable t(Type::Record({{"r", Type::Record({{"x", Type::Int64()}})}}));
  t.Append({Value::MakeRecord({"x"}, {Value::Int(1)})});
  EXPECT_FALSE(WriteBinaryRowFile(testing::TempDir() + "/nested.binrow", t).ok());
}

TEST(BinCol, RoundTrip) {
  std::string dir = testing::TempDir() + "/t_bincol";
  RowTable t = SmallTable();
  ASSERT_TRUE(WriteBinaryColumnDir(dir, t).ok());
  auto r = BinColReader::Open(dir);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->ReadInt(1, 0), -7);
  EXPECT_DOUBLE_EQ(r->ReadFloat(2, 1), 3.0);
  EXPECT_TRUE(r->ReadBool(2, 2));
  EXPECT_EQ(r->ReadString(2, 3), "gamma delta");
  EXPECT_EQ(r->col_type(0), TypeKind::kInt64);
}

TEST(BinCol, EmptyTable) {
  std::string dir = testing::TempDir() + "/empty_bincol";
  RowTable t(Type::Record({{"k", Type::Int64()}}));
  ASSERT_TRUE(WriteBinaryColumnDir(dir, t).ok());
  auto r = BinColReader::Open(dir);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(TextWriters, CSVBasic) {
  std::string path = testing::TempDir() + "/t.csv";
  RowTable t = SmallTable();
  ASSERT_TRUE(WriteCSVFile(path, t, {.delimiter = '|', .write_header = true}).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k|v|flag|name");
  std::getline(in, line);
  EXPECT_EQ(line, "1|1.5|true|alpha");
  std::remove(path.c_str());
}

TEST(TextWriters, JSONSerializesNested) {
  Value v = Value::MakeRecord(
      {"a", "b"},
      {Value::Int(1), Value::MakeList({Value::MakeRecord({"x"}, {Value::Float(0.5)})})});
  EXPECT_EQ(ValueToJSON(v), R"({"a":1,"b":[{"x":0.5}]})");
}

TEST(TextWriters, JSONEscapes) {
  Value v = Value::Str("a\"b\\c\nd");
  EXPECT_EQ(ValueToJSON(v), R"("a\"b\\c\nd")");
}

TEST(TextWriters, FloatStaysFloat) {
  // 3.0 must not serialize as "3" or it round-trips as an int token.
  EXPECT_EQ(ValueToJSON(Value::Float(3.0)), "3.0");
}

TEST(Datagen, LineitemShape) {
  RowTable t = datagen::GenLineitem(100, 7);
  // 1..7 lines per order.
  EXPECT_GE(t.num_rows(), 100u);
  EXPECT_LE(t.num_rows(), 700u);
  for (size_t i = 0; i < t.num_rows(); ++i) {
    int64_t ok = t.row(i)[0].i();
    EXPECT_GE(ok, 0);
    EXPECT_LT(ok, 100);
    double qty = t.row(i)[2].f();
    EXPECT_GE(qty, 1.0);
    EXPECT_LE(qty, 50.0);
  }
}

TEST(Datagen, Deterministic) {
  RowTable a = datagen::GenLineitem(50, 3);
  RowTable b = datagen::GenLineitem(50, 3);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_TRUE(a.RecordAt(i).Equals(b.RecordAt(i)));
  }
}

TEST(Datagen, DenormalizeGroupsAllLineitems) {
  RowTable orders = datagen::GenOrders(40);
  RowTable lineitem = datagen::GenLineitem(40);
  RowTable denorm = datagen::Denormalize(orders, lineitem);
  EXPECT_EQ(denorm.num_rows(), orders.num_rows());
  size_t total_lines = 0;
  for (size_t i = 0; i < denorm.num_rows(); ++i) {
    const Value& lines = denorm.row(i)[3];
    ASSERT_TRUE(lines.is_list());
    total_lines += lines.list().size();
    // Every nested lineitem belongs to this order.
    for (const auto& l : lines.list()) {
      EXPECT_EQ(l.GetField("l_orderkey")->i(), denorm.row(i)[0].i());
    }
  }
  EXPECT_EQ(total_lines, lineitem.num_rows());
}

}  // namespace
}  // namespace proteus
