// Shared fixture: generates a small TPC-H-like corpus in every format once
// per test binary and registers it with fresh engines on demand.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/core/query_engine.h"
#include "src/datagen/spam.h"
#include "src/datagen/tpch.h"
#include "src/storage/bincol_format.h"
#include "src/storage/binrow_format.h"
#include "src/storage/text_writers.h"

namespace proteus {
namespace testutil {

struct Corpus {
  std::string dir;
  RowTable lineitem;
  RowTable orders;
  RowTable denorm;
  RowTable spam;
  uint64_t num_orders = 60;

  static const Corpus& Get() {
    static Corpus c = Build();
    return c;
  }

 private:
  static Corpus Build() {
    Corpus c;
    // Per-process directory: test binaries run concurrently under `ctest -j`,
    // and a shared corpus dir would be rewritten by one binary while another
    // reads it mid-write.
    c.dir = ::testing::TempDir() + "/proteus_corpus_" + std::to_string(::getpid());
    std::filesystem::create_directories(c.dir);
    c.lineitem = datagen::GenLineitem(c.num_orders, 101);
    c.orders = datagen::GenOrders(c.num_orders, 102);
    c.denorm = datagen::Denormalize(c.orders, c.lineitem);
    c.spam = datagen::GenSpamJSON(80, 103);

    auto check = [](const Status& s) {
      ASSERT_TRUE(s.ok()) << s.ToString();
    };
    check(WriteBinaryColumnDir(c.dir + "/lineitem.bincol", c.lineitem));
    check(WriteBinaryColumnDir(c.dir + "/orders.bincol", c.orders));
    check(WriteBinaryRowFile(c.dir + "/lineitem.binrow", c.lineitem));
    check(WriteCSVFile(c.dir + "/lineitem.csv", c.lineitem));
    check(WriteCSVFile(c.dir + "/orders.csv", c.orders));
    check(WriteJSONFile(c.dir + "/lineitem.json", c.lineitem));
    check(WriteJSONFile(c.dir + "/orders.json", c.orders));
    JSONWriteOptions shuffled;
    shuffled.shuffle_field_order = true;
    check(WriteJSONFile(c.dir + "/lineitem_shuffled.json", c.lineitem, shuffled));
    check(WriteJSONFile(c.dir + "/denorm.json", c.denorm));
    check(WriteJSONFile(c.dir + "/spam.json", c.spam));
    return c;
  }
};

/// Registers the full corpus under canonical names:
/// lineitem_{bincol,binrow,csv,json,json_shuffled}, orders_{bincol,csv,json},
/// orders_denorm (JSON), spam (JSON).
inline void RegisterAll(QueryEngine* engine) {
  const Corpus& c = Corpus::Get();
  auto reg = [&](const std::string& name, DataFormat fmt, const std::string& path,
                 TypePtr type) {
    DatasetInfo info;
    info.name = name;
    info.format = fmt;
    info.path = path;
    info.type = std::move(type);
    ASSERT_TRUE(engine->RegisterDataset(info).ok()) << name;
  };
  reg("lineitem_bincol", DataFormat::kBinaryColumn, c.dir + "/lineitem.bincol",
      datagen::LineitemSchema());
  reg("orders_bincol", DataFormat::kBinaryColumn, c.dir + "/orders.bincol",
      datagen::OrdersSchema());
  reg("lineitem_binrow", DataFormat::kBinaryRow, c.dir + "/lineitem.binrow",
      datagen::LineitemSchema());
  reg("lineitem_csv", DataFormat::kCSV, c.dir + "/lineitem.csv", datagen::LineitemSchema());
  reg("orders_csv", DataFormat::kCSV, c.dir + "/orders.csv", datagen::OrdersSchema());
  reg("lineitem_json", DataFormat::kJSON, c.dir + "/lineitem.json",
      datagen::LineitemSchema());
  reg("lineitem_json_shuffled", DataFormat::kJSON, c.dir + "/lineitem_shuffled.json",
      datagen::LineitemSchema());
  reg("orders_json", DataFormat::kJSON, c.dir + "/orders.json", datagen::OrdersSchema());
  reg("orders_denorm", DataFormat::kJSON, c.dir + "/denorm.json",
      datagen::OrdersDenormSchema());
  reg("spam", DataFormat::kJSON, c.dir + "/spam.json", datagen::SpamJSONSchema());
}

}  // namespace testutil
}  // namespace proteus
